# Empty dependencies file for qdt.
# This may be replaced when dependencies are built.
