file(REMOVE_RECURSE
  "CMakeFiles/qdt.dir/qdt_cli.cpp.o"
  "CMakeFiles/qdt.dir/qdt_cli.cpp.o.d"
  "qdt"
  "qdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
