file(REMOVE_RECURSE
  "CMakeFiles/phase_estimation_demo.dir/phase_estimation_demo.cpp.o"
  "CMakeFiles/phase_estimation_demo.dir/phase_estimation_demo.cpp.o.d"
  "phase_estimation_demo"
  "phase_estimation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_estimation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
