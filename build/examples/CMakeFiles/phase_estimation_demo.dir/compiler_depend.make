# Empty compiler generated dependencies file for phase_estimation_demo.
# This may be replaced when dependencies are built.
