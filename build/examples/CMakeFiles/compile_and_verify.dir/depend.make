# Empty dependencies file for compile_and_verify.
# This may be replaced when dependencies are built.
