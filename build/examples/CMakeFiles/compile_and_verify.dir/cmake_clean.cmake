file(REMOVE_RECURSE
  "CMakeFiles/compile_and_verify.dir/compile_and_verify.cpp.o"
  "CMakeFiles/compile_and_verify.dir/compile_and_verify.cpp.o.d"
  "compile_and_verify"
  "compile_and_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_and_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
