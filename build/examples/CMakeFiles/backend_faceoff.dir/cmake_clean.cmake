file(REMOVE_RECURSE
  "CMakeFiles/backend_faceoff.dir/backend_faceoff.cpp.o"
  "CMakeFiles/backend_faceoff.dir/backend_faceoff.cpp.o.d"
  "backend_faceoff"
  "backend_faceoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_faceoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
