# Empty compiler generated dependencies file for backend_faceoff.
# This may be replaced when dependencies are built.
