file(REMOVE_RECURSE
  "CMakeFiles/tcount_optimizer.dir/tcount_optimizer.cpp.o"
  "CMakeFiles/tcount_optimizer.dir/tcount_optimizer.cpp.o.d"
  "tcount_optimizer"
  "tcount_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcount_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
