# Empty compiler generated dependencies file for tcount_optimizer.
# This may be replaced when dependencies are built.
