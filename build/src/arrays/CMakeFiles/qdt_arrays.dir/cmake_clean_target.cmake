file(REMOVE_RECURSE
  "libqdt_arrays.a"
)
