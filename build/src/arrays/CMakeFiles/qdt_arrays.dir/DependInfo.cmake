
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arrays/dense_unitary.cpp" "src/arrays/CMakeFiles/qdt_arrays.dir/dense_unitary.cpp.o" "gcc" "src/arrays/CMakeFiles/qdt_arrays.dir/dense_unitary.cpp.o.d"
  "/root/repo/src/arrays/density_matrix.cpp" "src/arrays/CMakeFiles/qdt_arrays.dir/density_matrix.cpp.o" "gcc" "src/arrays/CMakeFiles/qdt_arrays.dir/density_matrix.cpp.o.d"
  "/root/repo/src/arrays/noise.cpp" "src/arrays/CMakeFiles/qdt_arrays.dir/noise.cpp.o" "gcc" "src/arrays/CMakeFiles/qdt_arrays.dir/noise.cpp.o.d"
  "/root/repo/src/arrays/statevector.cpp" "src/arrays/CMakeFiles/qdt_arrays.dir/statevector.cpp.o" "gcc" "src/arrays/CMakeFiles/qdt_arrays.dir/statevector.cpp.o.d"
  "/root/repo/src/arrays/svsim.cpp" "src/arrays/CMakeFiles/qdt_arrays.dir/svsim.cpp.o" "gcc" "src/arrays/CMakeFiles/qdt_arrays.dir/svsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qdt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
