file(REMOVE_RECURSE
  "CMakeFiles/qdt_arrays.dir/dense_unitary.cpp.o"
  "CMakeFiles/qdt_arrays.dir/dense_unitary.cpp.o.d"
  "CMakeFiles/qdt_arrays.dir/density_matrix.cpp.o"
  "CMakeFiles/qdt_arrays.dir/density_matrix.cpp.o.d"
  "CMakeFiles/qdt_arrays.dir/noise.cpp.o"
  "CMakeFiles/qdt_arrays.dir/noise.cpp.o.d"
  "CMakeFiles/qdt_arrays.dir/statevector.cpp.o"
  "CMakeFiles/qdt_arrays.dir/statevector.cpp.o.d"
  "CMakeFiles/qdt_arrays.dir/svsim.cpp.o"
  "CMakeFiles/qdt_arrays.dir/svsim.cpp.o.d"
  "libqdt_arrays.a"
  "libqdt_arrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdt_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
