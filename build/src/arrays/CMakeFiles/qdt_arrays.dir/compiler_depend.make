# Empty compiler generated dependencies file for qdt_arrays.
# This may be replaced when dependencies are built.
