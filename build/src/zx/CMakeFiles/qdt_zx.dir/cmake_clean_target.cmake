file(REMOVE_RECURSE
  "libqdt_zx.a"
)
