
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zx/circuit_to_zx.cpp" "src/zx/CMakeFiles/qdt_zx.dir/circuit_to_zx.cpp.o" "gcc" "src/zx/CMakeFiles/qdt_zx.dir/circuit_to_zx.cpp.o.d"
  "/root/repo/src/zx/diagram.cpp" "src/zx/CMakeFiles/qdt_zx.dir/diagram.cpp.o" "gcc" "src/zx/CMakeFiles/qdt_zx.dir/diagram.cpp.o.d"
  "/root/repo/src/zx/equivalence.cpp" "src/zx/CMakeFiles/qdt_zx.dir/equivalence.cpp.o" "gcc" "src/zx/CMakeFiles/qdt_zx.dir/equivalence.cpp.o.d"
  "/root/repo/src/zx/simplify.cpp" "src/zx/CMakeFiles/qdt_zx.dir/simplify.cpp.o" "gcc" "src/zx/CMakeFiles/qdt_zx.dir/simplify.cpp.o.d"
  "/root/repo/src/zx/tensor_bridge.cpp" "src/zx/CMakeFiles/qdt_zx.dir/tensor_bridge.cpp.o" "gcc" "src/zx/CMakeFiles/qdt_zx.dir/tensor_bridge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qdt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/transpile/CMakeFiles/qdt_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/tn/CMakeFiles/qdt_tn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qdt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arrays/CMakeFiles/qdt_arrays.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
