# Empty dependencies file for qdt_zx.
# This may be replaced when dependencies are built.
