file(REMOVE_RECURSE
  "CMakeFiles/qdt_zx.dir/circuit_to_zx.cpp.o"
  "CMakeFiles/qdt_zx.dir/circuit_to_zx.cpp.o.d"
  "CMakeFiles/qdt_zx.dir/diagram.cpp.o"
  "CMakeFiles/qdt_zx.dir/diagram.cpp.o.d"
  "CMakeFiles/qdt_zx.dir/equivalence.cpp.o"
  "CMakeFiles/qdt_zx.dir/equivalence.cpp.o.d"
  "CMakeFiles/qdt_zx.dir/simplify.cpp.o"
  "CMakeFiles/qdt_zx.dir/simplify.cpp.o.d"
  "CMakeFiles/qdt_zx.dir/tensor_bridge.cpp.o"
  "CMakeFiles/qdt_zx.dir/tensor_bridge.cpp.o.d"
  "libqdt_zx.a"
  "libqdt_zx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdt_zx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
