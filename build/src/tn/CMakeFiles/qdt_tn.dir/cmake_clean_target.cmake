file(REMOVE_RECURSE
  "libqdt_tn.a"
)
