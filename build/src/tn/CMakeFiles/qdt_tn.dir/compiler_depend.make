# Empty compiler generated dependencies file for qdt_tn.
# This may be replaced when dependencies are built.
