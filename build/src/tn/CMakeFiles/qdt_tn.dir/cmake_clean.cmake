file(REMOVE_RECURSE
  "CMakeFiles/qdt_tn.dir/mps.cpp.o"
  "CMakeFiles/qdt_tn.dir/mps.cpp.o.d"
  "CMakeFiles/qdt_tn.dir/network.cpp.o"
  "CMakeFiles/qdt_tn.dir/network.cpp.o.d"
  "CMakeFiles/qdt_tn.dir/svd.cpp.o"
  "CMakeFiles/qdt_tn.dir/svd.cpp.o.d"
  "CMakeFiles/qdt_tn.dir/tensor.cpp.o"
  "CMakeFiles/qdt_tn.dir/tensor.cpp.o.d"
  "libqdt_tn.a"
  "libqdt_tn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdt_tn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
