
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tn/mps.cpp" "src/tn/CMakeFiles/qdt_tn.dir/mps.cpp.o" "gcc" "src/tn/CMakeFiles/qdt_tn.dir/mps.cpp.o.d"
  "/root/repo/src/tn/network.cpp" "src/tn/CMakeFiles/qdt_tn.dir/network.cpp.o" "gcc" "src/tn/CMakeFiles/qdt_tn.dir/network.cpp.o.d"
  "/root/repo/src/tn/svd.cpp" "src/tn/CMakeFiles/qdt_tn.dir/svd.cpp.o" "gcc" "src/tn/CMakeFiles/qdt_tn.dir/svd.cpp.o.d"
  "/root/repo/src/tn/tensor.cpp" "src/tn/CMakeFiles/qdt_tn.dir/tensor.cpp.o" "gcc" "src/tn/CMakeFiles/qdt_tn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qdt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arrays/CMakeFiles/qdt_arrays.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
