file(REMOVE_RECURSE
  "libqdt_dd.a"
)
