
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dd/approximation.cpp" "src/dd/CMakeFiles/qdt_dd.dir/approximation.cpp.o" "gcc" "src/dd/CMakeFiles/qdt_dd.dir/approximation.cpp.o.d"
  "/root/repo/src/dd/complex_table.cpp" "src/dd/CMakeFiles/qdt_dd.dir/complex_table.cpp.o" "gcc" "src/dd/CMakeFiles/qdt_dd.dir/complex_table.cpp.o.d"
  "/root/repo/src/dd/density.cpp" "src/dd/CMakeFiles/qdt_dd.dir/density.cpp.o" "gcc" "src/dd/CMakeFiles/qdt_dd.dir/density.cpp.o.d"
  "/root/repo/src/dd/equivalence.cpp" "src/dd/CMakeFiles/qdt_dd.dir/equivalence.cpp.o" "gcc" "src/dd/CMakeFiles/qdt_dd.dir/equivalence.cpp.o.d"
  "/root/repo/src/dd/export_dot.cpp" "src/dd/CMakeFiles/qdt_dd.dir/export_dot.cpp.o" "gcc" "src/dd/CMakeFiles/qdt_dd.dir/export_dot.cpp.o.d"
  "/root/repo/src/dd/package.cpp" "src/dd/CMakeFiles/qdt_dd.dir/package.cpp.o" "gcc" "src/dd/CMakeFiles/qdt_dd.dir/package.cpp.o.d"
  "/root/repo/src/dd/simulator.cpp" "src/dd/CMakeFiles/qdt_dd.dir/simulator.cpp.o" "gcc" "src/dd/CMakeFiles/qdt_dd.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qdt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arrays/CMakeFiles/qdt_arrays.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
