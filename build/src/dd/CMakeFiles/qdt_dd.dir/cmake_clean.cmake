file(REMOVE_RECURSE
  "CMakeFiles/qdt_dd.dir/approximation.cpp.o"
  "CMakeFiles/qdt_dd.dir/approximation.cpp.o.d"
  "CMakeFiles/qdt_dd.dir/complex_table.cpp.o"
  "CMakeFiles/qdt_dd.dir/complex_table.cpp.o.d"
  "CMakeFiles/qdt_dd.dir/density.cpp.o"
  "CMakeFiles/qdt_dd.dir/density.cpp.o.d"
  "CMakeFiles/qdt_dd.dir/equivalence.cpp.o"
  "CMakeFiles/qdt_dd.dir/equivalence.cpp.o.d"
  "CMakeFiles/qdt_dd.dir/export_dot.cpp.o"
  "CMakeFiles/qdt_dd.dir/export_dot.cpp.o.d"
  "CMakeFiles/qdt_dd.dir/package.cpp.o"
  "CMakeFiles/qdt_dd.dir/package.cpp.o.d"
  "CMakeFiles/qdt_dd.dir/simulator.cpp.o"
  "CMakeFiles/qdt_dd.dir/simulator.cpp.o.d"
  "libqdt_dd.a"
  "libqdt_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdt_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
