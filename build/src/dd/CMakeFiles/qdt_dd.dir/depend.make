# Empty dependencies file for qdt_dd.
# This may be replaced when dependencies are built.
