# Empty dependencies file for qdt_stab.
# This may be replaced when dependencies are built.
