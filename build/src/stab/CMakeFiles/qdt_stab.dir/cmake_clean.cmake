file(REMOVE_RECURSE
  "CMakeFiles/qdt_stab.dir/tableau.cpp.o"
  "CMakeFiles/qdt_stab.dir/tableau.cpp.o.d"
  "libqdt_stab.a"
  "libqdt_stab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdt_stab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
