file(REMOVE_RECURSE
  "libqdt_stab.a"
)
