file(REMOVE_RECURSE
  "libqdt_common.a"
)
