file(REMOVE_RECURSE
  "CMakeFiles/qdt_common.dir/matrix.cpp.o"
  "CMakeFiles/qdt_common.dir/matrix.cpp.o.d"
  "CMakeFiles/qdt_common.dir/phase.cpp.o"
  "CMakeFiles/qdt_common.dir/phase.cpp.o.d"
  "CMakeFiles/qdt_common.dir/rng.cpp.o"
  "CMakeFiles/qdt_common.dir/rng.cpp.o.d"
  "libqdt_common.a"
  "libqdt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
