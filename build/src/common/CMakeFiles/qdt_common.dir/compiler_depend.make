# Empty compiler generated dependencies file for qdt_common.
# This may be replaced when dependencies are built.
