file(REMOVE_RECURSE
  "libqdt_transpile.a"
)
