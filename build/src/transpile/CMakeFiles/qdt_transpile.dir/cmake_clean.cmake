file(REMOVE_RECURSE
  "CMakeFiles/qdt_transpile.dir/decompose.cpp.o"
  "CMakeFiles/qdt_transpile.dir/decompose.cpp.o.d"
  "CMakeFiles/qdt_transpile.dir/optimize.cpp.o"
  "CMakeFiles/qdt_transpile.dir/optimize.cpp.o.d"
  "CMakeFiles/qdt_transpile.dir/router.cpp.o"
  "CMakeFiles/qdt_transpile.dir/router.cpp.o.d"
  "CMakeFiles/qdt_transpile.dir/target.cpp.o"
  "CMakeFiles/qdt_transpile.dir/target.cpp.o.d"
  "CMakeFiles/qdt_transpile.dir/transpiler.cpp.o"
  "CMakeFiles/qdt_transpile.dir/transpiler.cpp.o.d"
  "libqdt_transpile.a"
  "libqdt_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdt_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
