
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transpile/decompose.cpp" "src/transpile/CMakeFiles/qdt_transpile.dir/decompose.cpp.o" "gcc" "src/transpile/CMakeFiles/qdt_transpile.dir/decompose.cpp.o.d"
  "/root/repo/src/transpile/optimize.cpp" "src/transpile/CMakeFiles/qdt_transpile.dir/optimize.cpp.o" "gcc" "src/transpile/CMakeFiles/qdt_transpile.dir/optimize.cpp.o.d"
  "/root/repo/src/transpile/router.cpp" "src/transpile/CMakeFiles/qdt_transpile.dir/router.cpp.o" "gcc" "src/transpile/CMakeFiles/qdt_transpile.dir/router.cpp.o.d"
  "/root/repo/src/transpile/target.cpp" "src/transpile/CMakeFiles/qdt_transpile.dir/target.cpp.o" "gcc" "src/transpile/CMakeFiles/qdt_transpile.dir/target.cpp.o.d"
  "/root/repo/src/transpile/transpiler.cpp" "src/transpile/CMakeFiles/qdt_transpile.dir/transpiler.cpp.o" "gcc" "src/transpile/CMakeFiles/qdt_transpile.dir/transpiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qdt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
