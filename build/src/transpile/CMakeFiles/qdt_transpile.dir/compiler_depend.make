# Empty compiler generated dependencies file for qdt_transpile.
# This may be replaced when dependencies are built.
