# Empty dependencies file for qdt_core.
# This may be replaced when dependencies are built.
