file(REMOVE_RECURSE
  "libqdt_core.a"
)
