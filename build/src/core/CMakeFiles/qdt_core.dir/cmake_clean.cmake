file(REMOVE_RECURSE
  "CMakeFiles/qdt_core.dir/tasks.cpp.o"
  "CMakeFiles/qdt_core.dir/tasks.cpp.o.d"
  "libqdt_core.a"
  "libqdt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
