file(REMOVE_RECURSE
  "libqdt_ir.a"
)
