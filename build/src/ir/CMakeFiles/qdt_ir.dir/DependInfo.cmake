
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/circuit.cpp" "src/ir/CMakeFiles/qdt_ir.dir/circuit.cpp.o" "gcc" "src/ir/CMakeFiles/qdt_ir.dir/circuit.cpp.o.d"
  "/root/repo/src/ir/gate.cpp" "src/ir/CMakeFiles/qdt_ir.dir/gate.cpp.o" "gcc" "src/ir/CMakeFiles/qdt_ir.dir/gate.cpp.o.d"
  "/root/repo/src/ir/library.cpp" "src/ir/CMakeFiles/qdt_ir.dir/library.cpp.o" "gcc" "src/ir/CMakeFiles/qdt_ir.dir/library.cpp.o.d"
  "/root/repo/src/ir/operation.cpp" "src/ir/CMakeFiles/qdt_ir.dir/operation.cpp.o" "gcc" "src/ir/CMakeFiles/qdt_ir.dir/operation.cpp.o.d"
  "/root/repo/src/ir/qasm.cpp" "src/ir/CMakeFiles/qdt_ir.dir/qasm.cpp.o" "gcc" "src/ir/CMakeFiles/qdt_ir.dir/qasm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
