# Empty dependencies file for qdt_ir.
# This may be replaced when dependencies are built.
