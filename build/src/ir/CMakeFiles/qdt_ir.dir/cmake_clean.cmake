file(REMOVE_RECURSE
  "CMakeFiles/qdt_ir.dir/circuit.cpp.o"
  "CMakeFiles/qdt_ir.dir/circuit.cpp.o.d"
  "CMakeFiles/qdt_ir.dir/gate.cpp.o"
  "CMakeFiles/qdt_ir.dir/gate.cpp.o.d"
  "CMakeFiles/qdt_ir.dir/library.cpp.o"
  "CMakeFiles/qdt_ir.dir/library.cpp.o.d"
  "CMakeFiles/qdt_ir.dir/operation.cpp.o"
  "CMakeFiles/qdt_ir.dir/operation.cpp.o.d"
  "CMakeFiles/qdt_ir.dir/qasm.cpp.o"
  "CMakeFiles/qdt_ir.dir/qasm.cpp.o.d"
  "libqdt_ir.a"
  "libqdt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
