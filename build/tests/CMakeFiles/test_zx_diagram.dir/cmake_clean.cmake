file(REMOVE_RECURSE
  "CMakeFiles/test_zx_diagram.dir/test_zx_diagram.cpp.o"
  "CMakeFiles/test_zx_diagram.dir/test_zx_diagram.cpp.o.d"
  "test_zx_diagram"
  "test_zx_diagram.pdb"
  "test_zx_diagram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zx_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
