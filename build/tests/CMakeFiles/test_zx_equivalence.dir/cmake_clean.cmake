file(REMOVE_RECURSE
  "CMakeFiles/test_zx_equivalence.dir/test_zx_equivalence.cpp.o"
  "CMakeFiles/test_zx_equivalence.dir/test_zx_equivalence.cpp.o.d"
  "test_zx_equivalence"
  "test_zx_equivalence.pdb"
  "test_zx_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zx_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
