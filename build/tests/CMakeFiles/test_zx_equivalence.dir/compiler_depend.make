# Empty compiler generated dependencies file for test_zx_equivalence.
# This may be replaced when dependencies are built.
