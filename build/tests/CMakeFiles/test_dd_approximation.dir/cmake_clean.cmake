file(REMOVE_RECURSE
  "CMakeFiles/test_dd_approximation.dir/test_dd_approximation.cpp.o"
  "CMakeFiles/test_dd_approximation.dir/test_dd_approximation.cpp.o.d"
  "test_dd_approximation"
  "test_dd_approximation.pdb"
  "test_dd_approximation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dd_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
