# Empty dependencies file for test_dd_simulator.
# This may be replaced when dependencies are built.
