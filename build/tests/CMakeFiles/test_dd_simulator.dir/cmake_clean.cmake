file(REMOVE_RECURSE
  "CMakeFiles/test_dd_simulator.dir/test_dd_simulator.cpp.o"
  "CMakeFiles/test_dd_simulator.dir/test_dd_simulator.cpp.o.d"
  "test_dd_simulator"
  "test_dd_simulator.pdb"
  "test_dd_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dd_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
