file(REMOVE_RECURSE
  "CMakeFiles/test_svsim.dir/test_svsim.cpp.o"
  "CMakeFiles/test_svsim.dir/test_svsim.cpp.o.d"
  "test_svsim"
  "test_svsim.pdb"
  "test_svsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
