# Empty dependencies file for test_svsim.
# This may be replaced when dependencies are built.
