file(REMOVE_RECURSE
  "CMakeFiles/test_dense_unitary.dir/test_dense_unitary.cpp.o"
  "CMakeFiles/test_dense_unitary.dir/test_dense_unitary.cpp.o.d"
  "test_dense_unitary"
  "test_dense_unitary.pdb"
  "test_dense_unitary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_unitary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
