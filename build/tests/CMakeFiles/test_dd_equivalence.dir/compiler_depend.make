# Empty compiler generated dependencies file for test_dd_equivalence.
# This may be replaced when dependencies are built.
