file(REMOVE_RECURSE
  "CMakeFiles/test_dd_equivalence.dir/test_dd_equivalence.cpp.o"
  "CMakeFiles/test_dd_equivalence.dir/test_dd_equivalence.cpp.o.d"
  "test_dd_equivalence"
  "test_dd_equivalence.pdb"
  "test_dd_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dd_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
