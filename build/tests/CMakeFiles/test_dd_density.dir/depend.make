# Empty dependencies file for test_dd_density.
# This may be replaced when dependencies are built.
