file(REMOVE_RECURSE
  "CMakeFiles/test_dd_density.dir/test_dd_density.cpp.o"
  "CMakeFiles/test_dd_density.dir/test_dd_density.cpp.o.d"
  "test_dd_density"
  "test_dd_density.pdb"
  "test_dd_density[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dd_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
