file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_zx_forms.dir/bench_fig3_zx_forms.cpp.o"
  "CMakeFiles/bench_fig3_zx_forms.dir/bench_fig3_zx_forms.cpp.o.d"
  "bench_fig3_zx_forms"
  "bench_fig3_zx_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_zx_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
