# Empty compiler generated dependencies file for bench_fig3_zx_forms.
# This may be replaced when dependencies are built.
