file(REMOVE_RECURSE
  "CMakeFiles/bench_clm3_tn_contraction.dir/bench_clm3_tn_contraction.cpp.o"
  "CMakeFiles/bench_clm3_tn_contraction.dir/bench_clm3_tn_contraction.cpp.o.d"
  "bench_clm3_tn_contraction"
  "bench_clm3_tn_contraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clm3_tn_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
