# Empty dependencies file for bench_clm3_tn_contraction.
# This may be replaced when dependencies are built.
