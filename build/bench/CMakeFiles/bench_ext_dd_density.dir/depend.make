# Empty dependencies file for bench_ext_dd_density.
# This may be replaced when dependencies are built.
