# Empty dependencies file for bench_clm4_zx_reduction.
# This may be replaced when dependencies are built.
