file(REMOVE_RECURSE
  "CMakeFiles/bench_clm4_zx_reduction.dir/bench_clm4_zx_reduction.cpp.o"
  "CMakeFiles/bench_clm4_zx_reduction.dir/bench_clm4_zx_reduction.cpp.o.d"
  "bench_clm4_zx_reduction"
  "bench_clm4_zx_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clm4_zx_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
