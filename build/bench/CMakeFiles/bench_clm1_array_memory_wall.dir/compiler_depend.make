# Empty compiler generated dependencies file for bench_clm1_array_memory_wall.
# This may be replaced when dependencies are built.
