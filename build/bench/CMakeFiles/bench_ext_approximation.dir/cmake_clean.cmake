file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_approximation.dir/bench_ext_approximation.cpp.o"
  "CMakeFiles/bench_ext_approximation.dir/bench_ext_approximation.cpp.o.d"
  "bench_ext_approximation"
  "bench_ext_approximation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
