# Empty dependencies file for bench_fig1_representations.
# This may be replaced when dependencies are built.
