file(REMOVE_RECURSE
  "CMakeFiles/bench_task_simulation.dir/bench_task_simulation.cpp.o"
  "CMakeFiles/bench_task_simulation.dir/bench_task_simulation.cpp.o.d"
  "bench_task_simulation"
  "bench_task_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_task_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
