# Empty compiler generated dependencies file for bench_task_simulation.
# This may be replaced when dependencies are built.
