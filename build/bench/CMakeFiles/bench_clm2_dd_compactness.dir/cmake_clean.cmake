file(REMOVE_RECURSE
  "CMakeFiles/bench_clm2_dd_compactness.dir/bench_clm2_dd_compactness.cpp.o"
  "CMakeFiles/bench_clm2_dd_compactness.dir/bench_clm2_dd_compactness.cpp.o.d"
  "bench_clm2_dd_compactness"
  "bench_clm2_dd_compactness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clm2_dd_compactness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
