# Empty dependencies file for bench_clm2_dd_compactness.
# This may be replaced when dependencies are built.
