file(REMOVE_RECURSE
  "CMakeFiles/bench_task_verification.dir/bench_task_verification.cpp.o"
  "CMakeFiles/bench_task_verification.dir/bench_task_verification.cpp.o.d"
  "bench_task_verification"
  "bench_task_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_task_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
