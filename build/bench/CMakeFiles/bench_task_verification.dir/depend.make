# Empty dependencies file for bench_task_verification.
# This may be replaced when dependencies are built.
