# Empty compiler generated dependencies file for bench_ext_stabilizer.
# This may be replaced when dependencies are built.
