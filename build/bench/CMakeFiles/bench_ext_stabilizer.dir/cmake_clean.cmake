file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_stabilizer.dir/bench_ext_stabilizer.cpp.o"
  "CMakeFiles/bench_ext_stabilizer.dir/bench_ext_stabilizer.cpp.o.d"
  "bench_ext_stabilizer"
  "bench_ext_stabilizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_stabilizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
