# Empty dependencies file for bench_task_compilation.
# This may be replaced when dependencies are built.
