file(REMOVE_RECURSE
  "CMakeFiles/bench_task_compilation.dir/bench_task_compilation.cpp.o"
  "CMakeFiles/bench_task_compilation.dir/bench_task_compilation.cpp.o.d"
  "bench_task_compilation"
  "bench_task_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_task_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
