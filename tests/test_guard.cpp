// qdt::guard — error taxonomy, budget enforcement across every backend,
// deterministic fault injection, and the core fallback ladders.
#include "guard/budget.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <functional>
#include <thread>

#include "arrays/density_matrix.hpp"
#include "arrays/statevector.hpp"
#include "core/tasks.hpp"
#include "guard/error.hpp"
#include "ir/library.hpp"
#include "obs/obs.hpp"
#include "testutil.hpp"

namespace qdt {
namespace {

using core::EcMethod;
using core::SimBackend;
using core::SimulateOptions;

/// Every test starts and ends with a clean fault injector.
class Guard : public ::testing::Test {
 protected:
  void SetUp() override { guard::clear_faults(); }
  void TearDown() override { guard::clear_faults(); }
};

ErrorCode thrown_code(const std::function<void()>& f,
                      Resource* resource = nullptr) {
  try {
    f();
  } catch (const Error& e) {
    if (resource != nullptr) {
      *resource = e.resource();
    }
    return e.code();
  }
  ADD_FAILURE() << "expected qdt::Error";
  return ErrorCode::Internal;
}

// -- Error taxonomy ----------------------------------------------------------

TEST_F(Guard, ErrorCarriesCodeAndResource) {
  const Error e = Error::exhausted(Resource::DdNodes, "node cap");
  EXPECT_EQ(e.code(), ErrorCode::ResourceExhausted);
  EXPECT_EQ(e.resource(), Resource::DdNodes);
  EXPECT_STREQ(e.code_name(), "resource-exhausted");
  EXPECT_STREQ(e.what(), "node cap");
  EXPECT_EQ(Error::bad_input("x").code(), ErrorCode::BadInput);
  EXPECT_EQ(Error::unsupported("x").code(), ErrorCode::Unsupported);
  EXPECT_EQ(Error::internal("x").code(), ErrorCode::Internal);
  EXPECT_EQ(Error::bad_input("x").resource(), Resource::None);
}

TEST_F(Guard, ErrorIsARuntimeError) {
  // Pre-existing generic handlers must keep working.
  EXPECT_THROW(throw Error::bad_input("legacy"), std::runtime_error);
  EXPECT_THROW(throw Error::exhausted(Resource::Memory, "m"), std::exception);
}

TEST_F(Guard, CodeAndResourceNames) {
  EXPECT_STREQ(code_name(ErrorCode::BadInput), "bad-input");
  EXPECT_STREQ(code_name(ErrorCode::Unsupported), "unsupported");
  EXPECT_STREQ(code_name(ErrorCode::ResourceExhausted), "resource-exhausted");
  EXPECT_STREQ(code_name(ErrorCode::Internal), "internal");
  EXPECT_STREQ(resource_name(Resource::Memory), "memory");
  EXPECT_STREQ(resource_name(Resource::Deadline), "deadline");
}

// -- Budget scopes -----------------------------------------------------------

TEST_F(Guard, ChecksAreNoOpsWithoutScope) {
  EXPECT_FALSE(guard::active());
  EXPECT_NO_THROW(guard::check_deadline());
  EXPECT_NO_THROW(guard::check_memory(std::size_t{1} << 60, "huge"));
  EXPECT_NO_THROW(guard::check_dd_nodes(1'000'000'000));
  EXPECT_NO_THROW(guard::check_tn_elements(1'000'000'000));
  EXPECT_NO_THROW(guard::check_mps_bond(1'000'000'000));
}

TEST_F(Guard, NestedScopesOnlyTighten) {
  guard::Budget outer;
  outer.max_dd_nodes = 100;
  outer.max_memory_bytes = 1 << 20;
  const guard::BudgetScope a(outer);
  EXPECT_TRUE(guard::active());
  {
    guard::Budget wider;
    wider.max_dd_nodes = 5000;  // must NOT widen the outer cap
    const guard::BudgetScope b(wider);
    EXPECT_EQ(guard::current_limits()->max_dd_nodes, 100U);
    EXPECT_EQ(guard::current_limits()->max_memory_bytes, 1U << 20);
  }
  {
    guard::Budget narrower;
    narrower.max_dd_nodes = 7;
    const guard::BudgetScope b(narrower);
    EXPECT_EQ(guard::current_limits()->max_dd_nodes, 7U);
  }
  EXPECT_EQ(guard::current_limits()->max_dd_nodes, 100U);
}

TEST_F(Guard, NestedDeadlineNeverExtends) {
  guard::Budget outer;
  outer.deadline_seconds = 0.001;
  const guard::BudgetScope a(outer);
  const double outer_at = guard::current_limits()->deadline_at;
  guard::Budget inner;
  inner.deadline_seconds = 3600.0;  // an hour later — must be clamped
  const guard::BudgetScope b(inner);
  EXPECT_EQ(guard::current_limits()->deadline_at, outer_at);
}

TEST_F(Guard, CheckFunctionsEnforceTheirResource) {
  guard::Budget budget;
  budget.max_memory_bytes = 1024;
  budget.max_dd_nodes = 10;
  budget.max_tn_elements = 16;
  budget.max_mps_bond = 4;
  const guard::BudgetScope scope(budget);
  EXPECT_NO_THROW(guard::check_memory(1024, "fits"));
  EXPECT_NO_THROW(guard::check_dd_nodes(10));

  Resource r = Resource::None;
  EXPECT_EQ(thrown_code([] { guard::check_memory(2048, "spill"); }, &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::Memory);
  EXPECT_EQ(thrown_code([] { guard::check_dd_nodes(11); }, &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::DdNodes);
  EXPECT_EQ(thrown_code([] { guard::check_tn_elements(17); }, &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::TnElements);
  EXPECT_EQ(thrown_code([] { guard::check_mps_bond(5); }, &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::MpsBond);
}

// -- Per-backend enforcement -------------------------------------------------

TEST_F(Guard, StatevectorRespectsMemoryBudget) {
  guard::Budget budget;
  budget.max_memory_bytes = 1 << 20;  // 1 MiB: 16 qubits and below fit
  const guard::BudgetScope scope(budget);
  EXPECT_NO_THROW(arrays::Statevector(10));
  Resource r = Resource::None;
  EXPECT_EQ(thrown_code([] { arrays::Statevector sv(20); }, &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::Memory);
}

TEST_F(Guard, DensityMatrixRespectsMemoryBudget) {
  guard::Budget budget;
  budget.max_memory_bytes = 1 << 20;
  const guard::BudgetScope scope(budget);
  EXPECT_NO_THROW(arrays::DensityMatrix(6));
  Resource r = Resource::None;
  EXPECT_EQ(thrown_code([] { arrays::DensityMatrix dm(10); }, &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::Memory);
}

TEST_F(Guard, ArrayWallIsStructuredEvenWithoutBudget) {
  // The 2^n memory wall (paper Section II) surfaces as ResourceExhausted,
  // not a raw invalid_argument, budget or no budget.
  Resource r = Resource::None;
  EXPECT_EQ(thrown_code([] { arrays::Statevector sv(40); }, &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::Memory);
}

TEST_F(Guard, DdBackendRespectsNodeBudget) {
  SimulateOptions opts;
  opts.budget.max_dd_nodes = 4;
  Resource r = Resource::None;
  EXPECT_EQ(thrown_code([&] {
              core::simulate(ir::ghz(8), SimBackend::DecisionDiagram, opts);
            },
                        &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::DdNodes);
}

TEST_F(Guard, TnBackendRespectsElementBudget) {
  SimulateOptions opts;
  opts.budget.max_tn_elements = 2;
  Resource r = Resource::None;
  EXPECT_EQ(thrown_code([&] {
              core::simulate(ir::bell(), SimBackend::TensorNetwork, opts);
            },
                        &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::TnElements);
}

TEST_F(Guard, MpsBackendRespectsBondBudget) {
  SimulateOptions opts;
  opts.budget.max_mps_bond = 1;  // GHZ needs bond 2 at the cut
  Resource r = Resource::None;
  EXPECT_EQ(
      thrown_code([&] { core::simulate(ir::ghz(4), SimBackend::Mps, opts); },
                  &r),
      ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::MpsBond);
}

TEST_F(Guard, DeadlineExpiryStopsSimulation) {
  SimulateOptions opts;
  opts.budget.deadline_seconds = 1e-9;  // already past by the first check
  Resource r = Resource::None;
  EXPECT_EQ(
      thrown_code(
          [&] { core::simulate(ir::ghz(12), SimBackend::Array, opts); }, &r),
      ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::Deadline);
  // Stabilizer tableau checks the same deadline.
  opts.want_state = false;
  EXPECT_EQ(thrown_code(
                [&] {
                  core::simulate(ir::random_clifford(16, 64, 3),
                                 SimBackend::Stabilizer, opts);
                },
                &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::Deadline);
}

TEST_F(Guard, VerifyRespectsDeadline) {
  guard::Budget budget;
  budget.deadline_seconds = 1e-9;
  Resource r = Resource::None;
  EXPECT_EQ(thrown_code(
                [&] {
                  core::verify(ir::qft(4), ir::qft(4),
                               EcMethod::DdAlternating, budget);
                },
                &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::Deadline);
}

// -- Fault injection ---------------------------------------------------------

TEST_F(Guard, InjectedFaultFiresOnNthCheckpoint) {
  guard::inject_fault(Resource::DdNodes, 3);
  EXPECT_NO_THROW(guard::check_dd_nodes(1));
  EXPECT_NO_THROW(guard::check_dd_nodes(1));
  Resource r = Resource::None;
  EXPECT_EQ(thrown_code([] { guard::check_dd_nodes(1); }, &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::DdNodes);
  EXPECT_EQ(guard::faults_fired(), 1U);
  // One-shot: disarmed after firing.
  EXPECT_NO_THROW(guard::check_dd_nodes(1));
}

TEST_F(Guard, ClearFaultsDisarmsStaleFaults) {
  // The fuzzer runs many cases on one thread; a fault armed (but never
  // fired) in case k must not survive into case k+1.
  guard::inject_fault(Resource::DdNodes, 5);
  guard::inject_fault(Resource::Memory, 7);
  EXPECT_EQ(guard::faults_armed(), 2U);
  guard::clear_faults();
  EXPECT_EQ(guard::faults_armed(), 0U);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NO_THROW(guard::check_dd_nodes(1));
    EXPECT_NO_THROW(guard::check_memory(1, "x"));
  }
}

TEST_F(Guard, ClearFaultsResetsCheckpointCounters) {
  // Counters restart from zero after a clear: a fresh nth=2 fault fires on
  // the second checkpoint *after* the clear, not relative to earlier ones.
  guard::check_dd_nodes(1);
  guard::check_dd_nodes(1);
  guard::clear_faults();
  guard::inject_fault(Resource::DdNodes, 2);
  EXPECT_NO_THROW(guard::check_dd_nodes(1));
  EXPECT_THROW(guard::check_dd_nodes(1), Error);
}

TEST_F(Guard, FaultsAreIndependentPerResource) {
  guard::inject_fault(Resource::Memory, 1);
  EXPECT_NO_THROW(guard::check_deadline());  // different resource
  EXPECT_THROW(guard::check_memory(1, "x"), Error);
}

TEST_F(Guard, EnvVarArmsFaultsOnFreshThreads) {
  ::setenv("QDT_FAULT", "tn_elements:1", 1);
  bool fired = false;
  std::thread worker([&] {
    try {
      guard::check_tn_elements(1);
    } catch (const Error& e) {
      fired = e.code() == ErrorCode::ResourceExhausted &&
              e.resource() == Resource::TnElements;
    }
  });
  worker.join();
  ::unsetenv("QDT_FAULT");
  EXPECT_TRUE(fired);
}

// -- The fallback ladder -----------------------------------------------------

TEST_F(Guard, RobustSimulateFallsFromArrayToDd) {
  guard::inject_fault(Resource::Memory, 1);
  const auto robust =
      core::simulate_robust(ir::ghz(8), {}, SimBackend::Array);
  ASSERT_EQ(robust.attempts.size(), 2U);
  EXPECT_TRUE(robust.degraded());
  EXPECT_EQ(robust.attempts[0].stage, "array");
  EXPECT_NE(robust.attempts[0].error.find("resource-exhausted"),
            std::string::npos);
  EXPECT_EQ(robust.attempts[1].stage, "decision-diagram");
  EXPECT_TRUE(robust.attempts[1].error.empty());
  ASSERT_TRUE(robust.result.state.has_value());
  EXPECT_NEAR(std::abs((*robust.result.state)[0]), 1.0 / std::sqrt(2.0),
              1e-9);
}

TEST_F(Guard, RobustSimulateFallsFromDdToTruncatedMps) {
  guard::inject_fault(Resource::DdNodes, 1);
  const auto robust =
      core::simulate_robust(ir::ghz(6), {}, SimBackend::DecisionDiagram);
  ASSERT_EQ(robust.attempts.size(), 2U);
  EXPECT_NE(robust.attempts[1].stage.find("mps"), std::string::npos);
  EXPECT_NE(robust.attempts[1].stage.find("truncated"), std::string::npos);
  ASSERT_TRUE(robust.result.state.has_value());
  EXPECT_NEAR(std::abs((*robust.result.state)[63]), 1.0 / std::sqrt(2.0),
              1e-9);
}

TEST_F(Guard, RobustSimulateFallsFromMpsToSingleAmplitude) {
  guard::inject_fault(Resource::MpsBond, 1);
  const auto robust = core::simulate_robust(ir::bell(), {}, SimBackend::Mps);
  ASSERT_EQ(robust.attempts.size(), 2U);
  EXPECT_NE(robust.attempts[1].stage.find("single amplitude"),
            std::string::npos);
  // The last rung reports one amplitude, <0..0|C|0..0>.
  ASSERT_TRUE(robust.result.state.has_value());
  ASSERT_EQ(robust.result.state->size(), 1U);
  EXPECT_NEAR(std::abs((*robust.result.state)[0]), 1.0 / std::sqrt(2.0),
              1e-9);
}

TEST_F(Guard, RobustSimulateFallsFromStabilizerOnUnsupported) {
  // want_state is unsupported on the tableau — degrade, don't fail.
  const auto robust =
      core::simulate_robust(ir::ghz(8), {}, SimBackend::Stabilizer);
  ASSERT_GE(robust.attempts.size(), 2U);
  EXPECT_NE(robust.attempts[0].error.find("unsupported"), std::string::npos);
  ASSERT_TRUE(robust.result.state.has_value());
}

TEST_F(Guard, RobustSimulateRethrowsWhenLadderIsExhausted) {
  guard::inject_fault(Resource::TnElements, 1);
  Resource r = Resource::None;
  EXPECT_EQ(thrown_code(
                [&] {
                  core::simulate_robust(ir::bell(), {},
                                        SimBackend::TensorNetwork);
                },
                &r),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(r, Resource::TnElements);
}

TEST_F(Guard, RobustSimulateDoesNotDegradeWhenFirstRungSucceeds) {
  const auto robust = core::simulate_robust(ir::bell(), {});
  ASSERT_EQ(robust.attempts.size(), 1U);
  EXPECT_FALSE(robust.degraded());
  EXPECT_TRUE(robust.attempts[0].error.empty());
  ASSERT_TRUE(robust.result.state.has_value());
  EXPECT_NEAR(std::abs((*robust.result.state)[3]), 1.0 / std::sqrt(2.0),
              1e-9);
}

TEST_F(Guard, RobustVerifyFallsFromZxToDdOnDeadline) {
  guard::inject_fault(Resource::Deadline, 1);
  const auto robust =
      core::verify_robust(ir::qft(3), ir::qft(3), EcMethod::Zx);
  ASSERT_EQ(robust.attempts.size(), 2U);
  EXPECT_EQ(robust.attempts[0].stage, "zx");
  EXPECT_NE(robust.attempts[0].error.find("deadline"), std::string::npos);
  EXPECT_EQ(robust.attempts[1].stage, "dd-alternating");
  EXPECT_TRUE(robust.result.equivalent);
  EXPECT_TRUE(robust.result.conclusive);
}

TEST_F(Guard, RobustVerifyWalksThreeRungs) {
  // ZX dies on its first rewrite round, the DD miter on its first node;
  // the simulative check (evidence only) closes the ladder.
  guard::inject_fault(Resource::Deadline, 1);
  guard::inject_fault(Resource::DdNodes, 1);
  const auto robust =
      core::verify_robust(ir::bell(), ir::bell(), EcMethod::Zx);
  ASSERT_EQ(robust.attempts.size(), 3U);
  EXPECT_EQ(robust.attempts[2].stage, "dd-simulative");
  EXPECT_TRUE(robust.result.equivalent);
  EXPECT_FALSE(robust.result.conclusive);  // stimuli are evidence, not proof
}

TEST_F(Guard, RobustVerifyFallsFromArrayOnMemory) {
  guard::inject_fault(Resource::Memory, 1);
  const auto robust =
      core::verify_robust(ir::qft(3), ir::qft(3), EcMethod::Array);
  ASSERT_GE(robust.attempts.size(), 2U);
  EXPECT_EQ(robust.attempts[0].stage, "array");
  EXPECT_TRUE(robust.result.equivalent);
}

// -- Acceptance: the 30-qubit / 64 MB scenario -------------------------------

TEST_F(Guard, ThirtyQubitsUnder64MbCompletesDegraded) {
  ir::Circuit c = ir::ghz(30);
  c.t(0);  // non-Clifford, so no tableau shortcut would apply
  SimulateOptions opts;
  opts.want_state = false;  // 2^30 amplitudes never fit 64 MB
  opts.shots = 16;
  opts.budget.max_memory_bytes = 64U << 20;

  const auto steps_before =
      obs::counter("qdt.guard.fallback.steps").value();
  const auto robust = core::simulate_robust(c, opts, SimBackend::Array);

  // The array backend must have hit the memory wall and a later rung must
  // have finished the job.
  EXPECT_TRUE(robust.degraded());
  EXPECT_EQ(robust.attempts.front().stage, "array");
  EXPECT_NE(robust.attempts.front().error.find("resource-exhausted"),
            std::string::npos);
  EXPECT_TRUE(robust.attempts.back().error.empty());
  EXPECT_EQ(robust.result.counts.size(), 2U);  // GHZ: all-0s or all-1s
  std::size_t total = 0;
  for (const auto& [word, count] : robust.result.counts) {
    EXPECT_TRUE(word == 0 || word == (std::uint64_t{1} << 30) - 1);
    total += count;
  }
  EXPECT_EQ(total, 16U);
#if QDT_OBS_ENABLED
  EXPECT_GT(obs::counter("qdt.guard.fallback.steps").value(), steps_before);
  EXPECT_GT(obs::counter("qdt.guard.fallback.simulate").value(), 0U);
#else
  (void)steps_before;  // counters are compile-time no-ops in this build
#endif
}

TEST_F(Guard, ChainedFaultsWalkThreeSimulateRungs) {
  guard::inject_fault(Resource::Memory, 1);
  guard::inject_fault(Resource::DdNodes, 1);
  SimulateOptions opts;
  opts.want_state = false;
  opts.shots = 8;
  const auto robust =
      core::simulate_robust(ir::ghz(12), opts, SimBackend::Array);
  ASSERT_EQ(robust.attempts.size(), 3U);
  EXPECT_EQ(robust.attempts[0].stage, "array");
  EXPECT_EQ(robust.attempts[1].stage, "decision-diagram");
  EXPECT_NE(robust.attempts[2].stage.find("mps"), std::string::npos);
  EXPECT_EQ(guard::faults_fired(), 2U);
}

}  // namespace
}  // namespace qdt
