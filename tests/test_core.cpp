#include "core/tasks.hpp"

#include <gtest/gtest.h>

#include "guard/error.hpp"

#include "ir/library.hpp"
#include "testutil.hpp"

namespace qdt::core {
namespace {

const SimBackend kAllBackends[] = {
    SimBackend::Array, SimBackend::DecisionDiagram,
    SimBackend::TensorNetwork, SimBackend::Mps};

TEST(CoreSimulate, AllBackendsAgreeOnState) {
  const ir::Circuit circuits[] = {ir::bell(), ir::ghz(4), ir::qft(4),
                                  ir::random_circuit(3, 3, 7)};
  for (const auto& c : circuits) {
    const auto reference = test::oracle_state(c);
    for (const auto backend : kAllBackends) {
      const auto res = simulate(c, backend);
      ASSERT_TRUE(res.state.has_value())
          << c.name() << " " << backend_name(backend);
      ASSERT_EQ(res.state->size(), reference.dim());
      for (std::size_t i = 0; i < reference.dim(); ++i) {
        EXPECT_NEAR(std::abs((*res.state)[i] - reference.amplitudes()[i]),
                    0.0, 1e-8)
            << c.name() << " " << backend_name(backend) << " amp " << i;
      }
      EXPECT_GT(res.representation_size, 0U);
    }
  }
}

TEST(CoreSimulate, AllBackendsAgreeOnAmplitudes) {
  const auto c = ir::qft(4);
  for (const std::uint64_t basis : {0ULL, 7ULL, 15ULL}) {
    const Complex ref = amplitude(c, basis, SimBackend::Array);
    for (const auto backend : kAllBackends) {
      EXPECT_NEAR(std::abs(amplitude(c, basis, backend) - ref), 0.0, 1e-8)
          << backend_name(backend) << " basis " << basis;
    }
  }
}

TEST(CoreSimulate, SamplingWorksEverywhere) {
  for (const auto backend : kAllBackends) {
    SimulateOptions opts;
    opts.shots = 400;
    opts.seed = 5;
    const auto res = simulate(ir::ghz(3), backend, opts);
    std::size_t total = 0;
    for (const auto& [word, count] : res.counts) {
      EXPECT_TRUE(word == 0 || word == 0b111)
          << backend_name(backend) << " " << word;
      total += count;
    }
    EXPECT_EQ(total, 400U) << backend_name(backend);
  }
}

TEST(CoreSimulate, StabilizerBackendSamples) {
  SimulateOptions opts;
  opts.shots = 500;
  opts.want_state = false;
  opts.seed = 9;
  const auto res = simulate(ir::ghz(5), SimBackend::Stabilizer, opts);
  std::size_t total = 0;
  for (const auto& [word, count] : res.counts) {
    EXPECT_TRUE(word == 0 || word == 0b11111) << word;
    total += count;
  }
  EXPECT_EQ(total, 500U);
}

TEST(CoreSimulate, StabilizerBackendRejectsStateAndNonClifford) {
  EXPECT_THROW(simulate(ir::ghz(3), SimBackend::Stabilizer),
               qdt::Error);  // want_state defaults to true
  SimulateOptions opts;
  opts.want_state = false;
  opts.shots = 10;
  EXPECT_THROW(simulate(ir::qft(3), SimBackend::Stabilizer, opts),
               qdt::Error);
}

TEST(CoreSimulate, NoiseOnlyOnDensityCapableBackends) {
  SimulateOptions opts;
  opts.noise = arrays::NoiseModel::depolarizing_model(0.05);
  EXPECT_NO_THROW(simulate(ir::bell(), SimBackend::Array, opts));
  EXPECT_NO_THROW(simulate(ir::bell(), SimBackend::DecisionDiagram, opts));
  EXPECT_THROW(simulate(ir::bell(), SimBackend::TensorNetwork, opts),
               qdt::Error);
  EXPECT_THROW(simulate(ir::bell(), SimBackend::Mps, opts),
               qdt::Error);
}

TEST(CoreSimulate, RecommendationHeuristics) {
  EXPECT_EQ(recommend_backend(ir::ghz(5)), SimBackend::Array);
  // Wide nearest-neighbor shallow non-Clifford circuit -> MPS.
  ir::Circuit chain(24, "chain");
  for (ir::Qubit q = 0; q + 1 < 24; ++q) {
    chain.h(q).t(q).cx(q, q + 1);
  }
  EXPECT_EQ(recommend_backend(chain), SimBackend::Mps);
  // Wide Clifford circuit -> stabilizer tableau.
  EXPECT_EQ(recommend_backend(ir::random_clifford(24, 200, 3)),
            SimBackend::Stabilizer);
  // Wide circuit, long-range gates, non-Clifford -> decision diagrams.
  EXPECT_EQ(recommend_backend(ir::random_clifford_t(24, 200, 0.2, 3)),
            SimBackend::DecisionDiagram);
}

TEST(CoreVerify, AllMethodsAcceptEquivalentPair) {
  const auto c1 = ir::qft(3);
  ir::Circuit c2 = c1;
  c2.h(0).h(0);
  for (const auto m : {EcMethod::Array, EcMethod::DdAlternating,
                       EcMethod::DdSequential, EcMethod::DdSimulative,
                       EcMethod::Zx}) {
    const auto res = verify(c1, c2, m);
    EXPECT_TRUE(res.equivalent) << method_name(m);
  }
}

TEST(CoreVerify, AllMethodsRejectFaultyPair) {
  const auto c1 = ir::qft(3);
  ir::Circuit c2 = c1;
  c2.t(1);
  for (const auto m : {EcMethod::Array, EcMethod::DdAlternating,
                       EcMethod::DdSequential, EcMethod::DdSimulative,
                       EcMethod::Zx}) {
    const auto res = verify(c1, c2, m);
    EXPECT_FALSE(res.equivalent) << method_name(m);
    EXPECT_TRUE(res.conclusive) << method_name(m);
  }
}

TEST(CoreVerify, SimulativePassIsInconclusive) {
  const auto c = ir::ghz(3);
  const auto res = verify(c, c, EcMethod::DdSimulative);
  EXPECT_TRUE(res.equivalent);
  EXPECT_FALSE(res.conclusive);  // stimuli passed, but that is no proof
}

TEST(CoreCompile, CompileAndVerifyLoop) {
  transpile::Target target{transpile::CouplingMap::grid(2, 3),
                           transpile::NativeGateSet::CxRzSxX, "grid"};
  const auto res = compile_and_verify(ir::qft(5), target);
  EXPECT_TRUE(res.verification.equivalent);
  EXPECT_GT(res.transpiled.after.total_gates, 0U);
  // Everything is native and mapped.
  for (const auto& op : res.transpiled.circuit.ops()) {
    if (op.num_qubits() == 2) {
      EXPECT_TRUE(target.coupling.connected(op.qubits()[0], op.qubits()[1]));
    }
  }
}

TEST(CoreCompile, ZxVerificationOfCompilation) {
  transpile::Target target{transpile::CouplingMap::line(4),
                           transpile::NativeGateSet::CxRzSxX, "line"};
  const auto res =
      compile_and_verify(ir::grover(3, 4), target, EcMethod::Zx);
  EXPECT_TRUE(res.verification.equivalent);
}

TEST(Core, VersionIsSet) {
  EXPECT_STRNE(version(), "");
}

}  // namespace
}  // namespace qdt::core
