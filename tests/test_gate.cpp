#include "ir/gate.hpp"

#include <gtest/gtest.h>

#include "common/matrix.hpp"

namespace qdt::ir {
namespace {

// Every parameter-free single-qubit kind in the catalogue.
const GateKind kFixed1q[] = {GateKind::I,  GateKind::X,   GateKind::Y,
                             GateKind::Z,  GateKind::H,   GateKind::S,
                             GateKind::Sdg, GateKind::T,  GateKind::Tdg,
                             GateKind::SX, GateKind::SXdg};

TEST(Gate, AllFixed1qMatricesAreUnitary) {
  for (const auto k : kFixed1q) {
    EXPECT_TRUE(gate_matrix2(k, {}).is_unitary()) << gate_name(k);
  }
}

TEST(Gate, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(GateKind::Barrier); ++i) {
    const auto k = static_cast<GateKind>(i);
    EXPECT_EQ(gate_from_name(gate_name(k)), k) << gate_name(k);
  }
  EXPECT_THROW(gate_from_name("nonsense"), std::invalid_argument);
}

TEST(Gate, InverseKindsComposeToIdentity) {
  for (const auto k : kFixed1q) {
    const Mat2 m = gate_matrix2(k, {});
    const Mat2 inv = gate_matrix2(gate_inverse_kind(k), {});
    EXPECT_TRUE(approx_equal(m * inv, Mat2::identity())) << gate_name(k);
  }
}

TEST(Gate, AdjointWrapsOnlyAtHalfTurn) {
  // Half-angle rotations are 4pi-periodic, so negating theta == pi wraps
  // back to +pi and the structural adjoint picks up a -1.
  EXPECT_TRUE(gate_adjoint_wraps(GateKind::RX, {Phase::pi()}));
  EXPECT_TRUE(gate_adjoint_wraps(GateKind::RY, {Phase::pi()}));
  EXPECT_TRUE(gate_adjoint_wraps(GateKind::RZ, {Phase::pi()}));
  EXPECT_TRUE(gate_adjoint_wraps(GateKind::RZZ, {Phase::pi()}));
  EXPECT_TRUE(gate_adjoint_wraps(GateKind::RXX, {Phase::pi()}));
  EXPECT_TRUE(gate_adjoint_wraps(
      GateKind::U, {Phase::pi(), Phase::zero(), Phase::zero()}));
  // Any other angle negates in-range; phase-type gates are 2pi-periodic.
  EXPECT_FALSE(gate_adjoint_wraps(GateKind::RY, {Phase::pi_2()}));
  EXPECT_FALSE(gate_adjoint_wraps(GateKind::RZ, {Phase::minus_pi_4()}));
  EXPECT_FALSE(gate_adjoint_wraps(GateKind::P, {Phase::pi()}));
  EXPECT_FALSE(gate_adjoint_wraps(GateKind::H, {}));
}

TEST(Gate, HalfTurnRotationAdjointIsMinusInverse) {
  // The concrete shape of the wrap: ry(pi)^T ry(pi) = -I, so a structural
  // adjoint pair is only an inverse up to global phase — observable once
  // a control is attached (see Circuit::adjoint's correction).
  const Mat2 ry = gate_matrix2(GateKind::RY, {Phase::pi()});
  const Mat2 adj = gate_matrix2(
      gate_inverse_kind(GateKind::RY),
      gate_inverse_params(GateKind::RY, {Phase::pi()}));
  EXPECT_TRUE(approx_equal(ry * adj, Mat2::identity() * Complex{-1.0, 0.0}));
}

TEST(Gate, SSquaredIsZ) {
  const Mat2 s = gate_matrix2(GateKind::S, {});
  const Mat2 z = gate_matrix2(GateKind::Z, {});
  EXPECT_TRUE(approx_equal(s * s, z));
}

TEST(Gate, TSquaredIsS) {
  const Mat2 t = gate_matrix2(GateKind::T, {});
  const Mat2 s = gate_matrix2(GateKind::S, {});
  EXPECT_TRUE(approx_equal(t * t, s));
}

TEST(Gate, SxSquaredIsX) {
  const Mat2 sx = gate_matrix2(GateKind::SX, {});
  const Mat2 x = gate_matrix2(GateKind::X, {});
  EXPECT_TRUE(approx_equal(sx * sx, x));
}

TEST(Gate, HadamardConjugatesXToZ) {
  const Mat2 h = gate_matrix2(GateKind::H, {});
  const Mat2 x = gate_matrix2(GateKind::X, {});
  const Mat2 z = gate_matrix2(GateKind::Z, {});
  EXPECT_TRUE(approx_equal(h * x * h, z));
}

TEST(Gate, RzMatchesPhaseUpToGlobalPhase) {
  // RZ(theta) = e^{-i theta/2} P(theta).
  const std::vector<Phase> theta = {Phase::pi_2()};
  const Mat2 rz = gate_matrix2(GateKind::RZ, theta);
  const Mat2 p = gate_matrix2(GateKind::P, theta);
  EXPECT_TRUE(equal_up_to_global_phase(rz, p));
}

TEST(Gate, RotationsAtPiEqualPaulisUpToPhase) {
  const std::vector<Phase> pi = {Phase::pi()};
  EXPECT_TRUE(equal_up_to_global_phase(gate_matrix2(GateKind::RX, pi),
                                       gate_matrix2(GateKind::X, {})));
  EXPECT_TRUE(equal_up_to_global_phase(gate_matrix2(GateKind::RY, pi),
                                       gate_matrix2(GateKind::Y, {})));
  EXPECT_TRUE(equal_up_to_global_phase(gate_matrix2(GateKind::RZ, pi),
                                       gate_matrix2(GateKind::Z, {})));
}

TEST(Gate, UGateGeneralizesOthers) {
  // U(0, 0, lambda) = P(lambda).
  const Phase lambda = Phase::pi_4();
  const Mat2 u =
      gate_matrix2(GateKind::U, {Phase::zero(), Phase::zero(), lambda});
  const Mat2 p = gate_matrix2(GateKind::P, {lambda});
  EXPECT_TRUE(approx_equal(u, p));
  // U(pi/2, 0, pi) = H.
  const Mat2 u2 =
      gate_matrix2(GateKind::U, {Phase::pi_2(), Phase::zero(), Phase::pi()});
  EXPECT_TRUE(approx_equal(u2, gate_matrix2(GateKind::H, {})));
}

TEST(Gate, ParameterizedInverses) {
  const std::vector<Phase> theta = {Phase{3, 8}};
  for (const auto k : {GateKind::RX, GateKind::RY, GateKind::RZ,
                       GateKind::P}) {
    const Mat2 m = gate_matrix2(k, theta);
    const Mat2 inv =
        gate_matrix2(gate_inverse_kind(k), gate_inverse_params(k, theta));
    EXPECT_TRUE(approx_equal(m * inv, Mat2::identity())) << gate_name(k);
  }
}

TEST(Gate, UInverse) {
  const std::vector<Phase> params = {Phase{1, 3}, Phase{2, 5}, Phase{5, 7}};
  const Mat2 m = gate_matrix2(GateKind::U, params);
  const Mat2 inv = gate_matrix2(GateKind::U,
                                gate_inverse_params(GateKind::U, params));
  EXPECT_TRUE(approx_equal(m * inv, Mat2::identity(), 1e-8));
}

TEST(Gate, TwoQubitMatricesAreUnitary) {
  EXPECT_TRUE(gate_matrix4(GateKind::Swap, {}).is_unitary());
  EXPECT_TRUE(gate_matrix4(GateKind::ISwap, {}).is_unitary());
  EXPECT_TRUE(gate_matrix4(GateKind::ISwapDg, {}).is_unitary());
  EXPECT_TRUE(gate_matrix4(GateKind::RZZ, {Phase{1, 3}}).is_unitary());
  EXPECT_TRUE(gate_matrix4(GateKind::RXX, {Phase{1, 3}}).is_unitary());
}

TEST(Gate, ISwapInverse) {
  const Mat4 m = gate_matrix4(GateKind::ISwap, {});
  const Mat4 inv = gate_matrix4(GateKind::ISwapDg, {});
  EXPECT_TRUE(approx_equal(m * inv, Mat4::identity()));
}

TEST(Gate, DiagonalFlags) {
  EXPECT_TRUE(gate_is_diagonal(GateKind::Z));
  EXPECT_TRUE(gate_is_diagonal(GateKind::T));
  EXPECT_TRUE(gate_is_diagonal(GateKind::RZ));
  EXPECT_TRUE(gate_is_diagonal(GateKind::RZZ));
  EXPECT_FALSE(gate_is_diagonal(GateKind::X));
  EXPECT_FALSE(gate_is_diagonal(GateKind::H));
}

TEST(Gate, ArityAndParamCounts) {
  EXPECT_EQ(gate_arity(GateKind::H), 1);
  EXPECT_EQ(gate_arity(GateKind::Swap), 2);
  EXPECT_EQ(gate_param_count(GateKind::U), 3);
  EXPECT_EQ(gate_param_count(GateKind::RZ), 1);
  EXPECT_EQ(gate_param_count(GateKind::X), 0);
}

TEST(Gate, WrongArityThrows) {
  EXPECT_THROW(gate_matrix2(GateKind::Swap, {}), std::invalid_argument);
  EXPECT_THROW(gate_matrix4(GateKind::H, {}), std::invalid_argument);
}

}  // namespace
}  // namespace qdt::ir
