#include "arrays/statevector.hpp"

#include <gtest/gtest.h>

#include "guard/error.hpp"

#include <cmath>
#include <limits>

#include "ir/library.hpp"
#include "testutil.hpp"

namespace qdt::arrays {
namespace {

using ir::GateKind;
using ir::Operation;

TEST(Statevector, InitialState) {
  const Statevector sv(3);
  EXPECT_EQ(sv.dim(), 8U);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, RefusesHugeAllocation) {
  EXPECT_THROW(Statevector(40), qdt::Error);
}

TEST(Statevector, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Statevector(std::vector<Complex>(3)), std::invalid_argument);
}

TEST(Statevector, HadamardCreatesSuperposition) {
  Statevector sv(1);
  sv.apply(Operation{GateKind::H, 0});
  EXPECT_NEAR(sv.amplitude(0).real(), kInvSqrt2, 1e-12);
  EXPECT_NEAR(sv.amplitude(1).real(), kInvSqrt2, 1e-12);
}

TEST(Statevector, PaperExampleOneCnotOnPlusState) {
  // The paper's Example 1: CNOT (control q1, target q0) applied to
  // 1/sqrt(2) [1 0 1 0]^T yields the Bell state 1/sqrt(2) [1 0 0 1]^T.
  Statevector sv(std::vector<Complex>{
      kInvSqrt2, 0.0, kInvSqrt2, 0.0});
  sv.apply(Operation{GateKind::X, {0}, {1}});
  EXPECT_NEAR(std::abs(sv.amplitude(0b00)), kInvSqrt2, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), kInvSqrt2, 1e-12);
}

TEST(Statevector, CnotControlAndTargetOrder) {
  Statevector sv(2);
  sv.apply(Operation{GateKind::X, 0});  // |01> (q0 = 1)
  sv.apply(Operation{GateKind::X, {1}, {0}});  // control q0 -> flips q1
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1.0, 1e-12);
}

TEST(Statevector, ToffoliOnlyFiresWhenBothControlsSet) {
  for (std::uint64_t input = 0; input < 8; ++input) {
    Statevector sv(3);
    for (std::size_t q = 0; q < 3; ++q) {
      if ((input >> q) & 1) {
        sv.apply(Operation{GateKind::X, static_cast<ir::Qubit>(q)});
      }
    }
    sv.apply(Operation{GateKind::X, {2}, {0, 1}});
    const std::uint64_t expected =
        (input & 3) == 3 ? (input ^ 4) : input;
    EXPECT_NEAR(std::norm(sv.amplitude(expected)), 1.0, 1e-12)
        << "input=" << input;
  }
}

TEST(Statevector, SwapExchangesQubits) {
  Statevector sv(2);
  sv.apply(Operation{GateKind::X, 0});
  sv.apply(Operation{GateKind::Swap, std::vector<ir::Qubit>{0, 1}});
  EXPECT_NEAR(std::norm(sv.amplitude(0b10)), 1.0, 1e-12);
}

TEST(Statevector, GatePlusAdjointIsIdentityOnRandomState) {
  Rng rng(3);
  const auto amps = rng.random_state(16);
  const Statevector original{amps};
  const ir::Circuit c = ir::random_circuit(4, 8, 77);
  Statevector sv = original;
  for (const auto& op : c.ops()) {
    sv.apply(op);
  }
  const ir::Circuit inv = c.adjoint();
  for (const auto& op : inv.ops()) {
    sv.apply(op);
  }
  EXPECT_TRUE(sv.approx_equal(original, 1e-8));
}

TEST(Statevector, NormPreservedByUnitaries) {
  Statevector sv(4);
  const ir::Circuit c = ir::random_circuit(4, 10, 5);
  for (const auto& op : c.ops()) {
    sv.apply(op);
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

TEST(Statevector, ProbOne) {
  Statevector sv(2);
  sv.apply(Operation{GateKind::H, 0});
  EXPECT_NEAR(sv.prob_one(0), 0.5, 1e-12);
  EXPECT_NEAR(sv.prob_one(1), 0.0, 1e-12);
}

TEST(Statevector, MeasurementCollapses) {
  Rng rng(1);
  Statevector sv(1);
  sv.apply(Operation{GateKind::H, 0});
  const bool outcome = sv.measure(0, rng);
  EXPECT_NEAR(std::norm(sv.amplitude(outcome ? 1 : 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::norm(sv.amplitude(outcome ? 0 : 1)), 0.0, 1e-12);
}

TEST(Statevector, MeasurementStatisticsMatchBorn) {
  std::size_t ones = 0;
  Rng rng(9);
  const std::size_t trials = 2000;
  for (std::size_t i = 0; i < trials; ++i) {
    Statevector sv(1);
    // RY(2*pi/3): prob(1) = sin^2(pi/3) = 0.75.
    sv.apply(Operation{GateKind::RY, 0, {Phase{2, 3}}});
    ones += sv.measure(0, rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.75, 0.05);
}

TEST(Statevector, SampleMatchesProbabilities) {
  const auto sv = test::oracle_state(ir::bell());
  Rng rng(4);
  std::size_t count00 = 0;
  std::size_t count11 = 0;
  const std::size_t shots = 4000;
  for (std::size_t i = 0; i < shots; ++i) {
    const auto s = sv.sample(rng);
    ASSERT_TRUE(s == 0 || s == 3) << s;
    (s == 0 ? count00 : count11) += 1;
  }
  EXPECT_NEAR(static_cast<double>(count00) / shots, 0.5, 0.05);
}

TEST(Statevector, ResetForcesZero) {
  Rng rng(5);
  Statevector sv(2);
  sv.apply(Operation{GateKind::X, 1});
  sv.reset(1, rng);
  EXPECT_NEAR(std::norm(sv.amplitude(0)), 1.0, 1e-12);
}

TEST(Statevector, InnerProductAndFidelity) {
  const auto bell_sv = test::oracle_state(ir::bell());
  EXPECT_NEAR(bell_sv.fidelity(bell_sv), 1.0, 1e-12);
  const Statevector zero(2);
  EXPECT_NEAR(bell_sv.fidelity(zero), 0.5, 1e-12);
}

TEST(Statevector, EqualUpToGlobalPhase) {
  const auto a = test::oracle_state(ir::bell());
  Statevector b = a;
  b.apply_matrix2(0, Mat2::identity() * Complex{0.0, 1.0});
  EXPECT_FALSE(a.approx_equal(b));
  EXPECT_TRUE(a.equal_up_to_global_phase(b));
}

TEST(Statevector, MeasureClampsProbabilityAboveOne) {
  // Adversarially rounded state: |a|^2 a hair above 1.0 on the |1> branch.
  // Unclamped, keep_prob = p1 > 1 gives scale = 1/sqrt(p1) < 1 and the
  // surviving amplitude shrinks; clamped, the scale is exactly 1.0 and the
  // amplitude must come back bit-for-bit.
  const double a1 = 1.0000000000000002;  // 1.0 + 1 ulp
  ASSERT_GT(a1 * a1, 1.0);
  Statevector sv{std::vector<Complex>{Complex{0.0}, Complex{a1}}};
  ASSERT_GT(sv.prob_one(0), 1.0);
  Rng rng(3);
  EXPECT_TRUE(sv.measure(0, rng));
  EXPECT_EQ(sv.amplitude(1).real(), a1);
  EXPECT_EQ(sv.amplitude(1).imag(), 0.0);
  EXPECT_EQ(sv.amplitude(0), Complex{});
}

TEST(Statevector, MeasureThrowsOnCorruptedState) {
  // A NaN amplitude poisons prob_one, so neither branch has a positive
  // keep probability. The old code silently skipped renormalization and
  // returned a bogus outcome on the NaN state; it must now fail loudly
  // with a typed internal error.
  Statevector sv{std::vector<Complex>{
      Complex{0.0}, Complex{std::numeric_limits<double>::quiet_NaN()}}};
  Rng rng(3);
  EXPECT_THROW(sv.measure(0, rng), qdt::Error);
}

TEST(Statevector, CdfSamplingMatchesProbabilities) {
  Rng rng(11);
  const Statevector sv{rng.random_state(16)};
  const auto cdf = sv.cumulative_probabilities();
  ASSERT_EQ(cdf.size(), sv.dim());
  EXPECT_NEAR(cdf.back(), 1.0, 1e-9);
  // The CDF draw agrees with the non-static sample() for the same stream.
  Rng draw_a(5);
  Rng draw_b(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(Statevector::sample_from_cdf(cdf, draw_a), sv.sample(draw_b));
  }
}

TEST(Statevector, ControlledGateViaMaskMatchesOperation) {
  // Applying X on q1 controlled by q0 via the raw-mask API matches the
  // Operation path.
  Rng rng(8);
  const auto amps = rng.random_state(8);
  Statevector a{amps};
  Statevector b{amps};
  a.apply(Operation{GateKind::X, {1}, {0}});
  b.apply_matrix2(1, ir::gate_matrix2(GateKind::X, {}), /*control_mask=*/1);
  EXPECT_TRUE(a.approx_equal(b));
}

}  // namespace
}  // namespace qdt::arrays
