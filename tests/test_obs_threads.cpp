// qdt::obs under concurrency — 8 threads hammering the registry and the
// primitives while readers snapshot. Correctness assertions here are
// deliberately simple (totals must add up); the deeper contract is "no
// data races", which the ThreadSanitizer build of this same binary checks
// (cmake -DQDT_SANITIZE=thread, see README).
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "trace/trace.hpp"

namespace qdt::obs {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kIters = 20000;

TEST(ObsThreads, ConcurrentCounterAddsAreLossless) {
  Counter& c = counter("qdt.test.threads.counter");
  c.reset();
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::size_t i = 0; i < kIters; ++i) {
        c.add();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
#if QDT_OBS_ENABLED
  EXPECT_EQ(c.value(), kThreads * kIters);
#else
  EXPECT_EQ(c.value(), 0U);
#endif
}

TEST(ObsThreads, ConcurrentRegistryLookupsResolveToOneInstance) {
  // All threads race to register/resolve the same names; every name must
  // resolve to a single shared instance (sharded writes still sum up).
  std::vector<std::thread> workers;
  std::atomic<int> go{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&go] {
      go.wait(0);
      for (std::size_t i = 0; i < 200; ++i) {
        counter("qdt.test.threads.shared").add();
        gauge("qdt.test.threads.gauge").add(1);
        histogram("qdt.test.threads.histo").observe(static_cast<double>(i));
      }
    });
  }
  go.store(1);
  go.notify_all();
  for (auto& w : workers) {
    w.join();
  }
#if QDT_OBS_ENABLED
  EXPECT_EQ(counter("qdt.test.threads.shared").value(), kThreads * 200);
  EXPECT_EQ(gauge("qdt.test.threads.gauge").value(),
            static_cast<std::int64_t>(kThreads * 200));
#endif
}

TEST(ObsThreads, SnapshotsRaceWritersWithoutTearing) {
  Counter& c = counter("qdt.test.threads.snap");
  c.reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads - 2; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
        gauge("qdt.test.threads.snapgauge").set(7);
        histogram("qdt.test.threads.snaphisto").observe(1.5);
      }
    });
  }
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const Snapshot snap = snapshot();
    const std::string json = to_json(snap);
    EXPECT_FALSE(json.empty());
    for (const auto& entry : snap.counters) {
      if (entry.name == "qdt.test.threads.snap") {
        // Monotone under concurrent adds: a later snapshot never reads a
        // smaller merged value.
        EXPECT_GE(entry.value, last);
        last = entry.value;
      }
    }
  }
  stop.store(true);
  for (auto& w : writers) {
    w.join();
  }
}

TEST(ObsThreads, SpansFromManyThreadsAllAggregate) {
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (std::size_t i = 0; i < 500; ++i) {
        const trace::Span span("qdt.test.threads.span");
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
#if QDT_OBS_ENABLED
  // The span ring is bounded (spans_dropped accounts for the overflow),
  // so the assertion is presence, not an exact count.
  Snapshot snap = snapshot();
  trace::fill_obs_spans(snap);
  std::size_t seen = 0;
  for (const auto& s : snap.spans) {
    if (s.name == "qdt.test.threads.span") {
      ++seen;
    }
  }
  EXPECT_GE(seen + snap.spans_dropped, 1U);
#endif
}

TEST(ObsThreads, ResetRacesWritersWithoutCrashing) {
  // No total to assert — adds legitimately land on either side of the
  // reset. The contract is purely "no torn state, no race" (TSan build).
  Counter& c = counter("qdt.test.threads.reset");
  std::vector<std::thread> workers;
  std::atomic<bool> stop{false};
  for (std::size_t t = 0; t < kThreads - 1; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
      }
    });
  }
  for (std::size_t i = 0; i < 100; ++i) {
    c.reset();
    (void)c.value();
  }
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
}

}  // namespace
}  // namespace qdt::obs
