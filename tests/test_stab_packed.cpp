// Differential suite pinning the packed (bit-parallel) tableau against the
// element-wise reference: every Clifford generator at the word-boundary
// widths, measurement collapse under a fixed seed, the batched circuit
// driver, and the group-membership queries — all compared with the memcmp
// differential (tableaus_equal). Plus the typed-error contracts the packed
// rewrite fixed, and the thread-count invariance promised by the qdt::par
// determinism contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "guard/error.hpp"
#include "ir/library.hpp"
#include "par/pool.hpp"
#include "stab/reference.hpp"
#include "stab/tableau.hpp"

namespace qdt::stab {
namespace {

/// The word-boundary widths: single-bit, last-bit-of-word, exactly one
/// word, first-bit-of-second-word, and a multi-word case.
const std::size_t kWidths[] = {1, 63, 64, 65, 130};

/// Drive both tableaus through the same entangling prefix so gate tests
/// run on a state with non-trivial X/Z/sign structure, not just |0...0>.
template <class Tab>
void scramble(Tab& t, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t gates = 4 * n + 8;
  for (std::size_t g = 0; g < gates; ++g) {
    const std::size_t q = rng.index(n);
    switch (rng.index(4)) {
      case 0:
        t.h(q);
        break;
      case 1:
        t.s(q);
        break;
      case 2:
        t.x(q);
        break;
      default: {
        if (n > 1) {
          std::size_t r = rng.index(n - 1);
          r += (r >= q) ? 1 : 0;
          t.cx(q, r);
        } else {
          t.h(q);
        }
        break;
      }
    }
  }
}

using GateFn = std::function<void(Tableau&, ReferenceTableau&, std::size_t,
                                  std::size_t)>;

struct NamedGate {
  const char* name;
  GateFn apply;
};

const NamedGate kGates[] = {
    {"h", [](Tableau& p, ReferenceTableau& r, std::size_t a,
             std::size_t) { p.h(a), r.h(a); }},
    {"s", [](Tableau& p, ReferenceTableau& r, std::size_t a,
             std::size_t) { p.s(a), r.s(a); }},
    {"sdg", [](Tableau& p, ReferenceTableau& r, std::size_t a,
               std::size_t) { p.sdg(a), r.sdg(a); }},
    {"x", [](Tableau& p, ReferenceTableau& r, std::size_t a,
             std::size_t) { p.x(a), r.x(a); }},
    {"y", [](Tableau& p, ReferenceTableau& r, std::size_t a,
             std::size_t) { p.y(a), r.y(a); }},
    {"z", [](Tableau& p, ReferenceTableau& r, std::size_t a,
             std::size_t) { p.z(a), r.z(a); }},
    {"sx", [](Tableau& p, ReferenceTableau& r, std::size_t a,
              std::size_t) { p.sx(a), r.sx(a); }},
    {"sxdg", [](Tableau& p, ReferenceTableau& r, std::size_t a,
                std::size_t) { p.sxdg(a), r.sxdg(a); }},
    {"cx", [](Tableau& p, ReferenceTableau& r, std::size_t a,
              std::size_t b) { p.cx(a, b), r.cx(a, b); }},
    {"cz", [](Tableau& p, ReferenceTableau& r, std::size_t a,
              std::size_t b) { p.cz(a, b), r.cz(a, b); }},
    {"swap", [](Tableau& p, ReferenceTableau& r, std::size_t a,
                std::size_t b) { p.swap(a, b), r.swap(a, b); }},
};

TEST(StabPackedDiff, EveryGateMatchesReferenceAtWordBoundaries) {
  for (const std::size_t n : kWidths) {
    for (const auto& gate : kGates) {
      Tableau packed(n);
      ReferenceTableau ref(n);
      scramble(packed, n, 7 * n + 1);
      scramble(ref, n, 7 * n + 1);
      ASSERT_TRUE(tableaus_equal(packed, ref))
          << "scramble diverged at n=" << n;
      // Hit the first, last, and a word-straddling qubit choice.
      const std::size_t qa[] = {0, n - 1, n / 2};
      for (const std::size_t a : qa) {
        const std::size_t b = (a + 1) % n;
        if (a == b) {
          gate.apply(packed, ref, a, a);  // 1-qubit gates at n == 1
        } else {
          gate.apply(packed, ref, a, b);
        }
        ASSERT_TRUE(tableaus_equal(packed, ref))
            << gate.name << " diverged at n=" << n << " q=" << a;
      }
    }
  }
}

TEST(StabPackedDiff, MeasurementCollapseIsSeedDeterministicAndMatches) {
  for (const std::size_t n : kWidths) {
    Tableau packed(n);
    ReferenceTableau ref(n);
    scramble(packed, n, 13 * n + 5);
    scramble(ref, n, 13 * n + 5);
    Rng rng_packed(42);
    Rng rng_ref(42);
    for (std::size_t q = 0; q < n; ++q) {
      const bool mp = packed.measure(q, rng_packed);
      const bool mr = ref.measure(q, rng_ref);
      ASSERT_EQ(mp, mr) << "outcome diverged at n=" << n << " q=" << q;
      ASSERT_TRUE(tableaus_equal(packed, ref))
          << "collapse diverged at n=" << n << " q=" << q;
      // Re-measuring a collapsed qubit is deterministic and stable.
      ASSERT_EQ(packed.measure(q, rng_packed), mp);
      ASSERT_DOUBLE_EQ(packed.prob_one(q), mp ? 1.0 : 0.0);
    }
  }
}

TEST(StabPackedDiff, BatchedCircuitDriverMatchesReferenceOnFuzzCircuits) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (const std::size_t n : {2ULL, 65ULL, 130ULL}) {
      auto circuit = ir::random_clifford(n, 40 * n, seed);
      // Sprinkle measurements/resets so batching has to flush mid-stream.
      circuit.measure(0).h(0).measure(static_cast<ir::Qubit>(n - 1)).reset(0);
      StabilizerSimulator packed(n, /*seed=*/99);
      ReferenceSimulator ref(n, /*seed=*/99);
      const auto rec_packed = packed.run(circuit);
      const auto rec_ref = ref.run(circuit);
      ASSERT_EQ(rec_packed, rec_ref) << "records diverged at n=" << n;
      ASSERT_TRUE(tableaus_equal(packed.tableau(), ref.tableau()))
          << "final state diverged at n=" << n << " seed=" << seed;
    }
  }
}

TEST(StabPackedDiff, QueriesAgreeWithReferenceOnFuzzCircuits) {
  Rng pick(777);
  for (const std::size_t n : kWidths) {
    StabilizerSimulator packed(n, 5);
    ReferenceSimulator ref(n, 5);
    const auto circuit = ir::random_clifford(n, 30 * n, 11 * n);
    packed.run(circuit);
    ref.run(circuit);
    for (int trial = 0; trial < 8; ++trial) {
      std::string paulis(n, 'I');
      for (auto& c : paulis) {
        c = "IXYZ"[pick.index(4)];
      }
      EXPECT_EQ(packed.tableau().pauli_expectation(paulis),
                ref.tableau().pauli_expectation(paulis))
          << "n=" << n << " obs=" << paulis;
    }
    for (std::size_t q = 0; q < n; ++q) {
      EXPECT_DOUBLE_EQ(packed.tableau().prob_one(q),
                       ref.tableau().prob_one(q));
    }
    // same_state: self-equal, and order-insensitive to an equivalent
    // generating set (apply a stabilizer-preserving regauge via circuit
    // re-run with the same seed).
    StabilizerSimulator again(n, 5);
    again.run(circuit);
    EXPECT_TRUE(Tableau::same_state(packed.tableau(), again.tableau()));
    EXPECT_EQ(ReferenceTableau::same_state(ref.tableau(), ref.tableau()),
              Tableau::same_state(packed.tableau(), packed.tableau()));
    // A single flipped sign must break same_state the same way it does in
    // the reference: X on qubit 0 anticommutes with some stabilizer here
    // or leaves the state identical — check agreement either way.
    StabilizerSimulator flipped(n, 5);
    flipped.run(circuit);
    flipped.tableau().x(0);
    ReferenceSimulator flipped_ref(n, 5);
    flipped_ref.run(circuit);
    flipped_ref.tableau().x(0);
    EXPECT_EQ(Tableau::same_state(packed.tableau(), flipped.tableau()),
              ReferenceTableau::same_state(ref.tableau(),
                                           flipped_ref.tableau()));
  }
}

TEST(StabPackedDiff, ResultsAreBitwiseIdenticalAcrossThreadCounts) {
  const std::size_t n = 130;
  const auto circuit = ir::random_clifford(n, 2000, 3);
  std::vector<std::uint64_t> words1;
  std::vector<std::uint8_t> signs1;
  for (const std::size_t threads : {1, 2, 8}) {
    par::set_max_threads(threads);
    StabilizerSimulator sim(n, 17);
    sim.run(circuit);
    if (threads == 1) {
      words1 = sim.tableau().words();
      signs1 = sim.tableau().signs();
    } else {
      EXPECT_EQ(sim.tableau().words(), words1) << "threads=" << threads;
      EXPECT_EQ(sim.tableau().signs(), signs1) << "threads=" << threads;
    }
  }
  par::set_max_threads(1);
}

// -- Typed-error contracts (the satellite bugfixes) --------------------------

TEST(StabPackedErrors, ZeroQubitTableauThrowsTypedBadInput) {
  try {
    Tableau t(0);
    FAIL() << "expected qdt::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::BadInput);
  }
}

TEST(StabPackedErrors, WidthMismatchThrowsTypedBadInput) {
  StabilizerSimulator sim(3);
  const auto circuit = ir::Circuit(2).h(0).cx(0, 1);
  try {
    sim.run(circuit);
    FAIL() << "expected qdt::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::BadInput);
  }
}

TEST(StabPackedErrors, PauliExpectationThrowsTypedBadInput) {
  const Tableau t(2);
  try {
    (void)t.pauli_expectation("XYZ");  // wrong length
    FAIL() << "expected qdt::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::BadInput);
  }
  try {
    (void)t.pauli_expectation("XQ");  // bad character
    FAIL() << "expected qdt::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::BadInput);
  }
}

// Regression for the `uint64_t{1} << q` UB: sampling a >64-qubit readout
// must be a typed Unsupported, not a silently wrong histogram (this test
// runs under UBSan in CI, which would flag the old shift).
TEST(StabPackedErrors, WideSampleCountsThrowsTypedUnsupported) {
  const std::size_t n = 70;
  auto circuit = ir::Circuit(n);
  circuit.h(0);
  for (ir::Qubit q = 1; q < n; ++q) {
    circuit.cx(0, q);
  }
  circuit.measure_all();
  StabilizerSimulator sim(n, 1);
  try {
    (void)sim.sample_counts(circuit, 4);
    FAIL() << "expected qdt::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Unsupported);
  }
  // The 64-qubit boundary itself must still sample fine.
  auto edge = ir::Circuit(64);
  edge.x(63).measure_all();
  StabilizerSimulator edge_sim(64, 1);
  const auto counts = edge_sim.sample_counts(edge, 3);
  ASSERT_EQ(counts.size(), 1U);
  EXPECT_EQ(counts.begin()->first, std::uint64_t{1} << 63);
  EXPECT_EQ(counts.begin()->second, 3U);
}

TEST(StabPacked, MemoryBytesReportsRealWordFootprint) {
  const std::size_t n = 130;  // 3 words per X/Z block
  const Tableau t(n);
  const std::size_t words = (n + 63) / 64;
  const std::size_t min_bytes =
      2 * n * 2 * words * sizeof(std::uint64_t)  // bit matrix
      + 2 * n                                    // sign bytes
      + 2 * words * sizeof(std::uint64_t);       // scratch row
  EXPECT_GE(t.memory_bytes(), min_bytes);
  // Real footprint, not the old theoretical 2n(2n+1)/8 packed estimate
  // (which for n=130 is ~8.5 KB; the real word array is ~25 KB).
  EXPECT_GT(t.memory_bytes(), 2 * n * (2 * n + 1) / 8 + 2 * n);
}

TEST(StabPacked, WordLayoutMatchesDocumentedOrder) {
  // Qubit q lives at bit q%64 of word q/64; destabilizers are rows
  // 0..n-1, stabilizers n..2n-1, x block before z block per row.
  const std::size_t n = 65;
  const Tableau t(n);
  const auto& w = t.words();
  const std::size_t words = t.words_per_row();
  ASSERT_EQ(words, 2U);
  const std::size_t stride = 2 * words;
  // Destabilizer 64 = X_64: bit 0 of x word 1.
  EXPECT_EQ(w[64 * stride + 1], 1ULL);
  EXPECT_EQ(w[64 * stride + 0], 0ULL);
  // Stabilizer 63 = Z_63: bit 63 of z word 0 (row n + 63).
  EXPECT_EQ(w[(n + 63) * stride + words + 0], 1ULL << 63);
}

}  // namespace
}  // namespace qdt::stab
