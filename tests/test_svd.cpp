#include "tn/svd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace qdt::tn {
namespace {

/// Check A == U diag(S) Vh, U^H U == I, Vh Vh^H == I.
void check_svd(const std::vector<Complex>& a, std::size_t m, std::size_t n,
               double eps = 1e-9) {
  const SvdResult r = svd(a, m, n);
  ASSERT_EQ(r.r, std::min(m, n));
  // Reconstruction.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex acc{};
      for (std::size_t k = 0; k < r.r; ++k) {
        acc += r.u[i * r.r + k] * r.s[k] * r.vh[k * n + j];
      }
      EXPECT_NEAR(std::abs(acc - a[i * n + j]), 0.0, eps)
          << "(" << i << ", " << j << ")";
    }
  }
  // Descending singular values, all nonnegative.
  for (std::size_t k = 0; k + 1 < r.r; ++k) {
    EXPECT_GE(r.s[k], r.s[k + 1]);
  }
  for (const double s : r.s) {
    EXPECT_GE(s, 0.0);
  }
  // Orthonormal columns of U.
  for (std::size_t c1 = 0; c1 < r.r; ++c1) {
    for (std::size_t c2 = 0; c2 < r.r; ++c2) {
      Complex dot{};
      for (std::size_t i = 0; i < m; ++i) {
        dot += std::conj(r.u[i * r.r + c1]) * r.u[i * r.r + c2];
      }
      const Complex expect = c1 == c2 ? Complex{1.0} : Complex{};
      EXPECT_NEAR(std::abs(dot - expect), 0.0, eps);
    }
  }
  // Orthonormal rows of Vh.
  for (std::size_t r1 = 0; r1 < r.r; ++r1) {
    for (std::size_t r2 = 0; r2 < r.r; ++r2) {
      Complex dot{};
      for (std::size_t j = 0; j < n; ++j) {
        dot += r.vh[r1 * n + j] * std::conj(r.vh[r2 * n + j]);
      }
      const Complex expect = r1 == r2 ? Complex{1.0} : Complex{};
      EXPECT_NEAR(std::abs(dot - expect), 0.0, eps);
    }
  }
}

std::vector<Complex> random_matrix(std::size_t m, std::size_t n,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> a(m * n);
  for (auto& v : a) {
    v = rng.gaussian_complex();
  }
  return a;
}

TEST(Svd, Identity) {
  std::vector<Complex> id(9, Complex{});
  for (std::size_t i = 0; i < 3; ++i) {
    id[i * 3 + i] = 1.0;
  }
  const SvdResult r = svd(id, 3, 3);
  for (const double s : r.s) {
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
  check_svd(id, 3, 3);
}

TEST(Svd, KnownSingularValues) {
  // diag(3, 2, 1) with a unitary twist stays {3, 2, 1}.
  std::vector<Complex> a = {
      {3.0, 0.0}, {0.0, 0.0}, {0.0, 0.0},
      {0.0, 0.0}, {0.0, 2.0}, {0.0, 0.0},
      {0.0, 0.0}, {0.0, 0.0}, {-1.0, 0.0}};
  const SvdResult r = svd(a, 3, 3);
  EXPECT_NEAR(r.s[0], 3.0, 1e-10);
  EXPECT_NEAR(r.s[1], 2.0, 1e-10);
  EXPECT_NEAR(r.s[2], 1.0, 1e-10);
  check_svd(a, 3, 3);
}

TEST(Svd, RandomSquare) { check_svd(random_matrix(6, 6, 1), 6, 6); }

TEST(Svd, RandomTall) { check_svd(random_matrix(8, 3, 2), 8, 3); }

TEST(Svd, RandomWide) { check_svd(random_matrix(3, 8, 3), 3, 8); }

TEST(Svd, SingleColumn) { check_svd(random_matrix(5, 1, 4), 5, 1); }

TEST(Svd, SingleRow) { check_svd(random_matrix(1, 5, 5), 1, 5); }

TEST(Svd, FrobeniusNormPreserved) {
  const auto a = random_matrix(4, 7, 6);
  const SvdResult r = svd(a, 4, 7);
  double frob = 0.0;
  for (const auto& v : a) {
    frob += std::norm(v);
  }
  double sum_s2 = 0.0;
  for (const double s : r.s) {
    sum_s2 += s * s;
  }
  EXPECT_NEAR(frob, sum_s2, 1e-9);
}

TEST(Svd, RejectsBadInput) {
  EXPECT_THROW(svd(std::vector<Complex>(5), 2, 2), std::invalid_argument);
  EXPECT_THROW(svd({}, 0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace qdt::tn
