#include "dd/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arrays/density_matrix.hpp"
#include "dd/export_dot.hpp"
#include "ir/library.hpp"
#include "testutil.hpp"
#include "testutil_dd.hpp"

namespace qdt::dd {
namespace {

TEST(DDSimulator, BellStateMatchesPaperFigure1) {
  DDSimulator sim(2);
  sim.run(ir::bell());
  // Fig. 1: amplitudes 1/sqrt(2) on |00> and |11>.
  EXPECT_NEAR(std::abs(sim.amplitude(0b00)), kInvSqrt2, 1e-10);
  EXPECT_NEAR(std::abs(sim.amplitude(0b11)), kInvSqrt2, 1e-10);
  EXPECT_NEAR(std::abs(sim.amplitude(0b01)), 0.0, 1e-12);
  // Fig. 1b: the Bell-state DD has a q1 node over two distinct q0 nodes.
  EXPECT_EQ(sim.state_node_count(), 3U);
}

TEST(DDSimulator, MatchesArrayBackendOnCircuitFamilies) {
  const ir::Circuit circuits[] = {
      ir::ghz(5),           ir::w_state(4),
      ir::qft(5),           ir::grover(4, 9),
      ir::bernstein_vazirani(5, 0b10110),
      ir::random_clifford_t(5, 80, 0.25, 3),
      ir::random_circuit(4, 6, 19),
  };
  for (const auto& c : circuits) {
    DDSimulator sim(c.num_qubits());
    sim.run(c);
    const auto got = sim.state_vector();
    const auto expected = test::oracle_state(c);
    ASSERT_EQ(got.size(), expected.amplitudes().size()) << c.name();
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(std::abs(got[i] - expected.amplitudes()[i]), 0.0, 1e-8)
          << c.name() << " amplitude " << i;
    }
    test::expect_dd_refs_ok(sim.package());
  }
}

TEST(DDSimulator, GhzStateStaysLinear) {
  // The flagship DD compactness result: GHZ needs 2n - 1 nodes, not 2^n.
  for (const std::size_t n : {4, 8, 16, 24}) {
    DDSimulator sim(n);
    sim.run(ir::ghz(n));
    EXPECT_EQ(sim.state_node_count(), 2 * n - 1) << n;
  }
}

TEST(DDSimulator, WeakSimulationSamplesCorrectDistribution) {
  DDSimulator sim(3, 5);
  sim.run(ir::ghz(3));
  const auto counts = sim.sample_counts(1000);
  std::size_t total = 0;
  for (const auto& [word, count] : counts) {
    EXPECT_TRUE(word == 0 || word == 0b111) << word;
    total += count;
  }
  EXPECT_EQ(total, 1000U);
}

TEST(DDSimulator, MeasurementCollapsesGhz) {
  DDSimulator sim(4, 11);
  sim.run(ir::ghz(4));
  const bool first = sim.measure(0);
  // After measuring one qubit of a GHZ state, all qubits agree.
  for (ir::Qubit q = 1; q < 4; ++q) {
    EXPECT_NEAR(sim.package().prob_one(sim.state(), q), first ? 1.0 : 0.0,
                1e-9);
  }
  test::expect_dd_refs_ok(sim.package());
}

TEST(DDSimulator, MeasurementRecordFromRun) {
  ir::Circuit c(2);
  c.x(0).measure_all();
  DDSimulator sim(2, 3);
  const auto record = sim.run(c);
  ASSERT_EQ(record.size(), 2U);
  EXPECT_TRUE(record[0].second);
  EXPECT_FALSE(record[1].second);
}

TEST(DDSimulator, ResetReturnsQubitToZero) {
  ir::Circuit c(2);
  c.x(0).h(1).reset(0);
  DDSimulator sim(2, 7);
  sim.run(c);
  EXPECT_NEAR(sim.package().prob_one(sim.state(), 0), 0.0, 1e-9);
}

TEST(DDSimulator, NodeCountTraceIsRecorded) {
  DDSimulator sim(5);
  sim.run(ir::qft(5));
  EXPECT_EQ(sim.node_count_trace().size(), ir::qft(5).size());
  for (const auto count : sim.node_count_trace()) {
    EXPECT_GE(count, 1U);
  }
}

TEST(DDSimulator, StochasticNoiseMatchesDensityMatrixOnAverage) {
  const double gamma = 0.25;
  ir::Circuit c(1);
  c.x(0).i(0);
  arrays::NoiseModel nm;
  nm.gate_noise.push_back(arrays::amplitude_damping(gamma));

  arrays::DensityMatrix rho(1);
  rho.run(c, nm);

  DDSimulator sim(1, 77);
  sim.set_noise(nm);
  const std::size_t shots = 4000;
  double pop1 = 0.0;
  for (std::size_t s = 0; s < shots; ++s) {
    sim.reset_state();
    sim.run(c);
    pop1 += std::norm(sim.amplitude(1));
  }
  pop1 /= static_cast<double>(shots);
  EXPECT_NEAR(pop1, rho.at(1, 1).real(), 0.03);
}

TEST(DDExport, DotContainsStructure) {
  DDSimulator sim(2);
  sim.run(ir::bell());
  const std::string dot = to_dot(sim.package(), sim.state(), "bell");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("q1"), std::string::npos);
  EXPECT_NE(dot.find("q0"), std::string::npos);
  EXPECT_NE(dot.find("0.7071"), std::string::npos);  // root weight 1/sqrt(2)
}

TEST(DDExport, MatrixDot) {
  Package pkg(2);
  const auto cx = pkg.gate_dd(ir::Operation{ir::GateKind::X, {0}, {1}});
  const std::string dot = to_dot(pkg, cx, "cx");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

}  // namespace
}  // namespace qdt::dd
