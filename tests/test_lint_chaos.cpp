// Cross-validation of the lint cost model against actual backend runs on
// fuzzer-generated circuits: the static predictions must be *sound* —
// predicted-Clifford circuits really run on the tableau and agree with the
// dense oracle, and the entanglement-cut bound really dominates the bond
// dimension the MPS backend reaches.
#include <gtest/gtest.h>

#include <cmath>

#include "arrays/svsim.hpp"
#include "chaos/generator.hpp"
#include "common/rng.hpp"
#include "lint/facts.hpp"
#include "stab/tableau.hpp"
#include "tn/mps.hpp"
#include "transpile/decompose.hpp"

namespace qdt::lint {
namespace {

constexpr std::size_t kCases = 200;
constexpr std::uint64_t kSeed = 20260806;

/// The exact circuit the core MPS rung executes: unitary part, lowered to
/// one- and two-qubit gates. The cut bound is stated against this form.
ir::Circuit mps_lowered(const ir::Circuit& c) {
  return transpile::decompose_two_qubit(
      transpile::decompose_multi_controlled(c.unitary_part()));
}

TEST(LintChaos, CliffordPredictionMatchesStabilizerBackend) {
  Rng rng(kSeed);
  std::size_t clifford_cases = 0;
  for (std::size_t i = 0; i < kCases; ++i) {
    const auto generated = chaos::generate_case(rng);
    const ir::Circuit c = generated.circuit.unitary_part();
    const auto facts = analyze(c);
    // The static classifier and the tableau's own dispatcher must agree on
    // every generated circuit — else the planned ladder would start on a
    // backend that instantly throws Unsupported.
    ASSERT_EQ(facts.is_clifford, stab::is_clifford_circuit(c))
        << "case " << i << " (" << generated.family << ")";
    if (!facts.is_clifford || c.num_qubits() == 0) {
      continue;
    }
    ++clifford_cases;
    // Predicted Clifford: the tableau must run it and agree with the dense
    // statevector on every single-qubit marginal.
    stab::StabilizerSimulator stab_sim(c.num_qubits());
    ASSERT_NO_THROW(stab_sim.run(c)) << "case " << i;
    arrays::StatevectorSimulator dense;
    const auto state = dense.run(c).state;
    for (std::size_t q = 0; q < c.num_qubits(); ++q) {
      double p1 = 0.0;
      for (std::uint64_t b = 0; b < state.dim(); ++b) {
        if ((b >> q) & 1U) {
          p1 += std::norm(state.amplitudes()[b]);
        }
      }
      EXPECT_NEAR(stab_sim.tableau().prob_one(q), p1, 1e-9)
          << "case " << i << " qubit " << q;
    }
  }
  // The generator leans on Clifford-rich families; the sweep must actually
  // exercise the property, not vacuously pass.
  EXPECT_GE(clifford_cases, 20U);
}

TEST(LintChaos, CutBoundDominatesActualMpsBond) {
  Rng rng(kSeed + 1);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < kCases; ++i) {
    const auto generated = chaos::generate_case(rng);
    const ir::Circuit lowered = mps_lowered(generated.circuit);
    if (lowered.num_qubits() < 2) {
      continue;
    }
    const auto facts = analyze(lowered);
    tn::MPS mps(lowered.num_qubits());  // exact: no truncation
    mps.run(lowered);
    EXPECT_LE(mps.max_bond_dimension(), facts.mps_bond_bound)
        << "case " << i << " (" << generated.family << "): static bound 2^"
        << facts.mps_bond_log2 << " violated";
    ++checked;
  }
  EXPECT_GE(checked, 100U);
}

}  // namespace
}  // namespace qdt::lint
