// Shared helpers for the test suite: dense-oracle comparisons and common
// circuit fixtures.
#pragma once

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "arrays/statevector.hpp"
#include "ir/circuit.hpp"

namespace qdt::test {

/// Dense statevector of a unitary circuit, computed with the array backend
/// (the test oracle).
inline arrays::Statevector oracle_state(const ir::Circuit& c) {
  arrays::Statevector sv(c.num_qubits());
  for (const auto& op : c.ops()) {
    if (op.is_barrier()) {
      continue;
    }
    sv.apply(op);
  }
  return sv;
}

inline void expect_state_near(const std::vector<Complex>& actual,
                              const std::vector<Complex>& expected,
                              double eps = 1e-9) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i].real(), expected[i].real(), eps)
        << "real part, index " << i;
    EXPECT_NEAR(actual[i].imag(), expected[i].imag(), eps)
        << "imag part, index " << i;
  }
}

}  // namespace qdt::test
