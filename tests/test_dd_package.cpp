#include "dd/package.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arrays/dense_unitary.hpp"
#include "dd/complex_table.hpp"
#include "ir/library.hpp"
#include "testutil.hpp"
#include "testutil_dd.hpp"

namespace qdt::dd {
namespace {

using ir::GateKind;
using ir::Operation;

TEST(ComplexTable, InternsWithinTolerance) {
  ComplexTable t;
  const auto a = t.lookup(Complex{0.5, -0.25});
  const auto b = t.lookup(Complex{0.5 + 1e-12, -0.25 - 1e-12});
  EXPECT_EQ(a, b);
  const auto c = t.lookup(Complex{0.5 + 1e-6, -0.25});
  EXPECT_NE(a, c);
}

TEST(ComplexTable, CanonicalZeroAndOne) {
  ComplexTable t;
  EXPECT_EQ(t.lookup(Complex{0.0, 0.0}), ComplexTable::kZero);
  EXPECT_EQ(t.lookup(Complex{1.0, 0.0}), ComplexTable::kOne);
  EXPECT_EQ(t.lookup(Complex{1e-12, -1e-12}), ComplexTable::kZero);
}

TEST(ComplexTable, Arithmetic) {
  ComplexTable t;
  const auto i = t.lookup(Complex{0.0, 1.0});
  EXPECT_EQ(t.mul(i, i), t.lookup(Complex{-1.0, 0.0}));
  EXPECT_EQ(t.add(i, t.neg(i)), ComplexTable::kZero);
  EXPECT_EQ(t.div(i, i), ComplexTable::kOne);
  EXPECT_EQ(t.conj(i), t.lookup(Complex{0.0, -1.0}));
  EXPECT_TRUE(t.equal_modulus(i, ComplexTable::kOne));
}

TEST(ComplexTable, NearbyValuesUnifyDistantOnesDoNot) {
  ComplexTable t;
  const auto a = t.lookup(Complex{0.3, 0.7});
  EXPECT_EQ(t.lookup(Complex{0.3 + 1e-11, 0.7 - 1e-11}), a);
  EXPECT_NE(t.lookup(Complex{0.3 + 1e-8, 0.7}), a);
}

TEST(Package, BasisStates) {
  Package pkg(3);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto e = pkg.basis_state(i);
    const auto v = pkg.to_vector(e);
    for (std::uint64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(std::abs(v[j] - (i == j ? Complex{1.0} : Complex{})), 0.0,
                  1e-12);
    }
    EXPECT_NEAR(std::abs(pkg.amplitude(e, i)), 1.0, 1e-12);
  }
}

TEST(Package, FromToVectorRoundTrip) {
  Package pkg(4);
  Rng rng(11);
  const auto amps = rng.random_state(16);
  const auto e = pkg.from_vector(amps);
  const auto back = pkg.to_vector(e);
  test::expect_state_near(back, amps, 1e-10);
}

TEST(Package, EqualSubvectorsShareNodes) {
  // The uniform superposition has maximal redundancy: exactly n nodes.
  Package pkg(6);
  std::vector<Complex> amps(64, Complex{0.125, 0.0});
  const auto e = pkg.from_vector(amps);
  EXPECT_EQ(pkg.node_count(e), 6U);
}

TEST(Package, GhzNeedsLinearNodes) {
  // Section III claim: GHZ-like states have O(n) DD nodes. In quasi-reduced
  // form the all-zeros and all-ones chains are disjoint below the top node,
  // giving exactly 2n - 1 nodes (vs 2^n array entries).
  for (const std::size_t n : {2, 4, 8, 16}) {
    Package pkg(n);
    VecEdge e = pkg.add(pkg.basis_state(0),
                        pkg.basis_state((std::uint64_t{1} << n) - 1));
    EXPECT_EQ(pkg.node_count(e), 2 * n - 1) << n;
  }
}

TEST(Package, AdditionMatchesDense) {
  Package pkg(3);
  Rng rng(5);
  const auto a = rng.random_state(8);
  const auto b = rng.random_state(8);
  const auto e = pkg.add(pkg.from_vector(a), pkg.from_vector(b));
  const auto v = pkg.to_vector(e);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(v[i] - (a[i] + b[i])), 0.0, 1e-9);
  }
}

TEST(Package, InnerProductMatchesDense) {
  Package pkg(3);
  Rng rng(6);
  const auto a = rng.random_state(8);
  const auto b = rng.random_state(8);
  Complex expected{};
  for (std::size_t i = 0; i < 8; ++i) {
    expected += std::conj(a[i]) * b[i];
  }
  const Complex got =
      pkg.inner_product(pkg.from_vector(a), pkg.from_vector(b));
  EXPECT_NEAR(std::abs(got - expected), 0.0, 1e-9);
  EXPECT_NEAR(pkg.norm2(pkg.from_vector(a)), 1.0, 1e-9);
}

TEST(Package, IdentityDD) {
  Package pkg(3);
  const auto id = pkg.identity();
  EXPECT_TRUE(pkg.is_identity(id));
  EXPECT_EQ(pkg.node_count(id), 3U);
  const auto m = pkg.to_matrix(id);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(std::abs(m[r * 8 + c] - (r == c ? Complex{1.0} : Complex{})),
                  0.0, 1e-12);
    }
  }
}

// Gate DDs must match the dense oracle for every catalogue gate.
class GateDDTest : public ::testing::TestWithParam<Operation> {};

TEST_P(GateDDTest, MatchesDenseOracle) {
  const Operation& op = GetParam();
  const std::size_t n = 3;
  Package pkg(n);
  const auto e = pkg.gate_dd(op);
  const auto got = pkg.to_matrix(e);

  ir::Circuit c(n);
  c.append(op);
  const auto expected = arrays::DenseUnitary::from_circuit(c);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t col = 0; col < 8; ++col) {
      EXPECT_NEAR(std::abs(got[r * 8 + col] - expected.at(r, col)), 0.0,
                  1e-9)
          << op.str() << " entry (" << r << ", " << col << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateDDTest,
    ::testing::Values(
        Operation{GateKind::X, 0}, Operation{GateKind::H, 1},
        Operation{GateKind::Y, 2}, Operation{GateKind::Z, 1},
        Operation{GateKind::S, 0}, Operation{GateKind::T, 2},
        Operation{GateKind::SX, 1},
        Operation{GateKind::RX, 1, {Phase{1, 3}}},
        Operation{GateKind::RY, 0, {Phase{2, 5}}},
        Operation{GateKind::RZ, 2, {Phase{-3, 7}}},
        Operation{GateKind::P, 1, {Phase{1, 8}}},
        Operation{GateKind::U, 0, {Phase{1, 3}, Phase{1, 5}, Phase{1, 7}}},
        Operation{GateKind::X, {0}, {2}},          // CX down
        Operation{GateKind::X, {2}, {0}},          // CX up
        Operation{GateKind::Z, {1}, {0}},          // CZ
        Operation{GateKind::H, {0}, {1}},          // CH
        Operation{GateKind::P, {2}, {0}, {Phase{1, 4}}},   // CP
        Operation{GateKind::X, {1}, {0, 2}},       // Toffoli
        Operation{GateKind::Z, {0}, {1, 2}},       // CCZ
        Operation{GateKind::Swap, {0, 2}},
        Operation{GateKind::Swap, {1, 0}},
        Operation{GateKind::Swap, {0, 2}, {1}},    // Fredkin
        Operation{GateKind::ISwap, {0, 1}},
        Operation{GateKind::ISwapDg, {1, 2}},
        Operation{GateKind::RZZ, {0, 2}, {}, {Phase{1, 3}}},
        Operation{GateKind::RXX, {1, 2}, {}, {Phase{2, 7}}}),
    [](const ::testing::TestParamInfo<Operation>& info) {
      std::string name = info.param.str();
      for (auto& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) {
          ch = '_';
        }
      }
      return name + "_" + std::to_string(info.index);
    });

TEST(Package, MatrixVectorMultiplyMatchesDense) {
  const ir::Circuit c = ir::random_clifford_t(4, 60, 0.2, 9);
  Package pkg(4);
  VecEdge state = pkg.zero_state();
  for (const auto& op : c.ops()) {
    state = pkg.multiply(pkg.gate_dd(op), state);
  }
  const auto got = pkg.to_vector(state);
  const auto expected = test::oracle_state(c);
  test::expect_state_near(got, expected.amplitudes(), 1e-8);
  test::expect_dd_refs_ok(pkg);
}

TEST(Package, MatrixMatrixMultiplyMatchesDense) {
  const ir::Circuit c = ir::random_circuit(3, 4, 31);
  Package pkg(3);
  MatEdge u = pkg.identity();
  for (const auto& op : c.ops()) {
    u = pkg.multiply(pkg.gate_dd(op), u);
  }
  const auto got = pkg.to_matrix(u);
  const auto expected = arrays::DenseUnitary::from_circuit(c);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t col = 0; col < 8; ++col) {
      EXPECT_NEAR(std::abs(got[r * 8 + col] - expected.at(r, col)), 0.0,
                  1e-8);
    }
  }
}

TEST(Package, FromMatrixRoundTrip) {
  Package pkg(2);
  Rng rng(17);
  std::vector<Complex> m(16);
  for (auto& v : m) {
    v = rng.gaussian_complex();
  }
  const auto e = pkg.from_matrix(m);
  const auto back = pkg.to_matrix(e);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(std::abs(back[i] - m[i]), 0.0, 1e-9);
  }
}

TEST(Package, ConjugateTransposeMatchesDense) {
  const ir::Circuit c = ir::random_circuit(3, 3, 41);
  Package pkg(3);
  MatEdge u = pkg.identity();
  for (const auto& op : c.ops()) {
    u = pkg.multiply(pkg.gate_dd(op), u);
  }
  const auto udg = pkg.conjugate_transpose(u);
  // U * U^dagger = I.
  EXPECT_TRUE(pkg.is_identity_up_to_global_phase(pkg.multiply(u, udg)));
  const auto got = pkg.to_matrix(udg);
  const auto expected = arrays::DenseUnitary::from_circuit(c).adjoint();
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t col = 0; col < 8; ++col) {
      EXPECT_NEAR(std::abs(got[r * 8 + col] - expected.at(r, col)), 0.0,
                  1e-8);
    }
  }
}

TEST(Package, ProjectionZeroesBranch) {
  Package pkg(2);
  const ir::Circuit c = ir::bell();
  VecEdge state = pkg.zero_state();
  for (const auto& op : c.ops()) {
    state = pkg.multiply(pkg.gate_dd(op), state);
  }
  const auto p0 = pkg.to_vector(pkg.project(state, 0, false));
  EXPECT_NEAR(std::abs(p0[0]), kInvSqrt2, 1e-10);
  EXPECT_NEAR(std::abs(p0[3]), 0.0, 1e-12);
  EXPECT_NEAR(pkg.prob_one(state, 0), 0.5, 1e-10);
  EXPECT_NEAR(pkg.prob_one(state, 1), 0.5, 1e-10);
}

TEST(Package, SamplingMatchesBornRule) {
  Package pkg(2);
  VecEdge state = pkg.zero_state();
  const ir::Circuit bell = ir::bell();
  for (const auto& op : bell.ops()) {
    state = pkg.multiply(pkg.gate_dd(op), state);
  }
  Rng rng(23);
  std::size_t zeros = 0;
  const std::size_t shots = 2000;
  for (std::size_t s = 0; s < shots; ++s) {
    const auto word = pkg.sample(state, rng);
    ASSERT_TRUE(word == 0 || word == 3) << word;
    zeros += word == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / shots, 0.5, 0.05);
}

TEST(Package, TraceOfIdentityAndGates) {
  Package pkg(3);
  // Tr(I) = 2^n.
  EXPECT_NEAR(std::abs(pkg.trace(pkg.identity()) - Complex{8.0}), 0.0,
              1e-10);
  // Tr(Z x I x I) = 0; trace of any Pauli but identity vanishes.
  EXPECT_NEAR(std::abs(pkg.trace(
                  pkg.gate_dd(ir::Operation{GateKind::Z, 2}))),
              0.0, 1e-10);
  // Tr(P(theta) on one qubit extended by identities) = (1 + e^{i theta})*4.
  const Phase theta{1, 3};
  const Complex expected =
      (Complex{1.0} + Complex{std::cos(theta.radians()),
                              std::sin(theta.radians())}) *
      4.0;
  EXPECT_NEAR(std::abs(pkg.trace(pkg.gate_dd(ir::Operation{
                  GateKind::P, 1, {theta}})) -
                       expected),
              0.0, 1e-9);
}

TEST(Package, HashConsingSharesStructure) {
  Package pkg(4);
  const auto a = pkg.basis_state(5);
  const auto b = pkg.basis_state(5);
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.weight, b.weight);
}

TEST(Package, StatsTrackGrowth) {
  Package pkg(3);
  const auto before = pkg.stats();
  VecEdge state = pkg.zero_state();
  const ir::Circuit qft3 = ir::qft(3);
  for (const auto& op : qft3.ops()) {
    state = pkg.multiply(pkg.gate_dd(op), state);
  }
  const auto after = pkg.stats();
  EXPECT_GT(after.unique_vec_nodes, before.unique_vec_nodes);
  EXPECT_GT(after.unique_mat_nodes, 0U);
  EXPECT_GT(after.complex_values, 2U);
  pkg.clear_caches();  // must not invalidate existing DDs
  EXPECT_NEAR(pkg.norm2(state), 1.0, 1e-9);
  test::expect_dd_refs_ok(pkg);
}

}  // namespace
}  // namespace qdt::dd
