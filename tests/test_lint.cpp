// qdt::lint — static analysis against hand-checked fixtures, and the
// acceptance contract: the BackendPlan reorders the robust fallback ladder
// without a single wasted simulation attempt.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/tasks.hpp"
#include "ir/library.hpp"
#include "obs/obs.hpp"
#include "stab/tableau.hpp"
#include "tn/mps.hpp"
#include "transpile/decompose.hpp"

namespace qdt::lint {
namespace {

// -- Facts: shape, Clifford structure ---------------------------------------

TEST(LintFacts, CountsTGatesAndCliffordFraction) {
  ir::Circuit c(2);
  c.h(0).t(0).cx(0, 1).tdg(1).rz(Phase::pi_4(), 0).s(1);
  const auto f = analyze(c);
  EXPECT_EQ(f.unitary_gates, 6U);
  EXPECT_EQ(f.t_count, 3U);  // t, tdg, rz(pi/4)
  EXPECT_EQ(f.clifford_gates, 3U);
  EXPECT_FALSE(f.is_clifford);
  EXPECT_DOUBLE_EQ(f.clifford_fraction, 0.5);
}

TEST(LintFacts, RecognizesCliffordCircuits) {
  const auto f = analyze(ir::random_clifford(8, 40, /*seed=*/3));
  EXPECT_TRUE(f.is_clifford);
  EXPECT_EQ(f.t_count, 0U);
  EXPECT_DOUBLE_EQ(f.clifford_fraction, 1.0);
}

TEST(LintFacts, IsCliffordOpMatchesStabilizerBackend) {
  // The lint-side mirror must agree with the tableau's own gate dispatch
  // on every op of a mixed circuit.
  const auto c = ir::random_circuit(5, 60, /*seed=*/17);
  for (const auto& op : c.ops()) {
    EXPECT_EQ(is_clifford_op(op), stab::is_clifford_operation(op)) << op.str();
  }
}

// -- Facts: liveness and lightcones -----------------------------------------

TEST(LintFacts, FindsDeadQubits) {
  ir::Circuit c(4);
  c.h(0).cx(0, 2);  // qubits 1 and 3 never touched
  const auto f = analyze(c);
  EXPECT_EQ(f.dead_qubits, (std::vector<ir::Qubit>{1, 3}));
}

TEST(LintFacts, FindsUnusedAncillas) {
  ir::Circuit c(3);
  // Qubit 2 carries a gate but no measurement can see it.
  c.h(0).cx(0, 1).h(2).measure(0).measure(1);
  const auto f = analyze(c);
  EXPECT_TRUE(f.dead_qubits.empty());
  EXPECT_EQ(f.unused_ancillas, (std::vector<ir::Qubit>{2}));
}

TEST(LintFacts, NoAncillaReportWithoutMeasurements) {
  ir::Circuit c(2);
  c.h(0).h(1);
  EXPECT_TRUE(analyze(c).unused_ancillas.empty());
}

TEST(LintFacts, LightconesOnGhz) {
  // ghz(3) = h(2), cx(2,1), cx(1,0). Walking backwards from the outputs:
  // qubit 2's last coupling is cx(2,1), which in reverse order comes before
  // nothing else that reaches it, so its cone is {1,2}; qubits 0 and 1 sit
  // downstream of the whole chain and see all three inputs.
  const auto f = analyze(ir::ghz(3));
  EXPECT_EQ(f.lightcone, (std::vector<std::size_t>{3, 3, 2}));
  EXPECT_EQ(f.max_lightcone, 3U);
}

TEST(LintFacts, DisconnectedBlocksHaveDisjointCones) {
  ir::Circuit c(4);
  c.h(0).cx(0, 1).h(2).cx(2, 3);
  const auto f = analyze(c);
  EXPECT_EQ(f.lightcone, (std::vector<std::size_t>{2, 2, 2, 2}));
  EXPECT_EQ(f.max_lightcone, 2U);
}

// -- Facts: peephole redundancy ---------------------------------------------

TEST(LintFacts, FindsAdjacentCancellingPair) {
  ir::Circuit c(2);
  c.h(0).t(1).tdg(1).cx(0, 1);
  const auto f = analyze(c);
  ASSERT_EQ(f.cancelling_pairs.size(), 1U);
  EXPECT_EQ(f.cancelling_pairs[0].first, 1U);
  EXPECT_EQ(f.cancelling_pairs[0].second, 2U);
}

TEST(LintFacts, ControlledHalfTurnRotationPairIsNotCancelling) {
  // crz(pi) ; crz(pi) multiplies to Z-on-control, not the identity: the
  // structural adjoint wraps -pi to +pi. Flagging it as a cancelling pair
  // would advise a miscompile.
  ir::Circuit c(2);
  c.crz(Phase::pi(), 0, 1).crz(Phase::pi(), 0, 1);
  const auto f = analyze(c);
  EXPECT_TRUE(f.cancelling_pairs.empty());
}

TEST(LintFacts, CancellationSeesThroughCommutingDiagonals) {
  ir::Circuit c(1);
  c.t(0).s(0).tdg(0);  // s is diagonal: t...tdg still cancels
  const auto f = analyze(c);
  ASSERT_EQ(f.cancelling_pairs.size(), 1U);
  EXPECT_EQ(f.cancelling_pairs[0].first, 0U);
  EXPECT_EQ(f.cancelling_pairs[0].second, 2U);
}

TEST(LintFacts, BarrierBlocksCancellation) {
  ir::Circuit c(1);
  c.t(0).barrier().tdg(0);
  EXPECT_TRUE(analyze(c).cancelling_pairs.empty());
}

TEST(LintFacts, NonCommutingGateBlocksCancellation) {
  ir::Circuit c(1);
  c.t(0).h(0).tdg(0);  // h is not diagonal: nothing cancels
  EXPECT_TRUE(analyze(c).cancelling_pairs.empty());
}

TEST(LintFacts, FindsMergeableRotations) {
  ir::Circuit c(2);
  c.rz(Phase::pi_4(), 0).rz(Phase::pi_2(), 0).t(1).t(1);
  const auto f = analyze(c);
  ASSERT_EQ(f.mergeable_pairs.size(), 2U);
  EXPECT_EQ(f.mergeable_pairs[0].first, 0U);
  EXPECT_EQ(f.mergeable_pairs[0].second, 1U);
  EXPECT_EQ(f.mergeable_pairs[1].first, 2U);
  EXPECT_EQ(f.mergeable_pairs[1].second, 3U);
}

TEST(LintFacts, SelfInverseIdenticalNeighborIsCancellingNotMergeable) {
  ir::Circuit c(1);
  c.h(0).h(0);
  const auto f = analyze(c);
  EXPECT_EQ(f.cancelling_pairs.size(), 1U);
  EXPECT_TRUE(f.mergeable_pairs.empty());
}

// -- Facts: entanglement-cut bound -------------------------------------------

TEST(LintFacts, CutBoundOnNearestNeighborChain) {
  // A single pass of nearest-neighbor CX gates entangles each cut once.
  const auto f = analyze(ir::ghz(6));
  EXPECT_EQ(f.mps_bond_log2, 1U);
  EXPECT_EQ(f.mps_bond_bound, 2U);
  for (const auto& cut : f.cuts) {
    EXPECT_LE(cut.bond_log2, 1U);
  }
}

TEST(LintFacts, CutBoundSaturatesAtHalfChain) {
  const auto f = analyze(ir::random_circuit(6, 200, /*seed=*/5));
  // min(c, n-c) caps every cut: the middle of 6 qubits is at most 2^3.
  EXPECT_LE(f.mps_bond_log2, 3U);
}

TEST(LintFacts, CutBoundIsSoundOnActualMps) {
  // The static bound must dominate the bond the MPS backend really reaches
  // on the same lowered circuit it would execute.
  const ir::Circuit circuits[] = {ir::ghz(6), ir::qft(5),
                                  ir::random_circuit(6, 40, /*seed=*/9)};
  for (const auto& c : circuits) {
    const auto f = analyze(transpile::decompose_two_qubit(
        transpile::decompose_multi_controlled(c.unitary_part())));
    tn::MPS mps(c.num_qubits());
    mps.run(transpile::decompose_two_qubit(
        transpile::decompose_multi_controlled(c.unitary_part())));
    EXPECT_LE(mps.max_bond_dimension(), f.mps_bond_bound) << c.name();
  }
}

// -- Facts: TN and DD estimates ----------------------------------------------

TEST(LintFacts, TnCostGrowsWithEntanglingDepth) {
  const auto shallow = analyze(ir::ghz(8));
  const auto deep = analyze(ir::qft(8));
  EXPECT_GT(shallow.tn_cost_log2, 0.0);
  EXPECT_GT(deep.tn_cost_log2, shallow.tn_cost_log2);
  EXPECT_GE(deep.tn_peak_log2, 1.0);
}

TEST(LintFacts, DdScoreSeparatesStructuredFromRandom) {
  const auto ghz = analyze(ir::ghz(10));
  const auto random = analyze(ir::random_circuit(10, 80, /*seed=*/21));
  EXPECT_LT(ghz.dd_growth_score, random.dd_growth_score);
  EXPECT_LT(ghz.dd_nodes_log2, random.dd_nodes_log2);
  EXPECT_LE(random.dd_nodes_log2, 10.0);  // never above the 2^n ceiling
}

// -- The backend plan ---------------------------------------------------------

TEST(LintPlan, CliffordCircuitRanksStabilizerFirst) {
  const auto f = analyze(ir::random_clifford(24, 200, /*seed=*/3));
  PlanConstraints pc;
  pc.want_state = false;
  const auto plan = plan_backends(f, pc);
  ASSERT_FALSE(plan.preferred_order.empty());
  EXPECT_EQ(plan.preferred_order[0], Backend::Stabilizer);
}

TEST(LintPlan, WantStateMakesStabilizerInfeasible) {
  const auto f = analyze(ir::bell());
  PlanConstraints pc;
  pc.want_state = true;
  const auto plan = plan_backends(f, pc);
  EXPECT_EQ(plan.preferred_order[0], Backend::Array);
  EXPECT_EQ(std::count(plan.preferred_order.begin(),
                       plan.preferred_order.end(), Backend::Stabilizer),
            0);
  for (const auto& e : plan.estimates) {
    if (e.backend == Backend::Stabilizer) {
      EXPECT_FALSE(e.feasible);
    }
  }
}

TEST(LintPlan, LowEntanglementWideCircuitRanksMpsFirst) {
  // The 24-qubit nearest-neighbor chain from the recommend_backend tests:
  // cut bound stays tiny, so MPS must beat the 2^24 array sweep and the DD.
  ir::Circuit c(24);
  for (std::size_t q = 0; q < 24; ++q) {
    c.h(q).t(q);
    if (q + 1 < 24) {
      c.cx(q, q + 1);
    }
  }
  PlanConstraints pc;
  pc.want_state = true;  // knocks the tableau out regardless
  const auto plan = plan_backends(analyze(c), pc);
  EXPECT_EQ(plan.preferred_order[0], Backend::Mps);
}

TEST(LintPlan, NoiseLeavesOnlyDensityCapableBackends) {
  PlanConstraints pc;
  pc.has_noise = true;
  const auto plan = plan_backends(analyze(ir::ghz(4)), pc);
  for (const auto b : plan.preferred_order) {
    EXPECT_TRUE(b == Backend::Array || b == Backend::DecisionDiagram);
  }
  EXPECT_EQ(plan.preferred_order.size(), 2U);
}

TEST(LintPlan, VerifyPlanLeadsWithZxOnCliffordPairs) {
  const auto cf = analyze(ir::ghz(5));
  const auto nf = analyze(ir::qft(4));
  const auto clifford = plan_verify(cf, cf);
  ASSERT_FALSE(clifford.empty());
  EXPECT_EQ(clifford.front(), VerifyMethod::Zx);
  EXPECT_EQ(clifford.back(), VerifyMethod::DdSimulative);
  const auto mixed = plan_verify(cf, nf);
  EXPECT_EQ(mixed.front(), VerifyMethod::DdAlternating);
  EXPECT_EQ(mixed.back(), VerifyMethod::DdSimulative);
}

// -- Diagnostics and JSON -----------------------------------------------------

TEST(LintReport, EmitsExpectedDiagnostics) {
  ir::Circuit c(3);
  c.h(0).t(1).tdg(1);  // qubit 2 dead, t/tdg cancels
  const auto report = run(c);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.warnings(), 2U);
  const auto has_code = [&](const char* code) {
    return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                       [&](const Diagnostic& d) { return d.code == code; });
  };
  EXPECT_TRUE(has_code("dead-qubit"));
  EXPECT_TRUE(has_code("cancelling-pair"));
}

TEST(LintReport, CleanCircuitHasNoWarnings) {
  const auto report = run(ir::ghz(4));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.warnings(), 0U);
}

TEST(LintReport, JsonCarriesFactsPlanAndDiagnostics) {
  ir::Circuit c(3);
  c.h(0).t(1).tdg(1);
  const std::string json = to_json(run(c));
  EXPECT_NE(json.find("\"facts\""), std::string::npos);
  EXPECT_NE(json.find("\"t_count\":2"), std::string::npos);  // t and tdg
  EXPECT_NE(json.find("\"dead_qubits\":[2]"), std::string::npos);
  EXPECT_NE(json.find("\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"backend\":\"array\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"cancelling-pair\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
}

// -- Acceptance: the plan drives the robust ladder ----------------------------

TEST(LintLadder, CliffordCircuitPicksStabilizerFirstWithZeroDegradation) {
  const auto c = ir::random_clifford(24, 200, /*seed=*/3);
  core::SimulateOptions opts;
  opts.want_state = false;
  opts.shots = 16;
  const std::uint64_t steps_before =
      obs::counter("qdt.guard.fallback.steps").value();
  const std::uint64_t hits_before =
      obs::counter("qdt.lint.predict.hit").value();
  const auto robust = core::simulate_robust(c, opts);  // no explicit start
  ASSERT_EQ(robust.attempts.size(), 1U);
  EXPECT_EQ(robust.attempts[0].stage, "stabilizer");
  EXPECT_TRUE(robust.attempts[0].error.empty());
  EXPECT_FALSE(robust.degraded());
  EXPECT_EQ(robust.result.backend, core::SimBackend::Stabilizer);
  EXPECT_EQ(obs::counter("qdt.guard.fallback.steps").value(), steps_before);
#if QDT_OBS_ENABLED
  EXPECT_EQ(obs::counter("qdt.lint.predict.hit").value(), hits_before + 1);
#else
  (void)hits_before;
#endif
}

TEST(LintLadder, WantStateOnCliffordFallsToDenseBackendWithoutDegrading) {
  // want_state makes the tableau infeasible *statically* — the plan must
  // route around it instead of paying for an Unsupported throw.
  const auto robust = core::simulate_robust(ir::bell(), {});
  ASSERT_EQ(robust.attempts.size(), 1U);
  EXPECT_EQ(robust.attempts[0].stage, "array");
  ASSERT_TRUE(robust.result.state.has_value());
}

TEST(LintLadder, PlannedVerifyLeadsWithZxOnCliffordPair) {
  const auto robust = core::verify_robust(ir::ghz(4), ir::ghz(4));
  EXPECT_TRUE(robust.result.equivalent);
  ASSERT_FALSE(robust.attempts.empty());
  EXPECT_EQ(robust.attempts[0].stage, "zx");
}

TEST(LintLadder, PlannedVerifyLeadsWithDdOnNonCliffordPair) {
  const auto robust = core::verify_robust(ir::qft(3), ir::qft(3));
  EXPECT_TRUE(robust.result.equivalent);
  ASSERT_FALSE(robust.attempts.empty());
  EXPECT_EQ(robust.attempts[0].stage, "dd-alternating");
}

}  // namespace
}  // namespace qdt::lint
