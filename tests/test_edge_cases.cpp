// Edge-case and failure-injection tests that don't fit a single module
// suite: error paths, extreme inputs, and direct anchors for the oracle
// itself (the dense backend is validated against analytic results, since
// every other backend is validated against it).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/qdt.hpp"
#include "testutil.hpp"

namespace qdt {
namespace {

// ---------------------------------------------------------------------------
// Direct analytic anchors for the dense oracle's 2-qubit kernels.
// ---------------------------------------------------------------------------

TEST(OracleAnchors, ISwapOnBasisStates) {
  // iSWAP: |01> -> i|10>, |10> -> i|01>, |00>/|11> fixed.
  arrays::Statevector sv(2);
  sv.apply(ir::Operation{ir::GateKind::X, 0});  // |01> (q0 = 1)
  sv.apply(ir::Operation{ir::GateKind::ISwap, {0, 1}});
  EXPECT_NEAR(std::abs(sv.amplitude(0b10) - Complex{0.0, 1.0}), 0.0, 1e-12);
}

TEST(OracleAnchors, RzzPhasesByParity) {
  // RZZ(theta)|ab> = e^{-i theta/2 (-1)^(a xor b)} |ab>.
  const Phase theta{1, 3};
  for (std::uint64_t basis = 0; basis < 4; ++basis) {
    arrays::Statevector sv(2);
    for (std::size_t q = 0; q < 2; ++q) {
      if ((basis >> q) & 1) {
        sv.apply(ir::Operation{ir::GateKind::X, static_cast<ir::Qubit>(q)});
      }
    }
    sv.apply(ir::Operation{ir::GateKind::RZZ, {0, 1}, {}, {theta}});
    const double sign = (basis == 1 || basis == 2) ? 1.0 : -1.0;
    const Complex expect{std::cos(theta.radians() / 2),
                         sign * std::sin(theta.radians() / 2)};
    EXPECT_NEAR(std::abs(sv.amplitude(basis) - expect), 0.0, 1e-12)
        << basis;
  }
}

TEST(OracleAnchors, RxxEqualsHConjugatedRzz) {
  const Phase theta{2, 5};
  ir::Circuit a(2);
  a.rxx(theta, 0, 1);
  ir::Circuit b(2);
  b.h(0).h(1).rzz(theta, 0, 1).h(0).h(1);
  const auto ua = arrays::DenseUnitary::from_circuit(a);
  const auto ub = arrays::DenseUnitary::from_circuit(b);
  EXPECT_TRUE(ua.approx_equal(ub, 1e-10));
}

TEST(OracleAnchors, FredkinTruthTable) {
  // CSWAP swaps targets iff the control is 1.
  for (std::uint64_t input = 0; input < 8; ++input) {
    arrays::Statevector sv(3);
    for (std::size_t q = 0; q < 3; ++q) {
      if ((input >> q) & 1) {
        sv.apply(ir::Operation{ir::GateKind::X, static_cast<ir::Qubit>(q)});
      }
    }
    sv.apply(ir::Operation{ir::GateKind::Swap, {1, 2}, {0}});
    std::uint64_t expected = input;
    if (input & 1) {  // control q0 set: swap bits 1 and 2
      const bool b1 = (input >> 1) & 1;
      const bool b2 = (input >> 2) & 1;
      expected = (input & 1) | (static_cast<std::uint64_t>(b2) << 1) |
                 (static_cast<std::uint64_t>(b1) << 2);
    }
    EXPECT_NEAR(std::norm(sv.amplitude(expected)), 1.0, 1e-12) << input;
  }
}

// ---------------------------------------------------------------------------
// Phase extremes.
// ---------------------------------------------------------------------------

TEST(PhaseEdge, HugeAnglesWrapCorrectly) {
  const double big = 1e6;
  const Phase p = Phase::from_radians(big);
  EXPECT_NEAR(std::remainder(p.radians() - big, 2 * std::numbers::pi), 0.0,
              1e-6);
}

TEST(PhaseEdge, RepeatedMixedAdditionStaysSane) {
  // Adding many high-precision irrational approximations must neither
  // overflow nor lose more than the documented tolerance.
  Phase acc;
  double reference = 0.0;
  for (int i = 1; i <= 100; ++i) {
    const double angle = std::sqrt(static_cast<double>(i));
    acc += Phase::from_radians(angle);
    reference += angle;
  }
  EXPECT_NEAR(std::remainder(acc.radians() - reference,
                             2 * std::numbers::pi),
              0.0, 1e-5);
}

// ---------------------------------------------------------------------------
// ZX diagram composition and adjoint round trips.
// ---------------------------------------------------------------------------

TEST(ZxCompose, CircuitCompositionMatchesDiagramComposition) {
  const ir::Circuit c1 = ir::random_clifford_t(3, 20, 0.3, 41);
  const ir::Circuit c2 = ir::random_clifford_t(3, 20, 0.3, 43);
  const zx::ZXDiagram d =
      zx::ZXDiagram::compose(zx::to_diagram(c1), zx::to_diagram(c2));
  const auto u = arrays::DenseUnitary::from_circuit(c1.composed_with(c2));
  zx::ZXMatrix ref;
  ref.rows = ref.cols = 8;
  ref.data.resize(64);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      ref.data[r * 8 + c] = u.at(r, c);
    }
  }
  EXPECT_TRUE(zx::equal_up_to_scalar(zx::to_matrix(d), ref, 1e-7));
}

TEST(ZxCompose, AdjointComposesToIdentityVerdict) {
  const ir::Circuit c = ir::random_clifford(4, 40, 47);
  zx::ZXDiagram miter =
      zx::ZXDiagram::compose(zx::to_diagram(c), zx::to_diagram(c).adjoint());
  zx::clifford_simp(miter);
  EXPECT_TRUE(miter.is_identity());
}

TEST(ZxCompose, ArityMismatchThrows) {
  EXPECT_THROW(zx::ZXDiagram::compose(zx::to_diagram(ir::ghz(2)),
                                      zx::to_diagram(ir::ghz(3))),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Idle-wire handling across backends.
// ---------------------------------------------------------------------------

TEST(IdleWires, EveryBackendKeepsIdleQubitsAtZero) {
  ir::Circuit c(4, "idle");
  c.h(1).cx(1, 2);  // qubits 0 and 3 untouched
  const auto reference = test::oracle_state(c);
  for (const auto b :
       {core::SimBackend::DecisionDiagram, core::SimBackend::TensorNetwork,
        core::SimBackend::Mps}) {
    const auto res = core::simulate(c, b);
    for (std::size_t i = 0; i < reference.dim(); ++i) {
      ASSERT_NEAR(std::abs((*res.state)[i] - reference.amplitudes()[i]),
                  0.0, 1e-9)
          << core::backend_name(b) << " " << i;
    }
  }
  // ZX handles bare wires through composition too.
  const auto ec = zx::check_equivalence_zx(c, c);
  EXPECT_EQ(ec.verdict, zx::ZxVerdict::Equivalent);
}

// ---------------------------------------------------------------------------
// Single-qubit everything (n = 1 corner).
// ---------------------------------------------------------------------------

TEST(SingleQubit, AllBackendsAndTasks) {
  ir::Circuit c(1, "one");
  c.h(0).t(0).h(0);
  const auto reference = test::oracle_state(c);
  for (const auto b :
       {core::SimBackend::Array, core::SimBackend::DecisionDiagram,
        core::SimBackend::TensorNetwork, core::SimBackend::Mps}) {
    const auto res = core::simulate(c, b);
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(std::abs((*res.state)[i] - reference.amplitudes()[i]),
                  0.0, 1e-9)
          << core::backend_name(b);
    }
  }
  EXPECT_TRUE(core::verify(c, c, core::EcMethod::Zx).equivalent);
  transpile::Target t{transpile::CouplingMap::full(1),
                      transpile::NativeGateSet::CxRzSxX, "single"};
  EXPECT_TRUE(core::compile_and_verify(c, t).verification.equivalent);
}

// ---------------------------------------------------------------------------
// QASM failure injection.
// ---------------------------------------------------------------------------

TEST(QasmErrors, AllTheWaysToFail) {
  using ir::parse_qasm;
  EXPECT_THROW(parse_qasm(""), std::runtime_error);
  EXPECT_THROW(parse_qasm("h q[0];"), std::runtime_error);  // no qreg
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[2];\nqreg r[2];\nh q[0];"),
               std::runtime_error);  // two qregs
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[2];\nrz() q[0];"),
               std::runtime_error);  // empty angle
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0];"),
               std::runtime_error);  // operand count
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[2];\nh r[0];"),
               std::runtime_error);  // unknown register
}

// ---------------------------------------------------------------------------
// Approximation + simulation pipeline.
// ---------------------------------------------------------------------------

TEST(ApproxPipeline, ApproximatedStateStillSamplesCorrectPeak) {
  const std::size_t n = 8;
  const std::uint64_t marked = 200;
  dd::DDSimulator sim(n, 3);
  sim.run(ir::grover(n, marked));
  const auto res = dd::approximate(sim.package(), sim.state(), 0.02);
  Rng rng(9);
  std::size_t hits = 0;
  for (int s = 0; s < 100; ++s) {
    hits += sim.package().sample(res.state, rng) == marked ? 1 : 0;
  }
  EXPECT_GT(hits, 90U);
}

}  // namespace
}  // namespace qdt
