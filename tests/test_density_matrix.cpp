#include "arrays/density_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arrays/svsim.hpp"
#include "ir/library.hpp"
#include "testutil.hpp"

namespace qdt::arrays {
namespace {

TEST(KrausChannels, AllTracePreserving) {
  EXPECT_TRUE(depolarizing(0.1).is_trace_preserving());
  EXPECT_TRUE(depolarizing(1.0).is_trace_preserving());
  EXPECT_TRUE(amplitude_damping(0.3).is_trace_preserving());
  EXPECT_TRUE(phase_damping(0.2).is_trace_preserving());
  EXPECT_TRUE(bit_flip(0.25).is_trace_preserving());
  EXPECT_TRUE(phase_flip(0.75).is_trace_preserving());
}

TEST(KrausChannels, RejectBadProbability) {
  EXPECT_THROW(depolarizing(-0.1), std::invalid_argument);
  EXPECT_THROW(amplitude_damping(1.5), std::invalid_argument);
}

TEST(DensityMatrix, PureStateConstruction) {
  const auto sv = test::oracle_state(ir::bell());
  const DensityMatrix rho(sv);
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-12);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
  EXPECT_NEAR(rho.fidelity(sv), 1.0, 1e-12);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStatevector) {
  const ir::Circuit c = ir::random_circuit(3, 4, 13);
  DensityMatrix rho(3);
  for (const auto& op : c.ops()) {
    rho.apply(op);
  }
  const auto sv = test::oracle_state(c);
  const DensityMatrix expected(sv);
  EXPECT_TRUE(rho.approx_equal(expected, 1e-9));
}

TEST(DensityMatrix, FullDepolarizationGivesMaximallyMixed) {
  DensityMatrix rho(1);
  rho.apply(ir::Operation{ir::GateKind::H, 0});
  rho.apply_channel(depolarizing(1.0), 0);
  EXPECT_NEAR(rho.at(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.at(1, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(rho.at(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingDecaysExcitedState) {
  DensityMatrix rho(1);
  rho.apply(ir::Operation{ir::GateKind::X, 0});
  rho.apply_channel(amplitude_damping(0.4), 0);
  EXPECT_NEAR(rho.at(1, 1).real(), 0.6, 1e-12);
  EXPECT_NEAR(rho.at(0, 0).real(), 0.4, 1e-12);
}

TEST(DensityMatrix, PhaseDampingKillsCoherence) {
  DensityMatrix rho(1);
  rho.apply(ir::Operation{ir::GateKind::H, 0});
  rho.apply_channel(phase_damping(1.0), 0);
  EXPECT_NEAR(std::abs(rho.at(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(rho.at(0, 0).real(), 0.5, 1e-12);
}

TEST(DensityMatrix, NoiseReducesGhzFidelity) {
  const ir::Circuit c = ir::ghz(3);
  DensityMatrix noiseless(3);
  noiseless.run(c, NoiseModel{});
  DensityMatrix noisy(3);
  noisy.run(c, NoiseModel::depolarizing_model(0.05));
  const auto ideal = test::oracle_state(c);
  EXPECT_NEAR(noiseless.fidelity(ideal), 1.0, 1e-10);
  const double f = noisy.fidelity(ideal);
  EXPECT_LT(f, 0.99);
  EXPECT_GT(f, 0.5);
  EXPECT_NEAR(noisy.trace_real(), 1.0, 1e-10);
}

TEST(DensityMatrix, NonSelectiveMeasurementDephases) {
  ir::Circuit c(1);
  c.h(0).measure(0);
  DensityMatrix rho(1);
  rho.run(c, NoiseModel{});
  EXPECT_NEAR(std::abs(rho.at(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(rho.at(0, 0).real(), 0.5, 1e-12);
}

TEST(DensityMatrix, ResetChannel) {
  ir::Circuit c(1);
  c.h(0).reset(0);
  DensityMatrix rho(1);
  rho.run(c, NoiseModel{});
  EXPECT_NEAR(rho.at(0, 0).real(), 1.0, 1e-12);
  EXPECT_NEAR(rho.at(1, 1).real(), 0.0, 1e-12);
}

TEST(Trajectories, AverageMatchesDensityMatrix) {
  // Quantum-trajectory statevector simulation with amplitude damping must
  // reproduce the density-matrix populations on average.
  const double gamma = 0.3;
  ir::Circuit c(1);
  c.x(0).i(0);  // X, then an identity gate that also picks up noise
  NoiseModel nm;
  nm.gate_noise.push_back(amplitude_damping(gamma));

  DensityMatrix rho(1);
  rho.run(c, nm);

  StatevectorSimulator sim(123);
  sim.set_noise(nm);
  const std::size_t shots = 5000;
  double pop1 = 0.0;
  for (std::size_t s = 0; s < shots; ++s) {
    const auto res = sim.run(c);
    pop1 += std::norm(res.state.amplitude(1));
  }
  pop1 /= static_cast<double>(shots);
  EXPECT_NEAR(pop1, rho.at(1, 1).real(), 0.03);
}

}  // namespace
}  // namespace qdt::arrays
