#include "tn/mps.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "ir/library.hpp"
#include "testutil.hpp"

namespace qdt::tn {
namespace {

void expect_matches_oracle(const ir::Circuit& c, double eps = 1e-8) {
  MPS mps(c.num_qubits());
  mps.run(c);
  const auto got = mps.to_vector();
  const auto expected = test::oracle_state(c);
  ASSERT_EQ(got.size(), expected.amplitudes().size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(std::abs(got[i] - expected.amplitudes()[i]), 0.0, eps)
        << c.name() << " amplitude " << i;
  }
}

TEST(Mps, InitialStateIsAllZeros) {
  MPS mps(4);
  EXPECT_NEAR(std::abs(mps.amplitude(0) - Complex{1.0}), 0.0, 1e-12);
  EXPECT_NEAR(mps.norm2(), 1.0, 1e-12);
  EXPECT_EQ(mps.max_bond_dimension(), 1U);
}

TEST(Mps, BellState) {
  MPS mps(2);
  mps.run(ir::bell());
  EXPECT_NEAR(std::abs(mps.amplitude(0b00)), kInvSqrt2, 1e-10);
  EXPECT_NEAR(std::abs(mps.amplitude(0b11)), kInvSqrt2, 1e-10);
  EXPECT_NEAR(std::abs(mps.amplitude(0b01)), 0.0, 1e-12);
  // One ebit of entanglement: bond dimension exactly 2.
  EXPECT_EQ(mps.max_bond_dimension(), 2U);
}

TEST(Mps, ExactSimulationMatchesOracle) {
  expect_matches_oracle(ir::ghz(5));
  expect_matches_oracle(ir::w_state(4));
  expect_matches_oracle(ir::qft(4));
  expect_matches_oracle(ir::hidden_shift(4, 0b1010));
  expect_matches_oracle(ir::random_circuit(4, 4, 3));
  expect_matches_oracle(ir::random_clifford(4, 50, 5));
}

TEST(Mps, NonAdjacentGatesRouteCorrectly) {
  // CX between the endpoints of a 5-qubit chain.
  ir::Circuit c(5);
  c.h(0).cx(0, 4);
  expect_matches_oracle(c);
}

TEST(Mps, GhzBondStaysTwo) {
  // GHZ has exactly one ebit across every cut: bond dimension 2 regardless
  // of width — the Section IV low-entanglement sweet spot.
  for (const std::size_t n : {4, 8, 16}) {
    MPS mps(n);
    mps.run(ir::ghz(n));
    EXPECT_EQ(mps.max_bond_dimension(), 2U) << n;
    EXPECT_NEAR(mps.norm2(), 1.0, 1e-9);
  }
}

TEST(Mps, LinearMemoryForBoundedBond) {
  // total_elements grows linearly in n for fixed-bond states.
  MPS a(8);
  a.run(ir::ghz(8));
  MPS b(16);
  b.run(ir::ghz(16));
  EXPECT_LE(b.total_elements(), 2 * a.total_elements() + 16);
}

TEST(Mps, TruncationBoundsBondDimension) {
  const auto c = ir::random_circuit(6, 6, 9);
  MPS exact(6);
  exact.run(c);
  MPS truncated(6, /*max_bond=*/2);
  truncated.run(c);
  EXPECT_LE(truncated.max_bond_dimension(), 2U);
  EXPECT_GT(exact.max_bond_dimension(), 2U);
  EXPECT_GT(truncated.discarded_weight(), 0.0);
  EXPECT_NEAR(exact.discarded_weight(), 0.0, 1e-9);
}

TEST(Mps, TruncatedStateStillCloseForModerateEntanglement) {
  // The approximation story of [12]/[35]: bounded bonds trade fidelity for
  // memory. For a shallow circuit chi=4 keeps most of the state.
  const auto c = ir::random_circuit(6, 2, 13);
  MPS truncated(6, /*max_bond=*/4);
  truncated.run(c);
  const auto expected = test::oracle_state(c);
  double overlap = 0.0;
  const auto got = truncated.to_vector();
  Complex ip{};
  for (std::size_t i = 0; i < got.size(); ++i) {
    ip += std::conj(got[i]) * expected.amplitudes()[i];
  }
  overlap = std::abs(ip);
  const double n2 = truncated.norm2();
  if (n2 > 0.0) {
    overlap /= std::sqrt(n2);
  }
  EXPECT_GT(overlap, 0.8);
}

TEST(Mps, ExpectationMatchesOracle) {
  const auto c = ir::random_circuit(4, 3, 19);
  MPS mps(4);
  mps.run(c);
  const auto sv = test::oracle_state(c);
  // <Z_q> for every qubit, cross-checked against dense probabilities.
  for (std::size_t q = 0; q < 4; ++q) {
    double expect_z = 0.0;
    for (std::uint64_t i = 0; i < sv.dim(); ++i) {
      expect_z += (((i >> q) & 1) == 0 ? 1.0 : -1.0) *
                  std::norm(sv.amplitude(i));
    }
    std::string paulis(4, 'I');
    paulis[4 - 1 - q] = 'Z';
    const Complex got = mps.expectation(paulis);
    EXPECT_NEAR(got.real(), expect_z, 1e-8) << q;
    EXPECT_NEAR(got.imag(), 0.0, 1e-8) << q;
  }
}

TEST(Mps, ExpectationGhzStrings) {
  MPS mps(4);
  mps.run(ir::ghz(4));
  EXPECT_NEAR(mps.expectation("ZZII").real(), 1.0, 1e-9);
  EXPECT_NEAR(mps.expectation("XXXX").real(), 1.0, 1e-9);
  EXPECT_NEAR(std::abs(mps.expectation("ZIII")), 0.0, 1e-9);
  EXPECT_THROW(mps.expectation("ZZ"), std::invalid_argument);
}

TEST(Mps, PerfectSamplingMatchesBornRule) {
  const auto c = ir::w_state(5);
  MPS mps(5);
  mps.run(c);
  const auto probs = test::oracle_state(c).probabilities();
  Rng rng(23);
  const std::size_t shots = 20000;
  std::map<std::uint64_t, std::size_t> counts;
  for (std::size_t s = 0; s < shots; ++s) {
    ++counts[mps.sample(rng)];
  }
  for (const auto& [word, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / shots, probs[word], 0.02)
        << word;
  }
  // Sampling is non-destructive.
  EXPECT_NEAR(mps.norm2(), 1.0, 1e-9);
}

TEST(Mps, PerfectSamplingGhzOnlyTwoOutcomes) {
  MPS mps(12);
  mps.run(ir::ghz(12));
  Rng rng(5);
  for (int s = 0; s < 200; ++s) {
    const auto word = mps.sample(rng);
    EXPECT_TRUE(word == 0 || word == 0xFFF) << word;
  }
}

TEST(Mps, RejectsThreeQubitGates) {
  MPS mps(3);
  EXPECT_THROW(
      mps.apply(ir::Operation{ir::GateKind::X, {2}, {0, 1}}),
      std::invalid_argument);
}

TEST(Mps, RejectsNonUnitary) {
  MPS mps(2);
  EXPECT_THROW(mps.apply(ir::Operation{ir::GateKind::Measure, 0}),
               std::invalid_argument);
}

TEST(TwoQubitMatrix, ControlEmbedding) {
  // CX with control q1, target q0; bit0 = q0.
  const ir::Operation cx{ir::GateKind::X, {0}, {1}};
  const Mat4 m = two_qubit_matrix(cx, 0, 1);
  // |q1 q0> = |10> (index 2) -> |11> (index 3).
  EXPECT_NEAR(std::abs(m(3, 2) - Complex{1.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m(0, 0) - Complex{1.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m(1, 1) - Complex{1.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m(2, 2)), 0.0, 1e-12);
}

TEST(TwoQubitMatrix, SwappedOperandOrder) {
  const ir::Operation cx{ir::GateKind::X, {1}, {0}};
  // bit0 = q1 now (qa = 1): control is bit 1 = q0.
  const Mat4 m = two_qubit_matrix(cx, 1, 0);
  // |q0 q1> basis with bit0=q1: index = (q0<<1)|q1. Control q0=1, q1=0 is
  // index 2 -> flips q1 -> index 3.
  EXPECT_NEAR(std::abs(m(3, 2) - Complex{1.0}), 0.0, 1e-12);
}

}  // namespace
}  // namespace qdt::tn
