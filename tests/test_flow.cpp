// qdt::flow — the dataflow framework and the certified static optimizer.
//
// Covers the constant-state lattice transfer functions, Clifford region
// segmentation, the commutation DAG, every rewrite family of
// flow::optimize, and the certificate checker — including the negative
// case where a tampered rewrite list must be rejected.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include "core/qdt.hpp"

namespace qdt {
namespace {

std::vector<Complex> array_state(const ir::Circuit& c) {
  core::SimulateOptions opts;
  opts.shots = 0;
  opts.want_state = true;
  auto res = core::simulate(c, core::SimBackend::Array, opts);
  return std::move(*res.state);
}

/// Max elementwise deviation after aligning b's global phase onto a's.
double distance_up_to_phase(const std::vector<Complex>& a,
                            const std::vector<Complex>& b) {
  if (a.size() != b.size()) {
    ADD_FAILURE() << "state sizes differ: " << a.size() << " vs " << b.size();
    return std::numeric_limits<double>::infinity();
  }
  std::size_t anchor = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::norm(a[i]) > best) {
      best = std::norm(a[i]);
      anchor = i;
    }
  }
  Complex phase{1.0, 0.0};
  if (best > 0.0 && std::abs(b[anchor]) > 0.0) {
    phase =
        (a[anchor] / std::abs(a[anchor])) / (b[anchor] / std::abs(b[anchor]));
  }
  double dist = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dist = std::max(dist, std::abs(a[i] - phase * b[i]));
  }
  return dist;
}

// -- Constant-state lattice -------------------------------------------------

TEST(FlowDomain, JoinIsCommutativeWithTopAbsorbing) {
  using flow::StateValue;
  EXPECT_EQ(flow::join(StateValue::Zero, StateValue::Zero), StateValue::Zero);
  EXPECT_EQ(flow::join(StateValue::Zero, StateValue::One), StateValue::Top);
  EXPECT_EQ(flow::join(StateValue::Bottom, StateValue::Plus),
            StateValue::Plus);
  EXPECT_EQ(flow::join(StateValue::Top, StateValue::Zero), StateValue::Top);
}

TEST(FlowDomain, SingleQubitTransfersFollowTheStabilizerTable) {
  using flow::StateValue;
  ir::Circuit c(1);
  c.h(0).s(0).h(0);
  const flow::StateAnalysis a = flow::analyze_states(c);
  // |0> -H-> |+> -S-> |+i> -H-> ... (no longer a stabilizer axis state
  // reachable? H|+i> is known: it is e^{i pi/4} |-i> up to phase — the
  // lattice only tracks exact states, so accept either known or Top).
  ASSERT_EQ(a.final_states.size(), 1u);
  // The intermediate facts are what matters: full coverage of incidences.
  EXPECT_EQ(a.total_incidences, 3u);
  EXPECT_GE(a.known_incidences, 2u);
}

TEST(FlowDomain, ResetAndMeasureRefineTheLattice) {
  using flow::StateValue;
  ir::Circuit c(2);
  c.h(0).cx(0, 1);   // entangled: both Top
  c.reset(0);        // q0 back to |0>
  c.measure(1);      // q1 stays Top (unknown outcome)
  const flow::StateAnalysis a = flow::analyze_states(c);
  EXPECT_EQ(a.final_states[0], StateValue::Zero);
  EXPECT_EQ(a.final_states[1], StateValue::Top);
}

TEST(FlowDomain, ControlOnZeroMakesGateIdentity) {
  ir::Circuit c(2);
  c.cx(0, 1);  // control still |0>
  const flow::StateAnalysis a = flow::analyze_states(c);
  EXPECT_EQ(a.identity_ops, 1u);
  EXPECT_EQ(a.final_states[1], flow::StateValue::Zero);
}

TEST(FlowDomain, DiagonalGateOnBasisStateIsPhasedIdentity) {
  ir::Circuit c(1);
  c.x(0).t(0);  // T on |1> is e^{i pi/4} identity
  std::vector<flow::StateValue> states{flow::StateValue::Zero};
  const flow::OpEffect x_eff = flow::transfer_op(c[0], states);
  EXPECT_FALSE(x_eff.identity);
  EXPECT_EQ(states[0], flow::StateValue::One);
  const flow::OpEffect t_eff = flow::transfer_op(c[1], states);
  EXPECT_TRUE(t_eff.identity);
  EXPECT_NEAR(t_eff.phase_radians, std::acos(-1.0) / 4.0, 1e-12);
}

// -- Clifford regions + commutation DAG ------------------------------------

TEST(FlowClifford, RegionsSplitOnNonCliffordOnly) {
  ir::Circuit c(2);
  c.h(0).cx(0, 1);  // Clifford
  c.t(0);           // splits
  c.measure(0);     // does not split
  c.s(1).z(1);      // Clifford again
  const auto regions = flow::clifford_regions(c);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].begin, 0u);
  EXPECT_EQ(regions[0].end, 2u);
  EXPECT_EQ(regions[0].unitary_gates, 2u);
  EXPECT_EQ(regions[1].begin, 3u);
  EXPECT_EQ(regions[1].end, 6u);
  EXPECT_EQ(regions[1].unitary_gates, 2u);
}

TEST(FlowClifford, FullyCliffordCircuitIsOneRegion) {
  const auto regions = flow::clifford_regions(ir::ghz(8));
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].unitary_gates, 8u);
}

TEST(FlowClifford, CommutationDagSeesThroughDiagonalGates) {
  ir::Circuit c(2);
  c.z(0).t(0).rz(Phase::pi_4(), 0).x(0);
  const auto dag = flow::build_commutation_dag(c);
  ASSERT_EQ(dag.preds.size(), 4u);
  // The diagonal prefix mutually commutes: no edges among ops 0..2.
  EXPECT_TRUE(dag.preds[1].empty());
  EXPECT_TRUE(dag.preds[2].empty());
  // X does not commute with the diagonal chain: nearest blocker only.
  ASSERT_EQ(dag.preds[3].size(), 1u);
  EXPECT_EQ(dag.preds[3][0], 2u);
}

TEST(FlowClifford, BarriersAndMeasurementsBlock) {
  ir::Circuit c(1);
  c.z(0);
  c.barrier();
  c.z(0);
  const auto dag = flow::build_commutation_dag(c);
  ASSERT_EQ(dag.preds[2].size(), 1u);
  EXPECT_EQ(dag.preds[2][0], 1u);  // the barrier, not op 0
}

// -- The optimizer, rewrite family by rewrite family -----------------------

TEST(FlowOpt, DeadGatesOnColdWiresAreRemoved) {
  ir::Circuit c(3);
  c.z(0);        // dead: Z|0> = |0>
  c.cx(1, 2);    // dead: control |0>
  c.h(0);        // live
  const flow::OptResult res = flow::optimize(c);
  EXPECT_EQ(res.gates_after, 1u);
  EXPECT_TRUE(res.certified);
  EXPECT_EQ(res.circuit.size(), 1u);
  EXPECT_EQ(res.circuit[0].kind(), ir::GateKind::H);
}

TEST(FlowOpt, DiagonalPhaseFoldsIntoGlobalPhase) {
  ir::Circuit c(1);
  c.x(0).t(0).tdg(0).x(0);  // t/tdg cancel; x/x cancel via commutation
  const flow::OptResult res = flow::optimize(c);
  EXPECT_EQ(res.gates_after, 0u);
  EXPECT_NEAR(res.global_phase_radians, 0.0, 1e-9);
}

TEST(FlowOpt, RequireZeroPhaseSkipsPhasedFolds) {
  ir::Circuit c(1);
  c.x(0).t(0);  // T on |1>: identity only up to e^{i pi/4}
  flow::OptOptions strict;
  strict.require_zero_phase = true;
  const flow::OptResult res = flow::optimize(c, strict);
  EXPECT_EQ(res.gates_after, 2u);  // nothing removable at zero phase
  EXPECT_NEAR(res.global_phase_radians, 0.0, 1e-12);
  const flow::OptResult loose = flow::optimize(c);
  EXPECT_EQ(loose.gates_after, 1u);  // x survives, t folds
  EXPECT_NEAR(loose.global_phase_radians, std::acos(-1.0) / 4.0, 1e-9);
}

TEST(FlowOpt, CancelsAdjointPairAcrossCommutingGap) {
  // h q0 ... 70 t q1 ... h q0: far beyond any peephole window, and the
  // t-chain commutes with nothing on q0.
  ir::Circuit c(2);
  c.h(1);  // make q1 non-trivial so the t-chain is not dead code
  c.h(0);
  for (int i = 0; i < 70; ++i) {
    c.t(1);
  }
  c.h(0);
  flow::OptOptions opts;
  opts.compact_wires = false;  // keep the widths comparable below
  const flow::OptResult res = flow::optimize(c, opts);
  // The two h q0 cancel across the 70-op commuting gap.
  std::size_t h_count = 0;
  for (const auto& op : res.circuit.ops()) {
    if (op.kind() == ir::GateKind::H && op.qubits()[0] == 0) {
      ++h_count;
    }
  }
  EXPECT_EQ(h_count, 0u);
  EXPECT_TRUE(res.certified);
  EXPECT_NEAR(distance_up_to_phase(array_state(c), array_state(res.circuit)),
              0.0, 1e-7);
}

TEST(FlowOpt, BarrierBlocksCancellation) {
  ir::Circuit c(1);
  c.h(0);
  c.barrier();
  c.h(0);
  const flow::OptResult res = flow::optimize(c);
  EXPECT_EQ(res.gates_after, 2u);  // the barrier is an optimization fence
}

TEST(FlowOpt, MergesRotationsAndPreservesSemantics) {
  ir::Circuit c(1);
  c.h(0).rz(Phase::pi_4(), 0).x(0).rz(Phase::pi_4(), 0);
  // rz does not commute past x — nothing merges here.
  const flow::OptResult blocked = flow::optimize(c);
  EXPECT_EQ(blocked.gates_after, 4u);

  ir::Circuit m(2);
  m.h(0).rz(Phase::pi_4(), 0).z(1).rz(Phase::pi_4(), 0);
  flow::OptOptions keep;
  keep.compact_wires = false;  // z q1 dies, but the width must not change
  const flow::OptResult res = flow::optimize(m, keep);
  // The two pi/4 z-rotations merge across the commuting z q1 (itself dead
  // on |0>): h + merged rz survive.
  EXPECT_EQ(res.gates_after, 2u);
  EXPECT_NEAR(distance_up_to_phase(array_state(m), array_state(res.circuit)),
              0.0, 1e-7);
}

TEST(FlowOpt, CompactionDropsUntouchedWires) {
  ir::Circuit c(5);
  c.h(1).cx(1, 3);
  const flow::OptResult res = flow::optimize(c);
  EXPECT_EQ(res.wires_after, 2u);
  ASSERT_EQ(res.wire_map.size(), 5u);
  EXPECT_EQ(res.wire_map[1], 0u);
  EXPECT_EQ(res.wire_map[3], 1u);
  EXPECT_EQ(res.wire_map[0], flow::kInvalidWire);

  flow::OptOptions keep;
  keep.compact_wires = false;
  EXPECT_EQ(flow::optimize(c, keep).wires_after, 5u);
}

TEST(FlowOpt, OptimizerIsAFixpoint) {
  ir::Circuit c(3);
  c.z(0).h(0).t(0).tdg(0).cx(0, 1).cx(2, 1).h(2);
  const flow::OptResult once = flow::optimize(c);
  const flow::OptResult twice = flow::optimize(once.circuit);
  EXPECT_EQ(twice.rewrites.size(), 0u);
  EXPECT_TRUE(twice.circuit == once.circuit);
}

// -- The certificate checker ------------------------------------------------

TEST(FlowCert, AcceptsTheOptimizerOwnRewrites) {
  ir::Circuit c(2);
  c.z(0).h(0).cx(0, 1).t(1).tdg(1);
  flow::OptOptions opts;
  opts.compact_wires = false;
  const flow::OptResult res = flow::optimize(c, opts);
  EXPECT_TRUE(res.certified);
  EXPECT_NO_THROW(flow::cert::check_rewrites(c, res.rewrites, res.circuit,
                                             res.global_phase_radians));
}

TEST(FlowCert, RejectsTamperedRewrite) {
  ir::Circuit c(2);
  c.z(0).h(0).cx(0, 1);
  flow::OptOptions opts;
  opts.compact_wires = false;
  const flow::OptResult res = flow::optimize(c, opts);
  ASSERT_FALSE(res.rewrites.empty());
  // Claim the h (a live gate) was the dead one.
  std::vector<flow::Rewrite> tampered = res.rewrites;
  tampered[0].op = 1;
  EXPECT_THROW(
      flow::cert::check_rewrites(c, tampered, res.circuit,
                                 res.global_phase_radians),
      Error);
}

TEST(FlowCert, RejectsWrongOutputCircuit) {
  ir::Circuit c(1);
  c.z(0).h(0);
  flow::OptOptions opts;
  opts.compact_wires = false;
  const flow::OptResult res = flow::optimize(c, opts);
  ir::Circuit wrong(1);
  wrong.x(0);
  EXPECT_THROW(flow::cert::check_rewrites(c, res.rewrites, wrong,
                                          res.global_phase_radians),
               Error);
}

TEST(FlowCert, RejectsFalseLatticeClaim) {
  ir::Circuit c(1);
  c.h(0).z(0);  // z on |+> flips it to |->: NOT an identity
  flow::Rewrite bogus;
  bogus.kind = flow::Rewrite::Kind::DeadGate;
  bogus.op = 1;
  bogus.fact_states = {flow::StateValue::Zero};  // a lie about the in-state
  ir::Circuit claimed(1);
  claimed.h(0);
  EXPECT_THROW(flow::cert::check_rewrites(c, {bogus}, claimed, 0.0), Error);
}

// -- End-to-end: examples and the stack integration ------------------------

TEST(FlowOpt, TeleportChainShowcase) {
  // Mirrors examples/teleport9.qasm's unitary prefix: the leading rz
  // folds, everything live survives, and the state is preserved.
  ir::Circuit c(3);
  c.rz(Phase::pi_4(), 0);  // folds on |0>
  c.h(0).t(0);
  c.h(1).cx(1, 2);
  c.cx(0, 1).h(0);
  const flow::OptResult res = flow::optimize(c);
  EXPECT_LT(res.gates_after, res.gates_before);
  EXPECT_NEAR(distance_up_to_phase(array_state(c), array_state(res.circuit)),
              0.0, 1e-7);
}

TEST(FlowLint, FactsCarryRegionsAndCoverage) {
  ir::Circuit c = ir::ghz(6);
  const lint::Report report = lint::run(c, {});
  ASSERT_EQ(report.facts.clifford_regions.size(), 1u);
  EXPECT_EQ(report.facts.max_clifford_region_gates, 6u);
  EXPECT_GT(report.facts.constant_state_coverage, 0.0);
}

TEST(FlowLint, SingleRegionCliffordRoutesStabilizerFirst) {
  // 24 qubits, fully Clifford, one uninterrupted region: the region-aware
  // cost model must put the tableau first with zero degradation risk.
  const ir::Circuit c = ir::random_clifford(24, 200, /*seed=*/3);
  const lint::Report report = lint::run(c, {});
  ASSERT_EQ(report.facts.clifford_regions.size(), 1u);
  ASSERT_FALSE(report.plan.estimates.empty());
  EXPECT_EQ(report.plan.estimates.front().backend, lint::Backend::Stabilizer);
  EXPECT_EQ(report.plan.preferred_order.front(), lint::Backend::Stabilizer);
}

}  // namespace
}  // namespace qdt
