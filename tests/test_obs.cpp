// Tests for qdt::obs — registry semantics, histogram bucketing, thread
// safety of the sharded counters, exporter output, and the end-to-end
// instrumentation of the simulation/verification backends.
//
// The same file compiles under both QDT_OBS_ENABLED settings: structural
// assertions (linkage, snapshot shape, exporters, clock helpers) always
// run; value assertions that require live metrics are guarded.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "core/tasks.hpp"
#include "ir/library.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

namespace qdt {
namespace {

// Minimal recursive-descent JSON validator — enough to prove the exporter
// emits grammatically valid JSON without pulling in a parser dependency.
class JsonValidator {
 public:
  explicit JsonValidator(std::string s) : s_(std::move(s)) {}

  bool valid() {
    skip_ws();
    if (!value()) {
      return false;
    }
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string_view want(lit);
    if (s_.compare(pos_, want.size(), want) != 0) {
      return false;
    }
    pos_ += want.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string s_;
  std::size_t pos_ = 0;
};

TEST(Obs, StopwatchIsRealInBothBuilds) {
  const double a = obs::monotonic_seconds();
  const double b = obs::monotonic_seconds();
  EXPECT_GE(b, a);
  obs::Stopwatch sw;
  volatile double burn = 0.0;
  for (int i = 0; i < 1000; ++i) {
    burn = burn + 1.0;
  }
  EXPECT_GE(sw.seconds(), 0.0);
  sw.restart();
  EXPECT_GE(sw.seconds(), 0.0);
}

TEST(Obs, NoOpBuildLinksAndRuns) {
  // Every entry point must be callable in both builds; in the no-op build
  // they are empty inlines and the snapshot reports enabled = false.
  obs::Counter& c = obs::counter("qdt.test.linkage.counter");
  c.add();
  obs::Gauge& g = obs::gauge("qdt.test.linkage.gauge");
  g.update_max(42);
  obs::Histogram& h = obs::histogram("qdt.test.linkage.histogram");
  h.observe(0.5);
  {
    const obs::ScopedTimer t(h);
    const trace::Span span("qdt.test.linkage.span");
    EXPECT_GE(span.seconds(), 0.0);
  }
  const obs::Snapshot snap = obs::snapshot();
#if QDT_OBS_ENABLED
  EXPECT_TRUE(snap.enabled);
#else
  EXPECT_FALSE(snap.enabled);
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_EQ(c.value(), 0u);
#endif
}

#if QDT_OBS_ENABLED

TEST(Obs, CounterAddValueReset) {
  obs::Counter& c = obs::counter("qdt.test.counter.basic");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  // Same name resolves to the same metric.
  EXPECT_EQ(&c, &obs::counter("qdt.test.counter.basic"));
}

TEST(Obs, CounterConcurrentIncrementsSumExactly) {
  obs::Counter& c = obs::counter("qdt.test.counter.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c]() {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Obs, GaugeSetAddMax) {
  obs::Gauge& g = obs::gauge("qdt.test.gauge.basic");
  g.reset();
  g.set(5);
  EXPECT_EQ(g.value(), 5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
  g.update_max(10);
  EXPECT_EQ(g.value(), 10);
  g.update_max(7);  // lower: no effect
  EXPECT_EQ(g.value(), 10);
}

TEST(Obs, HistogramBucketBoundaries) {
  obs::Histogram& h =
      obs::histogram("qdt.test.histogram.bounds", {1.0, 2.0, 5.0});
  h.reset();
  // Prometheus `le` semantics: v lands in the first bucket with v <= bound.
  for (const double v : {0.5, 1.0, 1.5, 2.0, 5.0, 7.0}) {
    h.observe(v);
  }
  ASSERT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 5.0}));
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(counts[0], 2u);      // 0.5, 1.0  (boundary value is inclusive)
  EXPECT_EQ(counts[1], 2u);      // 1.5, 2.0
  EXPECT_EQ(counts[2], 1u);      // 5.0
  EXPECT_EQ(counts[3], 1u);      // 7.0 -> overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 17.0);
}

TEST(Obs, SnapshotAndResetSemantics) {
  obs::reset();
  trace::reset();
  obs::counter("qdt.test.snapshot.counter").add(3);
  obs::gauge("qdt.test.snapshot.gauge").set(-4);
  obs::histogram("qdt.test.snapshot.histogram").observe(0.25);
  { const trace::Span span("qdt.test.snapshot.span"); }

  obs::Snapshot snap = obs::snapshot();
  trace::fill_obs_spans(snap);
  EXPECT_TRUE(snap.enabled);
  const auto* cs = snap.find_counter("qdt.test.snapshot.counter");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->value, 3u);
  const auto* gs = snap.find_gauge("qdt.test.snapshot.gauge");
  ASSERT_NE(gs, nullptr);
  EXPECT_EQ(gs->value, -4);
  const auto* hs = snap.find_histogram("qdt.test.snapshot.histogram");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 1u);
  ASSERT_FALSE(snap.spans.empty());
  EXPECT_EQ(snap.spans.back().name, "qdt.test.snapshot.span");

  // Counters are sorted by name for deterministic export.
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }

  // obs::reset() zeroes metric values; trace::reset() clears spans. Both
  // keep registrations.
  obs::reset();
  trace::reset();
  obs::Snapshot after = obs::snapshot();
  trace::fill_obs_spans(after);
  const auto* cs2 = after.find_counter("qdt.test.snapshot.counter");
  ASSERT_NE(cs2, nullptr);
  EXPECT_EQ(cs2->value, 0u);
  EXPECT_TRUE(after.spans.empty());
  EXPECT_EQ(after.spans_dropped, 0u);
}

TEST(Obs, SpanNestingDepth) {
  obs::reset();
  trace::reset();
  {
    const trace::Span outer("qdt.test.span.outer");
    { const trace::Span inner("qdt.test.span.inner"); }
  }
  obs::Snapshot snap = obs::snapshot();
  trace::fill_obs_spans(snap);
  ASSERT_EQ(snap.spans.size(), 2u);
  // Inner completes (and records) first, at depth 1.
  EXPECT_EQ(snap.spans[0].name, "qdt.test.span.inner");
  EXPECT_EQ(snap.spans[0].depth, 1u);
  EXPECT_EQ(snap.spans[1].name, "qdt.test.span.outer");
  EXPECT_EQ(snap.spans[1].depth, 0u);
  EXPECT_GE(snap.spans[1].seconds, snap.spans[0].seconds);
}

TEST(Obs, EndToEndBackendCounters) {
  obs::reset();
  trace::reset();
  const ir::Circuit ghz = ir::ghz(4);

  core::SimulateOptions opts;
  opts.shots = 0;
  core::simulate(ghz, core::SimBackend::DecisionDiagram, opts);
  obs::Snapshot snap = obs::snapshot();
  const auto* ut = snap.find_counter("qdt.dd.unique_table.hits");
  ASSERT_NE(ut, nullptr);
  EXPECT_GT(ut->value, 0u);
  ASSERT_NE(snap.find_counter("qdt.dd.compute_table.hits"), nullptr);
  ASSERT_NE(snap.find_counter("qdt.dd.package.node_allocs"), nullptr);
  EXPECT_GT(snap.find_counter("qdt.dd.package.node_allocs")->value, 0u);

  core::simulate(ghz, core::SimBackend::TensorNetwork, opts);
  snap = obs::snapshot();
  const auto* flops = snap.find_counter("qdt.tn.contraction.flops");
  ASSERT_NE(flops, nullptr);
  EXPECT_GT(flops->value, 0u);

  core::verify(ghz, ghz, core::EcMethod::Zx);
  snap = obs::snapshot();
  std::uint64_t zx_fires = 0;
  for (const auto& c : snap.counters) {
    if (c.name.rfind("qdt.zx.rule.", 0) == 0) {
      zx_fires += c.value;
    }
  }
  EXPECT_GT(zx_fires, 0u);

  // Task spans were recorded for both top-level entry points.
  trace::fill_obs_spans(snap);
  bool saw_simulate = false;
  bool saw_verify = false;
  for (const auto& s : snap.spans) {
    saw_simulate |= s.name == "qdt.core.task.simulate";
    saw_verify |= s.name == "qdt.core.task.verify";
  }
  EXPECT_TRUE(saw_simulate);
  EXPECT_TRUE(saw_verify);
  obs::reset();
  trace::reset();
}

#endif  // QDT_OBS_ENABLED

TEST(Obs, JsonExportIsValid) {
#if QDT_OBS_ENABLED
  obs::reset();
  obs::counter("qdt.test.json.counter").add(7);
  obs::gauge("qdt.test.json.gauge").set(-1);
  obs::histogram("qdt.test.json.histogram").observe(1.5);
  { const trace::Span span("qdt.test.json.span"); }
#endif
  const std::string json = obs::to_json(obs::snapshot());
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json;
#if QDT_OBS_ENABLED
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"qdt.test.json.counter\":7"), std::string::npos);
  obs::reset();
#else
  EXPECT_NE(json.find("\"enabled\":false"), std::string::npos);
#endif

  // core::obs_report() is the same snapshot through the public API.
  JsonValidator v2(core::obs_report());
  EXPECT_TRUE(v2.valid());
}

TEST(Obs, PrometheusExport) {
#if QDT_OBS_ENABLED
  obs::reset();
  obs::counter("qdt.test.prom.counter").add(2);
  obs::histogram("qdt.test.prom.histogram", {0.1, 1.0}).observe(0.05);
#endif
  const std::string text = obs::to_prometheus(obs::snapshot());
#if QDT_OBS_ENABLED
  // Dots are mangled to underscores; histograms expose cumulative buckets.
  EXPECT_NE(text.find("# TYPE qdt_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("qdt_test_prom_counter 2"), std::string::npos);
  EXPECT_NE(text.find("qdt_test_prom_histogram_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("qdt_test_prom_histogram_count 1"), std::string::npos);
  obs::reset();
#else
  EXPECT_TRUE(text.empty() || text.find('\n') != std::string::npos);
#endif
}

}  // namespace
}  // namespace qdt
