// Property-style invariant sweeps (parameterized over seeds/sizes): the
// algebraic laws each data structure must satisfy, independent of any
// specific circuit.
#include <gtest/gtest.h>

#include <cmath>

#include "core/qdt.hpp"
#include "testutil.hpp"

namespace qdt {
namespace {

// ---------------------------------------------------------------------------
// Phase: group laws of rational angles mod 2 pi.
// ---------------------------------------------------------------------------

class PhaseGroupLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhaseGroupLaws, AssociativityCommutativityInverse) {
  Rng rng(GetParam());
  const auto random_phase = [&rng] {
    return Phase{rng.integer(-64, 64), rng.integer(1, 64)};
  };
  for (int i = 0; i < 50; ++i) {
    const Phase a = random_phase();
    const Phase b = random_phase();
    const Phase c = random_phase();
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a + (-a), Phase::zero());
    EXPECT_EQ(a - b, a + (-b));
    // radians() is consistent with the rational representation.
    EXPECT_NEAR(std::remainder((a + b).radians() -
                                   (a.radians() + b.radians()),
                               2 * std::numbers::pi),
                0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhaseGroupLaws,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Arrays: unitarity and linearity.
// ---------------------------------------------------------------------------

class StatevectorLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatevectorLaws, NormAndInnerProductPreserved) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const auto a_amps = rng.random_state(16);
  const auto b_amps = rng.random_state(16);
  arrays::Statevector a{a_amps};
  arrays::Statevector b{b_amps};
  const Complex ip_before = a.inner_product(b);
  const ir::Circuit c = ir::random_circuit(4, 5, seed);
  for (const auto& op : c.ops()) {
    a.apply(op);
    b.apply(op);
  }
  // Unitaries preserve norms and inner products.
  EXPECT_NEAR(a.norm(), 1.0, 1e-9);
  EXPECT_NEAR(std::abs(a.inner_product(b) - ip_before), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatevectorLaws,
                         ::testing::Range<std::uint64_t>(10, 18));

// ---------------------------------------------------------------------------
// Decision diagrams: canonicity — semantically equal states are pointer-
// equal, no matter how they were built.
// ---------------------------------------------------------------------------

TEST(DdCanonicity, SameStateSameNode) {
  dd::Package pkg(4);
  // Build |+>^4 two ways: via from_vector and via H gate applications.
  std::vector<Complex> amps(16, Complex{0.25, 0.0});
  const auto direct = pkg.from_vector(amps);
  auto state = pkg.zero_state();
  for (ir::Qubit q = 0; q < 4; ++q) {
    state = pkg.multiply(
        pkg.gate_dd(ir::Operation{ir::GateKind::H, q}), state);
  }
  EXPECT_EQ(direct.node, state.node);
  EXPECT_TRUE(pkg.ctab().equal_modulus(direct.weight, state.weight));
}

class DdCanonicityFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DdCanonicityFuzz, GateOrderIndependence) {
  // Commuting diagonal gates applied in different orders must produce the
  // identical canonical DD.
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  std::vector<ir::Operation> gates;
  for (int i = 0; i < 10; ++i) {
    gates.emplace_back(ir::GateKind::P,
                       static_cast<ir::Qubit>(rng.index(4)),
                       std::initializer_list<Phase>{
                           Phase{rng.integer(1, 7), rng.integer(1, 8)}});
  }
  dd::Package pkg(4);
  auto plus = pkg.zero_state();
  for (ir::Qubit q = 0; q < 4; ++q) {
    plus = pkg.multiply(pkg.gate_dd(ir::Operation{ir::GateKind::H, q}),
                        plus);
  }
  auto forward = plus;
  for (const auto& g : gates) {
    forward = pkg.multiply(pkg.gate_dd(g), forward);
  }
  auto backward = plus;
  for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
    backward = pkg.multiply(pkg.gate_dd(*it), backward);
  }
  EXPECT_EQ(forward.node, backward.node) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DdCanonicityFuzz,
                         ::testing::Range<std::uint64_t>(40, 48));

// DD linear-algebra laws.
class DdAlgebraLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DdAlgebraLaws, AdditionAndMultiplication) {
  const std::uint64_t seed = GetParam();
  dd::Package pkg(3);
  Rng rng(seed);
  const auto va = pkg.from_vector(rng.random_state(8));
  const auto vb = pkg.from_vector(rng.random_state(8));
  const auto vc = pkg.from_vector(rng.random_state(8));
  // Commutativity and associativity of addition.
  const auto ab = pkg.add(va, vb);
  const auto ba = pkg.add(vb, va);
  EXPECT_EQ(ab.node, ba.node);
  const auto a_bc = pkg.add(va, pkg.add(vb, vc));
  const auto ab_c = pkg.add(pkg.add(va, vb), vc);
  // Associativity holds semantically (node equality can be spoiled by
  // floating rounding, so compare dense).
  const auto lhs = pkg.to_vector(a_bc);
  const auto rhs = pkg.to_vector(ab_c);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(lhs[i] - rhs[i]), 0.0, 1e-9);
  }
  // (U V) x == U (V x).
  const auto u = pkg.gate_dd(ir::Operation{ir::GateKind::H, 1});
  const auto v = pkg.gate_dd(ir::Operation{ir::GateKind::X, {2}, {0}});
  const auto uv_x = pkg.multiply(pkg.multiply(u, v), va);
  const auto u_vx = pkg.multiply(u, pkg.multiply(v, va));
  EXPECT_EQ(uv_x.node, u_vx.node);
  EXPECT_TRUE(pkg.ctab().equal_modulus(uv_x.weight, u_vx.weight));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DdAlgebraLaws,
                         ::testing::Range<std::uint64_t>(60, 66));

// ---------------------------------------------------------------------------
// Tensor networks: contraction-order invariance.
// ---------------------------------------------------------------------------

class TnOrderInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TnOrderInvariance, AnyPlanSameScalar) {
  const std::uint64_t seed = GetParam();
  const ir::Circuit c = ir::random_clifford_t(4, 30, 0.3, seed);
  for (std::uint64_t basis : {0ULL, 9ULL}) {
    const Complex greedy = tn::amplitude(c, basis, /*greedy=*/true);
    const Complex seq = tn::amplitude(c, basis, /*greedy=*/false);
    EXPECT_NEAR(std::abs(greedy - seq), 0.0, 1e-9) << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TnOrderInvariance,
                         ::testing::Range<std::uint64_t>(80, 86));

TEST(TnLaws, ContractionIsBilinear) {
  Rng rng(5);
  tn::Tensor a({0, 1}, {2, 3});
  tn::Tensor b({1, 2}, {3, 2});
  for (auto& v : a.data()) {
    v = rng.gaussian_complex();
  }
  for (auto& v : b.data()) {
    v = rng.gaussian_complex();
  }
  // (2a) . b == 2 (a . b).
  tn::Tensor a2 = a;
  for (auto& v : a2.data()) {
    v *= 2.0;
  }
  const auto ab = tn::Tensor::contract(a, b);
  const auto a2b = tn::Tensor::contract(a2, b);
  for (std::size_t i = 0; i < ab.size(); ++i) {
    EXPECT_NEAR(std::abs(a2b.data()[i] - 2.0 * ab.data()[i]), 0.0, 1e-10);
  }
  // Contraction commutes: contract(a, b) == contract(b, a) up to index
  // ordering.
  const auto ba = tn::Tensor::contract(b, a).permuted(ab.labels());
  for (std::size_t i = 0; i < ab.size(); ++i) {
    EXPECT_NEAR(std::abs(ba.data()[i] - ab.data()[i]), 0.0, 1e-10);
  }
}

// MPS invariants under gate application.
class MpsLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpsLaws, NormPreservedBondBounded) {
  const std::uint64_t seed = GetParam();
  const ir::Circuit c = ir::random_clifford(6, 40, seed);
  tn::MPS mps(6);
  mps.run(c);
  EXPECT_NEAR(mps.norm2(), 1.0, 1e-8);
  // Exact simulation: bond dimension can never exceed 2^(n/2).
  EXPECT_LE(mps.max_bond_dimension(), 8U);
  EXPECT_NEAR(mps.discarded_weight(), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpsLaws,
                         ::testing::Range<std::uint64_t>(90, 98));

// ---------------------------------------------------------------------------
// ZX: rewriting is semantics-preserving on random diagrams (the umbrella
// property behind all of Section V).
// ---------------------------------------------------------------------------

class ZxSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZxSoundness, CliffordSimpPreservesMatrix) {
  const std::uint64_t seed = GetParam();
  const ir::Circuit c = ir::random_clifford_t(3, 36, 0.3, seed);
  zx::ZXDiagram d = zx::to_diagram(c);
  const zx::ZXMatrix before = zx::to_matrix(d);
  zx::clifford_simp(d);
  const zx::ZXMatrix after = zx::to_matrix(d);
  EXPECT_TRUE(zx::equal_up_to_scalar(before, after, 1e-7)) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZxSoundness,
                         ::testing::Range<std::uint64_t>(300, 316));

// ---------------------------------------------------------------------------
// Transpile: every pass preserves semantics on random inputs.
// ---------------------------------------------------------------------------

class TranspileSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TranspileSoundness, PassesPreserveSemantics) {
  const std::uint64_t seed = GetParam();
  const ir::Circuit c = ir::random_clifford_t(4, 30, 0.25, seed);
  const auto u_ref = arrays::DenseUnitary::from_circuit(c);

  const auto check = [&](const ir::Circuit& got, const char* pass) {
    const auto u = arrays::DenseUnitary::from_circuit(got);
    EXPECT_TRUE(u.equal_up_to_global_phase(u_ref, 1e-8))
        << pass << " seed " << seed;
  };
  check(transpile::decompose_multi_controlled(c), "multi-controlled");
  check(transpile::decompose_two_qubit(
            transpile::decompose_multi_controlled(c)),
        "two-qubit");
  check(transpile::rebase_1q_to_hzx(c), "hzx");
  check(transpile::peephole_optimize(c), "peephole");
  check(transpile::rebase_1q_to_zsx(
            transpile::decompose_two_qubit(
                transpile::decompose_multi_controlled(c))),
        "zsx");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranspileSoundness,
                         ::testing::Range<std::uint64_t>(400, 412));

}  // namespace
}  // namespace qdt
