#include "arrays/dense_unitary.hpp"

#include <gtest/gtest.h>

#include "guard/error.hpp"

#include "ir/library.hpp"
#include "testutil.hpp"

namespace qdt::arrays {
namespace {

TEST(DenseUnitary, IdentityByDefault) {
  const DenseUnitary u(3);
  EXPECT_TRUE(u.is_identity());
}

TEST(DenseUnitary, FromCircuitMatchesStatevector) {
  const ir::Circuit c = ir::random_circuit(4, 6, 21);
  const auto u = DenseUnitary::from_circuit(c);
  // Column 0 of U is U|0...0>.
  const auto sv = test::oracle_state(c);
  for (std::size_t r = 0; r < u.dim(); ++r) {
    EXPECT_NEAR(std::abs(u.at(r, 0) - sv.amplitude(r)), 0.0, 1e-9);
  }
}

TEST(DenseUnitary, CircuitUnitaryIsUnitary) {
  const ir::Circuit c = ir::random_clifford_t(3, 50, 0.2, 3);
  const auto u = DenseUnitary::from_circuit(c);
  EXPECT_TRUE((u * u.adjoint()).is_identity(1e-8));
}

TEST(DenseUnitary, MultiplicationComposesCircuits) {
  const ir::Circuit c1 = ir::random_circuit(3, 3, 1);
  const ir::Circuit c2 = ir::random_circuit(3, 3, 2);
  const auto u1 = DenseUnitary::from_circuit(c1);
  const auto u2 = DenseUnitary::from_circuit(c2);
  const auto composed = DenseUnitary::from_circuit(c1.composed_with(c2));
  // Circuit composition applies c1 first: U = U2 * U1.
  EXPECT_TRUE((u2 * u1).approx_equal(composed, 1e-9));
}

TEST(DenseUnitary, ApplyToVector) {
  const auto u = DenseUnitary::from_circuit(ir::bell());
  std::vector<Complex> zero(4, Complex{});
  zero[0] = 1.0;
  const auto out = u.apply_to(zero);
  EXPECT_NEAR(std::abs(out[0]), kInvSqrt2, 1e-12);
  EXPECT_NEAR(std::abs(out[3]), kInvSqrt2, 1e-12);
}

TEST(DenseUnitary, IdentityUpToGlobalPhase) {
  ir::Circuit c(2);
  // Global phase i: S S on a qubit equals Z; instead use rz(pi) rz(pi)
  // which equals identity times -1... simplest: X X = I exactly; use
  // rz(2pi)-style: rz(pi) twice = e^{-i pi} I? rz(pi)^2 = RZ(2pi) = -I.
  c.rz(Phase::pi(), 0).rz(Phase::pi(), 0);
  const auto u = DenseUnitary::from_circuit(c);
  EXPECT_FALSE(u.is_identity(1e-9));
  EXPECT_TRUE(u.is_identity_up_to_global_phase(1e-9));
}

TEST(DenseUnitary, EqualUpToGlobalPhase) {
  ir::Circuit zc(1);
  zc.z(0);
  ir::Circuit rzc(1);
  rzc.rz(Phase::pi(), 0);  // RZ(pi) = -i Z
  const auto uz = DenseUnitary::from_circuit(zc);
  const auto urz = DenseUnitary::from_circuit(rzc);
  EXPECT_FALSE(uz.approx_equal(urz, 1e-9));
  EXPECT_TRUE(uz.equal_up_to_global_phase(urz, 1e-9));
}

TEST(DenseUnitary, MaxEntryDistance) {
  const auto a = DenseUnitary::from_circuit(ir::bell());
  auto b = a;
  EXPECT_NEAR(a.max_entry_distance(b), 0.0, 1e-15);
  b.at(0, 0) += Complex{0.25, 0.0};
  EXPECT_NEAR(a.max_entry_distance(b), 0.25, 1e-12);
}

TEST(DenseUnitary, RefusesHugeWidth) {
  EXPECT_THROW(DenseUnitary(20), qdt::Error);
}

}  // namespace
}  // namespace qdt::arrays
