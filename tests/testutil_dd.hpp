// DD-specific test helpers: refcount auditing after every scenario.
#pragma once

#include <gtest/gtest.h>

#include "dd/package.hpp"
#include "guard/error.hpp"

namespace qdt::test {

/// Assert the package's refcount/GC invariants hold right now: storage is
/// partitioned between unique tables and free lists, refcounts cover the
/// live in-degree, no live node points at a freed node or swept weight,
/// and complex-table pins are sane. Call at the end of every scenario
/// that touched refs or ran a collection (the ~Package audit catches the
/// same violations, but only at teardown — this names the failing test).
inline void expect_dd_refs_ok(const dd::Package& pkg) {
  try {
    pkg.check_refs();
  } catch (const Error& e) {
    FAIL() << "dd refcount audit failed: " << e.what();
  }
}

}  // namespace qdt::test
