#include "tn/tensor.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace qdt::tn {
namespace {

TEST(Tensor, ConstructionValidates) {
  EXPECT_THROW(Tensor({1, 2}, {2}), std::invalid_argument);
  EXPECT_THROW(Tensor({1, 1}, {2, 2}), std::invalid_argument);
  EXPECT_THROW(Tensor({1}, {2}, std::vector<Complex>(3)),
               std::invalid_argument);
}

TEST(Tensor, ScalarAndKet) {
  const Tensor s = Tensor::scalar(Complex{2.0, -1.0});
  EXPECT_EQ(s.rank(), 0U);
  EXPECT_EQ(s.scalar_value(), (Complex{2.0, -1.0}));
  const Tensor k0 = Tensor::qubit_ket(7, false);
  EXPECT_EQ(k0.at({0}), Complex{1.0});
  EXPECT_EQ(k0.at({1}), Complex{});
  EXPECT_TRUE(k0.has_label(7));
}

TEST(Tensor, ElementAccess) {
  Tensor t({1, 2}, {2, 3});
  t.at({1, 2}) = Complex{5.0, 0.0};
  EXPECT_EQ(t.at({1, 2}), (Complex{5.0, 0.0}));
  EXPECT_EQ(t.data()[1 * 3 + 2], (Complex{5.0, 0.0}));
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0}), std::invalid_argument);
}

TEST(Tensor, PermutedReordersData) {
  // t[i][j], dims 2x3 -> p[j][i].
  Tensor t({0, 1}, {2, 3});
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      t.at({i, j}) = Complex(static_cast<double>(10 * i + j), 0.0);
    }
  }
  const Tensor p = t.permuted({1, 0});
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(p.at({j, i}), t.at({i, j}));
    }
  }
}

TEST(Tensor, ContractMatchesMatrixProduct) {
  // Paper Example 3: C_{ij} = sum_k A_{ik} B_{kj}.
  const std::size_t n = 4;
  Rng rng(2);
  Tensor a({0, 1}, {n, n});
  Tensor b({1, 2}, {n, n});
  for (auto& v : a.data()) {
    v = rng.gaussian_complex();
  }
  for (auto& v : b.data()) {
    v = rng.gaussian_complex();
  }
  const Tensor c = Tensor::contract(a, b);
  ASSERT_EQ(c.labels(), (std::vector<Label>{0, 2}));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex expect{};
      for (std::size_t k = 0; k < n; ++k) {
        expect += a.at({i, k}) * b.at({k, j});
      }
      EXPECT_NEAR(std::abs(c.at({i, j}) - expect), 0.0, 1e-10);
    }
  }
}

TEST(Tensor, ContractOverMultipleSharedIndices) {
  Rng rng(3);
  Tensor a({0, 1, 2}, {2, 3, 4});
  Tensor b({2, 1}, {4, 3});
  for (auto& v : a.data()) {
    v = rng.gaussian_complex();
  }
  for (auto& v : b.data()) {
    v = rng.gaussian_complex();
  }
  const Tensor c = Tensor::contract(a, b);
  ASSERT_EQ(c.labels(), (std::vector<Label>{0}));
  for (std::size_t i = 0; i < 2; ++i) {
    Complex expect{};
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t k = 0; k < 4; ++k) {
        expect += a.at({i, j, k}) * b.at({k, j});
      }
    }
    EXPECT_NEAR(std::abs(c.at({i}) - expect), 0.0, 1e-10);
  }
}

TEST(Tensor, ContractToScalar) {
  const Tensor k0 = Tensor::qubit_ket(0, false);
  const Tensor k0b = Tensor::qubit_ket(0, false);
  const Tensor k1 = Tensor::qubit_ket(0, true);
  EXPECT_NEAR(std::abs(Tensor::contract(k0, k0b).scalar_value() - 1.0), 0.0,
              1e-12);
  EXPECT_NEAR(std::abs(Tensor::contract(k0, k1).scalar_value()), 0.0, 1e-12);
}

TEST(Tensor, OuterProductWhenNoSharedLabels) {
  const Tensor a = Tensor::qubit_ket(0, false);
  const Tensor b = Tensor::qubit_ket(1, true);
  const Tensor c = Tensor::contract(a, b);
  EXPECT_EQ(c.rank(), 2U);
  EXPECT_EQ(c.at({0, 1}), Complex{1.0});
  EXPECT_EQ(c.at({1, 1}), Complex{});
}

TEST(Tensor, BondDimensionMismatchThrows) {
  const Tensor a({0}, {2});
  const Tensor b({0}, {3});
  EXPECT_THROW(Tensor::contract(a, b), std::invalid_argument);
}

TEST(Tensor, TraceOfIdentity) {
  Tensor id({0, 1}, {3, 3});
  for (std::size_t i = 0; i < 3; ++i) {
    id.at({i, i}) = 1.0;
  }
  const Tensor tr = id.traced(0, 1);
  EXPECT_EQ(tr.rank(), 0U);
  EXPECT_NEAR(std::abs(tr.scalar_value() - 3.0), 0.0, 1e-12);
}

TEST(Tensor, RelabelKeepsData) {
  Tensor t = Tensor::qubit_ket(0, true);
  t.relabel(0, 9);
  EXPECT_TRUE(t.has_label(9));
  EXPECT_FALSE(t.has_label(0));
  EXPECT_EQ(t.at({1}), Complex{1.0});
  EXPECT_THROW(t.relabel(3, 4), std::invalid_argument);
}

}  // namespace
}  // namespace qdt::tn
