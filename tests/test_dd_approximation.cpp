#include "dd/approximation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dd/simulator.hpp"
#include "ir/library.hpp"
#include "testutil.hpp"
#include "testutil_dd.hpp"

namespace qdt::dd {
namespace {

/// Run a circuit on a fresh package, returning (package, state).
VecEdge run_state(Package& pkg, const ir::Circuit& c) {
  VecEdge state = pkg.zero_state();
  for (const auto& op : c.ops()) {
    state = pkg.multiply(pkg.gate_dd(op), state);
  }
  return state;
}

TEST(Approximation, ZeroBudgetIsIdentityTransform) {
  Package pkg(4);
  const VecEdge state = run_state(pkg, ir::w_state(4));
  const auto res = approximate(pkg, state, 0.0);
  EXPECT_EQ(res.state.node, state.node);
  EXPECT_DOUBLE_EQ(res.fidelity, 1.0);
  EXPECT_EQ(res.edges_removed, 0U);
}

TEST(Approximation, FidelityIsTrackedAndBounded) {
  Package pkg(6);
  const VecEdge state = run_state(pkg, ir::random_circuit(6, 4, 5));
  for (const double budget : {0.01, 0.05, 0.1}) {
    const auto res = approximate(pkg, state, budget);
    // The reported fidelity must respect the budget.
    EXPECT_GE(res.fidelity, 1.0 - budget - 1e-9) << budget;
    EXPECT_LE(res.fidelity, 1.0 + 1e-9);
    // The result must be normalized.
    EXPECT_NEAR(pkg.norm2(res.state), 1.0, 1e-9);
  }
  test::expect_dd_refs_ok(pkg);
}

TEST(Approximation, ReportedFidelityMatchesDenseOverlap) {
  Package pkg(5);
  const ir::Circuit c = ir::random_circuit(5, 3, 11);
  const VecEdge state = run_state(pkg, c);
  const auto res = approximate(pkg, state, 0.05);
  // Cross-check with dense vectors.
  const auto exact = pkg.to_vector(state);
  const auto approx = pkg.to_vector(res.state);
  Complex overlap{};
  for (std::size_t i = 0; i < exact.size(); ++i) {
    overlap += std::conj(approx[i]) * exact[i];
  }
  EXPECT_NEAR(std::norm(overlap), res.fidelity, 1e-9);
}

TEST(Approximation, ShrinksHeavyTailedStates) {
  // A state with one dominant amplitude and an exponential tail: pruning
  // the tail collapses the DD dramatically at tiny fidelity cost.
  Package pkg(8);
  Rng rng(3);
  std::vector<Complex> amps(256);
  amps[0] = 1.0;
  for (std::size_t i = 1; i < amps.size(); ++i) {
    amps[i] = rng.gaussian_complex() * 1e-3;
  }
  arrays::Statevector sv(std::move(amps));
  sv.normalize();
  const VecEdge state = pkg.from_vector(sv.amplitudes());
  const auto res = approximate(pkg, state, 0.01);
  EXPECT_GT(res.fidelity, 0.98);
  EXPECT_LT(res.nodes_after, res.nodes_before / 4);
}

TEST(Approximation, GroverStateApproximatesToMarkedState) {
  // Grover's final state is "marked state + small uniform tail": the
  // approximation [12] showcase.
  const std::size_t n = 8;
  const std::uint64_t marked = 100;
  Package pkg(n);
  const VecEdge state = run_state(pkg, ir::grover(n, marked));
  const auto res = approximate(pkg, state, 0.02);
  EXPECT_GT(res.fidelity, 0.97);
  EXPECT_LE(res.nodes_after, res.nodes_before);
  // The surviving state still peaks at the marked item.
  EXPECT_GT(std::norm(pkg.amplitude(res.state, marked)), 0.9);
  test::expect_dd_refs_ok(pkg);
}

TEST(Approximation, UniformStateResistsApproximation) {
  // No low-contribution edges to discard: uniform superposition keeps all
  // its (n) nodes under a small budget.
  Package pkg(6);
  ir::Circuit c(6);
  for (ir::Qubit q = 0; q < 6; ++q) {
    c.h(q);
  }
  const VecEdge state = run_state(pkg, c);
  const auto res = approximate(pkg, state, 0.01);
  EXPECT_EQ(res.nodes_after, res.nodes_before);
  EXPECT_NEAR(res.fidelity, 1.0, 1e-9);
}

}  // namespace
}  // namespace qdt::dd
