// qdt::par — the deterministic thread pool under the array kernels.
//
// The load-bearing contract is bitwise reproducibility: every primitive
// must produce the same bytes at --threads 1 and --threads 8, because the
// chunk decomposition and the reduction tree depend only on (range, grain).
// The TSan build of this binary (cmake -DQDT_SANITIZE=thread) additionally
// checks the "no data races" half of the contract.
#include "par/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "arrays/statevector.hpp"
#include "arrays/svsim.hpp"
#include "guard/budget.hpp"
#include "guard/error.hpp"
#include "ir/library.hpp"

namespace qdt {
namespace {

/// RAII thread-cap override so a failing assertion can't leak a cap into
/// the next test.
class ThreadCap {
 public:
  explicit ThreadCap(std::size_t n) : prev_(par::max_threads()) {
    par::set_max_threads(n);
  }
  ~ThreadCap() { par::set_max_threads(prev_); }

 private:
  std::size_t prev_;
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const ThreadCap cap(8);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  par::parallel_for(0, kN, 1024, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyAndSingleChunkRangesRunInline) {
  const ThreadCap cap(8);
  std::size_t calls = 0;
  par::parallel_for(5, 5, 16, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0U);
  par::parallel_for(0, 10, 16, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0U);
    EXPECT_EQ(hi, 10U);
  });
  EXPECT_EQ(calls, 1U);
}

TEST(ParallelReduce, SumIsBitwiseIdenticalAcrossThreadCounts) {
  // Ill-conditioned sum: magnitudes spanning ~12 orders, so any change in
  // association order would change the rounded result.
  constexpr std::size_t kN = 1 << 18;
  std::vector<double> v(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    v[i] = std::sin(static_cast<double>(i)) *
           std::pow(10.0, static_cast<double>(i % 13) - 6.0);
  }
  const auto sum = [&] {
    return par::parallel_reduce(
        0, kN, par::kReduceGrain, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            s += v[i];
          }
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  double r1 = 0.0;
  {
    const ThreadCap cap(1);
    r1 = sum();
  }
  for (const std::size_t threads : {2, 3, 8}) {
    const ThreadCap cap(threads);
    const double rn = sum();
    EXPECT_EQ(std::memcmp(&r1, &rn, sizeof r1), 0)
        << "threads=" << threads << " " << r1 << " vs " << rn;
  }
}

TEST(ParallelFor, ExceptionsPropagateToTheSubmitter) {
  const ThreadCap cap(4);
  EXPECT_THROW(
      par::parallel_for(0, 1 << 16, 1 << 10,
                        [&](std::size_t lo, std::size_t) {
                          if (lo >= (1 << 15)) {
                            throw Error::internal("boom");
                          }
                        }),
      Error);
  // The pool must stay usable after a failed task.
  std::atomic<std::size_t> total{0};
  par::parallel_for(0, 1 << 16, 1 << 10, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), static_cast<std::size_t>(1 << 16));
}

TEST(ParallelFor, DeadlineBudgetFiresInsideWorkers) {
  const ThreadCap cap(4);
  guard::Budget b;
  b.deadline_seconds = 1e-6;
  const guard::BudgetScope scope(b);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Many chunks of nontrivial work: the per-chunk checkpoint (which workers
  // run under the submitter's adopted limits) must observe the expired
  // deadline and unwind with a typed error.
  EXPECT_THROW(par::parallel_for(0, 1 << 20, 1 << 10,
                                 [&](std::size_t lo, std::size_t hi) {
                                   volatile double x = 0.0;
                                   for (std::size_t i = lo; i < hi; ++i) {
                                     x = x + static_cast<double>(i);
                                   }
                                 }),
               Error);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  const ThreadCap cap(4);
  std::vector<std::atomic<int>> hits(1 << 14);
  par::parallel_for(0, hits.size(), 1 << 10,
                    [&](std::size_t lo, std::size_t hi) {
                      par::parallel_for(
                          lo, hi, 64, [&](std::size_t l2, std::size_t h2) {
                            for (std::size_t i = l2; i < h2; ++i) {
                              hits[i].fetch_add(1, std::memory_order_relaxed);
                            }
                          });
                    });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ConcurrentSubmittersAllComplete) {
  // Several threads race to submit tasks; whoever loses the pool runs
  // inline. Under TSan this is the central pool stress test.
  const ThreadCap cap(4);
  constexpr std::size_t kSubmitters = 6;
  constexpr std::size_t kN = 1 << 16;
  std::vector<std::thread> submitters;
  std::vector<std::size_t> totals(kSubmitters, 0);
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> total{0};
        par::parallel_for(0, kN, 1 << 10,
                          [&](std::size_t lo, std::size_t hi) {
                            total.fetch_add(hi - lo,
                                            std::memory_order_relaxed);
                          });
        totals[t] = total.load();
      }
    });
  }
  for (auto& s : submitters) {
    s.join();
  }
  for (const auto total : totals) {
    EXPECT_EQ(total, kN);
  }
}

TEST(ParConfig, CapIsAlwaysAtLeastOne) {
  const std::size_t prev = par::max_threads();
  par::set_max_threads(0);  // 0 = all hardware threads
  EXPECT_GE(par::max_threads(), 1U);
  EXPECT_EQ(par::max_threads(), par::hardware_threads());
  par::set_max_threads(prev);
}

// -- End-to-end determinism over the circuit library --------------------------

arrays::Statevector run_family(const ir::Circuit& c) {
  arrays::Statevector sv(c.num_qubits());
  for (const auto& op : c.ops()) {
    if (op.is_barrier()) {
      continue;
    }
    sv.apply(op);
  }
  return sv;
}

TEST(ParDeterminism, LibraryStatesAreBitwiseIdenticalAcrossThreadCounts) {
  // 15+ qubits: the kernel half-range (2^14+) spans multiple grain-sized
  // chunks, so these actually cross the pool instead of running inline.
  const std::vector<std::pair<const char*, ir::Circuit>> families = {
      {"ghz", ir::ghz(16)},
      {"w_state", ir::w_state(15)},
      {"qft", ir::qft(15)},
      {"grover", ir::grover(12, 5)},
      {"hidden_shift", ir::hidden_shift(16, 0x2D)},
      {"random", ir::random_circuit(15, 40, 123)},
  };
  for (const auto& [name, circuit] : families) {
    std::vector<Complex> base;
    {
      const ThreadCap cap(1);
      base = run_family(circuit).amplitudes();
    }
    const ThreadCap cap(8);
    const auto par8 = run_family(circuit).amplitudes();
    ASSERT_EQ(base.size(), par8.size()) << name;
    EXPECT_EQ(std::memcmp(base.data(), par8.data(),
                          base.size() * sizeof(Complex)),
              0)
        << "family " << name << " diverged between 1 and 8 threads";
  }
}

TEST(ParDeterminism, SampleCountsHistogramIsThreadCountInvariant) {
  const ir::Circuit c = ir::random_circuit(8, 30, 7);
  std::map<std::uint64_t, std::size_t> base;
  {
    const ThreadCap cap(1);
    arrays::StatevectorSimulator sim(42);
    base = sim.sample_counts(c, 2000);
  }
  for (const std::size_t threads : {2, 8}) {
    const ThreadCap cap(threads);
    arrays::StatevectorSimulator sim(42);
    EXPECT_EQ(sim.sample_counts(c, 2000), base) << "threads=" << threads;
  }
}

TEST(ParDeterminism, NoisyTrajectoryCountsAreThreadCountInvariant) {
  const ir::Circuit c = ir::ghz(5);
  std::map<std::uint64_t, std::size_t> base;
  {
    const ThreadCap cap(1);
    arrays::StatevectorSimulator sim(7);
    sim.set_noise(arrays::NoiseModel::depolarizing_model(0.02));
    base = sim.sample_counts(c, 300);
  }
  const ThreadCap cap(8);
  arrays::StatevectorSimulator sim(7);
  sim.set_noise(arrays::NoiseModel::depolarizing_model(0.02));
  EXPECT_EQ(sim.sample_counts(c, 300), base);
}

}  // namespace
}  // namespace qdt
