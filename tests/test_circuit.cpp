#include "ir/circuit.hpp"

#include <gtest/gtest.h>

#include "arrays/dense_unitary.hpp"
#include "ir/library.hpp"

namespace qdt::ir {
namespace {

TEST(Operation, ValidatesArity) {
  EXPECT_THROW(Operation(GateKind::Swap, std::vector<Qubit>{0}),
               std::invalid_argument);
  EXPECT_THROW(Operation(GateKind::RZ, 0, {}), std::invalid_argument);
  EXPECT_THROW(Operation(GateKind::H, 0, {Phase::pi()}),
               std::invalid_argument);
}

TEST(Operation, RejectsDuplicateQubits) {
  EXPECT_THROW(Operation(GateKind::Swap, std::vector<Qubit>{1, 1}),
               std::invalid_argument);
  EXPECT_THROW(
      Operation(GateKind::X, std::vector<Qubit>{0}, std::vector<Qubit>{0}),
      std::invalid_argument);
}

TEST(Operation, RejectsControlledMeasure) {
  EXPECT_THROW(Operation(GateKind::Measure, std::vector<Qubit>{0},
                         std::vector<Qubit>{1}),
               std::invalid_argument);
}

TEST(Operation, AdjointOfT) {
  const Operation t{GateKind::T, 0};
  const Operation tdg = t.adjoint();
  EXPECT_EQ(tdg.kind(), GateKind::Tdg);
  EXPECT_EQ(tdg.adjoint(), t);
}

TEST(Operation, AdjointKeepsControls) {
  const Operation cs{GateKind::S, {1}, {0}};
  const Operation inv = cs.adjoint();
  EXPECT_EQ(inv.kind(), GateKind::Sdg);
  EXPECT_EQ(inv.controls(), std::vector<Qubit>{0});
}

TEST(Operation, StrFormat) {
  EXPECT_EQ(Operation(GateKind::H, 2).str(), "h q2");
  EXPECT_EQ(Operation(GateKind::X, {1}, {0}).str(), "cx q0, q1");
  EXPECT_EQ(Operation(GateKind::RZ, 0, {Phase::pi_4()}).str(),
            "rz(pi/4) q0");
}

TEST(Circuit, AppendValidatesQubitRange) {
  Circuit c(2);
  EXPECT_NO_THROW(c.h(1));
  EXPECT_THROW(c.h(2), std::out_of_range);
  EXPECT_THROW(c.cx(0, 5), std::out_of_range);
}

TEST(Circuit, BuilderChains) {
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2).t(2);
  EXPECT_EQ(c.size(), 4U);
  EXPECT_EQ(c[0].kind(), GateKind::H);
  EXPECT_EQ(c[3].kind(), GateKind::T);
}

TEST(Circuit, AdjointReversesAndInverts) {
  Circuit c(2);
  c.h(0).s(1).cx(0, 1);
  const Circuit inv = c.adjoint();
  ASSERT_EQ(inv.size(), 3U);
  EXPECT_EQ(inv[0].kind(), GateKind::X);  // inverted CX is CX
  EXPECT_EQ(inv[1].kind(), GateKind::Sdg);
  EXPECT_EQ(inv[2].kind(), GateKind::H);
}

TEST(Circuit, CircuitTimesAdjointIsIdentity) {
  const Circuit c = ir::random_circuit(4, 6, /*seed=*/11);
  const auto u = arrays::DenseUnitary::from_circuit(
      c.composed_with(c.adjoint()));
  EXPECT_TRUE(u.is_identity(1e-8));
}

TEST(Circuit, AdjointRepairsControlledHalfTurnRotations) {
  // Operation::adjoint() of cry(pi) wraps -pi back to +pi, which is -1 x
  // the true inverse on the controlled block; Circuit::adjoint() must
  // append the Z-on-control correction so c . c^dagger is exactly I (not
  // just I up to a control-conditioned sign).
  Circuit c(2);
  c.h(0).append(Operation{GateKind::RY, {1}, {0}, {Phase::pi()}});
  const Circuit inv = c.adjoint();
  ASSERT_EQ(inv.size(), 3U);
  EXPECT_EQ(inv[1].kind(), GateKind::Z);
  EXPECT_EQ(inv[1].targets(), (std::vector<Qubit>{0}));
  const auto u =
      arrays::DenseUnitary::from_circuit(c.composed_with(inv));
  EXPECT_TRUE(u.is_identity(1e-9));

  // Doubly controlled: the correction is a CZ on the controls.
  Circuit cc(3);
  cc.append(Operation{GateKind::RZ, {2}, {0, 1}, {Phase::pi()}});
  const Circuit cinv = cc.adjoint();
  ASSERT_EQ(cinv.size(), 2U);
  EXPECT_EQ(cinv[1].kind(), GateKind::Z);
  EXPECT_EQ(cinv[1].controls(), (std::vector<Qubit>{1}));
  const auto ucc =
      arrays::DenseUnitary::from_circuit(cc.composed_with(cinv));
  EXPECT_TRUE(ucc.is_identity(1e-9));
}

TEST(Circuit, ComposedWithWidthMismatchThrows) {
  EXPECT_THROW(Circuit(2).composed_with(Circuit(3)), std::invalid_argument);
}

TEST(Circuit, RemappedPermutesQubits) {
  Circuit c(3);
  c.cx(0, 2);
  const Circuit r = c.remapped({2, 1, 0});
  EXPECT_EQ(r[0].controls()[0], 2U);
  EXPECT_EQ(r[0].targets()[0], 0U);
}

TEST(Circuit, RemappedRejectsNonPermutation) {
  Circuit c(3);
  EXPECT_THROW(c.remapped({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(c.remapped({0, 1}), std::invalid_argument);
}

TEST(Circuit, StatsCountsGateClasses) {
  Circuit c(3);
  c.h(0).t(0).cx(0, 1).ccx(0, 1, 2).measure_all();
  const auto s = c.stats();
  EXPECT_EQ(s.total_gates, 4U);
  EXPECT_EQ(s.single_qubit, 2U);
  EXPECT_EQ(s.two_qubit, 1U);
  EXPECT_EQ(s.multi_qubit, 1U);
  EXPECT_EQ(s.t_count, 1U);
  EXPECT_EQ(s.measurements, 3U);
  EXPECT_EQ(s.by_name.at("ccx"), 1U);
}

TEST(Circuit, TCountIncludesPiOver4Rotations) {
  Circuit c(1);
  c.rz(Phase::pi_4(), 0).rz(Phase{3, 4}, 0).rz(Phase::pi_2(), 0)
      .p(Phase::minus_pi_4(), 0);
  EXPECT_EQ(c.t_count(), 3U);
}

TEST(Circuit, DepthIsCriticalPath) {
  Circuit c(3);
  // Layer 1: h(0), h(1); layer 2: cx(0,1); layer 3: cx(1,2).
  c.h(0).h(1).cx(0, 1).cx(1, 2);
  EXPECT_EQ(c.depth(), 3U);
}

TEST(Circuit, DepthIgnoresBarriersAndMeasures) {
  Circuit c(2);
  c.h(0).barrier().h(1).measure_all();
  EXPECT_EQ(c.depth(), 1U);
}

TEST(Circuit, UnitaryPartStripsNonUnitary) {
  Circuit c(2);
  c.h(0).measure(0).reset(1).cx(0, 1);
  EXPECT_FALSE(c.is_unitary());
  const Circuit u = c.unitary_part();
  EXPECT_TRUE(u.is_unitary());
  EXPECT_EQ(u.size(), 2U);
}

TEST(Circuit, AdjointOfNonUnitaryThrows) {
  Circuit c(1);
  c.measure(0);
  EXPECT_THROW(c.adjoint(), std::logic_error);
}

}  // namespace
}  // namespace qdt::ir
