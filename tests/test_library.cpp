#include "ir/library.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "arrays/dense_unitary.hpp"
#include "common/bitops.hpp"
#include "testutil.hpp"

namespace qdt::ir {
namespace {

using test::oracle_state;

TEST(Library, BellStateAmplitudes) {
  const auto sv = oracle_state(bell());
  EXPECT_NEAR(std::abs(sv.amplitude(0b00)), kInvSqrt2, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), kInvSqrt2, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 0.0, 1e-12);
}

TEST(Library, GhzHasTwoEqualAmplitudes) {
  for (const std::size_t n : {2, 3, 5, 8}) {
    const auto sv = oracle_state(ghz(n));
    const std::uint64_t all_ones = (1ULL << n) - 1;
    EXPECT_NEAR(std::abs(sv.amplitude(0)), kInvSqrt2, 1e-10) << n;
    EXPECT_NEAR(std::abs(sv.amplitude(all_ones)), kInvSqrt2, 1e-10) << n;
    double other = 0.0;
    for (std::uint64_t i = 1; i < all_ones; ++i) {
      other += std::norm(sv.amplitude(i));
    }
    EXPECT_NEAR(other, 0.0, 1e-10) << n;
  }
}

TEST(Library, WStateUniformOverWeightOneStrings) {
  for (const std::size_t n : {2, 3, 4, 6}) {
    const auto sv = oracle_state(w_state(n));
    const double expected = 1.0 / std::sqrt(static_cast<double>(n));
    for (std::uint64_t i = 0; i < (1ULL << n); ++i) {
      const double a = std::abs(sv.amplitude(i));
      if (popcount64(i) == 1) {
        EXPECT_NEAR(a, expected, 1e-9) << "n=" << n << " i=" << i;
      } else {
        EXPECT_NEAR(a, 0.0, 1e-9) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Library, QftMatchesDftMatrix) {
  const std::size_t n = 4;
  const auto u = arrays::DenseUnitary::from_circuit(qft(n));
  const std::size_t dim = 1ULL << n;
  const double inv_sqrt = 1.0 / std::sqrt(static_cast<double>(dim));
  for (std::size_t j = 0; j < dim; ++j) {
    for (std::size_t k = 0; k < dim; ++k) {
      const double angle = 2.0 * std::numbers::pi *
                           static_cast<double>(j * k) /
                           static_cast<double>(dim);
      const Complex expected =
          Complex{std::cos(angle), std::sin(angle)} * inv_sqrt;
      EXPECT_NEAR(std::abs(u.at(j, k) - expected), 0.0, 1e-9)
          << "entry (" << j << ", " << k << ")";
    }
  }
}

TEST(Library, AqftWithFullDegreeEqualsQftWithoutSwaps) {
  const std::size_t n = 4;
  const auto full = arrays::DenseUnitary::from_circuit(qft(n, false));
  const auto approx = arrays::DenseUnitary::from_circuit(aqft(n, n));
  EXPECT_TRUE(full.approx_equal(approx, 1e-9));
}

TEST(Library, AqftLowDegreeDiffers) {
  const std::size_t n = 5;
  const auto full = arrays::DenseUnitary::from_circuit(qft(n, false));
  const auto approx = arrays::DenseUnitary::from_circuit(aqft(n, 1));
  EXPECT_FALSE(full.approx_equal(approx, 1e-3));
}

TEST(Library, GroverAmplifiesMarkedState) {
  for (const std::uint64_t marked : {0ULL, 3ULL, 12ULL}) {
    const auto sv = oracle_state(grover(4, marked));
    const auto probs = sv.probabilities();
    // The marked state should dominate (theory: ~0.96 for n=4 after 3
    // rounds).
    EXPECT_GT(probs[marked], 0.9) << "marked=" << marked;
  }
}

TEST(Library, GroverRejectsBadArguments) {
  EXPECT_THROW(grover(0, 0), std::invalid_argument);
  EXPECT_THROW(grover(3, 8), std::invalid_argument);
}

TEST(Library, BernsteinVaziraniRecoversSecret) {
  for (const std::uint64_t secret : {0b0ULL, 0b101ULL, 0b11111ULL}) {
    const auto sv = oracle_state(bernstein_vazirani(5, secret));
    EXPECT_NEAR(std::norm(sv.amplitude(secret)), 1.0, 1e-9)
        << "secret=" << secret;
  }
}

TEST(Library, DeutschJozsaConstantReturnsZero) {
  const auto sv = oracle_state(deutsch_jozsa(4, 0));
  EXPECT_NEAR(std::norm(sv.amplitude(0)), 1.0, 1e-9);
}

TEST(Library, DeutschJozsaBalancedNeverReturnsZero) {
  const auto sv = oracle_state(deutsch_jozsa(4, 0b0110));
  EXPECT_NEAR(std::norm(sv.amplitude(0)), 0.0, 1e-9);
}

TEST(Library, HiddenShiftRecoversShift) {
  for (const std::uint64_t shift : {0b0ULL, 0b1001ULL, 0b1111ULL}) {
    const auto sv = oracle_state(hidden_shift(4, shift));
    EXPECT_NEAR(std::norm(sv.amplitude(shift)), 1.0, 1e-9)
        << "shift=" << shift;
  }
}

TEST(Library, HiddenShiftRequiresEvenWidth) {
  EXPECT_THROW(hidden_shift(3, 0), std::invalid_argument);
}

TEST(Library, RippleCarryAdderAddsCorrectly) {
  const std::size_t n = 3;
  const Circuit adder = ripple_carry_adder(n);
  ASSERT_EQ(adder.num_qubits(), 2 * n + 2);
  for (std::uint64_t a = 0; a < (1ULL << n); ++a) {
    for (std::uint64_t b = 0; b < (1ULL << n); ++b) {
      // Prepare |cin=0, a, b, cout=0> and run the adder.
      arrays::Statevector sv(adder.num_qubits());
      for (std::size_t i = 0; i < n; ++i) {
        if (get_bit(a, i)) {
          sv.apply(Operation{GateKind::X, static_cast<Qubit>(1 + i)});
        }
        if (get_bit(b, i)) {
          sv.apply(Operation{GateKind::X, static_cast<Qubit>(1 + n + i)});
        }
      }
      for (const auto& op : adder.ops()) {
        sv.apply(op);
      }
      // Expected output: a unchanged, b := a + b (with carry-out).
      const std::uint64_t sum = a + b;
      std::uint64_t expected = 0;
      for (std::size_t i = 0; i < n; ++i) {
        expected = set_bit(expected, 1 + i, get_bit(a, i));
        expected = set_bit(expected, 1 + n + i, get_bit(sum, i));
      }
      expected = set_bit(expected, 1 + 2 * n, get_bit(sum, n));
      EXPECT_NEAR(std::norm(sv.amplitude(expected)), 1.0, 1e-9)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Library, PhaseEstimationRecoversDyadicPhase) {
  // theta = 2pi * k / 2^m is measured exactly.
  const std::size_t m = 4;
  for (const std::int64_t k : {1, 5, 11}) {
    // P(theta) with theta = 2pi k / 16 = pi k / 8.
    const Circuit c = phase_estimation(m, Phase{k, 8});
    const auto sv = oracle_state(c);
    // Counting register = qubits 0..3; eigenstate qubit 4 stays |1>.
    const std::uint64_t expected =
        (1ULL << m) | static_cast<std::uint64_t>(k);
    EXPECT_NEAR(std::norm(sv.amplitude(expected)), 1.0, 1e-8) << k;
  }
}

TEST(Library, PhaseEstimationApproximatesGenericPhase) {
  // A non-dyadic phase lands on the nearest counting value with
  // probability > 4/pi^2 ~ 0.405; in practice much higher.
  const std::size_t m = 5;
  const Phase theta{1, 3};  // pi/3 -> fraction 1/6 of 2pi
  const Circuit c = phase_estimation(m, theta);
  const auto sv = oracle_state(c);
  const double frac = theta.radians() / (2 * std::numbers::pi);
  const auto nearest = static_cast<std::uint64_t>(
      std::llround(frac * (1ULL << m)));
  const std::uint64_t expected = (1ULL << m) | nearest;
  EXPECT_GT(std::norm(sv.amplitude(expected)), 0.4);
}

TEST(Library, RandomCircuitIsDeterministicPerSeed) {
  const Circuit a = random_circuit(4, 5, 42);
  const Circuit b = random_circuit(4, 5, 42);
  const Circuit c = random_circuit(4, 5, 43);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Library, RandomCliffordUsesOnlyCliffordGates) {
  const Circuit c = random_clifford(5, 100, 1);
  for (const auto& op : c.ops()) {
    const bool ok = op.kind() == GateKind::H || op.kind() == GateKind::S ||
                    (op.kind() == GateKind::X && op.controls().size() == 1);
    EXPECT_TRUE(ok) << op.str();
  }
}

TEST(Library, RandomCliffordTHasTs) {
  const Circuit c = random_clifford_t(5, 200, 0.3, 2);
  EXPECT_GT(c.t_count(), 0U);
}

TEST(Library, RandomPhaseCircuitIsDiagonalAfterH) {
  // The phase-circuit family applies only diagonal gates after the H layer,
  // so all output amplitudes keep magnitude 2^{-n/2}.
  const Circuit c = random_phase_circuit(4, 30, 5);
  const auto sv = oracle_state(c);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.25, 1e-9) << i;
  }
}

TEST(Library, GraphStateIsNormalizedAndUniformMagnitude) {
  const Circuit c = graph_state(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto sv = oracle_state(c);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.25, 1e-9);
  }
}

}  // namespace
}  // namespace qdt::ir
