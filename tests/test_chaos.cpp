// qdt::chaos — fuzzing/self-check subsystem tests: seed determinism,
// oracle agreement on the library families, planted-bug triage (find +
// shrink), the chaos-mode robustness invariant, and corpus persistence.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "chaos/chaos.hpp"
#include "chaos/corpus.hpp"
#include "chaos/fuzzer.hpp"
#include "chaos/generator.hpp"
#include "chaos/oracle.hpp"
#include "chaos/shrink.hpp"
#include "common/rng.hpp"
#include "guard/budget.hpp"
#include "ir/library.hpp"
#include "ir/qasm.hpp"

namespace qdt::chaos {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("qdt_chaos_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

// -- Seed derivation / generator determinism --------------------------------

TEST(CaseSeed, IsStableAndSpreads) {
  const std::uint64_t s0 = case_seed(1, 0);
  EXPECT_EQ(s0, case_seed(1, 0));  // pure function
  EXPECT_NE(case_seed(1, 0), case_seed(1, 1));
  EXPECT_NE(case_seed(1, 0), case_seed(2, 0));
}

TEST(Generator, SameSeedBitIdenticalCircuit) {
  for (std::size_t i = 0; i < 20; ++i) {
    Rng r1(case_seed(7, i));
    Rng r2(case_seed(7, i));
    const GeneratedCase a = generate_case(r1);
    const GeneratedCase b = generate_case(r2);
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.mutations, b.mutations);
    ASSERT_TRUE(a.circuit == b.circuit) << "case " << i;
    // Bit-identical also at the QASM text level (the replay contract) —
    // unless the case is not QASM-expressible (e.g. a controlled-sdg from
    // the promote-control mutation), which to_qasm refuses with a typed
    // error.
    try {
      EXPECT_EQ(ir::to_qasm(a.circuit), ir::to_qasm(b.circuit));
    } catch (const Error&) {
    }
  }
}

TEST(Generator, RespectsConfiguredCaps) {
  GeneratorConfig cfg;
  cfg.max_qubits = 5;
  cfg.max_ops = 48;
  for (std::size_t i = 0; i < 50; ++i) {
    Rng rng(case_seed(3, i));
    const GeneratedCase g = generate_case(rng, cfg);
    EXPECT_GE(g.circuit.num_qubits(), 1u);
    EXPECT_LE(g.circuit.num_qubits(), cfg.max_qubits);
    EXPECT_LE(g.circuit.size(), cfg.max_ops);
  }
}

// -- Differential oracle ----------------------------------------------------

TEST(Oracle, BackendsAgreeOnEveryLibraryFamily) {
  for (const std::string& family : ir::library_families()) {
    const ir::Circuit c = ir::make_family(family, 4, 11);
    const OracleReport rep = run_oracle(c, {});
    EXPECT_FALSE(rep.is_finding())
        << family << ": " << outcome_name(rep.outcome) << " " << rep.detail;
  }
}

TEST(Oracle, PlantedTflipIsFoundAndShrinksToAFewOps) {
  OracleOptions opts;
  opts.adapters = default_state_adapters();
  opts.adapters.push_back(planted_adapter("tflip"));
  opts.equivalence_checks = false;  // the plant lives in the state adapter

  const ir::Circuit c = ir::random_clifford_t(3, 24, 0.4, 5);
  const OracleReport rep = run_oracle(c, opts);
  ASSERT_EQ(rep.outcome, Outcome::Mismatch) << rep.detail;

  const FailPredicate still_fails = [&opts](const ir::Circuit& cand) {
    return run_oracle(cand, opts).outcome == Outcome::Mismatch;
  };
  const ShrinkResult shrunk = shrink(c, still_fails);
  EXPECT_LE(shrunk.minimal.size(), 5u)
      << "shrunk repro:\n" << ir::to_qasm(shrunk.minimal);
  EXPECT_TRUE(still_fails(shrunk.minimal));
}

TEST(Oracle, PlantedAdapterRejectsUnknownBug) {
  try {
    planted_adapter("no-such-bug");
    FAIL() << "expected BadInput";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::BadInput);
  }
}

TEST(Oracle, ParserOracleNeverEscapes) {
  const char* garbage[] = {
      "", "OPENQASM 2.0;", "qreg q[2]; h q[9];",
      "OPENQASM 2.0;\nqreg q[1];\nh q[0]\x01;\n",
      "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\n",
  };
  for (const char* text : garbage) {
    const CheckResult r = run_parser_oracle(text);
    EXPECT_NE(r.outcome, Outcome::Escape) << text << " -> " << r.detail;
    EXPECT_NE(r.outcome, Outcome::Mismatch) << text << " -> " << r.detail;
  }
}

TEST(Oracle, OutcomeFoldIsSeverityOrdered) {
  EXPECT_EQ(worse(Outcome::Agree, Outcome::TypedError), Outcome::TypedError);
  EXPECT_EQ(worse(Outcome::TypedError, Outcome::Mismatch), Outcome::Mismatch);
  EXPECT_EQ(worse(Outcome::Mismatch, Outcome::Escape), Outcome::Escape);
  EXPECT_EQ(worse(Outcome::Escape, Outcome::Agree), Outcome::Escape);
}

// -- Chaos mode -------------------------------------------------------------

TEST(Chaos, FaultScheduleMayDegradeButNeverLies) {
  for (std::size_t i = 0; i < 10; ++i) {
    Rng rng(case_seed(21, i));
    const ir::Circuit c = ir::random_clifford_t(4, 20, 0.3, 100 + i);
    const std::vector<FaultSpec> schedule = random_fault_schedule(rng, {});
    const ChaosResult res = run_chaos_case(c, schedule, {});
    // The robustness invariant: degrade or fail typed, never a wrong
    // answer (Mismatch) and never an untyped crash (Escape).
    EXPECT_EQ(res.outcome, Outcome::Agree)
        << "schedule " << i << ": " << outcome_name(res.outcome) << " "
        << res.detail;
  }
}

TEST(Chaos, ClearsArmedFaultsOnExit) {
  Rng rng(case_seed(22, 0));
  ChaosOptions opts;
  opts.max_nth = 1u << 30;  // so most armed faults never fire
  const std::vector<FaultSpec> schedule = random_fault_schedule(rng, opts);
  ASSERT_FALSE(schedule.empty());
  (void)run_chaos_case(ir::ghz(3), schedule, opts);
  // No stale armed fault may leak into the next case.
  EXPECT_EQ(guard::faults_armed(), 0u);
  EXPECT_NO_THROW(guard::check_dd_nodes(1));
}

// -- Fuzz driver ------------------------------------------------------------

TEST(Fuzz, SameSeedSameClassification) {
  FuzzOptions opts;
  opts.seed = 5;
  opts.cases = 8;
  const FuzzReport a = run_fuzz(opts);
  const FuzzReport b = run_fuzz(opts);
  EXPECT_EQ(a.agree, b.agree);
  EXPECT_EQ(a.mismatch, b.mismatch);
  EXPECT_EQ(a.typed_errors, b.typed_errors);
  EXPECT_EQ(a.escapes, b.escapes);
  EXPECT_EQ(a.parser_rejected, b.parser_rejected);
  EXPECT_EQ(a.findings.size(), b.findings.size());
}

TEST(Fuzz, SmokeRunIsClean) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.cases = 10;
  const FuzzReport rep = run_fuzz(opts);
  EXPECT_EQ(rep.cases, 10u);
  EXPECT_TRUE(rep.clean())
      << rep.mismatch << " mismatches, " << rep.escapes << " escapes";
}

TEST(Fuzz, PlantedBugLandsInCorpusShrunk) {
  TempDir dir;
  FuzzOptions opts;
  opts.seed = 9;
  opts.cases = 40;
  opts.parser_fuzz = false;
  opts.corpus_dir = dir.str();
  opts.plant = "tflip";
  opts.oracle.equivalence_checks = false;
  const FuzzReport rep = run_fuzz(opts);
  ASSERT_GT(rep.mismatch, 0u) << "40 cases never drew a T gate";
  ASSERT_FALSE(rep.findings.empty());
  for (const Finding& f : rep.findings) {
    EXPECT_EQ(f.classification, "mismatch");
    EXPECT_LE(f.shrunk.size(), f.circuit.size());
    ASSERT_FALSE(f.corpus_json.empty());
    EXPECT_TRUE(fs::exists(f.corpus_json));
    // The .qasm repro sits next to the metadata and re-parses.
    std::ifstream meta(f.corpus_json);
    std::stringstream ss;
    ss << meta.rdbuf();
    EXPECT_NE(ss.str().find("mismatch"), std::string::npos);
    // The replay command carries the per-case seed (fed directly into the
    // case Rng via --case-seed) plus every flag reproduction depends on.
    const std::string replay =
        "qdt fuzz --case-seed " + std::to_string(f.case_seed) +
        " --plant tflip --no-parser";
    EXPECT_NE(ss.str().find("\"replay\": \"" + replay), std::string::npos)
        << ss.str();
  }
}

TEST(Fuzz, CorpusReplaySeedRefiresFinding) {
  FuzzOptions opts;
  opts.seed = 9;
  opts.cases = 40;
  opts.parser_fuzz = false;
  opts.plant = "tflip";
  opts.oracle.equivalence_checks = false;
  opts.shrink_findings = false;
  const FuzzReport rep = run_fuzz(opts);
  ASSERT_FALSE(rep.findings.empty());
  const Finding& f = rep.findings.front();

  // What `qdt fuzz --case-seed <stored seed> --plant tflip --no-parser`
  // executes: the stored per-case seed feeds the case Rng directly (no
  // splitmix64 re-derivation) and must regenerate the identical circuit
  // and re-fire the identical finding.
  FuzzOptions replay = opts;
  replay.seed = f.case_seed;
  replay.seed_is_case_seed = true;
  replay.cases = 1;
  const FuzzReport again = run_fuzz(replay);
  ASSERT_EQ(again.findings.size(), 1u);
  EXPECT_EQ(again.findings[0].classification, f.classification);
  EXPECT_TRUE(again.findings[0].circuit == f.circuit);
}

// -- Shrinker ---------------------------------------------------------------

TEST(Shrink, DeletesIrrelevantOperations) {
  // Failure: "contains a T on qubit 0". Everything else must go.
  ir::Circuit c(3);
  for (int i = 0; i < 10; ++i) {
    c.h(0);
    c.cx(0, 1);
    c.h(2);
  }
  c.t(0);
  for (int i = 0; i < 5; ++i) {
    c.sx(1);
  }
  const FailPredicate has_t = [](const ir::Circuit& cand) {
    for (const auto& op : cand.ops()) {
      if (op.kind() == ir::GateKind::T) {
        return true;
      }
    }
    return false;
  };
  const ShrinkResult res = shrink(c, has_t);
  EXPECT_EQ(res.minimal.size(), 1u);
  EXPECT_EQ(res.minimal.num_qubits(), 1u);  // idle qubits compacted away
  EXPECT_GT(res.ops_removed, 0u);
}

TEST(Shrink, CompactQubitsRenumbers) {
  ir::Circuit c(5);
  c.h(1);
  c.cx(1, 4);
  std::size_t removed = 0;
  const ir::Circuit compact = compact_qubits(c, &removed);
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(compact.num_qubits(), 2u);
  EXPECT_EQ(compact.size(), 2u);
}

// -- Corpus -----------------------------------------------------------------

TEST(Corpus, WriteFindingEmitsReproArtifacts) {
  TempDir dir;
  CorpusEntry entry;
  entry.master_seed = 1;
  entry.case_seed = case_seed(1, 4);
  entry.case_index = 4;
  entry.classification = "mismatch";
  entry.detail = "state:array~mps: max amplitude deviation 0.5";
  entry.family = "ghz";
  entry.mutations = {"dup_adjacent"};
  entry.plant = "cxdrop";
  entry.parser_fuzz = false;
  entry.chaos = true;
  entry.max_qubits = 5;
  entry.max_ops = 48;
  const ir::Circuit c = ir::ghz(3);
  const std::string json_path = write_finding(dir.str(), entry, c, nullptr);
  ASSERT_TRUE(fs::exists(json_path));
  {
    std::ifstream meta(json_path);
    std::stringstream ss;
    ss << meta.rdbuf();
    // The replay command restores the full option set: per-case seed,
    // planted adapter, parser setting, chaos mode, generator caps.
    EXPECT_NE(ss.str().find("\"replay\": \"qdt fuzz --case-seed " +
                            std::to_string(entry.case_seed) +
                            " --plant cxdrop --no-parser --chaos"
                            " --max-qubits 5 --max-ops 48\""),
              std::string::npos)
        << ss.str();
    EXPECT_NE(ss.str().find("\"plant\": \"cxdrop\""), std::string::npos);
    EXPECT_NE(ss.str().find("\"parser_fuzz\": false"), std::string::npos);
  }
  const std::string qasm_path =
      json_path.substr(0, json_path.size() - 5) + ".qasm";
  ASSERT_TRUE(fs::exists(qasm_path));
  std::ifstream qasm(qasm_path);
  std::stringstream ss;
  ss << qasm.rdbuf();
  const ir::Circuit back = ir::parse_qasm(ss.str());
  EXPECT_EQ(back.num_qubits(), 3u);
}

TEST(Corpus, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Fuzz, StopFlagInterruptsBeforeAnyCase) {
  std::atomic<bool> stop{true};  // already requested: nothing may start
  FuzzOptions opts;
  opts.cases = 50;
  opts.stop = &stop;
  const FuzzReport report = run_fuzz(opts);
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(report.cases, 0u);
  EXPECT_TRUE(report.findings.empty());
}

TEST(Fuzz, StopFlagDrainsMidRunAcrossJobs) {
  // A run long enough that the flag flips while workers are pulling cases;
  // in-flight cases must finish (report.cases counts them) and the rest
  // must never start.
  std::atomic<bool> stop{false};
  FuzzOptions opts;
  opts.cases = 100000;
  opts.jobs = 4;
  opts.generator.max_qubits = 6;
  opts.stop = &stop;
  FuzzReport report;
  std::thread runner([&] { report = run_fuzz(opts); });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  runner.join();
  EXPECT_TRUE(report.interrupted);
  EXPECT_GT(report.cases, 0u);
  EXPECT_LT(report.cases, opts.cases);
}

}  // namespace
}  // namespace qdt::chaos
