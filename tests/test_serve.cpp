// qdt::serve — daemon robustness tests: the JSON wire format, typed error
// responses for every failure mode (malformed input, budget exhaustion,
// injected faults), admission control and typed overload shedding with
// retry hints, per-tenant fair share, the plan cache, graceful drain with
// exactly-one-response accounting, and a multi-client soak in which the
// daemon must answer every request and never die. The soak also runs in
// the TSan CI lane, which is where the scheduler/cache locking earns its
// keep.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "guard/error.hpp"
#include "par/pool.hpp"
#include "serve/json.hpp"
#include "serve/serve.hpp"

namespace qdt::serve {
namespace {

std::string bell_qasm() {
  return "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];";
}

std::string ghz_qasm(int n) {
  std::string s = "OPENQASM 2.0;\nqreg q[" + std::to_string(n) + "];\nh q[0];\n";
  for (int i = 1; i < n; ++i) {
    s += "cx q[" + std::to_string(i - 1) + "],q[" + std::to_string(i) + "];\n";
  }
  return s;
}

/// Escape a QASM text for embedding in a request line.
std::string q(const std::string& s) { return json::escape(s); }

std::string simulate_request(int id, const std::string& qasm,
                             const std::string& extra = {}) {
  return R"({"id":)" + std::to_string(id) + R"(,"op":"simulate","qasm":")" +
         q(qasm) + "\"" + extra + "}";
}

const json::Value* field(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  EXPECT_NE(f, nullptr) << "missing field " << key;
  return f;
}

/// Collects submit() completions across worker threads.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> responses;

  std::function<void(std::string)> sink() {
    return [this](std::string r) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(r));
      }
      cv.notify_all();
    };
  }

  bool wait_for(std::size_t n, double seconds = 30.0) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::duration<double>(seconds),
                       [&] { return responses.size() >= n; });
  }
};

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

TEST(ServeJson, ParsesScalarsContainersAndEscapes) {
  const json::Value v = json::parse(
      R"({"a":1.5,"b":"x\ny\u0041","c":[true,false,null],"d":{"e":-2}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.get_number("a"), 1.5);
  EXPECT_EQ(v.get_string("b"), "x\nyA");
  const json::Value* c = v.find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->array.size(), 3u);
  EXPECT_TRUE(c->array[0].boolean);
  EXPECT_EQ(c->array[2].kind, json::Value::Kind::Null);
  EXPECT_DOUBLE_EQ(v.find("d")->get_number("e"), -2.0);
}

TEST(ServeJson, RejectsMalformedInputWithTypedErrors) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"\\q\"", "{\"a\":1,}",
        "01", "1e", "{\"a\" 1}", "\"unterminated"}) {
    EXPECT_THROW(json::parse(bad), Error) << bad;
  }
  // Depth bomb: typed error, not a stack overflow.
  std::string deep(200, '[');
  EXPECT_THROW(json::parse(deep), Error);
}

TEST(ServeJson, WriterRoundTripsThroughParser) {
  json::Writer w;
  w.begin_object();
  w.key("s").string("line1\n\"line2\"");
  w.key("n").number(std::uint64_t{1234567890123});
  w.key("f").number(0.25);
  w.key("b").boolean(true);
  w.key("a").begin_array().number(std::int64_t{-1}).null().end_array();
  w.end_object();
  const json::Value v = json::parse(w.str());
  EXPECT_EQ(v.get_string("s"), "line1\n\"line2\"");
  EXPECT_EQ(v.get_uint("n"), 1234567890123u);
  EXPECT_DOUBLE_EQ(v.get_number("f"), 0.25);
  EXPECT_TRUE(v.get_bool("b"));
  ASSERT_EQ(v.find("a")->array.size(), 2u);
}

// ---------------------------------------------------------------------------
// Request basics
// ---------------------------------------------------------------------------

TEST(Serve, AnswersSimulateWithCountsAndEchoesId) {
  Server server;
  const json::Value v = json::parse(server.serve_line(
      simulate_request(7, bell_qasm(), R"(,"shots":200,"seed":3)")));
  EXPECT_TRUE(v.get_bool("ok"));
  EXPECT_DOUBLE_EQ(field(v, "id")->number, 7.0);
  const json::Value* counts = field(v, "counts");
  ASSERT_TRUE(counts->is_object());
  std::size_t total = 0;
  for (const auto& [word, n] : counts->object) {
    EXPECT_TRUE(word == "0" || word == "3") << word;  // Bell: |00> or |11>
    total += static_cast<std::size_t>(n.number);
  }
  EXPECT_EQ(total, 200u);
  EXPECT_FALSE(v.get_bool("degraded"));
  EXPECT_GE(v.get_number("queue_ms"), 0.0);
}

TEST(Serve, TypedErrorsForGarbageProtocolAndQasm) {
  Server server;
  // Not JSON at all.
  json::Value v = json::parse(server.serve_line("this is not json"));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(field(v, "error")->get_string("code"), "bad-input");
  // JSON, but not an object.
  v = json::parse(server.serve_line("[1,2,3]"));
  EXPECT_EQ(field(v, "error")->get_string("code"), "bad-input");
  // Unknown op / missing qasm / unknown backend.
  v = json::parse(server.serve_line(R"({"id":1,"op":"launch"})"));
  EXPECT_EQ(field(v, "error")->get_string("code"), "bad-input");
  v = json::parse(server.serve_line(R"({"id":2,"op":"simulate"})"));
  EXPECT_EQ(field(v, "error")->get_string("code"), "bad-input");
  v = json::parse(server.serve_line(
      simulate_request(3, bell_qasm(), R"(,"backend":"quantum")")));
  EXPECT_EQ(field(v, "error")->get_string("code"), "bad-input");
  // Malformed QASM inside well-formed JSON.
  v = json::parse(server.serve_line(
      simulate_request(4, "OPENQASM 2.0;\nqreg q[")));
  EXPECT_EQ(field(v, "error")->get_string("code"), "bad-input");
  // The daemon survived all of it.
  v = json::parse(server.serve_line(simulate_request(5, bell_qasm())));
  EXPECT_TRUE(v.get_bool("ok"));
  EXPECT_EQ(server.status().panics, 0u);
}

TEST(Serve, StatusReportsHealthAndPerTenantAccounting) {
  Server server;
  EXPECT_TRUE(json::parse(server.serve_line(
                  simulate_request(1, bell_qasm(), R"(,"tenant":"alice")")))
                  .get_bool("ok"));
  const json::Value v =
      json::parse(server.serve_line(R"({"id":9,"op":"status"})"));
  EXPECT_TRUE(v.get_bool("ok"));
  EXPECT_EQ(v.get_string("op"), "status");
  EXPECT_FALSE(v.get_bool("draining", true));
  EXPECT_EQ(v.get_uint("admitted"), 1u);
  EXPECT_EQ(v.get_uint("completed"), 1u);
  EXPECT_EQ(v.get_uint("panics", 99), 0u);
  EXPECT_GE(v.get_number("uptime_seconds"), 0.0);
  EXPECT_GT(v.get_number("rss_peak_mb"), 0.0);
  const json::Value* tenants = field(v, "tenants");
  ASSERT_NE(tenants->find("alice"), nullptr);
  EXPECT_EQ(tenants->find("alice")->get_uint("completed"), 1u);
}

// ---------------------------------------------------------------------------
// Budgets, faults, degradation
// ---------------------------------------------------------------------------

TEST(Serve, MidRequestBudgetExhaustionIsTypedAndDaemonSurvives) {
  Server server;
  // robust=false + injected fault: the typed ResourceExhausted escapes the
  // backend mid-request and must come back as a protocol error...
  const json::Value v = json::parse(server.serve_line(simulate_request(
      1, bell_qasm(), R"(,"shots":100,"robust":false,"fault":"memory:1")")));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(field(v, "error")->get_string("code"), "resource-exhausted");
  EXPECT_EQ(field(v, "error")->get_string("resource"), "memory");
  // ...without poisoning the worker: same circuit, no fault, still served.
  const json::Value ok = json::parse(server.serve_line(
      simulate_request(2, bell_qasm(), R"(,"shots":100)")));
  EXPECT_TRUE(ok.get_bool("ok"));
  const ServerStatus s = server.status();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.panics, 0u);
}

TEST(Serve, RobustRequestDegradesDownTheLadderWithTypedAttempts) {
  Server server;
  const json::Value v = json::parse(server.serve_line(simulate_request(
      1, bell_qasm(), R"(,"shots":50,"backend":"array","fault":"memory:1")")));
  ASSERT_TRUE(v.get_bool("ok")) << "robust ladder should absorb the fault";
  EXPECT_TRUE(v.get_bool("degraded"));
  const json::Value* attempts = field(v, "attempts");
  ASSERT_GE(attempts->array.size(), 2u);
  EXPECT_EQ(attempts->array[0].get_string("stage"), "array");
  EXPECT_FALSE(attempts->array[0].get_bool("ok", true));
  EXPECT_EQ(attempts->array[0].get_string("code"), "resource-exhausted");
  EXPECT_EQ(attempts->array[0].get_string("resource"), "memory");
  EXPECT_TRUE(attempts->array.back().get_bool("ok"));
  EXPECT_EQ(server.status().degraded, 1u);
}

TEST(Serve, EnvFaultInjectionReachesWorkerThreads) {
  // QDT_FAULT is parsed lazily per worker thread at its first budget
  // checkpoint — the soak harness relies on that to hit daemon workers.
  ::setenv("QDT_FAULT", "memory:1", 1);
  Server server(ServeOptions{.workers = 1});
  const json::Value v = json::parse(server.serve_line(simulate_request(
      1, bell_qasm(), R"(,"shots":50,"backend":"array")")));
  ::unsetenv("QDT_FAULT");
  ASSERT_TRUE(v.get_bool("ok"));
  EXPECT_TRUE(v.get_bool("degraded"));
  // One-shot: the next request on the same worker runs clean.
  const json::Value clean = json::parse(server.serve_line(
      simulate_request(2, bell_qasm(), R"(,"shots":50)")));
  EXPECT_TRUE(clean.get_bool("ok"));
  EXPECT_FALSE(clean.get_bool("degraded"));
}

TEST(Serve, DeadlineBudgetBoundsARequest) {
  Server server;
  // An absurd deadline (0.0001ms) trips the first deadline checkpoint.
  const json::Value v = json::parse(server.serve_line(simulate_request(
      1, ghz_qasm(12), R"(,"shots":100,"robust":false,"timeout_ms":0.0001)")));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(field(v, "error")->get_string("code"), "resource-exhausted");
  EXPECT_EQ(field(v, "error")->get_string("resource"), "deadline");
}

// ---------------------------------------------------------------------------
// Admission control + shedding
// ---------------------------------------------------------------------------

TEST(Serve, StaticCostGateRejectsBeforeSimulating) {
  ServeOptions opts;
  opts.admission_max_cost_log2 = 0.5;  // nothing real fits under 2^0.5
  Server server(opts);
  const json::Value v = json::parse(
      server.serve_line(simulate_request(1, ghz_qasm(20), R"(,"shots":10)")));
  EXPECT_FALSE(v.get_bool("ok", true));
  const json::Value* err = field(v, "error");
  EXPECT_EQ(err->get_string("code"), "resource-exhausted");
  EXPECT_EQ(err->get_string("reason"), "admission-cost-gate");
  EXPECT_GT(err->get_number("cost_log2"), 0.5);
  const ServerStatus s = server.status();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed, 0u);
}

TEST(Serve, WireStateWidthCapIsTyped) {
  Server server;  // default max_state_qubits = 10
  const json::Value v = json::parse(server.serve_line(
      simulate_request(1, ghz_qasm(12), R"(,"want_state":true)")));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(field(v, "error")->get_string("code"), "unsupported");
}

TEST(Serve, OversizedRequestLineIsRejectedNotBuffered) {
  ServeOptions opts;
  opts.max_request_bytes = 512;
  Server server(opts);
  const json::Value v = json::parse(
      server.serve_line(simulate_request(1, ghz_qasm(64))));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(field(v, "error")->get_string("code"), "bad-input");
}

TEST(Serve, QueueOverflowShedsWithRetryHint) {
  ServeOptions opts;
  opts.max_queue = 0;  // degenerate on purpose: every simulate sheds
  Server server(opts);
  const json::Value v =
      json::parse(server.serve_line(simulate_request(1, bell_qasm())));
  EXPECT_FALSE(v.get_bool("ok", true));
  const json::Value* err = field(v, "error");
  EXPECT_EQ(err->get_string("code"), "resource-exhausted");
  EXPECT_EQ(err->get_string("resource"), "queue");
  EXPECT_EQ(err->get_string("reason"), "queue-full");
  EXPECT_GE(err->get_number("retry_after_ms"), 10.0);
  // status still answers while the run queue sheds — that's the /healthz
  // property.
  EXPECT_TRUE(json::parse(server.serve_line(R"({"op":"status"})"))
                  .get_bool("ok"));
  EXPECT_EQ(server.status().shed, 1u);
}

TEST(Serve, TenantQuotaShedsTheFloodingTenantOnly) {
  ServeOptions opts;
  opts.max_tenant_queue = 0;
  Server server(opts);
  const json::Value v = json::parse(server.serve_line(
      simulate_request(1, bell_qasm(), R"(,"tenant":"noisy")")));
  EXPECT_EQ(field(v, "error")->get_string("reason"), "tenant-quota");
  EXPECT_EQ(server.status().shed, 1u);
}

TEST(Serve, OversizedTenantNameIsRejected) {
  ServeOptions opts;
  opts.max_tenant_name_bytes = 8;
  Server server(opts);
  const json::Value v = json::parse(server.serve_line(simulate_request(
      1, bell_qasm(), R"(,"tenant":"way-too-long-tenant-name")")));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(field(v, "error")->get_string("code"), "bad-input");
  EXPECT_EQ(server.status().tenants, 0u);
}

TEST(Serve, UniqueTenantFloodStaysBoundedByMaxTenants) {
  ServeOptions opts;
  opts.workers = 1;
  opts.max_tenants = 1;
  Server server(opts);
  Collector collector;
  // Unique tenant per request — the hostile shape. Whether the previous
  // tenant is idle (evicted) or busy (folded into the overflow bucket),
  // the tracked-tenant map must stay bounded and every request answered.
  server.submit(simulate_request(0, ghz_qasm(14),
                                 R"(,"shots":64,"tenant":"t0")"),
                collector.sink());
  for (int i = 1; i <= 8; ++i) {
    server.submit(simulate_request(
                      i, bell_qasm(),
                      R"(,"tenant":"u)" + std::to_string(i) + "\""),
                  collector.sink());
  }
  ASSERT_TRUE(collector.wait_for(9));
  for (const std::string& r : collector.responses) {
    EXPECT_TRUE(json::parse(r).get_bool("ok", false)) << r;
  }
  // max_tenants real entries plus at most the shared "!overflow" bucket.
  EXPECT_LE(server.status().tenants, 2u);
}

TEST(Serve, FairShareServesTheLightTenantAmidAFlood) {
  ServeOptions opts;
  opts.workers = 1;  // serialize execution so queue order is observable
  Server server(opts);
  std::mutex mu;
  std::vector<std::string> completion_order;
  std::condition_variable cv;
  const auto sink_for = [&](std::string tag) {
    return [&, tag](std::string) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        completion_order.push_back(tag);
      }
      cv.notify_all();
    };
  };
  const std::string heavy = ghz_qasm(14);
  for (int i = 0; i < 8; ++i) {
    server.submit(simulate_request(i, heavy,
                                   R"(,"shots":64,"tenant":"flooder")"),
                  sink_for("flooder"));
  }
  server.submit(
      simulate_request(100, bell_qasm(), R"(,"shots":16,"tenant":"light")"),
      sink_for("light"));
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                            [&] { return completion_order.size() == 9u; }));
  }
  const auto light_pos =
      std::find(completion_order.begin(), completion_order.end(), "light") -
      completion_order.begin();
  // Round-robin: the light tenant's single request must not sit behind the
  // flooder's whole backlog. (Worst case: one flooder job in flight plus
  // a couple admitted before the light one arrived.)
  EXPECT_LT(light_pos, 5) << "fair share failed: light tenant finished "
                          << light_pos + 1 << "/9";
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

TEST(Serve, HotCircuitHitsThePlanCache) {
  Server server;
  const std::string req = simulate_request(1, bell_qasm(), R"(,"shots":32)");
  EXPECT_FALSE(json::parse(server.serve_line(req)).get_bool("cache_hit"));
  EXPECT_TRUE(json::parse(server.serve_line(req)).get_bool("cache_hit"));
  EXPECT_TRUE(json::parse(server.serve_line(req)).get_bool("cache_hit"));
  const ServerStatus s = server.status();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.cache_entries, 1u);
}

TEST(Serve, CacheKeySeparatesConstraints) {
  Server server;
  const std::string base = simulate_request(1, bell_qasm(), R"(,"shots":8)");
  EXPECT_FALSE(json::parse(server.serve_line(base)).get_bool("cache_hit"));
  // Same circuit, different constraint set -> different plan, not a hit.
  const json::Value v = json::parse(server.serve_line(
      simulate_request(2, bell_qasm(), R"(,"shots":8,"want_state":true)")));
  EXPECT_FALSE(v.get_bool("cache_hit"));
  EXPECT_EQ(server.status().cache_entries, 2u);
}

TEST(Serve, CacheEvictsLru) {
  ServeOptions opts;
  opts.plan_cache_entries = 2;
  Server server(opts);
  for (int n = 2; n <= 5; ++n) {
    EXPECT_TRUE(json::parse(server.serve_line(simulate_request(n, ghz_qasm(n))))
                    .get_bool("ok"));
  }
  EXPECT_LE(server.status().cache_entries, 2u);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(Serve, IdenticalRequestsAreBitwiseIdenticalAtAnyThreadCount) {
  const std::string req = simulate_request(
      1, ghz_qasm(10), R"(,"shots":256,"seed":99,"want_state":true)");
  const auto canonical = [](const json::Value& v) {
    std::string s;
    for (const auto& [word, n] : v.find("counts")->object) {
      s += word + ":" + std::to_string(n.number) + ";";
    }
    for (const auto& amp : v.find("state")->array) {
      s += std::to_string(amp.array[0].number) + "," +
           std::to_string(amp.array[1].number) + ";";
    }
    return s;
  };
  par::set_max_threads(1);
  std::string at1;
  {
    Server server;
    at1 = canonical(json::parse(server.serve_line(req)));
  }
  par::set_max_threads(4);
  std::string at4;
  {
    Server server(ServeOptions{.workers = 3});
    const json::Value v = json::parse(server.serve_line(req));
    at4 = canonical(v);
  }
  par::set_max_threads(1);
  EXPECT_EQ(at1, at4);
  ASSERT_FALSE(at1.empty());
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

TEST(Serve, DrainShedsNewCancelsQueuedAnswersEverything) {
  ServeOptions opts;
  opts.workers = 1;
  Server server(opts);
  Collector done;
  const std::string heavy =
      simulate_request(1, ghz_qasm(14), R"(,"shots":256)");
  for (int i = 0; i < 6; ++i) {
    server.submit(heavy, done.sink());
  }
  server.begin_drain();
  // New submissions shed with the draining reason...
  const json::Value shed =
      json::parse(server.serve_line(simulate_request(9, bell_qasm())));
  EXPECT_EQ(field(shed, "error")->get_string("reason"), "draining");
  // ...and drain answers everything already submitted: in-flight jobs
  // finish, still-queued jobs come back typed-cancelled.
  server.drain(0.05);
  ASSERT_TRUE(done.wait_for(6));
  std::size_t ok = 0;
  std::size_t cancelled = 0;
  for (const auto& line : done.responses) {
    const json::Value v = json::parse(line);
    if (v.get_bool("ok")) {
      ++ok;
    } else {
      EXPECT_EQ(field(v, "error")->get_string("reason"), "cancelled");
      ++cancelled;
    }
  }
  EXPECT_EQ(ok + cancelled, 6u);
  EXPECT_EQ(server.status().cancelled, cancelled);
  EXPECT_TRUE(server.draining());
}

TEST(Serve, ShutdownOpFlipsTheServerIntoDraining) {
  Server server;
  const json::Value v =
      json::parse(server.serve_line(R"({"id":1,"op":"shutdown"})"));
  EXPECT_TRUE(v.get_bool("ok"));
  EXPECT_TRUE(v.get_bool("draining"));
  EXPECT_TRUE(server.draining());
  const json::Value after =
      json::parse(server.serve_line(simulate_request(2, bell_qasm())));
  EXPECT_EQ(field(after, "error")->get_string("reason"), "draining");
}

// ---------------------------------------------------------------------------
// Multi-client soak (also exercised under TSan in CI)
// ---------------------------------------------------------------------------

TEST(Serve, SoakFourClientsMixedTrafficEveryRequestAnsweredExactlyOnce) {
  ServeOptions opts;
  opts.workers = 3;
  opts.max_queue = 16;  // small enough that the burst genuinely sheds
  opts.max_tenant_queue = 8;
  Server server(opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 100;
  std::mutex mu;
  std::map<std::string, int> answers_by_id;
  std::atomic<int> answered{0};

  const auto client = [&](int c) {
    for (int i = 0; i < kPerClient; ++i) {
      const int id = c * kPerClient + i;
      std::string req;
      switch (i % 5) {
        case 0:  // healthy, hot circuit (cache + determinism path)
          req = simulate_request(id, bell_qasm(),
                                 R"(,"shots":64,"seed":5,"tenant":"t)" +
                                     std::to_string(c) + "\"");
          break;
        case 1:  // malformed QASM
          req = simulate_request(id, "OPENQASM 2.0;\nqreg q[&];");
          break;
        case 2:  // malformed protocol line
          req = "{\"id\":" + std::to_string(id) + ",\"op\":";
          break;
        case 3:  // injected mid-request fault, non-robust -> typed failure
          req = simulate_request(
              id, bell_qasm(),
              R"(,"shots":32,"robust":false,"fault":"memory:1","tenant":"t)" +
                  std::to_string(c) + "\"");
          break;
        default:  // over-deadline request
          req = simulate_request(
              id, ghz_qasm(12),
              R"(,"shots":64,"robust":false,"timeout_ms":0.0001)");
          break;
      }
      server.submit(req, [&, id](std::string line) {
        const json::Value v = json::parse(line);  // every answer parses
        EXPECT_NE(v.find("ok"), nullptr);
        {
          const std::lock_guard<std::mutex> lock(mu);
          // Malformed-protocol answers echo id null; count those under
          // their own key to keep exactly-once accounting for the rest.
          const json::Value* idf = v.find("id");
          const std::string key =
              (idf != nullptr && idf->kind == json::Value::Kind::Number)
                  ? std::to_string(static_cast<int>(idf->number))
                  : "null";
          ++answers_by_id[key];
        }
        answered.fetch_add(1);
      });
    }
  };
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(client, c);
  }
  for (auto& t : clients) {
    t.join();
  }
  server.begin_drain();
  server.drain(120.0);

  EXPECT_EQ(answered.load(), kClients * kPerClient)
      << "every request must be answered";
  for (const auto& [id, n] : answers_by_id) {
    if (id != "null") {
      EXPECT_EQ(n, 1) << "request " << id << " answered " << n << " times";
    }
  }
  const ServerStatus s = server.status();
  EXPECT_EQ(s.panics, 0u) << "the daemon must survive hostile traffic";
  // Accounting closes: everything submitted is exactly one of these.
  EXPECT_EQ(s.completed + s.failed + s.rejected + s.shed + s.cancelled,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GT(s.cache_hits, 0u);
}

}  // namespace
}  // namespace qdt::serve
