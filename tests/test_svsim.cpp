#include "arrays/svsim.hpp"

#include <gtest/gtest.h>

#include "ir/library.hpp"

namespace qdt::arrays {
namespace {

TEST(StatevectorSimulator, RunsUnitaryCircuit) {
  StatevectorSimulator sim(1);
  const auto res = sim.run(ir::bell());
  EXPECT_NEAR(std::abs(res.state.amplitude(0)), kInvSqrt2, 1e-12);
  EXPECT_NEAR(std::abs(res.state.amplitude(3)), kInvSqrt2, 1e-12);
  EXPECT_TRUE(res.measurements.empty());
}

TEST(StatevectorSimulator, RecordsMeasurements) {
  ir::Circuit c(2);
  c.x(0).measure_all();
  StatevectorSimulator sim(2);
  const auto res = sim.run(c);
  ASSERT_EQ(res.measurements.size(), 2U);
  EXPECT_TRUE(res.measurements[0].second);    // q0 = 1
  EXPECT_FALSE(res.measurements[1].second);   // q1 = 0
}

TEST(StatevectorSimulator, BellCountsAreCorrelated) {
  StatevectorSimulator sim(3);
  const auto counts = sim.sample_counts(ir::bell(), 2000);
  std::size_t total = 0;
  for (const auto& [word, count] : counts) {
    EXPECT_TRUE(word == 0b00 || word == 0b11) << word;
    total += count;
  }
  EXPECT_EQ(total, 2000U);
  EXPECT_NEAR(static_cast<double>(counts.at(0)) / 2000.0, 0.5, 0.05);
}

TEST(StatevectorSimulator, GhzSampling) {
  StatevectorSimulator sim(4);
  const auto counts = sim.sample_counts(ir::ghz(5), 1000);
  for (const auto& [word, count] : counts) {
    EXPECT_TRUE(word == 0 || word == 0b11111) << word;
  }
}

TEST(StatevectorSimulator, MidCircuitMeasurementDrivesCollapse) {
  // Measure after H: the remaining state must be a basis state, and the
  // sampled word must equal the recorded outcome.
  ir::Circuit c(1);
  c.h(0).measure(0);
  StatevectorSimulator sim(5);
  const auto counts = sim.sample_counts(c, 500);
  std::size_t total = 0;
  for (const auto& [word, count] : counts) {
    EXPECT_TRUE(word == 0 || word == 1);
    total += count;
  }
  EXPECT_EQ(total, 500U);
  // Both outcomes occur with roughly equal frequency.
  EXPECT_GT(counts.at(0), 175U);
  EXPECT_GT(counts.at(1), 175U);
}

TEST(StatevectorSimulator, ReadoutErrorFlipsBits) {
  ir::Circuit c(1);
  c.measure(0);  // state is |0>, so only readout error can yield 1
  StatevectorSimulator sim(6);
  NoiseModel nm;
  nm.readout_error = 0.2;
  sim.set_noise(nm);
  const auto counts = sim.sample_counts(c, 2000);
  const double frac1 =
      counts.contains(1) ? static_cast<double>(counts.at(1)) / 2000.0 : 0.0;
  EXPECT_NEAR(frac1, 0.2, 0.04);
}

TEST(StatevectorSimulator, DeterministicGivenSeed) {
  ir::Circuit c(3);
  c.h(0).h(1).h(2).measure_all();
  StatevectorSimulator a(42);
  StatevectorSimulator b(42);
  EXPECT_EQ(a.sample_counts(c, 100), b.sample_counts(c, 100));
}

TEST(StatevectorSimulator, DepolarizingNoiseSpreadsCounts) {
  StatevectorSimulator sim(7);
  sim.set_noise(NoiseModel::depolarizing_model(0.1));
  const auto counts = sim.sample_counts(ir::ghz(3), 1000);
  // With noise, some non-GHZ words must appear.
  std::size_t bad = 0;
  for (const auto& [word, count] : counts) {
    if (word != 0 && word != 0b111) {
      bad += count;
    }
  }
  EXPECT_GT(bad, 10U);
}

}  // namespace
}  // namespace qdt::arrays
