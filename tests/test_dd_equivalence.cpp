#include "dd/equivalence.hpp"

#include <gtest/gtest.h>

#include "dd/package.hpp"
#include "guard/error.hpp"
#include "ir/library.hpp"

namespace qdt::dd {
namespace {

ir::Circuit qft_recomposed(std::size_t n) {
  // A structurally different but functionally identical QFT: the same
  // circuit with an inserted identity pair on every qubit.
  ir::Circuit c = ir::qft(n);
  ir::Circuit out(n, "qft_padded");
  for (const auto& op : c.ops()) {
    out.append(op);
  }
  for (ir::Qubit q = 0; q < n; ++q) {
    out.h(q).h(q);  // H H = I
  }
  return out;
}

TEST(DDEquivalence, IdenticalCircuitsAreEquivalent) {
  const auto c = ir::qft(4);
  const auto res = check_equivalence_dd(c, c);
  EXPECT_TRUE(res.equivalent);
}

TEST(DDEquivalence, PaddedCircuitIsEquivalent) {
  const auto res = check_equivalence_dd(ir::qft(4), qft_recomposed(4));
  EXPECT_TRUE(res.equivalent);
}

TEST(DDEquivalence, EquivalentUpToGlobalPhase) {
  ir::Circuit a(2);
  a.z(0);
  ir::Circuit b(2);
  b.rz(Phase::pi(), 0);  // RZ(pi) = -i Z
  EXPECT_TRUE(check_equivalence_dd(a, b).equivalent);
}

TEST(DDEquivalence, ControlledHalfTurnRotationIsSelfEquivalent) {
  // Regression: the miter used Operation::adjoint(), whose wrapped angle
  // at theta == pi is -1 x the true inverse on the controlled block, so
  // cry(pi) refuted its own self-equivalence. The miter now takes the
  // exact conjugate-transpose of the gate DD instead.
  ir::Circuit c(2);
  c.append(ir::Operation{ir::GateKind::RY, {1}, {0}, {Phase::pi()}});
  for (const auto strategy : {EcStrategy::Alternating, EcStrategy::Sequential}) {
    const auto res = check_equivalence_dd(c, c, strategy);
    EXPECT_TRUE(res.equivalent);
  }

  // The merged form a rotation-merging optimizer produces must also prove
  // equal: cry(pi/2) ; cry(pi/2) == cry(pi).
  ir::Circuit halves(2);
  halves.append(ir::Operation{ir::GateKind::RY, {1}, {0}, {Phase::pi_2()}});
  halves.append(ir::Operation{ir::GateKind::RY, {1}, {0}, {Phase::pi_2()}});
  const auto merged = check_equivalence_dd(halves, c);
  EXPECT_TRUE(merged.equivalent);
}

TEST(DDEquivalence, DetectsSingleGateError) {
  ir::Circuit good = ir::qft(4);
  ir::Circuit bad = good;
  bad.x(2);  // injected error
  EXPECT_FALSE(check_equivalence_dd(good, bad).equivalent);
}

TEST(DDEquivalence, DetectsPhaseError) {
  ir::Circuit good = ir::random_clifford_t(4, 50, 0.2, 2);
  ir::Circuit bad = good;
  bad.t(0);  // extra T: relative phase error
  EXPECT_FALSE(check_equivalence_dd(good, bad).equivalent);
}

TEST(DDEquivalence, StrategiesAgree) {
  const auto c1 = ir::random_clifford_t(4, 40, 0.2, 8);
  ir::Circuit c2 = c1;
  for (ir::Qubit q = 0; q < 4; ++q) {
    c2.s(q).sdg(q);
  }
  const auto seq = check_equivalence_dd(c1, c2, EcStrategy::Sequential);
  const auto alt = check_equivalence_dd(c1, c2, EcStrategy::Alternating);
  EXPECT_TRUE(seq.equivalent);
  EXPECT_TRUE(alt.equivalent);
  // Both strategies applied every gate exactly once.
  EXPECT_EQ(seq.gates_applied, alt.gates_applied);
}

TEST(DDEquivalence, AlternatingKeepsMiterSmallForEquivalentCircuits) {
  // For an equivalent pair, the alternating scheme should not need more
  // peak nodes than the sequential scheme (which must build the full QFT
  // unitary).
  const auto c1 = ir::qft(6);
  const auto c2 = qft_recomposed(6);
  const auto seq = check_equivalence_dd(c1, c2, EcStrategy::Sequential);
  const auto alt = check_equivalence_dd(c1, c2, EcStrategy::Alternating);
  EXPECT_TRUE(seq.equivalent);
  EXPECT_TRUE(alt.equivalent);
  EXPECT_LE(alt.peak_nodes, seq.peak_nodes);
}

TEST(DDEquivalence, VerdictSurvivesForcedGarbageCollection) {
  // Equivalence checking builds and tears down miter DDs constantly —
  // exactly the workload where an over-eager collection could free a node
  // the miter still references. Force a collection every few allocations
  // and require the same verdicts as the default configuration.
  const ScopedPackageConfig scope([] {
    PackageConfig cfg;
    cfg.gc_threshold = 8;
    return cfg;
  }());
  EXPECT_TRUE(check_equivalence_dd(ir::qft(4), qft_recomposed(4)).equivalent);
  ir::Circuit bad = ir::qft(4);
  bad.x(2);
  EXPECT_FALSE(check_equivalence_dd(ir::qft(4), bad).equivalent);
}

TEST(DDEquivalence, WidthMismatchIsNotEquivalent) {
  const auto res = check_equivalence_dd(ir::ghz(3), ir::ghz(4));
  EXPECT_FALSE(res.equivalent);
  EXPECT_EQ(res.note, "width mismatch");
}

TEST(DDEquivalence, RejectsNonUnitary) {
  ir::Circuit c(2);
  c.h(0).measure(0);
  try {
    check_equivalence_dd(c, c);
    FAIL() << "expected Error(BadInput)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::BadInput);
  }
}

// A wide, purely one-sided miter (empty rhs) drives the root weight to
// (1/sqrt2)^n before the daggered half can restore it; the power-of-two
// rescaling must keep the scalar out of the complex table's absolute
// tolerance or the 63+-qubit cases falsely refute (the bug the wide
// Clifford fuzz lane caught).
TEST(DDEquivalence, WideHadamardMiterSurvivesRootWeightUnderflow) {
  for (const std::size_t n : {62u, 63u, 64u, 96u}) {
    ir::Circuit hh(n);
    for (std::size_t q = 0; q < n; ++q) {
      hh.h(q);
    }
    for (std::size_t q = 0; q < n; ++q) {
      hh.h(q);
    }
    const ir::Circuit id(n);
    EXPECT_TRUE(check_equivalence_dd(hh, id).equivalent) << n << " qubits";
    ir::Circuit flipped = hh;
    flipped.x(0);
    EXPECT_FALSE(check_equivalence_dd(flipped, id).equivalent)
        << n << " qubits";
  }
}

TEST(DDEquivalenceSimulative, PassesForEquivalent) {
  const auto res = check_equivalence_dd_simulative(ir::qft(4),
                                                   qft_recomposed(4), 8);
  EXPECT_TRUE(res.equivalent);
}

TEST(DDEquivalenceSimulative, CatchesBitError) {
  ir::Circuit good = ir::ghz(4);
  ir::Circuit bad = good;
  bad.x(1);
  const auto res = check_equivalence_dd_simulative(good, bad, 8);
  EXPECT_FALSE(res.equivalent);
  EXPECT_NE(res.note.find("counterexample"), std::string::npos);
}

TEST(DDEquivalenceSimulative, CannotSeeGlobalPhase) {
  // Simulation compares fidelities, so global-phase differences pass (as
  // they should).
  ir::Circuit a(1);
  a.z(0);
  ir::Circuit b(1);
  b.rz(Phase::pi(), 0);
  EXPECT_TRUE(check_equivalence_dd_simulative(a, b, 4).equivalent);
}

}  // namespace
}  // namespace qdt::dd
