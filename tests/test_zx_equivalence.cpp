#include "zx/equivalence.hpp"

#include <gtest/gtest.h>

#include "ir/library.hpp"
#include "transpile/transpiler.hpp"

namespace qdt::zx {
namespace {

TEST(ZxEquivalence, IdenticalCliffordCircuitsByRewriting) {
  const auto c = ir::random_clifford(4, 60, 2);
  const auto res = check_equivalence_zx(c, c);
  EXPECT_EQ(res.verdict, ZxVerdict::Equivalent);
  EXPECT_TRUE(res.decided_by_rewriting);
  EXPECT_LT(res.reduced_spiders, res.initial_spiders);
}

TEST(ZxEquivalence, GhzVariantsAreEquivalent) {
  // Structurally different realizations of the same unitary: the GHZ
  // preparation with redundant gates spliced in everywhere.
  ir::Circuit a = ir::ghz(4);
  ir::Circuit b(4, "ghz_padded");
  b.h(3).s(1).sdg(1).cx(3, 2).h(0).h(0).cx(2, 1).z(2).z(2).cx(1, 0);
  const auto res = check_equivalence_zx(a, b);
  EXPECT_EQ(res.verdict, ZxVerdict::Equivalent);
}

TEST(ZxEquivalence, SameStateDifferentUnitaryIsNotEquivalent) {
  // Both circuits prepare GHZ_4 from |0...0>, but cx(1,0) vs cx(2,0) give
  // different unitaries — functional EC must reject the pair.
  ir::Circuit a = ir::ghz(4);
  ir::Circuit b(4, "ghz_state_only");
  b.h(3).cx(3, 2).cx(2, 1).cx(2, 0);
  const auto res = check_equivalence_zx(a, b);
  EXPECT_EQ(res.verdict, ZxVerdict::NotEquivalent);
}

TEST(ZxEquivalence, DetectsCliffordError) {
  const auto good = ir::random_clifford(4, 50, 5);
  ir::Circuit bad = good;
  bad.z(2);
  const auto res = check_equivalence_zx(good, bad);
  EXPECT_EQ(res.verdict, ZxVerdict::NotEquivalent);
}

TEST(ZxEquivalence, CliffordTEquivalentPair) {
  const auto c = ir::random_clifford_t(4, 50, 0.25, 7);
  ir::Circuit padded = c;
  for (ir::Qubit q = 0; q < 4; ++q) {
    padded.t(q).tdg(q);
  }
  const auto res = check_equivalence_zx(c, padded);
  EXPECT_EQ(res.verdict, ZxVerdict::Equivalent);
}

TEST(ZxEquivalence, DetectsTError) {
  const auto good = ir::random_clifford_t(4, 50, 0.25, 9);
  ir::Circuit bad = good;
  bad.t(1);
  const auto res = check_equivalence_zx(good, bad);
  EXPECT_EQ(res.verdict, ZxVerdict::NotEquivalent);
}

TEST(ZxEquivalence, GlobalPhaseIsIgnored) {
  ir::Circuit a(2);
  a.z(0);
  ir::Circuit b(2);
  b.rz(Phase::pi(), 0);  // -i Z
  const auto res = check_equivalence_zx(a, b);
  EXPECT_EQ(res.verdict, ZxVerdict::Equivalent);
}

TEST(ZxEquivalence, WidthMismatch) {
  const auto res = check_equivalence_zx(ir::ghz(3), ir::ghz(4));
  EXPECT_EQ(res.verdict, ZxVerdict::NotEquivalent);
}

TEST(ZxEquivalence, CompiledCliffordDecidedByRewriting) {
  // With boundary pivots, compiled-Clifford miters reduce all the way to
  // the identity diagram — no tensor fallback needed.
  const auto c = ir::random_clifford(6, 120, 3);
  transpile::Target target{transpile::CouplingMap::line(6),
                           transpile::NativeGateSet::CxRzSxX, "line"};
  const auto compiled = transpile::transpile(c, target);
  const auto res = check_equivalence_zx(
      transpile::padded_original(c, target),
      transpile::restored_for_verification(compiled));
  EXPECT_EQ(res.verdict, ZxVerdict::Equivalent);
  EXPECT_TRUE(res.decided_by_rewriting);
  EXPECT_EQ(res.reduced_spiders, 0U);
}

TEST(ZxEquivalence, VerifiesCompiledCircuit) {
  // The Section I story end-to-end: compile, then verify with ZX.
  const auto c = ir::qft(4);
  transpile::Target target{transpile::CouplingMap::line(4),
                           transpile::NativeGateSet::CxRzSxX, "line"};
  const auto compiled = transpile::transpile(c, target);
  const auto res = check_equivalence_zx(
      transpile::padded_original(c, target),
      transpile::restored_for_verification(compiled));
  EXPECT_EQ(res.verdict, ZxVerdict::Equivalent);
}

TEST(ZxEquivalence, CatchesCompilerInjectedError) {
  const auto c = ir::qft(3);
  transpile::Target target{transpile::CouplingMap::line(3),
                           transpile::NativeGateSet::CxRzSxX, "line"};
  auto compiled = transpile::transpile(c, target);
  compiled.circuit.x(1);  // inject a bug
  const auto res = check_equivalence_zx(
      transpile::padded_original(c, target),
      transpile::restored_for_verification(compiled));
  EXPECT_EQ(res.verdict, ZxVerdict::NotEquivalent);
}

TEST(ZxEquivalence, InconclusiveWithoutFallback) {
  // A non-Clifford pair that rewriting alone cannot close, with the tensor
  // fallback disabled.
  const auto c = ir::random_clifford_t(4, 40, 0.4, 11);
  ir::Circuit variant = c;
  variant.t(0).tdg(0).h(0).h(0);
  const auto res =
      check_equivalence_zx(c, variant, /*max_fallback_qubits=*/0);
  // Either rewriting fully reduces it (fine) or the checker must admit it
  // cannot decide — it must never claim NotEquivalent.
  EXPECT_NE(res.verdict, ZxVerdict::NotEquivalent);
}

}  // namespace
}  // namespace qdt::zx
