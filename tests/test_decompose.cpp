#include "transpile/decompose.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "arrays/dense_unitary.hpp"
#include "common/rng.hpp"
#include "ir/library.hpp"

namespace qdt::transpile {
namespace {

using ir::Circuit;
using ir::GateKind;
using ir::Operation;
using ir::Qubit;

void expect_equivalent(const Circuit& a, const Circuit& b,
                       double eps = 1e-8) {
  const auto ua = arrays::DenseUnitary::from_circuit(a);
  const auto ub = arrays::DenseUnitary::from_circuit(b);
  EXPECT_TRUE(ua.equal_up_to_global_phase(ub, eps))
      << a.name() << " vs " << b.name();
}

TEST(Zyz, RecoversRotationAngles) {
  const Mat2 u = ir::gate_matrix2(GateKind::RZ, {Phase{1, 3}});
  const Zyz z = zyz_decompose(u);
  EXPECT_NEAR(z.gamma, 0.0, 1e-10);
  // beta + delta must equal pi/3 modulo 2 pi.
  const double sum = z.beta + z.delta;
  EXPECT_NEAR(std::remainder(sum - Phase{1, 3}.radians(),
                             2 * std::numbers::pi),
              0.0, 1e-9);
}

TEST(Zyz, ReconstructsArbitraryUnitaries) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    // Random unitary via U3.
    const std::vector<Phase> params = {
        Phase::from_radians(rng.uniform(0, std::numbers::pi)),
        Phase::from_radians(rng.uniform(-3.0, 3.0)),
        Phase::from_radians(rng.uniform(-3.0, 3.0))};
    const Mat2 u = ir::gate_matrix2(GateKind::U, params);
    const Zyz z = zyz_decompose(u);
    const Mat2 rec =
        ir::gate_matrix2(GateKind::RZ, {Phase::from_radians(z.beta)}) *
        ir::gate_matrix2(GateKind::RY, {Phase::from_radians(z.gamma)}) *
        ir::gate_matrix2(GateKind::RZ, {Phase::from_radians(z.delta)}) *
        Complex{std::cos(z.alpha), std::sin(z.alpha)};
    EXPECT_TRUE(approx_equal(u, rec, 1e-8));
  }
}

TEST(DecomposeMultiControlled, ToffoliExact) {
  Circuit c(3);
  c.ccx(0, 1, 2);
  const Circuit d = decompose_multi_controlled(c);
  for (const auto& op : d.ops()) {
    EXPECT_LE(op.num_qubits(), 2U) << op.str();
  }
  expect_equivalent(c, d);
  // The parity construction yields the canonical 7-T realization.
  EXPECT_EQ(d.t_count(), 7U);
}

TEST(DecomposeMultiControlled, CczExact) {
  Circuit c(3);
  c.ccz(0, 1, 2);
  expect_equivalent(c, decompose_multi_controlled(c));
}

TEST(DecomposeMultiControlled, FourControlX) {
  Circuit c(5);
  c.mcx({0, 1, 2, 3}, 4);
  const Circuit d = decompose_multi_controlled(c);
  for (const auto& op : d.ops()) {
    EXPECT_LE(op.num_qubits(), 2U) << op.str();
  }
  expect_equivalent(c, d);
}

TEST(DecomposeMultiControlled, ControlledSwap) {
  Circuit c(3);
  c.cswap(0, 1, 2);
  const Circuit d = decompose_multi_controlled(c);
  for (const auto& op : d.ops()) {
    EXPECT_LE(op.num_qubits(), 2U) << op.str();
  }
  expect_equivalent(c, d);
}

TEST(DecomposeMultiControlled, MultiControlledPhase) {
  Circuit c(4);
  c.append(Operation{GateKind::P, {3}, {0, 1, 2}, {Phase{1, 4}}});
  expect_equivalent(c, decompose_multi_controlled(c));
}

TEST(DecomposeMultiControlled, LeavesOtherGatesAlone) {
  const Circuit c = ir::qft(3);
  EXPECT_EQ(decompose_multi_controlled(c), c);
}

// Each singly-controlled / two-qubit kind must decompose exactly.
class TwoQubitDecompTest
    : public ::testing::TestWithParam<std::pair<Operation, bool>> {};

TEST_P(TwoQubitDecompTest, Exact) {
  const auto& [op, keep_cz] = GetParam();
  Circuit c(3);
  c.append(op);
  const Circuit d = decompose_two_qubit(c, keep_cz);
  for (const auto& g : d.ops()) {
    if (g.num_qubits() == 2) {
      const bool native =
          (g.kind() == GateKind::X || g.kind() == GateKind::Z) &&
          g.controls().size() == 1;
      EXPECT_TRUE(native) << g.str();
      if (!keep_cz) {
        EXPECT_EQ(g.kind(), GateKind::X) << g.str();
      }
    }
  }
  expect_equivalent(c, d);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TwoQubitDecompTest,
    ::testing::Values(
        std::make_pair(Operation{GateKind::Swap, {0, 2}}, false),
        std::make_pair(Operation{GateKind::Swap, {0, 2}}, true),
        std::make_pair(Operation{GateKind::ISwap, {0, 1}}, false),
        std::make_pair(Operation{GateKind::ISwapDg, {1, 2}}, false),
        std::make_pair(Operation{GateKind::RZZ, {0, 1}, {}, {Phase{2, 5}}},
                       false),
        std::make_pair(Operation{GateKind::RXX, {0, 2}, {}, {Phase{1, 3}}},
                       false),
        std::make_pair(Operation{GateKind::Z, {1}, {0}}, false),
        std::make_pair(Operation{GateKind::Z, {1}, {0}}, true),
        std::make_pair(Operation{GateKind::Y, {0}, {2}}, false),
        std::make_pair(Operation{GateKind::H, {2}, {0}}, false),
        std::make_pair(Operation{GateKind::S, {1}, {2}}, false),
        std::make_pair(Operation{GateKind::Sdg, {1}, {0}}, false),
        std::make_pair(Operation{GateKind::T, {0}, {1}}, false),
        std::make_pair(Operation{GateKind::Tdg, {2}, {1}}, false),
        std::make_pair(Operation{GateKind::P, {1}, {0}, {Phase{3, 7}}},
                       false),
        std::make_pair(Operation{GateKind::RZ, {1}, {0}, {Phase{2, 3}}},
                       false),
        std::make_pair(Operation{GateKind::RY, {2}, {0}, {Phase{1, 5}}},
                       false),
        std::make_pair(Operation{GateKind::RX, {0}, {1}, {Phase{4, 9}}},
                       false),
        std::make_pair(Operation{GateKind::SX, {1}, {2}}, false),
        std::make_pair(Operation{GateKind::SXdg, {0}, {2}}, false),
        std::make_pair(
            Operation{GateKind::U, {1}, {0},
                      {Phase{1, 3}, Phase{1, 5}, Phase{2, 7}}},
            false)));

TEST(Rebase1qHzx, PreservesSemantics) {
  const Circuit circuits[] = {
      ir::random_circuit(3, 4, 3),
      ir::w_state(3),
      ir::qft(3),
  };
  for (const auto& c : circuits) {
    const Circuit r = rebase_1q_to_hzx(c);
    expect_equivalent(c, r);
    for (const auto& op : r.ops()) {
      if (op.num_qubits() != 1) {
        continue;
      }
      const bool allowed =
          op.kind() == GateKind::H || op.kind() == GateKind::X ||
          op.kind() == GateKind::SX || op.kind() == GateKind::SXdg ||
          op.kind() == GateKind::RX || op.kind() == GateKind::Z ||
          op.kind() == GateKind::S || op.kind() == GateKind::Sdg ||
          op.kind() == GateKind::T || op.kind() == GateKind::Tdg ||
          op.kind() == GateKind::RZ || op.kind() == GateKind::P;
      EXPECT_TRUE(allowed) << op.str();
    }
  }
}

TEST(Rebase1qZsx, PreservesSemanticsAndBasis) {
  const Circuit circuits[] = {
      ir::random_circuit(3, 4, 9),
      ir::w_state(3),
      ir::grover(3, 5),
  };
  for (const auto& pre : circuits) {
    const Circuit c = decompose_two_qubit(decompose_multi_controlled(pre));
    const Circuit r = rebase_1q_to_zsx(c);
    expect_equivalent(c, r);
    for (const auto& op : r.ops()) {
      if (op.num_qubits() == 1) {
        const bool allowed = op.kind() == GateKind::RZ ||
                             op.kind() == GateKind::SX ||
                             op.kind() == GateKind::X;
        EXPECT_TRUE(allowed) << op.str();
      }
    }
  }
}

TEST(DecomposeMultiControlled, TooManyQubitsThrows) {
  Circuit c(14);
  std::vector<Qubit> ctrls;
  for (Qubit q = 0; q < 13; ++q) {
    ctrls.push_back(q);
  }
  c.mcx(ctrls, 13);
  EXPECT_THROW(decompose_multi_controlled(c), std::invalid_argument);
}

}  // namespace
}  // namespace qdt::transpile
