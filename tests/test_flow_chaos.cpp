// qdt::flow x qdt::chaos — the opt(c) ~ c metamorphic soak.
//
// 500 seeded generator circuits (the same families and adversarial
// mutations the fuzzer uses) run through flow::optimize; for each case the
// optimized circuit must (a) pass the certificate checker — a rejection
// throws Error(Internal) and fails the test on the spot — and (b) produce
// the same dense state as the original on every exact backend, up to the
// global phase the optimizer reports. This is the unit-test twin of the
// `qdt fuzz` opt oracle: deterministic, seed-reproducible, CI-cheap.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fuzzer.hpp"
#include "chaos/generator.hpp"
#include "chaos/oracle.hpp"
#include "common/rng.hpp"
#include "core/tasks.hpp"
#include "flow/opt.hpp"
#include "ir/qasm.hpp"
#include "stab/tableau.hpp"

namespace qdt {
namespace {

constexpr std::size_t kCases = 500;
constexpr double kTolerance = 1e-7;

/// QASM when expressible, op-by-op dump otherwise (the generator emits
/// gates — e.g. controlled-s — that the QASM writer refuses).
std::string describe(const ir::Circuit& c) {
  try {
    return ir::to_qasm(c);
  } catch (...) {
    std::string s;
    for (const auto& op : c.ops()) {
      s += op.str() + "\n";
    }
    return s;
  }
}

std::vector<Complex> state_of(const ir::Circuit& c, core::SimBackend backend) {
  core::SimulateOptions opts;
  opts.shots = 0;
  opts.want_state = true;
  auto res = core::simulate(c, backend, opts);
  return std::move(*res.state);
}

TEST(FlowChaos, OptimizedCircuitsMatchOriginalsAcrossBackends) {
  chaos::GeneratorConfig config;
  config.max_qubits = 5;  // dense cross-backend diffs must stay cheap
  config.max_ops = 48;

  std::size_t rewritten_cases = 0;
  std::size_t total_rewrites = 0;
  for (std::size_t i = 0; i < kCases; ++i) {
    Rng rng(chaos::case_seed(20260808, i));
    const chaos::GeneratedCase generated = chaos::generate_case(rng, config);
    const ir::Circuit original = generated.circuit.unitary_part();
    if (original.empty()) {
      continue;
    }
    SCOPED_TRACE("case " + std::to_string(i) + " (" + generated.family +
                 "):\n" + describe(generated.circuit));

    flow::OptOptions opts;
    opts.compact_wires = false;  // keep widths comparable for the diff
    flow::OptResult res;
    // Certification is on: an unjustified rewrite throws Error(Internal)
    // here and the SCOPED_TRACE above names the offending circuit.
    ASSERT_NO_THROW(res = flow::optimize(original, opts));
    EXPECT_TRUE(res.certified);
    EXPECT_LE(res.gates_after, res.gates_before);
    if (res.rewrites.empty()) {
      continue;
    }
    ++rewritten_cases;
    total_rewrites += res.rewrites.size();

    const std::vector<Complex> reference =
        state_of(original, core::SimBackend::Array);
    for (const auto backend :
         {core::SimBackend::Array, core::SimBackend::DecisionDiagram,
          core::SimBackend::TensorNetwork, core::SimBackend::Mps}) {
      const std::vector<Complex> opt_state = state_of(res.circuit, backend);
      const double dist =
          chaos::state_distance_up_to_phase(reference, opt_state);
      EXPECT_LE(dist, kTolerance)
          << core::backend_name(backend) << " diverged after optimization";
    }

    // Clifford circuits additionally cross-check tableau marginals.
    if (stab::is_clifford_circuit(original) &&
        stab::is_clifford_circuit(res.circuit)) {
      stab::StabilizerSimulator sim(res.circuit.num_qubits());
      sim.run(res.circuit);
      for (std::size_t q = 0; q < original.num_qubits(); ++q) {
        double p_ref = 0.0;
        for (std::size_t k = 0; k < reference.size(); ++k) {
          if ((k >> q) & 1U) {
            p_ref += std::norm(reference[k]);
          }
        }
        EXPECT_NEAR(sim.tableau().prob_one(q), p_ref, kTolerance)
            << "tableau marginal diverged on qubit " << q;
      }
    }
  }
  // The soak is only meaningful if the optimizer actually fires on the
  // generated corpus (adjacent-duplicate mutations guarantee fodder).
  EXPECT_GT(rewritten_cases, kCases / 10);
  EXPECT_GT(total_rewrites, 0u);
}

TEST(FlowChaos, OracleRunsOptCheckAndStaysClean) {
  // The fuzzer-facing oracle with only the opt check enabled must agree on
  // generator output — the in-process version of `qdt fuzz`'s opt oracle.
  chaos::OracleOptions opts;
  opts.equivalence_checks = false;
  opts.stabilizer_check = false;
  opts.max_state_qubits = 5;

  chaos::GeneratorConfig config;
  config.max_qubits = 5;
  for (std::size_t i = 0; i < 50; ++i) {
    Rng rng(chaos::case_seed(4242, i));
    const chaos::GeneratedCase generated = chaos::generate_case(rng, config);
    if (generated.circuit.unitary_part().empty()) {
      continue;  // nothing for the opt oracle to prove
    }
    const chaos::OracleReport report =
        chaos::run_oracle(generated.circuit, opts);
    EXPECT_FALSE(report.is_finding())
        << "case " << i << ": " << report.detail << "\n"
        << describe(generated.circuit);
    bool saw_opt_check = false;
    for (const auto& check : report.checks) {
      if (check.check.rfind("opt:", 0) == 0) {
        saw_opt_check = true;
      }
    }
    EXPECT_TRUE(saw_opt_check) << "opt oracle did not run on case " << i;
  }
}

}  // namespace
}  // namespace qdt
