#include "transpile/transpiler.hpp"

#include <gtest/gtest.h>

#include "dd/equivalence.hpp"
#include "ir/library.hpp"
#include "transpile/decompose.hpp"

namespace qdt::transpile {
namespace {

using ir::Circuit;
using ir::GateKind;

TEST(CouplingMap, LineDistances) {
  const auto cm = CouplingMap::line(5);
  EXPECT_EQ(cm.distance(0, 4), 4U);
  EXPECT_EQ(cm.distance(2, 3), 1U);
  EXPECT_TRUE(cm.connected(1, 2));
  EXPECT_FALSE(cm.connected(0, 2));
}

TEST(CouplingMap, RingWrapsAround) {
  const auto cm = CouplingMap::ring(6);
  EXPECT_EQ(cm.distance(0, 5), 1U);
  EXPECT_EQ(cm.distance(0, 3), 3U);
}

TEST(CouplingMap, GridDistances) {
  const auto cm = CouplingMap::grid(3, 3);
  EXPECT_EQ(cm.distance(0, 8), 4U);  // Manhattan distance
  EXPECT_EQ(cm.distance(0, 4), 2U);
}

TEST(CouplingMap, StarCenter) {
  const auto cm = CouplingMap::star(5);
  EXPECT_EQ(cm.distance(1, 2), 2U);
  EXPECT_EQ(cm.distance(0, 4), 1U);
}

TEST(CouplingMap, HeavyHexIsConnected) {
  const auto cm = CouplingMap::heavy_hex_falcon();
  EXPECT_EQ(cm.num_qubits(), 27U);
  for (ir::Qubit a = 0; a < 27; ++a) {
    for (ir::Qubit b = 0; b < 27; ++b) {
      EXPECT_LT(cm.distance(a, b), 27U);
    }
  }
}

TEST(CouplingMap, ShortestPathEndpoints) {
  const auto cm = CouplingMap::grid(3, 3);
  const auto path = cm.shortest_path(0, 8);
  EXPECT_EQ(path.front(), 0U);
  EXPECT_EQ(path.back(), 8U);
  EXPECT_EQ(path.size(), 5U);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(cm.connected(path[i], path[i + 1]));
  }
}

TEST(CouplingMap, RejectsBadEdges) {
  EXPECT_THROW(CouplingMap(2, {{0, 2}}), std::invalid_argument);
  EXPECT_THROW(CouplingMap(2, {{1, 1}}), std::invalid_argument);
}

class RouterTest : public ::testing::TestWithParam<RouterKind> {};

TEST_P(RouterTest, RoutedCircuitRespectsCoupling) {
  const auto cm = CouplingMap::line(5);
  const Circuit c = decompose_two_qubit(
      decompose_multi_controlled(ir::random_clifford(5, 60, 3)));
  const auto res = route(c, cm, GetParam());
  for (const auto& op : res.circuit.ops()) {
    if (op.num_qubits() == 2) {
      const auto q = op.qubits();
      EXPECT_TRUE(cm.connected(q[0], q[1])) << op.str();
    }
  }
}

TEST_P(RouterTest, RoutedCircuitIsEquivalentAfterLayoutRestore) {
  const auto cm = CouplingMap::line(4);
  const Circuit c = decompose_two_qubit(
      decompose_multi_controlled(ir::qft(4)));
  const auto res = route(c, cm, GetParam());
  const Circuit restored = with_layout_restored(res);
  const auto ec = dd::check_equivalence_dd(c, restored);
  EXPECT_TRUE(ec.equivalent);
}

INSTANTIATE_TEST_SUITE_P(Kinds, RouterTest,
                         ::testing::Values(RouterKind::ShortestPath,
                                           RouterKind::Lookahead),
                         [](const auto& info) {
                           return info.param == RouterKind::ShortestPath
                                      ? "ShortestPath"
                                      : "Lookahead";
                         });

TEST(Router, NoSwapsOnFullConnectivity) {
  const auto cm = CouplingMap::full(4);
  const Circuit c = decompose_two_qubit(
      decompose_multi_controlled(ir::qft(4)));
  const auto res = route(c, cm);
  EXPECT_EQ(res.swaps_inserted, 0U);
}

TEST(Router, RejectsTooWideCircuit) {
  const auto cm = CouplingMap::line(2);
  EXPECT_THROW(route(ir::ghz(3), cm), std::invalid_argument);
}

TEST(Optimize, CancelsInversePairs) {
  Circuit c(2);
  c.h(0).h(0).cx(0, 1).cx(0, 1).t(1).tdg(1);
  OptimizeStats stats;
  const Circuit o = peephole_optimize(c, &stats);
  EXPECT_TRUE(o.empty());
  EXPECT_EQ(stats.cancelled_pairs, 3U);
}

TEST(Optimize, KeepsControlledHalfTurnRotationPairs) {
  // cry(pi) ; cry(pi) is Z-on-control (the wrapped "adjoint" is -1 x the
  // inverse on the controlled block) — cancelling the pair would
  // miscompile. An uncontrolled ry(pi) pair is -I, a pure global phase,
  // and may still cancel.
  Circuit c(2);
  c.append(ir::Operation{ir::GateKind::RY, {1}, {0}, {Phase::pi()}});
  c.append(ir::Operation{ir::GateKind::RY, {1}, {0}, {Phase::pi()}});
  OptimizeStats stats;
  const Circuit o = peephole_optimize(c, &stats);
  EXPECT_EQ(o.size(), 2U);
  EXPECT_EQ(stats.cancelled_pairs, 0U);

  Circuit u(1);
  u.ry(Phase::pi(), 0).ry(Phase::pi(), 0);
  EXPECT_TRUE(peephole_optimize(u).empty());
}

TEST(Optimize, MergesRotations) {
  Circuit c(1);
  c.rz(Phase::pi_4(), 0).rz(Phase::pi_4(), 0);
  const Circuit o = peephole_optimize(c);
  ASSERT_EQ(o.size(), 1U);
  EXPECT_EQ(o[0].params()[0], Phase::pi_2());
}

TEST(Optimize, MergedZeroRotationDisappears) {
  Circuit c(1);
  c.rz(Phase::pi_4(), 0).rz(Phase::minus_pi_4(), 0);
  EXPECT_TRUE(peephole_optimize(c).empty());
}

TEST(Optimize, InterveningGateBlocksCancellation) {
  Circuit c(2);
  c.h(0).cx(0, 1).h(0);
  const Circuit o = peephole_optimize(c);
  EXPECT_EQ(o.size(), 3U);
}

TEST(Optimize, BarrierBlocksCancellation) {
  Circuit c(1);
  c.h(0).barrier().h(0);
  const Circuit o = peephole_optimize(c);
  EXPECT_EQ(o.stats().total_gates, 2U);
}

TEST(Optimize, CascadingCancellation) {
  // t tdg inside h h: inner pair cancels, then outer pair cancels on the
  // next fixpoint pass.
  Circuit c(1);
  c.h(0).t(0).tdg(0).h(0);
  EXPECT_TRUE(peephole_optimize(c).empty());
}

TEST(Optimize, PreservesSemantics) {
  const Circuit c = ir::random_clifford_t(4, 80, 0.2, 17);
  const Circuit o = peephole_optimize(c);
  EXPECT_LE(o.size(), c.size());
  EXPECT_TRUE(dd::check_equivalence_dd(c, o).equivalent);
}

class TranspileEndToEnd
    : public ::testing::TestWithParam<std::pair<const char*, Circuit>> {};

TEST_P(TranspileEndToEnd, NativeAndVerified) {
  const Circuit& c = GetParam().second;
  Target target{CouplingMap::line(c.num_qubits()), NativeGateSet::CxRzSxX,
                "line"};
  const TranspileResult res = transpile(c, target);
  // Native basis check.
  for (const auto& op : res.circuit.ops()) {
    if (op.num_qubits() == 1) {
      const bool ok = op.kind() == GateKind::RZ ||
                      op.kind() == GateKind::SX || op.kind() == GateKind::X;
      EXPECT_TRUE(ok) << op.str();
    } else {
      EXPECT_EQ(op.kind(), GateKind::X);
      EXPECT_EQ(op.controls().size(), 1U);
      EXPECT_TRUE(target.coupling.connected(op.qubits()[0], op.qubits()[1]))
          << op.str();
    }
  }
  // Formal verification: compiled + layout fixup == original.
  const auto ec = dd::check_equivalence_dd(
      padded_original(c, target), restored_for_verification(res));
  EXPECT_TRUE(ec.equivalent) << GetParam().first;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, TranspileEndToEnd,
    ::testing::Values(
        std::make_pair("ghz", ir::ghz(5)),
        std::make_pair("qft", ir::qft(4)),
        std::make_pair("grover", ir::grover(3, 5)),
        std::make_pair("wstate", ir::w_state(4)),
        std::make_pair("adder", ir::ripple_carry_adder(2)),
        std::make_pair("random", ir::random_circuit(4, 4, 23))),
    [](const auto& info) { return std::string(info.param.first); });

TEST(Transpile, CzTargetUsesOnlyCz) {
  Target target{CouplingMap::ring(5), NativeGateSet::CzRzSxX, "ring-cz"};
  const TranspileResult res = transpile(ir::qft(5), target);
  for (const auto& op : res.circuit.ops()) {
    if (op.num_qubits() == 2) {
      EXPECT_EQ(op.kind(), GateKind::Z);
      EXPECT_EQ(op.controls().size(), 1U);
    }
  }
  const auto ec = dd::check_equivalence_dd(
      padded_original(ir::qft(5), target), restored_for_verification(res));
  EXPECT_TRUE(ec.equivalent);
}

TEST(Transpile, HeavyHexTarget) {
  Target target{CouplingMap::heavy_hex_falcon(), NativeGateSet::CxRzSxX,
                "falcon"};
  const auto c = ir::ghz(6);
  const TranspileResult res = transpile(c, target);
  EXPECT_EQ(res.circuit.num_qubits(), 27U);
  const auto ec = dd::check_equivalence_dd(padded_original(c, target),
                                           restored_for_verification(res));
  EXPECT_TRUE(ec.equivalent);
}

TEST(Transpile, OptimizeReducesGateCount) {
  Target target{CouplingMap::line(4), NativeGateSet::CxRzSxX, "line"};
  TranspileOptions with_opt;
  TranspileOptions without_opt;
  without_opt.optimize = false;
  const auto c = ir::qft(4);
  const auto a = transpile(c, target, with_opt);
  const auto b = transpile(c, target, without_opt);
  EXPECT_LE(a.after.total_gates, b.after.total_gates);
}

TEST(Transpile, RejectsMeasuredCircuit) {
  Circuit c(2);
  c.h(0).measure(0);
  Target target{CouplingMap::line(2), NativeGateSet::CxRzSxX, "line"};
  EXPECT_THROW(transpile(c, target), std::invalid_argument);
}

}  // namespace
}  // namespace qdt::transpile
