#include "dd/density.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arrays/density_matrix.hpp"
#include "ir/library.hpp"
#include "testutil.hpp"
#include "testutil_dd.hpp"

namespace qdt::dd {
namespace {

/// Cross-check every entry of the DD density matrix against the dense one.
void expect_matches_dense(DDDensitySimulator& dd_sim,
                          const arrays::DensityMatrix& dense,
                          double eps = 1e-9) {
  const auto got = dd_sim.package().to_matrix(dd_sim.rho());
  const std::size_t dim = dense.dim();
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      ASSERT_NEAR(std::abs(got[r * dim + c] - dense.at(r, c)), 0.0, eps)
          << "(" << r << ", " << c << ")";
    }
  }
  test::expect_dd_refs_ok(dd_sim.package());
}

TEST(DdDensity, InitialStateIsZeroProjector) {
  DDDensitySimulator sim(3);
  EXPECT_NEAR(sim.trace_real(), 1.0, 1e-12);
  EXPECT_NEAR(sim.purity(), 1.0, 1e-12);
  const auto probs = sim.probabilities();
  EXPECT_NEAR(probs[0], 1.0, 1e-12);
}

TEST(DdDensity, UnitaryEvolutionMatchesDense) {
  const ir::Circuit c = ir::random_circuit(3, 4, 13);
  DDDensitySimulator sim(3);
  for (const auto& op : c.ops()) {
    sim.apply(op);
  }
  arrays::DensityMatrix dense(3);
  for (const auto& op : c.ops()) {
    dense.apply(op);
  }
  expect_matches_dense(sim, dense);
}

TEST(DdDensity, NoisyGhzMatchesDense) {
  const auto c = ir::ghz(3);
  const auto nm = arrays::NoiseModel::depolarizing_model(0.05);
  DDDensitySimulator sim(3);
  sim.run(c, nm);
  arrays::DensityMatrix dense(3);
  dense.run(c, nm);
  expect_matches_dense(sim, dense);
  EXPECT_NEAR(sim.trace_real(), 1.0, 1e-9);
  EXPECT_NEAR(sim.purity(), dense.purity(), 1e-9);
}

TEST(DdDensity, AmplitudeDampingMatchesDense) {
  ir::Circuit c(2);
  c.h(0).cx(0, 1);
  arrays::NoiseModel nm;
  nm.gate_noise.push_back(arrays::amplitude_damping(0.3));
  DDDensitySimulator sim(2);
  sim.run(c, nm);
  arrays::DensityMatrix dense(2);
  dense.run(c, nm);
  expect_matches_dense(sim, dense);
}

TEST(DdDensity, MeasurementAndResetChannels) {
  ir::Circuit c(2);
  c.h(0).measure(0).h(1).reset(1);
  DDDensitySimulator sim(2);
  sim.run(c, arrays::NoiseModel{});
  arrays::DensityMatrix dense(2);
  dense.run(c, arrays::NoiseModel{});
  expect_matches_dense(sim, dense);
  // Non-selective measurement halves the purity of qubit 0's branch.
  EXPECT_NEAR(sim.purity(), 0.5, 1e-9);
  EXPECT_NEAR(sim.prob_one(1), 0.0, 1e-9);
}

TEST(DdDensity, ProbOneMatchesDiagonal) {
  const auto c = ir::w_state(3);
  DDDensitySimulator sim(3);
  sim.run(c, arrays::NoiseModel{});
  // W state: each qubit is 1 with probability 1/3.
  for (ir::Qubit q = 0; q < 3; ++q) {
    EXPECT_NEAR(sim.prob_one(q), 1.0 / 3.0, 1e-9) << q;
  }
}

TEST(DdDensity, FidelityAgainstPureReference) {
  const auto c = ir::ghz(3);
  const auto nm = arrays::NoiseModel::depolarizing_model(0.05);
  DDDensitySimulator sim(3);
  sim.run(c, nm);
  // Reference: ideal GHZ as a vector DD in the same package.
  VecEdge psi = sim.package().zero_state();
  for (const auto& op : c.ops()) {
    psi = sim.package().multiply(sim.package().gate_dd(op), psi);
  }
  arrays::DensityMatrix dense(3);
  dense.run(c, nm);
  const auto ideal = test::oracle_state(c);
  EXPECT_NEAR(sim.fidelity(psi), dense.fidelity(ideal), 1e-9);
}

TEST(DdDensity, StructuredMixedStatesStayCompact) {
  // The [13] compactness claim: a GHZ density matrix with uniform
  // depolarizing noise keeps a poly-size DD while the dense object is 4^n.
  const std::size_t n = 10;
  DDDensitySimulator sim(n);
  sim.run(ir::ghz(n), arrays::NoiseModel::depolarizing_model(0.01));
  EXPECT_NEAR(sim.trace_real(), 1.0, 1e-8);
  const std::size_t dense_entries = std::size_t{1} << (2 * n);  // 4^n
  EXPECT_LT(sim.node_count() * 16, dense_entries);
  EXPECT_GT(sim.node_count(), 0U);
}

TEST(DdDensity, PurityDropsWithNoiseStrength) {
  double last = 1.1;
  for (const double p : {0.0, 0.02, 0.05, 0.1}) {
    DDDensitySimulator sim(3);
    sim.run(ir::ghz(3), arrays::NoiseModel::depolarizing_model(p));
    const double purity = sim.purity();
    EXPECT_LT(purity, last) << p;
    last = purity;
  }
}

}  // namespace
}  // namespace qdt::dd
