#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitops.hpp"
#include "common/eps.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "guard/error.hpp"

namespace qdt {
namespace {

TEST(Eps, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.0 + 1e-8));
  EXPECT_TRUE(approx_equal(Complex{1.0, 2.0}, Complex{1.0 + 1e-12, 2.0}));
  EXPECT_TRUE(approx_zero(Complex{1e-12, -1e-12}));
  EXPECT_TRUE(approx_one(Complex{1.0, 0.0}));
  EXPECT_FALSE(approx_one(Complex{0.0, 1.0}));
}

TEST(Bitops, GetSetFlip) {
  EXPECT_TRUE(get_bit(0b1010, 1));
  EXPECT_FALSE(get_bit(0b1010, 0));
  EXPECT_EQ(set_bit(0b1010, 0, true), 0b1011ULL);
  EXPECT_EQ(set_bit(0b1010, 1, false), 0b1000ULL);
  EXPECT_EQ(flip_bit(0b1010, 3), 0b0010ULL);
}

TEST(Bitops, InsertZeroBit) {
  // Inserting at bit 0 doubles the value.
  EXPECT_EQ(insert_zero_bit(0b101, 0), 0b1010ULL);
  // Inserting at bit 1 splits around position 1.
  EXPECT_EQ(insert_zero_bit(0b11, 1), 0b101ULL);
  // Enumerating i < 4 with insertion at bit 1 visits indices with bit1 = 0.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(get_bit(insert_zero_bit(i, 1), 1));
  }
}

TEST(Bitops, InsertTwoZeroBits) {
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto v = insert_two_zero_bits(i, 1, 3);
    EXPECT_FALSE(get_bit(v, 1));
    EXPECT_FALSE(get_bit(v, 3));
  }
  // All results distinct.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 16; ++i) {
    seen.insert(insert_two_zero_bits(i, 1, 3));
  }
  EXPECT_EQ(seen.size(), 16U);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, IndexRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7U);
  }
}

TEST(Rng, IndexOfEmptyRangeIsTypedError) {
  // uniform_int_distribution{0, n - 1} with n == 0 underflows to the full
  // uint64 range (UB); the guard must be a typed BadInput, not a wild index.
  Rng rng(3);
  try {
    rng.index(0);
    FAIL() << "expected BadInput";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::BadInput);
  }
}

TEST(Rng, RandomStateIsNormalized) {
  Rng rng(3);
  const auto v = rng.random_state(64);
  double norm2 = 0.0;
  for (const auto& a : v) {
    norm2 += std::norm(a);
  }
  EXPECT_NEAR(norm2, 1.0, 1e-12);
}

TEST(Matrix, IdentityAndMultiplication) {
  const Mat2 id = Mat2::identity();
  Mat2 x;
  x(0, 1) = 1.0;
  x(1, 0) = 1.0;
  EXPECT_TRUE(approx_equal(x * id, x));
  EXPECT_TRUE(approx_equal(x * x, id));
}

TEST(Matrix, AdjointOfUnitaryIsInverse) {
  Mat2 h;
  h(0, 0) = kInvSqrt2;
  h(0, 1) = kInvSqrt2;
  h(1, 0) = kInvSqrt2;
  h(1, 1) = -kInvSqrt2;
  EXPECT_TRUE(h.is_unitary());
  EXPECT_TRUE(approx_equal(h * h.adjoint(), Mat2::identity()));
}

TEST(Matrix, KronLayout) {
  // kron(A, B): B acts on the less significant bit.
  Mat2 z;
  z(0, 0) = 1.0;
  z(1, 1) = -1.0;
  const Mat4 zi = kron(z, Mat2::identity());
  // Entry (2, 2): high bit = 1 -> Z gives -1.
  EXPECT_TRUE(approx_equal(zi(2, 2), Complex{-1.0}));
  EXPECT_TRUE(approx_equal(zi(1, 1), Complex{1.0}));
}

TEST(Matrix, EqualUpToGlobalPhase) {
  Mat2 s;
  s(0, 0) = 1.0;
  s(1, 1) = Complex{0.0, 1.0};
  const Mat2 scaled = s * Complex{0.0, -1.0};  // -i * S
  EXPECT_TRUE(equal_up_to_global_phase(s, scaled));
  Mat2 z;
  z(0, 0) = 1.0;
  z(1, 1) = -1.0;
  EXPECT_FALSE(equal_up_to_global_phase(s, z));
}

TEST(Matrix, Mat4UnitaryCheck) {
  Mat4 swap;
  swap(0, 0) = 1.0;
  swap(1, 2) = 1.0;
  swap(2, 1) = 1.0;
  swap(3, 3) = 1.0;
  EXPECT_TRUE(swap.is_unitary());
  swap(3, 3) = 0.5;
  EXPECT_FALSE(swap.is_unitary());
}

}  // namespace
}  // namespace qdt
