#include "tn/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ir/library.hpp"
#include "testutil.hpp"

namespace qdt::tn {
namespace {

TEST(Network, BellNetworkStructureMatchesFigure2) {
  // Fig. 2: two input kets + H + CNOT = 4 tensors, memory linear in
  // qubits + gates.
  std::vector<Label> outs;
  TensorNetwork net = circuit_network(ir::bell(), outs);
  EXPECT_EQ(net.num_nodes(), 4U);
  ASSERT_EQ(outs.size(), 2U);
  // Elements: 2 kets (2 each) + H (4) + CNOT (16) = 24.
  EXPECT_EQ(net.total_elements(), 24U);
}

TEST(Network, BellAmplitudes) {
  const auto c = ir::bell();
  EXPECT_NEAR(std::abs(amplitude(c, 0b00) - kInvSqrt2), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(amplitude(c, 0b11) - kInvSqrt2), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(amplitude(c, 0b01)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(amplitude(c, 0b10)), 0.0, 1e-12);
}

TEST(Network, AmplitudesMatchOracleOnFamilies) {
  const ir::Circuit circuits[] = {
      ir::ghz(4),
      ir::qft(4),
      ir::w_state(3),
      ir::random_clifford_t(4, 40, 0.25, 11),
      ir::random_circuit(3, 4, 5),
  };
  for (const auto& c : circuits) {
    const auto expected = test::oracle_state(c);
    for (std::uint64_t b = 0; b < expected.dim(); ++b) {
      EXPECT_NEAR(std::abs(amplitude(c, b) - expected.amplitude(b)), 0.0,
                  1e-8)
          << c.name() << " basis " << b;
    }
  }
}

TEST(Network, SequentialAndGreedyPlansAgree) {
  const auto c = ir::qft(4);
  const auto expected = test::oracle_state(c);
  for (std::uint64_t b : {0ULL, 5ULL, 15ULL}) {
    const Complex g = amplitude(c, b, /*greedy=*/true);
    const Complex s = amplitude(c, b, /*greedy=*/false);
    EXPECT_NEAR(std::abs(g - s), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(g - expected.amplitude(b)), 0.0, 1e-8);
  }
}

TEST(Network, StatevectorMatchesOracle) {
  const auto c = ir::random_circuit(4, 3, 7);
  const auto got = statevector(c);
  const auto expected = test::oracle_state(c);
  ASSERT_EQ(got.size(), 16U);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(std::abs(got[i] - expected.amplitudes()[i]), 0.0, 1e-8)
        << i;
  }
}

TEST(Network, StatsReportPeakIntermediate) {
  ContractionStats seq_stats;
  ContractionStats greedy_stats;
  const auto c = ir::ghz(8);
  amplitude(c, 0, /*greedy=*/false, &seq_stats);
  amplitude(c, 0, /*greedy=*/true, &greedy_stats);
  EXPECT_GT(seq_stats.contractions, 0U);
  EXPECT_GT(greedy_stats.contractions, 0U);
  // For a GHZ amplitude, a good plan never builds a tensor anywhere near
  // the full 2^8 state: the greedy plan caps early.
  EXPECT_LE(greedy_stats.peak_tensor_size, 64U);
  EXPECT_GT(seq_stats.peak_tensor_size, 0U);
}

TEST(Network, ExpectationOfPauliStrings) {
  // GHZ: <Z_i Z_j> = 1, <Z_i> = 0, <X...X> = 1.
  const auto c = ir::ghz(3);
  EXPECT_NEAR(std::abs(expectation(c, "IZZ") - Complex{1.0}), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(expectation(c, "ZZI") - Complex{1.0}), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(expectation(c, "IIZ")), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(expectation(c, "XXX") - Complex{1.0}), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(expectation(c, "III") - Complex{1.0}), 0.0, 1e-9);
}

TEST(Network, ExpectationMatchesDenseOracle) {
  const auto c = ir::random_circuit(3, 3, 21);
  const auto sv = test::oracle_state(c);
  // <Z0> = P(q0=0) - P(q0=1).
  double expect_z0 = 0.0;
  for (std::uint64_t i = 0; i < sv.dim(); ++i) {
    expect_z0 += ((i & 1) == 0 ? 1.0 : -1.0) * std::norm(sv.amplitude(i));
  }
  const Complex got = expectation(c, "IIZ");
  EXPECT_NEAR(got.real(), expect_z0, 1e-8);
  EXPECT_NEAR(got.imag(), 0.0, 1e-8);
}

TEST(Network, ExpectationValidatesLength) {
  EXPECT_THROW(expectation(ir::bell(), "Z"), std::invalid_argument);
  EXPECT_THROW(expectation(ir::bell(), "ZA"), std::invalid_argument);
}

TEST(Network, RejectsNonUnitaryCircuit) {
  ir::Circuit c(1);
  c.h(0).measure(0);
  std::vector<Label> outs;
  EXPECT_THROW(circuit_network(c, outs), std::invalid_argument);
}

TEST(Network, MemoryLinearInGates) {
  // Section IV: the *network* stays linear in qubits + gates even when the
  // state it represents is exponential.
  const auto small = ir::qft(4);
  const auto large = ir::qft(8);
  std::vector<Label> outs;
  const auto net_small = circuit_network(small, outs);
  const auto net_large = circuit_network(large, outs);
  // qft(n) has n H (4 elements) + n(n-1)/2 CP (16) + n/2 SWAP (16) gates
  // + n kets (2 elements).
  const auto expect_elems = [](std::size_t n) {
    return 2 * n + 4 * n + 16 * (n * (n - 1) / 2) + 16 * (n / 2);
  };
  EXPECT_EQ(net_small.total_elements(), expect_elems(4));
  EXPECT_EQ(net_large.total_elements(), expect_elems(8));
}

}  // namespace
}  // namespace qdt::tn
