// Tests for qdt::trace — span identity (id/parent/thread), attribute
// typing, context propagation across qdt::par pool workers at several
// thread counts, the bounded ring with visible drops, both exporters
// (golden Chrome trace-event JSON, JSONL framing), and the plan-vs-actual
// explain report built on top of the trace layer.
//
// The file compiles under both QDT_OBS_ENABLED settings: recording
// assertions are guarded, exporter/report structure assertions are not.
// The multi-thread stress test is the designated ThreadSanitizer target
// (cmake -DQDT_SANITIZE=thread builds this same binary).
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/explain.hpp"
#include "guard/budget.hpp"
#include "ir/circuit.hpp"
#include "par/pool.hpp"

namespace qdt {
namespace {

/// Replace every volatile field of a Chrome trace export — timestamps,
/// durations, and thread ids (compact but process-global, so dependent on
/// which tests ran before this one) — with '#' so the remainder is
/// bit-stable and comparable against a golden literal.
std::string normalize_chrome(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  std::size_t i = 0;
  const auto skip_number = [&]() {
    while (i < json.size() &&
           (std::isdigit(static_cast<unsigned char>(json[i])) != 0 ||
            json[i] == '.' || json[i] == '-' || json[i] == 'e' ||
            json[i] == '+')) {
      ++i;
    }
  };
  while (i < json.size()) {
    for (const char* key : {"\"ts\":", "\"dur\":", "\"tid\":"}) {
      const std::size_t len = std::string_view(key).size();
      if (json.compare(i, len, key) == 0) {
        out += key;
        i += len;
        skip_number();
        out += '#';
      }
    }
    const std::string_view tname = "qdt-thread-";
    if (json.compare(i, tname.size(), tname) == 0) {
      out += tname;
      i += tname.size();
      skip_number();
      out += '#';
    }
    if (i < json.size()) {
      out += json[i++];
    }
  }
  return out;
}

#if QDT_OBS_ENABLED

TEST(Trace, SpanIdsParentsAndTypedAttrs) {
  trace::reset();
  std::uint64_t outer_id = 0;
  {
    trace::Span outer("qdt.test.trace.outer");
    outer_id = outer.id();
    EXPECT_EQ(trace::current_span(), outer_id);
    outer.attr("backend", "dd")
        .attr("qubits", std::int64_t{8})
        .attr("fidelity", 0.75);
    { const trace::Span inner("qdt.test.trace.inner"); }
  }
  EXPECT_EQ(trace::current_span(), 0U);

  const trace::TraceSnapshot snap = trace::snapshot();
  ASSERT_TRUE(snap.enabled);
  ASSERT_EQ(snap.spans.size(), 2U);
  // Completion order: inner first. Ids are 1-based after reset().
  const trace::SpanRecord& inner = snap.spans[0];
  const trace::SpanRecord& outer = snap.spans[1];
  EXPECT_EQ(outer.id, 1U);
  EXPECT_EQ(outer.id, outer_id);
  EXPECT_EQ(outer.parent, 0U);
  EXPECT_EQ(inner.id, 2U);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.thread, outer.thread);
  EXPECT_GE(outer.seconds, inner.seconds);

  ASSERT_EQ(outer.attrs.size(), 3U);
  EXPECT_EQ(outer.attrs[0].key, "backend");
  EXPECT_EQ(outer.attrs[0].kind, trace::Attr::Kind::Str);
  EXPECT_EQ(outer.attrs[0].s, "dd");
  EXPECT_EQ(outer.attrs[1].key, "qubits");
  EXPECT_EQ(outer.attrs[1].kind, trace::Attr::Kind::Int);
  EXPECT_EQ(outer.attrs[1].i, 8);
  EXPECT_EQ(outer.attrs[2].key, "fidelity");
  EXPECT_EQ(outer.attrs[2].kind, trace::Attr::Kind::Float);
  EXPECT_DOUBLE_EQ(outer.attrs[2].f, 0.75);
}

TEST(Trace, ChromeExportMatchesGolden) {
  trace::reset();
  {
    trace::Span parent("qdt.test.golden.parent");
    parent.attr("backend", "dd")
        .attr("qubits", std::int64_t{8})
        .attr("fidelity", 0.5);
    { const trace::Span child("qdt.test.golden.child"); }
  }
  const std::string got = normalize_chrome(trace::to_chrome_json(trace::snapshot()));
  const std::string want =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":#,"
      "\"args\":{\"name\":\"qdt\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":#,"
      "\"args\":{\"name\":\"qdt-thread-#\"}},\n"
      "{\"name\":\"qdt.test.golden.parent\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":#,\"ts\":#,\"dur\":#,\"args\":{\"span_id\":1,\"parent\":0,"
      "\"backend\":\"dd\",\"qubits\":8,\"fidelity\":0.5}},\n"
      "{\"name\":\"qdt.test.golden.child\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":#,\"ts\":#,\"dur\":#,\"args\":{\"span_id\":2,\"parent\":1}}\n"
      "],\"otherData\":{\"spans_dropped\":0}}\n";
  EXPECT_EQ(got, want);
}

/// The acceptance invariant for cross-thread tracing: spans opened inside
/// parallel_for chunk bodies are parented under the submitting span at any
/// thread count, and the span tree does not depend on how many workers
/// served the chunks (the chunk schedule depends only on range and grain).
TEST(Trace, ParallelForChunksParentUnderSubmitter) {
  const std::size_t saved_threads = par::max_threads();
  std::vector<std::size_t> chunk_counts;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    par::set_max_threads(threads);
    trace::reset();
    std::uint64_t outer_id = 0;
    {
      trace::Span outer("qdt.test.trace.submit");
      outer_id = outer.id();
      par::parallel_for(0, 1 << 16, 1 << 10,
                        [](std::size_t begin, std::size_t end) {
                          trace::Span chunk("qdt.test.trace.chunk");
                          chunk.attr("len",
                                     static_cast<std::uint64_t>(end - begin));
                        });
    }
    const trace::TraceSnapshot snap = trace::snapshot();
    std::size_t chunks = 0;
    std::set<std::uint32_t> chunk_threads;
    for (const auto& s : snap.spans) {
      if (s.name != "qdt.test.trace.chunk") {
        continue;
      }
      ++chunks;
      chunk_threads.insert(s.thread);
      // Never a depth-0 orphan: every chunk hangs under the submitter.
      EXPECT_EQ(s.parent, outer_id)
          << "orphan chunk span at threads=" << threads;
    }
    EXPECT_GE(chunks, 1U);
    chunk_counts.push_back(chunks);
    if (threads >= 2) {
      // 64 chunks of 1024 over 2^16 items, regardless of worker count.
      EXPECT_EQ(chunks, 64U) << "threads=" << threads;
    }
  }
  // Identical tree shape at 2 and 8 threads.
  ASSERT_EQ(chunk_counts.size(), 3U);
  EXPECT_EQ(chunk_counts[1], chunk_counts[2]);
  par::set_max_threads(saved_threads);
}

TEST(Trace, ContextScopeAdoptsParentAcrossManualThreads) {
  trace::reset();
  std::uint64_t outer_id = 0;
  {
    trace::Span outer("qdt.test.trace.manual");
    outer_id = outer.id();
    const std::uint64_t parent = trace::current_span();
    std::thread worker([parent] {
      const trace::ContextScope scope(parent);
      const trace::Span inside("qdt.test.trace.adopted");
      (void)inside;
    });
    worker.join();
  }
  const trace::TraceSnapshot snap = trace::snapshot();
  ASSERT_EQ(snap.spans.size(), 2U);
  const trace::SpanRecord& adopted = snap.spans[0];
  const trace::SpanRecord& outer = snap.spans[1];
  EXPECT_EQ(adopted.name, "qdt.test.trace.adopted");
  EXPECT_EQ(adopted.parent, outer_id);
  EXPECT_NE(adopted.thread, outer.thread);
}

TEST(Trace, RingCapDropsNewestAndCountsDrops) {
  const std::size_t saved_cap = trace::capacity();
  trace::set_capacity(4);
  trace::reset();
  for (int i = 0; i < 10; ++i) {
    trace::Span span("qdt.test.trace.cap");
    span.attr("i", std::int64_t{i});
  }
  const trace::TraceSnapshot snap = trace::snapshot();
  EXPECT_EQ(snap.capacity, 4U);
  ASSERT_EQ(snap.spans.size(), 4U);
  EXPECT_EQ(snap.dropped, 6U);
  // Drop-newest: the earliest four completions are the ones kept.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(snap.spans[i].attrs.size(), 1U);
    EXPECT_EQ(snap.spans[i].attrs[0].i, i);
  }
  // The Chrome export surfaces the loss.
  EXPECT_NE(trace::to_chrome_json(snap).find("\"spans_dropped\":6"),
            std::string::npos);
  trace::set_capacity(saved_cap);
  trace::reset();
}

TEST(Trace, JsonlFraming) {
  trace::reset();
  {
    trace::Span a("qdt.test.trace.jsonl");
    a.attr("k", "v");
  }
  { const trace::Span b("qdt.test.trace.jsonl"); }
  const std::string jsonl = trace::to_jsonl(trace::snapshot());
  std::istringstream in(jsonl);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4U);
  EXPECT_EQ(lines[0].rfind("{\"type\":\"header\"", 0), 0U);
  EXPECT_NE(lines[0].find("\"enabled\":true"), std::string::npos);
  EXPECT_EQ(lines[1].rfind("{\"type\":\"span\"", 0), 0U);
  EXPECT_NE(lines[1].find("\"attrs\":{\"k\":\"v\"}"), std::string::npos);
  EXPECT_EQ(lines[2].rfind("{\"type\":\"span\"", 0), 0U);
  EXPECT_EQ(lines[3], "{\"type\":\"summary\",\"spans\":2,\"dropped\":0}");
}

/// ThreadSanitizer target: concurrent recording, snapshotting, exporting,
/// and a reset, all racing. Correctness assertion is just conservation
/// (recorded spans + drops == spans created); the deeper contract is "no
/// data race", which the -DQDT_SANITIZE=thread build of this binary checks.
TEST(Trace, StressManyThreadsRecordSnapshotExport) {
  trace::reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        trace::Span span("qdt.test.trace.stress");
        span.attr("t", static_cast<std::uint64_t>(t));
        if (i % 64 == 0) {
          (void)trace::to_chrome_json(trace::snapshot());
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  const trace::TraceSnapshot snap = trace::snapshot();
  std::size_t stress = 0;
  for (const auto& s : snap.spans) {
    stress += s.name == "qdt.test.trace.stress" ? 1 : 0;
  }
  EXPECT_EQ(stress + snap.dropped, kThreads * kPerThread);
  trace::reset();
}

#endif  // QDT_OBS_ENABLED

TEST(Trace, SnapshotAndExportersLinkInBothBuilds) {
  const trace::TraceSnapshot snap = trace::snapshot();
#if QDT_OBS_ENABLED
  EXPECT_TRUE(snap.enabled);
#else
  EXPECT_FALSE(snap.enabled);
  EXPECT_TRUE(snap.spans.empty());
#endif
  // Exporters produce well-formed framing even on an empty snapshot.
  EXPECT_NE(trace::to_chrome_json(snap).find("\"traceEvents\""),
            std::string::npos);
  EXPECT_NE(trace::to_jsonl(snap).find("\"type\":\"summary\""),
            std::string::npos);
  const trace::Span span("qdt.test.trace.linkage");
  EXPECT_GE(span.seconds(), 0.0);
}

/// 24-qubit nearest-neighbour T chain: too wide for the array backend,
/// non-Clifford (no tableau), low entanglement — the planner leads with a
/// cheap backend, and an injected memory fault on the first rung forces
/// one typed degradation the explain report must narrate.
ir::Circuit chain_circuit() {
  ir::Circuit c(24, "chain24");
  for (std::size_t q = 0; q < 24; ++q) {
    c.h(static_cast<ir::Qubit>(q));
  }
  for (std::size_t q = 0; q + 1 < 24; ++q) {
    c.cx(static_cast<ir::Qubit>(q), static_cast<ir::Qubit>(q + 1));
    c.t(static_cast<ir::Qubit>(q + 1));
  }
  return c;
}

TEST(Trace, ExplainReportsPlanVsActualOnDegradation) {
  guard::clear_faults();
  guard::inject_fault(Resource::Memory, 1);
  core::SimulateOptions opts;
  opts.shots = 0;
  opts.want_state = false;
  const core::ExplainReport rep = core::explain_simulate(chain_circuit(), opts);
  guard::clear_faults();

  // Static side: all five backends costed, a non-empty planned ladder.
  EXPECT_EQ(rep.qubits, 24U);
  EXPECT_EQ(rep.estimates.size(), 5U);
  ASSERT_FALSE(rep.planned_ladder.empty());

  // Dynamic side: the first rung degraded with a typed reason, a later
  // rung carried the run.
  ASSERT_GE(rep.attempts.size(), 2U);
  EXPECT_FALSE(rep.attempts[0].succeeded);
  EXPECT_EQ(rep.attempts[0].code, "resource-exhausted");
  EXPECT_EQ(rep.attempts[0].resource, "memory");
  EXPECT_GE(rep.attempts[0].seconds, 0.0);
  EXPECT_TRUE(rep.attempts.back().succeeded);
  EXPECT_EQ(rep.final_stage, rep.attempts.back().stage);
  EXPECT_EQ(rep.degradations, 1U);
  EXPECT_FALSE(rep.plan_hit);
  EXPECT_TRUE(rep.fatal_code.empty());
  EXPECT_GE(rep.total_seconds, 0.0);

  // Both renderings narrate the degradation.
  const std::string text = core::to_text(rep);
  EXPECT_NE(text.find("DEGRADED [resource-exhausted: memory]"),
            std::string::npos);
  EXPECT_NE(text.find("plan miss"), std::string::npos);
  const std::string json = core::to_json(rep);
  EXPECT_NE(json.find("\"code\":\"resource-exhausted\""), std::string::npos);
  EXPECT_NE(json.find("\"resource\":\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_hit\":false"), std::string::npos);
  EXPECT_NE(json.find("\"degradations\":1"), std::string::npos);
}

TEST(Trace, ExplainCleanRunIsAPlanHit) {
  guard::clear_faults();
  core::SimulateOptions opts;
  opts.shots = 0;
  opts.want_state = false;
  const core::ExplainReport rep = core::explain_simulate(chain_circuit(), opts);
  EXPECT_TRUE(rep.fatal_code.empty());
  EXPECT_EQ(rep.degradations, 0U);
  EXPECT_TRUE(rep.plan_hit);
  ASSERT_EQ(rep.attempts.size(), 1U);
  EXPECT_EQ(rep.attempts[0].stage, rep.planned_ladder.front());
  EXPECT_NE(core::to_text(rep).find("plan hit"), std::string::npos);
}

}  // namespace
}  // namespace qdt
