#include "ir/qasm.hpp"

#include <gtest/gtest.h>

#include "arrays/dense_unitary.hpp"
#include "guard/error.hpp"
#include "ir/library.hpp"

namespace qdt::ir {
namespace {

Circuit library_case(int which);

TEST(Qasm, ParsesMinimalProgram) {
  const auto c = parse_qasm(R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[2];
    creg c[2];
    h q[0];
    cx q[0], q[1];
    measure q[0] -> c[0];
  )");
  EXPECT_EQ(c.num_qubits(), 2U);
  ASSERT_EQ(c.size(), 3U);
  EXPECT_EQ(c[0].kind(), GateKind::H);
  EXPECT_EQ(c[1].kind(), GateKind::X);
  EXPECT_EQ(c[1].controls(), std::vector<Qubit>{0});
  EXPECT_TRUE(c[2].is_measurement());
}

TEST(Qasm, ParsesAngleExpressions) {
  const auto c = parse_qasm(R"(
    OPENQASM 2.0;
    qreg q[1];
    rz(pi/2) q[0];
    rz(-pi/4) q[0];
    rz(3*pi/4) q[0];
    rz(0.5) q[0];
    rz(2*pi/3) q[0];
    p(pi) q[0];
  )");
  ASSERT_EQ(c.size(), 6U);
  EXPECT_EQ(c[0].params()[0], Phase::pi_2());
  EXPECT_EQ(c[1].params()[0], Phase::minus_pi_4());
  EXPECT_EQ(c[2].params()[0], Phase(3, 4));
  EXPECT_NEAR(c[3].params()[0].radians(), 0.5, 1e-9);
  EXPECT_EQ(c[4].params()[0], Phase(2, 3));
  EXPECT_EQ(c[5].params()[0], Phase::pi());
}

TEST(Qasm, ParsesU3AndAliases) {
  const auto c = parse_qasm(R"(
    OPENQASM 2.0;
    qreg q[2];
    u3(pi/2, 0, pi) q[0];
    u1(pi/4) q[1];
    cu1(pi/8) q[0], q[1];
  )");
  ASSERT_EQ(c.size(), 3U);
  EXPECT_EQ(c[0].kind(), GateKind::U);
  EXPECT_EQ(c[1].kind(), GateKind::P);
  EXPECT_EQ(c[2].kind(), GateKind::P);
  EXPECT_EQ(c[2].controls().size(), 1U);
}

TEST(Qasm, ParsesMultiQubitGates) {
  const auto c = parse_qasm(R"(
    OPENQASM 2.0;
    qreg q[3];
    ccx q[0], q[1], q[2];
    swap q[0], q[2];
    cswap q[1], q[0], q[2];
    rzz(pi/3) q[0], q[1];
  )");
  ASSERT_EQ(c.size(), 4U);
  EXPECT_EQ(c[0].controls().size(), 2U);
  EXPECT_EQ(c[1].kind(), GateKind::Swap);
  EXPECT_EQ(c[2].kind(), GateKind::Swap);
  EXPECT_EQ(c[2].controls().size(), 1U);
  EXPECT_EQ(c[3].kind(), GateKind::RZZ);
}

TEST(Qasm, MeasureWholeRegister) {
  const auto c = parse_qasm(R"(
    OPENQASM 2.0;
    qreg q[3];
    creg c[3];
    h q[0];
    measure q -> c;
  )");
  EXPECT_EQ(c.stats().measurements, 3U);
}

TEST(Qasm, CommentsAndWhitespace) {
  const auto c = parse_qasm(
      "OPENQASM 2.0; // header\n"
      "qreg q[1]; // one qubit\n"
      "// a full-line comment\n"
      "  h   q[0]  ;\n");
  EXPECT_EQ(c.size(), 1U);
}

TEST(Qasm, ErrorsHaveLineNumbers) {
  try {
    parse_qasm("OPENQASM 2.0;\nqreg q[1];\nbadgate q[0];\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("qasm:3"), std::string::npos)
        << e.what();
  }
}

TEST(Qasm, OutOfRangeQubitThrows) {
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[2];\n"),
               std::runtime_error);
}

TEST(Qasm, MissingSemicolonThrows) {
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[0]\n"),
               std::runtime_error);
}

TEST(Qasm, RoundTripPreservesSemantics) {
  for (const auto& original :
       {library_case(0), library_case(1), library_case(2)}) {
    const Circuit reparsed = parse_qasm(to_qasm(original));
    ASSERT_EQ(reparsed.num_qubits(), original.num_qubits());
    const auto u1 = arrays::DenseUnitary::from_circuit(original);
    const auto u2 = arrays::DenseUnitary::from_circuit(reparsed);
    EXPECT_TRUE(u1.approx_equal(u2, 1e-8)) << original.name();
  }
}

// Property: parse(to_qasm(c)) reproduces c *structurally* (not just up to
// semantics) for every ir::library family — the contract the fuzz corpus
// replay depends on. Phases must survive exactly: the writer emits the
// rational form "N*pi/D" and the parser reconstructs the same rational.
TEST(Qasm, RoundTripIsExactForEveryLibraryFamily) {
  for (const std::string& family : library_families()) {
    for (std::uint64_t seed : {1ULL, 7ULL}) {
      const Circuit original = make_family(family, 5, seed);
      const Circuit reparsed = parse_qasm(to_qasm(original));
      EXPECT_TRUE(reparsed == original) << family << " seed " << seed;
      // And the fixed point closes: serializing again is bit-identical.
      EXPECT_EQ(to_qasm(reparsed), to_qasm(original)) << family;
    }
  }
}

TEST(Qasm, WriterRejectsTooManyControls) {
  Circuit c(4);
  c.mcx({0, 1, 2}, 3);
  EXPECT_THROW(to_qasm(c), std::runtime_error);
}

// A corpus of malformed programs: each must surface as a structured
// BadInput (never abort, never leak a raw std::exception), and parser
// errors must carry a 1-based line number in the message.
TEST(Qasm, MalformedCorpusYieldsBadInputWithLineNumbers) {
  struct Case {
    const char* src;
    const char* expect_line;  // "qasm:<line>" prefix, or "" if lineless
  };
  const Case corpus[] = {
      {"", ""},                                               // empty input
      {"OPENQASM 2.0;\nh q[0];\n", "qasm:2"},                 // gate pre-qreg
      {"OPENQASM 2.0;\nqreg q[0];\n", "qasm:2"},              // empty reg
      {"OPENQASM 2.0;\nqreg q[x];\n", "qasm:2"},              // bad reg size
      {"OPENQASM 2.0;\nqreg q[2];\nbadgate q[0];\n", "qasm:3"},
      {"OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n", "qasm:3"},    // arity
      {"OPENQASM 2.0;\nqreg q[2];\nh q[7];\n", "qasm:3"},     // range
      {"OPENQASM 2.0;\nqreg q[2];\nh q[x];\n", "qasm:3"},     // bad index
      {"OPENQASM 2.0;\nqreg q[2];\nh q[99999999999999999999];\n",
       "qasm:3"},                                             // stoul overflow
      {"OPENQASM 2.0;\nqreg q[2];\nrz q[0];\n", "qasm:3"},    // missing angle
      {"OPENQASM 2.0;\nqreg q[2];\nrz(nonsense) q[0];\n", "qasm:3"},
      {"OPENQASM 2.0;\nqreg q[2];\nh q[0]", ""},              // missing ';'
  };
  for (const Case& c : corpus) {
    try {
      parse_qasm(c.src);
      FAIL() << "expected BadInput for: " << c.src;
    } catch (const qdt::Error& e) {
      EXPECT_EQ(e.code(), qdt::ErrorCode::BadInput) << c.src;
      if (c.expect_line[0] != '\0') {
        EXPECT_NE(std::string(e.what()).find(c.expect_line),
                  std::string::npos)
            << "wanted '" << c.expect_line << "' in: " << e.what();
      }
    }
  }
}

// Small helper providing unitary circuits for the round-trip test.
Circuit library_case(int which) {
  switch (which) {
    case 0:
      return bell();
    case 1:
      return qft(3);
    default:
      return random_clifford_t(3, 40, 0.25, 5);
  }
}

}  // namespace
}  // namespace qdt::ir
