#include "zx/simplify.hpp"

#include <gtest/gtest.h>

#include "arrays/dense_unitary.hpp"
#include "ir/library.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/tensor_bridge.hpp"

namespace qdt::zx {
namespace {

/// Matrix of a circuit, as a ZXMatrix, for up-to-scalar comparison.
ZXMatrix circuit_matrix(const ir::Circuit& c) {
  const auto u = arrays::DenseUnitary::from_circuit(c);
  ZXMatrix m;
  m.rows = u.dim();
  m.cols = u.dim();
  m.data.resize(u.dim() * u.dim());
  for (std::size_t r = 0; r < u.dim(); ++r) {
    for (std::size_t col = 0; col < u.dim(); ++col) {
      m.data[r * u.dim() + col] = u.at(r, col);
    }
  }
  return m;
}

void expect_semantics(const ZXDiagram& d, const ir::Circuit& c) {
  EXPECT_TRUE(equal_up_to_scalar(to_matrix(d), circuit_matrix(c)))
      << "diagram does not match circuit " << c.name();
}

TEST(ZxTranslate, BellDiagramMatchesFigure3) {
  // Fig. 3a: the Bell circuit as a ZX-diagram: one Z spider (control), one
  // X spider (target), a Hadamard on the control wire.
  const auto c = ir::bell();
  const ZXDiagram d = to_diagram(c);
  EXPECT_EQ(d.num_spiders(), 2U);
  expect_semantics(d, c);
}

// Translation must be faithful for every gate family.
class ZxTranslationTest : public ::testing::TestWithParam<ir::Circuit> {};

TEST_P(ZxTranslationTest, MatchesOracle) {
  const ir::Circuit& c = GetParam();
  expect_semantics(to_diagram(c), c);
}

INSTANTIATE_TEST_SUITE_P(
    Families, ZxTranslationTest,
    ::testing::Values(ir::bell(), ir::ghz(3), ir::qft(3), ir::w_state(3),
                      ir::grover(2, 1), ir::hidden_shift(4, 0b0110),
                      ir::random_clifford(4, 40, 7),
                      ir::random_clifford_t(4, 40, 0.3, 8),
                      ir::random_circuit(3, 3, 9)),
    [](const auto& info) {
      std::string n = info.param.name();
      for (auto& ch : n) {
        if (!isalnum(static_cast<unsigned char>(ch))) {
          ch = '_';
        }
      }
      return n;
    });

TEST(ZxRules, ColorChangePreservesSemantics) {
  const auto c = ir::random_clifford_t(3, 30, 0.3, 4);
  ZXDiagram d = to_diagram(c);
  color_change_to_z(d);
  for (const V v : d.vertices()) {
    EXPECT_NE(d.kind(v), VertexKind::X);
  }
  expect_semantics(d, c);
}

TEST(ZxRules, FusionPreservesSemantics) {
  const auto c = ir::random_clifford_t(3, 30, 0.3, 5);
  ZXDiagram d = to_diagram(c);
  color_change_to_z(d);
  const std::size_t before = d.num_spiders();
  const std::size_t fused = spider_fusion(d);
  EXPECT_GT(fused, 0U);
  EXPECT_EQ(d.num_spiders(), before - fused);
  expect_semantics(d, c);
}

TEST(ZxRules, ToGraphLikeInvariants) {
  const auto c = ir::random_clifford_t(4, 50, 0.25, 6);
  ZXDiagram d = to_diagram(c);
  to_graph_like(d);
  for (const V v : d.vertices()) {
    if (d.is_boundary(v)) {
      ASSERT_EQ(d.degree(v), 1U);
      const auto [n, k] = *d.neighbors(v).begin();
      EXPECT_EQ(k, EdgeKind::Plain);
      continue;
    }
    EXPECT_EQ(d.kind(v), VertexKind::Z);
    for (const auto& [w, k] : d.neighbors(v)) {
      if (d.is_spider(w)) {
        EXPECT_EQ(k, EdgeKind::Hadamard);
      }
    }
  }
  expect_semantics(d, c);
}

TEST(ZxRules, IdentityRemovalPreservesSemantics) {
  const auto c = ir::random_clifford(3, 30, 11);
  ZXDiagram d = to_diagram(c);
  to_graph_like(d);
  remove_identities(d);
  expect_semantics(d, c);
}

TEST(ZxRules, LocalComplementationPreservesSemantics) {
  const auto c = ir::random_clifford(4, 40, 13);
  ZXDiagram d = to_diagram(c);
  to_graph_like(d);
  remove_identities(d);
  spider_fusion(d);
  const std::size_t removed = local_complementation(d);
  EXPECT_GT(removed, 0U);
  expect_semantics(d, c);
}

TEST(ZxRules, PivotPreservesSemantics) {
  const auto c = ir::random_clifford(4, 40, 17);
  ZXDiagram d = to_diagram(c);
  to_graph_like(d);
  remove_identities(d);
  spider_fusion(d);
  local_complementation(d);
  spider_fusion(d);
  remove_identities(d);
  pivoting(d);
  expect_semantics(d, c);
}

TEST(ZxSimplify, CliffordSimpPreservesSemantics) {
  const ir::Circuit circuits[] = {
      ir::random_clifford(4, 60, 19),
      ir::random_clifford_t(4, 60, 0.25, 21),
      ir::qft(3),
      ir::grover(3, 2),
  };
  for (const auto& c : circuits) {
    ZXDiagram d = to_diagram(c);
    clifford_simp(d);
    expect_semantics(d, c);
  }
}

TEST(ZxSimplify, CliffordCircuitReducesToFewSpiders) {
  // [38]: Clifford diagrams reduce to a pseudo normal form whose interior
  // is boundary-adjacent only — spider count O(n), independent of depth.
  const std::size_t n = 4;
  const auto shallow = ir::random_clifford(n, 30, 23);
  const auto deep = ir::random_clifford(n, 300, 23);
  ZXDiagram ds = to_diagram(shallow);
  ZXDiagram dd = to_diagram(deep);
  clifford_simp(ds);
  clifford_simp(dd);
  // Interior simplification leaves only boundary-adjacent spiders (plus
  // the odd interior Pauli wedged between them): a small core whose size
  // is governed by n, not by the circuit depth (30 vs 300 gates).
  EXPECT_LE(ds.num_spiders(), 3 * n);
  EXPECT_LE(dd.num_spiders(), 3 * n);
}

TEST(ZxSimplify, BellDiagramNormalizes) {
  // Example 5 / Fig. 3c: the Bell circuit's graph-like form is tiny (the
  // circuit is already near its normal form, so few rewrites fire — the
  // point is that simplification leaves it small and semantically intact).
  ZXDiagram d = to_diagram(ir::bell());
  const auto stats = clifford_simp(d);
  EXPECT_GE(stats.color_changes, 1U);  // the CX target spider recolors
  EXPECT_LE(d.num_spiders(), 6U);
  expect_semantics(d, ir::bell());
}

TEST(ZxSimplify, BoundaryPivotPreservesSemantics) {
  // Drive a diagram to the interior fixpoint, then fire boundary rules and
  // check the matrix is unchanged (up to scalar).
  const auto c = ir::random_clifford(3, 40, 29);
  ZXDiagram d = to_diagram(c);
  to_graph_like(d);
  remove_identities(d);
  spider_fusion(d);
  local_complementation(d);
  pivoting(d);
  spider_fusion(d);
  remove_identities(d);
  const ZXMatrix before = to_matrix(d);
  // Boundary rules are not strictly decreasing; bound the applications
  // like clifford_simp does.
  for (int round = 0; round < 16 && boundary_pivoting(d) > 0; ++round) {
    spider_fusion(d);
    remove_identities(d);
    local_complementation(d);
    pivoting(d);
  }
  EXPECT_TRUE(equal_up_to_scalar(to_matrix(d), before, 1e-7));
}

TEST(ZxSimplify, TCountNeverIncreases) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto c = ir::random_clifford_t(5, 120, 0.3, seed);
    const std::size_t before = c.t_count();
    const std::size_t after = reduced_t_count(c);
    EXPECT_LE(after, before) << "seed " << seed;
  }
}

TEST(ZxSimplify, CliffordReducesToZeroTCount) {
  const auto c = ir::random_clifford(5, 150, 3);
  EXPECT_EQ(reduced_t_count(c), 0U);
}

TEST(ZxSimplify, AdjacentTsMerge) {
  // T;T = S on the same wire: the fused spider has a Clifford phase, so
  // the reduced T-count drops to zero.
  ir::Circuit c(1);
  c.t(0).t(0);
  EXPECT_EQ(c.t_count(), 2U);
  EXPECT_EQ(reduced_t_count(c), 0U);
}

TEST(ZxSimplify, TsSeparatedByCliffordsStillMerge) {
  // T . Z . T = S . Z up to phase: rewriting finds the merge that a gate-
  // level peephole (blocked by the Z) would miss only if naive.
  ir::Circuit c(1);
  c.t(0).z(0).t(0);
  EXPECT_EQ(reduced_t_count(c), 0U);
}

}  // namespace
}  // namespace qdt::zx
