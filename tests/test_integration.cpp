// Cross-module integration tests: full pipelines that exercise several
// subsystems together, the way a downstream user would.
#include <gtest/gtest.h>

#include "core/qdt.hpp"
#include "testutil.hpp"

namespace qdt {
namespace {

// QASM in -> transpile -> simulate on every backend -> verify against the
// source circuit.
TEST(Pipeline, QasmToCompiledToVerified) {
  const std::string source = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[4];
    h q[0];
    cx q[0], q[1];
    t q[1];
    ccx q[0], q[1], q[2];
    swap q[2], q[3];
    rz(pi/8) q[3];
    cp(pi/4) q[0], q[3];
  )";
  const ir::Circuit circuit = ir::parse_qasm(source);

  transpile::Target target{transpile::CouplingMap::line(4),
                           transpile::NativeGateSet::CxRzSxX, "line"};
  const auto compiled = core::compile_and_verify(circuit, target);
  EXPECT_TRUE(compiled.verification.equivalent);

  // The compiled circuit can be serialized back to QASM and reparsed
  // without changing its meaning.
  const ir::Circuit reparsed =
      ir::parse_qasm(ir::to_qasm(compiled.transpiled.circuit));
  EXPECT_TRUE(core::verify(compiled.transpiled.circuit, reparsed,
                           core::EcMethod::DdAlternating)
                  .equivalent);
}

// Fuzz: random circuits through every backend must agree with the oracle.
class BackendFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackendFuzzTest, AllBackendsAgree) {
  const std::uint64_t seed = GetParam();
  const ir::Circuit c = ir::random_clifford_t(4, 50, 0.25, seed);
  const auto reference = test::oracle_state(c);
  for (const auto backend :
       {core::SimBackend::DecisionDiagram, core::SimBackend::TensorNetwork,
        core::SimBackend::Mps}) {
    const auto res = core::simulate(c, backend);
    ASSERT_TRUE(res.state.has_value());
    for (std::size_t i = 0; i < reference.dim(); ++i) {
      ASSERT_NEAR(std::abs((*res.state)[i] - reference.amplitudes()[i]),
                  0.0, 1e-8)
          << core::backend_name(backend) << " seed " << seed << " amp "
          << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendFuzzTest,
                         ::testing::Range<std::uint64_t>(100, 112));

// Fuzz: compilation must preserve semantics for every workload/topology
// combination.
class CompileFuzzTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CompileFuzzTest, CompiledCircuitVerifies) {
  const auto [topology, seed] = GetParam();
  const ir::Circuit c = ir::random_clifford_t(5, 40, 0.2, seed);
  transpile::Target target{
      topology == 0   ? transpile::CouplingMap::line(5)
      : topology == 1 ? transpile::CouplingMap::ring(5)
                      : transpile::CouplingMap::star(5),
      transpile::NativeGateSet::CxRzSxX, "fuzz"};
  const auto res = core::compile_and_verify(c, target);
  EXPECT_TRUE(res.verification.equivalent)
      << "topology " << topology << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CompileFuzzTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(7ULL, 8ULL, 9ULL)));

// The ZX reduction and the DD simulator must tell the same story: a
// reduced diagram re-evaluated through the tensor bridge matches the DD
// state's unitary action on basis states.
TEST(Pipeline, ZxReductionAgreesWithDdSimulation) {
  const ir::Circuit c = ir::random_clifford_t(3, 40, 0.3, 77);
  zx::ZXDiagram d = zx::to_diagram(c);
  zx::clifford_simp(d);
  const zx::ZXMatrix m = zx::to_matrix(d);

  dd::DDSimulator sim(3);
  sim.run(c);
  const auto state = sim.state_vector();
  // Column 0 of the diagram matrix (up to scalar) is the output state.
  std::size_t kmax = 0;
  double best = 0.0;
  for (std::size_t r = 0; r < 8; ++r) {
    if (std::abs(m.at(r, 0)) > best) {
      best = std::abs(m.at(r, 0));
      kmax = r;
    }
  }
  ASSERT_GT(best, 1e-9);
  const Complex scale = state[kmax] / m.at(kmax, 0);
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(std::abs(state[r] - scale * m.at(r, 0)), 0.0, 1e-8) << r;
  }
}

// Noise story across modules: density matrix (arrays), trajectories
// (arrays), trajectories (DD) all agree on GHZ populations.
TEST(Pipeline, NoiseBackendsAgree) {
  const double p = 0.05;
  const auto c = ir::ghz(3);
  const auto nm = arrays::NoiseModel::depolarizing_model(p);

  arrays::DensityMatrix rho(3);
  rho.run(c, nm);
  const auto exact = rho.probabilities();

  const std::size_t shots = 6000;
  core::SimulateOptions opts;
  opts.noise = nm;
  opts.shots = shots;
  opts.want_state = false;
  opts.seed = 31;
  for (const auto backend :
       {core::SimBackend::Array, core::SimBackend::DecisionDiagram}) {
    const auto res = core::simulate(c, backend, opts);
    for (std::uint64_t word = 0; word < 8; ++word) {
      const double freq =
          res.counts.contains(word)
              ? static_cast<double>(res.counts.at(word)) / shots
              : 0.0;
      EXPECT_NEAR(freq, exact[word], 0.04)
          << core::backend_name(backend) << " word " << word;
    }
  }
}

// Weak simulation consistency: DD sampling matches array-computed
// probabilities on a non-trivial circuit.
TEST(Pipeline, WeakSimulationMatchesStrong) {
  const auto c = ir::w_state(5);
  const auto probs = test::oracle_state(c).probabilities();
  dd::DDSimulator sim(5, 17);
  sim.run(c);
  const std::size_t shots = 20000;
  const auto counts = sim.sample_counts(shots);
  for (const auto& [word, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / shots, probs[word], 0.02)
        << word;
  }
}

// Equivalence checkers cross-validate on randomized pairs: all conclusive
// methods must return the same verdict.
class EcCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcCrossValidation, MethodsAgree) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const ir::Circuit a = ir::random_clifford_t(4, 40, 0.2, seed);
  ir::Circuit b = a;
  const bool make_equal = rng.coin();
  if (make_equal) {
    b.s(1).sdg(1);
  } else {
    b.t(static_cast<ir::Qubit>(rng.index(4)));
  }
  const bool dd_verdict =
      core::verify(a, b, core::EcMethod::DdAlternating).equivalent;
  const bool zx_verdict = core::verify(a, b, core::EcMethod::Zx).equivalent;
  const bool array_verdict =
      core::verify(a, b, core::EcMethod::Array).equivalent;
  EXPECT_EQ(dd_verdict, make_equal) << seed;
  EXPECT_EQ(zx_verdict, make_equal) << seed;
  EXPECT_EQ(array_verdict, make_equal) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcCrossValidation,
                         ::testing::Range<std::uint64_t>(200, 212));

}  // namespace
}  // namespace qdt
