#include "common/phase.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace qdt {
namespace {

TEST(Phase, DefaultIsZero) {
  const Phase p;
  EXPECT_TRUE(p.is_zero());
  EXPECT_EQ(p.num(), 0);
  EXPECT_EQ(p.den(), 1);
  EXPECT_DOUBLE_EQ(p.radians(), 0.0);
}

TEST(Phase, NormalizationReducesFractions) {
  const Phase p{2, 4};
  EXPECT_EQ(p.num(), 1);
  EXPECT_EQ(p.den(), 2);
}

TEST(Phase, NormalizationWrapsIntoHalfOpenInterval) {
  // 3pi -> pi.
  EXPECT_EQ(Phase(3, 1), Phase::pi());
  // -pi -> pi (the interval is (-pi, pi]).
  EXPECT_EQ(Phase(-1, 1), Phase::pi());
  // 5pi/2 -> pi/2.
  EXPECT_EQ(Phase(5, 2), Phase::pi_2());
  // -7pi/4 -> pi/4.
  EXPECT_EQ(Phase(-7, 4), Phase::pi_4());
}

TEST(Phase, NegativeDenominator) {
  const Phase p{1, -2};
  EXPECT_EQ(p, Phase::minus_pi_2());
}

TEST(Phase, ZeroDenominatorThrows) {
  EXPECT_THROW(Phase(1, 0), std::invalid_argument);
}

TEST(Phase, Addition) {
  EXPECT_EQ(Phase::pi_4() + Phase::pi_4(), Phase::pi_2());
  EXPECT_EQ(Phase::pi_2() + Phase::pi_2(), Phase::pi());
  EXPECT_EQ(Phase::pi() + Phase::pi(), Phase::zero());
  EXPECT_EQ(Phase(3, 4) + Phase(3, 4), Phase(-1, 2));
}

TEST(Phase, Subtraction) {
  EXPECT_EQ(Phase::pi_2() - Phase::pi_4(), Phase::pi_4());
  EXPECT_EQ(Phase::zero() - Phase::pi_2(), Phase::minus_pi_2());
}

TEST(Phase, NegationMapsMinusPiToPi) {
  EXPECT_EQ(-Phase::pi(), Phase::pi());
  EXPECT_EQ(-Phase::pi_4(), Phase::minus_pi_4());
}

TEST(Phase, Predicates) {
  EXPECT_TRUE(Phase::zero().is_pauli());
  EXPECT_TRUE(Phase::pi().is_pauli());
  EXPECT_FALSE(Phase::pi_2().is_pauli());
  EXPECT_TRUE(Phase::pi_2().is_clifford());
  EXPECT_TRUE(Phase::pi().is_clifford());
  EXPECT_FALSE(Phase::pi_4().is_clifford());
  EXPECT_TRUE(Phase::pi_2().is_proper_clifford());
  EXPECT_TRUE(Phase::minus_pi_2().is_proper_clifford());
  EXPECT_FALSE(Phase::pi().is_proper_clifford());
}

TEST(Phase, FromRadiansExactForCatalogueAngles) {
  EXPECT_EQ(Phase::from_radians(std::numbers::pi / 4), Phase::pi_4());
  EXPECT_EQ(Phase::from_radians(-std::numbers::pi / 2),
            Phase::minus_pi_2());
  EXPECT_EQ(Phase::from_radians(std::numbers::pi), Phase::pi());
  EXPECT_EQ(Phase::from_radians(0.0), Phase::zero());
  EXPECT_EQ(Phase::from_radians(3 * std::numbers::pi / 4), Phase(3, 4));
}

TEST(Phase, FromRadiansApproximatesContinuousAngles) {
  const double angle = 1.2345678901234;
  const Phase p = Phase::from_radians(angle);
  EXPECT_NEAR(p.radians(), angle, 1e-9);
}

TEST(Phase, FromRadiansRoundTripsManyAngles) {
  for (int i = -200; i <= 200; ++i) {
    const double angle = static_cast<double>(i) * 0.0157;
    const Phase p = Phase::from_radians(angle);
    // Round-tripped value must match modulo 2pi.
    const double two_pi = 2 * std::numbers::pi;
    double diff = std::fmod(p.radians() - angle, two_pi);
    if (diff > std::numbers::pi) {
      diff -= two_pi;
    }
    if (diff < -std::numbers::pi) {
      diff += two_pi;
    }
    EXPECT_NEAR(diff, 0.0, 1e-9) << "angle " << angle;
  }
}

TEST(Phase, StringForms) {
  EXPECT_EQ(Phase::zero().str(), "0");
  EXPECT_EQ(Phase::pi().str(), "pi");
  EXPECT_EQ(Phase::pi_2().str(), "pi/2");
  EXPECT_EQ(Phase::minus_pi_4().str(), "-pi/4");
  EXPECT_EQ(Phase(3, 4).str(), "3pi/4");
}

TEST(Phase, RepeatedAdditionStaysExactForDyadicPhases) {
  Phase acc;
  for (int i = 0; i < 8; ++i) {
    acc += Phase::pi_4();
  }
  EXPECT_EQ(acc, Phase::zero());
}

}  // namespace
}  // namespace qdt
