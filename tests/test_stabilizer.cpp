#include "stab/tableau.hpp"

#include <gtest/gtest.h>

#include "guard/error.hpp"

#include <cmath>

#include "arrays/svsim.hpp"
#include "ir/library.hpp"
#include "testutil.hpp"

namespace qdt::stab {
namespace {

TEST(Tableau, InitialStateStabilizedByZ) {
  const Tableau t(3);
  EXPECT_EQ(t.stabilizer(0).str(), "+IIZ");
  EXPECT_EQ(t.stabilizer(2).str(), "+ZII");
  EXPECT_EQ(t.destabilizer(0).str(), "+IIX");
  EXPECT_EQ(t.pauli_expectation("IIZ"), 1);
  EXPECT_EQ(t.pauli_expectation("IIX"), 0);
}

TEST(Tableau, HadamardMakesPlusState) {
  Tableau t(1);
  t.h(0);
  EXPECT_EQ(t.pauli_expectation("X"), 1);
  EXPECT_EQ(t.pauli_expectation("Z"), 0);
  EXPECT_DOUBLE_EQ(t.prob_one(0), 0.5);
}

TEST(Tableau, SGateRotatesXToY) {
  Tableau t(1);
  t.h(0);
  t.s(0);
  // S|+> is stabilized by +Y.
  EXPECT_EQ(t.pauli_expectation("Y"), 1);
  EXPECT_EQ(t.pauli_expectation("X"), 0);
}

TEST(Tableau, XFlipsExpectation) {
  Tableau t(1);
  t.x(0);
  EXPECT_EQ(t.pauli_expectation("Z"), -1);
  EXPECT_DOUBLE_EQ(t.prob_one(0), 1.0);
}

TEST(Tableau, BellStateStabilizers) {
  Tableau t(2);
  t.h(1);
  t.cx(1, 0);
  EXPECT_EQ(t.pauli_expectation("XX"), 1);
  EXPECT_EQ(t.pauli_expectation("ZZ"), 1);
  EXPECT_EQ(t.pauli_expectation("ZI"), 0);
  EXPECT_EQ(t.pauli_expectation("YY"), -1);
}

TEST(Tableau, GhzCorrelations) {
  StabilizerSimulator sim(4);
  sim.run(ir::ghz(4));
  const auto& t = sim.tableau();
  EXPECT_EQ(t.pauli_expectation("ZZII"), 1);
  EXPECT_EQ(t.pauli_expectation("IIZZ"), 1);
  EXPECT_EQ(t.pauli_expectation("XXXX"), 1);
  EXPECT_EQ(t.pauli_expectation("ZIII"), 0);
}

TEST(Tableau, MeasurementCollapsesAndRepeats) {
  Rng rng(7);
  Tableau t(2);
  t.h(1);
  t.cx(1, 0);
  const bool first = t.measure(0, rng);
  // Perfect correlation after collapse.
  EXPECT_DOUBLE_EQ(t.prob_one(1), first ? 1.0 : 0.0);
  EXPECT_EQ(t.measure(0, rng), first);
  EXPECT_EQ(t.measure(1, rng), first);
}

TEST(Tableau, DeterministicMeasurement) {
  Rng rng(9);
  Tableau t(1);
  t.x(0);
  EXPECT_TRUE(t.measure(0, rng));
  EXPECT_TRUE(t.measure(0, rng));
}

TEST(Tableau, SameStateRecognizesEquivalentPreparations) {
  // |00> + |11> prepared two different ways.
  Tableau a(2);
  a.h(1);
  a.cx(1, 0);
  Tableau b(2);
  b.h(0);
  b.cx(0, 1);
  EXPECT_TRUE(Tableau::same_state(a, b));
  // |00> - |11> is a different state.
  Tableau c(2);
  c.h(1);
  c.cx(1, 0);
  c.z(0);
  EXPECT_FALSE(Tableau::same_state(a, c));
  // Different basis entirely.
  EXPECT_FALSE(Tableau::same_state(a, Tableau(2)));
}

TEST(StabilizerSimulator, MatchesArrayBackendOnSampling) {
  const ir::Circuit circuits[] = {
      ir::ghz(4),
      ir::bell(),
      ir::graph_state(4, {{0, 1}, {1, 2}, {2, 3}}),
  };
  for (const auto& c : circuits) {
    // Compare full-readout distributions.
    const auto probs = test::oracle_state(c).probabilities();
    StabilizerSimulator sim(c.num_qubits(), 5);
    const std::size_t shots = 8000;
    const auto counts = sim.sample_counts(c, shots);
    for (const auto& [word, count] : counts) {
      EXPECT_NEAR(static_cast<double>(count) / shots, probs[word], 0.03)
          << c.name() << " word " << word;
    }
  }
}

TEST(StabilizerSimulator, AgreesWithDenseOnPauliExpectations) {
  // Random Clifford circuits: every single-qubit Z expectation must match
  // the dense oracle.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const ir::Circuit c = ir::random_clifford(5, 60, seed);
    StabilizerSimulator sim(5);
    sim.run(c);
    const auto sv = test::oracle_state(c);
    for (std::size_t q = 0; q < 5; ++q) {
      double expect_z = 0.0;
      for (std::uint64_t i = 0; i < sv.dim(); ++i) {
        expect_z += (((i >> q) & 1) == 0 ? 1.0 : -1.0) *
                    std::norm(sv.amplitude(i));
      }
      std::string paulis(5, 'I');
      paulis[5 - 1 - q] = 'Z';
      EXPECT_NEAR(static_cast<double>(sim.tableau().pauli_expectation(paulis)),
                  expect_z, 1e-9)
          << "seed " << seed << " qubit " << q;
    }
  }
}

TEST(StabilizerSimulator, HandlesCliffordRotationAliases) {
  // rz(pi/2) == S etc. must be accepted and exact.
  ir::Circuit c(1);
  c.h(0).rz(Phase::pi_2(), 0);
  StabilizerSimulator sim(1);
  sim.run(c);
  EXPECT_EQ(sim.tableau().pauli_expectation("Y"), 1);
}

TEST(StabilizerSimulator, DerivedGatesMatchOracle) {
  // iswap / sx / Clifford rotations route through gate decompositions in
  // the tableau driver; validate the full-readout distribution.
  ir::Circuit c(3, "derived");
  c.h(0).iswap(0, 1).sx(2).rz(Phase::pi_2(), 0)
      .ry(Phase::minus_pi_2(), 1).rx(Phase::pi(), 2).cz(1, 2).swap(0, 2);
  ASSERT_TRUE(is_clifford_circuit(c));
  const auto probs = test::oracle_state(c).probabilities();
  StabilizerSimulator sim(3, 17);
  const std::size_t shots = 8000;
  const auto counts = sim.sample_counts(c, shots);
  for (std::uint64_t w = 0; w < 8; ++w) {
    const double freq =
        counts.contains(w) ? static_cast<double>(counts.at(w)) / shots : 0.0;
    EXPECT_NEAR(freq, probs[w], 0.03) << w;
  }
}

TEST(StabilizerSimulator, RejectsNonClifford) {
  ir::Circuit c(1);
  c.t(0);
  StabilizerSimulator sim(1);
  EXPECT_THROW(sim.run(c), qdt::Error);
  EXPECT_FALSE(is_clifford_circuit(c));
  EXPECT_TRUE(is_clifford_circuit(ir::random_clifford(4, 50, 1)));
  EXPECT_FALSE(is_clifford_circuit(ir::qft(3)));
}

TEST(StabilizerSimulator, ScalesToHundredsOfQubits) {
  // The whole point of [11]: width is no obstacle.
  const std::size_t n = 200;
  StabilizerSimulator sim(n, 3);
  sim.run(ir::ghz(n));
  std::string all_z(n, 'Z');
  // Not a stabilizer for odd... Z...Z with even weight: ZZ on neighbors.
  std::string zz(n, 'I');
  zz[0] = 'Z';
  zz[1] = 'Z';
  EXPECT_EQ(sim.tableau().pauli_expectation(zz), 1);
  std::string all_x(n, 'X');
  EXPECT_EQ(sim.tableau().pauli_expectation(all_x), 1);
}

TEST(StabilizerSimulator, MidCircuitMeasurementAndReset) {
  ir::Circuit c(2);
  c.h(0).measure(0).reset(0).measure(0);
  StabilizerSimulator sim(2, 11);
  const auto record = sim.run(c);
  ASSERT_EQ(record.size(), 2U);
  EXPECT_FALSE(record[1].second);  // after reset, measuring gives 0
}

TEST(StabilizerSimulator, EquivalenceViaCanonicalStabilizers) {
  // State-preparation equivalence checking with tableaus: same-state holds
  // exactly for circuits that differ by redundant Cliffords.
  const ir::Circuit a = ir::random_clifford(6, 80, 21);
  ir::Circuit b = a;
  b.s(2).sdg(2).h(4).h(4);
  StabilizerSimulator sa(6);
  sa.run(a);
  StabilizerSimulator sb(6);
  sb.run(b);
  EXPECT_TRUE(Tableau::same_state(sa.tableau(), sb.tableau()));
  ir::Circuit c = a;
  c.x(3);
  StabilizerSimulator sc(6);
  sc.run(c);
  EXPECT_FALSE(Tableau::same_state(sa.tableau(), sc.tableau()));
}

}  // namespace
}  // namespace qdt::stab
