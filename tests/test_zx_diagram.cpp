#include "zx/diagram.hpp"

#include <gtest/gtest.h>

namespace qdt::zx {
namespace {

TEST(ZXDiagram, AddAndRemoveVertices) {
  ZXDiagram d;
  const V a = d.add_vertex(VertexKind::Z, Phase::pi_4());
  const V b = d.add_vertex(VertexKind::X);
  EXPECT_EQ(d.num_vertices(), 2U);
  EXPECT_EQ(d.kind(a), VertexKind::Z);
  EXPECT_EQ(d.phase(a), Phase::pi_4());
  EXPECT_EQ(d.phase(b), Phase::zero());
  d.remove_vertex(a);
  EXPECT_EQ(d.num_vertices(), 1U);
  EXPECT_FALSE(d.alive(a));
  EXPECT_THROW(d.phase(a), std::out_of_range);
}

TEST(ZXDiagram, EdgeBasics) {
  ZXDiagram d;
  const V a = d.add_vertex(VertexKind::Z);
  const V b = d.add_vertex(VertexKind::Z);
  d.add_edge(a, b, EdgeKind::Hadamard);
  EXPECT_TRUE(d.has_edge(a, b));
  EXPECT_TRUE(d.has_edge(b, a));
  EXPECT_EQ(d.edge_kind(a, b), EdgeKind::Hadamard);
  EXPECT_EQ(d.num_edges(), 1U);
  EXPECT_THROW(d.add_edge(a, b), std::invalid_argument);
  EXPECT_THROW(d.add_edge(a, a), std::invalid_argument);
  d.remove_edge(a, b);
  EXPECT_FALSE(d.has_edge(a, b));
  EXPECT_THROW(d.remove_edge(a, b), std::out_of_range);
}

TEST(ZXDiagram, RemoveVertexDetachesEdges) {
  ZXDiagram d;
  const V a = d.add_vertex(VertexKind::Z);
  const V b = d.add_vertex(VertexKind::Z);
  const V c = d.add_vertex(VertexKind::Z);
  d.add_edge(a, b);
  d.add_edge(b, c);
  d.remove_vertex(b);
  EXPECT_EQ(d.degree(a), 0U);
  EXPECT_EQ(d.degree(c), 0U);
  EXPECT_EQ(d.num_edges(), 0U);
}

TEST(ZXDiagram, ToggleHEdge) {
  ZXDiagram d;
  const V a = d.add_vertex(VertexKind::Z);
  const V b = d.add_vertex(VertexKind::Z);
  d.toggle_h_edge(a, b);
  EXPECT_EQ(d.edge_kind(a, b), EdgeKind::Hadamard);
  d.toggle_h_edge(a, b);
  EXPECT_FALSE(d.has_edge(a, b));
  d.add_edge(a, b, EdgeKind::Plain);
  EXPECT_THROW(d.toggle_h_edge(a, b), std::logic_error);
}

TEST(ZXDiagram, SmartSelfLoops) {
  ZXDiagram d;
  const V a = d.add_vertex(VertexKind::Z, Phase::pi_4());
  d.add_edge_smart(a, a, EdgeKind::Plain);
  EXPECT_EQ(d.phase(a), Phase::pi_4());
  d.add_edge_smart(a, a, EdgeKind::Hadamard);
  EXPECT_EQ(d.phase(a), Phase::pi_4() + Phase::pi());
}

TEST(ZXDiagram, SmartParallelHadamardsCancel) {
  ZXDiagram d;
  const V a = d.add_vertex(VertexKind::Z);
  const V b = d.add_vertex(VertexKind::Z);
  d.add_edge(a, b, EdgeKind::Hadamard);
  d.add_edge_smart(a, b, EdgeKind::Hadamard);
  EXPECT_FALSE(d.has_edge(a, b));
}

TEST(ZXDiagram, SmartParallelPlainKeepsOne) {
  ZXDiagram d;
  const V a = d.add_vertex(VertexKind::Z);
  const V b = d.add_vertex(VertexKind::Z);
  d.add_edge(a, b, EdgeKind::Plain);
  d.add_edge_smart(a, b, EdgeKind::Plain);
  EXPECT_TRUE(d.has_edge(a, b));
  EXPECT_EQ(d.num_edges(), 1U);
}

TEST(ZXDiagram, SmartMixedParallelFusesWithPi) {
  ZXDiagram d;
  const V a = d.add_vertex(VertexKind::Z, Phase::pi_4());
  const V b = d.add_vertex(VertexKind::Z, Phase::pi_2());
  d.add_edge(a, b, EdgeKind::Plain);
  d.add_edge_smart(a, b, EdgeKind::Hadamard);
  // The two spiders fused with an extra pi:
  // pi/4 + pi/2 + pi = 7pi/4 == -pi/4 (mod 2pi).
  EXPECT_EQ(d.num_vertices(), 1U);
  EXPECT_EQ(d.phase(a), Phase::minus_pi_4());
}

TEST(ZXDiagram, FusionAddsPhasesAndTransfersEdges) {
  ZXDiagram d;
  const V a = d.add_vertex(VertexKind::Z, Phase::pi_4());
  const V b = d.add_vertex(VertexKind::Z, Phase::pi_4());
  const V c = d.add_vertex(VertexKind::Z);
  d.add_edge(a, b, EdgeKind::Plain);
  d.add_edge(b, c, EdgeKind::Hadamard);
  d.fuse(a, b);
  EXPECT_FALSE(d.alive(b));
  EXPECT_EQ(d.phase(a), Phase::pi_2());
  EXPECT_TRUE(d.has_edge(a, c));
  EXPECT_EQ(d.edge_kind(a, c), EdgeKind::Hadamard);
}

TEST(ZXDiagram, TCountCountsNonClifford) {
  ZXDiagram d;
  d.add_vertex(VertexKind::Z, Phase::pi_4());
  d.add_vertex(VertexKind::Z, Phase::pi_2());
  d.add_vertex(VertexKind::X, Phase{3, 4});
  d.add_vertex(VertexKind::Boundary);
  EXPECT_EQ(d.t_count(), 2U);
  EXPECT_EQ(d.num_spiders(), 3U);
}

TEST(ZXDiagram, AdjointNegatesPhasesAndSwapsBoundaries) {
  ZXDiagram d;
  const V in = d.add_vertex(VertexKind::Boundary);
  const V s = d.add_vertex(VertexKind::Z, Phase::pi_4());
  const V out = d.add_vertex(VertexKind::Boundary);
  d.add_edge(in, s);
  d.add_edge(s, out);
  d.inputs().push_back(in);
  d.outputs().push_back(out);
  const ZXDiagram adj = d.adjoint();
  EXPECT_EQ(adj.phase(s), Phase::minus_pi_4());
  EXPECT_EQ(adj.inputs()[0], out);
  EXPECT_EQ(adj.outputs()[0], in);
}

TEST(ZXDiagram, IsIdentityDetectsWiring) {
  ZXDiagram d;
  const V i0 = d.add_vertex(VertexKind::Boundary);
  const V o0 = d.add_vertex(VertexKind::Boundary);
  d.add_edge(i0, o0, EdgeKind::Plain);
  d.inputs().push_back(i0);
  d.outputs().push_back(o0);
  EXPECT_TRUE(d.is_identity());
  d.set_edge_kind(i0, o0, EdgeKind::Hadamard);
  EXPECT_FALSE(d.is_identity());
}

TEST(ZXDiagram, DotOutput) {
  ZXDiagram d;
  const V a = d.add_vertex(VertexKind::Z, Phase::pi_4());
  const V b = d.add_vertex(VertexKind::X);
  d.add_edge(a, b, EdgeKind::Hadamard);
  const std::string dot = d.to_dot("test");
  EXPECT_NE(dot.find("palegreen"), std::string::npos);
  EXPECT_NE(dot.find("lightcoral"), std::string::npos);
  EXPECT_NE(dot.find("dashed"), std::string::npos);
  EXPECT_NE(dot.find("pi/4"), std::string::npos);
}

}  // namespace
}  // namespace qdt::zx
