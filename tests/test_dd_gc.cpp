// Memory governance of dd::Package: reference counting, garbage
// collection, bounded tables, pooled reuse, and the bitwise GC-on ==
// GC-off guarantee.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dd/package.hpp"
#include "dd/pool.hpp"
#include "dd/simulator.hpp"
#include "guard/budget.hpp"
#include "guard/error.hpp"
#include "ir/library.hpp"
#include "testutil_dd.hpp"

namespace qdt::dd {
namespace {

using test::expect_dd_refs_ok;

PackageConfig config_with(std::size_t gc_threshold,
                          std::size_t unique_table_mb = 0) {
  PackageConfig cfg;
  cfg.gc_threshold = gc_threshold;
  cfg.unique_table_mb = unique_table_mb;
  return cfg;
}

TEST(DdGc, IncRefProtectsRecursivelyAndDecReleases) {
  Package pkg(3);
  const VecEdge ghz = [&] {
    DDSimulator sim(pkg);
    sim.run(ir::ghz(3));
    const VecEdge e = sim.state();
    pkg.inc_ref(e);  // keep it alive past the simulator's dec_ref
    return e;
  }();
  ASSERT_NE(ghz.node, nullptr);
  EXPECT_GE(ghz.node->ref, 1u);

  // A full collection must keep the protected root and its cone intact.
  pkg.collect_garbage();
  const auto before = pkg.to_vector(ghz);
  EXPECT_NEAR(std::abs(before[0]), 1.0 / std::sqrt(2.0), 1e-9);
  expect_dd_refs_ok(pkg);

  // Releasing the root makes the whole cone collectable.
  pkg.dec_ref(ghz);
  pkg.collect_garbage();
  EXPECT_EQ(pkg.live_nodes(), 0u);
  EXPECT_GT(pkg.stats().free_vec_nodes, 0u);
  expect_dd_refs_ok(pkg);
}

TEST(DdGc, DecRefUnderflowThrows) {
  Package pkg(2);
  VecEdge e = pkg.basis_state(1);
  pkg.inc_ref(e);
  pkg.dec_ref(e);
  EXPECT_THROW(pkg.dec_ref(e), Error);
}

TEST(DdGc, CollectReusesFreedSlots) {
  Package pkg(4, config_with(0));  // no automatic GC — explicit only
  {
    DDSimulator sim(pkg);
    sim.run(ir::qft(4));
  }
  const std::size_t storage_before = pkg.stats().unique_vec_nodes +
                                     pkg.stats().free_vec_nodes;
  pkg.collect_garbage();
  ASSERT_GT(pkg.stats().free_vec_nodes, 0u);
  {
    DDSimulator sim(pkg);
    sim.run(ir::qft(4));
  }
  // The second run fed on the free lists: vec storage did not grow.
  EXPECT_EQ(pkg.stats().unique_vec_nodes + pkg.stats().free_vec_nodes,
            storage_before);
  expect_dd_refs_ok(pkg);
}

TEST(DdGc, EnduranceLoopStaysFlat) {
  // The acceptance workload: many circuits through ONE package. GC keeps
  // the live set bounded and the (capacity-based) footprint plateaus.
  Package pkg(8, config_with(512));
  std::size_t warm_footprint = 0;
  for (int iter = 0; iter < 200; ++iter) {
    DDSimulator sim(pkg, /*seed=*/1 + iter);
    switch (iter % 3) {
      case 0: sim.run(ir::ghz(8)); break;
      case 1: sim.run(ir::qft(8)); break;
      default: sim.run(ir::random_circuit(8, 20, 7 + iter % 5)); break;
    }
    ASSERT_LE(pkg.live_nodes(), 8192u) << "live set unbounded at iteration "
                                       << iter;
    if (iter == 49) {
      warm_footprint = pkg.footprint_bytes();
    }
  }
  EXPECT_GT(pkg.stats().gc_runs, 0u);
  EXPECT_GT(pkg.stats().gc_freed_nodes, 0u);
  // Post-warm-up the capacity plateaus: at most 10% growth over the last
  // 150 iterations (a per-iteration leak would compound far past that).
  EXPECT_LE(pkg.footprint_bytes(), warm_footprint + warm_footprint / 10);
  expect_dd_refs_ok(pkg);
}

TEST(DdGc, GcStressedRunIsBitwiseIdenticalToGcDisabled) {
  const ir::Circuit circuit = ir::random_circuit(6, 40, 3).unitary_part();
  const auto run_with = [&](std::size_t gc_threshold) {
    const ScopedPackageConfig scope(config_with(gc_threshold));
    DDSimulator sim(circuit.num_qubits());
    sim.run(circuit);
    sim.package().maybe_collect_garbage();
    expect_dd_refs_ok(sim.package());
    return sim.state_vector();
  };
  const auto stressed = run_with(4);   // collect constantly
  const auto plain = run_with(0);      // never collect
  ASSERT_EQ(stressed.size(), plain.size());
  EXPECT_EQ(std::memcmp(stressed.data(), plain.data(),
                        stressed.size() * sizeof(Complex)),
            0)
      << "garbage collection changed the computed amplitudes";
}

TEST(DdGc, TableBoundCollectsThenThrowsTyped) {
  // A bound far below the live set: collection cannot help, so the typed
  // collect-then-continue error surfaces (robust ladders dispatch on it).
  const ScopedPackageConfig scope(config_with(1 << 16, /*table_mb=*/1));
  DDSimulator sim(14);
  try {
    sim.run(ir::random_circuit(14, 30, 11));
    FAIL() << "expected Error(ResourceExhausted, DdNodes)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::ResourceExhausted);
  }
  expect_dd_refs_ok(sim.package());
}

TEST(DdGc, GuardPressureArmsCollection) {
  // Usage crossing 7/8 of the budget's node cap must arm a collection
  // instead of waiting for the hard throw: with the count trigger off,
  // churning out garbage basis states under a 4096-node budget would
  // blow the cap (every 12-qubit basis state is a fresh ~12-node path)
  // unless pressure-armed collections reclaim them at the safe points.
  guard::Budget budget;
  budget.max_dd_nodes = 4096;
  const guard::BudgetScope scope(budget);
  Package pkg(12, config_with(0));  // count trigger off: pressure only
  for (std::uint64_t i = 0; i < 4096; ++i) {
    (void)pkg.basis_state(i);
    pkg.maybe_collect_garbage();
  }
  EXPECT_GT(pkg.stats().gc_runs, 0u);
  EXPECT_LE(pkg.live_nodes(), 4096u);
  expect_dd_refs_ok(pkg);
}

TEST(DdGc, ComplexTablePinAndSweep) {
  ComplexTable t;
  const auto a = t.lookup(Complex{0.25, 0.75});
  const auto b = t.lookup(Complex{-0.5, 0.125});
  t.pin(a);
  std::vector<char> keep(t.size(), 0);
  t.mark_pinned(keep);
  const std::size_t freed = t.sweep(keep);
  EXPECT_GE(freed, 1u);
  EXPECT_FALSE(t.is_dead(a));
  EXPECT_TRUE(t.is_dead(b));
  EXPECT_FALSE(t.is_dead(ComplexTable::kZero));
  EXPECT_FALSE(t.is_dead(ComplexTable::kOne));

  // Swept slots are recycled by the next lookup, indices stay stable.
  const std::size_t size_before = t.size();
  const auto c = t.lookup(Complex{0.1, 0.9});
  EXPECT_EQ(t.size(), size_before);
  EXPECT_FALSE(t.is_dead(c));

  t.unpin(a);
  EXPECT_THROW(t.unpin(a), Error);
}

TEST(DdGc, ResetKeepsCapacityAndClearsState) {
  Package pkg(6);
  {
    DDSimulator sim(pkg);
    sim.run(ir::qft(6));
  }
  const PackageStats before = pkg.stats();
  const std::size_t slots_before =
      before.unique_vec_nodes + before.free_vec_nodes;
  const std::size_t footprint = pkg.footprint_bytes();
  ASSERT_GT(slots_before, 0u);
  pkg.reset(6);
  EXPECT_EQ(pkg.live_nodes(), 0u);
  EXPECT_EQ(pkg.stats().gc_runs, 0u);
  // Node storage is retained (every slot back on the free list); the
  // footprint can only shrink (caches emptied), never grow.
  EXPECT_EQ(pkg.stats().free_vec_nodes, slots_before);
  EXPECT_LE(pkg.footprint_bytes(), footprint);
  // The reset package is fully usable.
  DDSimulator sim(pkg);
  sim.run(ir::ghz(6));
  EXPECT_NEAR(std::abs(sim.amplitude(0)), 1.0 / std::sqrt(2.0), 1e-9);
  expect_dd_refs_ok(pkg);
}

TEST(DdGc, PoolReusesPackages) {
  trim_pool();
  const Package* first = nullptr;
  {
    PackageLease lease(5);
    first = &lease.get();
    DDSimulator sim(lease.get());
    sim.run(ir::ghz(5));
  }
  EXPECT_EQ(pool_size(), 1u);
  {
    PackageLease lease(7);  // different width: reset, same storage
    EXPECT_EQ(&lease.get(), first);
    EXPECT_EQ(lease->num_qubits(), 7u);
    EXPECT_EQ(lease->live_nodes(), 0u);
  }
  trim_pool();
  EXPECT_EQ(pool_size(), 0u);
}

TEST(DdGc, ScopedConfigOverridesAndRestores) {
  const PackageConfig base = current_package_config();
  {
    const ScopedPackageConfig scope(config_with(17, 3));
    EXPECT_EQ(current_package_config().gc_threshold, 17u);
    EXPECT_EQ(current_package_config().unique_table_mb, 3u);
    const Package pkg(2);
    EXPECT_EQ(pkg.config().gc_threshold, 17u);
  }
  EXPECT_EQ(current_package_config().gc_threshold, base.gc_threshold);
  EXPECT_EQ(current_package_config().unique_table_mb, base.unique_table_mb);
}

TEST(DdGc, RequestGcCollectsAtNextSafePoint) {
  Package pkg(3, config_with(0));
  VecEdge e = pkg.basis_state(5);
  EXPECT_FALSE(pkg.maybe_collect_garbage());
  pkg.request_gc();
  EXPECT_TRUE(pkg.gc_pending());
  EXPECT_TRUE(pkg.maybe_collect_garbage());
  EXPECT_FALSE(pkg.gc_pending());
  // e was never ref-protected, so it was garbage at the safe point.
  EXPECT_EQ(pkg.live_nodes(), 0u);
  (void)e;
  expect_dd_refs_ok(pkg);
}

}  // namespace
}  // namespace qdt::dd
