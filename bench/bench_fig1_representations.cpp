// Experiment fig1 — "Different representations of the Bell state" (paper
// Fig. 1), generalized into a sweep: the same quantum state stored as a
// dense amplitude array (2^n entries) versus a decision diagram (node
// count). Regenerates the figure's message as a series: for structured
// states the DD is exponentially more compact.
//
// Series reported (counters):
//   array_amplitudes — 2^n dense entries
//   dd_nodes         — decision-diagram nodes for the same state
//   compression     — array_amplitudes / dd_nodes
#include <benchmark/benchmark.h>

#include "dd/simulator.hpp"
#include "ir/library.hpp"

namespace {

void run_state_family(benchmark::State& state, const qdt::ir::Circuit& c) {
  const std::size_t n = c.num_qubits();
  std::size_t nodes = 0;
  for (auto _ : state) {
    qdt::dd::DDSimulator sim(n);
    sim.run(c);
    nodes = sim.state_node_count();
    benchmark::DoNotOptimize(nodes);
  }
  const double dense = std::pow(2.0, static_cast<double>(n));
  state.counters["array_amplitudes"] = dense;
  state.counters["dd_nodes"] = static_cast<double>(nodes);
  state.counters["compression"] = dense / static_cast<double>(nodes);
}

void BM_Bell(benchmark::State& state) {
  run_state_family(state, qdt::ir::bell());
}
BENCHMARK(BM_Bell);

void BM_Ghz(benchmark::State& state) {
  run_state_family(state, qdt::ir::ghz(state.range(0)));
}
BENCHMARK(BM_Ghz)->DenseRange(4, 24, 4);

void BM_WState(benchmark::State& state) {
  run_state_family(state, qdt::ir::w_state(state.range(0)));
}
BENCHMARK(BM_WState)->DenseRange(4, 20, 4);

void BM_UniformSuperposition(benchmark::State& state) {
  qdt::ir::Circuit c(state.range(0), "uniform");
  for (qdt::ir::Qubit q = 0; q < c.num_qubits(); ++q) {
    c.h(q);
  }
  run_state_family(state, c);
}
BENCHMARK(BM_UniformSuperposition)->DenseRange(4, 24, 4);

// Unstructured states are the DD worst case: no redundancy to exploit, so
// the node count approaches 2^n and the array representation wins.
void BM_RandomState(benchmark::State& state) {
  run_state_family(state,
                   qdt::ir::random_circuit(state.range(0), 6,
                                           /*seed=*/17));
}
BENCHMARK(BM_RandomState)->DenseRange(4, 10, 2);

}  // namespace

BENCHMARK_MAIN();
