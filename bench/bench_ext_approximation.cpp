// Extension experiment ext-approx — approximation in DD-based simulation
// [12] ("as accurate as needed, as efficient as possible"): trade a bounded
// fidelity loss for node-count reductions by pruning low-contribution
// edges.
//
// Series reported: fidelity and node counts before/after pruning as the
// budget sweeps — the accuracy/size trade-off curve of the cited paper.
#include <benchmark/benchmark.h>

#include "dd/approximation.hpp"
#include "dd/simulator.hpp"
#include "ir/library.hpp"

namespace {

void approx_sweep(benchmark::State& state, const qdt::ir::Circuit& c,
                  double budget) {
  qdt::dd::DDSimulator sim(c.num_qubits());
  sim.run(c);
  const qdt::dd::VecEdge exact = sim.state();
  qdt::dd::ApproxResult res;
  for (auto _ : state) {
    res = qdt::dd::approximate(sim.package(), exact, budget);
    benchmark::DoNotOptimize(res);
  }
  state.counters["budget_pct"] = budget * 100.0;
  state.counters["fidelity"] = res.fidelity;
  state.counters["nodes_before"] = static_cast<double>(res.nodes_before);
  state.counters["nodes_after"] = static_cast<double>(res.nodes_after);
  state.counters["shrink"] =
      res.nodes_after == 0
          ? 0.0
          : static_cast<double>(res.nodes_before) /
                static_cast<double>(res.nodes_after);
}

// Grover's output: one dominant amplitude plus a tiny uniform tail — the
// cited paper's flagship case.
void BM_GroverBudget(benchmark::State& state) {
  approx_sweep(state, qdt::ir::grover(10, 3),
               static_cast<double>(state.range(0)) / 1000.0);
}
BENCHMARK(BM_GroverBudget)->Arg(1)->Arg(5)->Arg(10)->Arg(20)->Arg(50);

// Random states resist approximation (flat spectrum): fidelity is paid
// almost 1:1 for nodes.
void BM_RandomBudget(benchmark::State& state) {
  approx_sweep(state, qdt::ir::random_circuit(10, 8, 3),
               static_cast<double>(state.range(0)) / 1000.0);
}
BENCHMARK(BM_RandomBudget)->Arg(1)->Arg(10)->Arg(50);

// W states: n basis states of equal weight; a budget below 1/n removes
// nothing, above it removes whole branches.
void BM_WStateBudget(benchmark::State& state) {
  approx_sweep(state, qdt::ir::w_state(12),
               static_cast<double>(state.range(0)) / 1000.0);
}
BENCHMARK(BM_WStateBudget)->Arg(10)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
