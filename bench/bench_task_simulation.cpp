// Experiment task-sim — the Section I "classical simulation" design task
// across all four data structures: the same workloads on the array, DD,
// tensor-network, and MPS backends. Wall-clock time is the benchmark value;
// repr_size shows each backend's memory story.
//
// Expected shape: arrays win small dense problems; DDs win structured
// circuits; MPS wins low-entanglement nearest-neighbor circuits; the TN
// amplitude path wins single-amplitude queries.
#include <benchmark/benchmark.h>

#include "arrays/density_matrix.hpp"
#include "bench_json.hpp"
#include "core/tasks.hpp"
#include "ir/library.hpp"

namespace {

using qdt::core::SimBackend;

void sim(benchmark::State& state, const std::string& name,
         const qdt::ir::Circuit& c, SimBackend b) {
  qdt::core::SimulateOptions opts;
  opts.want_state = false;
  opts.shots = 16;
  opts.seed = 3;
  std::size_t repr = 0;
  for (auto _ : state) {
    const auto res = qdt::core::simulate(c, b, opts);
    repr = res.representation_size;
    benchmark::DoNotOptimize(res);
  }
  state.counters["repr_size"] = static_cast<double>(repr);
  state.counters["qubits"] = static_cast<double>(c.num_qubits());
  // One fresh instrumented run for the machine-readable line.
  qdt::obs::reset();
  const auto res = qdt::core::simulate(c, b, opts);
  qdt::bench::emit_json_line("task_simulation", name,
                             qdt::core::backend_name(b), res.seconds,
                             res.representation_size);
}

#define QDT_SIM_BENCH(name, circuit)                                 \
  void BM_##name##_Array(benchmark::State& state) {                  \
    sim(state, #name "_Array", circuit, SimBackend::Array);          \
  }                                                                  \
  BENCHMARK(BM_##name##_Array);                                      \
  void BM_##name##_DD(benchmark::State& state) {                     \
    sim(state, #name "_DD", circuit, SimBackend::DecisionDiagram);   \
  }                                                                  \
  BENCHMARK(BM_##name##_DD);                                         \
  void BM_##name##_TN(benchmark::State& state) {                     \
    sim(state, #name "_TN", circuit, SimBackend::TensorNetwork);     \
  }                                                                  \
  BENCHMARK(BM_##name##_TN);                                         \
  void BM_##name##_MPS(benchmark::State& state) {                    \
    sim(state, #name "_MPS", circuit, SimBackend::Mps);              \
  }                                                                  \
  BENCHMARK(BM_##name##_MPS)

QDT_SIM_BENCH(Ghz16, qdt::ir::ghz(16));
QDT_SIM_BENCH(WState12, qdt::ir::w_state(12));
QDT_SIM_BENCH(Qft12, qdt::ir::qft(12));
QDT_SIM_BENCH(Grover8, qdt::ir::grover(8, 5));
QDT_SIM_BENCH(HiddenShift12, qdt::ir::hidden_shift(12, 0b101010101010));
QDT_SIM_BENCH(Random10, qdt::ir::random_circuit(10, 8, 7));

#undef QDT_SIM_BENCH

// 20-qubit array-backend entries (the other backends' stories at this size
// belong to their own claim benches): the workloads the thread-scaling
// sweep in bench_par_scaling.cpp compares against --threads N.
void BM_Ghz20_Array(benchmark::State& state) {
  sim(state, "Ghz20_Array", qdt::ir::ghz(20), SimBackend::Array);
}
BENCHMARK(BM_Ghz20_Array);
void BM_Qft20_Array(benchmark::State& state) {
  sim(state, "Qft20_Array", qdt::ir::qft(20), SimBackend::Array);
}
BENCHMARK(BM_Qft20_Array);

// Single-amplitude queries: the tensor-network specialty.
void BM_AmplitudeQuery(benchmark::State& state) {
  const auto c = qdt::ir::hidden_shift(16, 0xAAAA);
  const auto backend = static_cast<SimBackend>(state.range(0));
  qdt::Complex a;
  for (auto _ : state) {
    a = qdt::core::amplitude(c, 0xAAAA, backend);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_AmplitudeQuery)
    ->Arg(static_cast<int>(SimBackend::Array))
    ->Arg(static_cast<int>(SimBackend::DecisionDiagram))
    ->Arg(static_cast<int>(SimBackend::TensorNetwork))
    ->Arg(static_cast<int>(SimBackend::Mps));

// Noise-aware simulation (arrays vs DD trajectories) [13].
void BM_NoisyGhzDensityMatrix(benchmark::State& state) {
  const auto c = qdt::ir::ghz(state.range(0));
  const auto nm = qdt::arrays::NoiseModel::depolarizing_model(0.02);
  for (auto _ : state) {
    qdt::arrays::DensityMatrix rho(c.num_qubits());
    rho.run(c, nm);
    benchmark::DoNotOptimize(rho);
  }
}
BENCHMARK(BM_NoisyGhzDensityMatrix)->DenseRange(2, 8, 2);

void BM_NoisyGhzDdTrajectories(benchmark::State& state) {
  const auto c = qdt::ir::ghz(state.range(0));
  const auto nm = qdt::arrays::NoiseModel::depolarizing_model(0.02);
  qdt::core::SimulateOptions opts;
  opts.noise = nm;
  opts.want_state = false;
  opts.shots = 8;
  for (auto _ : state) {
    const auto res =
        qdt::core::simulate(c, SimBackend::DecisionDiagram, opts);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_NoisyGhzDdTrajectories)->DenseRange(2, 8, 2);

}  // namespace

BENCHMARK_MAIN();
