// Experiment clm4 — Section V's claim: graph-like rewriting terminates and
// shrinks quantum circuits; in particular it reduces the T-count of
// Clifford+T circuits [39], the dominant cost metric for fault tolerance.
//
// Series reported:
//   t_before / t_after — non-Clifford phase count of the translated diagram
//                        before vs after clifford_simp
//   reduction_pct      — percentage removed
//   spiders_after      — residual diagram size
#include <benchmark/benchmark.h>

#include "ir/library.hpp"
#include "transpile/decompose.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/simplify.hpp"

namespace {

void tcount(benchmark::State& state, const qdt::ir::Circuit& c) {
  // Apples-to-apples metric: non-Clifford phases in the translated diagram
  // before simplification (a raw Toffoli carries its T phases only after
  // lowering, and Grover oracles carry pi/2^k phases that are finer than
  // literal T gates).
  const std::size_t before = qdt::zx::to_diagram(c).t_count();
  std::size_t after = 0;
  std::size_t spiders = 0;
  for (auto _ : state) {
    qdt::zx::ZXDiagram d = qdt::zx::to_diagram(c);
    qdt::zx::clifford_simp(d);
    after = d.t_count();
    spiders = d.num_spiders();
    benchmark::DoNotOptimize(d);
  }
  state.counters["t_before"] = static_cast<double>(before);
  state.counters["t_after"] = static_cast<double>(after);
  state.counters["reduction_pct"] =
      before == 0 ? 0.0
                  : 100.0 * static_cast<double>(before - after) /
                        static_cast<double>(before);
  state.counters["spiders_after"] = static_cast<double>(spiders);
}

// Sweep the T-gate density at fixed size.
void BM_TFraction(benchmark::State& state) {
  const double frac = static_cast<double>(state.range(0)) / 100.0;
  tcount(state, qdt::ir::random_clifford_t(8, 300, frac, /*seed=*/13));
}
BENCHMARK(BM_TFraction)->Arg(5)->Arg(10)->Arg(20)->Arg(30)->Arg(50);

// Sweep the circuit size at fixed density.
void BM_CircuitSize(benchmark::State& state) {
  tcount(state,
         qdt::ir::random_clifford_t(8, state.range(0), 0.2, /*seed=*/29));
}
BENCHMARK(BM_CircuitSize)->RangeMultiplier(2)->Range(64, 1024);

// Toffoli-heavy arithmetic: the adder decomposes into many T gates; ZX
// recovers a sizeable fraction.
void BM_RippleCarryAdder(benchmark::State& state) {
  tcount(state, qdt::ir::ripple_carry_adder(state.range(0)));
}
BENCHMARK(BM_RippleCarryAdder)->DenseRange(2, 6, 1);

void BM_GroverTCount(benchmark::State& state) {
  tcount(state, qdt::ir::grover(state.range(0), 1));
}
BENCHMARK(BM_GroverTCount)->DenseRange(3, 6, 1);

// Pure Clifford control group: everything must evaporate to T-count 0.
void BM_CliffordControl(benchmark::State& state) {
  tcount(state, qdt::ir::random_clifford(8, state.range(0), 31));
}
BENCHMARK(BM_CliffordControl)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
