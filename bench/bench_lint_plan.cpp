// Experiment lint-plan — how fast is the static pass, and is its ranking
// worth trusting? For each ir::library family the benchmark measures
// lint::analyze + plan_backends wall-clock (the "pay once before choosing"
// overhead) and reports the predicted-cheapest backend alongside the cost
// spread, so drift in the cost model is visible in the bench series.
//
// Expected shape: analysis stays microseconds-to-milliseconds while the
// simulations it arbitrates between span orders of magnitude — i.e. the
// plan pays for itself the first time it avoids one wasted ladder rung.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_json.hpp"
#include "ir/library.hpp"
#include "lint/lint.hpp"
#include "obs/obs.hpp"

namespace {

using qdt::lint::PlanConstraints;

void lint_plan(benchmark::State& state, const std::string& name,
               const qdt::ir::Circuit& c, bool want_state) {
  PlanConstraints pc;
  pc.want_state = want_state;
  qdt::lint::BackendPlan plan;
  for (auto _ : state) {
    plan = qdt::lint::plan_backends(qdt::lint::analyze(c), pc);
    benchmark::DoNotOptimize(plan);
  }
  state.counters["qubits"] = static_cast<double>(c.num_qubits());
  state.counters["gates"] = static_cast<double>(c.size());
  state.counters["best_cost_log2"] =
      plan.estimates.empty() ? 0.0 : plan.estimates.front().cost_log2;
  // One fresh instrumented run for the machine-readable line; the "size"
  // column carries the analyzed gate count.
  qdt::obs::reset();
  const qdt::obs::Stopwatch sw;
  const auto fresh = qdt::lint::plan_backends(qdt::lint::analyze(c), pc);
  qdt::bench::emit_json_line(
      "lint_plan", name,
      fresh.preferred_order.empty()
          ? "none"
          : qdt::lint::backend_label(fresh.preferred_order.front()),
      sw.seconds(), c.size());
}

#define QDT_LINT_BENCH(name, circuit, want_state)         \
  void BM_##name(benchmark::State& state) {               \
    lint_plan(state, #name, circuit, want_state);         \
  }                                                       \
  BENCHMARK(BM_##name);

QDT_LINT_BENCH(Ghz24_Sample, qdt::ir::ghz(24), false)
QDT_LINT_BENCH(Qft12_State, qdt::ir::qft(12), true)
QDT_LINT_BENCH(Clifford24_Sample, qdt::ir::random_clifford(24, 200, 3),
               false)
QDT_LINT_BENCH(CliffordT24_Sample,
               qdt::ir::random_clifford_t(24, 200, 0.2, 3), false)
QDT_LINT_BENCH(Random10_State, qdt::ir::random_circuit(10, 40, 7), true)

}  // namespace

BENCHMARK_MAIN();
