// Machine-readable companion output for the bench_task_* executables.
//
// Next to the human-oriented google-benchmark table, each task benchmark
// records one JSON line per configuration:
//
//   BENCH_task_simulation.json {"name":"Ghz16_DD","backend":...,
//     "representation_size":7,"seconds":3.1e-4,"counters":{...}}
//
// The counters object holds every nonzero qdt::obs counter accumulated by
// a single fresh run (the registry is reset beforehand), so a line carries
// the backend-level explanation of its own timing: unique-table hit rates
// for DDs, contraction FLOPs for tensor networks, swap counts for the
// transpiler. Lines are deduplicated by name and flushed once at process
// exit; `grep ^BENCH_ | cut -d' ' -f2-` turns a bench log into a JSON
// stream. In QDT_OBS_ENABLED=OFF builds the counters object is empty but
// the timing fields remain.
#pragma once

#include <cstdint>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "obs/obs.hpp"

namespace qdt::bench {

/// Collects one line per benchmark name; prints them on destruction (at
/// static teardown, after BENCHMARK_MAIN's reporting is done).
class JsonLines {
 public:
  static JsonLines& instance() {
    static JsonLines lines;
    return lines;
  }

  void record(const std::string& name, std::string line) {
    lines_[name] = std::move(line);
  }

  ~JsonLines() {
    for (const auto& [name, line] : lines_) {
      std::cout << line << "\n";
    }
  }

 private:
  JsonLines() = default;
  std::map<std::string, std::string> lines_;
};

/// Record one BENCH_<tag>.json line. `seconds` should come from a single
/// fresh run made after obs::reset(), so the snapshot's counters describe
/// exactly that run. `rss_peak_mb` is the process-lifetime getrusage
/// high-water mark — comparable across lines only as an upper bound, but
/// exactly what a memory-wall sweep needs.
inline void emit_json_line(const std::string& tag, const std::string& name,
                           const std::string& backend, double seconds,
                           std::uint64_t representation_size) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  obs::sample_process_rss();
  const std::int64_t rss_peak_mb =
      obs::gauge("qdt.process.mem.rss_peak_mb").value();
  os << "BENCH_" << tag << ".json {\"name\":\"" << name << "\",\"backend\":\""
     << backend << "\",\"representation_size\":" << representation_size
     << ",\"seconds\":" << seconds << ",\"rss_peak_mb\":" << rss_peak_mb
     << ",\"counters\":{";
  const obs::Snapshot snap = obs::snapshot();
  bool first = true;
  for (const auto& c : snap.counters) {
    if (c.value == 0) {
      continue;
    }
    os << (first ? "" : ",") << '"' << c.name << "\":" << c.value;
    first = false;
  }
  os << "}}";
  JsonLines::instance().record(name, os.str());
}

}  // namespace qdt::bench
