// Experiment fig3 — "ZX-diagrams for the Bell state" (paper Fig. 3) plus
// the Section V rewriting story: translate circuits to ZX-diagrams, convert
// to graph-like form, and run the terminating simplification procedure.
//
// Series reported:
//   spiders_before / spiders_after — diagram size around clifford_simp
//   rewrites                      — rule applications until the fixpoint
#include <benchmark/benchmark.h>

#include "ir/library.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/simplify.hpp"

namespace {

void reduce(benchmark::State& state, const qdt::ir::Circuit& c) {
  std::size_t before = 0;
  std::size_t after = 0;
  std::size_t rewrites = 0;
  for (auto _ : state) {
    qdt::zx::ZXDiagram d = qdt::zx::to_diagram(c);
    before = d.num_spiders();
    const auto stats = qdt::zx::clifford_simp(d);
    after = d.num_spiders();
    rewrites = stats.total();
    benchmark::DoNotOptimize(d);
  }
  state.counters["spiders_before"] = static_cast<double>(before);
  state.counters["spiders_after"] = static_cast<double>(after);
  state.counters["rewrites"] = static_cast<double>(rewrites);
}

void BM_Bell(benchmark::State& state) { reduce(state, qdt::ir::bell()); }
BENCHMARK(BM_Bell);

void BM_Ghz(benchmark::State& state) {
  reduce(state, qdt::ir::ghz(state.range(0)));
}
BENCHMARK(BM_Ghz)->DenseRange(4, 16, 4);

// Clifford circuits collapse to a depth-independent boundary core — the
// headline of graph-theoretic simplification [38].
void BM_RandomClifford(benchmark::State& state) {
  reduce(state,
         qdt::ir::random_clifford(8, state.range(0), /*seed=*/5));
}
BENCHMARK(BM_RandomClifford)->RangeMultiplier(2)->Range(64, 1024);

// With T gates the non-Clifford spiders survive, but the Clifford bulk
// still evaporates.
void BM_RandomCliffordT(benchmark::State& state) {
  reduce(state, qdt::ir::random_clifford_t(8, state.range(0), 0.2,
                                           /*seed=*/6));
}
BENCHMARK(BM_RandomCliffordT)->RangeMultiplier(2)->Range(64, 512);

void BM_Qft(benchmark::State& state) {
  reduce(state, qdt::ir::qft(state.range(0)));
}
BENCHMARK(BM_Qft)->DenseRange(4, 10, 2);

void BM_HiddenShift(benchmark::State& state) {
  reduce(state, qdt::ir::hidden_shift(state.range(0), 0b1011));
}
BENCHMARK(BM_HiddenShift)->DenseRange(4, 12, 4);

}  // namespace

BENCHMARK_MAIN();
