// Experiment clm3 — Section IV's claim: the cost of tensor-network
// contraction is decided by the contraction plan (finding the optimal one
// is NP-hard [33]); good heuristics [34] keep intermediate tensors and bond
// dimensions in check.
//
// The sweep contracts single-amplitude networks with the naive sequential
// (circuit-order) plan versus the greedy cost-based planner and reports
// peak intermediate size and floating-point cost for both.
#include <benchmark/benchmark.h>

#include "ir/library.hpp"
#include "tn/mps.hpp"
#include "tn/network.hpp"
#include "transpile/decompose.hpp"

namespace {

using qdt::ir::Circuit;

void contract(benchmark::State& state, const Circuit& c, bool greedy) {
  qdt::tn::ContractionStats stats;
  qdt::Complex amp;
  for (auto _ : state) {
    amp = qdt::tn::amplitude(c, 0, greedy, &stats);
    benchmark::DoNotOptimize(amp);
  }
  state.counters["peak_tensor"] = static_cast<double>(stats.peak_tensor_size);
  state.counters["peak_rank"] = static_cast<double>(stats.peak_rank);
  state.counters["flops"] = stats.flops;
}

void BM_GhzSequentialPlan(benchmark::State& state) {
  contract(state, qdt::ir::ghz(state.range(0)), /*greedy=*/false);
}
BENCHMARK(BM_GhzSequentialPlan)->DenseRange(4, 16, 4);

void BM_GhzGreedyPlan(benchmark::State& state) {
  contract(state, qdt::ir::ghz(state.range(0)), /*greedy=*/true);
}
BENCHMARK(BM_GhzGreedyPlan)->DenseRange(4, 16, 4);

void BM_HiddenShiftSequentialPlan(benchmark::State& state) {
  contract(state, qdt::ir::hidden_shift(state.range(0), 0b0101),
           /*greedy=*/false);
}
BENCHMARK(BM_HiddenShiftSequentialPlan)->DenseRange(4, 12, 4);

void BM_HiddenShiftGreedyPlan(benchmark::State& state) {
  contract(state, qdt::ir::hidden_shift(state.range(0), 0b0101),
           /*greedy=*/true);
}
BENCHMARK(BM_HiddenShiftGreedyPlan)->DenseRange(4, 12, 4);

void BM_QftSequentialPlan(benchmark::State& state) {
  contract(state, qdt::ir::qft(state.range(0)), /*greedy=*/false);
}
BENCHMARK(BM_QftSequentialPlan)->DenseRange(4, 10, 2);

void BM_QftGreedyPlan(benchmark::State& state) {
  contract(state, qdt::ir::qft(state.range(0)), /*greedy=*/true);
}
BENCHMARK(BM_QftGreedyPlan)->DenseRange(4, 10, 2);

// The specialized-network alternative [35]: MPS simulation with bounded
// bond dimension; memory is linear in n (total_elements counter), at the
// price of truncation error for entangling circuits.
void BM_MpsGhz(benchmark::State& state) {
  const Circuit c = qdt::ir::ghz(state.range(0));
  std::size_t elements = 0;
  std::size_t bond = 0;
  for (auto _ : state) {
    qdt::tn::MPS mps(c.num_qubits());
    mps.run(c);
    elements = mps.total_elements();
    bond = mps.max_bond_dimension();
    benchmark::DoNotOptimize(mps);
  }
  state.counters["mps_elements"] = static_cast<double>(elements);
  state.counters["max_bond"] = static_cast<double>(bond);
}
BENCHMARK(BM_MpsGhz)->DenseRange(8, 64, 8);

void BM_MpsRandomTruncated(benchmark::State& state) {
  const Circuit c = qdt::transpile::decompose_two_qubit(
      qdt::transpile::decompose_multi_controlled(
          qdt::ir::random_circuit(state.range(0), 6, 9)));
  double discarded = 0.0;
  std::size_t elements = 0;
  for (auto _ : state) {
    qdt::tn::MPS mps(c.num_qubits(), /*max_bond=*/8);
    mps.run(c);
    discarded = mps.discarded_weight();
    elements = mps.total_elements();
    benchmark::DoNotOptimize(mps);
  }
  state.counters["mps_elements"] = static_cast<double>(elements);
  state.counters["discarded_weight"] = discarded;
}
BENCHMARK(BM_MpsRandomTruncated)->DenseRange(8, 20, 4);

}  // namespace

BENCHMARK_MAIN();
