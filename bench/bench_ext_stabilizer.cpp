// Extension experiment ext-stab — stabilizer-tableau simulation of Clifford
// circuits [11]: polynomial scaling where every general-purpose backend is
// exponential (or lucky). Sweeps width far past the array wall and compares
// against the DD backend on the same circuits.
#include <benchmark/benchmark.h>

#include "dd/simulator.hpp"
#include "ir/library.hpp"
#include "stab/tableau.hpp"

namespace {

void BM_TableauRandomClifford(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto c = qdt::ir::random_clifford(n, 20 * n, /*seed=*/7);
  for (auto _ : state) {
    qdt::stab::StabilizerSimulator sim(n, 1);
    sim.run(c);
    benchmark::DoNotOptimize(sim);
  }
  state.counters["qubits"] = static_cast<double>(n);
  state.counters["gates"] = static_cast<double>(c.stats().total_gates);
}
BENCHMARK(BM_TableauRandomClifford)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// The same circuits on the DD backend: fine while the state stays
// structured, exponential when it does not.
void BM_DdRandomClifford(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto c = qdt::ir::random_clifford(n, 20 * n, /*seed=*/7);
  std::size_t nodes = 0;
  for (auto _ : state) {
    qdt::dd::DDSimulator sim(n, 1);
    sim.run(c);
    nodes = sim.state_node_count();
    benchmark::DoNotOptimize(sim);
  }
  state.counters["qubits"] = static_cast<double>(n);
  state.counters["dd_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_DdRandomClifford)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

// Tableau measurement throughput (the O(n^2) CHP measurement).
void BM_TableauMeasureAll(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto c = qdt::ir::random_clifford(n, 10 * n, /*seed=*/9);
  for (auto _ : state) {
    qdt::stab::StabilizerSimulator sim(n, 2);
    sim.run(c);
    qdt::Rng rng(3);
    std::uint64_t word = 0;
    for (std::size_t q = 0; q < n; ++q) {
      word |= static_cast<std::uint64_t>(sim.tableau().measure(q, rng))
              << (q % 64);
    }
    benchmark::DoNotOptimize(word);
  }
}
BENCHMARK(BM_TableauMeasureAll)->Arg(16)->Arg(64)->Arg(256);

// Clifford state-equality checking via stabilizer groups (the tableau
// alternative to DD/ZX equivalence checking, for state preparation).
void BM_TableauSameState(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto a = qdt::ir::random_clifford(n, 20 * n, 11);
  auto b = a;
  b.h(0);
  b.h(0);
  qdt::stab::StabilizerSimulator sa(n);
  sa.run(a);
  qdt::stab::StabilizerSimulator sb(n);
  sb.run(b);
  bool same = false;
  for (auto _ : state) {
    same = qdt::stab::Tableau::same_state(sa.tableau(), sb.tableau());
    benchmark::DoNotOptimize(same);
  }
  state.counters["same"] = same ? 1.0 : 0.0;
}
BENCHMARK(BM_TableauSameState)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
