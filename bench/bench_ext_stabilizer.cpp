// Extension experiment ext-stab — stabilizer-tableau simulation of Clifford
// circuits [11]: polynomial scaling where every general-purpose backend is
// exponential (or lucky). Sweeps width far past the array wall and compares
// against the DD backend on the same circuits.
#include <benchmark/benchmark.h>

#include <stdexcept>

#include "bench_json.hpp"
#include "dd/simulator.hpp"
#include "ir/library.hpp"
#include "obs/obs.hpp"
#include "par/pool.hpp"
#include "stab/reference.hpp"
#include "stab/tableau.hpp"

namespace {

void BM_TableauRandomClifford(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto c = qdt::ir::random_clifford(n, 20 * n, /*seed=*/7);
  for (auto _ : state) {
    qdt::stab::StabilizerSimulator sim(n, 1);
    sim.run(c);
    benchmark::DoNotOptimize(sim);
  }
  state.counters["qubits"] = static_cast<double>(n);
  state.counters["gates"] = static_cast<double>(c.stats().total_gates);
}
BENCHMARK(BM_TableauRandomClifford)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// The same circuits on the DD backend: fine while the state stays
// structured, exponential when it does not.
void BM_DdRandomClifford(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto c = qdt::ir::random_clifford(n, 20 * n, /*seed=*/7);
  std::size_t nodes = 0;
  for (auto _ : state) {
    qdt::dd::DDSimulator sim(n, 1);
    sim.run(c);
    nodes = sim.state_node_count();
    benchmark::DoNotOptimize(sim);
  }
  state.counters["qubits"] = static_cast<double>(n);
  state.counters["dd_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_DdRandomClifford)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

// Tableau measurement throughput (the O(n^2) CHP measurement).
void BM_TableauMeasureAll(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto c = qdt::ir::random_clifford(n, 10 * n, /*seed=*/9);
  for (auto _ : state) {
    qdt::stab::StabilizerSimulator sim(n, 2);
    sim.run(c);
    qdt::Rng rng(3);
    std::uint64_t word = 0;
    for (std::size_t q = 0; q < n; ++q) {
      word |= static_cast<std::uint64_t>(sim.tableau().measure(q, rng))
              << (q % 64);
    }
    benchmark::DoNotOptimize(word);
  }
}
BENCHMARK(BM_TableauMeasureAll)->Arg(16)->Arg(64)->Arg(256);

// Clifford state-equality checking via stabilizer groups (the tableau
// alternative to DD/ZX equivalence checking, for state preparation).
void BM_TableauSameState(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto a = qdt::ir::random_clifford(n, 20 * n, 11);
  auto b = a;
  b.h(0);
  b.h(0);
  qdt::stab::StabilizerSimulator sa(n);
  sa.run(a);
  qdt::stab::StabilizerSimulator sb(n);
  sb.run(b);
  bool same = false;
  for (auto _ : state) {
    same = qdt::stab::Tableau::same_state(sa.tableau(), sb.tableau());
    benchmark::DoNotOptimize(same);
  }
  state.counters["same"] = same ? 1.0 : 0.0;
}
BENCHMARK(BM_TableauSameState)->Arg(8)->Arg(32)->Arg(128);

// The headline packed-vs-element-wise sweep: the same measurement-
// terminated random Clifford circuit (10n gates, then measure every
// qubit — the shape every sampling workload runs) through the bit-packed
// tableau and through the element-wise reference port of the pre-packing
// implementation, at 64/256/1024 qubits. Unitary column updates touch one
// bit per row either way, so the word-parallel payoff lands in the rowsum
// sweeps measurements trigger: O(n/64) popcount words instead of O(n)
// per-bit phase lookups. Emits one BENCH_stab.json line per
// (width, backend) so CI can assert the packed speedup from the JSON
// stream.
void clifford_sweep(benchmark::State& state, const char* impl) {
  const std::size_t n = state.range(0);
  auto c = qdt::ir::random_clifford(n, 10 * n, /*seed=*/13);
  for (std::size_t q = 0; q < n; ++q) {
    c.measure(q);
  }
  const bool packed = std::string_view(impl) == "packed";
  for (auto _ : state) {
    if (packed) {
      qdt::stab::StabilizerSimulator sim(n, 1);
      sim.run(c);
      benchmark::DoNotOptimize(sim);
    } else {
      qdt::stab::ReferenceSimulator sim(n, 1);
      sim.run(c);
      benchmark::DoNotOptimize(sim);
    }
  }
  state.counters["qubits"] = static_cast<double>(n);
  state.counters["gates"] = static_cast<double>(c.stats().total_gates);
  // One fresh instrumented run for the machine-readable line.
  qdt::obs::reset();
  const qdt::obs::Stopwatch sw;
  std::uint64_t repr = 0;
  if (packed) {
    qdt::stab::StabilizerSimulator sim(n, 1);
    sim.run(c);
    repr = sim.tableau().memory_bytes();
  } else {
    qdt::stab::ReferenceSimulator sim(n, 1);
    sim.run(c);
    repr = 2 * n * (2 * n + 1) / 8 + 2 * n;  // element-wise bit count
  }
  qdt::bench::emit_json_line(
      "stab", "CliffordSweep_" + std::to_string(n) + "_" + impl, impl,
      sw.seconds(), repr);
}

void BM_CliffordSweepPacked(benchmark::State& state) {
  clifford_sweep(state, "packed");
}
BENCHMARK(BM_CliffordSweepPacked)->Arg(64)->Arg(256)->Arg(1024);

void BM_CliffordSweepReference(benchmark::State& state) {
  clifford_sweep(state, "reference");
}
BENCHMARK(BM_CliffordSweepReference)->Arg(64)->Arg(256)->Arg(1024);

// 1024-qubit 10k-gate acceptance case: the run must be bitwise identical
// at 1, 2, and 8 threads (the par chunking contract). Aborts the bench if
// the words diverge so CI cannot publish a green line over broken
// determinism.
void BM_ThreadDeterminism1024(benchmark::State& state) {
  const std::size_t n = 1024;
  const auto c = qdt::ir::random_clifford(n, 10000, /*seed=*/17);
  const auto run_at = [&](std::size_t threads) {
    qdt::par::set_max_threads(threads);
    qdt::stab::StabilizerSimulator sim(n, 1);
    sim.run(c);
    return std::make_pair(sim.tableau().words(), sim.tableau().signs());
  };
  const auto base = run_at(1);
  for (const std::size_t t : {std::size_t{2}, std::size_t{8}}) {
    if (run_at(t) != base) {
      throw std::runtime_error("tableau diverged at --threads " +
                               std::to_string(t));
    }
  }
  qdt::par::set_max_threads(8);
  for (auto _ : state) {
    qdt::stab::StabilizerSimulator sim(n, 1);
    sim.run(c);
    benchmark::DoNotOptimize(sim);
  }
  qdt::par::set_max_threads(1);
  qdt::obs::reset();
  const qdt::obs::Stopwatch sw;
  qdt::stab::StabilizerSimulator sim(n, 1);
  sim.run(c);
  qdt::bench::emit_json_line("stab", "ThreadDeterminism_1024_10k", "packed",
                             sw.seconds(), sim.tableau().memory_bytes());
}
BENCHMARK(BM_ThreadDeterminism1024);

}  // namespace

BENCHMARK_MAIN();
