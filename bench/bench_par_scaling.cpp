// Thread-scaling sweep for the qdt::par execution layer.
//
// The same array-backend workloads (GHZ-20, QFT-20, and a 20-qubit random
// circuit) run with the in-process thread cap swept over 1/2/4/8. Because
// the chunk decomposition is thread-count independent, every configuration
// computes bitwise-identical states — the only thing that may change with
// the Arg is wall-clock time. The BENCH_par_scaling.json lines carry the
// per-configuration timing plus the qdt.par.* pool counters (tasks, chunks,
// stolen chunks, idle time) that explain it.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "core/tasks.hpp"
#include "ir/library.hpp"
#include "par/pool.hpp"

namespace {

using qdt::core::SimBackend;

void sim_at_threads(benchmark::State& state, const std::string& name,
                    const qdt::ir::Circuit& c) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  qdt::par::set_max_threads(threads);
  qdt::core::SimulateOptions opts;
  opts.want_state = false;
  opts.shots = 16;
  opts.seed = 3;
  for (auto _ : state) {
    const auto res = qdt::core::simulate(c, SimBackend::Array, opts);
    benchmark::DoNotOptimize(res);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["qubits"] = static_cast<double>(c.num_qubits());
  // One fresh instrumented run for the machine-readable line.
  qdt::obs::reset();
  const auto res = qdt::core::simulate(c, SimBackend::Array, opts);
  qdt::bench::emit_json_line("par_scaling",
                             name + "_t" + std::to_string(threads), "array",
                             res.seconds, res.representation_size);
  qdt::par::set_max_threads(1);
}

#define QDT_PAR_BENCH(name, circuit)                        \
  void BM_##name(benchmark::State& state) {                 \
    static const qdt::ir::Circuit c = circuit;              \
    sim_at_threads(state, #name, c);                        \
  }                                                         \
  BENCHMARK(BM_##name)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()

QDT_PAR_BENCH(ParGhz20, qdt::ir::ghz(20));
QDT_PAR_BENCH(ParQft20, qdt::ir::qft(20));
QDT_PAR_BENCH(ParRandom20, qdt::ir::random_circuit(20, 24, 7));

#undef QDT_PAR_BENCH

}  // namespace

BENCHMARK_MAIN();
