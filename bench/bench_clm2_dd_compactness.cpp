// Experiment clm2 — Section III's claim: decision diagrams exploit
// redundancy, representing structured states and operators with
// polynomially many nodes where arrays need 2^n entries.
//
// The sweep runs the *same* workloads far past the dense wall of clm1:
// GHZ-64, Bernstein-Vazirani-48, Grover-16 — widths where the array
// backend cannot even allocate the state.
#include <benchmark/benchmark.h>

#include <cmath>

#include "dd/simulator.hpp"
#include "ir/library.hpp"

namespace {

void dd_run(benchmark::State& state, const qdt::ir::Circuit& c) {
  std::size_t nodes = 0;
  for (auto _ : state) {
    qdt::dd::DDSimulator sim(c.num_qubits(), 1);
    sim.run(c);
    nodes = sim.state_node_count();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["dd_nodes"] = static_cast<double>(nodes);
  state.counters["dense_amplitudes"] =
      std::pow(2.0, static_cast<double>(c.num_qubits()));
  state.counters["gates"] = static_cast<double>(c.stats().total_gates);
}

// GHZ far past the dense wall: node count stays 2n-1.
void BM_DdGhz(benchmark::State& state) {
  dd_run(state, qdt::ir::ghz(state.range(0)));
}
BENCHMARK(BM_DdGhz)->DenseRange(16, 64, 16);

void BM_DdBernsteinVazirani(benchmark::State& state) {
  const std::size_t n = state.range(0);
  dd_run(state, qdt::ir::bernstein_vazirani(
                    n, 0xA5A5A5A5A5A5A5A5ULL & ((1ULL << n) - 1)));
}
BENCHMARK(BM_DdBernsteinVazirani)->DenseRange(16, 48, 16);

void BM_DdGrover(benchmark::State& state) {
  dd_run(state, qdt::ir::grover(state.range(0), 3));
}
BENCHMARK(BM_DdGrover)->DenseRange(8, 16, 4);

// QFT applied to a basis state stays tiny as a DD (the output is a tensor
// product of single-qubit phases).
void BM_DdQftOnBasisState(benchmark::State& state) {
  const std::size_t n = state.range(0);
  qdt::ir::Circuit c(n, "x_then_qft");
  c.x(0);
  const qdt::ir::Circuit qft_n = qdt::ir::qft(n);
  for (const auto& op : qft_n.ops()) {
    c.append(op);
  }
  dd_run(state, c);
}
BENCHMARK(BM_DdQftOnBasisState)->DenseRange(8, 32, 8);

// The DD worst case for honesty: unstructured random circuits blow the
// node count up towards 2^n — redundancy is the whole game.
void BM_DdRandomWorstCase(benchmark::State& state) {
  dd_run(state, qdt::ir::random_circuit(state.range(0), 8, 11));
}
BENCHMARK(BM_DdRandomWorstCase)->DenseRange(6, 12, 2);

// Matrix DDs: the whole QFT operator (4^n dense entries) in O(poly) nodes.
void BM_DdQftOperator(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto c = qdt::ir::qft(n);
  std::size_t nodes = 0;
  for (auto _ : state) {
    qdt::dd::Package pkg(n);
    auto u = pkg.identity();
    for (const auto& op : c.ops()) {
      u = pkg.multiply(pkg.gate_dd(op), u);
    }
    nodes = pkg.node_count(u);
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["dd_nodes"] = static_cast<double>(nodes);
  state.counters["dense_entries"] =
      std::pow(4.0, static_cast<double>(n));
}
BENCHMARK(BM_DdQftOperator)->DenseRange(4, 12, 2);

}  // namespace

BENCHMARK_MAIN();
