// Experiment fig2 — "Tensor network representation of the quantum circuit"
// (paper Fig. 2). Regenerates the section's quantitative claims:
//  * the network itself needs memory linear in qubits + gates
//    (network_elements counter), even when the state is exponential;
//  * computing a single amplitude ("capping" the outputs) contracts to a
//    rank-0 tensor and can stay cheap (peak_tensor counter);
//  * extracting the full state vector is inherently 2^n.
#include <benchmark/benchmark.h>

#include "ir/library.hpp"
#include "tn/network.hpp"

namespace {

using qdt::ir::Circuit;

void BM_BellNetworkConstruction(benchmark::State& state) {
  const Circuit c = qdt::ir::bell();
  std::size_t elements = 0;
  for (auto _ : state) {
    std::vector<qdt::tn::Label> outs;
    auto net = qdt::tn::circuit_network(c, outs);
    elements = net.total_elements();
    benchmark::DoNotOptimize(net);
  }
  state.counters["network_elements"] = static_cast<double>(elements);
}
BENCHMARK(BM_BellNetworkConstruction);

void network_size(benchmark::State& state, const Circuit& c) {
  std::size_t elements = 0;
  std::size_t tensors = 0;
  for (auto _ : state) {
    std::vector<qdt::tn::Label> outs;
    auto net = qdt::tn::circuit_network(c, outs);
    elements = net.total_elements();
    tensors = net.num_nodes();
    benchmark::DoNotOptimize(net);
  }
  state.counters["network_elements"] = static_cast<double>(elements);
  state.counters["tensors"] = static_cast<double>(tensors);
  state.counters["gates"] = static_cast<double>(c.stats().total_gates);
  state.counters["dense_state"] =
      std::pow(2.0, static_cast<double>(c.num_qubits()));
}

// Memory linear in gates: qft(n) has O(n^2) gates, so the network grows
// polynomially while the represented operator is 4^n dense.
void BM_QftNetworkSize(benchmark::State& state) {
  network_size(state, qdt::ir::qft(state.range(0)));
}
BENCHMARK(BM_QftNetworkSize)->DenseRange(4, 24, 4);

void BM_GhzNetworkSize(benchmark::State& state) {
  network_size(state, qdt::ir::ghz(state.range(0)));
}
BENCHMARK(BM_GhzNetworkSize)->DenseRange(8, 48, 8);

// Single-amplitude contraction: output wires capped, rank-0 result.
void BM_GhzAmplitude(benchmark::State& state) {
  const Circuit c = qdt::ir::ghz(state.range(0));
  qdt::tn::ContractionStats stats;
  qdt::Complex amp;
  for (auto _ : state) {
    amp = qdt::tn::amplitude(c, 0, /*greedy=*/true, &stats);
    benchmark::DoNotOptimize(amp);
  }
  state.counters["peak_tensor"] = static_cast<double>(stats.peak_tensor_size);
  state.counters["flops"] = stats.flops;
}
BENCHMARK(BM_GhzAmplitude)->DenseRange(4, 20, 4);

void BM_QftAmplitude(benchmark::State& state) {
  const Circuit c = qdt::ir::qft(state.range(0));
  qdt::tn::ContractionStats stats;
  qdt::Complex amp;
  for (auto _ : state) {
    amp = qdt::tn::amplitude(c, 1, /*greedy=*/true, &stats);
    benchmark::DoNotOptimize(amp);
  }
  state.counters["peak_tensor"] = static_cast<double>(stats.peak_tensor_size);
  state.counters["flops"] = stats.flops;
}
BENCHMARK(BM_QftAmplitude)->DenseRange(4, 12, 2);

// Full-state contraction: the inherent 2^n barrier of Section IV.
void BM_QftFullState(benchmark::State& state) {
  const Circuit c = qdt::ir::qft(state.range(0));
  qdt::tn::ContractionStats stats;
  for (auto _ : state) {
    auto sv = qdt::tn::statevector(c, /*greedy=*/true, &stats);
    benchmark::DoNotOptimize(sv);
  }
  state.counters["peak_tensor"] = static_cast<double>(stats.peak_tensor_size);
}
BENCHMARK(BM_QftFullState)->DenseRange(4, 12, 2);

// Expectation values: closed bra-ket network, rank-0 output.
void BM_GhzExpectation(benchmark::State& state) {
  const Circuit c = qdt::ir::ghz(state.range(0));
  const std::string paulis(state.range(0), 'Z');
  qdt::tn::ContractionStats stats;
  for (auto _ : state) {
    auto e = qdt::tn::expectation(c, paulis, /*greedy=*/true, &stats);
    benchmark::DoNotOptimize(e);
  }
  state.counters["peak_tensor"] = static_cast<double>(stats.peak_tensor_size);
}
BENCHMARK(BM_GhzExpectation)->DenseRange(4, 12, 4);

}  // namespace

BENCHMARK_MAIN();
