// Experiment task-ver — the Section I "verification" design task: DD-based
// equivalence checking [20] (sequential vs alternating miter, plus the
// simulative check) against ZX-based checking [38], on equivalent pairs
// (original vs compiled) and on fault-injected pairs.
//
// Expected shape: the alternating DD scheme keeps the miter near the
// identity for equivalent pairs (peak_nodes counter); ZX decides Clifford-
// dominated pairs by rewriting alone; fault detection is fast everywhere.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "core/tasks.hpp"
#include "dd/equivalence.hpp"
#include "ir/library.hpp"
#include "transpile/transpiler.hpp"

namespace {

using qdt::core::EcMethod;

/// Equivalent pair: circuit vs its compiled + layout-restored version.
std::pair<qdt::ir::Circuit, qdt::ir::Circuit> compiled_pair(
    const qdt::ir::Circuit& c) {
  qdt::transpile::Target target{
      qdt::transpile::CouplingMap::line(c.num_qubits()),
      qdt::transpile::NativeGateSet::CxRzSxX, "line"};
  const auto res = qdt::transpile::transpile(c, target);
  return {qdt::transpile::padded_original(c, target),
          qdt::transpile::restored_for_verification(res)};
}

void verify_pair(benchmark::State& state, const std::string& name,
                 const qdt::ir::Circuit& a, const qdt::ir::Circuit& b,
                 EcMethod m, bool expect_equivalent) {
  bool ok = true;
  for (auto _ : state) {
    const auto res = qdt::core::verify(a, b, m);
    ok = ok && (res.equivalent == expect_equivalent);
    benchmark::DoNotOptimize(res);
  }
  state.counters["verdict_correct"] = ok ? 1.0 : 0.0;
  // One fresh instrumented run for the machine-readable line.
  qdt::obs::reset();
  const auto res = qdt::core::verify(a, b, m);
  qdt::bench::emit_json_line("task_verification", name,
                             qdt::core::method_name(m), res.seconds,
                             /*representation_size=*/0);
}

#define QDT_VER_BENCH(name, maker, method)                                  \
  void BM_##name##_##method(benchmark::State& state) {                      \
    const auto pair = maker(state.range(0));                                \
    verify_pair(state,                                                      \
                #name "_" #method "/" + std::to_string(state.range(0)),     \
                pair.first, pair.second, EcMethod::method, true);           \
  }                                                                         \
  BENCHMARK(BM_##name##_##method)->DenseRange(4, 8, 2)

std::pair<qdt::ir::Circuit, qdt::ir::Circuit> qft_pair(std::size_t n) {
  return compiled_pair(qdt::ir::qft(n));
}
std::pair<qdt::ir::Circuit, qdt::ir::Circuit> clifford_pair(std::size_t n) {
  return compiled_pair(qdt::ir::random_clifford(n, 20 * n, 3));
}

QDT_VER_BENCH(QftCompiled, qft_pair, DdAlternating);
QDT_VER_BENCH(QftCompiled, qft_pair, DdSequential);
QDT_VER_BENCH(QftCompiled, qft_pair, DdSimulative);
QDT_VER_BENCH(QftCompiled, qft_pair, Zx);
QDT_VER_BENCH(CliffordCompiled, clifford_pair, DdAlternating);
QDT_VER_BENCH(CliffordCompiled, clifford_pair, Zx);

#undef QDT_VER_BENCH

// Alternating vs sequential on an equivalent pair: the alternating scheme's
// peak miter size is the whole point of [20].
void BM_MiterPeakNodes(benchmark::State& state) {
  const auto pair = qft_pair(state.range(0));
  const bool alternating = state.range(1) != 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    const auto res = qdt::dd::check_equivalence_dd(
        pair.first, pair.second,
        alternating ? qdt::dd::EcStrategy::Alternating
                    : qdt::dd::EcStrategy::Sequential);
    peak = res.peak_nodes;
    benchmark::DoNotOptimize(res);
  }
  state.counters["peak_nodes"] = static_cast<double>(peak);
}
BENCHMARK(BM_MiterPeakNodes)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({6, 0})
    ->Args({6, 1})
    ->Args({8, 0})
    ->Args({8, 1});

// Fault detection: a single injected gate must be caught by every method.
void BM_FaultDetection(benchmark::State& state) {
  const auto method = static_cast<EcMethod>(state.range(0));
  const auto good = qdt::ir::random_clifford_t(6, 80, 0.2, 5);
  auto bad = good;
  bad.t(3);
  verify_pair(state,
              std::string("FaultDetection_") + qdt::core::method_name(method),
              good, bad, method, false);
}
BENCHMARK(BM_FaultDetection)
    ->Arg(static_cast<int>(EcMethod::DdAlternating))
    ->Arg(static_cast<int>(EcMethod::DdSequential))
    ->Arg(static_cast<int>(EcMethod::DdSimulative))
    ->Arg(static_cast<int>(EcMethod::Zx));

}  // namespace

BENCHMARK_MAIN();
