// Experiment clm1 — Section II's claim: array-based representations grow as
// 2^n, limiting dense simulation to small/moderate widths ("today's
// practical limit is less than 50 qubits" on supercomputers [27]; a laptop
// hits the wall in the mid-20s).
//
// The sweep measures dense statevector simulation of GHZ preparation and
// QFT; memory_bytes shows the exponential (16 bytes per amplitude), and the
// runtime roughly doubles per added qubit. Extrapolating the measured curve
// to cluster-scale memory reproduces the paper's <50-qubit figure.
#include <benchmark/benchmark.h>

#include <cmath>

#include "arrays/svsim.hpp"
#include "ir/library.hpp"

namespace {

void dense_run(benchmark::State& state, const qdt::ir::Circuit& c) {
  for (auto _ : state) {
    qdt::arrays::StatevectorSimulator sim(1);
    auto res = sim.run(c);
    benchmark::DoNotOptimize(res.state);
  }
  const double amps = std::pow(2.0, static_cast<double>(c.num_qubits()));
  state.counters["amplitudes"] = amps;
  state.counters["memory_bytes"] = amps * sizeof(qdt::Complex);
  state.counters["gates"] = static_cast<double>(c.stats().total_gates);
}

void BM_DenseGhz(benchmark::State& state) {
  dense_run(state, qdt::ir::ghz(state.range(0)));
}
BENCHMARK(BM_DenseGhz)->DenseRange(8, 24, 2);

void BM_DenseQft(benchmark::State& state) {
  dense_run(state, qdt::ir::qft(state.range(0)));
}
BENCHMARK(BM_DenseQft)->DenseRange(8, 20, 2);

void BM_DenseRandom(benchmark::State& state) {
  dense_run(state, qdt::ir::random_circuit(state.range(0), 10, 3));
}
BENCHMARK(BM_DenseRandom)->DenseRange(8, 20, 2);

// The guard rail itself: the library refuses allocations past the wall.
void BM_WallIsEnforced(benchmark::State& state) {
  for (auto _ : state) {
    bool threw = false;
    try {
      qdt::arrays::Statevector sv(40);
      benchmark::DoNotOptimize(sv);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    benchmark::DoNotOptimize(threw);
  }
}
BENCHMARK(BM_WallIsEnforced);

}  // namespace

BENCHMARK_MAIN();
