// Experiment task-comp — the Section I "compilation" design task: mapping
// circuits to constrained devices ([15], [18]). Sweeps topologies and
// router heuristics, reporting swap overhead and gate growth, plus the
// peephole-optimizer ablation.
//
// Expected shape: richer connectivity (grid, heavy-hex) needs fewer swaps
// than a line; the lookahead router beats plain shortest-path; the peephole
// pass claws back a chunk of the decomposition overhead.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "ir/library.hpp"
#include "transpile/transpiler.hpp"

namespace {

using qdt::transpile::CouplingMap;
using qdt::transpile::NativeGateSet;
using qdt::transpile::RouterKind;
using qdt::transpile::Target;
using qdt::transpile::TranspileOptions;

void compile(benchmark::State& state, const std::string& name,
             const qdt::ir::Circuit& c, const Target& target,
             RouterKind router, bool optimize) {
  TranspileOptions opts;
  opts.router = router;
  opts.optimize = optimize;
  std::size_t swaps = 0;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t depth_after = 0;
  for (auto _ : state) {
    const auto res = qdt::transpile::transpile(c, target, opts);
    swaps = res.swaps_inserted;
    gates_before = res.before.total_gates;
    gates_after = res.after.total_gates;
    depth_after = res.after.depth;
    benchmark::DoNotOptimize(res);
  }
  state.counters["swaps"] = static_cast<double>(swaps);
  state.counters["gates_before"] = static_cast<double>(gates_before);
  state.counters["gates_after"] = static_cast<double>(gates_after);
  state.counters["growth"] = gates_before == 0
                                 ? 0.0
                                 : static_cast<double>(gates_after) /
                                       static_cast<double>(gates_before);
  state.counters["depth_after"] = static_cast<double>(depth_after);
  // One fresh instrumented run for the machine-readable line.
  qdt::obs::reset();
  const qdt::obs::Stopwatch sw;
  const auto res = qdt::transpile::transpile(c, target, opts);
  qdt::bench::emit_json_line("task_compilation", name,
                             "transpile-" + target.name, sw.seconds(),
                             res.after.total_gates);
}

Target make_target(int which, std::size_t n) {
  switch (which) {
    case 0:
      return {CouplingMap::full(n), NativeGateSet::CxRzSxX, "full"};
    case 1:
      return {CouplingMap::line(n), NativeGateSet::CxRzSxX, "line"};
    case 2:
      return {CouplingMap::ring(n), NativeGateSet::CxRzSxX, "ring"};
    case 3: {
      // Smallest grid with >= n qubits, roughly square.
      std::size_t rows = 1;
      while (rows * rows < n) {
        ++rows;
      }
      const std::size_t cols = (n + rows - 1) / rows;
      return {CouplingMap::grid(rows, cols), NativeGateSet::CxRzSxX,
              "grid"};
    }
    default:
      return {CouplingMap::heavy_hex_falcon(), NativeGateSet::CxRzSxX,
              "heavy-hex"};
  }
}

// Topology sweep: QFT-8 onto full / line / ring / grid / heavy-hex.
void BM_TopologySweepQft8(benchmark::State& state) {
  const auto c = qdt::ir::qft(8);
  const auto target = make_target(static_cast<int>(state.range(0)), 8);
  compile(state, "TopologySweepQft8_" + target.name, c, target,
          RouterKind::Lookahead, /*optimize=*/true);
}
BENCHMARK(BM_TopologySweepQft8)->DenseRange(0, 4, 1);

// Router ablation: shortest-path vs lookahead on the line (worst case).
void BM_RouterShortestPath(benchmark::State& state) {
  const auto c = qdt::ir::qft(state.range(0));
  compile(state, "RouterShortestPath/" + std::to_string(state.range(0)), c,
          make_target(1, state.range(0)), RouterKind::ShortestPath, true);
}
BENCHMARK(BM_RouterShortestPath)->DenseRange(4, 12, 2);

void BM_RouterLookahead(benchmark::State& state) {
  const auto c = qdt::ir::qft(state.range(0));
  compile(state, "RouterLookahead/" + std::to_string(state.range(0)), c,
          make_target(1, state.range(0)), RouterKind::Lookahead, true);
}
BENCHMARK(BM_RouterLookahead)->DenseRange(4, 12, 2);

// Optimizer ablation.
void BM_WithPeephole(benchmark::State& state) {
  compile(state, "WithPeephole/" + std::to_string(state.range(0)),
          qdt::ir::grover(state.range(0), 1), make_target(1, state.range(0)),
          RouterKind::Lookahead, true);
}
BENCHMARK(BM_WithPeephole)->DenseRange(3, 6, 1);

void BM_WithoutPeephole(benchmark::State& state) {
  compile(state, "WithoutPeephole/" + std::to_string(state.range(0)),
          qdt::ir::grover(state.range(0), 1), make_target(1, state.range(0)),
          RouterKind::Lookahead, false);
}
BENCHMARK(BM_WithoutPeephole)->DenseRange(3, 6, 1);

// Workload sweep on the heavy-hex device (the realistic setting).
void BM_HeavyHexWorkloads(benchmark::State& state) {
  qdt::ir::Circuit c;
  switch (state.range(0)) {
    case 0:
      c = qdt::ir::ghz(12);
      break;
    case 1:
      c = qdt::ir::qft(10);
      break;
    case 2:
      c = qdt::ir::ripple_carry_adder(4);
      break;
    default:
      c = qdt::ir::random_clifford_t(12, 200, 0.2, 9);
      break;
  }
  compile(state, "HeavyHexWorkloads/" + std::to_string(state.range(0)), c,
          make_target(4, 27), RouterKind::Lookahead, true);
}
BENCHMARK(BM_HeavyHexWorkloads)->DenseRange(0, 3, 1);

// CZ-native gate set (tunable couplers) vs CX-native.
void BM_CzNativeTarget(benchmark::State& state) {
  Target t{CouplingMap::line(8), NativeGateSet::CzRzSxX, "line-cz"};
  compile(state, "CzNativeTarget", qdt::ir::qft(8), t, RouterKind::Lookahead,
          true);
}
BENCHMARK(BM_CzNativeTarget);

}  // namespace

BENCHMARK_MAIN();
