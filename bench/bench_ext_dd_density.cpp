// Extension experiment ext-ddm — noise-aware simulation with decision
// diagrams [13]: the density matrix as a matrix DD. Exact mixed-state
// evolution whose representation stays polynomial on structured workloads,
// where the dense density matrix is 4^n.
//
// Series reported: dd_nodes vs dense_entries across widths and noise
// strengths, plus the dense-backend comparison while it can still run.
#include <benchmark/benchmark.h>

#include <cmath>

#include "arrays/density_matrix.hpp"
#include "dd/density.hpp"
#include "ir/library.hpp"

namespace {

void BM_DdDensityGhz(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto c = qdt::ir::ghz(n);
  const auto nm = qdt::arrays::NoiseModel::depolarizing_model(0.02);
  std::size_t nodes = 0;
  for (auto _ : state) {
    qdt::dd::DDDensitySimulator sim(n);
    sim.run(c, nm);
    nodes = sim.node_count();
    benchmark::DoNotOptimize(sim);
  }
  state.counters["dd_nodes"] = static_cast<double>(nodes);
  state.counters["dense_entries"] = std::pow(4.0, static_cast<double>(n));
}
BENCHMARK(BM_DdDensityGhz)->DenseRange(4, 16, 4);

void BM_DenseDensityGhz(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto c = qdt::ir::ghz(n);
  const auto nm = qdt::arrays::NoiseModel::depolarizing_model(0.02);
  for (auto _ : state) {
    qdt::arrays::DensityMatrix rho(n);
    rho.run(c, nm);
    benchmark::DoNotOptimize(rho);
  }
  state.counters["dense_entries"] = std::pow(4.0, static_cast<double>(n));
}
BENCHMARK(BM_DenseDensityGhz)->DenseRange(4, 8, 2);

// Noise-strength sweep: stronger depolarizing mixes the state and grows the
// DD — the honest limit of [13]'s compactness.
void BM_DdDensityNoiseSweep(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  const auto c = qdt::ir::ghz(8);
  const auto nm = qdt::arrays::NoiseModel::depolarizing_model(p);
  std::size_t nodes = 0;
  for (auto _ : state) {
    qdt::dd::DDDensitySimulator sim(8);
    sim.run(c, nm);
    nodes = sim.node_count();
    benchmark::DoNotOptimize(sim);
  }
  state.counters["dd_nodes"] = static_cast<double>(nodes);
  state.counters["noise_pct"] = p * 100.0;
}
BENCHMARK(BM_DdDensityNoiseSweep)->Arg(0)->Arg(1)->Arg(5)->Arg(10)->Arg(25);

}  // namespace

BENCHMARK_MAIN();
