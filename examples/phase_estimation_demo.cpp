// Quantum phase estimation with increasing precision, run on the decision-
// diagram backend: estimate the eigenphase of P(theta) and watch the
// counting register converge to theta / 2pi as bits are added.
//
//   $ ./phase_estimation_demo [max_precision_bits]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "core/qdt.hpp"

int main(int argc, char** argv) {
  using namespace qdt;

  const std::size_t max_bits =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const Phase theta{2, 5};  // eigenphase 2*pi * (1/5): NOT dyadic
  const double target = theta.radians() / (2 * std::numbers::pi);

  std::printf("estimating phase %.6f (of P(%s)) with quantum phase "
              "estimation\n\n",
              target, theta.str().c_str());
  std::printf("%-6s %-12s %-12s %-10s %-12s\n", "bits", "estimate",
              "error", "P(best)", "dd nodes");

  for (std::size_t bits = 2; bits <= max_bits; ++bits) {
    const ir::Circuit c = ir::phase_estimation(bits, theta);
    core::SimulateOptions opts;
    opts.want_state = false;
    opts.shots = 512;
    opts.seed = 11;
    const auto res =
        core::simulate(c, core::SimBackend::DecisionDiagram, opts);

    // Most frequent counting-register value (strip the eigenstate qubit).
    std::uint64_t best = 0;
    std::size_t best_count = 0;
    for (const auto& [word, count] : res.counts) {
      if (count > best_count) {
        best_count = count;
        best = word & ((1ULL << bits) - 1);
      }
    }
    const double estimate =
        static_cast<double>(best) / static_cast<double>(1ULL << bits);
    std::printf("%-6zu %-12.6f %-12.6f %-10.3f %-12zu\n", bits, estimate,
                std::abs(estimate - target),
                static_cast<double>(best_count) / 512.0,
                res.representation_size);
  }
  std::printf("\nEach extra counting bit halves the grid spacing; the "
              "estimate converges to the true phase.\n");
  return 0;
}
