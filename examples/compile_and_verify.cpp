// The compilation design task end-to-end (Section I): map a QFT onto an
// IBM-Falcon-style heavy-hex device, then *prove* the compiled circuit
// still implements the original — once with decision diagrams, once with
// the ZX-calculus.
//
//   $ ./compile_and_verify [n_qubits]
#include <cstdio>
#include <cstdlib>

#include "core/qdt.hpp"

int main(int argc, char** argv) {
  using namespace qdt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const ir::Circuit circuit = ir::qft(n);
  transpile::Target target{transpile::CouplingMap::heavy_hex_falcon(),
                           transpile::NativeGateSet::CxRzSxX,
                           "ibm-falcon-27"};

  std::printf("compiling %s to %s (native {CX, RZ, SX, X})\n",
              circuit.name().c_str(), target.coupling.name().c_str());

  const auto res = core::compile_and_verify(circuit, target,
                                            core::EcMethod::DdAlternating);
  const auto& t = res.transpiled;
  std::printf("\nbefore: %zu gates (%zu two-qubit), depth %zu\n",
              t.before.total_gates, t.before.two_qubit, t.before.depth);
  std::printf("after:  %zu gates (%zu two-qubit), depth %zu\n",
              t.after.total_gates, t.after.two_qubit, t.after.depth);
  std::printf("swaps inserted by the router: %zu\n", t.swaps_inserted);
  std::printf("peephole: %zu pairs cancelled, %zu rotations merged\n",
              t.optimize_stats.cancelled_pairs,
              t.optimize_stats.merged_rotations);

  std::printf("\nfinal layout (logical -> physical): ");
  for (std::size_t l = 0; l < t.final_layout.size(); ++l) {
    std::printf("%zu->%u ", l, t.final_layout[l]);
  }
  std::printf("\n");

  std::printf("\n[verification: decision diagrams] %s (%s, %.3fs)\n",
              res.verification.equivalent ? "EQUIVALENT" : "NOT EQUIVALENT",
              res.verification.detail.c_str(), res.verification.seconds);

  const auto zx_res =
      core::verify(transpile::padded_original(circuit, target),
                   transpile::restored_for_verification(t),
                   core::EcMethod::Zx);
  std::printf("[verification: zx-calculus]     %s (%s, %.3fs)\n",
              zx_res.equivalent ? "EQUIVALENT" : "NOT EQUIVALENT",
              zx_res.detail.c_str(), zx_res.seconds);

  // Sanity: injecting a fault must be caught.
  auto broken = t;
  broken.circuit.x(0);
  const auto bad =
      core::verify(transpile::padded_original(circuit, target),
                   transpile::restored_for_verification(broken),
                   core::EcMethod::DdAlternating);
  std::printf("\ninjected-fault check: %s (expected NOT EQUIVALENT)\n",
              bad.equivalent ? "EQUIVALENT" : "NOT EQUIVALENT");
  return 0;
}
