// Syndrome extraction on cold data — dead-round elimination showcase.
//
// Eight data qubits and four ancillas. Round 1 extracts Z-stabilizer
// syndromes before the data has been initialized: every data wire is
// still provably |0>, so all sixteen data->ancilla CXs are identity and
// the round measures nothing. qdt::flow proves this from the
// constant-state lattice and `qdt opt` deletes the round (and its
// measure/reset bookkeeping stays, still correct). Round 2 runs after
// the |+>-basis preparation layer and is kept in full.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[12];
creg c[12];

// round 1: syndrome extraction on uninitialized (all-|0>) data — dead
cx q[0], q[8];
cx q[1], q[8];
cx q[2], q[8];
cx q[3], q[8];
cx q[2], q[9];
cx q[3], q[9];
cx q[4], q[9];
cx q[5], q[9];
cx q[4], q[10];
cx q[5], q[10];
cx q[6], q[10];
cx q[7], q[10];
cx q[6], q[11];
cx q[7], q[11];
cx q[0], q[11];
cx q[1], q[11];
measure q[8] -> c[8];
measure q[9] -> c[9];
measure q[10] -> c[10];
measure q[11] -> c[11];
reset q[8];
reset q[9];
reset q[10];
reset q[11];

// state preparation: put the data block in the |+> basis
h q[0];
h q[1];
h q[2];
h q[3];
h q[4];
h q[5];
h q[6];
h q[7];

// round 2: the same extraction against live data — kept in full
cx q[0], q[8];
cx q[1], q[8];
cx q[2], q[8];
cx q[3], q[8];
cx q[2], q[9];
cx q[3], q[9];
cx q[4], q[9];
cx q[5], q[9];
cx q[4], q[10];
cx q[5], q[10];
cx q[6], q[10];
cx q[7], q[10];
cx q[6], q[11];
cx q[7], q[11];
cx q[0], q[11];
cx q[1], q[11];
measure q[8] -> c[0];
measure q[9] -> c[1];
measure q[10] -> c[2];
measure q[11] -> c[3];
