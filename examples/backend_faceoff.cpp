// The paper's conclusion in one program: "each data structure provides a
// certain trade-off — picking the most suitable one is crucial." Runs the
// same workloads on all four backends, printing runtime and representation
// size so the trade-offs are visible, plus the library's own backend
// recommendation.
//
//   $ ./backend_faceoff
#include <cstdio>

#include "core/qdt.hpp"

int main() {
  using namespace qdt;

  const ir::Circuit workloads[] = {
      ir::ghz(14),
      ir::w_state(10),
      ir::qft(10),
      ir::grover(8, 77),
      ir::random_circuit(10, 8, 5),
  };
  const core::SimBackend backends[] = {
      core::SimBackend::Array, core::SimBackend::DecisionDiagram,
      core::SimBackend::TensorNetwork, core::SimBackend::Mps};

  std::printf("%-14s | %-17s | %12s | %12s\n", "workload", "backend",
              "time [ms]", "repr. size");
  std::printf("%s\n", std::string(66, '-').c_str());
  for (const auto& c : workloads) {
    for (const auto b : backends) {
      core::SimulateOptions opts;
      opts.want_state = false;
      opts.shots = 64;
      try {
        const auto res = core::simulate(c, b, opts);
        std::printf("%-14s | %-17s | %12.2f | %12zu\n", c.name().c_str(),
                    core::backend_name(b), res.seconds * 1e3,
                    res.representation_size);
      } catch (const std::exception& e) {
        std::printf("%-14s | %-17s | %12s | %12s\n", c.name().c_str(),
                    core::backend_name(b), "-", "unsupported");
      }
    }
    std::printf("recommendation for %s: %s\n\n", c.name().c_str(),
                core::backend_name(core::recommend_backend(c)));
  }
  return 0;
}
