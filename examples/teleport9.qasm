// Teleportation relay with wire recycling — the constant-state showcase.
//
// A message state hops along a chain of EPR links; after each Bell
// measurement the consumed wires are reset and reused. The stale
// correction layer applied to the freshly reset |0> wires, the leading
// rz on the untouched message wire, and everything on the never-excited
// tail wires are all provably identity under qdt::flow's constant-state
// lattice: `qdt opt examples/teleport9.qasm` removes them with a
// certificate, leaving only the gates that move the state.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[9];
creg c[9];

// message: |psi> = T H |0> on q0 — the leading rz is a global phase on |0>
rz(pi/4) q[0];
h q[0];
t q[0];

// hop 1: EPR link q1-q2, Bell measurement of (q0, q1)
h q[1];
cx q[1], q[2];
cx q[0], q[1];
h q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];

// the consumed wires come back as fresh |0>
reset q[0];
reset q[1];

// stale correction layer on the recycled wires: all identity on |0>
z q[0];
s q[1];
t q[0];
cx q[0], q[3];
cx q[1], q[4];
cz q[0], q[1];

// hop 2: new EPR link q1-q5, Bell measurement of (q2, q1)
h q[1];
cx q[1], q[5];
cx q[2], q[1];
h q[2];
measure q[2] -> c[2];
measure q[1] -> c[3];
reset q[2];
reset q[1];

// stale corrections again
z q[2];
cx q[2], q[6];
s q[1];

// tail wires q7, q8 never leave |0>: this block is entirely dead
cz q[7], q[8];
z q[7];
t q[8];

// the message now lives on q5
measure q[5] -> c[5];
