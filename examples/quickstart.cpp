// Quickstart: the paper's running example (the Bell state) through all four
// data structures — the code version of Figs. 1, 2, and 3.
//
//   $ ./quickstart
#include <cstdio>

#include "core/qdt.hpp"

int main() {
  using namespace qdt;

  std::printf("Quantum Design Tools v%s — quickstart\n\n", core::version());

  // The Bell circuit of Example 1: H on q1, then CNOT(q1 -> q0).
  const ir::Circuit bell = ir::bell();
  std::printf("%s\n", bell.str().c_str());

  // -- Section II: arrays -------------------------------------------------
  const auto array_res = core::simulate(bell, core::SimBackend::Array);
  std::printf("[arrays] state vector (Fig. 1a):\n");
  for (std::size_t i = 0; i < array_res.state->size(); ++i) {
    const Complex a = (*array_res.state)[i];
    std::printf("  |%zu%zu> : %+.4f %+.4fi\n", (i >> 1) & 1, i & 1, a.real(),
                a.imag());
  }
  std::printf("  stored amplitudes: %zu (2^n)\n\n",
              array_res.representation_size);

  // -- Section III: decision diagrams --------------------------------------
  dd::DDSimulator ddsim(2);
  ddsim.run(bell);
  std::printf("[decision diagram] nodes: %zu (Fig. 1b)\n",
              ddsim.state_node_count());
  std::printf("  amplitude of |00> via path products: %+.4f\n",
              ddsim.amplitude(0).real());
  std::printf("  DOT rendering:\n%s\n",
              dd::to_dot(ddsim.package(), ddsim.state(), "bell").c_str());

  // -- Section IV: tensor networks ------------------------------------------
  std::vector<tn::Label> outs;
  tn::TensorNetwork net = tn::circuit_network(bell, outs);
  std::printf("[tensor network] %zu tensors, %zu total elements (Fig. 2)\n",
              net.num_nodes(), net.total_elements());
  tn::ContractionStats stats;
  const Complex a11 = tn::amplitude(bell, 0b11, /*greedy=*/true, &stats);
  std::printf("  <11|C|00> = %+.4f  (peak intermediate tensor: %zu "
              "elements)\n\n",
              a11.real(), stats.peak_tensor_size);

  // -- Section V: ZX-calculus -----------------------------------------------
  zx::ZXDiagram diagram = zx::to_diagram(bell);
  std::printf("[zx-calculus] spiders before reduction: %zu (Fig. 3a)\n",
              diagram.num_spiders());
  const auto simp = zx::clifford_simp(diagram);
  std::printf("  after clifford_simp: %zu spiders, %zu rewrites "
              "(graph-like form, Fig. 3c)\n",
              diagram.num_spiders(), simp.total());
  std::printf("  semantics preserved: %s\n\n",
              zx::equal_up_to_scalar(
                  zx::to_matrix(diagram),
                  [] {
                    const auto u =
                        qdt::arrays::DenseUnitary::from_circuit(ir::bell());
                    zx::ZXMatrix m;
                    m.rows = m.cols = 4;
                    m.data.resize(16);
                    for (std::size_t r = 0; r < 4; ++r) {
                      for (std::size_t c = 0; c < 4; ++c) {
                        m.data[r * 4 + c] = u.at(r, c);
                      }
                    }
                    return m;
                  }())
                  ? "yes"
                  : "NO");

  // -- Measurement (Example 1's ending) --------------------------------------
  core::SimulateOptions opts;
  opts.shots = 1000;
  const auto counts =
      core::simulate(bell, core::SimBackend::DecisionDiagram, opts);
  std::printf("sampling 1000 shots (weak simulation on the DD):\n");
  for (const auto& [word, count] : counts.counts) {
    std::printf("  |%llu%llu> : %zu\n",
                static_cast<unsigned long long>((word >> 1) & 1),
                static_cast<unsigned long long>(word & 1), count);
  }
  return 0;
}
