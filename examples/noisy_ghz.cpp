// Noise-aware simulation [13]: GHZ-state fidelity under depolarizing noise,
// computed three ways — exactly with the dense density matrix, exactly with
// the decision-diagram density matrix (the [13] method itself), and
// stochastically with decision-diagram quantum trajectories. All three must
// agree on the ensemble average.
//
//   $ ./noisy_ghz [n_qubits]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/qdt.hpp"

int main(int argc, char** argv) {
  using namespace qdt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const ir::Circuit circuit = ir::ghz(n);
  const arrays::Statevector ideal = [&] {
    arrays::StatevectorSimulator sim;
    return sim.run(circuit).state;
  }();

  std::printf("GHZ-%zu fidelity under depolarizing noise\n", n);
  std::printf("%-10s %-16s %-20s %-22s\n", "noise p", "dense rho",
              "DD rho [13] (nodes)", "DD trajectories (500x)");
  for (const double p : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    const auto noise = arrays::NoiseModel::depolarizing_model(p);

    // Exact: dense density matrix.
    arrays::DensityMatrix rho(n);
    rho.run(circuit, noise);
    const double exact = rho.fidelity(ideal);

    // Exact: density matrix as a decision diagram [13].
    dd::DDDensitySimulator ddrho(n);
    ddrho.run(circuit, noise);
    dd::VecEdge psi_dd = ddrho.package().zero_state();
    for (const auto& op : circuit.ops()) {
      psi_dd = ddrho.package().multiply(ddrho.package().gate_dd(op), psi_dd);
    }
    const double dd_exact = ddrho.fidelity(psi_dd);

    // Stochastic: average fidelity over decision-diagram trajectories.
    dd::DDSimulator sim(n, /*seed=*/2024);
    sim.set_noise(noise);
    const std::size_t trajectories = 500;
    double avg = 0.0;
    for (std::size_t t = 0; t < trajectories; ++t) {
      sim.reset_state();
      sim.run(circuit);
      Complex overlap{};
      for (std::uint64_t i = 0; i < ideal.dim(); ++i) {
        overlap += std::conj(ideal.amplitude(i)) * sim.amplitude(i);
      }
      avg += std::norm(overlap);
    }
    avg /= static_cast<double>(trajectories);

    std::printf("%-10.2f %-16.4f %-9.4f (%5zu) %-22.4f\n", p, exact,
                dd_exact, ddrho.node_count(), avg);
  }
  std::printf("\n(The trajectory column converges to the density-matrix "
              "column as the trajectory count grows.)\n");
  return 0;
}
