// Grover search, simulated on every backend that can handle it, with the
// decision-diagram backend scaling past the point where dense arrays get
// uncomfortable — the Section II vs Section III story on a real algorithm.
//
//   $ ./grover_search [n_qubits] [marked_item]
#include <cstdio>
#include <cstdlib>

#include "core/qdt.hpp"

int main(int argc, char** argv) {
  using namespace qdt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const std::uint64_t marked =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : (1ULL << n) - 3;

  std::printf("Grover search: %zu qubits, marked item %llu\n", n,
              static_cast<unsigned long long>(marked));
  const ir::Circuit circuit = ir::grover(n, marked);
  const auto stats = circuit.stats();
  std::printf("circuit: %zu gates (%zu multi-qubit), depth %zu\n\n",
              stats.total_gates, stats.multi_qubit, stats.depth);

  // Strong simulation on the DD backend; sample to find the marked item.
  core::SimulateOptions opts;
  opts.shots = 256;
  opts.want_state = false;
  opts.seed = 99;
  const auto res =
      core::simulate(circuit, core::SimBackend::DecisionDiagram, opts);
  std::printf("[decision diagram] final state uses %zu DD nodes vs %llu "
              "dense amplitudes\n",
              res.representation_size,
              static_cast<unsigned long long>(1ULL << n));

  std::uint64_t best_word = 0;
  std::size_t best_count = 0;
  for (const auto& [word, count] : res.counts) {
    if (count > best_count) {
      best_count = count;
      best_word = word;
    }
  }
  std::printf("most frequent readout: %llu (%zu / 256 shots) — %s\n",
              static_cast<unsigned long long>(best_word), best_count,
              best_word == marked ? "found the marked item"
                                  : "WRONG item");

  // Amplitude of the marked state directly (weak simulation query).
  const Complex amp =
      core::amplitude(circuit, marked, core::SimBackend::DecisionDiagram);
  std::printf("amplitude of |marked>: %.4f (success probability %.4f)\n",
              std::abs(amp), std::norm(amp));

  // Cross-check against the array backend while it is still feasible.
  if (n <= 14) {
    const Complex ref =
        core::amplitude(circuit, marked, core::SimBackend::Array);
    std::printf("array backend agrees: %s\n",
                std::abs(amp - ref) < 1e-8 ? "yes" : "NO");
  } else {
    std::printf("(array cross-check skipped: 2^%zu amplitudes is past the "
                "comfortable dense limit)\n",
                n);
  }
  return 0;
}
