// T-count reduction with the ZX-calculus [39]: translate Clifford+T
// circuits into ZX-diagrams, run the graph-like simplifier, and report how
// many non-Clifford phases survive. T gates dominate the cost of
// fault-tolerant execution, so this is the headline ZX optimization metric.
//
//   $ ./tcount_optimizer [n_qubits] [num_gates]
#include <cstdio>
#include <cstdlib>

#include "core/qdt.hpp"

int main(int argc, char** argv) {
  using namespace qdt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::size_t gates =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;

  std::printf("ZX T-count reduction on random Clifford+T circuits "
              "(%zu qubits, %zu gates)\n\n",
              n, gates);
  std::printf("%-6s %-10s %-12s %-12s %-10s %-10s\n", "seed", "t-frac",
              "T before", "T after", "reduction", "spiders");

  for (const double t_fraction : {0.1, 0.2, 0.3}) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const ir::Circuit c =
          ir::random_clifford_t(n, gates, t_fraction, seed);
      const std::size_t before = c.t_count();

      zx::ZXDiagram d = zx::to_diagram(c);
      const std::size_t spiders_before = d.num_spiders();
      zx::clifford_simp(d);
      const std::size_t after = d.t_count();

      std::printf("%-6llu %-10.1f %-12zu %-12zu %-9.1f%% %zu -> %zu\n",
                  static_cast<unsigned long long>(seed), t_fraction, before,
                  after,
                  before == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(before - after) /
                            static_cast<double>(before),
                  spiders_before, d.num_spiders());
    }
  }

  std::printf("\nsanity: a fully Clifford circuit reduces to T-count 0: ");
  std::printf("%zu\n", zx::reduced_t_count(ir::random_clifford(n, gates, 7)));
  return 0;
}
