#include "arrays/svsim.hpp"

#include <algorithm>
#include <cmath>

#include "common/bitops.hpp"
#include "guard/budget.hpp"
#include "obs/obs.hpp"

namespace qdt::arrays {

namespace {

obs::Counter& g_gates = obs::counter("qdt.arrays.svsim.gates_applied");
obs::Counter& g_bytes = obs::counter("qdt.arrays.svsim.bytes_allocated");
obs::Gauge& g_bytes_peak = obs::gauge("qdt.arrays.svsim.bytes_peak");
obs::Histogram& g_gate_seconds =
    obs::histogram("qdt.arrays.svsim.gate_seconds");

}  // namespace

SvResult StatevectorSimulator::run(const ir::Circuit& circuit) {
  SvResult res{Statevector(circuit.num_qubits()), {}};
  const std::size_t state_bytes = res.state.dim() * sizeof(Complex);
  g_bytes.add(state_bytes);
  g_bytes_peak.update_max(static_cast<std::int64_t>(state_bytes));
  for (const auto& op : circuit.ops()) {
    guard::check_deadline();
    if (op.is_barrier()) {
      continue;
    }
    if (op.is_measurement()) {
      for (const auto q : op.targets()) {
        bool outcome = res.state.measure(q, rng_);
        if (noise_.readout_error > 0.0 &&
            rng_.uniform() < noise_.readout_error) {
          outcome = !outcome;  // classical readout flip (state unchanged)
        }
        res.measurements.emplace_back(q, outcome);
      }
      continue;
    }
    if (op.is_reset()) {
      for (const auto q : op.targets()) {
        res.state.reset(q, rng_);
      }
      continue;
    }
    {
      const obs::ScopedTimer timer(g_gate_seconds);
      res.state.apply(op);
      g_gates.add();
    }
    for (const auto& ch : noise_.gate_noise) {
      for (const auto q : op.qubits()) {
        apply_channel_trajectory(res.state, ch, q);
      }
    }
  }
  return res;
}

std::map<std::uint64_t, std::size_t> StatevectorSimulator::sample_counts(
    const ir::Circuit& circuit, std::size_t shots) {
  std::map<std::uint64_t, std::size_t> counts;
  const bool single_pass = circuit.is_unitary() && noise_.empty();
  if (single_pass) {
    const SvResult res = run(circuit);
    for (std::size_t s = 0; s < shots; ++s) {
      ++counts[res.state.sample(rng_)];
    }
    return counts;
  }
  for (std::size_t s = 0; s < shots; ++s) {
    const SvResult res = run(circuit);
    std::uint64_t word = res.state.sample(rng_);
    // Mid-circuit measurement records overwrite the sampled bits so that
    // recorded readout errors are reflected.
    for (const auto& [q, bit] : res.measurements) {
      word = set_bit(word, q, bit);
    }
    ++counts[word];
  }
  return counts;
}

void StatevectorSimulator::apply_channel_trajectory(Statevector& sv,
                                                    const KrausChannel& ch,
                                                    ir::Qubit q) {
  // Compute the branch weights || K_i |psi> ||^2 and pick one.
  std::vector<Statevector> branches;
  std::vector<double> weights;
  branches.reserve(ch.ops.size());
  for (const auto& k : ch.ops) {
    Statevector branch = sv;
    branch.apply_matrix2(q, k);
    const double w = branch.norm();
    branches.push_back(std::move(branch));
    weights.push_back(w * w);
  }
  double r = rng_.uniform();
  std::size_t pick = weights.size() - 1;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) {
      pick = i;
      break;
    }
  }
  sv = std::move(branches[pick]);
  if (weights[pick] > 0.0) {
    sv.normalize();
  }
}

}  // namespace qdt::arrays
