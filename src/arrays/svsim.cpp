#include "arrays/svsim.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "common/bitops.hpp"
#include "guard/budget.hpp"
#include "obs/obs.hpp"
#include "par/pool.hpp"
#include "trace/trace.hpp"

namespace qdt::arrays {

namespace {

obs::Counter& g_gates = obs::counter("qdt.arrays.svsim.gates_applied");
obs::Counter& g_bytes = obs::counter("qdt.arrays.svsim.bytes_allocated");
obs::Gauge& g_bytes_peak = obs::gauge("qdt.arrays.svsim.bytes_peak");
obs::Histogram& g_gate_seconds =
    obs::histogram("qdt.arrays.svsim.gate_seconds");

/// Shots per chunk when drawing from a prebuilt CDF (a draw is one binary
/// search, so batch generously); trajectory shots re-run the whole circuit
/// and get a chunk each.
constexpr std::size_t kCdfShotGrain = 256;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void merge_counts(std::map<std::uint64_t, std::size_t>& into,
                  const std::map<std::uint64_t, std::size_t>& from,
                  std::mutex& mu) {
  const std::lock_guard<std::mutex> lock(mu);
  for (const auto& [word, n] : from) {
    into[word] += n;
  }
}

}  // namespace

SvResult StatevectorSimulator::run(const ir::Circuit& circuit) {
  return run_with(circuit, rng_);
}

SvResult StatevectorSimulator::run_with(const ir::Circuit& circuit, Rng& rng) {
  trace::Span span("qdt.arrays.svsim.run");
  span.attr("backend", "array")
      .attr("qubits", static_cast<std::uint64_t>(circuit.num_qubits()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()));
  SvResult res{Statevector(circuit.num_qubits()), {}};
  const std::size_t state_bytes = res.state.dim() * sizeof(Complex);
  g_bytes.add(state_bytes);
  g_bytes_peak.update_max(static_cast<std::int64_t>(state_bytes));
  span.attr("state_bytes", static_cast<std::uint64_t>(state_bytes));
  for (const auto& op : circuit.ops()) {
    guard::check_deadline();
    if (op.is_barrier()) {
      continue;
    }
    if (op.is_measurement()) {
      for (const auto q : op.targets()) {
        bool outcome = res.state.measure(q, rng);
        if (noise_.readout_error > 0.0 &&
            rng.uniform() < noise_.readout_error) {
          outcome = !outcome;  // classical readout flip (state unchanged)
        }
        res.measurements.emplace_back(q, outcome);
      }
      continue;
    }
    if (op.is_reset()) {
      for (const auto q : op.targets()) {
        res.state.reset(q, rng);
      }
      continue;
    }
    {
      const obs::ScopedTimer timer(g_gate_seconds);
      res.state.apply(op);
      g_gates.add();
    }
    for (const auto& ch : noise_.gate_noise) {
      for (const auto q : op.qubits()) {
        apply_channel_trajectory(res.state, ch, q, rng);
      }
    }
  }
  return res;
}

std::uint64_t StatevectorSimulator::shot_seed(std::uint64_t base,
                                              std::size_t shot) {
  return splitmix64(base ^ splitmix64(static_cast<std::uint64_t>(shot)));
}

std::map<std::uint64_t, std::size_t> StatevectorSimulator::sample_counts(
    const ir::Circuit& circuit, std::size_t shots) {
  std::map<std::uint64_t, std::size_t> counts;
  // One engine draw anchors all per-shot streams: the histogram depends only
  // on (seed, prior draws, shots), never on the thread count or the order in
  // which shot chunks finish.
  const std::uint64_t base = rng_.engine()();
  std::mutex mu;
  const bool single_pass = circuit.is_unitary() && noise_.empty();
  if (single_pass) {
    const SvResult res = run(circuit);
    const std::vector<double> cdf = res.state.cumulative_probabilities();
    par::parallel_for(
        0, shots, kCdfShotGrain, [&](std::size_t lo, std::size_t hi) {
          // Runs on pool workers: the span parents under the submitting
          // task via the pool's adopted trace context.
          trace::Span chunk("qdt.arrays.svsim.shot_chunk");
          chunk.attr("backend", "array")
              .attr("shots", static_cast<std::uint64_t>(hi - lo));
          std::map<std::uint64_t, std::size_t> local;
          for (std::size_t s = lo; s < hi; ++s) {
            Rng shot_rng(shot_seed(base, s));
            ++local[Statevector::sample_from_cdf(cdf, shot_rng)];
          }
          merge_counts(counts, local, mu);
        });
    return counts;
  }
  par::parallel_for(0, shots, 1, [&](std::size_t lo, std::size_t hi) {
    trace::Span chunk("qdt.arrays.svsim.shot_chunk");
    chunk.attr("backend", "array")
        .attr("shots", static_cast<std::uint64_t>(hi - lo));
    std::map<std::uint64_t, std::size_t> local;
    for (std::size_t s = lo; s < hi; ++s) {
      Rng shot_rng(shot_seed(base, s));
      const SvResult res = run_with(circuit, shot_rng);
      const std::vector<double> cdf = res.state.cumulative_probabilities();
      std::uint64_t word = Statevector::sample_from_cdf(cdf, shot_rng);
      // Mid-circuit measurement records overwrite the sampled bits so that
      // recorded readout errors are reflected.
      for (const auto& [q, bit] : res.measurements) {
        word = set_bit(word, q, bit);
      }
      ++local[word];
    }
    merge_counts(counts, local, mu);
  });
  return counts;
}

void StatevectorSimulator::apply_channel_trajectory(Statevector& sv,
                                                    const KrausChannel& ch,
                                                    ir::Qubit q, Rng& rng) {
  // Branch weights || K_i |psi> ||^2 are computed in place over the
  // (i0, i1) index pairs; only the selected operator touches the state.
  // (The previous implementation materialized a full Statevector copy per
  // Kraus operator — K * 2^n transient complex doubles that never showed
  // up in bytes_peak or guard::check_memory.)
  std::vector<double> weights;
  weights.reserve(ch.ops.size());
  for (const auto& k : ch.ops) {
    weights.push_back(sv.branch_weight(q, k));
  }
  double r = rng.uniform();
  std::size_t pick = weights.size() - 1;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) {
      pick = i;
      break;
    }
  }
  if (!(weights[pick] > 0.0)) {
    // The draw overshot the summed weights (rounding) and landed on a
    // zero-weight branch; applying it would zero the state. Fall back to
    // the heaviest branch instead.
    pick = static_cast<std::size_t>(
        std::max_element(weights.begin(), weights.end()) - weights.begin());
    if (!(weights[pick] > 0.0)) {
      throw Error::internal(
          "apply_channel_trajectory: all Kraus branch weights are "
          "non-positive on qubit " +
          std::to_string(q));
    }
  }
  sv.apply_matrix2(q, ch.ops[pick]);
  sv.normalize();
}

}  // namespace qdt::arrays
