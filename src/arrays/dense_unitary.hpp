// Full 2^n x 2^n operator representation — the matrix half of Section II.
//
// Quadratically worse than the statevector (4^n entries), so only usable for
// small n; that makes it the perfect *oracle*: every other backend's result
// is checked against this one in the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "common/eps.hpp"
#include "ir/circuit.hpp"

namespace qdt::arrays {

class DenseUnitary {
 public:
  /// Identity on n qubits.
  explicit DenseUnitary(std::size_t num_qubits);

  /// The full unitary of a circuit (must contain only unitary ops/barriers).
  static DenseUnitary from_circuit(const ir::Circuit& circuit);

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return dim_; }

  Complex& at(std::size_t row, std::size_t col) {
    return data_[row * dim_ + col];
  }
  const Complex& at(std::size_t row, std::size_t col) const {
    return data_[row * dim_ + col];
  }

  /// Left-multiply by a gate: U := G * U.
  void apply(const ir::Operation& op);

  DenseUnitary operator*(const DenseUnitary& rhs) const;
  DenseUnitary adjoint() const;

  std::vector<Complex> apply_to(const std::vector<Complex>& vec) const;

  bool approx_equal(const DenseUnitary& other, double eps = 1e-9) const;
  bool is_identity(double eps = 1e-9) const;
  bool is_identity_up_to_global_phase(double eps = 1e-9) const;
  bool equal_up_to_global_phase(const DenseUnitary& other,
                                double eps = 1e-9) const;

  /// max_ij |a_ij - b_ij| — the operator-entry distance used in tests.
  double max_entry_distance(const DenseUnitary& other) const;

 private:
  std::size_t num_qubits_;
  std::size_t dim_;
  std::vector<Complex> data_;  // row-major
};

}  // namespace qdt::arrays
