// Mixed-state simulation with a full 2^n x 2^n density matrix.
//
// The arrays backend is the only one in this library that represents mixed
// states exactly, which is why noise-aware simulation [13] is its flagship
// capability (decision diagrams can too — see the DD package notes — but the
// dense form is the oracle).
#pragma once

#include <cstdint>
#include <vector>

#include "arrays/noise.hpp"
#include "arrays/statevector.hpp"
#include "common/eps.hpp"
#include "ir/circuit.hpp"

namespace qdt::arrays {

class DensityMatrix {
 public:
  /// |0..0><0..0| on n qubits.
  explicit DensityMatrix(std::size_t num_qubits);

  /// Pure-state density matrix |psi><psi|.
  explicit DensityMatrix(const Statevector& psi);

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return dim_; }

  Complex& at(std::size_t row, std::size_t col) {
    return data_[row * dim_ + col];
  }
  const Complex& at(std::size_t row, std::size_t col) const {
    return data_[row * dim_ + col];
  }

  /// rho -> U rho U^dagger for a unitary catalogue operation.
  void apply(const ir::Operation& op);

  /// Apply a single-qubit Kraus channel to qubit q.
  void apply_channel(const KrausChannel& channel, ir::Qubit q);

  /// Run a full circuit under a noise model (channels after each gate).
  void run(const ir::Circuit& circuit, const NoiseModel& noise);

  /// Measurement probability distribution (the diagonal).
  std::vector<double> probabilities() const;

  double trace_real() const;

  /// Tr(rho^2): 1 for pure states, 1/2^n for the maximally mixed state.
  double purity() const;

  /// <psi| rho |psi>.
  double fidelity(const Statevector& psi) const;

  bool approx_equal(const DensityMatrix& other, double eps = 1e-9) const;

 private:
  /// rho -> G rho (gate kernel applied to the row index, each column).
  void apply_left(const ir::Operation& op);
  /// rho -> rho G^dagger (conjugated kernel applied to the column index).
  void apply_right_dagger(const ir::Operation& op);

  std::size_t num_qubits_;
  std::size_t dim_;
  std::vector<Complex> data_;  // row-major
};

}  // namespace qdt::arrays
