#include "arrays/density_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "guard/budget.hpp"
#include "par/pool.hpp"

namespace qdt::arrays {

namespace {

/// Rows/columns per parallel chunk: one column costs O(dim) flops, so scale
/// the grain to keep roughly a kernel-grain worth of elements per chunk
/// (small matrices stay on one chunk and run inline).
std::size_t line_grain(std::size_t dim) {
  return std::max<std::size_t>(1, par::kKernelGrain / dim);
}

/// Width check *before* the member-initializer shift: 1 << n for n >= 64
/// is UB, and a 4^n matrix past the wall must die with a structured error.
std::size_t checked_density_width(std::size_t num_qubits) {
  if (num_qubits > 13) {
    throw Error::exhausted(
        Resource::Memory, "DensityMatrix: 4^" + std::to_string(num_qubits) +
                              " entries exceed the array-backend budget");
  }
  guard::check_memory((std::size_t{1} << (2 * num_qubits)) * sizeof(Complex),
                      "density matrix");
  return num_qubits;
}

}  // namespace

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : num_qubits_(checked_density_width(num_qubits)),
      dim_(std::size_t{1} << num_qubits) {
  data_.assign(dim_ * dim_, Complex{});
  at(0, 0) = 1.0;
}

DensityMatrix::DensityMatrix(const Statevector& psi)
    : num_qubits_(psi.num_qubits()), dim_(psi.dim()) {
  data_.assign(dim_ * dim_, Complex{});
  const auto& a = psi.amplitudes();
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      at(r, c) = a[r] * std::conj(a[c]);
    }
  }
}

void DensityMatrix::apply_left(const ir::Operation& op) {
  // Columns are independent (each chunk writes its own columns only).
  par::parallel_for(
      0, dim_, line_grain(dim_), [&](std::size_t lo, std::size_t hi) {
        std::vector<Complex> column(dim_);
        for (std::size_t c = lo; c < hi; ++c) {
          for (std::size_t r = 0; r < dim_; ++r) {
            column[r] = at(r, c);
          }
          Statevector sv(column);
          sv.apply(op);
          for (std::size_t r = 0; r < dim_; ++r) {
            at(r, c) = sv.amplitudes()[r];
          }
        }
      });
}

void DensityMatrix::apply_right_dagger(const ir::Operation& op) {
  // rho U^dagger: conjugate each row, apply U as a kernel, conjugate back.
  par::parallel_for(
      0, dim_, line_grain(dim_), [&](std::size_t lo, std::size_t hi) {
        std::vector<Complex> row(dim_);
        for (std::size_t r = lo; r < hi; ++r) {
          for (std::size_t c = 0; c < dim_; ++c) {
            row[c] = std::conj(at(r, c));
          }
          Statevector sv(row);
          sv.apply(op);
          for (std::size_t c = 0; c < dim_; ++c) {
            at(r, c) = std::conj(sv.amplitudes()[c]);
          }
        }
      });
}

void DensityMatrix::apply(const ir::Operation& op) {
  if (!op.is_unitary()) {
    throw std::logic_error("DensityMatrix::apply: non-unitary op " +
                           op.str());
  }
  apply_left(op);
  apply_right_dagger(op);
}

void DensityMatrix::apply_channel(const KrausChannel& channel, ir::Qubit q) {
  std::vector<Complex> acc(dim_ * dim_, Complex{});
  for (const auto& k : channel.ops) {
    // term = K rho K^dagger, built with the raw-matrix statevector kernels.
    std::vector<Complex> term = data_;
    // Left: per column.
    par::parallel_for(
        0, dim_, line_grain(dim_), [&](std::size_t lo, std::size_t hi) {
          std::vector<Complex> work(dim_);
          for (std::size_t c = lo; c < hi; ++c) {
            for (std::size_t r = 0; r < dim_; ++r) {
              work[r] = term[r * dim_ + c];
            }
            Statevector sv(work);
            sv.apply_matrix2(q, k);
            for (std::size_t r = 0; r < dim_; ++r) {
              term[r * dim_ + c] = sv.amplitudes()[r];
            }
          }
        });
    // Right-dagger: per conjugated row.
    par::parallel_for(
        0, dim_, line_grain(dim_), [&](std::size_t lo, std::size_t hi) {
          std::vector<Complex> work(dim_);
          for (std::size_t r = lo; r < hi; ++r) {
            for (std::size_t c = 0; c < dim_; ++c) {
              work[c] = std::conj(term[r * dim_ + c]);
            }
            Statevector sv(work);
            sv.apply_matrix2(q, k);
            for (std::size_t c = 0; c < dim_; ++c) {
              term[r * dim_ + c] = std::conj(sv.amplitudes()[c]);
            }
          }
        });
    par::parallel_for(0, acc.size(), par::kReduceGrain,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) {
                          acc[i] += term[i];
                        }
                      });
  }
  data_ = std::move(acc);
}

void DensityMatrix::run(const ir::Circuit& circuit, const NoiseModel& noise) {
  if (circuit.num_qubits() != num_qubits_) {
    throw std::invalid_argument("DensityMatrix::run: width mismatch");
  }
  for (const auto& op : circuit.ops()) {
    if (op.is_barrier()) {
      continue;
    }
    if (op.is_measurement() || op.is_reset()) {
      // Non-selective measurement: rho -> P0 rho P0 + P1 rho P1; a reset
      // additionally maps the 1-branch back to 0 with an X.
      for (const auto q : op.targets()) {
        Mat2 p0;
        p0(0, 0) = 1.0;
        Mat2 p1;
        p1(1, 1) = 1.0;
        KrausChannel collapse;
        if (op.is_reset()) {
          Mat2 x_p1;  // X * P1: maps |1> to |0>
          x_p1(0, 1) = 1.0;
          collapse = {"reset", {p0, x_p1}};
        } else {
          collapse = {"measure", {p0, p1}};
        }
        apply_channel(collapse, q);
      }
      continue;
    }
    apply(op);
    for (const auto& ch : noise.gate_noise) {
      for (const auto q : op.qubits()) {
        apply_channel(ch, q);
      }
    }
  }
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> p(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    p[i] = at(i, i).real();
  }
  return p;
}

double DensityMatrix::trace_real() const {
  double t = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    t += at(i, i).real();
  }
  return t;
}

double DensityMatrix::purity() const {
  // Tr(rho^2) = sum_ij rho_ij * rho_ji = sum_ij |rho_ij|^2 (rho Hermitian).
  double s = 0.0;
  for (const auto& v : data_) {
    s += std::norm(v);
  }
  return s;
}

double DensityMatrix::fidelity(const Statevector& psi) const {
  if (psi.dim() != dim_) {
    throw std::invalid_argument("fidelity: dimension mismatch");
  }
  const auto& a = psi.amplitudes();
  Complex s = 0.0;
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      s += std::conj(a[r]) * at(r, c) * a[c];
    }
  }
  return s.real();
}

bool DensityMatrix::approx_equal(const DensityMatrix& other,
                                 double eps) const {
  if (other.dim_ != dim_) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (!qdt::approx_equal(data_[i], other.data_[i], eps)) {
      return false;
    }
  }
  return true;
}

}  // namespace qdt::arrays
