#include "arrays/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"
#include "guard/budget.hpp"
#include "par/pool.hpp"

namespace qdt::arrays {

namespace {

bool is_power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::size_t log2_exact(std::size_t v) {
  std::size_t n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

std::uint64_t control_mask_of(const ir::Operation& op) {
  std::uint64_t mask = 0;
  for (const auto c : op.controls()) {
    mask |= 1ULL << c;
  }
  return mask;
}

double add(double a, double b) { return a + b; }

}  // namespace

Statevector::Statevector(std::size_t num_qubits) : num_qubits_(num_qubits) {
  // Validate the width before any 1ULL << n: a shift of 64+ is UB, and a
  // width at the Section II memory wall must fail with a structured error,
  // not a std::bad_alloc (or the OOM killer).
  if (num_qubits >= 30) {
    throw Error::exhausted(
        Resource::Memory,
        "Statevector: refusing to allocate 2^" + std::to_string(num_qubits) +
            " amplitudes — this is the Section II memory wall");
  }
  guard::check_memory((std::size_t{1} << num_qubits) * sizeof(Complex),
                      "statevector");
  data_.assign(std::size_t{1} << num_qubits, Complex{});
  data_[0] = 1.0;
}

Statevector::Statevector(std::vector<Complex> amplitudes)
    : data_(std::move(amplitudes)) {
  if (!is_power_of_two(data_.size())) {
    throw std::invalid_argument("Statevector: size must be a power of two");
  }
  num_qubits_ = log2_exact(data_.size());
}

void Statevector::apply(const ir::Operation& op) {
  if (!op.is_unitary()) {
    throw std::logic_error("Statevector::apply: non-unitary op " + op.str());
  }
  const std::uint64_t cmask = control_mask_of(op);
  if (op.targets().size() == 1) {
    apply_matrix2(op.targets()[0], op.matrix2(), cmask);
  } else {
    apply_matrix4(op.targets()[0], op.targets()[1], op.matrix4(), cmask);
  }
}

void Statevector::apply_matrix2(ir::Qubit target, const Mat2& m,
                                std::uint64_t control_mask) {
  // Every i addresses the disjoint pair (i0, i1), so chunks write disjoint
  // amplitudes and the result is bitwise identical at any thread count.
  // Matrix entries are hoisted into locals: stores through data_ cannot
  // alias them, so the compiler keeps them in registers across the loop.
  const std::size_t half = data_.size() >> 1;
  const Complex m00 = m(0, 0);
  const Complex m01 = m(0, 1);
  const Complex m10 = m(1, 0);
  const Complex m11 = m(1, 1);
  Complex* const d = data_.data();
  par::parallel_for(
      0, half, par::kKernelGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint64_t i0 = insert_zero_bit(i, target);
          if ((i0 & control_mask) != control_mask) {
            continue;
          }
          const std::uint64_t i1 = i0 | (1ULL << target);
          const Complex a0 = d[i0];
          const Complex a1 = d[i1];
          d[i0] = m00 * a0 + m01 * a1;
          d[i1] = m10 * a0 + m11 * a1;
        }
      });
}

void Statevector::apply_matrix4(ir::Qubit t0, ir::Qubit t1, const Mat4& m,
                                std::uint64_t control_mask) {
  const std::size_t quarter = data_.size() >> 2;
  const ir::Qubit lo_q = std::min(t0, t1);
  const ir::Qubit hi_q = std::max(t0, t1);
  // Hoisted copy for the same aliasing reason as apply_matrix2.
  Complex mm[4][4];
  for (std::uint64_t r = 0; r < 4; ++r) {
    for (std::uint64_t c = 0; c < 4; ++c) {
      mm[r][c] = m(r, c);
    }
  }
  Complex* const d = data_.data();
  par::parallel_for(
      0, quarter, par::kKernelGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint64_t base = insert_two_zero_bits(i, lo_q, hi_q);
          if ((base & control_mask) != control_mask) {
            continue;
          }
          // Matrix index bit 0 corresponds to t0, bit 1 to t1.
          std::uint64_t idx[4];
          for (std::uint64_t r = 0; r < 4; ++r) {
            std::uint64_t v = base;
            v = set_bit(v, t0, (r & 1) != 0);
            v = set_bit(v, t1, (r & 2) != 0);
            idx[r] = v;
          }
          const Complex a[4] = {d[idx[0]], d[idx[1]], d[idx[2]], d[idx[3]]};
          for (std::uint64_t r = 0; r < 4; ++r) {
            Complex s = 0.0;
            for (std::uint64_t c = 0; c < 4; ++c) {
              s += mm[r][c] * a[c];
            }
            d[idx[r]] = s;
          }
        }
      });
}

double Statevector::prob_one(ir::Qubit q) const {
  const std::size_t half = data_.size() >> 1;
  return par::parallel_reduce(
      0, half, par::kReduceGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double p = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint64_t i1 = insert_zero_bit(i, q) | (1ULL << q);
          p += std::norm(data_[i1]);
        }
        return p;
      },
      add);
}

bool Statevector::measure(ir::Qubit q, Rng& rng) {
  // prob_one accumulates 2^(n-1) squared magnitudes; rounding can land a
  // hair above 1.0, and 1.0 - p1 would then be negative — the unselected
  // branch's scale would collapse to 0 and silently zero the whole state.
  const double p1 = std::clamp(prob_one(q), 0.0, 1.0);
  const bool outcome = rng.uniform() < p1;
  const double keep_prob = outcome ? p1 : 1.0 - p1;
  if (!(keep_prob > 0.0)) {
    // Possible only on a degenerate draw (e.g. uniform() == 1.0 against
    // p1 == 1.0) or a corrupted state; zeroing the state silently is never
    // acceptable, so fail loudly instead.
    throw Error::internal(
        "Statevector::measure: selected outcome " +
        std::to_string(static_cast<int>(outcome)) + " on qubit " +
        std::to_string(q) + " has non-positive probability " +
        std::to_string(keep_prob));
  }
  const double scale = 1.0 / std::sqrt(keep_prob);
  const std::size_t half = data_.size() >> 1;
  par::parallel_for(
      0, half, par::kKernelGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint64_t i0 = insert_zero_bit(i, q);
          const std::uint64_t i1 = i0 | (1ULL << q);
          if (outcome) {
            data_[i0] = 0.0;
            data_[i1] *= scale;
          } else {
            data_[i0] *= scale;
            data_[i1] = 0.0;
          }
        }
      });
  return outcome;
}

std::vector<double> Statevector::cumulative_probabilities() const {
  // Sequential prefix sum on purpose: the partial sums are exactly those
  // of the historical per-shot linear scan, so binary-searching this
  // vector reproduces its draws bit for bit.
  std::vector<double> cdf(data_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    acc += std::norm(data_[i]);
    cdf[i] = acc;
  }
  return cdf;
}

std::uint64_t Statevector::sample_from_cdf(const std::vector<double>& cdf,
                                           Rng& rng) {
  const double r = rng.uniform();
  // First index with cdf[i] >= r — the same state the linear scan
  // (r - sum <= 0) selects. The numerical remainder (r beyond the final
  // partial sum) lands on the last state, as before.
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
  if (it == cdf.end()) {
    return cdf.size() - 1;
  }
  return static_cast<std::uint64_t>(it - cdf.begin());
}

std::uint64_t Statevector::sample(Rng& rng) const {
  return sample_from_cdf(cumulative_probabilities(), rng);
}

double Statevector::branch_weight(ir::Qubit q, const Mat2& k) const {
  const std::size_t half = data_.size() >> 1;
  return par::parallel_reduce(
      0, half, par::kReduceGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double w = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint64_t i0 = insert_zero_bit(i, q);
          const std::uint64_t i1 = i0 | (1ULL << q);
          const Complex a0 = data_[i0];
          const Complex a1 = data_[i1];
          w += std::norm(k(0, 0) * a0 + k(0, 1) * a1) +
               std::norm(k(1, 0) * a0 + k(1, 1) * a1);
        }
        return w;
      },
      add);
}

void Statevector::reset(ir::Qubit q, Rng& rng) {
  if (measure(q, rng)) {
    Mat2 x;
    x(0, 1) = 1.0;
    x(1, 0) = 1.0;
    apply_matrix2(q, x);
  }
}

Complex Statevector::inner_product(const Statevector& other) const {
  if (other.dim() != dim()) {
    throw std::invalid_argument("inner_product: dimension mismatch");
  }
  return par::parallel_reduce(
      0, data_.size(), par::kReduceGrain, Complex{},
      [&](std::size_t lo, std::size_t hi) {
        Complex s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          s += std::conj(data_[i]) * other.data_[i];
        }
        return s;
      },
      [](Complex a, Complex b) { return a + b; });
}

double Statevector::fidelity(const Statevector& other) const {
  return std::norm(inner_product(other));
}

double Statevector::norm() const {
  const double s = par::parallel_reduce(
      0, data_.size(), par::kReduceGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double p = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          p += std::norm(data_[i]);
        }
        return p;
      },
      add);
  return std::sqrt(s);
}

void Statevector::normalize() {
  const double n = norm();
  if (n <= 0.0) {
    throw std::logic_error("normalize: zero state");
  }
  const double inv = 1.0 / n;
  par::parallel_for(0, data_.size(), par::kReduceGrain,
                    [&](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        data_[i] *= inv;
                      }
                    });
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> p(data_.size());
  par::parallel_for(0, data_.size(), par::kReduceGrain,
                    [&](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        p[i] = std::norm(data_[i]);
                      }
                    });
  return p;
}

bool Statevector::approx_equal(const Statevector& other, double eps) const {
  if (other.dim() != dim()) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (!qdt::approx_equal(data_[i], other.data_[i], eps)) {
      return false;
    }
  }
  return true;
}

bool Statevector::equal_up_to_global_phase(const Statevector& other,
                                           double eps) const {
  if (other.dim() != dim()) {
    return false;
  }
  // Phase-align on the largest amplitude of `other`.
  std::size_t k = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(other.data_[i]) > best) {
      best = std::abs(other.data_[i]);
      k = i;
    }
  }
  if (best <= eps) {
    return approx_equal(other, eps);
  }
  const Complex ratio = data_[k] / other.data_[k];
  if (std::abs(std::abs(ratio) - 1.0) > eps) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (!qdt::approx_equal(data_[i], other.data_[i] * ratio, eps)) {
      return false;
    }
  }
  return true;
}

}  // namespace qdt::arrays
