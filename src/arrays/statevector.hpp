// The Section II data structure: a quantum state as a flat array of 2^n
// complex amplitudes, with in-place stride kernels for gate application.
//
// This is the simplest and most general backend — and the memory wall it
// hits (2^n growth, "today's practical limit is less than 50 qubits") is
// exactly the motivation the paper gives for the other three structures.
#pragma once

#include <cstdint>
#include <vector>

#include "common/eps.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "ir/operation.hpp"

namespace qdt::arrays {

class Statevector {
 public:
  /// |0...0> on n qubits. n must be small enough that 2^n fits in memory.
  explicit Statevector(std::size_t num_qubits);

  /// State with explicit amplitudes; size must be a power of two.
  explicit Statevector(std::vector<Complex> amplitudes);

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return data_.size(); }
  const std::vector<Complex>& amplitudes() const { return data_; }
  Complex amplitude(std::uint64_t basis_state) const {
    return data_[basis_state];
  }

  /// Apply a unitary operation (any catalogue gate, any number of controls).
  void apply(const ir::Operation& op);

  /// Apply a raw 2x2 matrix to `target`, restricted to basis states where
  /// every bit of `control_mask` is 1.
  void apply_matrix2(ir::Qubit target, const Mat2& m,
                     std::uint64_t control_mask = 0);

  /// Apply a raw 4x4 matrix to (t0, t1) where t0 indexes matrix bit 0.
  void apply_matrix4(ir::Qubit t0, ir::Qubit t1, const Mat4& m,
                     std::uint64_t control_mask = 0);

  /// Probability of measuring qubit q as 1.
  double prob_one(ir::Qubit q) const;

  /// Measure a single qubit: collapses the state, returns the outcome.
  /// The branch probability is clamped into [0, 1] before the draw —
  /// prob_one sums 2^(n-1) terms and rounding can push it past 1.0, which
  /// would otherwise make the unselected branch's renormalization factor
  /// degenerate. Throws Error(Internal) if the selected branch has
  /// non-positive probability (the state would be silently zeroed).
  bool measure(ir::Qubit q, Rng& rng);

  /// Non-destructive sampling of a full basis-state readout. One uniform
  /// draw per call; equivalent to sample_from_cdf(cumulative_probabilities()).
  std::uint64_t sample(Rng& rng) const;

  /// Running sum of |a_i|^2, accumulated sequentially (index order), so a
  /// binary search over it selects exactly the basis state the historical
  /// linear scan would have selected for the same uniform draw. Build this
  /// once per state, then draw shots in O(log 2^n) each.
  std::vector<double> cumulative_probabilities() const;

  /// One basis-state draw from a prebuilt cumulative distribution (one
  /// rng.uniform() per call, binary search). `cdf` must come from
  /// cumulative_probabilities() on a state of the same dimension.
  static std::uint64_t sample_from_cdf(const std::vector<double>& cdf,
                                       Rng& rng);

  /// || K |psi> ||^2 for a single-qubit operator K on `q`, computed in
  /// place over the (i0, i1) index pairs — no state copy is materialized.
  double branch_weight(ir::Qubit q, const Mat2& k) const;

  /// Force qubit q to |0> (measure and, on outcome 1, apply X).
  void reset(ir::Qubit q, Rng& rng);

  /// <this|other>.
  Complex inner_product(const Statevector& other) const;

  /// |<this|other>|^2.
  double fidelity(const Statevector& other) const;

  double norm() const;
  void normalize();

  /// Probability vector |a_i|^2.
  std::vector<double> probabilities() const;

  bool approx_equal(const Statevector& other, double eps = 1e-9) const;

  /// Equality up to a global phase factor.
  bool equal_up_to_global_phase(const Statevector& other,
                                double eps = 1e-9) const;

 private:
  std::size_t num_qubits_;
  std::vector<Complex> data_;
};

}  // namespace qdt::arrays
