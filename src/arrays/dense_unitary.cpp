#include "arrays/dense_unitary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "arrays/statevector.hpp"
#include "guard/budget.hpp"
#include "par/pool.hpp"

namespace qdt::arrays {

namespace {

/// Rows/columns per parallel chunk, scaled so a chunk carries roughly a
/// kernel-grain worth of O(dim)-cost lines (small matrices run inline).
std::size_t line_grain(std::size_t dim) {
  return std::max<std::size_t>(1, par::kKernelGrain / dim);
}

/// See checked_density_width in density_matrix.cpp: validate before the
/// member-initializer shift, with a structured ResourceExhausted error.
std::size_t checked_unitary_width(std::size_t num_qubits) {
  if (num_qubits > 14) {
    throw Error::exhausted(
        Resource::Memory, "DenseUnitary: 4^" + std::to_string(num_qubits) +
                              " entries exceed the array-backend budget");
  }
  guard::check_memory((std::size_t{1} << (2 * num_qubits)) * sizeof(Complex),
                      "dense unitary");
  return num_qubits;
}

}  // namespace

DenseUnitary::DenseUnitary(std::size_t num_qubits)
    : num_qubits_(checked_unitary_width(num_qubits)),
      dim_(std::size_t{1} << num_qubits) {
  data_.assign(dim_ * dim_, Complex{});
  for (std::size_t i = 0; i < dim_; ++i) {
    at(i, i) = 1.0;
  }
}

DenseUnitary DenseUnitary::from_circuit(const ir::Circuit& circuit) {
  DenseUnitary u(circuit.num_qubits());
  for (const auto& op : circuit.ops()) {
    if (op.is_barrier()) {
      continue;
    }
    u.apply(op);
  }
  return u;
}

void DenseUnitary::apply(const ir::Operation& op) {
  if (!op.is_unitary()) {
    throw std::logic_error("DenseUnitary::apply: non-unitary op " + op.str());
  }
  // G * U: apply the gate kernel to each column of U. Columns of a row-major
  // matrix are strided; reuse the statevector kernel on copied columns for
  // clarity (oracle code — correctness over speed). Columns are independent,
  // so chunks write disjoint entries.
  par::parallel_for(
      0, dim_, line_grain(dim_), [&](std::size_t lo, std::size_t hi) {
        std::vector<Complex> column(dim_);
        for (std::size_t c = lo; c < hi; ++c) {
          for (std::size_t r = 0; r < dim_; ++r) {
            column[r] = at(r, c);
          }
          Statevector sv(column);
          sv.apply(op);
          for (std::size_t r = 0; r < dim_; ++r) {
            at(r, c) = sv.amplitudes()[r];
          }
        }
      });
}

DenseUnitary DenseUnitary::operator*(const DenseUnitary& rhs) const {
  if (rhs.dim_ != dim_) {
    throw std::invalid_argument("DenseUnitary: dimension mismatch");
  }
  DenseUnitary r(num_qubits_);
  // Rows of the product are independent.
  par::parallel_for(0, dim_,
                    std::max<std::size_t>(1, par::kKernelGrain / (dim_ * dim_)),
                    [&](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        for (std::size_t j = 0; j < dim_; ++j) {
                          Complex s = 0.0;
                          for (std::size_t k = 0; k < dim_; ++k) {
                            s += at(i, k) * rhs.at(k, j);
                          }
                          r.at(i, j) = s;
                        }
                      }
                    });
  return r;
}

DenseUnitary DenseUnitary::adjoint() const {
  DenseUnitary r(num_qubits_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      r.at(i, j) = std::conj(at(j, i));
    }
  }
  return r;
}

std::vector<Complex> DenseUnitary::apply_to(
    const std::vector<Complex>& vec) const {
  if (vec.size() != dim_) {
    throw std::invalid_argument("DenseUnitary::apply_to: size mismatch");
  }
  std::vector<Complex> out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    Complex s = 0.0;
    for (std::size_t k = 0; k < dim_; ++k) {
      s += at(i, k) * vec[k];
    }
    out[i] = s;
  }
  return out;
}

bool DenseUnitary::approx_equal(const DenseUnitary& other, double eps) const {
  if (other.dim_ != dim_) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (!qdt::approx_equal(data_[i], other.data_[i], eps)) {
      return false;
    }
  }
  return true;
}

bool DenseUnitary::is_identity(double eps) const {
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      const Complex expect = i == j ? Complex{1.0} : Complex{};
      if (!qdt::approx_equal(at(i, j), expect, eps)) {
        return false;
      }
    }
  }
  return true;
}

bool DenseUnitary::is_identity_up_to_global_phase(double eps) const {
  const Complex phase = at(0, 0);
  if (std::abs(std::abs(phase) - 1.0) > eps) {
    return false;
  }
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      const Complex expect = i == j ? phase : Complex{};
      if (!qdt::approx_equal(at(i, j), expect, eps)) {
        return false;
      }
    }
  }
  return true;
}

bool DenseUnitary::equal_up_to_global_phase(const DenseUnitary& other,
                                            double eps) const {
  if (other.dim_ != dim_) {
    return false;
  }
  std::size_t k = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(other.data_[i]) > best) {
      best = std::abs(other.data_[i]);
      k = i;
    }
  }
  if (best <= eps) {
    return approx_equal(other, eps);
  }
  const Complex ratio = data_[k] / other.data_[k];
  if (std::abs(std::abs(ratio) - 1.0) > eps) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (!qdt::approx_equal(data_[i], other.data_[i] * ratio, eps)) {
      return false;
    }
  }
  return true;
}

double DenseUnitary::max_entry_distance(const DenseUnitary& other) const {
  double d = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    d = std::max(d, std::abs(data_[i] - other.data_[i]));
  }
  return d;
}

}  // namespace qdt::arrays
