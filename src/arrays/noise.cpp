#include "arrays/noise.hpp"

#include <cmath>
#include <stdexcept>

namespace qdt::arrays {

bool KrausChannel::is_trace_preserving(double eps) const {
  Mat2 sum = Mat2::zero();
  for (const auto& k : ops) {
    sum = sum + k.adjoint() * k;
  }
  return approx_equal(sum, Mat2::identity(), eps);
}

namespace {

void check_probability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string(what) +
                                ": probability out of [0, 1]");
  }
}

Mat2 scaled_pauli(char which, double scale) {
  Mat2 m;
  switch (which) {
    case 'I':
      m(0, 0) = scale;
      m(1, 1) = scale;
      break;
    case 'X':
      m(0, 1) = scale;
      m(1, 0) = scale;
      break;
    case 'Y':
      m(0, 1) = Complex{0.0, -scale};
      m(1, 0) = Complex{0.0, scale};
      break;
    case 'Z':
      m(0, 0) = scale;
      m(1, 1) = -scale;
      break;
    default:
      throw std::logic_error("scaled_pauli: bad label");
  }
  return m;
}

}  // namespace

KrausChannel depolarizing(double p) {
  check_probability(p, "depolarizing");
  KrausChannel ch;
  ch.name = "depolarizing(" + std::to_string(p) + ")";
  ch.ops = {scaled_pauli('I', std::sqrt(1.0 - 3.0 * p / 4.0)),
            scaled_pauli('X', std::sqrt(p / 4.0)),
            scaled_pauli('Y', std::sqrt(p / 4.0)),
            scaled_pauli('Z', std::sqrt(p / 4.0))};
  return ch;
}

KrausChannel amplitude_damping(double gamma) {
  check_probability(gamma, "amplitude_damping");
  KrausChannel ch;
  ch.name = "amplitude_damping(" + std::to_string(gamma) + ")";
  Mat2 k0;
  k0(0, 0) = 1.0;
  k0(1, 1) = std::sqrt(1.0 - gamma);
  Mat2 k1;
  k1(0, 1) = std::sqrt(gamma);
  ch.ops = {k0, k1};
  return ch;
}

KrausChannel phase_damping(double lambda) {
  check_probability(lambda, "phase_damping");
  KrausChannel ch;
  ch.name = "phase_damping(" + std::to_string(lambda) + ")";
  Mat2 k0;
  k0(0, 0) = 1.0;
  k0(1, 1) = std::sqrt(1.0 - lambda);
  Mat2 k1;
  k1(1, 1) = std::sqrt(lambda);
  ch.ops = {k0, k1};
  return ch;
}

KrausChannel bit_flip(double p) {
  check_probability(p, "bit_flip");
  KrausChannel ch;
  ch.name = "bit_flip(" + std::to_string(p) + ")";
  ch.ops = {scaled_pauli('I', std::sqrt(1.0 - p)),
            scaled_pauli('X', std::sqrt(p))};
  return ch;
}

KrausChannel phase_flip(double p) {
  check_probability(p, "phase_flip");
  KrausChannel ch;
  ch.name = "phase_flip(" + std::to_string(p) + ")";
  ch.ops = {scaled_pauli('I', std::sqrt(1.0 - p)),
            scaled_pauli('Z', std::sqrt(p))};
  return ch;
}

NoiseModel NoiseModel::depolarizing_model(double p, double readout) {
  NoiseModel nm;
  nm.gate_noise.push_back(depolarizing(p));
  nm.readout_error = readout;
  return nm;
}

}  // namespace qdt::arrays
