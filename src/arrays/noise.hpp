// Quantum noise channels in Kraus form, and a simple noise model that
// attaches channels to gate applications.
//
// Covers the survey's pointer to noise-aware simulation [13]: arrays can
// represent mixed states directly (density matrices), and pure-state
// backends can realize the same channels stochastically (trajectories).
#pragma once

#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace qdt::arrays {

/// A completely-positive trace-preserving map on one qubit, as Kraus
/// operators: rho -> sum_i K_i rho K_i^dagger.
struct KrausChannel {
  std::string name;
  std::vector<Mat2> ops;

  /// Verifies sum_i K_i^dagger K_i == I.
  bool is_trace_preserving(double eps = 1e-9) const;
};

/// Depolarizing channel: with probability p the qubit is replaced by the
/// maximally mixed state (Kraus: sqrt(1-3p/4) I, sqrt(p/4) {X, Y, Z}).
KrausChannel depolarizing(double p);

/// Amplitude damping with decay probability gamma (|1> relaxes to |0>).
KrausChannel amplitude_damping(double gamma);

/// Phase damping with scrambling probability lambda.
KrausChannel phase_damping(double lambda);

/// Bit flip (X with probability p).
KrausChannel bit_flip(double p);

/// Phase flip (Z with probability p).
KrausChannel phase_flip(double p);

/// Gate-attached noise: after every unitary gate, apply `gate_noise` to each
/// touched qubit; measurement outcomes flip with probability
/// `readout_error`.
struct NoiseModel {
  std::vector<KrausChannel> gate_noise;
  double readout_error = 0.0;

  bool empty() const { return gate_noise.empty() && readout_error == 0.0; }

  /// Uniform depolarizing-noise model, the standard benchmark setting.
  static NoiseModel depolarizing_model(double p, double readout = 0.0);
};

}  // namespace qdt::arrays
