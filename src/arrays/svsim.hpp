// Circuit-level driver for the array (statevector) backend: strong
// simulation, sampling, and stochastic noise via quantum trajectories.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "arrays/noise.hpp"
#include "arrays/statevector.hpp"
#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qdt::arrays {

/// Outcome of one strong-simulation run.
struct SvResult {
  Statevector state;
  /// Mid-circuit and final measurement records, in program order.
  std::vector<std::pair<ir::Qubit, bool>> measurements;
};

class StatevectorSimulator {
 public:
  explicit StatevectorSimulator(std::uint64_t seed = 1) : rng_(seed) {}

  /// Optional noise: each Kraus channel is realized stochastically (a
  /// quantum trajectory), so repeated runs average to the density-matrix
  /// result.
  void set_noise(NoiseModel noise) { noise_ = std::move(noise); }

  /// Execute the full circuit once (measurements collapse the state).
  SvResult run(const ir::Circuit& circuit);

  /// Sampled readout of all qubits over `shots` executions. For purely
  /// unitary, noise-free circuits the state is computed once (sampled from
  /// a cumulative distribution built once); otherwise each shot is an
  /// independent trajectory. Shots draw from independent per-shot RNG
  /// streams derived from one engine draw of the simulator's seed, so the
  /// histogram is identical at any qdt::par thread count (shot-level
  /// fan-out) — and, consequently, differs from the pre-parallel sequential
  /// draw sequence (see CHANGES.md for the seed-contract bump).
  std::map<std::uint64_t, std::size_t> sample_counts(
      const ir::Circuit& circuit, std::size_t shots);

 private:
  /// run() against an explicit RNG stream (the member rng_ for the public
  /// entry point, a derived per-shot stream inside sample_counts).
  SvResult run_with(const ir::Circuit& circuit, Rng& rng);

  /// Apply one Kraus channel stochastically: pick branch i with probability
  /// ||K_i |psi>||^2 (computed in place over the (i0, i1) index pairs — no
  /// per-operator state copy) and apply only the selected operator.
  void apply_channel_trajectory(Statevector& sv, const KrausChannel& ch,
                                ir::Qubit q, Rng& rng);

  /// splitmix64 over (base ^ f(shot)): the per-shot RNG stream seeds.
  static std::uint64_t shot_seed(std::uint64_t base, std::size_t shot);

  Rng rng_;
  NoiseModel noise_;
};

}  // namespace qdt::arrays
