// Gate-decomposition passes: rewrite circuits into progressively smaller
// gate sets, down to the hardware-style basis {CX, RZ, SX, X}. All
// decompositions are exact up to a global phase (verified against the dense
// oracle in the test suite).
#pragma once

#include "common/matrix.hpp"
#include "ir/circuit.hpp"

namespace qdt::transpile {

/// Euler angles of a single-qubit unitary: U = e^{i alpha} RZ(beta)
/// RY(gamma) RZ(delta).
struct Zyz {
  double alpha = 0.0;
  double beta = 0.0;
  double gamma = 0.0;
  double delta = 0.0;
};

/// Numerically extract ZYZ Euler angles from any 2x2 unitary.
Zyz zyz_decompose(const Mat2& u);

/// Replace every gate with >= 2 controls by an exact ancilla-free network of
/// {1q, CX} gates, using the parity (phase-polynomial) construction for
/// multi-controlled Z (2^k terms — exact but exponential in the control
/// count, fine for the small k used on hardware). Controlled swaps become
/// CX + Toffoli. Throws for >= 2 controls on other parameterized kinds.
ir::Circuit decompose_multi_controlled(const ir::Circuit& circuit);

/// Replace all two-qubit interactions by {CX or CZ} + single-qubit gates:
/// swap -> 3 CX, iswap, rzz, rxx, and every singly-controlled one-qubit
/// gate (CZ stays CZ if `keep_cz`, otherwise becomes H CX H).
/// Requires controls already reduced to <= 1 (run decompose_multi_controlled
/// first).
ir::Circuit decompose_two_qubit(const ir::Circuit& circuit,
                                bool keep_cz = false);

/// Rewrite every single-qubit gate into {H, RZ/Z-phases, RX/X-phases} — the
/// gate alphabet the ZX translation consumes directly. Two-qubit gates pass
/// through untouched.
ir::Circuit rebase_1q_to_hzx(const ir::Circuit& circuit);

/// Rewrite every single-qubit gate into the IBM-style native set
/// {RZ, SX, X} via the ZSX identity U = e^{ia} RZ(b+pi) SX RZ(c+pi) SX
/// RZ(d). Two-qubit gates pass through untouched.
ir::Circuit rebase_1q_to_zsx(const ir::Circuit& circuit);

}  // namespace qdt::transpile
