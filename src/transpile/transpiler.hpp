// The compilation pipeline (Section I, "compilation"): gate decomposition
// -> routing -> native rebase -> peephole optimization, with statistics for
// each stage and layout tracking so the result can be formally verified.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"
#include "transpile/optimize.hpp"
#include "transpile/router.hpp"
#include "transpile/target.hpp"

namespace qdt::transpile {

struct TranspileOptions {
  RouterKind router = RouterKind::Lookahead;
  bool optimize = true;
};

struct TranspileResult {
  /// Compiled circuit on the device's physical qubits.
  ir::Circuit circuit;
  std::vector<ir::Qubit> initial_layout;
  std::vector<ir::Qubit> final_layout;
  std::size_t swaps_inserted = 0;
  ir::CircuitStats before;
  ir::CircuitStats after;
  OptimizeStats optimize_stats;
};

/// Compile a unitary circuit to the target: after this every gate is native
/// and every two-qubit gate respects the coupling map. The result realizes
/// the input up to the final layout permutation (use
/// `equivalent_to_original` / `with_layout_restored` to close the loop).
TranspileResult transpile(const ir::Circuit& circuit, const Target& target,
                          const TranspileOptions& options = {});

/// Circuit that should be *strictly* equivalent to the input padded to
/// device width: the compiled circuit plus layout-restoring swaps. Feed
/// this to any equivalence checker against `padded_original`.
ir::Circuit restored_for_verification(const TranspileResult& result);

/// The input circuit padded with idle qubits to the device width (the
/// reference object for post-compilation verification).
ir::Circuit padded_original(const ir::Circuit& circuit,
                            const Target& target);

}  // namespace qdt::transpile
