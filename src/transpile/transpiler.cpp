#include "transpile/transpiler.hpp"

#include <stdexcept>

#include "obs/obs.hpp"
#include "trace/trace.hpp"
#include "transpile/decompose.hpp"

namespace qdt::transpile {

using ir::Circuit;
using ir::GateKind;
using ir::Operation;

namespace {

/// Rewrite SWAPs inserted by the router into native two-qubit gates.
Circuit lower_swaps(const Circuit& circuit, bool keep_cz) {
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const auto& op : circuit.ops()) {
    if (op.kind() == GateKind::Swap && op.controls().empty()) {
      const auto a = op.targets()[0];
      const auto b = op.targets()[1];
      if (keep_cz) {
        out.h(b).cz(a, b).h(b);
        out.h(a).cz(b, a).h(a);
        out.h(b).cz(a, b).h(b);
      } else {
        out.cx(a, b).cx(b, a).cx(a, b);
      }
      continue;
    }
    if (op.kind() == GateKind::X && op.controls().size() == 1 && keep_cz) {
      const auto t = op.targets()[0];
      out.h(t).cz(op.controls()[0], t).h(t);
      continue;
    }
    out.append(op);
  }
  return out;
}

}  // namespace

TranspileResult transpile(const Circuit& circuit, const Target& target,
                          const TranspileOptions& options) {
  if (!circuit.is_unitary()) {
    throw std::invalid_argument(
        "transpile: only unitary circuits are supported (strip "
        "measurements first)");
  }
  TranspileResult res;
  trace::Span span("qdt.transpile.pass.run");
  span.attr("qubits", static_cast<std::uint64_t>(circuit.num_qubits()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()));
  res.before = circuit.stats();
  const bool keep_cz = target.gate_set == NativeGateSet::CzRzSxX;

  // 1. Reduce everything to single-qubit gates + {CX or CZ}.
  Circuit lowered = decompose_multi_controlled(circuit);
  lowered = decompose_two_qubit(lowered, keep_cz);

  // 2. Routing onto the coupling map.
  RoutingResult routed = route(lowered, target.coupling, options.router);
  res.initial_layout = routed.initial_layout;
  res.final_layout = routed.final_layout;
  res.swaps_inserted = routed.swaps_inserted;
  obs::counter("qdt.transpile.route.swaps_inserted")
      .add(routed.swaps_inserted);
  obs::counter("qdt.transpile.route.circuits").add();

  // 3. Lower router SWAPs and rebase single-qubit gates onto the native
  //    set.
  Circuit native = lower_swaps(routed.circuit, keep_cz);
  native = rebase_1q_to_zsx(native);

  // 4. Peephole cleanup.
  if (options.optimize) {
    native = peephole_optimize(native, &res.optimize_stats);
  }
  native.set_name(circuit.name() + "@" + target.coupling.name());
  res.circuit = std::move(native);
  res.after = res.circuit.stats();
  span.attr("swaps_inserted",
            static_cast<std::uint64_t>(res.swaps_inserted))
      .attr("gates_out", static_cast<std::uint64_t>(res.after.total_gates));
  return res;
}

ir::Circuit restored_for_verification(const TranspileResult& result) {
  RoutingResult rr;
  rr.circuit = result.circuit;
  rr.initial_layout = result.initial_layout;
  rr.final_layout = result.final_layout;
  return with_layout_restored(rr);
}

ir::Circuit padded_original(const ir::Circuit& circuit,
                            const Target& target) {
  Circuit padded(target.coupling.num_qubits(), circuit.name() + "_padded");
  for (const auto& op : circuit.ops()) {
    if (op.is_barrier()) {
      continue;
    }
    padded.append(op);
  }
  return padded;
}

}  // namespace qdt::transpile
