#include "transpile/optimize.hpp"

#include <cmath>
#include <optional>

#include "guard/budget.hpp"
#include "obs/obs.hpp"

namespace qdt::transpile {

using ir::Circuit;
using ir::GateKind;
using ir::Operation;
using ir::Qubit;

namespace {

bool is_identity_gate(const Operation& op) {
  if (op.kind() == GateKind::I && op.controls().empty()) {
    return true;
  }
  if ((op.kind() == GateKind::RZ || op.kind() == GateKind::RX ||
       op.kind() == GateKind::RY || op.kind() == GateKind::P) &&
      op.params()[0].is_zero()) {
    return true;
  }
  return false;
}

/// Same-kind rotation gates on identical operands merge by angle addition.
bool mergeable_rotation(const Operation& a, const Operation& b) {
  if (a.kind() != b.kind() || a.targets() != b.targets() ||
      a.controls() != b.controls()) {
    return false;
  }
  switch (a.kind()) {
    case GateKind::RZ:
    case GateKind::RX:
    case GateKind::RY:
      // Half-angle rotations are 4pi-periodic but Phase sums are reduced
      // mod 2pi: a wrapped sum is -1 x the true product, which is only a
      // global phase when there are no controls. crz(pi) ; crz(pi) must
      // NOT merge to crz(0) — it is Z-on-control.
      if (!a.controls().empty()) {
        const double exact = a.params()[0].radians() + b.params()[0].radians();
        const double merged = (a.params()[0] + b.params()[0]).radians();
        if (std::abs(exact - merged) > 1e-9) {
          return false;
        }
      }
      return true;
    case GateKind::P:
      return true;  // diag(1, e^{i lambda}): genuinely 2pi-periodic
    default:
      return false;
  }
}

bool inverse_pair(const Operation& a, const Operation& b) {
  if (!a.is_unitary() || !b.is_unitary()) {
    return false;
  }
  // A controlled half-turn rotation has no representable adjoint: the
  // wrapped angle is -1 x the inverse on the controlled block, so e.g.
  // cry(pi) ; cry(pi) is Z-on-control, not a cancelling pair.
  // Uncontrolled wraps differ only by a global phase, which transpiled
  // output is allowed to shift.
  if (ir::gate_adjoint_wraps(a.kind(), a.params()) && !a.controls().empty()) {
    return false;
  }
  return a.adjoint() == b;
}

}  // namespace

Circuit peephole_optimize(const Circuit& circuit, OptimizeStats* stats) {
  OptimizeStats local;
  Circuit current = circuit;
  bool changed = true;
  while (changed && local.passes < 100) {
    guard::check_deadline();
    ++local.passes;
    changed = false;
    Circuit next(current.num_qubits(), current.name());
    // out[i] alive flags over the ops we have emitted so far; last_touch[q]
    // = index into `emitted` of the last live op touching q.
    std::vector<Operation> emitted;
    std::vector<bool> alive;
    std::vector<std::optional<std::size_t>> last_touch(current.num_qubits());

    const auto predecessor =
        [&](const Operation& op) -> std::optional<std::size_t> {
      // The unique immediately-preceding op if it touches exactly the same
      // qubits and nothing else intervenes.
      std::optional<std::size_t> prev;
      for (const Qubit q : op.qubits()) {
        const auto lt = last_touch[q];
        if (!lt.has_value() || !alive[*lt]) {
          return std::nullopt;
        }
        if (!prev.has_value()) {
          prev = lt;
        } else if (*prev != *lt) {
          return std::nullopt;
        }
      }
      if (prev.has_value()) {
        // The predecessor must touch no extra qubits either.
        if (emitted[*prev].qubits().size() != op.qubits().size()) {
          return std::nullopt;
        }
      }
      return prev;
    };

    for (const auto& op : current.ops()) {
      if (op.is_barrier()) {
        // Barriers separate optimization windows.
        emitted.push_back(op);
        alive.push_back(true);
        for (Qubit q = 0; q < current.num_qubits(); ++q) {
          last_touch[q] = emitted.size() - 1;
        }
        continue;
      }
      if (op.is_unitary() && is_identity_gate(op)) {
        ++local.dropped_identities;
        changed = true;
        continue;
      }
      bool handled = false;
      if (op.is_unitary()) {
        const auto prev = predecessor(op);
        if (prev.has_value() && emitted[*prev].is_unitary()) {
          const Operation& p = emitted[*prev];
          if (inverse_pair(p, op)) {
            alive[*prev] = false;
            ++local.cancelled_pairs;
            changed = true;
            handled = true;
          } else if (mergeable_rotation(p, op)) {
            const Phase merged = p.params()[0] + op.params()[0];
            alive[*prev] = false;
            changed = true;
            if (merged.is_zero()) {
              ++local.cancelled_pairs;
            } else {
              ++local.merged_rotations;
              emitted.emplace_back(op.kind(), op.targets(), op.controls(),
                                   std::vector<Phase>{merged});
              alive.push_back(true);
              for (const Qubit q : op.qubits()) {
                last_touch[q] = emitted.size() - 1;
              }
            }
            handled = true;
          }
        }
      }
      if (!handled) {
        emitted.push_back(op);
        alive.push_back(true);
        for (const Qubit q : op.qubits()) {
          last_touch[q] = emitted.size() - 1;
        }
      }
    }
    for (std::size_t i = 0; i < emitted.size(); ++i) {
      if (alive[i]) {
        next.append(emitted[i]);
      }
    }
    current = std::move(next);
  }
  // OptimizeStats stays the per-call view; the registry aggregates across
  // the process.
  obs::counter("qdt.transpile.peephole.cancelled_pairs")
      .add(local.cancelled_pairs);
  obs::counter("qdt.transpile.peephole.merged_rotations")
      .add(local.merged_rotations);
  obs::counter("qdt.transpile.peephole.dropped_identities")
      .add(local.dropped_identities);
  obs::counter("qdt.transpile.peephole.passes").add(local.passes);
  if (stats != nullptr) {
    *stats = local;
  }
  return current;
}

}  // namespace qdt::transpile
