#include "transpile/target.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace qdt::transpile {

namespace {
constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();
}

CouplingMap::CouplingMap(std::size_t num_qubits,
                         std::vector<std::pair<ir::Qubit, ir::Qubit>> edges,
                         std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)),
      edges_(std::move(edges)) {
  if (num_qubits_ == 0) {
    throw std::invalid_argument("CouplingMap: need at least one qubit");
  }
  adj_.resize(num_qubits_);
  for (const auto& [a, b] : edges_) {
    if (a >= num_qubits_ || b >= num_qubits_ || a == b) {
      throw std::invalid_argument("CouplingMap: bad edge");
    }
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  // All-pairs BFS.
  dist_.assign(num_qubits_,
               std::vector<std::size_t>(num_qubits_, kUnreachable));
  for (ir::Qubit s = 0; s < num_qubits_; ++s) {
    dist_[s][s] = 0;
    std::deque<ir::Qubit> queue{s};
    while (!queue.empty()) {
      const ir::Qubit v = queue.front();
      queue.pop_front();
      for (const ir::Qubit w : adj_[v]) {
        if (dist_[s][w] == kUnreachable) {
          dist_[s][w] = dist_[s][v] + 1;
          queue.push_back(w);
        }
      }
    }
  }
}

CouplingMap CouplingMap::full(std::size_t n) {
  std::vector<std::pair<ir::Qubit, ir::Qubit>> edges;
  for (ir::Qubit a = 0; a < n; ++a) {
    for (ir::Qubit b = a + 1; b < n; ++b) {
      edges.emplace_back(a, b);
    }
  }
  return CouplingMap(n, std::move(edges), "full" + std::to_string(n));
}

CouplingMap CouplingMap::line(std::size_t n) {
  std::vector<std::pair<ir::Qubit, ir::Qubit>> edges;
  for (ir::Qubit q = 0; q + 1 < n; ++q) {
    edges.emplace_back(q, q + 1);
  }
  return CouplingMap(n, std::move(edges), "line" + std::to_string(n));
}

CouplingMap CouplingMap::ring(std::size_t n) {
  std::vector<std::pair<ir::Qubit, ir::Qubit>> edges;
  for (ir::Qubit q = 0; q + 1 < n; ++q) {
    edges.emplace_back(q, q + 1);
  }
  if (n > 2) {
    edges.emplace_back(static_cast<ir::Qubit>(n - 1), 0);
  }
  return CouplingMap(n, std::move(edges), "ring" + std::to_string(n));
}

CouplingMap CouplingMap::grid(std::size_t rows, std::size_t cols) {
  std::vector<std::pair<ir::Qubit, ir::Qubit>> edges;
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<ir::Qubit>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.emplace_back(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows) {
        edges.emplace_back(id(r, c), id(r + 1, c));
      }
    }
  }
  return CouplingMap(rows * cols, std::move(edges),
                     "grid" + std::to_string(rows) + "x" +
                         std::to_string(cols));
}

CouplingMap CouplingMap::star(std::size_t n) {
  std::vector<std::pair<ir::Qubit, ir::Qubit>> edges;
  for (ir::Qubit q = 1; q < n; ++q) {
    edges.emplace_back(0, q);
  }
  return CouplingMap(n, std::move(edges), "star" + std::to_string(n));
}

CouplingMap CouplingMap::heavy_hex_falcon() {
  // The 27-qubit IBM Falcon (e.g. ibmq_mumbai) heavy-hex coupling graph.
  std::vector<std::pair<ir::Qubit, ir::Qubit>> edges = {
      {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},   {5, 8},
      {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12}, {11, 14}, {12, 13},
      {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21},
      {19, 20}, {19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26}};
  return CouplingMap(27, std::move(edges), "heavy_hex27");
}

bool CouplingMap::connected(ir::Qubit a, ir::Qubit b) const {
  return distance(a, b) == 1;
}

std::size_t CouplingMap::distance(ir::Qubit a, ir::Qubit b) const {
  if (a >= num_qubits_ || b >= num_qubits_) {
    throw std::out_of_range("CouplingMap::distance: qubit out of range");
  }
  return dist_[a][b];
}

const std::vector<ir::Qubit>& CouplingMap::neighbors(ir::Qubit q) const {
  return adj_.at(q);
}

std::vector<ir::Qubit> CouplingMap::shortest_path(ir::Qubit a,
                                                  ir::Qubit b) const {
  if (distance(a, b) == kUnreachable) {
    throw std::invalid_argument("CouplingMap: qubits not connected");
  }
  std::vector<ir::Qubit> path{a};
  ir::Qubit cur = a;
  while (cur != b) {
    for (const ir::Qubit w : adj_[cur]) {
      if (dist_[w][b] == dist_[cur][b] - 1) {
        cur = w;
        path.push_back(cur);
        break;
      }
    }
  }
  return path;
}

}  // namespace qdt::transpile
