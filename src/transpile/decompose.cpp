#include "transpile/decompose.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qdt::transpile {

using ir::Circuit;
using ir::GateKind;
using ir::Operation;
using ir::Qubit;

Zyz zyz_decompose(const Mat2& u) {
  // Normalize to SU(2): divide out sqrt(det).
  const Complex det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
  const Complex s = std::sqrt(det);
  Zyz r;
  r.alpha = std::arg(s);
  Mat2 v = u * (Complex{1.0} / s);
  // v = [[cos(g/2) e^{-i(b+d)/2}, -sin(g/2) e^{-i(b-d)/2}],
  //      [sin(g/2) e^{ i(b-d)/2},  cos(g/2) e^{ i(b+d)/2}]]
  const double c = std::abs(v(0, 0));
  const double sn = std::abs(v(1, 0));
  r.gamma = 2.0 * std::atan2(sn, c);
  constexpr double kTiny = 1e-12;
  if (sn < kTiny) {
    r.delta = 0.0;
    r.beta = -2.0 * std::arg(v(0, 0));
  } else if (c < kTiny) {
    r.delta = 0.0;
    r.beta = 2.0 * std::arg(v(1, 0));
  } else {
    const double sum = -2.0 * std::arg(v(0, 0));  // beta + delta
    const double diff = 2.0 * std::arg(v(1, 0));  // beta - delta
    r.beta = (sum + diff) / 2.0;
    r.delta = (sum - diff) / 2.0;
  }
  // Wrap beta/delta into (-pi, pi], folding each 2*pi wrap's sign flip
  // (RZ(t + 2pi) = -RZ(t)) into the global phase. This keeps the angles in
  // the canonical range of qdt::Phase without changing the reconstruction.
  const auto wrap = [&r](double& angle) {
    while (angle > std::numbers::pi) {
      angle -= 2.0 * std::numbers::pi;
      r.alpha += std::numbers::pi;
    }
    while (angle <= -std::numbers::pi) {
      angle += 2.0 * std::numbers::pi;
      r.alpha += std::numbers::pi;
    }
  };
  wrap(r.beta);
  wrap(r.delta);
  return r;
}

namespace {

/// Emit exp(i * theta * AND(qubits)) exactly: the parity (phase-polynomial)
/// construction. For each nonempty subset S of the m qubits, a CX chain
/// gathers the parity of S into its last qubit, a P rotation applies
/// e^{i theta_S * parity}, and the chain is uncomputed.
void emit_multi_controlled_phase(Circuit& out,
                                 const std::vector<Qubit>& qubits,
                                 const Phase& theta) {
  const std::size_t m = qubits.size();
  if (m == 0) {
    return;
  }
  if (m == 1) {
    out.p(theta, qubits[0]);
    return;
  }
  if (m > 12) {
    throw std::invalid_argument(
        "decompose: multi-controlled phase with > 12 qubits (2^m parity "
        "terms) — use ancilla-based synthesis instead");
  }
  // theta_S = theta * (-1)^{|S|+1} / 2^{m-1}.
  const std::int64_t scale = std::int64_t{1} << (m - 1);
  const Phase base{theta.num(), theta.den() * scale};
  for (std::uint64_t mask = 1; mask < (1ULL << m); ++mask) {
    std::vector<Qubit> subset;
    for (std::size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1) {
        subset.push_back(qubits[i]);
      }
    }
    const bool odd = subset.size() % 2 == 1;
    const Phase angle = odd ? base : -base;
    for (std::size_t i = 0; i + 1 < subset.size(); ++i) {
      out.cx(subset[i], subset[i + 1]);
    }
    out.p(angle, subset.back());
    for (std::size_t i = subset.size() - 1; i-- > 0;) {
      out.cx(subset[i], subset[i + 1]);
    }
  }
}

void emit_mcz(Circuit& out, const std::vector<Qubit>& qubits) {
  emit_multi_controlled_phase(out, qubits, Phase::pi());
}

}  // namespace

Circuit decompose_multi_controlled(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const auto& op : circuit.ops()) {
    const std::size_t nc = op.controls().size();
    if (!op.is_unitary() || nc == 0 ||
        (nc == 1 && op.kind() != GateKind::Swap)) {
      out.append(op);
      continue;
    }
    std::vector<Qubit> all = op.controls();
    switch (op.kind()) {
      case GateKind::Z: {
        all.push_back(op.targets()[0]);
        emit_mcz(out, all);
        break;
      }
      case GateKind::X: {
        const Qubit t = op.targets()[0];
        out.h(t);
        all.push_back(t);
        emit_mcz(out, all);
        out.h(t);
        break;
      }
      case GateKind::P: {
        // Multi-controlled phase: AND over controls+target scaled angle.
        all.push_back(op.targets()[0]);
        emit_multi_controlled_phase(out, all, op.params()[0]);
        break;
      }
      case GateKind::Swap: {
        // C...C-SWAP(a, b) = CX(b,a) . C...C,a-X(b) . CX(b,a).
        const Qubit a = op.targets()[0];
        const Qubit b = op.targets()[1];
        out.cx(b, a);
        std::vector<Qubit> ctrls = op.controls();
        ctrls.push_back(a);
        if (ctrls.size() == 1) {
          out.cx(ctrls[0], b);
        } else {
          out.h(b);
          ctrls.push_back(b);
          emit_mcz(out, ctrls);
          out.h(b);
        }
        out.cx(b, a);
        break;
      }
      default:
        throw std::invalid_argument(
            "decompose_multi_controlled: unsupported multi-controlled " +
            ir::gate_name(op.kind()));
    }
  }
  return out;
}

namespace {

void emit_cx_or_cz_base(Circuit& out, Qubit c, Qubit t, bool want_cz,
                        bool keep_cz) {
  if (want_cz) {
    if (keep_cz) {
      out.cz(c, t);
    } else {
      out.h(t).cx(c, t).h(t);
    }
  } else {
    out.cx(c, t);
  }
}

/// Controlled-P via { P, CX }: CP(l) = P_c(l/2) CX P_t(-l/2) CX P_t(l/2).
void emit_cp(Circuit& out, const Phase& lambda, Qubit c, Qubit t) {
  const Phase half{lambda.num(), 2 * lambda.den()};
  out.p(half, t).cx(c, t).p(-half, t).cx(c, t).p(half, c);
}

void emit_crz(Circuit& out, const Phase& theta, Qubit c, Qubit t) {
  const Phase half{theta.num(), 2 * theta.den()};
  out.rz(half, t).cx(c, t).rz(-half, t).cx(c, t);
}

void emit_cry(Circuit& out, const Phase& theta, Qubit c, Qubit t) {
  const Phase half{theta.num(), 2 * theta.den()};
  out.ry(half, t).cx(c, t).ry(-half, t).cx(c, t);
}

/// Generic controlled-U via the ABC construction (Nielsen & Chuang):
/// U = e^{ia} RZ(b) RY(g) RZ(d);
/// CU = P_c(a) . [A] CX [B] CX [C] with A = RZ(b) RY(g/2),
/// B = RY(-g/2) RZ(-(d+b)/2), C = RZ((d-b)/2).
void emit_cu(Circuit& out, const Mat2& u, Qubit c, Qubit t) {
  const Zyz z = zyz_decompose(u);
  const Phase a = Phase::from_radians(z.alpha);
  const Phase b = Phase::from_radians(z.beta);
  const Phase g2 = Phase::from_radians(z.gamma / 2.0);
  const Phase dpb = Phase::from_radians(-(z.delta + z.beta) / 2.0);
  const Phase dmb = Phase::from_radians((z.delta - z.beta) / 2.0);
  out.rz(dmb, t);                 // C
  out.cx(c, t);
  out.rz(dpb, t).ry(-g2, t);      // B (matrix RY(-g/2) RZ(-(d+b)/2))
  out.cx(c, t);
  out.ry(g2, t).rz(b, t);         // A (matrix RZ(b) RY(g/2))
  if (!a.is_zero()) {
    out.p(a, c);
  }
}

}  // namespace

Circuit decompose_two_qubit(const Circuit& circuit, bool keep_cz) {
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const auto& op : circuit.ops()) {
    if (!op.is_unitary()) {
      out.append(op);
      continue;
    }
    const std::size_t nc = op.controls().size();
    if (nc > 1) {
      throw std::invalid_argument(
          "decompose_two_qubit: run decompose_multi_controlled first (" +
          op.str() + ")");
    }
    // Plain two-qubit kinds.
    if (op.targets().size() == 2) {
      if (nc != 0) {
        throw std::invalid_argument(
            "decompose_two_qubit: unsupported controlled " + op.str());
      }
      const Qubit a = op.targets()[0];
      const Qubit b = op.targets()[1];
      switch (op.kind()) {
        case GateKind::Swap:
          out.cx(a, b).cx(b, a).cx(a, b);
          break;
        case GateKind::ISwap:
          // iSWAP = (S x S) CZ SWAP (applied right to left).
          out.cx(a, b).cx(b, a).cx(a, b);
          emit_cx_or_cz_base(out, a, b, /*want_cz=*/true, keep_cz);
          out.s(a).s(b);
          break;
        case GateKind::ISwapDg:
          out.sdg(a).sdg(b);
          emit_cx_or_cz_base(out, a, b, /*want_cz=*/true, keep_cz);
          out.cx(a, b).cx(b, a).cx(a, b);
          break;
        case GateKind::RZZ:
          out.cx(a, b).rz(op.params()[0], b).cx(a, b);
          break;
        case GateKind::RXX:
          out.h(a).h(b).cx(a, b).rz(op.params()[0], b).cx(a, b).h(a).h(b);
          break;
        default:
          throw std::logic_error("decompose_two_qubit: unhandled kind");
      }
      continue;
    }
    if (nc == 0) {
      out.append(op);
      continue;
    }
    // Singly-controlled one-qubit gates.
    const Qubit c = op.controls()[0];
    const Qubit t = op.targets()[0];
    switch (op.kind()) {
      case GateKind::X:
        out.cx(c, t);
        break;
      case GateKind::Z:
        emit_cx_or_cz_base(out, c, t, /*want_cz=*/true, keep_cz);
        break;
      case GateKind::Y:
        out.sdg(t).cx(c, t).s(t);
        break;
      case GateKind::H:
        out.ry(Phase{-1, 4}, t);
        emit_cx_or_cz_base(out, c, t, /*want_cz=*/true, keep_cz);
        out.ry(Phase{1, 4}, t);
        break;
      case GateKind::S:
        emit_cp(out, Phase::pi_2(), c, t);
        break;
      case GateKind::Sdg:
        emit_cp(out, Phase::minus_pi_2(), c, t);
        break;
      case GateKind::T:
        emit_cp(out, Phase::pi_4(), c, t);
        break;
      case GateKind::Tdg:
        emit_cp(out, Phase::minus_pi_4(), c, t);
        break;
      case GateKind::P:
        emit_cp(out, op.params()[0], c, t);
        break;
      case GateKind::RZ:
        emit_crz(out, op.params()[0], c, t);
        break;
      case GateKind::RY:
        emit_cry(out, op.params()[0], c, t);
        break;
      case GateKind::RX:
        out.h(t);
        emit_crz(out, op.params()[0], c, t);
        out.h(t);
        break;
      case GateKind::SX:
        out.p(Phase::pi_4(), c);
        out.h(t);
        emit_crz(out, Phase::pi_2(), c, t);
        out.h(t);
        break;
      case GateKind::SXdg:
        out.p(Phase::minus_pi_4(), c);
        out.h(t);
        emit_crz(out, Phase::minus_pi_2(), c, t);
        out.h(t);
        break;
      case GateKind::U:
      case GateKind::I:
        emit_cu(out, op.matrix2(), c, t);
        break;
      default:
        throw std::invalid_argument("decompose_two_qubit: unsupported " +
                                    op.str());
    }
  }
  return out;
}

Circuit rebase_1q_to_hzx(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const auto& op : circuit.ops()) {
    if (!op.is_unitary() || op.num_qubits() != 1) {
      out.append(op);
      continue;
    }
    const Qubit q = op.targets()[0];
    switch (op.kind()) {
      case GateKind::I:
        break;
      case GateKind::Y:
        out.z(q).x(q);  // up to the global factor i
        break;
      case GateKind::RY:
        // RY(t) = S RX(t) Sdg.
        out.sdg(q).rx(op.params()[0], q).s(q);
        break;
      case GateKind::U:
        // U(t, p, l) ~ RZ(p) RY(t) RZ(l).
        out.rz(op.params()[2], q);
        out.sdg(q).rx(op.params()[0], q).s(q);
        out.rz(op.params()[1], q);
        break;
      default:
        out.append(op);  // H, X/SX/SXdg/RX, Z-phase family
        break;
    }
  }
  return out;
}

Circuit rebase_1q_to_zsx(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const auto& op : circuit.ops()) {
    if (!op.is_unitary() || op.num_qubits() != 1) {
      out.append(op);
      continue;
    }
    const Qubit q = op.targets()[0];
    switch (op.kind()) {
      case GateKind::I:
        break;
      case GateKind::X:
      case GateKind::SX:
        out.append(op);
        break;
      case GateKind::Z:
        out.rz(Phase::pi(), q);
        break;
      case GateKind::S:
        out.rz(Phase::pi_2(), q);
        break;
      case GateKind::Sdg:
        out.rz(Phase::minus_pi_2(), q);
        break;
      case GateKind::T:
        out.rz(Phase::pi_4(), q);
        break;
      case GateKind::Tdg:
        out.rz(Phase::minus_pi_4(), q);
        break;
      case GateKind::RZ:
      case GateKind::P:
        out.rz(op.params()[0], q);
        break;
      default: {
        // Generic path: U = e^{ia} RZ(b) RY(g) RZ(d)
        //             ~ RZ(b + pi) SX RZ(g + pi) SX RZ(d).
        const Zyz z = zyz_decompose(op.matrix2());
        constexpr double kTiny = 1e-12;
        if (std::abs(z.gamma) < kTiny) {
          const Phase sum = Phase::from_radians(z.beta + z.delta);
          if (!sum.is_zero()) {
            out.rz(sum, q);
          }
          break;
        }
        out.rz(Phase::from_radians(z.delta), q);
        out.sx(q);
        out.rz(Phase::from_radians(z.gamma + std::numbers::pi), q);
        out.sx(q);
        out.rz(Phase::from_radians(z.beta + std::numbers::pi), q);
        break;
      }
    }
  }
  return out;
}

}  // namespace qdt::transpile
