// Peephole circuit optimization: cancel adjacent inverse pairs, merge runs
// of compatible phase rotations, and drop identity gates. Runs to a
// fixpoint. Used as the final transpiler stage and as an ablation point in
// the compilation benchmarks.
#pragma once

#include "ir/circuit.hpp"

namespace qdt::transpile {

struct OptimizeStats {
  std::size_t cancelled_pairs = 0;
  std::size_t merged_rotations = 0;
  std::size_t dropped_identities = 0;
  std::size_t passes = 0;
};

/// Commutation-free peephole pass: two gates are only considered adjacent
/// when no other gate touching their qubits lies between them.
ir::Circuit peephole_optimize(const ir::Circuit& circuit,
                              OptimizeStats* stats = nullptr);

}  // namespace qdt::transpile
