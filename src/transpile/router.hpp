// Qubit routing (the mapping problem [15], [18]): make every two-qubit gate
// act on physically adjacent qubits by inserting SWAPs, while tracking the
// evolving logical-to-physical layout.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"
#include "transpile/target.hpp"

namespace qdt::transpile {

enum class RouterKind {
  /// Walk one operand along a shortest path until adjacent.
  ShortestPath,
  /// Greedy swap selection scored with a lookahead window over upcoming
  /// two-qubit gates (a light-weight SABRE-style heuristic).
  Lookahead,
};

struct RoutingResult {
  /// Physical circuit: same semantics as the input up to the final layout
  /// permutation, every two-qubit gate coupling-map compliant.
  ir::Circuit circuit;
  /// logical qubit -> physical qubit at circuit start.
  std::vector<ir::Qubit> initial_layout;
  /// logical qubit -> physical qubit after the last gate.
  std::vector<ir::Qubit> final_layout;
  std::size_t swaps_inserted = 0;
};

/// Route a circuit (all operations touching <= 2 qubits; run the decompose
/// passes first) onto the coupling map, starting from the trivial layout.
RoutingResult route(const ir::Circuit& circuit, const CouplingMap& coupling,
                    RouterKind kind = RouterKind::Lookahead);

/// Append SWAPs to `result.circuit` so that the final layout returns to the
/// initial one — after this, the routed circuit is strictly equivalent to
/// the input (used by verification; the appended SWAPs ignore the coupling
/// map).
ir::Circuit with_layout_restored(const RoutingResult& result);

}  // namespace qdt::transpile
