// Compilation targets: a native gate set plus a qubit-connectivity graph
// (coupling map). Presets cover the standard academic topologies and an
// IBM-Falcon-style heavy-hex patch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace qdt::transpile {

/// Native single-/two-qubit alphabet of the device.
enum class NativeGateSet {
  /// {CX, RZ, SX, X} — IBM style.
  CxRzSxX,
  /// {CZ, RZ, SX, X} — tunable-coupler style.
  CzRzSxX,
};

class CouplingMap {
 public:
  /// Edges are undirected physical-qubit pairs.
  CouplingMap(std::size_t num_qubits,
              std::vector<std::pair<ir::Qubit, ir::Qubit>> edges,
              std::string name = "custom");

  static CouplingMap full(std::size_t n);
  static CouplingMap line(std::size_t n);
  static CouplingMap ring(std::size_t n);
  static CouplingMap grid(std::size_t rows, std::size_t cols);
  static CouplingMap star(std::size_t n);
  /// 27-qubit IBM-Falcon-style heavy-hex patch.
  static CouplingMap heavy_hex_falcon();

  std::size_t num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  const std::vector<std::pair<ir::Qubit, ir::Qubit>>& edges() const {
    return edges_;
  }

  bool connected(ir::Qubit a, ir::Qubit b) const;

  /// Hop distance between physical qubits (precomputed all-pairs BFS).
  std::size_t distance(ir::Qubit a, ir::Qubit b) const;

  /// Neighbors of a physical qubit.
  const std::vector<ir::Qubit>& neighbors(ir::Qubit q) const;

  /// One shortest path from a to b, inclusive of both endpoints.
  std::vector<ir::Qubit> shortest_path(ir::Qubit a, ir::Qubit b) const;

 private:
  std::size_t num_qubits_;
  std::string name_;
  std::vector<std::pair<ir::Qubit, ir::Qubit>> edges_;
  std::vector<std::vector<ir::Qubit>> adj_;
  std::vector<std::vector<std::size_t>> dist_;
};

struct Target {
  CouplingMap coupling;
  NativeGateSet gate_set = NativeGateSet::CxRzSxX;
  std::string name;
};

}  // namespace qdt::transpile
