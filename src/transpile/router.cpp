#include "transpile/router.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "guard/budget.hpp"

namespace qdt::transpile {

using ir::Circuit;
using ir::Operation;
using ir::Qubit;

namespace {

struct Layout {
  std::vector<Qubit> log_to_phys;
  std::vector<Qubit> phys_to_log;

  explicit Layout(std::size_t n) : log_to_phys(n), phys_to_log(n) {
    std::iota(log_to_phys.begin(), log_to_phys.end(), 0);
    std::iota(phys_to_log.begin(), phys_to_log.end(), 0);
  }

  void swap_physical(Qubit pa, Qubit pb) {
    const Qubit la = phys_to_log[pa];
    const Qubit lb = phys_to_log[pb];
    std::swap(phys_to_log[pa], phys_to_log[pb]);
    log_to_phys[la] = pb;
    log_to_phys[lb] = pa;
  }
};

/// Indices of the next `window` two-qubit ops at or after position `from`.
std::vector<std::size_t> upcoming_2q(const std::vector<Operation>& ops,
                                     std::size_t from, std::size_t window) {
  std::vector<std::size_t> out;
  for (std::size_t i = from; i < ops.size() && out.size() < window; ++i) {
    if (ops[i].is_unitary() && ops[i].num_qubits() == 2) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace

RoutingResult route(const Circuit& circuit, const CouplingMap& coupling,
                    RouterKind kind) {
  const std::size_t n_logical = circuit.num_qubits();
  const std::size_t n_physical = coupling.num_qubits();
  if (n_logical > n_physical) {
    throw std::invalid_argument("route: circuit wider than device");
  }
  RoutingResult res;
  res.circuit = Circuit(n_physical, circuit.name() + "@" + coupling.name());
  Layout layout(n_physical);
  res.initial_layout = layout.log_to_phys;
  res.initial_layout.resize(n_logical);

  const auto& ops = circuit.ops();
  const auto emit_swap = [&](Qubit pa, Qubit pb) {
    res.circuit.swap(pa, pb);
    layout.swap_physical(pa, pb);
    ++res.swaps_inserted;
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    guard::check_deadline();
    const Operation& op = ops[i];
    if (op.is_barrier()) {
      continue;
    }
    const auto qubits = op.qubits();
    if (qubits.size() == 1) {
      res.circuit.append(op.remapped(layout.log_to_phys));
      continue;
    }
    if (qubits.size() != 2) {
      throw std::invalid_argument(
          "route: operations must touch <= 2 qubits; decompose first (" +
          op.str() + ")");
    }
    // Bring the two operands together.
    while (true) {
      const Qubit pa = layout.log_to_phys[qubits[0]];
      const Qubit pb = layout.log_to_phys[qubits[1]];
      if (coupling.connected(pa, pb)) {
        break;
      }
      if (kind == RouterKind::ShortestPath) {
        // Move operand a one hop along a shortest path towards b.
        const auto path = coupling.shortest_path(pa, pb);
        emit_swap(path[0], path[1]);
        continue;
      }
      // Lookahead: among all swaps on edges incident to pa or pb, pick the
      // one minimizing the primary gate's distance plus a discounted
      // lookahead term.
      const auto window = upcoming_2q(ops, i + 1, 8);
      double best_score = std::numeric_limits<double>::max();
      Qubit best_x = pa;
      Qubit best_y = pa;
      for (const Qubit anchor : {pa, pb}) {
        for (const Qubit nbr : coupling.neighbors(anchor)) {
          Layout trial = layout;
          trial.swap_physical(anchor, nbr);
          double score = static_cast<double>(coupling.distance(
              trial.log_to_phys[qubits[0]], trial.log_to_phys[qubits[1]]));
          double discount = 0.5;
          for (const std::size_t j : window) {
            const auto wq = ops[j].qubits();
            score += discount *
                     static_cast<double>(coupling.distance(
                         trial.log_to_phys[wq[0]], trial.log_to_phys[wq[1]]));
            discount *= 0.8;
          }
          if (score < best_score) {
            best_score = score;
            best_x = anchor;
            best_y = nbr;
          }
        }
      }
      emit_swap(best_x, best_y);
    }
    res.circuit.append(op.remapped(layout.log_to_phys));
  }
  res.final_layout = layout.log_to_phys;
  res.final_layout.resize(n_logical);
  return res;
}

ir::Circuit with_layout_restored(const RoutingResult& result) {
  ir::Circuit c = result.circuit;
  const std::size_t n_logical = result.initial_layout.size();
  constexpr Qubit kIdle = std::numeric_limits<Qubit>::max();
  // occ[p] = logical occupant of physical slot p (kIdle for |0> fillers);
  // pos[l] = physical slot of logical l. Idle slots may end up permuted
  // among themselves — harmless, they all carry |0>.
  std::vector<Qubit> occ(c.num_qubits(), kIdle);
  std::vector<Qubit> pos(n_logical);
  for (std::size_t l = 0; l < n_logical; ++l) {
    pos[l] = result.final_layout[l];
    occ[pos[l]] = static_cast<Qubit>(l);
  }
  for (Qubit l = 0; l < n_logical; ++l) {
    const Qubit target = result.initial_layout[l];
    const Qubit now = pos[l];
    if (now == target) {
      continue;
    }
    c.swap(now, target);
    const Qubit other = occ[target];
    occ[target] = l;
    occ[now] = other;
    pos[l] = target;
    if (other != kIdle) {
      pos[other] = now;
    }
  }
  return c;
}

}  // namespace qdt::transpile
