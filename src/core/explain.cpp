#include "core/explain.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "lint/lint.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

namespace qdt::core {

namespace {

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_json_double(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no Infinity/NaN
    return;
  }
  std::ostringstream tmp;
  tmp.precision(6);
  tmp << v;
  os << tmp.str();
}

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4fs", s);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace

ExplainReport explain_simulate(const ir::Circuit& circuit,
                               const SimulateOptions& options) {
  ExplainReport rep;
  trace::Span span("qdt.core.explain.run");
  span.attr("qubits", static_cast<std::uint64_t>(circuit.num_qubits()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()));
  rep.circuit_name = circuit.name();
  rep.qubits = circuit.num_qubits();
  rep.gates = circuit.ops().size();
  rep.want_state = options.want_state;
  rep.has_noise = !options.noise.empty();

  // Static side: the same cost table and ladder simulate_robust will use.
  lint::PlanConstraints pc;
  pc.want_state = rep.want_state;
  pc.has_noise = rep.has_noise;
  const lint::BackendPlan plan =
      lint::plan_backends(lint::analyze(circuit), pc);
  for (const auto& e : plan.estimates) {
    rep.estimates.push_back({lint::backend_label(e.backend), e.feasible,
                             e.cost_log2, e.rationale});
  }
  for (const auto b : detail::planned_simulate_ladder(circuit, options)) {
    rep.planned_ladder.emplace_back(backend_name(b));
  }

  // Dynamic side: run the planned ladder. Total failure is a reportable
  // outcome here, not an exception — explain's job is the post-mortem.
  const obs::Stopwatch sw;
  try {
    const RobustSimulateResult robust =
        simulate_robust(circuit, options, std::nullopt);
    for (const auto& step : robust.attempts) {
      rep.attempts.push_back({step.stage, step.error.empty(), step.error,
                              step.code, step.resource, step.seconds,
                              step.peak_bytes});
    }
    if (!robust.attempts.empty() && robust.attempts.back().error.empty()) {
      rep.final_stage = robust.attempts.back().stage;
    }
    rep.representation_size = robust.result.representation_size;
  } catch (const Error& e) {
    rep.fatal_code = e.code_name();
    rep.fatal_error = e.what();
  }
  rep.total_seconds = sw.seconds();
  for (const auto& a : rep.attempts) {
    if (!a.succeeded) {
      ++rep.degradations;
    }
  }
  rep.plan_hit = rep.degradations == 0 && !rep.final_stage.empty();
  span.attr("degradations", static_cast<std::uint64_t>(rep.degradations))
      .attr("outcome", rep.fatal_code.empty() ? "ok" : "failed");

  obs::sample_process_rss();
  rep.rss_peak_mb = static_cast<std::uint64_t>(
      obs::gauge("qdt.process.mem.rss_peak_mb").value());
  return rep;
}

std::string to_text(const ExplainReport& r) {
  std::ostringstream os;
  os << "circuit: " << r.circuit_name << "  (" << r.qubits << " qubits, "
     << r.gates << " gates";
  if (r.want_state) {
    os << ", dense state requested";
  }
  if (r.has_noise) {
    os << ", noisy";
  }
  os << ")\n";

  os << "plan (lint cost model, cheapest feasible first):\n";
  for (const auto& e : r.estimates) {
    os << "  " << e.backend << ": ";
    if (e.feasible) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "cost ~2^%.1f", e.cost_log2);
      os << buf;
    } else {
      os << "infeasible";
    }
    os << " — " << e.rationale << "\n";
  }
  os << "planned ladder:";
  for (const auto& b : r.planned_ladder) {
    os << " " << b;
    if (&b != &r.planned_ladder.back()) {
      os << " ->";
    }
  }
  os << "\n";

  os << "execution:\n";
  for (std::size_t i = 0; i < r.attempts.size(); ++i) {
    const ExplainAttempt& a = r.attempts[i];
    os << "  rung " << i << ": " << a.stage << "  ";
    if (a.succeeded) {
      os << "OK";
    } else {
      os << "DEGRADED [" << a.code;
      if (!a.resource.empty()) {
        os << ": " << a.resource;
      }
      os << "]";
    }
    os << "  " << format_seconds(a.seconds);
    if (a.peak_bytes > 0) {
      os << "  peak " << format_bytes(a.peak_bytes);
    }
    if (!a.succeeded) {
      os << "\n          " << a.error;
    }
    os << "\n";
  }
  if (!r.fatal_code.empty()) {
    os << "  FAILED [" << r.fatal_code << "] " << r.fatal_error << "\n";
  }

  if (!r.final_stage.empty()) {
    os << "result: " << r.final_stage;
    if (r.degradations == 0) {
      os << "  (plan hit: first choice carried the run)\n";
    } else {
      os << "  after " << r.degradations
         << (r.degradations == 1 ? " degradation" : " degradations")
         << "  (plan miss: first choice was " << r.planned_ladder.front()
         << ")\n";
    }
  } else {
    os << "result: every rung failed\n";
  }
  os << "total: " << format_seconds(r.total_seconds) << "   rss peak: "
     << r.rss_peak_mb << " MB\n";
  return os.str();
}

std::string to_json(const ExplainReport& r) {
  std::ostringstream os;
  os << "{\"circuit\":";
  append_json_string(os, r.circuit_name);
  os << ",\"qubits\":" << r.qubits << ",\"gates\":" << r.gates
     << ",\"want_state\":" << (r.want_state ? "true" : "false")
     << ",\"has_noise\":" << (r.has_noise ? "true" : "false");

  os << ",\"plan\":{\"estimates\":[";
  for (std::size_t i = 0; i < r.estimates.size(); ++i) {
    const ExplainEstimate& e = r.estimates[i];
    os << (i > 0 ? "," : "") << "{\"backend\":";
    append_json_string(os, e.backend);
    os << ",\"feasible\":" << (e.feasible ? "true" : "false")
       << ",\"cost_log2\":";
    append_json_double(os, e.cost_log2);
    os << ",\"rationale\":";
    append_json_string(os, e.rationale);
    os << "}";
  }
  os << "],\"ladder\":[";
  for (std::size_t i = 0; i < r.planned_ladder.size(); ++i) {
    os << (i > 0 ? "," : "");
    append_json_string(os, r.planned_ladder[i]);
  }
  os << "]}";

  os << ",\"execution\":{\"attempts\":[";
  for (std::size_t i = 0; i < r.attempts.size(); ++i) {
    const ExplainAttempt& a = r.attempts[i];
    os << (i > 0 ? "," : "") << "{\"stage\":";
    append_json_string(os, a.stage);
    os << ",\"succeeded\":" << (a.succeeded ? "true" : "false");
    if (!a.code.empty()) {
      os << ",\"code\":";
      append_json_string(os, a.code);
    }
    if (!a.resource.empty()) {
      os << ",\"resource\":";
      append_json_string(os, a.resource);
    }
    if (!a.error.empty()) {
      os << ",\"error\":";
      append_json_string(os, a.error);
    }
    os << ",\"seconds\":";
    append_json_double(os, a.seconds);
    os << ",\"peak_bytes\":" << a.peak_bytes << "}";
  }
  os << "],\"final_stage\":";
  append_json_string(os, r.final_stage);
  os << ",\"degradations\":" << r.degradations
     << ",\"plan_hit\":" << (r.plan_hit ? "true" : "false");
  if (!r.fatal_code.empty()) {
    os << ",\"fatal\":{\"code\":";
    append_json_string(os, r.fatal_code);
    os << ",\"error\":";
    append_json_string(os, r.fatal_error);
    os << "}";
  }
  os << "}";

  os << ",\"totals\":{\"seconds\":";
  append_json_double(os, r.total_seconds);
  os << ",\"representation_size\":" << r.representation_size
     << ",\"rss_peak_mb\":" << r.rss_peak_mb << "}}";
  return os.str();
}

}  // namespace qdt::core
