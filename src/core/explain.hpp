// qdt::core — the explain report: plan vs. actual for one robust run.
//
// `qdt explain <file.qasm>` answers the question the paper keeps returning
// to: *which data structure should have carried this circuit, and which one
// actually did?* The report staples together
//
//   * the static side: lint's full backend cost table (all five backends,
//     feasibility + log2 cost + rationale) and the planned fallback ladder
//     derived from it, and
//   * the dynamic side: the rungs simulate_robust actually executed, each
//     with its outcome, typed qdt::Error code and exhausted resource on
//     degradation, per-rung wall time, and the backend memory high-water
//     gauge at the end of the rung,
//
// plus process-level totals (wall time, RSS peak). to_text() renders the
// human diff the CLI prints; to_json() the machine form for --json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tasks.hpp"

namespace qdt::core {

/// One row of lint's static cost table, in ranked order.
struct ExplainEstimate {
  std::string backend;
  bool feasible = true;
  double cost_log2 = 0.0;
  std::string rationale;
};

/// One rung that simulate_robust actually executed, in execution order.
struct ExplainAttempt {
  std::string stage;         // backend name (may carry a degradation suffix)
  bool succeeded = false;    // this rung produced the result
  std::string error;         // full message when abandoned
  std::string code;          // qdt::Error code name when abandoned
  std::string resource;      // exhausted resource (ResourceExhausted only)
  double seconds = 0.0;      // wall time inside the rung
  std::uint64_t peak_bytes = 0;  // backend bytes_peak gauge after the rung
};

struct ExplainReport {
  std::string circuit_name;
  std::size_t qubits = 0;
  std::size_t gates = 0;
  bool want_state = false;
  bool has_noise = false;

  /// Static side: the ranked cost table and the ladder derived from it.
  std::vector<ExplainEstimate> estimates;
  std::vector<std::string> planned_ladder;

  /// Dynamic side: what actually ran.
  std::vector<ExplainAttempt> attempts;
  /// Stage that produced the result; empty when every rung failed.
  std::string final_stage;
  /// Rungs abandoned before the result (== count of attempts with errors).
  std::size_t degradations = 0;
  /// True when the plan's first rung carried the run end to end.
  bool plan_hit = false;
  /// Set when the whole ladder failed: the terminal error's code and text.
  std::string fatal_code;
  std::string fatal_error;

  /// Totals.
  double total_seconds = 0.0;
  std::size_t representation_size = 0;
  std::uint64_t rss_peak_mb = 0;
};

/// Run the circuit through the statically planned robust ladder (tracing
/// it like any simulate_robust call) and assemble the plan-vs-actual
/// report. Never throws on resource exhaustion — a run where every rung
/// fails is itself a reportable outcome (see fatal_code).
ExplainReport explain_simulate(const ir::Circuit& circuit,
                               const SimulateOptions& options = {});

/// Human-readable plan-vs-actual diff (the `qdt explain` default output).
std::string to_text(const ExplainReport& report);

/// The report as a JSON object (for `qdt explain --json`).
std::string to_json(const ExplainReport& report);

}  // namespace qdt::core
