#include "core/tasks.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include <cmath>

#include "arrays/dense_unitary.hpp"
#include "arrays/svsim.hpp"
#include "stab/tableau.hpp"
#include "dd/equivalence.hpp"
#include "dd/pool.hpp"
#include "dd/simulator.hpp"
#include "guard/budget.hpp"
#include "lint/lint.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"
#include "tn/mps.hpp"
#include "tn/network.hpp"
#include "transpile/decompose.hpp"
#include "zx/equivalence.hpp"

namespace qdt::core {

namespace {

obs::Counter& g_fallback_steps = obs::counter("qdt.guard.fallback.steps");
obs::Counter& g_fallback_sim = obs::counter("qdt.guard.fallback.simulate");
obs::Counter& g_fallback_verify = obs::counter("qdt.guard.fallback.verify");

// Static-plan bookkeeping: how often the lint cost model picked the ladder,
// and whether its first choice actually carried the task (hit) or the run
// had to degrade past it (miss).
obs::Counter& g_lint_plan_sim = obs::counter("qdt.lint.plan.simulate");
obs::Counter& g_lint_plan_verify = obs::counter("qdt.lint.plan.verify");
obs::Counter& g_lint_predict_hit = obs::counter("qdt.lint.predict.hit");
obs::Counter& g_lint_predict_miss = obs::counter("qdt.lint.predict.miss");
obs::Counter& g_lint_predict_degraded =
    obs::counter("qdt.lint.predict.degradations");

/// The backend's bytes_peak gauge right now — a process-lifetime
/// high-water mark, so per-rung it reads "memory was at most this high by
/// the end of the rung".
std::uint64_t backend_peak_bytes(SimBackend b) {
  switch (b) {
    case SimBackend::Array:
      return static_cast<std::uint64_t>(
          obs::gauge("qdt.arrays.svsim.bytes_peak").value());
    case SimBackend::DecisionDiagram:
      return static_cast<std::uint64_t>(
          obs::gauge("qdt.dd.package.bytes_peak").value());
    case SimBackend::TensorNetwork:
      return static_cast<std::uint64_t>(
          obs::gauge("qdt.tn.contraction.bytes_peak").value());
    case SimBackend::Mps:
      return static_cast<std::uint64_t>(
          obs::gauge("qdt.tn.mps.bytes_peak").value());
    case SimBackend::Stabilizer:
      return static_cast<std::uint64_t>(
          obs::gauge("qdt.stab.tableau.bytes_peak").value());
  }
  return 0;
}

std::uint64_t method_peak_bytes(EcMethod m) {
  switch (m) {
    case EcMethod::DdAlternating:
    case EcMethod::DdSequential:
    case EcMethod::DdSimulative:
      return static_cast<std::uint64_t>(
          obs::gauge("qdt.dd.package.bytes_peak").value());
    case EcMethod::Array:
    case EcMethod::Zx:
      return 0;  // no bytes_peak gauge for dense unitaries / ZX graphs
  }
  return 0;
}

SimBackend to_sim_backend(lint::Backend b) {
  switch (b) {
    case lint::Backend::Array:
      return SimBackend::Array;
    case lint::Backend::DecisionDiagram:
      return SimBackend::DecisionDiagram;
    case lint::Backend::TensorNetwork:
      return SimBackend::TensorNetwork;
    case lint::Backend::Mps:
      return SimBackend::Mps;
    case lint::Backend::Stabilizer:
      return SimBackend::Stabilizer;
  }
  return SimBackend::Array;
}

EcMethod to_ec_method(lint::VerifyMethod m) {
  switch (m) {
    case lint::VerifyMethod::Array:
      return EcMethod::Array;
    case lint::VerifyMethod::DdAlternating:
      return EcMethod::DdAlternating;
    case lint::VerifyMethod::DdSequential:
      return EcMethod::DdSequential;
    case lint::VerifyMethod::DdSimulative:
      return EcMethod::DdSimulative;
    case lint::VerifyMethod::Zx:
      return EcMethod::Zx;
  }
  return EcMethod::DdAlternating;
}

}  // namespace

const char* version() { return "1.0.0"; }

std::string obs_report() {
  obs::sample_process_rss();
  obs::Snapshot snap = obs::snapshot();
  trace::fill_obs_spans(snap);
  return obs::to_json(snap);
}

const char* backend_name(SimBackend b) {
  switch (b) {
    case SimBackend::Array:
      return "array";
    case SimBackend::DecisionDiagram:
      return "decision-diagram";
    case SimBackend::TensorNetwork:
      return "tensor-network";
    case SimBackend::Mps:
      return "mps";
    case SimBackend::Stabilizer:
      return "stabilizer";
  }
  return "?";
}

SimulateResult simulate(const ir::Circuit& circuit, SimBackend backend,
                        const SimulateOptions& options) {
  SimulateResult res;
  res.backend = backend;
  trace::Span span("qdt.core.task.simulate");
  span.attr("backend", backend_name(backend))
      .attr("qubits", static_cast<std::uint64_t>(circuit.num_qubits()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()))
      .attr("shots", static_cast<std::uint64_t>(options.shots))
      .attr("want_state", std::int64_t{options.want_state ? 1 : 0});
  const guard::BudgetScope scope(options.budget);
  const obs::Stopwatch sw;
  switch (backend) {
    case SimBackend::Array: {
      arrays::StatevectorSimulator sim(options.seed);
      if (!options.noise.empty()) {
        sim.set_noise(options.noise);
      }
      if (options.shots > 0) {
        res.counts = sim.sample_counts(circuit, options.shots);
      }
      if (options.want_state) {
        const auto run = sim.run(circuit);
        res.state = run.state.amplitudes();
        res.representation_size = run.state.dim();
      } else {
        res.representation_size = std::size_t{1} << circuit.num_qubits();
      }
      break;
    }
    case SimBackend::DecisionDiagram: {
      // Pooled per-request package: repeated simulate calls on one thread
      // (serve workers, the fuzzer, the robust ladder) reuse grown storage
      // instead of re-growing it, keeping long-run RSS flat.
      dd::PackageLease lease(circuit.num_qubits());
      dd::DDSimulator sim(lease.get(), options.seed);
      if (!options.noise.empty()) {
        sim.set_noise(options.noise);
      }
      sim.run(circuit);
      if (options.shots > 0) {
        if (options.noise.empty() && circuit.is_unitary()) {
          res.counts = sim.sample_counts(options.shots);
        } else {
          // Stochastic noise / mid-circuit collapse: every shot must be an
          // independent trajectory.
          for (std::size_t s = 0; s < options.shots; ++s) {
            ++res.counts[sim.sample_counts(1).begin()->first];
            if (s + 1 < options.shots) {
              sim.reset_state();
              sim.run(circuit);
            }
          }
        }
      }
      if (options.want_state) {
        res.state = sim.state_vector();
      }
      res.representation_size = sim.state_node_count();
      break;
    }
    case SimBackend::TensorNetwork: {
      if (!options.noise.empty()) {
        throw Error::unsupported(
            "simulate: the tensor-network backend is noise-free");
      }
      const ir::Circuit unitary = circuit.unitary_part();
      {
        std::vector<tn::Label> outs;
        res.representation_size =
            tn::circuit_network(unitary, outs).total_elements();
      }
      if (options.want_state) {
        tn::ContractionStats stats;
        res.state = tn::statevector(unitary, /*greedy=*/true, &stats);
        res.representation_size =
            std::max(res.representation_size, stats.peak_tensor_size);
      }
      if (options.shots > 0) {
        // Sample from the contracted state.
        if (!res.state.has_value()) {
          res.state = tn::statevector(unitary);
        }
        arrays::Statevector sv(*res.state);
        Rng rng(options.seed);
        for (std::size_t s = 0; s < options.shots; ++s) {
          ++res.counts[sv.sample(rng)];
        }
        if (!options.want_state) {
          res.state.reset();
        }
      }
      break;
    }
    case SimBackend::Stabilizer: {
      if (!options.noise.empty()) {
        throw Error::unsupported(
            "simulate: the stabilizer backend is noise-free");
      }
      if (options.want_state) {
        throw Error::unsupported(
            "simulate: the stabilizer backend cannot produce dense states "
            "(set want_state = false)");
      }
      stab::StabilizerSimulator sim(circuit.num_qubits(), options.seed);
      if (options.shots > 0) {
        res.counts = sim.sample_counts(circuit, options.shots);
      } else {
        sim.run(circuit);
      }
      // Real packed footprint: 2n rows of bit-packed X/Z words plus sign
      // bytes, as allocated — not the theoretical 2n(2n+1) bit count.
      res.representation_size = sim.tableau().memory_bytes();
      break;
    }
    case SimBackend::Mps: {
      if (!options.noise.empty()) {
        throw Error::unsupported("simulate: the MPS backend is noise-free");
      }
      const ir::Circuit lowered = transpile::decompose_two_qubit(
          transpile::decompose_multi_controlled(circuit.unitary_part()));
      tn::MPS mps(circuit.num_qubits(), options.mps_max_bond);
      mps.run(lowered);
      res.representation_size = mps.total_elements();
      if (options.want_state) {
        res.state = mps.to_vector();
      }
      if (options.shots > 0) {
        // Perfect sampling straight from the MPS — no 2^n readout.
        Rng rng(options.seed);
        for (std::size_t s = 0; s < options.shots; ++s) {
          ++res.counts[mps.sample(rng)];
        }
      }
      break;
    }
  }
  res.seconds = sw.seconds();
  span.attr("representation_size",
            static_cast<std::uint64_t>(res.representation_size))
      .attr("bytes_peak", backend_peak_bytes(backend));
  return res;
}

Complex amplitude(const ir::Circuit& circuit, std::uint64_t basis,
                  SimBackend backend) {
  switch (backend) {
    case SimBackend::Array: {
      arrays::StatevectorSimulator sim;
      return sim.run(circuit.unitary_part()).state.amplitude(basis);
    }
    case SimBackend::DecisionDiagram: {
      dd::PackageLease lease(circuit.num_qubits());
      dd::DDSimulator sim(lease.get());
      sim.run(circuit.unitary_part());
      return sim.amplitude(basis);
    }
    case SimBackend::TensorNetwork:
      return tn::amplitude(circuit.unitary_part(), basis);
    case SimBackend::Mps: {
      const ir::Circuit lowered = transpile::decompose_two_qubit(
          transpile::decompose_multi_controlled(circuit.unitary_part()));
      tn::MPS mps(circuit.num_qubits());
      mps.run(lowered);
      return mps.amplitude(basis);
    }
    case SimBackend::Stabilizer:
      throw Error::unsupported(
          "amplitude: the stabilizer backend does not expose amplitudes");
  }
  throw Error::internal("amplitude: unknown backend");
}

SimBackend recommend_backend(const ir::Circuit& circuit) {
  const auto stats = circuit.stats();
  // Clifford circuits of any width: the tableau is polynomial, full stop.
  if (stats.num_qubits > 16 && stab::is_clifford_circuit(circuit)) {
    return SimBackend::Stabilizer;
  }
  // Small widths: the dense array is unbeatable in constants.
  if (stats.num_qubits <= 16) {
    return SimBackend::Array;
  }
  // Bounded interaction range on a line: MPS memory stays small.
  bool local = true;
  for (const auto& op : circuit.ops()) {
    const auto qubits = op.qubits();
    if (qubits.size() == 2) {
      const auto lo = std::min(qubits[0], qubits[1]);
      const auto hi = std::max(qubits[0], qubits[1]);
      if (hi - lo > 2) {
        local = false;
        break;
      }
    } else if (qubits.size() > 2) {
      local = false;
      break;
    }
  }
  if (local && stats.depth <= 3 * stats.num_qubits) {
    return SimBackend::Mps;
  }
  // Redundancy-friendly default beyond the array wall.
  return SimBackend::DecisionDiagram;
}

const char* method_name(EcMethod m) {
  switch (m) {
    case EcMethod::Array:
      return "array";
    case EcMethod::DdAlternating:
      return "dd-alternating";
    case EcMethod::DdSequential:
      return "dd-sequential";
    case EcMethod::DdSimulative:
      return "dd-simulative";
    case EcMethod::Zx:
      return "zx";
  }
  return "?";
}

VerifyResult verify(const ir::Circuit& c1, const ir::Circuit& c2,
                    EcMethod method, const guard::Budget& budget) {
  VerifyResult res;
  trace::Span span("qdt.core.task.verify");
  span.attr("method", method_name(method))
      .attr("qubits", static_cast<std::uint64_t>(c1.num_qubits()))
      .attr("gates",
            static_cast<std::uint64_t>(c1.ops().size() + c2.ops().size()));
  const guard::BudgetScope scope(budget);
  const obs::Stopwatch sw;
  switch (method) {
    case EcMethod::Array: {
      if (c1.num_qubits() != c2.num_qubits()) {
        res.equivalent = false;
        res.detail = "width mismatch";
        break;
      }
      const auto u1 =
          arrays::DenseUnitary::from_circuit(c1.unitary_part());
      const auto u2 =
          arrays::DenseUnitary::from_circuit(c2.unitary_part());
      res.equivalent = u1.equal_up_to_global_phase(u2, 1e-8);
      res.detail = "dense unitary comparison";
      break;
    }
    case EcMethod::DdAlternating:
    case EcMethod::DdSequential: {
      const auto r = dd::check_equivalence_dd(
          c1.unitary_part(), c2.unitary_part(),
          method == EcMethod::DdAlternating ? dd::EcStrategy::Alternating
                                            : dd::EcStrategy::Sequential);
      res.equivalent = r.equivalent;
      res.detail = "miter peak " + std::to_string(r.peak_nodes) + " nodes";
      break;
    }
    case EcMethod::DdSimulative: {
      const auto r = dd::check_equivalence_dd_simulative(
          c1.unitary_part(), c2.unitary_part(), /*num_stimuli=*/16);
      res.equivalent = r.equivalent;
      // Passing stimuli is evidence, not proof.
      res.conclusive = !r.equivalent;
      res.detail = r.note;
      break;
    }
    case EcMethod::Zx: {
      const auto r =
          zx::check_equivalence_zx(c1.unitary_part(), c2.unitary_part());
      res.equivalent = r.verdict == zx::ZxVerdict::Equivalent;
      res.conclusive = r.verdict != zx::ZxVerdict::Inconclusive;
      res.detail = r.note + " (spiders " +
                   std::to_string(r.initial_spiders) + " -> " +
                   std::to_string(r.reduced_spiders) + ")";
      break;
    }
  }
  res.seconds = sw.seconds();
  return res;
}

CompileResult compile_and_verify(const ir::Circuit& circuit,
                                 const transpile::Target& target,
                                 EcMethod method,
                                 const transpile::TranspileOptions& opts,
                                 const guard::Budget& budget) {
  CompileResult res;
  trace::Span span("qdt.core.task.compile");
  span.attr("qubits", static_cast<std::uint64_t>(circuit.num_qubits()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()))
      .attr("method", method_name(method));
  const guard::BudgetScope scope(budget);
  res.transpiled = transpile::transpile(circuit, target, opts);
  res.verification =
      verify(transpile::padded_original(circuit, target),
             transpile::restored_for_verification(res.transpiled), method);
  return res;
}

namespace {

/// Fallback rungs for simulate_robust, starting at (and including) `start`.
std::vector<SimBackend> simulate_ladder(SimBackend start) {
  switch (start) {
    case SimBackend::Stabilizer:
      return {SimBackend::Stabilizer, SimBackend::DecisionDiagram,
              SimBackend::Mps, SimBackend::TensorNetwork};
    case SimBackend::Array:
      return {SimBackend::Array, SimBackend::DecisionDiagram,
              SimBackend::Mps, SimBackend::TensorNetwork};
    case SimBackend::DecisionDiagram:
      return {SimBackend::DecisionDiagram, SimBackend::Mps,
              SimBackend::TensorNetwork};
    case SimBackend::Mps:
      return {SimBackend::Mps, SimBackend::TensorNetwork};
    case SimBackend::TensorNetwork:
      return {SimBackend::TensorNetwork};
  }
  return {start};
}

}  // namespace

std::vector<SimBackend> ladder_from_plan(const lint::BackendPlan& plan,
                                         bool has_noise) {
  std::vector<SimBackend> ladder;
  const auto push = [&ladder](SimBackend b) {
    if (std::find(ladder.begin(), ladder.end(), b) == ladder.end()) {
      ladder.push_back(b);
    }
  };
  for (const auto b : plan.preferred_order) {
    push(to_sim_backend(b));
  }
  push(SimBackend::DecisionDiagram);
  if (!has_noise) {
    push(SimBackend::Mps);
    push(SimBackend::TensorNetwork);
  }
  return ladder;
}

namespace detail {

/// Statically planned ladder: lint ranks the feasible backends by its cost
/// model, then the guaranteed degradation rungs are appended so the chain
/// never ends on a backend that might refuse the request.
std::vector<SimBackend> planned_simulate_ladder(const ir::Circuit& circuit,
                                                const SimulateOptions& options) {
  lint::PlanConstraints pc;
  pc.want_state = options.want_state;
  pc.has_noise = !options.noise.empty();
  return ladder_from_plan(lint::plan_backends(lint::analyze(circuit), pc),
                          pc.has_noise);
}

}  // namespace detail

namespace {

std::vector<EcMethod> verify_ladder(EcMethod start) {
  switch (start) {
    case EcMethod::Array:
      return {EcMethod::Array, EcMethod::DdAlternating, EcMethod::Zx,
              EcMethod::DdSimulative};
    case EcMethod::DdAlternating:
      return {EcMethod::DdAlternating, EcMethod::Zx,
              EcMethod::DdSimulative};
    case EcMethod::DdSequential:
      return {EcMethod::DdSequential, EcMethod::DdAlternating, EcMethod::Zx,
              EcMethod::DdSimulative};
    case EcMethod::Zx:
      // The paper's ZX stall case: retry with the alternating DD miter.
      return {EcMethod::Zx, EcMethod::DdAlternating,
              EcMethod::DdSimulative};
    case EcMethod::DdSimulative:
      return {EcMethod::DdSimulative};
  }
  return {start};
}

/// True when the error is a reason to degrade rather than to give up:
/// the backend ran out of a budgeted resource, or cannot express the
/// request at all. Genuine BadInput/Internal errors propagate.
bool should_degrade(const Error& e) {
  return e.code() == ErrorCode::ResourceExhausted ||
         e.code() == ErrorCode::Unsupported;
}

/// Truncation bond for a degraded MPS rung: fit n site tensors of shape
/// (D, 2, D) complex into the byte budget, clamped to [4, 64] so the rung
/// stays fast even under a generous budget. A user-set mps_max_bond or a
/// budget bond cap always wins when smaller.
std::size_t degraded_mps_bond(const ir::Circuit& circuit,
                              const guard::Budget& budget) {
  std::size_t bond = 64;
  if (budget.max_memory_bytes > 0) {
    const std::size_t n = std::max<std::size_t>(circuit.num_qubits(), 1);
    const double fit = std::sqrt(static_cast<double>(budget.max_memory_bytes) /
                                 (32.0 * static_cast<double>(n)));
    bond = std::min(bond, static_cast<std::size_t>(fit));
  }
  if (budget.max_mps_bond > 0) {
    bond = std::min(bond, budget.max_mps_bond);
  }
  return std::max<std::size_t>(bond, 4);
}

}  // namespace

namespace {

/// The shared ladder walk behind simulate_robust and
/// simulate_robust_with_ladder. Assumes the caller installed the budget
/// scope (one scope across the whole ladder: the deadline covers every
/// attempt combined). `planned` controls the lint-prediction counters.
RobustSimulateResult run_simulate_ladder(const ir::Circuit& circuit,
                                         const SimulateOptions& options,
                                         const std::vector<SimBackend>& ladder,
                                         bool planned) {
  RobustSimulateResult robust;

  for (std::size_t rung = 0; rung < ladder.size(); ++rung) {
    const SimBackend backend = ladder[rung];
    SimulateOptions opts = options;
    // The single-amplitude degradation only applies when TN is reached as
    // the terminal rung of a longer chain; TN chosen first (explicitly or
    // by the plan) performs the full simulation.
    const bool last_resort = backend == SimBackend::TensorNetwork &&
                             rung > 0 && rung + 1 == ladder.size();
    if (backend == SimBackend::Mps && rung > 0 && opts.mps_max_bond == 0) {
      opts.mps_max_bond = degraded_mps_bond(circuit, options.budget);
    }
    trace::Span rung_span("qdt.core.robust.rung");
    rung_span.attr("backend", backend_name(backend))
        .attr("rung", static_cast<std::uint64_t>(rung));
    try {
      if (last_resort) {
        // Final rung: a single <0...0|C|0...0> amplitude instead of a full
        // state — the one task tensor networks can still do when every
        // state-producing backend has hit its wall.
        SimulateResult res;
        res.backend = backend;
        const obs::Stopwatch sw;
        tn::ContractionStats stats;
        const Complex a =
            tn::amplitude(circuit.unitary_part(), 0, /*greedy=*/true, &stats);
        res.state = std::vector<Complex>{a};
        res.representation_size = stats.peak_tensor_size;
        res.seconds = sw.seconds();
        robust.result = std::move(res);
        FallbackStep step;
        step.stage =
            std::string(backend_name(backend)) + " (single amplitude)";
        step.seconds = rung_span.seconds();
        step.peak_bytes = backend_peak_bytes(backend);
        robust.attempts.push_back(std::move(step));
      } else {
        robust.result = simulate(circuit, backend, opts);
        FallbackStep step;
        step.stage = backend_name(backend);
        if (backend == SimBackend::Mps && opts.mps_max_bond != 0 &&
            options.mps_max_bond == 0) {
          step.stage += " (truncated, bond " +
                        std::to_string(opts.mps_max_bond) + ")";
        }
        step.seconds = rung_span.seconds();
        step.peak_bytes = backend_peak_bytes(backend);
        robust.attempts.push_back(std::move(step));
      }
      rung_span.attr("outcome", "ok");
      if (planned) {
        (rung == 0 ? g_lint_predict_hit : g_lint_predict_miss).add();
      }
      return robust;
    } catch (const Error& e) {
      if (!should_degrade(e) || rung + 1 == ladder.size()) {
        rung_span.attr("outcome", "error").attr("code", e.code_name());
        throw;
      }
      rung_span.attr("outcome", "degraded").attr("code", e.code_name());
      FallbackStep step;
      step.stage = backend_name(backend);
      step.error = std::string(e.code_name()) + ": " + e.what();
      step.code = e.code_name();
      if (e.code() == ErrorCode::ResourceExhausted) {
        step.resource = resource_name(e.resource());
      }
      step.seconds = rung_span.seconds();
      step.peak_bytes = backend_peak_bytes(backend);
      robust.attempts.push_back(std::move(step));
      g_fallback_steps.add();
      g_fallback_sim.add();
      if (planned) {
        g_lint_predict_degraded.add();
      }
    }
  }
  throw Error::internal("simulate_robust: empty fallback ladder");
}

}  // namespace

RobustSimulateResult simulate_robust(const ir::Circuit& circuit,
                                     const SimulateOptions& options,
                                     std::optional<SimBackend> start) {
  trace::Span span("qdt.core.task.simulate_robust");
  span.attr("qubits", static_cast<std::uint64_t>(circuit.num_qubits()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()));
  const guard::BudgetScope scope(options.budget);
  const bool planned = !start.has_value();
  const auto ladder = planned
                          ? detail::planned_simulate_ladder(circuit, options)
                          : simulate_ladder(*start);
  if (planned) {
    g_lint_plan_sim.add();
  }
  return run_simulate_ladder(circuit, options, ladder, planned);
}

RobustSimulateResult simulate_robust_with_ladder(
    const ir::Circuit& circuit, const SimulateOptions& options,
    const std::vector<SimBackend>& ladder) {
  if (ladder.empty()) {
    throw Error::bad_input("simulate_robust_with_ladder: empty ladder");
  }
  trace::Span span("qdt.core.task.simulate_robust");
  span.attr("qubits", static_cast<std::uint64_t>(circuit.num_qubits()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()))
      .attr("ladder", "caller");
  const guard::BudgetScope scope(options.budget);
  // A caller-supplied ladder is a plan (serve's cached lint plan), so the
  // prediction-quality counters stay meaningful.
  g_lint_plan_sim.add();
  return run_simulate_ladder(circuit, options, ladder, /*planned=*/true);
}

RobustVerifyResult verify_robust(const ir::Circuit& c1, const ir::Circuit& c2,
                                 std::optional<EcMethod> start,
                                 const guard::Budget& budget) {
  RobustVerifyResult robust;
  trace::Span span("qdt.core.task.verify_robust");
  span.attr("qubits", static_cast<std::uint64_t>(c1.num_qubits()))
      .attr("gates",
            static_cast<std::uint64_t>(c1.ops().size() + c2.ops().size()));
  const guard::BudgetScope scope(budget);
  const bool planned = !start.has_value();
  std::vector<EcMethod> ladder;
  if (planned) {
    g_lint_plan_verify.add();
    for (const auto m :
         lint::plan_verify(lint::analyze(c1), lint::analyze(c2))) {
      ladder.push_back(to_ec_method(m));
    }
  } else {
    ladder = verify_ladder(*start);
  }

  for (std::size_t rung = 0; rung < ladder.size(); ++rung) {
    const EcMethod method = ladder[rung];
    const bool last = rung + 1 == ladder.size();
    trace::Span rung_span("qdt.core.robust.rung");
    rung_span.attr("method", method_name(method))
        .attr("rung", static_cast<std::uint64_t>(rung));
    try {
      VerifyResult res = verify(c1, c2, method);
      // An inconclusive verdict (ZX rewriting stalled, or a simulative
      // pass without proof) is a reason to degrade — unless this is the
      // last rung, where evidence is all we have left.
      if (!res.conclusive && !last) {
        rung_span.attr("outcome", "inconclusive");
        FallbackStep step;
        step.stage = method_name(method);
        step.error = "inconclusive: " + res.detail;
        step.code = "Inconclusive";
        step.seconds = rung_span.seconds();
        step.peak_bytes = method_peak_bytes(method);
        robust.attempts.push_back(std::move(step));
        g_fallback_steps.add();
        g_fallback_verify.add();
        if (planned) {
          g_lint_predict_degraded.add();
        }
        continue;
      }
      rung_span.attr("outcome", "ok");
      robust.result = std::move(res);
      FallbackStep step;
      step.stage = method_name(method);
      step.seconds = rung_span.seconds();
      step.peak_bytes = method_peak_bytes(method);
      robust.attempts.push_back(std::move(step));
      if (planned) {
        (rung == 0 ? g_lint_predict_hit : g_lint_predict_miss).add();
      }
      return robust;
    } catch (const Error& e) {
      if (!should_degrade(e) || last) {
        rung_span.attr("outcome", "error").attr("code", e.code_name());
        throw;
      }
      rung_span.attr("outcome", "degraded").attr("code", e.code_name());
      FallbackStep step;
      step.stage = method_name(method);
      step.error = std::string(e.code_name()) + ": " + e.what();
      step.code = e.code_name();
      if (e.code() == ErrorCode::ResourceExhausted) {
        step.resource = resource_name(e.resource());
      }
      step.seconds = rung_span.seconds();
      step.peak_bytes = method_peak_bytes(method);
      robust.attempts.push_back(std::move(step));
      g_fallback_steps.add();
      g_fallback_verify.add();
      if (planned) {
        g_lint_predict_degraded.add();
      }
    }
  }
  throw Error::internal("verify_robust: empty fallback ladder");
}

}  // namespace qdt::core
