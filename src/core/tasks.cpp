#include "core/tasks.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "arrays/dense_unitary.hpp"
#include "arrays/svsim.hpp"
#include "stab/tableau.hpp"
#include "dd/equivalence.hpp"
#include "dd/simulator.hpp"
#include "obs/obs.hpp"
#include "tn/mps.hpp"
#include "tn/network.hpp"
#include "transpile/decompose.hpp"
#include "zx/equivalence.hpp"

namespace qdt::core {

const char* version() { return "1.0.0"; }

std::string obs_report() { return obs::to_json(obs::snapshot()); }

const char* backend_name(SimBackend b) {
  switch (b) {
    case SimBackend::Array:
      return "array";
    case SimBackend::DecisionDiagram:
      return "decision-diagram";
    case SimBackend::TensorNetwork:
      return "tensor-network";
    case SimBackend::Mps:
      return "mps";
    case SimBackend::Stabilizer:
      return "stabilizer";
  }
  return "?";
}

SimulateResult simulate(const ir::Circuit& circuit, SimBackend backend,
                        const SimulateOptions& options) {
  SimulateResult res;
  res.backend = backend;
  const obs::Span span("qdt.core.task.simulate");
  const obs::Stopwatch sw;
  switch (backend) {
    case SimBackend::Array: {
      arrays::StatevectorSimulator sim(options.seed);
      if (!options.noise.empty()) {
        sim.set_noise(options.noise);
      }
      if (options.shots > 0) {
        res.counts = sim.sample_counts(circuit, options.shots);
      }
      if (options.want_state) {
        const auto run = sim.run(circuit);
        res.state = run.state.amplitudes();
        res.representation_size = run.state.dim();
      } else {
        res.representation_size = std::size_t{1} << circuit.num_qubits();
      }
      break;
    }
    case SimBackend::DecisionDiagram: {
      dd::DDSimulator sim(circuit.num_qubits(), options.seed);
      if (!options.noise.empty()) {
        sim.set_noise(options.noise);
      }
      sim.run(circuit);
      if (options.shots > 0) {
        if (options.noise.empty() && circuit.is_unitary()) {
          res.counts = sim.sample_counts(options.shots);
        } else {
          // Stochastic noise / mid-circuit collapse: every shot must be an
          // independent trajectory.
          for (std::size_t s = 0; s < options.shots; ++s) {
            ++res.counts[sim.sample_counts(1).begin()->first];
            if (s + 1 < options.shots) {
              sim.reset_state();
              sim.run(circuit);
            }
          }
        }
      }
      if (options.want_state) {
        res.state = sim.state_vector();
      }
      res.representation_size = sim.state_node_count();
      break;
    }
    case SimBackend::TensorNetwork: {
      if (!options.noise.empty()) {
        throw std::invalid_argument(
            "simulate: the tensor-network backend is noise-free");
      }
      const ir::Circuit unitary = circuit.unitary_part();
      {
        std::vector<tn::Label> outs;
        res.representation_size =
            tn::circuit_network(unitary, outs).total_elements();
      }
      if (options.want_state) {
        tn::ContractionStats stats;
        res.state = tn::statevector(unitary, /*greedy=*/true, &stats);
        res.representation_size =
            std::max(res.representation_size, stats.peak_tensor_size);
      }
      if (options.shots > 0) {
        // Sample from the contracted state.
        if (!res.state.has_value()) {
          res.state = tn::statevector(unitary);
        }
        arrays::Statevector sv(*res.state);
        Rng rng(options.seed);
        for (std::size_t s = 0; s < options.shots; ++s) {
          ++res.counts[sv.sample(rng)];
        }
        if (!options.want_state) {
          res.state.reset();
        }
      }
      break;
    }
    case SimBackend::Stabilizer: {
      if (!options.noise.empty()) {
        throw std::invalid_argument(
            "simulate: the stabilizer backend is noise-free");
      }
      if (options.want_state) {
        throw std::invalid_argument(
            "simulate: the stabilizer backend cannot produce dense states "
            "(set want_state = false)");
      }
      stab::StabilizerSimulator sim(circuit.num_qubits(), options.seed);
      if (options.shots > 0) {
        res.counts = sim.sample_counts(circuit, options.shots);
      } else {
        sim.run(circuit);
      }
      // 2n Pauli rows of 2n + 1 bits each.
      res.representation_size =
          2 * circuit.num_qubits() * (2 * circuit.num_qubits() + 1);
      break;
    }
    case SimBackend::Mps: {
      if (!options.noise.empty()) {
        throw std::invalid_argument("simulate: the MPS backend is noise-free");
      }
      const ir::Circuit lowered = transpile::decompose_two_qubit(
          transpile::decompose_multi_controlled(circuit.unitary_part()));
      tn::MPS mps(circuit.num_qubits(), options.mps_max_bond);
      mps.run(lowered);
      res.representation_size = mps.total_elements();
      if (options.want_state) {
        res.state = mps.to_vector();
      }
      if (options.shots > 0) {
        // Perfect sampling straight from the MPS — no 2^n readout.
        Rng rng(options.seed);
        for (std::size_t s = 0; s < options.shots; ++s) {
          ++res.counts[mps.sample(rng)];
        }
      }
      break;
    }
  }
  res.seconds = sw.seconds();
  return res;
}

Complex amplitude(const ir::Circuit& circuit, std::uint64_t basis,
                  SimBackend backend) {
  switch (backend) {
    case SimBackend::Array: {
      arrays::StatevectorSimulator sim;
      return sim.run(circuit.unitary_part()).state.amplitude(basis);
    }
    case SimBackend::DecisionDiagram: {
      dd::DDSimulator sim(circuit.num_qubits());
      sim.run(circuit.unitary_part());
      return sim.amplitude(basis);
    }
    case SimBackend::TensorNetwork:
      return tn::amplitude(circuit.unitary_part(), basis);
    case SimBackend::Mps: {
      const ir::Circuit lowered = transpile::decompose_two_qubit(
          transpile::decompose_multi_controlled(circuit.unitary_part()));
      tn::MPS mps(circuit.num_qubits());
      mps.run(lowered);
      return mps.amplitude(basis);
    }
    case SimBackend::Stabilizer:
      throw std::invalid_argument(
          "amplitude: the stabilizer backend does not expose amplitudes");
  }
  throw std::logic_error("amplitude: unknown backend");
}

SimBackend recommend_backend(const ir::Circuit& circuit) {
  const auto stats = circuit.stats();
  // Clifford circuits of any width: the tableau is polynomial, full stop.
  if (stats.num_qubits > 16 && stab::is_clifford_circuit(circuit)) {
    return SimBackend::Stabilizer;
  }
  // Small widths: the dense array is unbeatable in constants.
  if (stats.num_qubits <= 16) {
    return SimBackend::Array;
  }
  // Bounded interaction range on a line: MPS memory stays small.
  bool local = true;
  for (const auto& op : circuit.ops()) {
    const auto qubits = op.qubits();
    if (qubits.size() == 2) {
      const auto lo = std::min(qubits[0], qubits[1]);
      const auto hi = std::max(qubits[0], qubits[1]);
      if (hi - lo > 2) {
        local = false;
        break;
      }
    } else if (qubits.size() > 2) {
      local = false;
      break;
    }
  }
  if (local && stats.depth <= 3 * stats.num_qubits) {
    return SimBackend::Mps;
  }
  // Redundancy-friendly default beyond the array wall.
  return SimBackend::DecisionDiagram;
}

const char* method_name(EcMethod m) {
  switch (m) {
    case EcMethod::Array:
      return "array";
    case EcMethod::DdAlternating:
      return "dd-alternating";
    case EcMethod::DdSequential:
      return "dd-sequential";
    case EcMethod::DdSimulative:
      return "dd-simulative";
    case EcMethod::Zx:
      return "zx";
  }
  return "?";
}

VerifyResult verify(const ir::Circuit& c1, const ir::Circuit& c2,
                    EcMethod method) {
  VerifyResult res;
  const obs::Span span("qdt.core.task.verify");
  const obs::Stopwatch sw;
  switch (method) {
    case EcMethod::Array: {
      if (c1.num_qubits() != c2.num_qubits()) {
        res.equivalent = false;
        res.detail = "width mismatch";
        break;
      }
      const auto u1 =
          arrays::DenseUnitary::from_circuit(c1.unitary_part());
      const auto u2 =
          arrays::DenseUnitary::from_circuit(c2.unitary_part());
      res.equivalent = u1.equal_up_to_global_phase(u2, 1e-8);
      res.detail = "dense unitary comparison";
      break;
    }
    case EcMethod::DdAlternating:
    case EcMethod::DdSequential: {
      const auto r = dd::check_equivalence_dd(
          c1.unitary_part(), c2.unitary_part(),
          method == EcMethod::DdAlternating ? dd::EcStrategy::Alternating
                                            : dd::EcStrategy::Sequential);
      res.equivalent = r.equivalent;
      res.detail = "miter peak " + std::to_string(r.peak_nodes) + " nodes";
      break;
    }
    case EcMethod::DdSimulative: {
      const auto r = dd::check_equivalence_dd_simulative(
          c1.unitary_part(), c2.unitary_part(), /*num_stimuli=*/16);
      res.equivalent = r.equivalent;
      // Passing stimuli is evidence, not proof.
      res.conclusive = !r.equivalent;
      res.detail = r.note;
      break;
    }
    case EcMethod::Zx: {
      const auto r =
          zx::check_equivalence_zx(c1.unitary_part(), c2.unitary_part());
      res.equivalent = r.verdict == zx::ZxVerdict::Equivalent;
      res.conclusive = r.verdict != zx::ZxVerdict::Inconclusive;
      res.detail = r.note + " (spiders " +
                   std::to_string(r.initial_spiders) + " -> " +
                   std::to_string(r.reduced_spiders) + ")";
      break;
    }
  }
  res.seconds = sw.seconds();
  return res;
}

CompileResult compile_and_verify(const ir::Circuit& circuit,
                                 const transpile::Target& target,
                                 EcMethod method,
                                 const transpile::TranspileOptions& opts) {
  CompileResult res;
  const obs::Span span("qdt.core.task.compile");
  res.transpiled = transpile::transpile(circuit, target, opts);
  res.verification =
      verify(transpile::padded_original(circuit, target),
             transpile::restored_for_verification(res.transpiled), method);
  return res;
}

}  // namespace qdt::core
