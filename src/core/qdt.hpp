// Umbrella header: one include for the whole Quantum Design Tools library.
//
//   #include "core/qdt.hpp"
//
//   auto circuit = qdt::ir::ghz(20);
//   auto result = qdt::core::simulate(
//       circuit, qdt::core::SimBackend::DecisionDiagram);
#pragma once

#include "arrays/density_matrix.hpp"   // IWYU pragma: export
#include "arrays/dense_unitary.hpp"    // IWYU pragma: export
#include "chaos/chaos.hpp"             // IWYU pragma: export
#include "chaos/corpus.hpp"            // IWYU pragma: export
#include "chaos/fuzzer.hpp"            // IWYU pragma: export
#include "chaos/generator.hpp"         // IWYU pragma: export
#include "chaos/oracle.hpp"            // IWYU pragma: export
#include "chaos/shrink.hpp"            // IWYU pragma: export
#include "arrays/noise.hpp"            // IWYU pragma: export
#include "arrays/statevector.hpp"      // IWYU pragma: export
#include "arrays/svsim.hpp"            // IWYU pragma: export
#include "common/eps.hpp"              // IWYU pragma: export
#include "common/matrix.hpp"           // IWYU pragma: export
#include "common/phase.hpp"            // IWYU pragma: export
#include "common/rng.hpp"              // IWYU pragma: export
#include "core/explain.hpp"            // IWYU pragma: export
#include "core/tasks.hpp"              // IWYU pragma: export
#include "dd/equivalence.hpp"          // IWYU pragma: export
#include "dd/approximation.hpp"        // IWYU pragma: export
#include "dd/density.hpp"              // IWYU pragma: export
#include "dd/export_dot.hpp"           // IWYU pragma: export
#include "dd/package.hpp"              // IWYU pragma: export
#include "dd/simulator.hpp"            // IWYU pragma: export
#include "flow/cert.hpp"               // IWYU pragma: export
#include "flow/clifford.hpp"           // IWYU pragma: export
#include "flow/domain.hpp"             // IWYU pragma: export
#include "flow/opt.hpp"                // IWYU pragma: export
#include "flow/unitary.hpp"            // IWYU pragma: export
#include "guard/budget.hpp"            // IWYU pragma: export
#include "guard/error.hpp"             // IWYU pragma: export
#include "ir/circuit.hpp"              // IWYU pragma: export
#include "ir/library.hpp"              // IWYU pragma: export
#include "ir/qasm.hpp"                 // IWYU pragma: export
#include "lint/cost.hpp"               // IWYU pragma: export
#include "lint/facts.hpp"              // IWYU pragma: export
#include "lint/lint.hpp"               // IWYU pragma: export
#include "obs/obs.hpp"                 // IWYU pragma: export
#include "par/pool.hpp"                // IWYU pragma: export
#include "stab/tableau.hpp"            // IWYU pragma: export
#include "tn/mps.hpp"                  // IWYU pragma: export
#include "trace/trace.hpp"             // IWYU pragma: export
#include "tn/network.hpp"              // IWYU pragma: export
#include "tn/tensor.hpp"               // IWYU pragma: export
#include "transpile/decompose.hpp"     // IWYU pragma: export
#include "transpile/transpiler.hpp"    // IWYU pragma: export
#include "zx/circuit_to_zx.hpp"        // IWYU pragma: export
#include "zx/equivalence.hpp"          // IWYU pragma: export
#include "zx/simplify.hpp"             // IWYU pragma: export
#include "zx/tensor_bridge.hpp"        // IWYU pragma: export
