// The unified design-tool API — the paper's three tasks (classical
// simulation, compilation, verification), each dispatchable onto the data
// structure that fits the job: arrays, decision diagrams, tensor networks,
// or the ZX-calculus.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "arrays/noise.hpp"
#include "common/eps.hpp"
#include "guard/budget.hpp"
#include "ir/circuit.hpp"
#include "lint/lint.hpp"
#include "transpile/transpiler.hpp"

namespace qdt::core {

/// Library version string.
const char* version();

/// JSON snapshot of the qdt::obs metrics registry (counters, gauges,
/// histograms, trace spans) accumulated so far in this process. In
/// QDT_OBS_ENABLED=OFF builds this returns an empty snapshot with
/// "enabled": false.
std::string obs_report();

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

enum class SimBackend {
  Array,            // Section II: dense statevector
  DecisionDiagram,  // Section III
  TensorNetwork,    // Section IV: exact contraction (amplitudes/full state)
  Mps,              // Section IV: matrix-product state
  Stabilizer,       // tableau simulation of Clifford circuits [11]
};

const char* backend_name(SimBackend b);

struct SimulateOptions {
  std::uint64_t seed = 1;
  std::size_t shots = 0;           // 0: no sampling
  bool want_state = true;          // dense readout (small n only)
  arrays::NoiseModel noise;        // Array / DecisionDiagram backends only
  std::size_t mps_max_bond = 0;    // 0: exact
  /// Resource ceilings enforced cooperatively while the task runs; on
  /// violation the backend throws qdt::Error(ResourceExhausted, ...).
  guard::Budget budget;
};

struct SimulateResult {
  SimBackend backend;
  std::optional<std::vector<Complex>> state;
  std::map<std::uint64_t, std::size_t> counts;
  /// Backend-specific size metric: amplitudes stored (Array), DD nodes,
  /// tensor-network elements, or MPS elements.
  std::size_t representation_size = 0;
  double seconds = 0.0;
};

/// Strong/weak simulation of a circuit on the chosen backend.
SimulateResult simulate(const ir::Circuit& circuit, SimBackend backend,
                        const SimulateOptions& options = {});

/// Single output amplitude <basis|C|0...0> — the task tensor networks are
/// best at (Section IV).
Complex amplitude(const ir::Circuit& circuit, std::uint64_t basis,
                  SimBackend backend);

/// Pick a backend from circuit shape: Clifford-only circuits go to the
/// stabilizer tableau, small widths to arrays, bounded interaction ranges
/// to MPS, everything else to decision diagrams.
SimBackend recommend_backend(const ir::Circuit& circuit);

// ---------------------------------------------------------------------------
// Verification (equivalence checking)
// ---------------------------------------------------------------------------

enum class EcMethod {
  Array,          // dense unitaries (oracle; tiny circuits only)
  DdAlternating,  // Section III miter, alternating scheme [20]
  DdSequential,
  DdSimulative,   // random-stimuli simulation [20]
  Zx,             // Section V rewriting [38] (+ tensor fallback)
};

const char* method_name(EcMethod m);

struct VerifyResult {
  bool equivalent = false;
  /// False when the method could not decide (ZX rewriting stalled on a wide
  /// non-Clifford miter, or the simulative check passed without proof).
  bool conclusive = true;
  std::string detail;
  double seconds = 0.0;
};

VerifyResult verify(const ir::Circuit& c1, const ir::Circuit& c2,
                    EcMethod method = EcMethod::DdAlternating,
                    const guard::Budget& budget = {});

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

struct CompileResult {
  transpile::TranspileResult transpiled;
  /// Post-compilation equivalence check of the result against the input.
  VerifyResult verification;
};

/// Compile to the target and formally verify the output (Section I's full
/// loop: compile, then prove the compiler didn't break the circuit).
CompileResult compile_and_verify(const ir::Circuit& circuit,
                                 const transpile::Target& target,
                                 EcMethod method = EcMethod::DdAlternating,
                                 const transpile::TranspileOptions& opts = {},
                                 const guard::Budget& budget = {});

// ---------------------------------------------------------------------------
// Graceful degradation (the fallback ladder)
// ---------------------------------------------------------------------------

/// One rung of a fallback ladder: the backend/method that was attempted
/// and, if it was abandoned, why. The last step of a successful robust run
/// has an empty `error`. The typed fields carry what the explain report
/// needs without re-parsing the message: the qdt::Error code, the
/// exhausted resource (ResourceExhausted only), the rung's wall time, and
/// the backend's memory high-water gauge as of the end of the rung.
struct FallbackStep {
  std::string stage;     // backend_name(...) or method_name(...)
  std::string error;     // "" when this stage produced the result
  std::string code;      // qdt::Error code name; "" on success
  std::string resource;  // exhausted resource name; "" otherwise
  double seconds = 0.0;  // wall time spent inside this rung
  std::uint64_t peak_bytes = 0;  // backend bytes_peak gauge after the rung
};

struct RobustSimulateResult {
  SimulateResult result;
  /// Every stage attempted, in order; result came from attempts.back().
  std::vector<FallbackStep> attempts;
  bool degraded() const { return attempts.size() > 1; }
};

/// simulate() with graceful degradation. With an explicit `start` the
/// ladder is the classic fixed chain; whenever a backend throws
/// ResourceExhausted or Unsupported, execution falls to the next rung:
///
///   Stabilizer -> DecisionDiagram -> Mps (truncated) -> TN amplitude
///   Array      -> DecisionDiagram -> Mps (truncated) -> TN amplitude
///
/// When `start` is unset the ladder is *planned statically*: qdt::lint
/// analyzes the circuit without simulating it and the rungs are tried in
/// lint::BackendPlan::preferred_order (stabilizer first for Clifford
/// circuits, MPS first when the entanglement-cut bound is small, ...),
/// with the guaranteed degradation rungs appended. Prediction quality is
/// recorded in qdt.lint.predict.{hit,miss}.
///
/// The Mps rung truncates (bond derived from the byte budget) and the
/// final TensorNetwork rung degrades to a single <0...0| amplitude rather
/// than a full state. Each degradation bumps qdt.guard.fallback.* counters
/// and is recorded in the returned attempt chain. When every rung fails,
/// the last error is rethrown.
RobustSimulateResult simulate_robust(
    const ir::Circuit& circuit, const SimulateOptions& options = {},
    std::optional<SimBackend> start = std::nullopt);

/// simulate_robust with a caller-supplied ladder — the entry point for
/// callers that already hold a lint plan (qdt::serve caches plans by
/// circuit hash so a hot circuit is planned once and simulated many
/// times). Rungs are walked with the same degradation rules as
/// simulate_robust; prediction quality still lands in
/// qdt.lint.predict.{hit,miss}. Throws BadInput on an empty ladder.
RobustSimulateResult simulate_robust_with_ladder(
    const ir::Circuit& circuit, const SimulateOptions& options,
    const std::vector<SimBackend>& ladder);

/// Map a lint::BackendPlan to the robust ladder simulate_robust would walk:
/// the plan's feasible backends in preferred order, then the guaranteed
/// degradation rungs (DD always; MPS + TN only for noise-free requests)
/// appended so the chain never ends on a backend that might refuse.
std::vector<SimBackend> ladder_from_plan(const lint::BackendPlan& plan,
                                         bool has_noise);

struct RobustVerifyResult {
  VerifyResult result;
  std::vector<FallbackStep> attempts;
  bool degraded() const { return attempts.size() > 1; }
};

/// verify() with graceful degradation: a stage is abandoned when it throws
/// ResourceExhausted *or* returns an inconclusive verdict (e.g. ZX
/// rewriting stalled on a non-Clifford miter — the ladder then retries
/// with DdAlternating). The simulative check is the last rung: it always
/// completes, at the price of conclusive == false on "equivalent".
///
/// When `start` is unset the method order comes from lint::plan_verify —
/// ZX rewriting leads on Clifford/Clifford pairs (where it terminates in
/// polynomial time), the DD miter leads otherwise.
RobustVerifyResult verify_robust(const ir::Circuit& c1, const ir::Circuit& c2,
                                 std::optional<EcMethod> start = std::nullopt,
                                 const guard::Budget& budget = {});

namespace detail {

/// The statically planned fallback ladder that simulate_robust walks when
/// no explicit start backend is given — exposed so core::explain can diff
/// the plan against what actually executed.
std::vector<SimBackend> planned_simulate_ladder(const ir::Circuit& circuit,
                                                const SimulateOptions& options);

}  // namespace detail

}  // namespace qdt::core
