#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "guard/error.hpp"

namespace qdt::serve::json {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw Error::bad_input("json: " + what + " at byte " + std::to_string(pos));
}

/// Recursive-descent parser over a bounded view. All methods advance pos_.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail(pos_, "trailing content after document");
    }
    return v;
  }

 private:
  char peek() {
    if (pos_ >= text_.size()) {
      fail(pos_, "unexpected end of input");
    }
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  Value value(std::size_t depth) {
    if (depth > kMaxDepth) {
      fail(pos_, "nesting deeper than " + std::to_string(kMaxDepth));
    }
    skip_ws();
    Value v;
    switch (peek()) {
      case '{': {
        v.kind = Value::Kind::Object;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        for (;;) {
          skip_ws();
          if (peek() != '"') {
            fail(pos_, "expected object key");
          }
          std::string key = parse_string();
          skip_ws();
          expect(':');
          v.object.emplace_back(std::move(key), value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.kind = Value::Kind::Array;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        for (;;) {
          v.array.push_back(value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.kind = Value::Kind::String;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) {
          fail(pos_, "bad literal");
        }
        v.kind = Value::Kind::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) {
          fail(pos_, "bad literal");
        }
        v.kind = Value::Kind::Bool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) {
          fail(pos_, "bad literal");
        }
        return v;
      default:
        return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail(pos_, "unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) {
        fail(pos_, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // consume the backslash
      switch (peek()) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          ++pos_;
          std::uint32_t cp = parse_hex4();
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const std::uint32_t lo = parse_hex4();
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                fail(pos_, "invalid low surrogate");
              }
            } else {
              fail(pos_, "lone high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(pos_, "lone low surrogate");
          }
          append_utf8(out, cp);
          continue;  // parse_hex4 already advanced pos_
        }
        default:
          fail(pos_, "bad escape");
      }
      ++pos_;
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail(pos_, "bad \\u escape");
      }
      ++pos_;
    }
    return v;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail(start, "expected value");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // RFC 8259: a leading zero stands alone ("01" is invalid)
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail(pos_, "bad fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail(pos_, "bad exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    Value v;
    v.kind = Value::Kind::Number;
    // The slice is a valid JSON number by construction; strtod cannot fail
    // on it, but an overflow comes back as +-inf, which we reject (no
    // backend accepts an infinite shot count gracefully).
    const std::string slice(text_.substr(start, pos_ - start));
    v.number = std::strtod(slice.c_str(), nullptr);
    if (!std::isfinite(v.number)) {
      fail(start, "number out of range");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::Object) {
    return nullptr;
  }
  const Value* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) {
      found = &v;  // last duplicate wins, like most parsers
    }
  }
  return found;
}

std::string Value::get_string(std::string_view key,
                              const std::string& fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->kind == Kind::String ? v->string : fallback;
}

double Value::get_number(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->kind == Kind::Number ? v->number : fallback;
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->kind == Kind::Bool ? v->boolean : fallback;
}

std::uint64_t Value::get_uint(std::string_view key,
                              std::uint64_t fallback) const {
  const Value* v = find(key);
  if (v == nullptr || v->kind != Kind::Number || v->number < 0.0) {
    return fallback;
  }
  if (v->number >= 9.2e18) {  // past the uint64 range we care to clamp
    return fallback;
  }
  return static_cast<std::uint64_t>(v->number);
}

Value parse(std::string_view text) { return Parser(text).run(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  return out;
}

void Writer::comma() {
  if (need_comma_) {
    out_.push_back(',');
  }
  need_comma_ = false;
}

Writer& Writer::begin_object() {
  comma();
  out_.push_back('{');
  return *this;
}

Writer& Writer::end_object() {
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}

Writer& Writer::begin_array() {
  comma();
  out_.push_back('[');
  return *this;
}

Writer& Writer::end_array() {
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}

Writer& Writer::key(std::string_view k) {
  comma();
  out_.push_back('"');
  out_ += escape(k);
  out_ += "\":";
  need_comma_ = false;
  return *this;
}

Writer& Writer::string(std::string_view v) {
  comma();
  out_.push_back('"');
  out_ += escape(v);
  out_.push_back('"');
  need_comma_ = true;
  return *this;
}

Writer& Writer::boolean(bool v) {
  comma();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

Writer& Writer::number(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan; null is the honest encoding
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
  }
  need_comma_ = true;
  return *this;
}

Writer& Writer::number(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

Writer& Writer::number(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

Writer& Writer::raw(std::string_view v) {
  comma();
  out_ += v;
  need_comma_ = true;
  return *this;
}

Writer& Writer::null() {
  comma();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

}  // namespace qdt::serve::json
