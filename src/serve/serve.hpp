// qdt::serve — the hardened multi-tenant simulation daemon behind
// `qdt serve`.
//
// The paper frames arrays, decision diagrams, tensor networks, and the
// ZX-calculus as the computational core of quantum design *tools* — and a
// real tool is a long-running service with many concurrent users, not one
// CLI invocation. This layer composes everything built below it into that
// service, with robustness under hostile load as the design headline:
//
//  * Admission control. Every request passes a static gate before any
//    simulation: a request-size cap, a dense-state width cap, and the
//    qdt::lint cost model — when the cheapest feasible backend's predicted
//    cost exceeds the admission ceiling, the request is rejected with the
//    reason and the full ranked estimate table, having cost the daemon
//    only a lint pass.
//  * Typed load shedding, never queue collapse. The run queue is bounded
//    globally and per tenant; overflow sheds the *new* request with a
//    typed `resource-exhausted` response carrying a retry_after_ms hint
//    derived from the observed service rate. Every submitted request gets
//    exactly one response.
//  * Fair share across tenants. Workers pull from per-tenant FIFO queues
//    in round-robin order, so a tenant flooding the daemon delays its own
//    requests, not everyone's.
//  * Per-request budgets + graceful degradation. Each job runs under a
//    guard::Budget (deadline always set — the server default caps any
//    request that doesn't name one) and the robust fallback ladder, seeded
//    from the cached lint plan; the degradation path comes back in the
//    response as typed per-rung steps.
//  * Crash-only request isolation. A request that throws — typed error,
//    std::exception, anything — produces an error response and a counter
//    bump; the worker and the daemon keep serving. Fault injection
//    (QDT_FAULT, or the per-request "fault" field) makes every one of
//    those paths deterministically testable.
//  * Plan/parse cache. Identical hot circuits (the realistic shape of
//    heavy traffic) hash to one cached parse + lint plan, so they are
//    planned once and simulated many times; hits/misses are observable.
//  * Graceful drain. begin_drain() stops admission (new requests shed with
//    reason "draining"); drain() waits for in-flight work — every request
//    has a deadline, so the wait is bounded — then cancels whatever is
//    still queued with typed responses. SIGINT/SIGTERM in the CLI map to
//    exactly this sequence, followed by the metrics/trace flush.
//
// Counters land under qdt.serve.*; the `status` request is the /healthz
// endpoint (queue depth, shed counts, RSS, per-tenant stats).
//
// Layering: serve sits above core (it orchestrates robust simulation) and
// below nothing but the CLI; chaos and serve are siblings.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "core/tasks.hpp"

namespace qdt::serve {

/// Server tuning knobs. Defaults are sized for a local daemon on a small
/// container; every ceiling exists so a hostile client meets a typed
/// response instead of an OOM kill.
struct ServeOptions {
  /// Executor threads pulling admitted requests. (Kernel-level parallelism
  /// inside a request is qdt::par's job and stays deterministic; these
  /// workers only add request-level concurrency.)
  std::size_t workers = 2;
  /// Global cap on admitted-but-not-yet-running requests.
  std::size_t max_queue = 64;
  /// Per-tenant cap on queued requests (fair-share backpressure).
  std::size_t max_tenant_queue = 16;
  /// Longest accepted tenant name; anything longer is a typed bad-input
  /// rejection (the name is echoed in status payloads, so it must not be
  /// a free amplification vector).
  std::size_t max_tenant_name_bytes = 64;
  /// Distinct tenants tracked at once. At the cap a previously unseen
  /// tenant first evicts an idle entry (nothing queued or in flight),
  /// else shares the "!overflow" bucket — keeping the map and the status
  /// payload bounded against a unique-tenant-per-request flood.
  std::size_t max_tenants = 256;
  /// Deadline applied to any request that does not set timeout_ms; also
  /// the ceiling a request cannot raise its own deadline past. Every job
  /// therefore runs with a deadline — the property that makes drain() and
  /// a stalled-client recovery bounded in time.
  double default_timeout_ms = 10000.0;
  double max_timeout_ms = 60000.0;
  /// Memory budget applied when the request names none (0 = unlimited —
  /// not recommended for a shared daemon).
  std::size_t default_max_memory_mb = 512;
  /// Admission ceiling on lint's cheapest feasible backend cost (log2).
  double admission_max_cost_log2 = 46.0;
  /// Widest circuit whose dense state may be returned over the wire.
  std::size_t max_state_qubits = 10;
  /// Hard cap on one request line's size in bytes.
  std::size_t max_request_bytes = 4u << 20;
  /// Plan/parse cache entries (LRU beyond this).
  std::size_t plan_cache_entries = 256;
  /// Largest circuit (in operations) the admission path statically
  /// optimizes before costing; bigger requests are planned as-is. The
  /// optimized circuit is what gets simulated and cached, so repeated
  /// requests pay the optimizer once per LRU entry. 0 disables.
  std::size_t opt_max_ops = 20000;
  /// Honor the per-request "fault" test hook (QDT_FAULT syntax). On by
  /// default: the daemon is a local tool and the hook is what makes the
  /// soak tests' failure paths deterministic.
  bool allow_fault_injection = true;
};

/// Point-in-time health snapshot — the payload of the `status` request.
struct ServerStatus {
  bool draining = false;
  std::size_t queue_depth = 0;
  std::size_t inflight = 0;
  std::size_t tenants = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;     // typed error responses (request's fault)
  std::uint64_t rejected = 0;   // admission gate (bad input / cost gate)
  std::uint64_t shed = 0;       // queue overflow / tenant quota / draining
  std::uint64_t degraded = 0;   // served, but below the first rung
  std::uint64_t panics = 0;     // non-Error exceptions swallowed by workers
  std::uint64_t cancelled = 0;  // queued jobs cancelled by drain()
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t cache_entries = 0;
  double uptime_seconds = 0.0;
  std::int64_t rss_peak_mb = 0;
};

class Server {
 public:
  explicit Server(ServeOptions options = {});
  /// Drains (begin_drain + bounded wait), cancels the stragglers, stops
  /// the workers.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit one raw request line. `done` is invoked exactly once with the
  /// response line (no trailing newline) — inline on the calling thread
  /// for rejections, sheds, and status requests; on a worker thread for
  /// executed simulations. `done` must be thread-safe against other
  /// completions and must not block for long (it runs on the serving
  /// path).
  void submit(std::string line, std::function<void(std::string)> done);

  /// Synchronous convenience wrapper around submit() — the in-process
  /// test/client API.
  std::string serve_line(const std::string& line);

  /// Stop admitting; subsequent submissions shed with reason "draining".
  void begin_drain();
  bool draining() const;

  /// Wait up to `timeout_seconds` for queued + in-flight work to finish,
  /// then cancel still-queued jobs with typed shed responses. Returns the
  /// number cancelled. In-flight jobs always finish (each runs against its
  /// own deadline); only never-started jobs are cancelled.
  std::size_t drain(double timeout_seconds);

  ServerStatus status() const;

  const ServeOptions& options() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace qdt::serve
