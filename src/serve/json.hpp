// qdt::serve::json — the minimal JSON DOM behind the serve wire protocol.
//
// The daemon's line-delimited protocol has to survive hostile input: a
// request line is attacker-controlled bytes, and a parse failure must come
// back as a typed BadInput response, never as a crash or an unbounded
// allocation. This parser is therefore deliberately small and defensive:
// recursive descent with an explicit nesting-depth cap, a single pass, no
// exceptions other than qdt::Error, and no dependency above the guard
// layer. It accepts strict JSON (RFC 8259) plus nothing else — no
// comments, no trailing commas, no NaN/Infinity literals.
//
// Writing goes the other way through small helpers (escape(), Writer):
// responses are composed key by key so the serve layer never builds a DOM
// just to serialize it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qdt::serve::json {

/// One parsed JSON value. A tagged struct rather than std::variant so the
/// accessors below can be forgiving (return defaults) without template
/// noise at every call site in the request handler.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered; duplicate keys keep the last occurrence on lookup.
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_string() const { return kind == Kind::String; }
  bool is_number() const { return kind == Kind::Number; }

  /// Member lookup on an object; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;

  // -- Forgiving typed accessors (protocol fields with defaults) -----------
  std::string get_string(std::string_view key,
                         const std::string& fallback = {}) const;
  double get_number(std::string_view key, double fallback = 0.0) const;
  bool get_bool(std::string_view key, bool fallback = false) const;
  /// Number clamped into [0, 2^63) and truncated; fallback when absent,
  /// negative, or not a number.
  std::uint64_t get_uint(std::string_view key, std::uint64_t fallback = 0) const;
};

/// Parse one JSON document (the whole string must be consumed, modulo
/// trailing whitespace). Throws qdt::Error(BadInput) with a byte offset on
/// malformed input; never crashes, never recurses deeper than kMaxDepth.
Value parse(std::string_view text);

/// Nesting-depth cap enforced by parse().
inline constexpr std::size_t kMaxDepth = 64;

/// `s` with JSON string escaping applied (quotes not included).
std::string escape(std::string_view s);

/// Tiny append-only object/array composer:
///
///   Writer w;
///   w.begin_object().key("id").raw(id_json).key("ok").boolean(true);
///   w.key("error").begin_object()...end_object();
///   w.end_object();  -> w.str()
///
/// The writer does not validate shape (that's the caller's job); it only
/// handles commas, quoting, and escaping.
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();
  Writer& key(std::string_view k);
  Writer& string(std::string_view v);
  Writer& boolean(bool v);
  Writer& number(double v);
  Writer& number(std::uint64_t v);
  Writer& number(std::int64_t v);
  /// Verbatim pre-serialized JSON (e.g. an echoed request id).
  Writer& raw(std::string_view v);
  Writer& null();

  const std::string& str() const { return out_; }

 private:
  void comma();
  std::string out_;
  bool need_comma_ = false;
};

}  // namespace qdt::serve::json
