// Line-delimited transports for qdt::serve::Server.
//
// Two ways to reach the daemon, both speaking one JSON request per line,
// one JSON response per line:
//
//  * stdio — the pipe mode `qdt serve` uses by default. Reading is
//    poll()-based so a pending SIGINT/SIGTERM (surfaced via the stop flag)
//    interrupts an idle read within one poll tick instead of hanging on a
//    blocking read.
//  * unix socket — multiple concurrent local clients; each connection gets
//    its own line buffer and responses are interleaved per connection
//    under a write lock (a slow simulation never blocks another client's
//    response).
//
// Responses complete on worker threads, so writes go through a per-sink
// mutex; a request is never dropped — clients that disconnect early just
// discard their in-flight responses.
//
// Both loops end the same way: EOF / stop flag / a `shutdown` request flips
// the server into draining, the transport stops reading, drains with the
// configured timeout (bounded — every job has a deadline), and returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/serve.hpp"

namespace qdt::serve {

struct TransportOptions {
  /// Empty: serve stdin/stdout. Otherwise: path of the unix listening
  /// socket (unlinked and re-bound on start).
  std::string socket_path;
  /// Set by the CLI's signal handler; polled between reads. When it flips,
  /// the transport begins a graceful drain.
  const std::atomic<bool>* stop = nullptr;
  /// Bound on the final drain wait.
  double drain_timeout_seconds = 75.0;
};

/// Serve requests from stdin, responses to stdout, until EOF / stop /
/// shutdown. Returns the number of request lines submitted.
std::uint64_t run_stdio(Server& server, const TransportOptions& options);

/// Accept and serve local clients on a unix stream socket until stop /
/// shutdown. Returns the number of request lines submitted. Throws
/// qdt::Error(BadInput) when the socket cannot be bound.
std::uint64_t run_unix_socket(Server& server, const TransportOptions& options);

}  // namespace qdt::serve
