#include "serve/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "guard/error.hpp"

namespace qdt::serve {

namespace {

constexpr int kPollTickMs = 100;

/// One response sink shared between the transport thread and the worker
/// threads completing requests. Writes are whole-line and serialized; a
/// failed write (client went away) flags the sink dead and later writes
/// become no-ops.
struct Sink {
  explicit Sink(int fd) : fd(fd) {}
  int fd;
  std::mutex mu;
  bool dead = false;

  void write_line(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mu);
    if (dead) {
      return;
    }
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      // MSG_NOSIGNAL: a disconnected socket peer must not SIGPIPE the
      // daemon. Plain pipes can still deliver it; the CLI ignores SIGPIPE.
      const ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          continue;
        }
        if (n < 0 && (errno == ENOTSOCK || errno == EOPNOTSUPP)) {
          const ssize_t w = ::write(fd, out.data() + off, out.size() - off);
          if (w > 0) {
            off += static_cast<std::size_t>(w);
            continue;
          }
          if (w < 0 && errno == EINTR) {
            continue;
          }
        }
        dead = true;
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }
};

/// Split complete lines out of `buffer` and submit each. Returns how many
/// were submitted.
std::uint64_t submit_lines(Server& server, std::string& buffer,
                           const std::shared_ptr<Sink>& sink) {
  std::uint64_t submitted = 0;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = buffer.find('\n', start);
    if (nl == std::string::npos) {
      break;
    }
    std::string line = buffer.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    ++submitted;
    server.submit(std::move(line),
                  [sink](std::string response) { sink->write_line(response); });
  }
  buffer.erase(0, start);
  return submitted;
}

bool should_stop(const Server& server, const TransportOptions& options) {
  return server.draining() ||
         (options.stop != nullptr &&
          options.stop->load(std::memory_order_relaxed));
}

}  // namespace

std::uint64_t run_stdio(Server& server, const TransportOptions& options) {
  const auto sink = std::make_shared<Sink>(STDOUT_FILENO);
  std::string buffer;
  std::uint64_t submitted = 0;
  bool eof = false;
  while (!eof && !should_stop(server, options)) {
    struct pollfd pfd {};
    pfd.fd = STDIN_FILENO;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;  // signal: loop re-checks the stop flag
      }
      break;
    }
    if (ready == 0) {
      continue;  // tick: re-check stop/draining
    }
    char chunk[4096];
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    submitted += submit_lines(server, buffer, sink);
  }
  // A final partial line without the trailing newline still counts at EOF.
  if (eof && !buffer.empty()) {
    buffer.push_back('\n');
    submitted += submit_lines(server, buffer, sink);
  }
  server.begin_drain();
  server.drain(options.drain_timeout_seconds);
  return submitted;
}

std::uint64_t run_unix_socket(Server& server, const TransportOptions& options) {
  struct sockaddr_un addr {};
  if (options.socket_path.size() >= sizeof addr.sun_path) {
    throw Error::bad_input("socket path too long: " + options.socket_path);
  }
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    throw Error::bad_input(std::string("socket(): ") + std::strerror(errno));
  }
  ::unlink(options.socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    throw Error::bad_input("cannot listen on " + options.socket_path + ": " +
                           why);
  }

  struct Conn {
    std::shared_ptr<Sink> sink;
    std::string buffer;
  };
  std::vector<Conn> conns;
  std::uint64_t submitted = 0;

  while (!should_stop(server, options)) {
    std::vector<struct pollfd> pfds;
    pfds.reserve(conns.size() + 1);
    pfds.push_back({listen_fd, POLLIN, 0});
    for (const Conn& c : conns) {
      pfds.push_back({c.sink->fd, POLLIN, 0});
    }
    const int ready = ::poll(pfds.data(), pfds.size(), kPollTickMs);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (ready == 0) {
      continue;
    }
    // pfds mirrors conns as it stood when poll() was called; a connection
    // accepted below has no pfds entry yet, so the revents scan must stay
    // bounded by the pre-accept count (the newcomer is polled next turn).
    const std::size_t polled = conns.size();
    if ((pfds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client >= 0) {
        conns.push_back(Conn{std::make_shared<Sink>(client), {}});
      }
    }
    for (std::size_t i = 0; i < polled;) {
      const short revents = pfds[i + 1].revents;
      bool drop = false;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[4096];
        const ssize_t n = ::read(conns[i].sink->fd, chunk, sizeof chunk);
        if (n > 0) {
          conns[i].buffer.append(chunk, static_cast<std::size_t>(n));
          submitted += submit_lines(server, conns[i].buffer, conns[i].sink);
        } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
          drop = true;
        }
      }
      if (drop) {
        // In-flight responses for this client hit the dead sink and are
        // discarded; the fd closes once the last worker drops its ref.
        {
          const std::lock_guard<std::mutex> lock(conns[i].sink->mu);
          conns[i].sink->dead = true;
        }
        ::close(conns[i].sink->fd);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
        // pfds is stale past this point; rebuild on the next loop turn.
        break;
      }
      ++i;
    }
  }

  server.begin_drain();
  server.drain(options.drain_timeout_seconds);
  for (Conn& c : conns) {
    const std::lock_guard<std::mutex> lock(c.sink->mu);
    if (!c.sink->dead) {
      c.sink->dead = true;
      ::close(c.sink->fd);
    }
  }
  ::close(listen_fd);
  ::unlink(options.socket_path.c_str());
  return submitted;
}

}  // namespace qdt::serve
