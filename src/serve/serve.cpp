#include "serve/serve.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dd/pool.hpp"
#include "flow/opt.hpp"
#include "guard/budget.hpp"
#include "ir/qasm.hpp"
#include "obs/obs.hpp"
#include "serve/json.hpp"
#include "trace/trace.hpp"

namespace qdt::serve {

namespace {

obs::Counter& g_admitted = obs::counter("qdt.serve.request.admitted");
obs::Counter& g_completed = obs::counter("qdt.serve.request.completed");
obs::Counter& g_failed = obs::counter("qdt.serve.request.failed");
obs::Counter& g_rejected = obs::counter("qdt.serve.request.rejected");
obs::Counter& g_shed = obs::counter("qdt.serve.request.shed");
obs::Counter& g_degraded = obs::counter("qdt.serve.request.degraded");
obs::Counter& g_panics = obs::counter("qdt.serve.request.panics");
obs::Counter& g_drain_cancelled = obs::counter("qdt.serve.drain.cancelled");
obs::Counter& g_cache_hit = obs::counter("qdt.serve.cache.hit");
obs::Counter& g_cache_miss = obs::counter("qdt.serve.cache.miss");
obs::Gauge& g_queue_depth = obs::gauge("qdt.serve.queue.depth");
obs::Gauge& g_cache_entries = obs::gauge("qdt.serve.cache.entries");
obs::Histogram& g_queue_wait = obs::histogram("qdt.serve.queue.wait_seconds");
obs::Histogram& g_service = obs::histogram("qdt.serve.request.seconds");

/// Process peak RSS in MB straight from getrusage — status must stay real
/// even in QDT_OBS_ENABLED=OFF builds.
std::int64_t rss_peak_mb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return 0;
  }
  // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss / (1024 * 1024));
#else
  return static_cast<std::int64_t>(ru.ru_maxrss / 1024);
#endif
}

/// FNV-1a over the request's circuit text + constraint bits — the plan
/// cache key. Byte-identical hot circuits collide on purpose; anything
/// else does not (collisions would only cost a wrong plan, but 64-bit FNV
/// over short texts is plenty).
std::uint64_t cache_key(const std::string& qasm, bool want_state,
                        bool has_noise) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (const char c : qasm) {
    mix(static_cast<unsigned char>(c));
  }
  mix(want_state ? 1 : 0);
  mix(has_noise ? 3 : 2);
  return h;
}

/// Re-serialize a parsed JSON value (used to echo request ids verbatim).
void serialize(const json::Value& v, json::Writer& w) {
  switch (v.kind) {
    case json::Value::Kind::Null:
      w.null();
      return;
    case json::Value::Kind::Bool:
      w.boolean(v.boolean);
      return;
    case json::Value::Kind::Number:
      w.number(v.number);
      return;
    case json::Value::Kind::String:
      w.string(v.string);
      return;
    case json::Value::Kind::Array:
      w.begin_array();
      for (const auto& e : v.array) {
        serialize(e, w);
      }
      w.end_array();
      return;
    case json::Value::Kind::Object:
      w.begin_object();
      for (const auto& [k, e] : v.object) {
        w.key(k);
        serialize(e, w);
      }
      w.end_object();
      return;
  }
}

std::string serialize(const json::Value& v) {
  json::Writer w;
  serialize(v, w);
  return w.str();
}

/// Parse a "resource:n[,resource:n]" fault spec (the QDT_FAULT syntax) and
/// arm the faults on the calling thread. Unknown tokens are ignored, like
/// guard's own env parser: fault injection is a test hook, never a reason
/// to fail a request.
void arm_request_faults(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    const std::string token = entry.substr(0, colon);
    Resource r = Resource::None;
    if (token == "memory") {
      r = Resource::Memory;
    } else if (token == "dd_nodes") {
      r = Resource::DdNodes;
    } else if (token == "tn_elements") {
      r = Resource::TnElements;
    } else if (token == "mps_bond") {
      r = Resource::MpsBond;
    } else if (token == "deadline") {
      r = Resource::Deadline;
    }
    if (r == Resource::None) {
      continue;
    }
    char* end = nullptr;
    const unsigned long long nth = std::strtoull(entry.c_str() + colon + 1,
                                                 &end, 10);
    if (nth > 0) {
      guard::inject_fault(r, nth);
    }
  }
}

std::optional<core::SimBackend> backend_from_token(const std::string& name) {
  if (name == "array") {
    return core::SimBackend::Array;
  }
  if (name == "dd") {
    return core::SimBackend::DecisionDiagram;
  }
  if (name == "tn") {
    return core::SimBackend::TensorNetwork;
  }
  if (name == "mps") {
    return core::SimBackend::Mps;
  }
  if (name == "stab") {
    return core::SimBackend::Stabilizer;
  }
  return std::nullopt;
}

/// A parsed, admitted simulate request waiting for a worker.
struct Job {
  std::string id_json = "null";  // echoed verbatim in the response
  std::string tenant;
  std::string qasm;
  std::string backend;  // explicit backend token, empty = planned
  std::string fault;    // per-request fault spec (test hook)
  bool robust = true;
  bool want_state = false;
  std::uint64_t seed = 1;
  std::uint64_t shots = 0;
  double noise = 0.0;
  std::uint64_t mps_max_bond = 0;
  guard::Budget budget;
  double enqueued_at = 0.0;
  std::function<void(std::string)> done;
};

/// One cached parse + optimize + lint pass, shared by every identical
/// request.
struct PlanEntry {
  ir::Circuit circuit;
  lint::CircuitFacts facts;
  lint::BackendPlan plan;
  std::vector<core::SimBackend> ladder;
  /// Operations the static optimizer removed before costing (0 when the
  /// optimizer was skipped or found nothing).
  std::size_t opt_removed_ops = 0;
};

struct TenantState {
  std::deque<Job> queue;
  std::size_t inflight = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
};

/// Shared bucket for tenants arriving past the max_tenants cap: a flood
/// of unique names lands here and contends for one queue and one
/// round-robin slot instead of growing the map. (A client naming itself
/// "!overflow" merely opts into the shared bucket.)
constexpr const char* kOverflowTenant = "!overflow";

}  // namespace

struct Server::Impl {
  explicit Impl(ServeOptions o) : options(std::move(o)) {
    started_at = obs::monotonic_seconds();
    const std::size_t n = std::max<std::size_t>(1, options.workers);
    workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    begin_drain();
    // Bounded: every in-flight job runs against a deadline no later than
    // max_timeout_ms.
    drain(options.max_timeout_ms / 1000.0 + 1.0);
    {
      const std::lock_guard<std::mutex> lock(mu);
      stopping = true;
    }
    work_cv.notify_all();
    for (auto& t : workers) {
      t.join();
    }
  }

  // ---------------------------------------------------------------------
  // Response builders
  // ---------------------------------------------------------------------

  static std::string error_response(const std::string& id_json,
                                    const std::string& code,
                                    const std::string& message,
                                    const std::string& resource = {},
                                    const std::string& reason = {},
                                    double retry_after_ms = -1.0) {
    json::Writer w;
    w.begin_object();
    w.key("id").raw(id_json);
    w.key("ok").boolean(false);
    w.key("error").begin_object();
    w.key("code").string(code);
    if (!resource.empty()) {
      w.key("resource").string(resource);
    }
    if (!reason.empty()) {
      w.key("reason").string(reason);
    }
    w.key("message").string(message);
    if (retry_after_ms >= 0.0) {
      w.key("retry_after_ms").number(retry_after_ms);
    }
    w.end_object();
    w.end_object();
    return w.str();
  }

  /// Shed with a typed resource-exhausted payload and a retry hint from
  /// the observed service rate — the contract that distinguishes overload
  /// from failure.
  std::string shed_response(const std::string& id_json,
                            const std::string& reason,
                            const std::string& message) {
    g_shed.add();
    ++shed_total;
    return error_response(id_json, "resource-exhausted", message, "queue",
                          reason, retry_after_ms_locked());
  }

  /// Must hold mu. Expected time until a queue slot frees up.
  double retry_after_ms_locked() const {
    const double per_request =
        ema_service_seconds > 0.0 ? ema_service_seconds : 0.05;
    const double wave = static_cast<double>(total_queued + inflight) /
                        static_cast<double>(workers.size());
    return std::max(10.0, wave * per_request * 1000.0);
  }

  /// Must hold mu. Resolve the tenant's bucket without letting the map
  /// grow past max_tenants: an unseen tenant at the cap first evicts an
  /// idle entry (empty queue, nothing in flight — so no rr_order slot and
  /// no worker still accounting against it), else is folded into the
  /// shared overflow bucket. `name` is the job's tenant field and is
  /// rewritten on fold so worker-side accounting stays consistent.
  TenantState& tenant_state_locked(std::string& name) {
    const auto it = tenants.find(name);
    if (it != tenants.end()) {
      return it->second;
    }
    if (tenants.size() >= options.max_tenants) {
      for (auto ev = tenants.begin(); ev != tenants.end(); ++ev) {
        if (ev->second.queue.empty() && ev->second.inflight == 0 &&
            ev->first != kOverflowTenant) {
          tenants.erase(ev);
          break;
        }
      }
      if (tenants.size() >= options.max_tenants) {
        name = kOverflowTenant;
      }
    }
    return tenants[name];
  }

  // ---------------------------------------------------------------------
  // Admission (called on the submitting thread)
  // ---------------------------------------------------------------------

  void submit(std::string line, std::function<void(std::string)> done) {
    if (!done) {
      done = [](std::string) {};
    }
    if (line.size() > options.max_request_bytes) {
      g_rejected.add();
      ++rejected_total;
      done(error_response(
          "null", "bad-input",
          "request line of " + std::to_string(line.size()) +
              " bytes exceeds the " +
              std::to_string(options.max_request_bytes) + "-byte cap"));
      return;
    }

    json::Value req;
    try {
      req = json::parse(line);
    } catch (const Error& e) {
      g_rejected.add();
      ++rejected_total;
      done(error_response("null", "bad-input", e.what()));
      return;
    }
    if (!req.is_object()) {
      g_rejected.add();
      ++rejected_total;
      done(error_response("null", "bad-input",
                          "request must be a JSON object"));
      return;
    }

    const json::Value* id = req.find("id");
    const std::string id_json = id != nullptr ? serialize(*id) : "null";
    const std::string op = req.get_string("op", "simulate");

    if (op == "status") {
      done(status_response(id_json));
      return;
    }
    if (op == "ping") {
      json::Writer w;
      w.begin_object();
      w.key("id").raw(id_json);
      w.key("ok").boolean(true);
      w.key("op").string("ping");
      w.end_object();
      done(w.str());
      return;
    }
    if (op == "shutdown") {
      // Admin request: flip into draining; the transport notices via
      // Server::draining() and winds the session down.
      begin_drain();
      json::Writer w;
      w.begin_object();
      w.key("id").raw(id_json);
      w.key("ok").boolean(true);
      w.key("op").string("shutdown");
      w.key("draining").boolean(true);
      w.end_object();
      done(w.str());
      return;
    }
    if (op != "simulate") {
      g_rejected.add();
      ++rejected_total;
      done(error_response(id_json, "bad-input", "unknown op '" + op + "'"));
      return;
    }

    Job job;
    job.id_json = id_json;
    job.done = std::move(done);
    const json::Value* qasm = req.find("qasm");
    if (qasm == nullptr || !qasm->is_string() || qasm->string.empty()) {
      g_rejected.add();
      ++rejected_total;
      job.done(error_response(id_json, "bad-input",
                              "simulate requires a string 'qasm' field"));
      return;
    }
    job.qasm = qasm->string;
    job.tenant = req.get_string("tenant", "anonymous");
    if (job.tenant.size() > options.max_tenant_name_bytes) {
      g_rejected.add();
      ++rejected_total;
      job.done(error_response(
          id_json, "bad-input",
          "tenant name of " + std::to_string(job.tenant.size()) +
              " bytes exceeds the " +
              std::to_string(options.max_tenant_name_bytes) + "-byte cap"));
      return;
    }
    job.backend = req.get_string("backend");
    if (!job.backend.empty() && !backend_from_token(job.backend)) {
      g_rejected.add();
      ++rejected_total;
      job.done(error_response(
          id_json, "bad-input",
          "unknown backend '" + job.backend +
              "' (expected array|dd|tn|mps|stab)"));
      return;
    }
    job.robust = req.get_bool("robust", true);
    job.want_state = req.get_bool("want_state", false);
    job.seed = req.get_uint("seed", 1);
    job.shots = std::min<std::uint64_t>(req.get_uint("shots", 0), 1u << 20);
    job.noise = std::clamp(req.get_number("noise", 0.0), 0.0, 1.0);
    job.mps_max_bond = req.get_uint("mps_max_bond", 0);
    if (options.allow_fault_injection) {
      job.fault = req.get_string("fault");
    }

    // Budget: the request can tighten the server defaults, never escape
    // them — in particular every job ends up with a deadline.
    const double req_timeout = req.get_number("timeout_ms", 0.0);
    double timeout_ms = options.default_timeout_ms;
    if (req_timeout > 0.0) {
      timeout_ms = std::min(req_timeout, options.max_timeout_ms);
    }
    job.budget.deadline_seconds = timeout_ms / 1000.0;
    const std::uint64_t req_mem = req.get_uint("max_memory_mb", 0);
    std::size_t mem_mb = options.default_max_memory_mb;
    if (req_mem > 0) {
      mem_mb = options.default_max_memory_mb > 0
                   ? std::min<std::size_t>(req_mem, options.default_max_memory_mb)
                   : static_cast<std::size_t>(req_mem);
    }
    job.budget.max_memory_bytes = mem_mb * std::size_t{1024 * 1024};
    job.budget.max_dd_nodes = req.get_uint("max_dd_nodes", 0);
    job.budget.max_tn_elements = req.get_uint("max_tn_elements", 0);
    job.budget.max_mps_bond = req.get_uint("max_mps_bond", 0);
    job.enqueued_at = obs::monotonic_seconds();

    // -- Queue admission (the shedding gate) -------------------------------
    {
      std::unique_lock<std::mutex> lock(mu);
      if (draining_flag) {
        auto done_cb = std::move(job.done);
        const std::string shed = shed_response(
            job.id_json, "draining", "server is draining; not admitting");
        lock.unlock();
        done_cb(shed);
        return;
      }
      if (total_queued >= options.max_queue) {
        auto done_cb = std::move(job.done);
        const std::string shed = shed_response(
            job.id_json, "queue-full",
            "run queue is full (" + std::to_string(total_queued) +
                " queued); retry after the hint");
        lock.unlock();
        done_cb(shed);
        return;
      }
      TenantState& tenant = tenant_state_locked(job.tenant);
      if (tenant.queue.size() >= options.max_tenant_queue) {
        ++tenant.shed;
        auto done_cb = std::move(job.done);
        const std::string shed = shed_response(
            job.id_json, "tenant-quota",
            "tenant '" + job.tenant + "' already has " +
                std::to_string(tenant.queue.size()) + " queued requests");
        lock.unlock();
        done_cb(shed);
        return;
      }
      ++tenant.admitted;
      if (tenant.queue.empty()) {
        rr_order.push_back(job.tenant);
      }
      tenant.queue.push_back(std::move(job));
      ++total_queued;
      ++admitted_total;
      g_admitted.add();
      g_queue_depth.set(static_cast<std::int64_t>(total_queued));
    }
    work_cv.notify_one();
  }

  // ---------------------------------------------------------------------
  // Worker side
  // ---------------------------------------------------------------------

  void worker_loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [this] { return stopping || total_queued > 0; });
        if (stopping && total_queued == 0) {
          // The worker's thread-local DD package pool dies with the thread
          // anyway; trimming explicitly keeps shutdown deterministic (and
          // keeps LeakSanitizer's view of the pool clean).
          dd::trim_pool();
          return;
        }
        job = pop_next_locked();
        ++inflight;
        ++tenants[job.tenant].inflight;
        g_queue_depth.set(static_cast<std::int64_t>(total_queued));
      }
      const std::string response = execute(job);
      job.done(response);
      {
        const std::lock_guard<std::mutex> lock(mu);
        --inflight;
        TenantState& tenant = tenants[job.tenant];
        --tenant.inflight;
        ++tenant.completed;
      }
      drain_cv.notify_all();
    }
  }

  /// Must hold mu with total_queued > 0: per-tenant round robin — pop the
  /// head of the front tenant's queue, then rotate that tenant to the back
  /// if it still has work.
  Job pop_next_locked() {
    const std::string name = std::move(rr_order.front());
    rr_order.pop_front();
    TenantState& tenant = tenants[name];
    Job job = std::move(tenant.queue.front());
    tenant.queue.pop_front();
    if (!tenant.queue.empty()) {
      rr_order.push_back(name);
    }
    --total_queued;
    return job;
  }

  /// Look up (or compute) the cached parse + lint plan for this request.
  /// Throws qdt::Error(BadInput) on malformed QASM.
  std::shared_ptr<const PlanEntry> resolve_plan(const Job& job) {
    const bool has_noise = job.noise > 0.0;
    const std::uint64_t key = cache_key(job.qasm, job.want_state, has_noise);
    {
      const std::lock_guard<std::mutex> lock(cache_mu);
      const auto it = cache.find(key);
      if (it != cache.end()) {
        // LRU touch.
        lru.splice(lru.begin(), lru, it->second.second);
        g_cache_hit.add();
        ++cache_hit_total;
        tls_cache_hit() = true;
        return it->second.first;
      }
    }
    g_cache_miss.add();
    {
      const std::lock_guard<std::mutex> lock(cache_mu);
      ++cache_miss_total;
    }
    tls_cache_hit() = false;
    auto entry = std::make_shared<PlanEntry>();
    entry->circuit = ir::parse_qasm(job.qasm);
    entry->circuit.set_name("request");
    if (options.opt_max_ops > 0 &&
        entry->circuit.size() <= options.opt_max_ops) {
      // Admission re-costs against the optimized circuit: provably dead
      // gates should neither inflate the cost gate nor be simulated. Wire
      // compaction stays off (responses echo the request's qubit indices)
      // and want_state requests only take phase-exact rewrites, so the
      // returned amplitudes are untouched. A certificate failure below is
      // Error(Internal) and folds into execute()'s typed-response path.
      flow::OptOptions oo;
      oo.compact_wires = false;
      oo.require_zero_phase = job.want_state;
      // Admission latency bound: a shallower scan than the CLI's — the
      // deadline checkpoint inside optimize() backstops the rest.
      oo.commute_window = 256;
      oo.max_passes = 4;
      flow::OptResult opt = flow::optimize(entry->circuit, oo);
      if (opt.ops_after < opt.ops_before) {
        entry->opt_removed_ops = opt.ops_before - opt.ops_after;
        entry->circuit = std::move(opt.circuit);
      }
    }
    entry->facts = lint::analyze(entry->circuit);
    lint::PlanConstraints pc;
    pc.want_state = job.want_state;
    pc.has_noise = has_noise;
    entry->plan = lint::plan_backends(entry->facts, pc);
    entry->ladder = core::ladder_from_plan(entry->plan, has_noise);
    {
      const std::lock_guard<std::mutex> lock(cache_mu);
      if (cache.find(key) == cache.end()) {
        lru.push_front(key);
        cache.emplace(key, std::make_pair(entry, lru.begin()));
        while (cache.size() > options.plan_cache_entries && !lru.empty()) {
          cache.erase(lru.back());
          lru.pop_back();
        }
        g_cache_entries.set(static_cast<std::int64_t>(cache.size()));
      }
    }
    return entry;
  }

  /// Run one admitted job start to finish and build its response line.
  /// Never throws: every failure mode folds into a typed response — the
  /// crash-only contract that keeps one poisoned request from taking the
  /// daemon down.
  std::string execute(Job& job) {
    const double wait_seconds = obs::monotonic_seconds() - job.enqueued_at;
    g_queue_wait.observe(wait_seconds);
    trace::Span span("qdt.serve.request.run");
    span.attr("tenant", job.tenant)
        .attr("robust", std::int64_t{job.robust ? 1 : 0});
    const obs::Stopwatch sw;

    bool armed = false;
    std::string response;
    try {
      // Everything below — parse, lint, simulate — runs under the job's
      // budget, so even a pathological circuit text is deadline-bounded.
      const guard::BudgetScope scope(job.budget);

      const std::shared_ptr<const PlanEntry> plan = resolve_plan(job);

      // -- Static admission gates (reject before any simulation) ---------
      const ir::Circuit& circuit = plan->circuit;
      span.attr("qubits", static_cast<std::uint64_t>(circuit.num_qubits()))
          .attr("gates", static_cast<std::uint64_t>(circuit.size()));
      if (job.want_state && circuit.num_qubits() > options.max_state_qubits) {
        g_rejected.add();
        ++rejected_total;
        return error_response(
            job.id_json, "unsupported",
            "dense state over the wire is capped at " +
                std::to_string(options.max_state_qubits) + " qubits (got " +
                std::to_string(circuit.num_qubits()) + ")");
      }
      double cheapest = 0.0;
      bool feasible = false;
      std::string cheapest_backend;
      for (const auto& est : plan->plan.estimates) {
        if (est.feasible) {
          cheapest = est.cost_log2;
          cheapest_backend = lint::backend_label(est.backend);
          feasible = true;
          break;  // estimates are sorted cheapest-feasible first
        }
      }
      if (!feasible) {
        g_rejected.add();
        ++rejected_total;
        return error_response(job.id_json, "unsupported",
                              "no backend can serve this request (see "
                              "`qdt lint` for the per-backend reasons)");
      }
      if (cheapest > options.admission_max_cost_log2) {
        g_rejected.add();
        ++rejected_total;
        json::Writer w;
        w.begin_object();
        w.key("id").raw(job.id_json);
        w.key("ok").boolean(false);
        w.key("error").begin_object();
        w.key("code").string("resource-exhausted");
        w.key("resource").string("cost");
        w.key("reason").string("admission-cost-gate");
        w.key("message").string(
            "static cost gate: cheapest feasible backend (" +
            cheapest_backend + ") predicts ~2^" + std::to_string(cheapest) +
            " work, over the 2^" +
            std::to_string(options.admission_max_cost_log2) + " ceiling");
        w.key("cost_log2").number(cheapest);
        w.key("ceiling_log2").number(options.admission_max_cost_log2);
        w.end_object();
        w.end_object();
        return w.str();
      }

      // -- Execute -------------------------------------------------------
      if (!job.fault.empty()) {
        arm_request_faults(job.fault);
        armed = true;
      }
      core::SimulateOptions sopts;
      sopts.seed = job.seed;
      sopts.shots = static_cast<std::size_t>(job.shots);
      sopts.want_state = job.want_state;
      sopts.mps_max_bond = static_cast<std::size_t>(job.mps_max_bond);
      sopts.budget = job.budget;
      if (job.noise > 0.0) {
        sopts.noise = arrays::NoiseModel::depolarizing_model(job.noise);
      }
      const std::optional<core::SimBackend> explicit_backend =
          backend_from_token(job.backend);

      core::RobustSimulateResult robust;
      if (job.robust) {
        robust = explicit_backend
                     ? core::simulate_robust(circuit, sopts, explicit_backend)
                     : core::simulate_robust_with_ladder(circuit, sopts,
                                                         plan->ladder);
      } else {
        const core::SimBackend backend =
            explicit_backend ? *explicit_backend : plan->ladder.front();
        robust.result = core::simulate(circuit, backend, sopts);
        core::FallbackStep step;
        step.stage = core::backend_name(backend);
        robust.attempts.push_back(std::move(step));
      }
      response = ok_response(job, robust, wait_seconds);
    } catch (const Error& e) {
      g_failed.add();
      ++failed_total;
      span.attr("outcome", "error").attr("code", e.code_name());
      const std::string resource = e.code() == ErrorCode::ResourceExhausted
                                       ? resource_name(e.resource())
                                       : std::string();
      response =
          error_response(job.id_json, e.code_name(), e.what(), resource);
    } catch (const std::exception& e) {
      // A non-Error escaping a backend is a bug, but the daemon's contract
      // is to answer and survive; the panic counter is the pager signal.
      g_panics.add();
      ++panic_total;
      g_failed.add();
      ++failed_total;
      span.attr("outcome", "panic");
      response = error_response(job.id_json, "internal",
                                std::string("unhandled exception: ") +
                                    e.what());
    } catch (...) {
      g_panics.add();
      ++panic_total;
      g_failed.add();
      ++failed_total;
      span.attr("outcome", "panic");
      response =
          error_response(job.id_json, "internal", "unhandled non-exception");
    }
    if (armed) {
      guard::clear_faults();  // request isolation: no fault leaks forward
    }
    const double seconds = sw.seconds();
    g_service.observe(seconds);
    {
      const std::lock_guard<std::mutex> lock(mu);
      ema_service_seconds = ema_service_seconds == 0.0
                                ? seconds
                                : 0.9 * ema_service_seconds + 0.1 * seconds;
    }
    return response;
  }

  std::string ok_response(const Job& job,
                          const core::RobustSimulateResult& robust,
                          double wait_seconds) {
    g_completed.add();
    ++completed_total;
    if (robust.degraded()) {
      g_degraded.add();
      ++degraded_total;
    }
    const core::SimulateResult& res = robust.result;
    json::Writer w;
    w.begin_object();
    w.key("id").raw(job.id_json);
    w.key("ok").boolean(true);
    w.key("backend").string(robust.attempts.empty()
                                ? core::backend_name(res.backend)
                                : robust.attempts.back().stage);
    w.key("degraded").boolean(robust.degraded());
    if (robust.degraded()) {
      w.key("attempts").begin_array();
      for (const auto& step : robust.attempts) {
        w.begin_object();
        w.key("stage").string(step.stage);
        w.key("ok").boolean(step.error.empty());
        if (!step.code.empty()) {
          w.key("code").string(step.code);
        }
        if (!step.resource.empty()) {
          w.key("resource").string(step.resource);
        }
        if (!step.error.empty()) {
          w.key("error").string(step.error);
        }
        w.end_object();
      }
      w.end_array();
    }
    w.key("representation_size")
        .number(static_cast<std::uint64_t>(res.representation_size));
    if (!res.counts.empty()) {
      w.key("counts").begin_object();
      for (const auto& [word, count] : res.counts) {
        w.key(std::to_string(word)).number(static_cast<std::uint64_t>(count));
      }
      w.end_object();
    }
    if (job.want_state && res.state.has_value()) {
      w.key("state").begin_array();
      for (const Complex& a : *res.state) {
        w.begin_array().number(a.real()).number(a.imag()).end_array();
      }
      w.end_array();
    }
    w.key("cache_hit").boolean(last_resolve_was_hit());
    w.key("seconds").number(res.seconds);
    w.key("queue_ms").number(wait_seconds * 1000.0);
    w.end_object();
    return w.str();
  }

  /// Whether the most recent resolve_plan() on this thread hit the cache.
  /// Thread-local because workers resolve concurrently.
  static bool& tls_cache_hit() {
    thread_local bool hit = false;
    return hit;
  }
  bool last_resolve_was_hit() const { return tls_cache_hit(); }

  // ---------------------------------------------------------------------
  // Status + drain
  // ---------------------------------------------------------------------

  std::string status_response(const std::string& id_json) {
    const ServerStatus s = snapshot();
    json::Writer w;
    w.begin_object();
    w.key("id").raw(id_json);
    w.key("ok").boolean(true);
    w.key("op").string("status");
    w.key("draining").boolean(s.draining);
    w.key("queue_depth").number(static_cast<std::uint64_t>(s.queue_depth));
    w.key("inflight").number(static_cast<std::uint64_t>(s.inflight));
    w.key("workers").number(static_cast<std::uint64_t>(workers.size()));
    w.key("admitted").number(s.admitted);
    w.key("completed").number(s.completed);
    w.key("failed").number(s.failed);
    w.key("rejected").number(s.rejected);
    w.key("shed").number(s.shed);
    w.key("degraded").number(s.degraded);
    w.key("panics").number(s.panics);
    w.key("cancelled").number(s.cancelled);
    w.key("cache_hits").number(s.cache_hits);
    w.key("cache_misses").number(s.cache_misses);
    w.key("cache_entries").number(static_cast<std::uint64_t>(s.cache_entries));
    w.key("uptime_seconds").number(s.uptime_seconds);
    w.key("rss_peak_mb").number(static_cast<std::int64_t>(s.rss_peak_mb));
    w.key("tenants").begin_object();
    {
      const std::lock_guard<std::mutex> lock(mu);
      for (const auto& [name, t] : tenants) {
        w.key(name).begin_object();
        w.key("queued").number(static_cast<std::uint64_t>(t.queue.size()));
        w.key("inflight").number(static_cast<std::uint64_t>(t.inflight));
        w.key("admitted").number(t.admitted);
        w.key("completed").number(t.completed);
        w.key("shed").number(t.shed);
        w.end_object();
      }
    }
    w.end_object();
    w.end_object();
    return w.str();
  }

  ServerStatus snapshot() const {
    ServerStatus s;
    {
      const std::lock_guard<std::mutex> lock(mu);
      s.draining = draining_flag;
      s.queue_depth = total_queued;
      s.inflight = inflight;
      s.tenants = tenants.size();
      s.admitted = admitted_total;
      s.completed = completed_total;
      s.failed = failed_total;
      s.rejected = rejected_total;
      s.shed = shed_total;
      s.degraded = degraded_total;
      s.panics = panic_total;
      s.cancelled = cancelled_total;
    }
    {
      const std::lock_guard<std::mutex> lock(cache_mu);
      s.cache_hits = cache_hit_total;
      s.cache_misses = cache_miss_total;
      s.cache_entries = cache.size();
    }
    s.uptime_seconds = obs::monotonic_seconds() - started_at;
    s.rss_peak_mb = rss_peak_mb();
    return s;
  }

  void begin_drain() {
    const std::lock_guard<std::mutex> lock(mu);
    draining_flag = true;
  }

  std::size_t drain(double timeout_seconds) {
    std::unique_lock<std::mutex> lock(mu);
    draining_flag = true;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(std::max(0.0, timeout_seconds));
    drain_cv.wait_until(lock, deadline, [this] {
      return total_queued == 0 && inflight == 0;
    });
    // Cancel whatever is still queued with typed responses; in-flight work
    // is left to finish against its own deadline (the worker answers it).
    std::vector<Job> cancelled;
    for (auto& [name, tenant] : tenants) {
      while (!tenant.queue.empty()) {
        cancelled.push_back(std::move(tenant.queue.front()));
        tenant.queue.pop_front();
        --total_queued;
      }
    }
    rr_order.clear();
    cancelled_total += cancelled.size();
    g_drain_cancelled.add(cancelled.size());
    g_queue_depth.set(0);
    lock.unlock();
    for (Job& job : cancelled) {
      job.done(error_response(job.id_json, "resource-exhausted",
                              "cancelled: server drained before this "
                              "request was scheduled",
                              "queue", "cancelled"));
    }
    return cancelled.size();
  }

  // ---------------------------------------------------------------------

  ServeOptions options;
  double started_at = 0.0;

  mutable std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable drain_cv;
  bool draining_flag = false;
  bool stopping = false;
  std::size_t total_queued = 0;
  std::size_t inflight = 0;
  std::deque<std::string> rr_order;
  std::unordered_map<std::string, TenantState> tenants;
  double ema_service_seconds = 0.0;
  std::uint64_t admitted_total = 0;
  std::uint64_t completed_total = 0;
  std::uint64_t failed_total = 0;
  std::uint64_t rejected_total = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t degraded_total = 0;
  std::uint64_t panic_total = 0;
  std::uint64_t cancelled_total = 0;

  mutable std::mutex cache_mu;
  std::list<std::uint64_t> lru;  // most recent first
  std::unordered_map<std::uint64_t,
                     std::pair<std::shared_ptr<const PlanEntry>,
                               std::list<std::uint64_t>::iterator>>
      cache;
  std::uint64_t cache_hit_total = 0;
  std::uint64_t cache_miss_total = 0;

  std::vector<std::thread> workers;
};

Server::Server(ServeOptions options) : impl_(new Impl(std::move(options))) {}

Server::~Server() { delete impl_; }

void Server::submit(std::string line, std::function<void(std::string)> done) {
  impl_->submit(std::move(line), std::move(done));
}

std::string Server::serve_line(const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  impl_->submit(line, [&promise](std::string response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

void Server::begin_drain() { impl_->begin_drain(); }

bool Server::draining() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->draining_flag;
}

std::size_t Server::drain(double timeout_seconds) {
  return impl_->drain(timeout_seconds);
}

ServerStatus Server::status() const { return impl_->snapshot(); }

const ServeOptions& Server::options() const { return impl_->options; }

}  // namespace qdt::serve
