#include "tn/mps.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"
#include "guard/budget.hpp"
#include "guard/error.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

namespace qdt::tn {

Mat4 two_qubit_matrix(const ir::Operation& op, ir::Qubit qa, ir::Qubit qb) {
  if (op.num_qubits() != 2) {
    throw std::invalid_argument("two_qubit_matrix: op must touch 2 qubits");
  }
  Mat4 m;
  if (op.targets().size() == 2) {
    m = op.matrix4();  // bit 0 = targets[0], bit 1 = targets[1]
    if (op.targets()[0] == qa && op.targets()[1] == qb) {
      return m;
    }
    if (op.targets()[0] == qb && op.targets()[1] == qa) {
      // Conjugate by SWAP to exchange the index bits.
      Mat4 sw = ir::gate_matrix4(ir::GateKind::Swap, {});
      return sw * m * sw;
    }
    throw std::invalid_argument("two_qubit_matrix: qubit mismatch");
  }
  // Singly-controlled single-qubit gate: embed U at the target bit.
  const ir::Qubit target = op.targets()[0];
  const ir::Qubit control = op.controls()[0];
  const Mat2 u = op.matrix2();
  const bool target_is_a = target == qa;
  if ((target_is_a && control != qb) || (!target_is_a && (target != qb ||
                                                          control != qa))) {
    throw std::invalid_argument("two_qubit_matrix: qubit mismatch");
  }
  // Index bit layout: bit0 = qa, bit1 = qb.
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const std::size_t ctrl_bit = target_is_a ? 1 : 0;
      const std::size_t tgt_bit = target_is_a ? 0 : 1;
      const bool rc = (r >> ctrl_bit) & 1;
      const bool cc = (c >> ctrl_bit) & 1;
      if (rc != cc) {
        m(r, c) = 0.0;
        continue;
      }
      const std::size_t rt = (r >> tgt_bit) & 1;
      const std::size_t ct = (c >> tgt_bit) & 1;
      m(r, c) = rc ? u(rt, ct)
                   : (rt == ct ? Complex{1.0} : Complex{});
    }
  }
  return m;
}

MPS::MPS(std::size_t n, std::size_t max_bond, double cutoff)
    : max_bond_(max_bond), cutoff_(cutoff) {
  if (n == 0) {
    throw std::invalid_argument("MPS: need at least one qubit");
  }
  sites_.resize(n);
  for (auto& s : sites_) {
    s.data.assign(2, Complex{});
    s.data[0] = 1.0;  // |0>
  }
}

void MPS::apply_1q(const Mat2& m, std::size_t site) {
  Site& s = sites_[site];
  for (std::size_t l = 0; l < s.dl; ++l) {
    for (std::size_t r = 0; r < s.dr; ++r) {
      const Complex a0 = s.at(l, 0, r);
      const Complex a1 = s.at(l, 1, r);
      s.at(l, 0, r) = m(0, 0) * a0 + m(0, 1) * a1;
      s.at(l, 1, r) = m(1, 0) * a0 + m(1, 1) * a1;
    }
  }
}

void MPS::apply_2q_adjacent(const Mat4& m, std::size_t left) {
  Site& a = sites_[left];
  Site& b = sites_[left + 1];
  if (a.dr != b.dl) {
    throw std::logic_error("MPS: inconsistent bond dimensions");
  }
  const std::size_t dl = a.dl;
  const std::size_t dm = a.dr;
  const std::size_t dr = b.dr;
  // theta[l, pa, pb, r] = sum_k a[l, pa, k] b[k, pb, r].
  std::vector<Complex> theta(dl * 2 * 2 * dr, Complex{});
  const auto th = [&](std::size_t l, std::size_t pa, std::size_t pb,
                      std::size_t r) -> Complex& {
    return theta[((l * 2 + pa) * 2 + pb) * dr + r];
  };
  for (std::size_t l = 0; l < dl; ++l) {
    for (std::size_t pa = 0; pa < 2; ++pa) {
      for (std::size_t k = 0; k < dm; ++k) {
        const Complex av = a.at(l, pa, k);
        if (av == Complex{}) {
          continue;
        }
        for (std::size_t pb = 0; pb < 2; ++pb) {
          for (std::size_t r = 0; r < dr; ++r) {
            th(l, pa, pb, r) += av * b.at(k, pb, r);
          }
        }
      }
    }
  }
  // Apply the gate: bit 0 = left site (pa), bit 1 = right site (pb).
  std::vector<Complex> theta2(theta.size(), Complex{});
  const auto th2 = [&](std::size_t l, std::size_t pa, std::size_t pb,
                       std::size_t r) -> Complex& {
    return theta2[((l * 2 + pa) * 2 + pb) * dr + r];
  };
  for (std::size_t l = 0; l < dl; ++l) {
    for (std::size_t r = 0; r < dr; ++r) {
      for (std::size_t pa = 0; pa < 2; ++pa) {
        for (std::size_t pb = 0; pb < 2; ++pb) {
          const std::size_t row = (pb << 1) | pa;
          Complex sum{};
          for (std::size_t qa = 0; qa < 2; ++qa) {
            for (std::size_t qb = 0; qb < 2; ++qb) {
              const std::size_t colidx = (qb << 1) | qa;
              sum += m(row, colidx) * th(l, qa, qb, r);
            }
          }
          th2(l, pa, pb, r) = sum;
        }
      }
    }
  }
  // Split with an SVD: rows (l, pa), columns (pb, r).
  const std::size_t rows = dl * 2;
  const std::size_t cols = 2 * dr;
  std::vector<Complex> mat(rows * cols);
  for (std::size_t l = 0; l < dl; ++l) {
    for (std::size_t pa = 0; pa < 2; ++pa) {
      for (std::size_t pb = 0; pb < 2; ++pb) {
        for (std::size_t r = 0; r < dr; ++r) {
          mat[(l * 2 + pa) * cols + (pb * dr + r)] = th2(l, pa, pb, r);
        }
      }
    }
  }
  const SvdResult res = svd(mat, rows, cols);
  // Truncate: keep values above cutoff * s_max, at most max_bond_.
  double total = 0.0;
  for (const double s : res.s) {
    total += s * s;
  }
  std::size_t keep = 0;
  const double threshold = res.s.empty() ? 0.0 : cutoff_ * res.s[0];
  for (const double s : res.s) {
    if (s <= threshold) {
      break;
    }
    ++keep;
  }
  keep = std::max<std::size_t>(keep, 1);
  if (max_bond_ > 0) {
    keep = std::min(keep, max_bond_);
  }
  guard::check_mps_bond(keep);
  double kept_weight = 0.0;
  for (std::size_t i = 0; i < keep; ++i) {
    kept_weight += res.s[i] * res.s[i];
  }
  if (total > 0.0) {
    discarded_ += (total - kept_weight) / total;
  }
  // a := U (dl, 2, keep); b := S * Vh (keep, 2, dr).
  a.dr = keep;
  a.data.assign(dl * 2 * keep, Complex{});
  for (std::size_t l = 0; l < dl; ++l) {
    for (std::size_t pa = 0; pa < 2; ++pa) {
      for (std::size_t k = 0; k < keep; ++k) {
        a.at(l, pa, k) = res.u[(l * 2 + pa) * res.r + k];
      }
    }
  }
  b.dl = keep;
  b.dr = dr;
  b.data.assign(keep * 2 * dr, Complex{});
  for (std::size_t k = 0; k < keep; ++k) {
    for (std::size_t pb = 0; pb < 2; ++pb) {
      for (std::size_t r = 0; r < dr; ++r) {
        b.at(k, pb, r) = res.s[k] * res.vh[k * cols + (pb * dr + r)];
      }
    }
  }
}

void MPS::apply_swap_adjacent(std::size_t left) {
  apply_2q_adjacent(ir::gate_matrix4(ir::GateKind::Swap, {}), left);
}

void MPS::apply(const ir::Operation& op) {
  if (!op.is_unitary()) {
    throw std::invalid_argument("MPS::apply: non-unitary op " + op.str());
  }
  const auto qubits = op.qubits();
  if (qubits.size() == 1) {
    apply_1q(op.matrix2(), qubits[0]);
    return;
  }
  if (qubits.size() != 2) {
    throw std::invalid_argument(
        "MPS::apply: gates touching 3+ qubits must be decomposed first (" +
        op.str() + ")");
  }
  std::size_t qa = qubits[0];
  std::size_t qb = qubits[1];
  // Route qb next to qa with temporary swaps (move the higher site down).
  const std::size_t lo = std::min(qa, qb);
  const std::size_t hi = std::max(qa, qb);
  for (std::size_t k = hi; k > lo + 1; --k) {
    apply_swap_adjacent(k - 1);  // moves site content at k to k-1
  }
  // The pair now occupies (lo, lo+1), with the content originally at `hi`
  // sitting at lo+1. Build the matrix with bit 0 = the operand at the left
  // site, i.e. the one with the lower qubit index.
  const Mat4 m = qa < qb ? two_qubit_matrix(op, qa, qb)
                         : two_qubit_matrix(op, qb, qa);
  apply_2q_adjacent(m, lo);
  for (std::size_t k = lo + 1; k < hi; ++k) {
    apply_swap_adjacent(k);  // move it back up
  }
}

void MPS::run(const ir::Circuit& circuit) {
  if (circuit.num_qubits() != sites_.size()) {
    throw std::invalid_argument("MPS::run: width mismatch");
  }
  trace::Span span("qdt.tn.mps.run");
  span.attr("backend", "mps")
      .attr("qubits", static_cast<std::uint64_t>(sites_.size()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()))
      .attr("max_bond", static_cast<std::uint64_t>(max_bond_));
  static obs::Gauge& g_bytes_peak = obs::gauge("qdt.tn.mps.bytes_peak");
  for (const auto& op : circuit.ops()) {
    guard::check_deadline();
    if (op.is_barrier()) {
      continue;
    }
    apply(op);
    const std::size_t bytes = total_elements() * sizeof(Complex);
    g_bytes_peak.update_max(static_cast<std::int64_t>(bytes));
    guard::check_memory(bytes, "mps state");
  }
  span.attr("bond", static_cast<std::uint64_t>(max_bond_dimension()))
      .attr("elements", static_cast<std::uint64_t>(total_elements()));
}

Complex MPS::amplitude(std::uint64_t basis) const {
  std::vector<Complex> v{1.0};
  for (std::size_t site = 0; site < sites_.size(); ++site) {
    const Site& s = sites_[site];
    const std::size_t p = get_bit(basis, site) ? 1 : 0;
    std::vector<Complex> next(s.dr, Complex{});
    for (std::size_t l = 0; l < s.dl; ++l) {
      if (v[l] == Complex{}) {
        continue;
      }
      for (std::size_t r = 0; r < s.dr; ++r) {
        next[r] += v[l] * s.at(l, p, r);
      }
    }
    v = std::move(next);
  }
  return v[0];
}

std::vector<Complex> MPS::to_vector() const {
  const std::size_t n = sites_.size();
  if (n > 24) {
    throw Error::exhausted(
        Resource::Memory,
        "MPS::to_vector: dense readout of " + std::to_string(n) +
            " qubits exceeds the 24-qubit readout wall");
  }
  guard::check_memory((std::size_t{1} << n) * sizeof(Complex),
                      "mps dense readout");
  std::vector<Complex> out(std::size_t{1} << n);
  for (std::uint64_t i = 0; i < out.size(); ++i) {
    out[i] = amplitude(i);
  }
  return out;
}

double MPS::norm2() const {
  // Transfer-matrix contraction: E[l][l'] over the bond, starting at 1x1.
  std::vector<Complex> e{1.0};
  std::size_t d = 1;
  for (const Site& s : sites_) {
    std::vector<Complex> next(s.dr * s.dr, Complex{});
    for (std::size_t l = 0; l < s.dl; ++l) {
      for (std::size_t lp = 0; lp < s.dl; ++lp) {
        const Complex ev = e[l * d + lp];
        if (ev == Complex{}) {
          continue;
        }
        for (std::size_t p = 0; p < 2; ++p) {
          for (std::size_t r = 0; r < s.dr; ++r) {
            const Complex left = ev * s.at(l, p, r);
            if (left == Complex{}) {
              continue;
            }
            for (std::size_t rp = 0; rp < s.dr; ++rp) {
              next[r * s.dr + rp] += left * std::conj(s.at(lp, p, rp));
            }
          }
        }
      }
    }
    e = std::move(next);
    d = s.dr;
  }
  return e[0].real();
}

Complex MPS::expectation(const std::string& paulis) const {
  const std::size_t n = sites_.size();
  if (paulis.size() != n) {
    throw std::invalid_argument("MPS::expectation: length mismatch");
  }
  const auto pauli_matrix = [](char p) {
    Mat2 m;
    switch (p) {
      case 'I':
        return Mat2::identity();
      case 'X':
        m(0, 1) = 1.0;
        m(1, 0) = 1.0;
        return m;
      case 'Y':
        m(0, 1) = Complex{0.0, -1.0};
        m(1, 0) = Complex{0.0, 1.0};
        return m;
      case 'Z':
        m(0, 0) = 1.0;
        m(1, 1) = -1.0;
        return m;
      default:
        throw std::invalid_argument("MPS::expectation: bad Pauli");
    }
  };
  // Two transfer contractions sharing a loop: numerator with the operator
  // inserted, denominator without.
  std::vector<Complex> num{1.0};
  std::vector<Complex> den{1.0};
  std::size_t d = 1;
  for (std::size_t site = 0; site < n; ++site) {
    const Site& s = sites_[site];
    const Mat2 op = pauli_matrix(paulis[n - 1 - site]);  // MSB-first string
    std::vector<Complex> nnum(s.dr * s.dr, Complex{});
    std::vector<Complex> nden(s.dr * s.dr, Complex{});
    for (std::size_t l = 0; l < s.dl; ++l) {
      for (std::size_t lp = 0; lp < s.dl; ++lp) {
        const Complex ev_n = num[l * d + lp];
        const Complex ev_d = den[l * d + lp];
        if (ev_n == Complex{} && ev_d == Complex{}) {
          continue;
        }
        for (std::size_t p = 0; p < 2; ++p) {
          for (std::size_t q = 0; q < 2; ++q) {
            const Complex w = op(q, p);  // <q|P|p>: bra side gets q
            for (std::size_t r = 0; r < s.dr; ++r) {
              const Complex ket = s.at(l, p, r);
              if (ket == Complex{}) {
                continue;
              }
              for (std::size_t rp = 0; rp < s.dr; ++rp) {
                const Complex bra = std::conj(s.at(lp, q, rp));
                if (w != Complex{}) {
                  nnum[r * s.dr + rp] += ev_n * ket * w * bra;
                }
                if (p == q) {
                  nden[r * s.dr + rp] += ev_d * ket * bra;
                }
              }
            }
          }
        }
      }
    }
    num = std::move(nnum);
    den = std::move(nden);
    d = s.dr;
  }
  if (den[0] == Complex{}) {
    throw std::logic_error("MPS::expectation: zero-norm state");
  }
  return num[0] / den[0];
}

std::uint64_t MPS::sample(Rng& rng) const {
  const std::size_t n = sites_.size();
  // Right environments: R[site] is the (dl x dl) transfer contraction of
  // everything to the right of `site` (inclusive start at site index).
  std::vector<std::vector<Complex>> right(n + 1);
  right[n] = {Complex{1.0}};
  for (std::size_t site = n; site-- > 0;) {
    const Site& s = sites_[site];
    const std::size_t dr = s.dr;
    std::vector<Complex> env(s.dl * s.dl, Complex{});
    const auto& prev = right[site + 1];
    for (std::size_t l = 0; l < s.dl; ++l) {
      for (std::size_t lp = 0; lp < s.dl; ++lp) {
        Complex acc{};
        for (std::size_t p = 0; p < 2; ++p) {
          for (std::size_t r = 0; r < dr; ++r) {
            const Complex ket = s.at(l, p, r);
            if (ket == Complex{}) {
              continue;
            }
            for (std::size_t rp = 0; rp < dr; ++rp) {
              acc += ket * std::conj(s.at(lp, p, rp)) * prev[r * dr + rp];
            }
          }
        }
        env[l * s.dl + lp] = acc;
      }
    }
    right[site] = std::move(env);
  }
  // Left-to-right conditional sampling.
  std::vector<Complex> left{1.0};
  std::size_t d = 1;
  std::uint64_t word = 0;
  for (std::size_t site = 0; site < n; ++site) {
    const Site& s = sites_[site];
    const std::size_t dr = s.dr;
    std::array<std::vector<Complex>, 2> cond;
    std::array<double, 2> weight{0.0, 0.0};
    for (std::size_t p = 0; p < 2; ++p) {
      cond[p].assign(dr * dr, Complex{});
      for (std::size_t l = 0; l < s.dl; ++l) {
        for (std::size_t lp = 0; lp < s.dl; ++lp) {
          const Complex ev = left[l * d + lp];
          if (ev == Complex{}) {
            continue;
          }
          for (std::size_t r = 0; r < dr; ++r) {
            const Complex ket = ev * s.at(l, p, r);
            if (ket == Complex{}) {
              continue;
            }
            for (std::size_t rp = 0; rp < dr; ++rp) {
              cond[p][r * dr + rp] += ket * std::conj(s.at(lp, p, rp));
            }
          }
        }
      }
      Complex tr{};
      const auto& renv = right[site + 1];
      for (std::size_t r = 0; r < dr; ++r) {
        for (std::size_t rp = 0; rp < dr; ++rp) {
          tr += cond[p][r * dr + rp] * renv[r * dr + rp];
        }
      }
      weight[p] = std::max(0.0, tr.real());
    }
    const double total = weight[0] + weight[1];
    const bool bit = total > 0.0 && rng.uniform() * total >= weight[0];
    if (bit) {
      word |= std::uint64_t{1} << site;
    }
    left = std::move(cond[bit ? 1 : 0]);
    d = dr;
  }
  return word;
}

std::size_t MPS::max_bond_dimension() const {
  std::size_t m = 1;
  for (const Site& s : sites_) {
    m = std::max(m, s.dr);
  }
  return m;
}

std::size_t MPS::total_elements() const {
  std::size_t n = 0;
  for (const Site& s : sites_) {
    n += s.data.size();
  }
  return n;
}

}  // namespace qdt::tn
