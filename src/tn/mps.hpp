// Matrix-product-state simulator — the "specialized tensor network" of
// Section IV [35]: the state is decomposed into one small tensor per qubit,
// connected by bonds whose dimension measures entanglement across that cut.
//
// Gates are applied TEBD-style: single-qubit gates contract locally;
// two-qubit gates on neighbors contract the two site tensors, apply the
// 4x4 matrix, and split back with an SVD, optionally truncating the bond to
// `max_bond` (discarding the smallest singular values). Non-neighbor gates
// are routed with temporary swaps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "ir/circuit.hpp"
#include "tn/svd.hpp"

namespace qdt::tn {

class MPS {
 public:
  /// |0...0> on n qubits. max_bond == 0 means unbounded (exact simulation);
  /// singular values below cutoff * s_max are always dropped.
  explicit MPS(std::size_t n, std::size_t max_bond = 0,
               double cutoff = 1e-12);

  std::size_t num_qubits() const { return sites_.size(); }

  /// Apply a unitary catalogue operation touching at most two qubits
  /// (transpile multi-controlled gates first).
  void apply(const ir::Operation& op);

  /// Run all unitary operations of the circuit (barriers skipped).
  void run(const ir::Circuit& circuit);

  /// Single amplitude <basis|psi> in O(n * D^2).
  Complex amplitude(std::uint64_t basis) const;

  /// Dense readout (exponential; small n only).
  std::vector<Complex> to_vector() const;

  /// <psi|psi>, via transfer matrices.
  double norm2() const;

  /// <psi| P |psi> / <psi|psi> for a Pauli string (chars I/X/Y/Z,
  /// MSB-first), via operator-inserted transfer matrices in O(n D^4).
  Complex expectation(const std::string& paulis) const;

  /// Perfect sampling of a full computational-basis readout directly from
  /// the MPS (no 2^n object): left-to-right conditional sampling against
  /// precomputed right environments. The state is not modified.
  std::uint64_t sample(Rng& rng) const;

  /// Largest bond dimension currently present.
  std::size_t max_bond_dimension() const;

  /// Total memory, in complex elements, of all site tensors (the linear
  /// memory claim of Section IV, for bounded bonds).
  std::size_t total_elements() const;

  /// Sum of discarded squared singular-value weight over all truncations —
  /// an upper-bound proxy for the simulation error.
  double discarded_weight() const { return discarded_; }

 private:
  // Site tensor: shape (dl, 2, dr), row-major.
  struct Site {
    std::size_t dl = 1;
    std::size_t dr = 1;
    std::vector<Complex> data;  // dl * 2 * dr
    Complex& at(std::size_t l, std::size_t p, std::size_t r) {
      return data[(l * 2 + p) * dr + r];
    }
    const Complex& at(std::size_t l, std::size_t p, std::size_t r) const {
      return data[(l * 2 + p) * dr + r];
    }
  };

  void apply_1q(const Mat2& m, std::size_t site);
  /// 4x4 matrix with index bit 0 = site `left`, bit 1 = site `left + 1`.
  void apply_2q_adjacent(const Mat4& m, std::size_t left);
  void apply_swap_adjacent(std::size_t left);

  std::vector<Site> sites_;
  std::size_t max_bond_;
  double cutoff_;
  double discarded_ = 0.0;
};

/// 4x4 matrix of an operation touching exactly qubits {qa, qb}, with qa as
/// matrix index bit 0. Handles plain two-qubit kinds and singly-controlled
/// single-qubit kinds.
Mat4 two_qubit_matrix(const ir::Operation& op, ir::Qubit qa, ir::Qubit qb);

}  // namespace qdt::tn
