// Tensor networks for quantum circuits (Section IV): the circuit's initial
// kets, gates, and optional output "caps" become nodes; qubit wires become
// shared labels (Fig. 2). Contraction order is chosen by a pluggable
// planner — finding the optimal order is NP-hard [33], so a greedy
// cost-based heuristic [34] is provided next to the naive circuit order.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/circuit.hpp"
#include "tn/tensor.hpp"

namespace qdt::tn {

/// A contraction plan: pairs of node ids to contract, in order. Each
/// contraction consumes its two operands and appends the result as a new
/// node id (ids are never reused).
using ContractionPlan = std::vector<std::pair<std::size_t, std::size_t>>;

/// Statistics gathered while executing a plan.
struct ContractionStats {
  std::size_t contractions = 0;
  /// Elements of the largest intermediate tensor — the paper's "keep the
  /// bond dimension in check" metric.
  std::size_t peak_tensor_size = 0;
  std::size_t peak_rank = 0;
  /// Total scalar multiply-adds (the classical cost model).
  double flops = 0.0;
};

class TensorNetwork {
 public:
  /// Add a node; returns its id.
  std::size_t add(Tensor t);

  std::size_t num_nodes() const;
  const Tensor& node(std::size_t id) const;

  /// Total elements stored over all current nodes (memory footprint —
  /// linear in qubits + gates for a circuit network).
  std::size_t total_elements() const;

  /// Fresh unique label.
  Label fresh_label() { return next_label_++; }

  /// Contract everything per `plan`, then outer-multiply any remaining
  /// disconnected components. Returns the final tensor. If
  /// `max_intermediate` is nonzero and any intermediate tensor would exceed
  /// that many elements, throws std::length_error (used by callers that
  /// prefer "inconclusive" over out-of-memory).
  Tensor contract_all(const ContractionPlan& plan,
                      ContractionStats* stats = nullptr,
                      std::size_t max_intermediate = 0);

  /// Plan that contracts nodes in insertion order (the "simulation order").
  ContractionPlan sequential_plan() const;

  /// Greedy plan: repeatedly contract the pair (sharing at least one bond)
  /// whose result tensor is smallest; ties broken by flop cost.
  ContractionPlan greedy_plan() const;

 private:
  std::vector<std::optional<Tensor>> nodes_;
  Label next_label_ = 0;
};

/// Circuit as a tensor network. Each qubit starts as a |0> ket; every gate
/// becomes a rank-2k tensor re-labelling the wires of the qubits it
/// touches. `out_labels` receives the final open label of every qubit.
/// The circuit must be unitary (barriers are skipped).
TensorNetwork circuit_network(const ir::Circuit& circuit,
                              std::vector<Label>& out_labels);

/// Single output amplitude <basis|C|0...0> by capping every output wire
/// with a bra and contracting to a rank-0 tensor.
Complex amplitude(const ir::Circuit& circuit, std::uint64_t basis,
                  bool greedy = true, ContractionStats* stats = nullptr);

/// Full output state (exponential result — small n only): contract with
/// outputs left open.
std::vector<Complex> statevector(const ir::Circuit& circuit,
                                 bool greedy = true,
                                 ContractionStats* stats = nullptr);

/// Expectation value <psi| P |psi> of a Pauli-string observable
/// (pauli[q] in {'I','X','Y','Z'}) on the circuit's output state, computed
/// as a closed bra-ket network (the Section IV "single scalar" use case).
Complex expectation(const ir::Circuit& circuit, const std::string& paulis,
                    bool greedy = true, ContractionStats* stats = nullptr);

}  // namespace qdt::tn
