#include "tn/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace qdt::tn {

namespace {

/// One-sided Jacobi on columns: rotate column pairs of `a` (m x n,
/// column-accessed) until all pairs are orthogonal; the same rotations are
/// accumulated into `v` (n x n). On return the columns of `a` are
/// orthogonal with norms = singular values and a_original = a * v^dagger.
void jacobi_orthogonalize(std::vector<Complex>& a, std::size_t m,
                          std::size_t n, std::vector<Complex>& v) {
  const auto col = [n](std::vector<Complex>& mat, std::size_t c,
                       std::size_t r) -> Complex& {
    return mat[r * n + c];
  };
  constexpr double kTol = 1e-14;
  constexpr int kMaxSweeps = 60;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries for the column pair.
        double app = 0.0;
        double aqq = 0.0;
        Complex apq{};
        for (std::size_t r = 0; r < m; ++r) {
          const Complex cp = col(a, p, r);
          const Complex cq = col(a, q, r);
          app += std::norm(cp);
          aqq += std::norm(cq);
          apq += std::conj(cp) * cq;
        }
        const double apq_abs = std::abs(apq);
        off = std::max(off, apq_abs);
        if (apq_abs <= kTol * std::sqrt(app * aqq) || apq_abs == 0.0) {
          continue;
        }
        // Hermitian 2x2 [[app, apq], [conj(apq), aqq]]: diagonalize.
        const Complex phase = apq / apq_abs;
        const double zeta = (aqq - app) / (2.0 * apq_abs);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // Apply the rotation to columns p, q of `a` and of `v`:
        // new_p = c * p - s * conj(phase) * q
        // new_q = s * phase * p + c * q
        for (std::size_t r = 0; r < m; ++r) {
          const Complex cp = col(a, p, r);
          const Complex cq = col(a, q, r);
          col(a, p, r) = c * cp - s * std::conj(phase) * cq;
          col(a, q, r) = s * phase * cp + c * cq;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const Complex vp = v[r * n + p];
          const Complex vq = v[r * n + q];
          v[r * n + p] = c * vp - s * std::conj(phase) * vq;
          v[r * n + q] = s * phase * vp + c * vq;
        }
      }
    }
    if (off <= kTol) {
      break;
    }
  }
}

}  // namespace

SvdResult svd(const std::vector<Complex>& a, std::size_t m, std::size_t n) {
  if (a.size() != m * n) {
    throw std::invalid_argument("svd: size mismatch");
  }
  if (m == 0 || n == 0) {
    throw std::invalid_argument("svd: empty matrix");
  }
  if (m < n) {
    // Work on the conjugate transpose and swap the factors:
    // A^H = U' S V'^H  =>  A = V' S U'^H.
    std::vector<Complex> ah(n * m);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        ah[c * m + r] = std::conj(a[r * n + c]);
      }
    }
    const SvdResult t = svd(ah, n, m);
    SvdResult out;
    out.m = m;
    out.n = n;
    out.r = t.r;
    out.s = t.s;
    // U = V'(first r columns): V' = (t.vh)^H, n x r ... here t.vh is r x m,
    // so U(m x r)[i][j] = conj(t.vh[j][i]).
    out.u.assign(m * t.r, Complex{});
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < t.r; ++j) {
        out.u[i * t.r + j] = std::conj(t.vh[j * m + i]);
      }
    }
    // Vh = U'^H: r x n with Vh[j][i] = conj(t.u[i][j]).
    out.vh.assign(t.r * n, Complex{});
    for (std::size_t j = 0; j < t.r; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        out.vh[j * n + i] = std::conj(t.u[i * t.r + j]);
      }
    }
    return out;
  }

  std::vector<Complex> work = a;            // m x n, columns rotated
  std::vector<Complex> v(n * n, Complex{}); // accumulates rotations
  for (std::size_t i = 0; i < n; ++i) {
    v[i * n + i] = 1.0;
  }
  jacobi_orthogonalize(work, m, n, v);

  // Column norms are the singular values.
  std::vector<double> sigma(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    double s2 = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      s2 += std::norm(work[r * n + c]);
    }
    sigma[c] = std::sqrt(s2);
  }
  // Sort descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  SvdResult out;
  out.m = m;
  out.n = n;
  out.r = n;
  out.s.resize(n);
  out.u.assign(m * n, Complex{});
  out.vh.assign(n * n, Complex{});
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.s[j] = sigma[src];
    if (sigma[src] > 0.0) {
      const double inv = 1.0 / sigma[src];
      for (std::size_t r = 0; r < m; ++r) {
        out.u[r * n + j] = work[r * n + src] * inv;
      }
    } else {
      // Zero singular value: any unit column keeps U well-formed; pick a
      // basis vector not colliding with the used ones (j-th).
      out.u[(j % m) * n + j] = 1.0;
    }
    // Vh row j = conj(column src of v).
    for (std::size_t r = 0; r < n; ++r) {
      out.vh[j * n + r] = std::conj(v[r * n + src]);
    }
  }
  return out;
}

}  // namespace qdt::tn
