// Dense tensors with labelled indices — the Section IV data structure.
//
// A tensor is a multi-dimensional array of complex numbers whose indices
// carry integer labels; contracting two tensors sums over all labels they
// share (paper, Example 3). The implementation routes every contraction
// through transpose-to-matrix-multiplication, the standard dense approach.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/eps.hpp"

namespace qdt::tn {

/// Index label. Labels are unique per wire in a network; a label shared by
/// two tensors is a bond to be contracted.
using Label = std::int32_t;

class Tensor {
 public:
  Tensor() = default;

  /// Tensor with the given index labels and dimensions (row-major storage,
  /// first index slowest). Labels must be distinct; data size must equal
  /// the product of dims (or be empty to zero-initialize).
  Tensor(std::vector<Label> labels, std::vector<std::size_t> dims,
         std::vector<Complex> data = {});

  /// Rank-0 tensor holding a single scalar.
  static Tensor scalar(Complex value);

  /// Rank-1 qubit basis ket [1 0] or [0 1] with one label.
  static Tensor qubit_ket(Label label, bool one);

  std::size_t rank() const { return labels_.size(); }
  std::size_t size() const { return data_.size(); }
  const std::vector<Label>& labels() const { return labels_; }
  const std::vector<std::size_t>& dims() const { return dims_; }
  const std::vector<Complex>& data() const { return data_; }
  std::vector<Complex>& data() { return data_; }

  /// Dimension of the index carrying `label`; throws if absent.
  std::size_t dim_of(Label label) const;
  bool has_label(Label label) const;

  /// Element access by multi-index (same order as labels()).
  Complex& at(const std::vector<std::size_t>& idx);
  const Complex& at(const std::vector<std::size_t>& idx) const;

  /// Value of a rank-0 tensor.
  Complex scalar_value() const;

  /// Tensor with indices reordered to `new_labels` (a permutation of the
  /// current labels).
  Tensor permuted(const std::vector<Label>& new_labels) const;

  /// Rename a label in place (dimensions unchanged).
  void relabel(Label from, Label to);

  /// Contract `a` and `b` over every shared label; with no shared labels
  /// this is the outer product. Result labels: a-only then b-only, in their
  /// original order.
  static Tensor contract(const Tensor& a, const Tensor& b);

  /// Sum over two paired indices of one tensor (partial trace); both labels
  /// must have equal dimension.
  Tensor traced(Label l1, Label l2) const;

  bool approx_equal(const Tensor& other, double eps = 1e-9) const;

  std::string str() const;

 private:
  std::vector<Label> labels_;
  std::vector<std::size_t> dims_;
  std::vector<Complex> data_;
};

}  // namespace qdt::tn
