#include "tn/tensor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "guard/budget.hpp"
#include "par/pool.hpp"

namespace qdt::tn {

namespace {

std::size_t product(const std::vector<std::size_t>& dims) {
  std::size_t p = 1;
  for (const auto d : dims) {
    p *= d;
  }
  return p;
}

/// Row-major strides for the given dimensions.
std::vector<std::size_t> strides_of(const std::vector<std::size_t>& dims) {
  std::vector<std::size_t> s(dims.size());
  std::size_t acc = 1;
  for (std::size_t i = dims.size(); i-- > 0;) {
    s[i] = acc;
    acc *= dims[i];
  }
  return s;
}

}  // namespace

Tensor::Tensor(std::vector<Label> labels, std::vector<std::size_t> dims,
               std::vector<Complex> data)
    : labels_(std::move(labels)), dims_(std::move(dims)),
      data_(std::move(data)) {
  if (labels_.size() != dims_.size()) {
    throw std::invalid_argument("Tensor: labels/dims size mismatch");
  }
  std::unordered_set<Label> seen(labels_.begin(), labels_.end());
  if (seen.size() != labels_.size()) {
    throw std::invalid_argument("Tensor: duplicate labels");
  }
  const std::size_t expect = product(dims_);
  if (data_.empty()) {
    data_.assign(expect, Complex{});
  } else if (data_.size() != expect) {
    throw std::invalid_argument("Tensor: data size mismatch");
  }
}

Tensor Tensor::scalar(Complex value) {
  Tensor t;
  t.data_.assign(1, value);
  return t;
}

Tensor Tensor::qubit_ket(Label label, bool one) {
  Tensor t({label}, {2});
  t.data_[one ? 1 : 0] = 1.0;
  return t;
}

std::size_t Tensor::dim_of(Label label) const {
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) {
      return dims_[i];
    }
  }
  throw std::out_of_range("Tensor::dim_of: label not present");
}

bool Tensor::has_label(Label label) const {
  return std::find(labels_.begin(), labels_.end(), label) != labels_.end();
}

Complex& Tensor::at(const std::vector<std::size_t>& idx) {
  const auto& self = *this;
  return const_cast<Complex&>(self.at(idx));
}

const Complex& Tensor::at(const std::vector<std::size_t>& idx) const {
  if (idx.size() != dims_.size()) {
    throw std::invalid_argument("Tensor::at: wrong index rank");
  }
  const auto strides = strides_of(dims_);
  std::size_t off = 0;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] >= dims_[i]) {
      throw std::out_of_range("Tensor::at: index out of range");
    }
    off += idx[i] * strides[i];
  }
  return data_[off];
}

Complex Tensor::scalar_value() const {
  if (rank() != 0) {
    throw std::logic_error("Tensor::scalar_value: rank != 0");
  }
  return data_[0];
}

Tensor Tensor::permuted(const std::vector<Label>& new_labels) const {
  if (new_labels.size() != labels_.size()) {
    throw std::invalid_argument("permuted: wrong label count");
  }
  // Map new position -> old position.
  std::vector<std::size_t> src(new_labels.size());
  std::vector<std::size_t> new_dims(new_labels.size());
  for (std::size_t i = 0; i < new_labels.size(); ++i) {
    const auto it =
        std::find(labels_.begin(), labels_.end(), new_labels[i]);
    if (it == labels_.end()) {
      throw std::invalid_argument("permuted: unknown label");
    }
    src[i] = static_cast<std::size_t>(it - labels_.begin());
    new_dims[i] = dims_[src[i]];
  }
  Tensor out(new_labels, new_dims);
  const auto old_strides = strides_of(dims_);
  const auto new_strides = strides_of(new_dims);
  const std::size_t total = data_.size();
  // Walk output positions in order, computing the source offset.
  std::vector<std::size_t> idx(new_labels.size(), 0);
  for (std::size_t out_off = 0; out_off < total; ++out_off) {
    if ((out_off & 0xFFFFF) == 0) {
      guard::check_deadline();
    }
    std::size_t in_off = 0;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      in_off += idx[i] * old_strides[src[i]];
    }
    out.data_[out_off] = data_[in_off];
    // Increment the multi-index (row-major: last index fastest).
    for (std::size_t i = idx.size(); i-- > 0;) {
      if (++idx[i] < new_dims[i]) {
        break;
      }
      idx[i] = 0;
    }
  }
  return out;
}

void Tensor::relabel(Label from, Label to) {
  if (from == to) {
    return;
  }
  if (has_label(to)) {
    throw std::invalid_argument("relabel: target label already present");
  }
  for (auto& l : labels_) {
    if (l == from) {
      l = to;
      return;
    }
  }
  throw std::invalid_argument("relabel: source label not present");
}

Tensor Tensor::contract(const Tensor& a, const Tensor& b) {
  // Partition labels: a-only (kept), shared (summed), b-only (kept).
  std::vector<Label> shared;
  std::vector<Label> a_only;
  for (const auto l : a.labels_) {
    if (b.has_label(l)) {
      shared.push_back(l);
    } else {
      a_only.push_back(l);
    }
  }
  std::vector<Label> b_only;
  for (const auto l : b.labels_) {
    if (!a.has_label(l)) {
      b_only.push_back(l);
    }
  }
  for (const auto l : shared) {
    if (a.dim_of(l) != b.dim_of(l)) {
      throw std::invalid_argument("contract: bond dimension mismatch");
    }
  }

  // Permute to (a_only, shared) x (shared, b_only) and matrix-multiply.
  std::vector<Label> a_order = a_only;
  a_order.insert(a_order.end(), shared.begin(), shared.end());
  std::vector<Label> b_order = shared;
  b_order.insert(b_order.end(), b_only.begin(), b_only.end());
  const Tensor ap = a.permuted(a_order);
  const Tensor bp = b.permuted(b_order);

  std::size_t m = 1;
  std::vector<std::size_t> out_dims;
  for (const auto l : a_only) {
    const auto d = a.dim_of(l);
    m *= d;
    out_dims.push_back(d);
  }
  std::size_t k = 1;
  for (const auto l : shared) {
    k *= a.dim_of(l);
  }
  std::size_t n = 1;
  for (const auto l : b_only) {
    const auto d = b.dim_of(l);
    n *= d;
    out_dims.push_back(d);
  }

  std::vector<Label> out_labels = a_only;
  out_labels.insert(out_labels.end(), b_only.begin(), b_only.end());
  Tensor out(out_labels, out_dims);
  // C[m x n] = A[m x k] * B[k x n]. The result-size budget caps m * n but
  // not the k-fold work; checkpoint the deadline on a stride so a single
  // high-rank contraction cannot run unbounded. Output rows are disjoint, so
  // the row loop parallelizes; each chunk keeps its own checkpoint counter
  // (cost per row is k * n flops, hence the cost-scaled grain).
  const std::size_t row_cost = k * n > 0 ? k * n : 1;
  const std::size_t row_grain =
      std::max<std::size_t>(1, par::kKernelGrain / row_cost);
  par::parallel_for(0, m, row_grain, [&](std::size_t lo, std::size_t hi) {
    std::size_t steps = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        if ((steps++ & 0xFFF) == 0) {
          guard::check_deadline();
        }
        const Complex av = ap.data_[i * k + kk];
        if (av == Complex{}) {
          continue;
        }
        const Complex* brow = bp.data_.data() + kk * n;
        Complex* crow = out.data_.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  });
  return out;
}

Tensor Tensor::traced(Label l1, Label l2) const {
  if (!has_label(l1) || !has_label(l2) || l1 == l2) {
    throw std::invalid_argument("traced: need two distinct present labels");
  }
  if (dim_of(l1) != dim_of(l2)) {
    throw std::invalid_argument("traced: dimension mismatch");
  }
  // Permute traced labels to the front and sum the diagonal blocks.
  std::vector<Label> order = {l1, l2};
  std::vector<Label> kept;
  for (const auto l : labels_) {
    if (l != l1 && l != l2) {
      order.push_back(l);
      kept.push_back(l);
    }
  }
  const Tensor p = permuted(order);
  const std::size_t d = dim_of(l1);
  std::vector<std::size_t> kept_dims(p.dims_.begin() + 2, p.dims_.end());
  Tensor out(kept, kept_dims);
  const std::size_t block = out.data_.size() == 0 ? 1 : out.data_.size();
  for (std::size_t i = 0; i < d; ++i) {
    const std::size_t off = (i * d + i) * block;
    for (std::size_t j = 0; j < block; ++j) {
      out.data_[j] += p.data_[off + j];
    }
  }
  return out;
}

bool Tensor::approx_equal(const Tensor& other, double eps) const {
  if (labels_ != other.labels_ || dims_ != other.dims_) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (!qdt::approx_equal(data_[i], other.data_[i], eps)) {
      return false;
    }
  }
  return true;
}

std::string Tensor::str() const {
  std::ostringstream os;
  os << "Tensor(rank " << rank() << ", labels [";
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << labels_[i];
  }
  os << "], " << size() << " elements)";
  return os.str();
}

}  // namespace qdt::tn
