// Complex singular value decomposition, implemented from scratch with
// one-sided Jacobi rotations. This is the numerical core of the MPS
// simulator's bond truncation.
#pragma once

#include <cstddef>
#include <vector>

#include "common/eps.hpp"

namespace qdt::tn {

/// A = U * diag(S) * Vh with U (m x r), S (r), Vh (r x n), r = min(m, n).
/// Singular values are sorted in descending order; U has orthonormal
/// columns and Vh orthonormal rows.
struct SvdResult {
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t r = 0;
  std::vector<Complex> u;   // m x r, row-major
  std::vector<double> s;    // r
  std::vector<Complex> vh;  // r x n, row-major
};

/// One-sided Jacobi SVD of a dense row-major m x n matrix.
SvdResult svd(const std::vector<Complex>& a, std::size_t m, std::size_t n);

}  // namespace qdt::tn
