#include "tn/network.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "arrays/dense_unitary.hpp"
#include "common/bitops.hpp"
#include "guard/budget.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

namespace qdt::tn {

namespace {

obs::Counter& g_contractions = obs::counter("qdt.tn.contraction.count");
obs::Counter& g_flops = obs::counter("qdt.tn.contraction.flops");
obs::Gauge& g_peak_size = obs::gauge("qdt.tn.contraction.peak_size");
obs::Gauge& g_peak_rank = obs::gauge("qdt.tn.contraction.peak_rank");
obs::Gauge& g_bytes_peak = obs::gauge("qdt.tn.contraction.bytes_peak");

}  // namespace

std::size_t TensorNetwork::add(Tensor t) {
  nodes_.push_back(std::move(t));
  return nodes_.size() - 1;
}

std::size_t TensorNetwork::num_nodes() const {
  std::size_t n = 0;
  for (const auto& t : nodes_) {
    if (t.has_value()) {
      ++n;
    }
  }
  return n;
}

const Tensor& TensorNetwork::node(std::size_t id) const {
  if (id >= nodes_.size() || !nodes_[id].has_value()) {
    throw std::out_of_range("TensorNetwork::node: bad id");
  }
  return *nodes_[id];
}

std::size_t TensorNetwork::total_elements() const {
  std::size_t n = 0;
  for (const auto& t : nodes_) {
    if (t.has_value()) {
      n += t->size();
    }
  }
  return n;
}

Tensor TensorNetwork::contract_all(const ContractionPlan& plan,
                                   ContractionStats* stats,
                                   std::size_t max_intermediate) {
  trace::Span span("qdt.tn.contraction.run");
  span.attr("backend", "tensor-network")
      .attr("nodes", static_cast<std::uint64_t>(num_nodes()))
      .attr("plan_steps", static_cast<std::uint64_t>(plan.size()));
  std::vector<std::optional<Tensor>> nodes = nodes_;
  ContractionStats local;
  const auto record = [&](const Tensor& t, double cost) {
    ++local.contractions;
    local.peak_tensor_size = std::max(local.peak_tensor_size, t.size());
    local.peak_rank = std::max(local.peak_rank, t.rank());
    local.flops += cost;
  };
  const auto guard_step = [&](const Tensor& a, const Tensor& b) {
    guard::check_deadline();
    // Result elements = product over the symmetric difference of labels.
    std::size_t size = 1;
    for (std::size_t d = 0; d < a.rank(); ++d) {
      if (!b.has_label(a.labels()[d])) {
        size *= a.dims()[d];
      }
    }
    for (std::size_t d = 0; d < b.rank(); ++d) {
      if (!a.has_label(b.labels()[d])) {
        size *= b.dims()[d];
      }
    }
    if (max_intermediate != 0 && size > max_intermediate) {
      throw Error::exhausted(
          Resource::TnElements,
          "contract_all: intermediate tensor of " + std::to_string(size) +
              " elements exceeds the element budget of " +
              std::to_string(max_intermediate));
    }
    // The active guard::Budget applies even when the caller passed no
    // explicit cap: the intermediate itself, and its byte footprint on top
    // of the operands that must coexist with it.
    guard::check_tn_elements(size);
    guard::check_memory((size + a.size() + b.size()) * sizeof(Complex),
                        "tn contraction");
  };
  for (const auto& [i, j] : plan) {
    if (i >= nodes.size() || j >= nodes.size() || !nodes[i].has_value() ||
        !nodes[j].has_value() || i == j) {
      throw std::invalid_argument("contract_all: invalid plan step");
    }
    // Cost: product over the union of dims (shared counted once).
    double cost = static_cast<double>(nodes[i]->size());
    for (std::size_t d = 0; d < nodes[j]->rank(); ++d) {
      if (!nodes[i]->has_label(nodes[j]->labels()[d])) {
        cost *= static_cast<double>(nodes[j]->dims()[d]);
      }
    }
    guard_step(*nodes[i], *nodes[j]);
    Tensor result = Tensor::contract(*nodes[i], *nodes[j]);
    record(result, cost);
    nodes[i].reset();
    nodes[j].reset();
    nodes.emplace_back(std::move(result));
  }
  // Outer-multiply whatever is left (disconnected components, or everything
  // when the plan is empty).
  std::optional<Tensor> acc;
  for (auto& t : nodes) {
    if (!t.has_value()) {
      continue;
    }
    if (!acc.has_value()) {
      acc = std::move(*t);
    } else {
      const double cost =
          static_cast<double>(acc->size()) * static_cast<double>(t->size());
      guard_step(*acc, *t);
      acc = Tensor::contract(*acc, *t);
      record(*acc, cost);
    }
    t.reset();
  }
  // ContractionStats doubles as a thin per-call view; the registry keeps
  // the process-wide aggregate whether or not the caller asked for stats.
  g_contractions.add(local.contractions);
  g_flops.add(static_cast<std::uint64_t>(local.flops));
  g_peak_size.update_max(static_cast<std::int64_t>(local.peak_tensor_size));
  g_peak_rank.update_max(static_cast<std::int64_t>(local.peak_rank));
  g_bytes_peak.update_max(
      static_cast<std::int64_t>(local.peak_tensor_size * sizeof(Complex)));
  span.attr("contractions", static_cast<std::uint64_t>(local.contractions))
      .attr("peak_tensor_size",
            static_cast<std::uint64_t>(local.peak_tensor_size))
      .attr("peak_rank", static_cast<std::uint64_t>(local.peak_rank))
      .attr("flops", local.flops);
  if (stats != nullptr) {
    *stats = local;
  }
  return acc.value_or(Tensor::scalar(1.0));
}

ContractionPlan TensorNetwork::sequential_plan() const {
  ContractionPlan plan;
  std::optional<std::size_t> acc;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (!nodes_[id].has_value()) {
      continue;
    }
    if (!acc.has_value()) {
      acc = id;
    } else {
      plan.emplace_back(*acc, id);
      acc = nodes_.size() + plan.size() - 1;
    }
  }
  return plan;
}

ContractionPlan TensorNetwork::greedy_plan() const {
  // Symbolic node metadata: id -> (labels, dims).
  struct Meta {
    std::vector<Label> labels;
    std::vector<std::size_t> dims;
    std::size_t size() const {
      std::size_t p = 1;
      for (const auto d : dims) {
        p *= d;
      }
      return p;
    }
  };
  std::map<std::size_t, Meta> live;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].has_value()) {
      live.emplace(id, Meta{nodes_[id]->labels(), nodes_[id]->dims()});
    }
  }
  ContractionPlan plan;
  std::size_t next_id = nodes_.size();

  const auto result_meta = [](const Meta& a, const Meta& b) {
    Meta r;
    for (std::size_t i = 0; i < a.labels.size(); ++i) {
      const bool shared = std::find(b.labels.begin(), b.labels.end(),
                                    a.labels[i]) != b.labels.end();
      if (!shared) {
        r.labels.push_back(a.labels[i]);
        r.dims.push_back(a.dims[i]);
      }
    }
    for (std::size_t i = 0; i < b.labels.size(); ++i) {
      const bool shared = std::find(a.labels.begin(), a.labels.end(),
                                    b.labels[i]) != a.labels.end();
      if (!shared) {
        r.labels.push_back(b.labels[i]);
        r.dims.push_back(b.dims[i]);
      }
    }
    return r;
  };

  while (live.size() > 1) {
    // Planning is O(E) per merge; on degenerate networks (e.g. a stalled
    // ZX diagram) that adds up — honor the wall-clock budget while here.
    guard::check_deadline();
    // Adjacency: label -> node ids carrying it.
    std::map<Label, std::vector<std::size_t>> by_label;
    for (const auto& [id, meta] : live) {
      for (const auto l : meta.labels) {
        by_label[l].push_back(id);
      }
    }
    std::size_t best_a = 0;
    std::size_t best_b = 0;
    std::size_t best_size = 0;
    bool found = false;
    for (const auto& [label, ids] : by_label) {
      if (ids.size() != 2) {
        continue;  // open index
      }
      const std::size_t a = ids[0];
      const std::size_t b = ids[1];
      if (a == b) {
        continue;
      }
      const std::size_t rs = result_meta(live.at(a), live.at(b)).size();
      if (!found || rs < best_size ||
          (rs == best_size && std::make_pair(a, b) <
                                  std::make_pair(best_a, best_b))) {
        best_a = a;
        best_b = b;
        best_size = rs;
        found = true;
      }
    }
    if (!found) {
      // No connected pair: leave the outer products to contract_all.
      break;
    }
    plan.emplace_back(best_a, best_b);
    Meta merged = result_meta(live.at(best_a), live.at(best_b));
    live.erase(best_a);
    live.erase(best_b);
    live.emplace(next_id++, std::move(merged));
  }
  return plan;
}

namespace {

/// Rank-2k tensor of a (possibly controlled) unitary operation. Qubit order
/// inside the tensor: targets then controls; labels are
/// [out_0..out_{k-1}, in_0..in_{k-1}].
Tensor gate_tensor(const ir::Operation& op, const std::vector<Label>& ins,
                   const std::vector<Label>& outs) {
  const std::size_t k = op.num_qubits();
  // Remap the op onto a k-qubit mini-circuit (targets at 0.., controls
  // after) and read the dense matrix: row/column bit i = mini-qubit i.
  std::vector<ir::Qubit> mini_targets(op.targets().size());
  std::vector<ir::Qubit> mini_controls(op.controls().size());
  for (std::size_t i = 0; i < mini_targets.size(); ++i) {
    mini_targets[i] = static_cast<ir::Qubit>(i);
  }
  for (std::size_t i = 0; i < mini_controls.size(); ++i) {
    mini_controls[i] = static_cast<ir::Qubit>(mini_targets.size() + i);
  }
  ir::Circuit mini(k);
  mini.append(ir::Operation{op.kind(), mini_targets, mini_controls,
                            op.params()});
  const auto u = arrays::DenseUnitary::from_circuit(mini);

  std::vector<Label> labels = outs;
  labels.insert(labels.end(), ins.begin(), ins.end());
  Tensor t(labels, std::vector<std::size_t>(2 * k, 2));
  std::vector<std::size_t> idx(2 * k);
  const std::size_t dim = std::size_t{1} << k;
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      for (std::size_t q = 0; q < k; ++q) {
        idx[q] = get_bit(r, q) ? 1 : 0;
        idx[k + q] = get_bit(c, q) ? 1 : 0;
      }
      t.at(idx) = u.at(r, c);
    }
  }
  return t;
}

Tensor pauli_tensor(char p, Label out, Label in) {
  Tensor t({out, in}, {2, 2});
  switch (p) {
    case 'X':
      t.at({0, 1}) = 1.0;
      t.at({1, 0}) = 1.0;
      break;
    case 'Y':
      t.at({0, 1}) = Complex{0.0, -1.0};
      t.at({1, 0}) = Complex{0.0, 1.0};
      break;
    case 'Z':
      t.at({0, 0}) = 1.0;
      t.at({1, 1}) = -1.0;
      break;
    case 'I':
      t.at({0, 0}) = 1.0;
      t.at({1, 1}) = 1.0;
      break;
    default:
      throw std::invalid_argument("pauli_tensor: bad Pauli character");
  }
  return t;
}

}  // namespace

TensorNetwork circuit_network(const ir::Circuit& circuit,
                              std::vector<Label>& out_labels) {
  TensorNetwork net;
  const std::size_t n = circuit.num_qubits();
  std::vector<Label> wire(n);
  for (std::size_t q = 0; q < n; ++q) {
    wire[q] = net.fresh_label();
    net.add(Tensor::qubit_ket(wire[q], false));
  }
  for (const auto& op : circuit.ops()) {
    if (op.is_barrier()) {
      continue;
    }
    if (!op.is_unitary()) {
      throw std::invalid_argument(
          "circuit_network: only unitary circuits are supported (found " +
          op.str() + ")");
    }
    const auto qubits = op.qubits();  // targets then controls
    std::vector<Label> ins;
    std::vector<Label> outs;
    for (const auto q : qubits) {
      ins.push_back(wire[q]);
      outs.push_back(net.fresh_label());
    }
    net.add(gate_tensor(op, ins, outs));
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      wire[qubits[i]] = outs[i];
    }
  }
  out_labels = wire;
  return net;
}

Complex amplitude(const ir::Circuit& circuit, std::uint64_t basis,
                  bool greedy, ContractionStats* stats) {
  std::vector<Label> outs;
  TensorNetwork net = circuit_network(circuit, outs);
  for (std::size_t q = 0; q < circuit.num_qubits(); ++q) {
    // Output caps <b_q| (real, so bra == ket).
    net.add(Tensor::qubit_ket(outs[q], get_bit(basis, q)));
  }
  const auto plan = greedy ? net.greedy_plan() : net.sequential_plan();
  return net.contract_all(plan, stats).scalar_value();
}

std::vector<Complex> statevector(const ir::Circuit& circuit, bool greedy,
                                 ContractionStats* stats) {
  std::vector<Label> outs;
  TensorNetwork net = circuit_network(circuit, outs);
  const auto plan = greedy ? net.greedy_plan() : net.sequential_plan();
  Tensor result = net.contract_all(plan, stats);
  // Order indices most-significant-qubit first so row-major data equals the
  // basis ordering.
  std::vector<Label> order(outs.rbegin(), outs.rend());
  result = result.permuted(order);
  return result.data();
}

Complex expectation(const ir::Circuit& circuit, const std::string& paulis,
                    bool greedy, ContractionStats* stats) {
  const std::size_t n = circuit.num_qubits();
  if (paulis.size() != n) {
    throw std::invalid_argument("expectation: Pauli string length mismatch");
  }
  // Ket side.
  std::vector<Label> ket_out;
  TensorNetwork net = circuit_network(circuit, ket_out);
  // Pauli layer: maps ket_out -> mid (identity wires skip the tensor).
  std::vector<Label> mid(n);
  for (std::size_t q = 0; q < n; ++q) {
    const char p = paulis[n - 1 - q];  // string is MSB-first
    if (p == 'I') {
      mid[q] = ket_out[q];
    } else {
      mid[q] = net.fresh_label();
      net.add(pauli_tensor(p, mid[q], ket_out[q]));
    }
  }
  // Bra side: the conjugated circuit network, its outputs glued to mid.
  std::vector<Label> bra_out;
  TensorNetwork bra_net = circuit_network(circuit, bra_out);
  const std::size_t bra_nodes = bra_net.num_nodes();
  // Import bra tensors into the main network: conjugate data, shift labels
  // into a fresh range, then identify outputs with mid labels.
  std::map<Label, Label> rename;
  for (std::size_t q = 0; q < n; ++q) {
    rename[bra_out[q]] = mid[q];
  }
  for (std::size_t id = 0; id < bra_nodes; ++id) {
    Tensor t = bra_net.node(id);
    for (auto& v : t.data()) {
      v = std::conj(v);
    }
    // Remap every label: outputs to mid, everything else to fresh labels.
    std::vector<Label> new_labels;
    for (const auto l : t.labels()) {
      auto it = rename.find(l);
      if (it == rename.end()) {
        it = rename.emplace(l, net.fresh_label()).first;
      }
      new_labels.push_back(it->second);
    }
    net.add(Tensor(new_labels, t.dims(), t.data()));
  }
  const auto plan = greedy ? net.greedy_plan() : net.sequential_plan();
  return net.contract_all(plan, stats).scalar_value();
}

}  // namespace qdt::tn
