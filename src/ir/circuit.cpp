#include "ir/circuit.hpp"

#include <algorithm>
#include <stdexcept>

namespace qdt::ir {

void Circuit::append(Operation op) {
  if (num_qubits_ == 0 || op.max_qubit() >= num_qubits_) {
    throw std::out_of_range("Circuit \"" + name_ + "\": operation " +
                            op.str() + " exceeds width " +
                            std::to_string(num_qubits_));
  }
  ops_.push_back(std::move(op));
}

Circuit& Circuit::add1(GateKind k, Qubit q) {
  append(Operation{k, q});
  return *this;
}

Circuit& Circuit::rx(const Phase& theta, Qubit q) {
  append(Operation{GateKind::RX, q, {theta}});
  return *this;
}

Circuit& Circuit::ry(const Phase& theta, Qubit q) {
  append(Operation{GateKind::RY, q, {theta}});
  return *this;
}

Circuit& Circuit::rz(const Phase& theta, Qubit q) {
  append(Operation{GateKind::RZ, q, {theta}});
  return *this;
}

Circuit& Circuit::p(const Phase& lambda, Qubit q) {
  append(Operation{GateKind::P, q, {lambda}});
  return *this;
}

Circuit& Circuit::u(const Phase& theta, const Phase& phi, const Phase& lambda,
                    Qubit q) {
  append(Operation{GateKind::U, q, {theta, phi, lambda}});
  return *this;
}

Circuit& Circuit::cx(Qubit control, Qubit target) {
  append(Operation{GateKind::X, std::vector<Qubit>{target},
                   std::vector<Qubit>{control}});
  return *this;
}

Circuit& Circuit::cy(Qubit control, Qubit target) {
  append(Operation{GateKind::Y, std::vector<Qubit>{target},
                   std::vector<Qubit>{control}});
  return *this;
}

Circuit& Circuit::cz(Qubit control, Qubit target) {
  append(Operation{GateKind::Z, std::vector<Qubit>{target},
                   std::vector<Qubit>{control}});
  return *this;
}

Circuit& Circuit::ch(Qubit control, Qubit target) {
  append(Operation{GateKind::H, std::vector<Qubit>{target},
                   std::vector<Qubit>{control}});
  return *this;
}

Circuit& Circuit::cs(Qubit control, Qubit target) {
  append(Operation{GateKind::S, std::vector<Qubit>{target},
                   std::vector<Qubit>{control}});
  return *this;
}

Circuit& Circuit::cp(const Phase& lambda, Qubit control, Qubit target) {
  append(Operation{GateKind::P, {target}, {control}, {lambda}});
  return *this;
}

Circuit& Circuit::crz(const Phase& theta, Qubit control, Qubit target) {
  append(Operation{GateKind::RZ, {target}, {control}, {theta}});
  return *this;
}

Circuit& Circuit::ccx(Qubit c1, Qubit c2, Qubit target) {
  append(Operation{GateKind::X, {target}, {c1, c2}});
  return *this;
}

Circuit& Circuit::ccz(Qubit c1, Qubit c2, Qubit target) {
  append(Operation{GateKind::Z, {target}, {c1, c2}});
  return *this;
}

Circuit& Circuit::mcx(const std::vector<Qubit>& controls, Qubit target) {
  append(Operation{GateKind::X, {target}, controls});
  return *this;
}

Circuit& Circuit::swap(Qubit a, Qubit b) {
  append(Operation{GateKind::Swap, {a, b}});
  return *this;
}

Circuit& Circuit::iswap(Qubit a, Qubit b) {
  append(Operation{GateKind::ISwap, {a, b}});
  return *this;
}

Circuit& Circuit::cswap(Qubit control, Qubit a, Qubit b) {
  append(Operation{GateKind::Swap, {a, b}, {control}});
  return *this;
}

Circuit& Circuit::rzz(const Phase& theta, Qubit a, Qubit b) {
  append(Operation{GateKind::RZZ, {a, b}, {}, {theta}});
  return *this;
}

Circuit& Circuit::rxx(const Phase& theta, Qubit a, Qubit b) {
  append(Operation{GateKind::RXX, {a, b}, {}, {theta}});
  return *this;
}

Circuit& Circuit::measure(Qubit q) {
  append(Operation{GateKind::Measure, q});
  return *this;
}

Circuit& Circuit::measure_all() {
  for (Qubit q = 0; q < num_qubits_; ++q) {
    measure(q);
  }
  return *this;
}

Circuit& Circuit::reset(Qubit q) {
  append(Operation{GateKind::Reset, q});
  return *this;
}

Circuit& Circuit::barrier() {
  std::vector<Qubit> all(num_qubits_);
  for (Qubit q = 0; q < num_qubits_; ++q) {
    all[q] = q;
  }
  append(Operation{GateKind::Barrier, std::move(all), {}, {}});
  return *this;
}

Circuit Circuit::adjoint() const {
  Circuit inv(num_qubits_, name_ + "_dg");
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    if (it->is_barrier()) {
      continue;
    }
    if (!it->is_unitary()) {
      throw std::logic_error("adjoint of circuit with non-unitary op: " +
                             it->str());
    }
    inv.append(it->adjoint());
    if (gate_adjoint_wraps(it->kind(), it->params()) &&
        !it->controls().empty()) {
      // Op::adjoint() wrapped the half-turn angle back to +pi, which is
      // -1 x the true inverse on the controlled block: diag(I, -U) =
      // Z-on-controls . diag(I, U). Append the (multi-controlled) Z so
      // the circuit adjoint stays exact; uncontrolled wraps contribute
      // only a -1 global phase and need no repair.
      const auto& cs = it->controls();
      inv.append(Operation{GateKind::Z,
                           {cs.front()},
                           {cs.begin() + 1, cs.end()},
                           {}});
    }
  }
  return inv;
}

Circuit Circuit::composed_with(const Circuit& other) const {
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("composed_with: width mismatch");
  }
  Circuit c = *this;
  for (const auto& op : other.ops_) {
    c.append(op);
  }
  return c;
}

Circuit Circuit::remapped(const std::vector<Qubit>& perm) const {
  if (perm.size() != num_qubits_) {
    throw std::invalid_argument("remapped: permutation size mismatch");
  }
  std::vector<bool> seen(num_qubits_, false);
  for (const Qubit q : perm) {
    if (q >= num_qubits_ || seen[q]) {
      throw std::invalid_argument("remapped: not a permutation");
    }
    seen[q] = true;
  }
  Circuit c(num_qubits_, name_);
  for (const auto& op : ops_) {
    c.append(op.remapped(perm));
  }
  return c;
}

Circuit Circuit::unitary_part() const {
  Circuit c(num_qubits_, name_);
  for (const auto& op : ops_) {
    if (op.is_unitary()) {
      c.append(op);
    }
  }
  return c;
}

bool Circuit::is_unitary() const {
  return std::all_of(ops_.begin(), ops_.end(), [](const Operation& op) {
    return op.is_unitary() || op.is_barrier();
  });
}

namespace {

/// True if the operation contributes to the T-count: T/Tdg themselves, or a
/// (possibly controlled) phase/rz rotation by an odd multiple of pi/4.
bool counts_as_t(const Operation& op) {
  switch (op.kind()) {
    case GateKind::T:
    case GateKind::Tdg:
      return op.controls().empty();
    case GateKind::P:
    case GateKind::RZ: {
      if (!op.controls().empty()) {
        return false;
      }
      const Phase& ph = op.params()[0];
      return ph.den() == 4;
    }
    default:
      return false;
  }
}

}  // namespace

CircuitStats Circuit::stats() const {
  CircuitStats s;
  s.num_qubits = num_qubits_;
  std::vector<std::size_t> level(num_qubits_, 0);
  for (const auto& op : ops_) {
    if (op.is_barrier()) {
      continue;
    }
    if (op.is_measurement()) {
      ++s.measurements;
      continue;
    }
    if (op.is_reset()) {
      continue;
    }
    ++s.total_gates;
    const std::size_t touched = op.num_qubits();
    if (touched == 1) {
      ++s.single_qubit;
    } else if (touched == 2) {
      ++s.two_qubit;
    } else {
      ++s.multi_qubit;
    }
    if (counts_as_t(op)) {
      ++s.t_count;
    }
    std::string name;
    for (std::size_t i = 0; i < op.controls().size(); ++i) {
      name += 'c';
    }
    name += gate_name(op.kind());
    ++s.by_name[name];
    // ASAP depth: the gate starts after all operands are free.
    std::size_t lvl = 0;
    for (const Qubit q : op.qubits()) {
      lvl = std::max(lvl, level[q]);
    }
    ++lvl;
    for (const Qubit q : op.qubits()) {
      level[q] = lvl;
    }
    s.depth = std::max(s.depth, lvl);
  }
  return s;
}

std::string Circuit::str() const {
  std::string s = name_ + " (" + std::to_string(num_qubits_) + " qubits, " +
                  std::to_string(ops_.size()) + " ops)\n";
  for (const auto& op : ops_) {
    s += "  " + op.str() + '\n';
  }
  return s;
}

}  // namespace qdt::ir
