#include "ir/library.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "guard/error.hpp"

namespace qdt::ir {

Circuit bell() {
  Circuit c(2, "bell");
  // Matches the paper's Example 1: control on the first (most significant)
  // qubit q1, target on q0.
  c.h(1).cx(1, 0);
  return c;
}

Circuit ghz(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("ghz: need at least one qubit");
  }
  Circuit c(n, "ghz" + std::to_string(n));
  c.h(n - 1);
  for (std::size_t q = n - 1; q > 0; --q) {
    c.cx(static_cast<Qubit>(q), static_cast<Qubit>(q - 1));
  }
  return c;
}

Circuit w_state(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("w_state: need at least one qubit");
  }
  Circuit c(n, "w" + std::to_string(n));
  c.x(0);
  for (std::size_t k = 1; k < n; ++k) {
    // Keep amplitude sqrt(1/(n-k+1)) at position k-1 and forward the rest;
    // the angle is continuous, so it becomes a high-precision rational phase.
    const double kept = 1.0 / static_cast<double>(n - k + 1);
    const Phase theta = Phase::from_radians(2.0 * std::acos(std::sqrt(kept)));
    c.append(Operation{GateKind::RY,
                       {static_cast<Qubit>(k)},
                       {static_cast<Qubit>(k - 1)},
                       {theta}});
    c.cx(static_cast<Qubit>(k), static_cast<Qubit>(k - 1));
  }
  return c;
}

Circuit graph_state(std::size_t n,
                    const std::vector<std::pair<Qubit, Qubit>>& edges) {
  Circuit c(n, "graph_state");
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  for (const auto& [a, b] : edges) {
    c.cz(a, b);
  }
  return c;
}

Circuit qft(std::size_t n, bool with_swaps) {
  Circuit c(n, "qft" + std::to_string(n));
  for (std::size_t i = n; i-- > 0;) {
    c.h(static_cast<Qubit>(i));
    for (std::size_t j = i; j-- > 0;) {
      // Controlled phase pi / 2^{i-j} between qubit j (control) and i.
      c.cp(Phase{1, static_cast<std::int64_t>(1) << (i - j)},
           static_cast<Qubit>(j), static_cast<Qubit>(i));
    }
  }
  if (with_swaps) {
    for (std::size_t q = 0; q < n / 2; ++q) {
      c.swap(static_cast<Qubit>(q), static_cast<Qubit>(n - 1 - q));
    }
  }
  return c;
}

Circuit aqft(std::size_t n, std::size_t degree) {
  Circuit c(n, "aqft" + std::to_string(n));
  for (std::size_t i = n; i-- > 0;) {
    c.h(static_cast<Qubit>(i));
    for (std::size_t j = i; j-- > 0;) {
      if (i - j > degree) {
        break;  // rotation angle below the approximation cutoff
      }
      c.cp(Phase{1, static_cast<std::int64_t>(1) << (i - j)},
           static_cast<Qubit>(j), static_cast<Qubit>(i));
    }
  }
  return c;
}

namespace {

/// Multi-controlled Z over all n qubits (phase flip of |11...1>), as Z on the
/// last qubit controlled by all others.
void append_global_mcz(Circuit& c) {
  const auto n = c.num_qubits();
  if (n == 1) {
    c.z(0);
    return;
  }
  std::vector<Qubit> controls;
  for (Qubit q = 0; q + 1 < n; ++q) {
    controls.push_back(q);
  }
  c.append(Operation{GateKind::Z, {static_cast<Qubit>(n - 1)}, controls});
}

/// X on every qubit whose bit in `pattern` is zero (conjugation that turns
/// the global MCZ into a phase flip of |pattern>).
void append_pattern_mask(Circuit& c, std::uint64_t pattern) {
  for (Qubit q = 0; q < c.num_qubits(); ++q) {
    if (!get_bit(pattern, q)) {
      c.x(q);
    }
  }
}

}  // namespace

Circuit grover(std::size_t n, std::uint64_t marked, std::size_t iterations) {
  if (n == 0 || n >= 63) {
    throw std::invalid_argument("grover: unsupported width");
  }
  if (marked >> n) {
    throw std::invalid_argument("grover: marked state out of range");
  }
  if (iterations == 0) {
    iterations = static_cast<std::size_t>(
        std::floor(std::numbers::pi / 4.0 *
                   std::sqrt(static_cast<double>(1ULL << n))));
    iterations = std::max<std::size_t>(iterations, 1);
  }
  Circuit c(n, "grover" + std::to_string(n));
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  for (std::size_t it = 0; it < iterations; ++it) {
    // Oracle: phase-flip |marked>.
    append_pattern_mask(c, marked);
    append_global_mcz(c);
    append_pattern_mask(c, marked);
    // Diffusion: reflect about the uniform superposition.
    for (Qubit q = 0; q < n; ++q) {
      c.h(q);
    }
    append_pattern_mask(c, 0);
    append_global_mcz(c);
    append_pattern_mask(c, 0);
    for (Qubit q = 0; q < n; ++q) {
      c.h(q);
    }
  }
  return c;
}

Circuit bernstein_vazirani(std::size_t n, std::uint64_t secret) {
  if (secret >> n) {
    throw std::invalid_argument("bernstein_vazirani: secret out of range");
  }
  Circuit c(n, "bv" + std::to_string(n));
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  // Phase oracle (-1)^{secret . x} is a Z on every secret bit.
  for (Qubit q = 0; q < n; ++q) {
    if (get_bit(secret, q)) {
      c.z(q);
    }
  }
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  return c;
}

Circuit deutsch_jozsa(std::size_t n, std::uint64_t mask) {
  Circuit c(n, "dj" + std::to_string(n));
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  for (Qubit q = 0; q < n; ++q) {
    if (get_bit(mask, q)) {
      c.z(q);
    }
  }
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  return c;
}

Circuit hidden_shift(std::size_t n, std::uint64_t shift) {
  if (n == 0 || n % 2 != 0) {
    throw std::invalid_argument("hidden_shift: n must be even and positive");
  }
  if (shift >> n) {
    throw std::invalid_argument("hidden_shift: shift out of range");
  }
  Circuit c(n, "hidden_shift" + std::to_string(n));
  const std::size_t half = n / 2;
  const auto cz_pairs = [&] {
    for (Qubit q = 0; q < half; ++q) {
      c.cz(q, static_cast<Qubit>(q + half));
    }
  };
  const auto shift_mask = [&] {
    for (Qubit q = 0; q < n; ++q) {
      if (get_bit(shift, q)) {
        c.x(q);
      }
    }
  };
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  shift_mask();
  cz_pairs();  // oracle for f(x + s)
  shift_mask();
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  cz_pairs();  // oracle for the dual bent function (self-dual here)
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  return c;
}

Circuit ripple_carry_adder(std::size_t n_bits) {
  if (n_bits == 0) {
    throw std::invalid_argument("ripple_carry_adder: need at least one bit");
  }
  // Layout: qubit 0 = carry-in, a_i = 1 + i, b_i = 1 + n + i,
  // carry-out = 1 + 2n.
  const auto a = [&](std::size_t i) { return static_cast<Qubit>(1 + i); };
  const auto b = [&](std::size_t i) {
    return static_cast<Qubit>(1 + n_bits + i);
  };
  const Qubit cin = 0;
  const auto cout = static_cast<Qubit>(1 + 2 * n_bits);
  Circuit c(2 * n_bits + 2, "adder" + std::to_string(n_bits));

  const auto maj = [&](Qubit x, Qubit y, Qubit z) {
    c.cx(z, y);
    c.cx(z, x);
    c.ccx(x, y, z);
  };
  const auto uma = [&](Qubit x, Qubit y, Qubit z) {
    c.ccx(x, y, z);
    c.cx(z, x);
    c.cx(x, y);
  };

  maj(cin, b(0), a(0));
  for (std::size_t i = 1; i < n_bits; ++i) {
    maj(a(i - 1), b(i), a(i));
  }
  c.cx(a(n_bits - 1), cout);
  for (std::size_t i = n_bits; i-- > 1;) {
    uma(a(i - 1), b(i), a(i));
  }
  uma(cin, b(0), a(0));
  return c;
}

Circuit phase_estimation(std::size_t precision, const Phase& theta) {
  if (precision == 0 || precision > 20) {
    throw std::invalid_argument("phase_estimation: unsupported precision");
  }
  const std::size_t n = precision + 1;
  const auto eigen = static_cast<Qubit>(precision);
  Circuit c(n, "qpe" + std::to_string(precision));
  // Eigenstate |1> of P(theta).
  c.x(eigen);
  for (Qubit q = 0; q < precision; ++q) {
    c.h(q);
  }
  // Controlled powers: qubit k controls P(theta * 2^k).
  for (std::size_t k = 0; k < precision; ++k) {
    // 2^k * theta, computed exactly in the rational representation.
    Phase p = theta;
    for (std::size_t i = 0; i < k; ++i) {
      p = p + p;
    }
    if (!p.is_zero()) {
      c.cp(p, static_cast<Qubit>(k), eigen);
    }
  }
  // Inverse QFT (the full DFT inverse, swaps included) on the counting
  // register turns the accumulated phase gradient back into the binary
  // value of the eigenphase.
  const Circuit iqft = qft(precision, /*with_swaps=*/true).adjoint();
  for (const auto& op : iqft.ops()) {
    c.append(op);
  }
  return c;
}

Circuit random_circuit(std::size_t n, std::size_t depth, std::uint64_t seed) {
  Circuit c(n, "random" + std::to_string(n) + "x" + std::to_string(depth));
  Rng rng(seed);
  for (std::size_t layer = 0; layer < depth; ++layer) {
    for (Qubit q = 0; q < n; ++q) {
      c.u(Phase::from_radians(rng.uniform(0, std::numbers::pi)),
          Phase::from_radians(rng.uniform(-std::numbers::pi,
                                          std::numbers::pi)),
          Phase::from_radians(rng.uniform(-std::numbers::pi,
                                          std::numbers::pi)),
          q);
    }
    if (n < 2) {
      continue;
    }
    std::vector<Qubit> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (std::size_t i = 0; i + 1 < n; i += 2) {
      c.cx(order[i], order[i + 1]);
    }
  }
  return c;
}

Circuit random_clifford(std::size_t n, std::size_t num_gates,
                        std::uint64_t seed) {
  Circuit c(n, "clifford" + std::to_string(n));
  Rng rng(seed);
  for (std::size_t g = 0; g < num_gates; ++g) {
    const auto choice = rng.index(n >= 2 ? 3 : 2);
    const auto q = static_cast<Qubit>(rng.index(n));
    switch (choice) {
      case 0:
        c.h(q);
        break;
      case 1:
        c.s(q);
        break;
      default: {
        auto t = static_cast<Qubit>(rng.index(n - 1));
        if (t >= q) {
          ++t;
        }
        c.cx(q, t);
        break;
      }
    }
  }
  return c;
}

Circuit random_clifford_t(std::size_t n, std::size_t num_gates,
                          double t_fraction, std::uint64_t seed) {
  Circuit c(n, "clifford_t" + std::to_string(n));
  Rng rng(seed);
  for (std::size_t g = 0; g < num_gates; ++g) {
    const auto q = static_cast<Qubit>(rng.index(n));
    if (rng.uniform() < t_fraction) {
      c.t(q);
      continue;
    }
    const auto choice = rng.index(n >= 2 ? 3 : 2);
    switch (choice) {
      case 0:
        c.h(q);
        break;
      case 1:
        c.s(q);
        break;
      default: {
        auto t = static_cast<Qubit>(rng.index(n - 1));
        if (t >= q) {
          ++t;
        }
        c.cx(q, t);
        break;
      }
    }
  }
  return c;
}

Circuit random_phase_circuit(std::size_t n, std::size_t num_gates,
                             std::uint64_t seed) {
  Circuit c(n, "phase_circuit" + std::to_string(n));
  Rng rng(seed);
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  for (std::size_t g = 0; g < num_gates; ++g) {
    const auto q = static_cast<Qubit>(rng.index(n));
    switch (rng.index(3)) {
      case 0:
        c.t(q);
        break;
      case 1: {
        const auto den = static_cast<std::int64_t>(1)
                         << (1 + rng.index(5));  // pi/2 ... pi/32
        c.rz(Phase{1, den}, q);
        break;
      }
      default: {
        if (n < 2) {
          c.t(q);
          break;
        }
        auto t = static_cast<Qubit>(rng.index(n - 1));
        if (t >= q) {
          ++t;
        }
        const auto den = static_cast<std::int64_t>(1) << (1 + rng.index(4));
        c.cp(Phase{1, den}, q, t);
        break;
      }
    }
  }
  return c;
}

const std::vector<std::string>& library_families() {
  static const std::vector<std::string> kFamilies = {
      "bell",
      "ghz",
      "w_state",
      "graph_state",
      "qft",
      "aqft",
      "grover",
      "bernstein_vazirani",
      "deutsch_jozsa",
      "hidden_shift",
      "ripple_carry_adder",
      "phase_estimation",
      "random",
      "random_clifford",
      "random_clifford_t",
      "random_phase",
  };
  return kFamilies;
}

Circuit make_family(const std::string& family, std::size_t n,
                    std::uint64_t seed) {
  const std::size_t width = std::max<std::size_t>(n, 1);
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  if (family == "bell") {
    return bell();
  }
  if (family == "ghz") {
    return ghz(width);
  }
  if (family == "w_state") {
    return w_state(width);
  }
  if (family == "graph_state") {
    // Ring when wide enough, else a path (a 2-ring would double its edge).
    std::vector<std::pair<Qubit, Qubit>> edges;
    for (std::size_t q = 0; q + 1 < width; ++q) {
      edges.emplace_back(static_cast<Qubit>(q), static_cast<Qubit>(q + 1));
    }
    if (width >= 3) {
      edges.emplace_back(static_cast<Qubit>(width - 1), Qubit{0});
    }
    return graph_state(width, edges);
  }
  if (family == "qft") {
    return qft(width, /*with_swaps=*/seed % 2 == 0);
  }
  if (family == "aqft") {
    return aqft(width, std::max<std::size_t>(width / 2, 1));
  }
  if (family == "grover") {
    // Cap at 3 qubits: the oracle's multi-controlled gate must stay within
    // the two controls OpenQASM 2.0 can express (ccx).
    const std::size_t g = std::clamp<std::size_t>(width, 2, 3);
    return grover(g, seed & ((std::uint64_t{1} << g) - 1));
  }
  if (family == "bernstein_vazirani") {
    return bernstein_vazirani(width, seed & mask);
  }
  if (family == "deutsch_jozsa") {
    return deutsch_jozsa(width, seed & mask);
  }
  if (family == "hidden_shift") {
    const std::size_t even = std::max<std::size_t>(width & ~std::size_t{1}, 2);
    return hidden_shift(even, seed & ((std::uint64_t{1} << even) - 1));
  }
  if (family == "ripple_carry_adder") {
    // Width 2b + 2; derive b so the result stays near the requested n.
    return ripple_carry_adder(std::max<std::size_t>((width - 1) / 2, 1));
  }
  if (family == "phase_estimation") {
    const std::size_t precision = std::max<std::size_t>(width - 1, 1);
    return phase_estimation(precision,
                            Phase{static_cast<std::int64_t>(seed % 15) - 7, 8});
  }
  if (family == "random") {
    return random_circuit(width, std::max<std::size_t>(width / 2, 2), seed);
  }
  if (family == "random_clifford") {
    return random_clifford(width, 4 * width, seed);
  }
  if (family == "random_clifford_t") {
    return random_clifford_t(width, 4 * width, 0.25, seed);
  }
  if (family == "random_phase") {
    return random_phase_circuit(width, 3 * width, seed);
  }
  throw Error::bad_input("make_family: unknown family \"" + family + "\"");
}

}  // namespace qdt::ir
