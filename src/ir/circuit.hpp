// The quantum circuit IR: a named, fixed-width sequence of operations.
//
// This is the hub of the library — every backend (arrays, decision diagrams,
// tensor networks, ZX-calculus) consumes a Circuit, and the transpiler
// produces one.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/phase.hpp"
#include "ir/operation.hpp"

namespace qdt::ir {

/// Summary statistics of a circuit (see Circuit::stats).
struct CircuitStats {
  std::size_t num_qubits = 0;
  std::size_t total_gates = 0;      // unitary gates, controls included
  std::size_t single_qubit = 0;     // gates touching exactly one qubit
  std::size_t two_qubit = 0;        // gates touching exactly two qubits
  std::size_t multi_qubit = 0;      // gates touching three or more
  std::size_t t_count = 0;          // T/Tdg gates plus odd-multiple-of-pi/4
                                    // phase rotations
  std::size_t measurements = 0;
  std::size_t depth = 0;            // greedy ASAP depth over unitary gates
  std::map<std::string, std::size_t> by_name;  // "cx" -> 120, ...
};

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::size_t num_qubits, std::string name = "circuit")
      : num_qubits_(num_qubits), name_(std::move(name)) {}

  std::size_t num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Operation>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  const Operation& operator[](std::size_t i) const { return ops_[i]; }

  auto begin() const { return ops_.begin(); }
  auto end() const { return ops_.end(); }

  /// Append an operation; throws if it references a qubit out of range.
  void append(Operation op);

  // -- Builder shorthands (return *this for chaining) ----------------------
  Circuit& i(Qubit q) { return add1(GateKind::I, q); }
  Circuit& x(Qubit q) { return add1(GateKind::X, q); }
  Circuit& y(Qubit q) { return add1(GateKind::Y, q); }
  Circuit& z(Qubit q) { return add1(GateKind::Z, q); }
  Circuit& h(Qubit q) { return add1(GateKind::H, q); }
  Circuit& s(Qubit q) { return add1(GateKind::S, q); }
  Circuit& sdg(Qubit q) { return add1(GateKind::Sdg, q); }
  Circuit& t(Qubit q) { return add1(GateKind::T, q); }
  Circuit& tdg(Qubit q) { return add1(GateKind::Tdg, q); }
  Circuit& sx(Qubit q) { return add1(GateKind::SX, q); }
  Circuit& sxdg(Qubit q) { return add1(GateKind::SXdg, q); }
  Circuit& rx(const Phase& theta, Qubit q);
  Circuit& ry(const Phase& theta, Qubit q);
  Circuit& rz(const Phase& theta, Qubit q);
  Circuit& p(const Phase& lambda, Qubit q);
  Circuit& u(const Phase& theta, const Phase& phi, const Phase& lambda,
             Qubit q);
  Circuit& cx(Qubit control, Qubit target);
  Circuit& cy(Qubit control, Qubit target);
  Circuit& cz(Qubit control, Qubit target);
  Circuit& ch(Qubit control, Qubit target);
  Circuit& cs(Qubit control, Qubit target);
  Circuit& cp(const Phase& lambda, Qubit control, Qubit target);
  Circuit& crz(const Phase& theta, Qubit control, Qubit target);
  Circuit& ccx(Qubit c1, Qubit c2, Qubit target);
  Circuit& ccz(Qubit c1, Qubit c2, Qubit target);
  Circuit& mcx(const std::vector<Qubit>& controls, Qubit target);
  Circuit& swap(Qubit a, Qubit b);
  Circuit& iswap(Qubit a, Qubit b);
  Circuit& cswap(Qubit control, Qubit a, Qubit b);
  Circuit& rzz(const Phase& theta, Qubit a, Qubit b);
  Circuit& rxx(const Phase& theta, Qubit a, Qubit b);
  Circuit& measure(Qubit q);
  Circuit& measure_all();
  Circuit& reset(Qubit q);
  Circuit& barrier();

  // -- Whole-circuit transforms --------------------------------------------
  /// The adjoint circuit (ops reversed, each inverted). Requires all ops
  /// unitary (barriers are dropped).
  Circuit adjoint() const;

  /// This circuit followed by `other` (must have the same width).
  Circuit composed_with(const Circuit& other) const;

  /// Circuit with every qubit q relabelled perm[q]; perm must be a
  /// permutation of [0, num_qubits).
  Circuit remapped(const std::vector<Qubit>& perm) const;

  /// Copy containing only unitary operations (measurements/resets/barriers
  /// stripped) — what the verification and ZX layers operate on.
  Circuit unitary_part() const;

  /// True if every operation is a unitary gate or barrier.
  bool is_unitary() const;

  // -- Analysis -------------------------------------------------------------
  CircuitStats stats() const;
  std::size_t t_count() const { return stats().t_count; }
  std::size_t two_qubit_count() const { return stats().two_qubit; }
  std::size_t depth() const { return stats().depth; }

  bool operator==(const Circuit& o) const {
    return num_qubits_ == o.num_qubits_ && ops_ == o.ops_;
  }

  /// Multi-line listing, one operation per line.
  std::string str() const;

 private:
  Circuit& add1(GateKind k, Qubit q);

  std::size_t num_qubits_ = 0;
  std::string name_ = "circuit";
  std::vector<Operation> ops_;
};

}  // namespace qdt::ir
