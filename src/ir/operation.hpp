// One instruction of a quantum circuit: a base gate from the catalogue, the
// target qubit(s) it acts on, an optional list of (positive) control qubits,
// and the gate's Phase parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/phase.hpp"
#include "ir/gate.hpp"

namespace qdt::ir {

using Qubit = std::uint32_t;

class Operation {
 public:
  Operation() = default;

  /// General constructor; validates target/param arity against the catalogue.
  Operation(GateKind kind, std::vector<Qubit> targets,
            std::vector<Qubit> controls = {}, std::vector<Phase> params = {});

  /// Convenience for the ubiquitous 1-target case. Takes an initializer
  /// list (not a vector) so that braced control-qubit lists never bind here.
  Operation(GateKind kind, Qubit target,
            std::initializer_list<Phase> params = {})
      : Operation(kind, std::vector<Qubit>{target}, {},
                  std::vector<Phase>(params)) {}

  GateKind kind() const { return kind_; }
  const std::vector<Qubit>& targets() const { return targets_; }
  const std::vector<Qubit>& controls() const { return controls_; }
  const std::vector<Phase>& params() const { return params_; }

  bool is_unitary() const { return gate_is_unitary(kind_); }
  bool is_measurement() const { return kind_ == GateKind::Measure; }
  bool is_reset() const { return kind_ == GateKind::Reset; }
  bool is_barrier() const { return kind_ == GateKind::Barrier; }
  bool is_controlled() const { return !controls_.empty(); }
  /// Diagonal in the computational basis (controls preserve diagonality).
  bool is_diagonal() const { return gate_is_diagonal(kind_); }

  /// Number of distinct qubits this operation touches.
  std::size_t num_qubits() const { return targets_.size() + controls_.size(); }

  /// Targets followed by controls.
  std::vector<Qubit> qubits() const;

  /// Largest qubit index mentioned.
  Qubit max_qubit() const;

  /// The inverse operation. Throws for non-unitary kinds.
  Operation adjoint() const;

  /// Base-gate matrix (ignoring controls). Valid for 1q / 2q unitary kinds.
  Mat2 matrix2() const { return gate_matrix2(kind_, params_); }
  Mat4 matrix4() const { return gate_matrix4(kind_, params_); }

  /// Operation with every qubit q replaced by perm[q].
  Operation remapped(const std::vector<Qubit>& perm) const;

  /// Structural equality (same kind, qubits, exact same Phase parameters).
  bool operator==(const Operation& o) const = default;

  /// Readable form such as "cx q1, q0" or "rz(pi/4) q2".
  std::string str() const;

 private:
  GateKind kind_ = GateKind::I;
  std::vector<Qubit> targets_;
  std::vector<Qubit> controls_;
  std::vector<Phase> params_;
};

}  // namespace qdt::ir
