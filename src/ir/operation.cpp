#include "ir/operation.hpp"

#include <algorithm>
#include <stdexcept>

namespace qdt::ir {

Operation::Operation(GateKind kind, std::vector<Qubit> targets,
                     std::vector<Qubit> controls, std::vector<Phase> params)
    : kind_(kind),
      targets_(std::move(targets)),
      controls_(std::move(controls)),
      params_(std::move(params)) {
  if (gate_is_unitary(kind_)) {
    if (static_cast<int>(targets_.size()) != gate_arity(kind_)) {
      throw std::invalid_argument("Operation " + gate_name(kind_) +
                                  ": wrong number of targets");
    }
    if (static_cast<int>(params_.size()) != gate_param_count(kind_)) {
      throw std::invalid_argument("Operation " + gate_name(kind_) +
                                  ": wrong number of parameters");
    }
  } else {
    if (targets_.empty()) {
      throw std::invalid_argument("Operation " + gate_name(kind_) +
                                  ": needs at least one target");
    }
    if (!controls_.empty()) {
      throw std::invalid_argument("Operation " + gate_name(kind_) +
                                  ": cannot be controlled");
    }
  }
  // Reject duplicated qubits across targets+controls.
  auto all = qubits();
  std::sort(all.begin(), all.end());
  if (std::adjacent_find(all.begin(), all.end()) != all.end()) {
    throw std::invalid_argument("Operation " + gate_name(kind_) +
                                ": duplicate qubit operand");
  }
}

std::vector<Qubit> Operation::qubits() const {
  std::vector<Qubit> q = targets_;
  q.insert(q.end(), controls_.begin(), controls_.end());
  return q;
}

Qubit Operation::max_qubit() const {
  Qubit m = 0;
  for (const Qubit q : targets_) {
    m = std::max(m, q);
  }
  for (const Qubit q : controls_) {
    m = std::max(m, q);
  }
  return m;
}

Operation Operation::adjoint() const {
  if (!is_unitary()) {
    throw std::logic_error("adjoint of non-unitary operation " +
                           gate_name(kind_));
  }
  return Operation{gate_inverse_kind(kind_), targets_, controls_,
                   gate_inverse_params(kind_, params_)};
}

Operation Operation::remapped(const std::vector<Qubit>& perm) const {
  Operation o = *this;
  for (Qubit& q : o.targets_) {
    q = perm.at(q);
  }
  for (Qubit& q : o.controls_) {
    q = perm.at(q);
  }
  return o;
}

std::string Operation::str() const {
  std::string s;
  for (std::size_t i = 0; i < controls_.size(); ++i) {
    s += 'c';
  }
  s += gate_name(kind_);
  if (!params_.empty()) {
    s += '(';
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (i > 0) {
        s += ", ";
      }
      s += params_[i].str();
    }
    s += ')';
  }
  s += ' ';
  bool first = true;
  for (const Qubit q : controls_) {
    if (!first) {
      s += ", ";
    }
    first = false;
    s += 'q' + std::to_string(q);
  }
  for (const Qubit q : targets_) {
    if (!first) {
      s += ", ";
    }
    first = false;
    s += 'q' + std::to_string(q);
  }
  return s;
}

}  // namespace qdt::ir
