// OpenQASM 2.0 subset reader and writer.
//
// Supported: a single quantum register, the qelib1 gate names covered by the
// catalogue (x, y, z, h, s, sdg, t, tdg, sx, sxdg, rx, ry, rz, p/u1, u/u3,
// cx, cy, cz, ch, crz, cp/cu1, ccx, swap, cswap, iswap, rzz, rxx), measure,
// reset, and barrier. Angle expressions may combine integers, decimals, and
// `pi` with * and / (e.g. "3*pi/4", "-pi/2", "0.25").
#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qdt::ir {

/// Parse an OpenQASM 2.0 program. Throws std::runtime_error with a
/// line-numbered message on any syntax or unsupported-feature error.
Circuit parse_qasm(const std::string& source);

/// Serialize to OpenQASM 2.0. Throws std::runtime_error for operations the
/// format cannot express (e.g. more than two controls).
std::string to_qasm(const Circuit& circuit);

}  // namespace qdt::ir
