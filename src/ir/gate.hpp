// The gate catalogue: every primitive operation the IR understands, together
// with its exact matrix semantics.
//
// Controlled gates are not separate kinds — an ir::Operation attaches a list
// of control qubits to any unitary base gate (so CX is X-with-one-control,
// Toffoli is X-with-two-controls, controlled-phase is P-with-one-control).
// This keeps the catalogue small and lets every backend handle arbitrary
// multi-controlled gates uniformly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/phase.hpp"

namespace qdt::ir {

enum class GateKind : std::uint8_t {
  // Single-qubit, parameter-free.
  I,
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  SX,
  SXdg,
  // Single-qubit, parameterized (angles are qdt::Phase).
  RX,   // RX(theta) = exp(-i theta X / 2)
  RY,   // RY(theta) = exp(-i theta Y / 2)
  RZ,   // RZ(theta) = exp(-i theta Z / 2)
  P,    // P(lambda) = diag(1, e^{i lambda})
  U,    // U(theta, phi, lambda), the generic 1q unitary (OpenQASM u3)
  // Two-qubit, parameter-free.
  Swap,
  ISwap,
  ISwapDg,
  // Two-qubit, parameterized.
  RZZ,  // RZZ(theta) = exp(-i theta Z(x)Z / 2)
  RXX,  // RXX(theta) = exp(-i theta X(x)X / 2)
  // Non-unitary / meta.
  Measure,
  Reset,
  Barrier,
};

/// Lower-case mnemonic ("x", "sdg", "rz", ...; matches OpenQASM where one
/// exists).
std::string gate_name(GateKind k);

/// Inverse lookup of gate_name. Throws std::invalid_argument on unknown
/// names.
GateKind gate_from_name(const std::string& name);

/// Number of target qubits the gate acts on (1 or 2 for unitaries; Measure /
/// Reset / Barrier report 1, their Operation may list several targets).
int gate_arity(GateKind k);

/// Number of Phase parameters the gate carries.
int gate_param_count(GateKind k);

/// True for every kind that denotes a unitary gate (everything except
/// Measure, Reset, Barrier).
bool gate_is_unitary(GateKind k);

/// True if the gate matrix is diagonal in the computational basis.
bool gate_is_diagonal(GateKind k);

/// True if the gate equals its own inverse.
bool gate_is_self_inverse(GateKind k);

/// Kind and parameters of the inverse gate. For parameterized kinds the
/// caller negates/permutes the parameters as returned by
/// `gate_inverse_params`.
GateKind gate_inverse_kind(GateKind k);

/// Parameters of the inverse gate given the original parameters.
std::vector<Phase> gate_inverse_params(GateKind k,
                                       const std::vector<Phase>& params);

/// True when negating this gate's angle wraps around the Phase range and
/// flips the matrix sign. Half-angle rotations (RX/RY/RZ/RZZ/RXX, and U's
/// theta) are 4pi-periodic in their parameter while qdt::Phase normalizes
/// angles into (-pi, pi]: at theta == pi the negated angle lands back on
/// +pi, so the representable "adjoint" is -1 times the true inverse. The
/// -1 is a global phase on an uncontrolled op but sits only on the
/// controlled block of a controlled one, where it is observable.
bool gate_adjoint_wraps(GateKind k, const std::vector<Phase>& params);

/// Exact 2x2 matrix of a single-qubit kind. Throws for non-1q kinds.
Mat2 gate_matrix2(GateKind k, const std::vector<Phase>& params);

/// Exact 4x4 matrix of a two-qubit kind, with target[0] as the *less*
/// significant index bit. Throws for non-2q kinds.
Mat4 gate_matrix4(GateKind k, const std::vector<Phase>& params);

}  // namespace qdt::ir
