#include "ir/gate.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_map>

namespace qdt::ir {

namespace {

struct GateInfo {
  const char* name;
  int arity;        // target qubits
  int params;       // Phase parameters
  bool unitary;
  bool diagonal;
  bool self_inverse;
};

const GateInfo& info(GateKind k) {
  static const GateInfo kTable[] = {
      // name     arity params unitary diagonal self_inverse
      {"id", 1, 0, true, true, true},      // I
      {"x", 1, 0, true, false, true},      // X
      {"y", 1, 0, true, false, true},      // Y
      {"z", 1, 0, true, true, true},       // Z
      {"h", 1, 0, true, false, true},      // H
      {"s", 1, 0, true, true, false},      // S
      {"sdg", 1, 0, true, true, false},    // Sdg
      {"t", 1, 0, true, true, false},      // T
      {"tdg", 1, 0, true, true, false},    // Tdg
      {"sx", 1, 0, true, false, false},    // SX
      {"sxdg", 1, 0, true, false, false},  // SXdg
      {"rx", 1, 1, true, false, false},    // RX
      {"ry", 1, 1, true, false, false},    // RY
      {"rz", 1, 1, true, true, false},     // RZ
      {"p", 1, 1, true, true, false},      // P
      {"u", 1, 3, true, false, false},     // U
      {"swap", 2, 0, true, false, true},   // Swap
      {"iswap", 2, 0, true, false, false},     // ISwap
      {"iswapdg", 2, 0, true, false, false},   // ISwapDg
      {"rzz", 2, 1, true, true, false},    // RZZ
      {"rxx", 2, 1, true, false, false},   // RXX
      {"measure", 1, 0, false, false, false},  // Measure
      {"reset", 1, 0, false, false, false},    // Reset
      {"barrier", 1, 0, false, false, false},  // Barrier
  };
  return kTable[static_cast<std::size_t>(k)];
}

constexpr Complex kI{0.0, 1.0};

Complex expi(double angle) { return {std::cos(angle), std::sin(angle)}; }

}  // namespace

std::string gate_name(GateKind k) { return info(k).name; }

GateKind gate_from_name(const std::string& name) {
  static const std::unordered_map<std::string, GateKind> kMap = [] {
    std::unordered_map<std::string, GateKind> m;
    for (int i = 0; i <= static_cast<int>(GateKind::Barrier); ++i) {
      const auto k = static_cast<GateKind>(i);
      m.emplace(gate_name(k), k);
    }
    // OpenQASM aliases.
    m.emplace("u1", GateKind::P);
    m.emplace("u3", GateKind::U);
    m.emplace("cx", GateKind::X);  // handled with controls by the parser
    return m;
  }();
  const auto it = kMap.find(name);
  if (it == kMap.end()) {
    throw std::invalid_argument("unknown gate name: " + name);
  }
  return it->second;
}

int gate_arity(GateKind k) { return info(k).arity; }
int gate_param_count(GateKind k) { return info(k).params; }
bool gate_is_unitary(GateKind k) { return info(k).unitary; }
bool gate_is_diagonal(GateKind k) { return info(k).diagonal; }
bool gate_is_self_inverse(GateKind k) { return info(k).self_inverse; }

GateKind gate_inverse_kind(GateKind k) {
  switch (k) {
    case GateKind::S:
      return GateKind::Sdg;
    case GateKind::Sdg:
      return GateKind::S;
    case GateKind::T:
      return GateKind::Tdg;
    case GateKind::Tdg:
      return GateKind::T;
    case GateKind::SX:
      return GateKind::SXdg;
    case GateKind::SXdg:
      return GateKind::SX;
    case GateKind::ISwap:
      return GateKind::ISwapDg;
    case GateKind::ISwapDg:
      return GateKind::ISwap;
    default:
      return k;  // self-inverse or parameterized (params negated separately)
  }
}

std::vector<Phase> gate_inverse_params(GateKind k,
                                       const std::vector<Phase>& params) {
  if (k == GateKind::U) {
    // U(theta, phi, lambda)^dagger = U(-theta, -lambda, -phi).
    return {-params[0], -params[2], -params[1]};
  }
  std::vector<Phase> inv;
  inv.reserve(params.size());
  for (const auto& p : params) {
    inv.push_back(-p);
  }
  return inv;
}

bool gate_adjoint_wraps(GateKind k, const std::vector<Phase>& params) {
  switch (k) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::RZZ:
    case GateKind::RXX:
    case GateKind::U:
      // Only the half-angle parameter (params[0]) wraps; P and U's
      // phi/lambda enter as e^{i angle} and are 2pi-periodic.
      return !params.empty() && params[0] == Phase(1, 1);
    default:
      return false;
  }
}

Mat2 gate_matrix2(GateKind k, const std::vector<Phase>& params) {
  Mat2 m;
  switch (k) {
    case GateKind::I:
      return Mat2::identity();
    case GateKind::X:
      m(0, 1) = 1.0;
      m(1, 0) = 1.0;
      return m;
    case GateKind::Y:
      m(0, 1) = -kI;
      m(1, 0) = kI;
      return m;
    case GateKind::Z:
      m(0, 0) = 1.0;
      m(1, 1) = -1.0;
      return m;
    case GateKind::H:
      m(0, 0) = kInvSqrt2;
      m(0, 1) = kInvSqrt2;
      m(1, 0) = kInvSqrt2;
      m(1, 1) = -kInvSqrt2;
      return m;
    case GateKind::S:
      m(0, 0) = 1.0;
      m(1, 1) = kI;
      return m;
    case GateKind::Sdg:
      m(0, 0) = 1.0;
      m(1, 1) = -kI;
      return m;
    case GateKind::T:
      m(0, 0) = 1.0;
      m(1, 1) = expi(std::numbers::pi / 4);
      return m;
    case GateKind::Tdg:
      m(0, 0) = 1.0;
      m(1, 1) = expi(-std::numbers::pi / 4);
      return m;
    case GateKind::SX:
      // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
      m(0, 0) = Complex{0.5, 0.5};
      m(0, 1) = Complex{0.5, -0.5};
      m(1, 0) = Complex{0.5, -0.5};
      m(1, 1) = Complex{0.5, 0.5};
      return m;
    case GateKind::SXdg:
      m(0, 0) = Complex{0.5, -0.5};
      m(0, 1) = Complex{0.5, 0.5};
      m(1, 0) = Complex{0.5, 0.5};
      m(1, 1) = Complex{0.5, -0.5};
      return m;
    case GateKind::RX: {
      const double t = params.at(0).radians() / 2;
      m(0, 0) = std::cos(t);
      m(0, 1) = -kI * std::sin(t);
      m(1, 0) = -kI * std::sin(t);
      m(1, 1) = std::cos(t);
      return m;
    }
    case GateKind::RY: {
      const double t = params.at(0).radians() / 2;
      m(0, 0) = std::cos(t);
      m(0, 1) = -std::sin(t);
      m(1, 0) = std::sin(t);
      m(1, 1) = std::cos(t);
      return m;
    }
    case GateKind::RZ: {
      const double t = params.at(0).radians() / 2;
      m(0, 0) = expi(-t);
      m(1, 1) = expi(t);
      return m;
    }
    case GateKind::P:
      m(0, 0) = 1.0;
      m(1, 1) = expi(params.at(0).radians());
      return m;
    case GateKind::U: {
      const double theta = params.at(0).radians();
      const double phi = params.at(1).radians();
      const double lambda = params.at(2).radians();
      m(0, 0) = std::cos(theta / 2);
      m(0, 1) = -expi(lambda) * std::sin(theta / 2);
      m(1, 0) = expi(phi) * std::sin(theta / 2);
      m(1, 1) = expi(phi + lambda) * std::cos(theta / 2);
      return m;
    }
    default:
      throw std::invalid_argument("gate_matrix2: not a single-qubit gate: " +
                                  gate_name(k));
  }
}

Mat4 gate_matrix4(GateKind k, const std::vector<Phase>& params) {
  Mat4 m;
  switch (k) {
    case GateKind::Swap:
      m(0, 0) = 1.0;
      m(1, 2) = 1.0;
      m(2, 1) = 1.0;
      m(3, 3) = 1.0;
      return m;
    case GateKind::ISwap:
      m(0, 0) = 1.0;
      m(1, 2) = kI;
      m(2, 1) = kI;
      m(3, 3) = 1.0;
      return m;
    case GateKind::ISwapDg:
      m(0, 0) = 1.0;
      m(1, 2) = -kI;
      m(2, 1) = -kI;
      m(3, 3) = 1.0;
      return m;
    case GateKind::RZZ: {
      const double t = params.at(0).radians() / 2;
      m(0, 0) = expi(-t);
      m(1, 1) = expi(t);
      m(2, 2) = expi(t);
      m(3, 3) = expi(-t);
      return m;
    }
    case GateKind::RXX: {
      const double t = params.at(0).radians() / 2;
      const Complex c = std::cos(t);
      const Complex s = -kI * std::sin(t);
      m(0, 0) = c;
      m(1, 1) = c;
      m(2, 2) = c;
      m(3, 3) = c;
      m(0, 3) = s;
      m(1, 2) = s;
      m(2, 1) = s;
      m(3, 0) = s;
      return m;
    }
    default:
      throw std::invalid_argument("gate_matrix4: not a two-qubit gate: " +
                                  gate_name(k));
  }
}

}  // namespace qdt::ir
