#include "ir/qasm.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <numbers>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "guard/error.hpp"

namespace qdt::ir {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw Error::bad_input("qasm:" + std::to_string(line) + ": " + msg);
}

/// stoul that reports malformed or out-of-range input as a parse error
/// instead of leaking std::invalid_argument / std::out_of_range.
std::size_t parse_index(const std::string& s, std::size_t line,
                        const char* what) {
  try {
    std::size_t consumed = 0;
    const unsigned long v = std::stoul(s, &consumed);
    if (consumed != s.size()) {
      fail(line, std::string("malformed ") + what + ": " + s);
    }
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    fail(line, std::string("malformed ") + what + ": " + s);
  }
}

/// Remove comments and surrounding whitespace.
std::string strip(std::string s) {
  if (const auto pos = s.find("//"); pos != std::string::npos) {
    s.erase(pos);
  }
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    return "";
  }
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

/// Exact-rational fast path for angles shaped like the ones to_qasm emits:
/// "0", "[-]pi[/D]", "[-]N*pi[/D]". Routing these through the double-valued
/// AngleParser and Phase::from_radians is lossy — the rational
/// reconstruction of an already-rational angle may settle on a *different*
/// fraction, so parse(to_qasm(c)) no longer equaled c (found by parser
/// fuzzing). Returns nullopt for any other shape (general expressions fall
/// back to the numeric parser).
std::optional<Phase> parse_exact_phase(const std::string& text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) {
    ++b;
  }
  while (e > b &&
         std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) {
    --e;
  }
  const std::string_view s(text.data() + b, e - b);
  if (s == "0") {
    return Phase::zero();
  }
  std::size_t pos = 0;
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    pos = 1;
  }
  const auto parse_i64 = [](std::string_view digits, std::int64_t& out) {
    if (digits.empty()) {
      return false;
    }
    const auto [ptr, ec] =
        std::from_chars(digits.begin(), digits.end(), out);
    return ec == std::errc{} && ptr == digits.end();
  };
  std::int64_t num = 1;
  std::string_view rest;
  if (const auto star = s.find("*pi", pos); star != std::string_view::npos) {
    if (!parse_i64(s.substr(pos, star - pos), num)) {
      return std::nullopt;
    }
    rest = s.substr(star + 3);
  } else if (s.compare(pos, 2, "pi") == 0) {
    rest = s.substr(pos + 2);
  } else {
    return std::nullopt;
  }
  std::int64_t den = 1;
  if (!rest.empty()) {
    if (rest[0] != '/' || !parse_i64(rest.substr(1), den) || den == 0) {
      return std::nullopt;
    }
  }
  return Phase{neg ? -num : num, den};
}

/// Minimal recursive-descent evaluator for angle expressions:
///   expr   := term (('+'|'-') term)*
///   term   := factor (('*'|'/') factor)*
///   factor := '-' factor | number | 'pi' | '(' expr ')'
class AngleParser {
 public:
  AngleParser(std::string text, std::size_t line)
      : text_(std::move(text)), line_(line) {}

  double parse() {
    const double v = expr();
    skip_ws();
    if (pos_ != text_.size()) {
      fail(line_, "trailing characters in angle expression: " + text_);
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  double expr() {
    double v = term();
    while (true) {
      if (consume('+')) {
        v += term();
      } else if (consume('-')) {
        v -= term();
      } else {
        return v;
      }
    }
  }

  double term() {
    double v = factor();
    while (true) {
      if (consume('*')) {
        v *= factor();
      } else if (consume('/')) {
        v /= factor();
      } else {
        return v;
      }
    }
  }

  double factor() {
    skip_ws();
    if (consume('-')) {
      return -factor();
    }
    if (consume('(')) {
      const double v = expr();
      if (!consume(')')) {
        fail(line_, "missing ')' in angle expression");
      }
      return v;
    }
    if (text_.compare(pos_, 2, "pi") == 0) {
      pos_ += 2;
      return std::numbers::pi;
    }
    // Number.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) {
      fail(line_, "expected number in angle expression: " + text_);
    }
    try {
      return std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail(line_, "bad number in angle expression: " + text_);
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::size_t line_;
};

struct QasmGate {
  GateKind kind;
  int num_controls;
  int num_params;
};

const std::unordered_map<std::string, QasmGate>& gate_table() {
  static const std::unordered_map<std::string, QasmGate> kTable = {
      {"id", {GateKind::I, 0, 0}},      {"x", {GateKind::X, 0, 0}},
      {"y", {GateKind::Y, 0, 0}},       {"z", {GateKind::Z, 0, 0}},
      {"h", {GateKind::H, 0, 0}},       {"s", {GateKind::S, 0, 0}},
      {"sdg", {GateKind::Sdg, 0, 0}},   {"t", {GateKind::T, 0, 0}},
      {"tdg", {GateKind::Tdg, 0, 0}},   {"sx", {GateKind::SX, 0, 0}},
      {"sxdg", {GateKind::SXdg, 0, 0}}, {"rx", {GateKind::RX, 0, 1}},
      {"ry", {GateKind::RY, 0, 1}},     {"rz", {GateKind::RZ, 0, 1}},
      {"p", {GateKind::P, 0, 1}},       {"u1", {GateKind::P, 0, 1}},
      {"u", {GateKind::U, 0, 3}},       {"u3", {GateKind::U, 0, 3}},
      {"cx", {GateKind::X, 1, 0}},      {"cy", {GateKind::Y, 1, 0}},
      {"cz", {GateKind::Z, 1, 0}},      {"ch", {GateKind::H, 1, 0}},
      {"crz", {GateKind::RZ, 1, 1}},    {"cry", {GateKind::RY, 1, 1}},
      {"crx", {GateKind::RX, 1, 1}},    {"cp", {GateKind::P, 1, 1}},
      {"cu1", {GateKind::P, 1, 1}},     {"ccx", {GateKind::X, 2, 0}},
      {"ccz", {GateKind::Z, 2, 0}},     {"swap", {GateKind::Swap, 0, 0}},
      {"cswap", {GateKind::Swap, 1, 0}},
      {"iswap", {GateKind::ISwap, 0, 0}},
      {"rzz", {GateKind::RZZ, 0, 1}},   {"rxx", {GateKind::RXX, 0, 1}},
  };
  return kTable;
}

/// Split "a, b , c" on commas at paren depth zero.
std::vector<std::string> split_args(const std::string& s) {
  std::vector<std::string> parts;
  std::string cur;
  int depth = 0;
  for (const char ch : s) {
    if (ch == '(') {
      ++depth;
    } else if (ch == ')') {
      --depth;
    }
    if (ch == ',' && depth == 0) {
      parts.push_back(strip(cur));
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!strip(cur).empty()) {
    parts.push_back(strip(cur));
  }
  return parts;
}

}  // namespace

Circuit parse_qasm(const std::string& source) {
  std::istringstream in(source);
  std::string raw;
  std::size_t line_no = 0;
  std::string qreg_name;
  std::size_t num_qubits = 0;
  Circuit circuit;
  bool have_circuit = false;

  // Statements end with ';'; gather them across physical lines.
  std::string pending;
  std::vector<std::pair<std::string, std::size_t>> statements;
  while (std::getline(in, raw)) {
    ++line_no;
    pending += strip(raw);
    while (true) {
      const auto pos = pending.find(';');
      if (pos == std::string::npos) {
        break;
      }
      const std::string stmt = strip(pending.substr(0, pos));
      pending = strip(pending.substr(pos + 1));
      if (!stmt.empty()) {
        statements.emplace_back(stmt, line_no);
      }
    }
    if (!pending.empty()) {
      pending += ' ';
    }
  }
  if (!strip(pending).empty()) {
    throw Error::bad_input("qasm: missing ';' at end of input");
  }

  const auto parse_qubit = [&](const std::string& ref,
                               std::size_t line) -> Qubit {
    const auto lb = ref.find('[');
    const auto rb = ref.find(']');
    if (lb == std::string::npos || rb == std::string::npos || rb < lb) {
      fail(line, "expected qubit reference like q[3], got: " + ref);
    }
    const std::string reg = strip(ref.substr(0, lb));
    if (reg != qreg_name) {
      fail(line, "unknown register: " + reg);
    }
    const auto idx =
        parse_index(ref.substr(lb + 1, rb - lb - 1), line, "qubit index");
    if (idx >= num_qubits) {
      fail(line, "qubit index out of range: " + ref);
    }
    return static_cast<Qubit>(idx);
  };

  for (const auto& [stmt, line] : statements) {
    if (stmt.rfind("OPENQASM", 0) == 0 || stmt.rfind("include", 0) == 0 ||
        stmt.rfind("creg", 0) == 0) {
      continue;
    }
    if (stmt.rfind("qreg", 0) == 0) {
      if (have_circuit) {
        fail(line, "only one qreg is supported");
      }
      const auto lb = stmt.find('[');
      const auto rb = stmt.find(']');
      if (lb == std::string::npos || rb == std::string::npos) {
        fail(line, "malformed qreg declaration");
      }
      qreg_name = strip(stmt.substr(4, lb - 4));
      num_qubits =
          parse_index(stmt.substr(lb + 1, rb - lb - 1), line, "register size");
      if (num_qubits == 0) {
        fail(line, "empty qubit register");
      }
      circuit = Circuit(num_qubits, "qasm");
      have_circuit = true;
      continue;
    }
    if (!have_circuit) {
      fail(line, "gate before qreg declaration");
    }
    if (stmt.rfind("barrier", 0) == 0) {
      circuit.barrier();
      continue;
    }
    if (stmt.rfind("measure", 0) == 0) {
      // "measure q[i] -> c[i]" or "measure q -> c" (all qubits).
      const auto arrow = stmt.find("->");
      const std::string src =
          strip(stmt.substr(7, arrow == std::string::npos
                                   ? std::string::npos
                                   : arrow - 7));
      if (src == qreg_name) {
        circuit.measure_all();
      } else {
        circuit.measure(parse_qubit(src, line));
      }
      continue;
    }
    if (stmt.rfind("reset", 0) == 0) {
      circuit.reset(parse_qubit(strip(stmt.substr(5)), line));
      continue;
    }

    // Gate statement: name[(params)] args.
    std::size_t p = 0;
    while (p < stmt.size() &&
           (std::isalnum(static_cast<unsigned char>(stmt[p])) != 0 ||
            stmt[p] == '_')) {
      ++p;
    }
    const std::string name = stmt.substr(0, p);
    const auto it = gate_table().find(name);
    if (it == gate_table().end()) {
      fail(line, "unsupported gate: " + name);
    }
    const QasmGate& g = it->second;

    std::vector<Phase> params;
    std::size_t args_start = p;
    if (g.num_params > 0) {
      const auto lp = stmt.find('(', p);
      const auto rp = stmt.rfind(')');
      if (lp == std::string::npos || rp == std::string::npos || rp < lp) {
        fail(line, "expected parameter list for gate " + name);
      }
      for (const auto& expr :
           split_args(stmt.substr(lp + 1, rp - lp - 1))) {
        if (const auto exact = parse_exact_phase(expr)) {
          params.push_back(*exact);
        } else {
          params.push_back(
              Phase::from_radians(AngleParser(expr, line).parse()));
        }
      }
      if (static_cast<int>(params.size()) != g.num_params) {
        fail(line, "wrong parameter count for gate " + name);
      }
      args_start = rp + 1;
    }

    const auto refs = split_args(stmt.substr(args_start));
    const int arity = gate_arity(g.kind);
    if (static_cast<int>(refs.size()) != g.num_controls + arity) {
      fail(line, "wrong operand count for gate " + name);
    }
    std::vector<Qubit> controls;
    for (int i = 0; i < g.num_controls; ++i) {
      controls.push_back(parse_qubit(refs[i], line));
    }
    std::vector<Qubit> targets;
    for (int i = g.num_controls; i < g.num_controls + arity; ++i) {
      targets.push_back(parse_qubit(refs[i], line));
    }
    // Operation's constructor validates the operand list (duplicates,
    // control/target overlap) with std::invalid_argument; on parsed text
    // that is a user input error and must surface as a typed BadInput
    // with the line number, not escape raw (found by parser fuzzing:
    // "cx q[0],q[0]").
    try {
      circuit.append(Operation{g.kind, std::move(targets),
                               std::move(controls), std::move(params)});
    } catch (const std::invalid_argument& e) {
      fail(line, e.what());
    }
  }
  if (!have_circuit) {
    throw Error::bad_input("qasm: no qreg declaration found");
  }
  return circuit;
}

namespace {

std::string phase_to_qasm(const Phase& p) {
  if (p.is_zero()) {
    return "0";
  }
  std::string s;
  if (p.num() == 1) {
    s = "pi";
  } else if (p.num() == -1) {
    s = "-pi";
  } else {
    s = std::to_string(p.num()) + "*pi";
  }
  if (p.den() != 1) {
    s += "/" + std::to_string(p.den());
  }
  return s;
}

}  // namespace

std::string to_qasm(const Circuit& circuit) {
  std::ostringstream out;
  out << "OPENQASM 2.0;\n";
  out << "include \"qelib1.inc\";\n";
  out << "qreg q[" << circuit.num_qubits() << "];\n";
  out << "creg c[" << circuit.num_qubits() << "];\n";

  // Reverse lookup: (kind, #controls) -> qasm name.
  const auto emit_name = [](const Operation& op) -> std::string {
    const std::size_t nc = op.controls().size();
    const auto base = gate_name(op.kind());
    if (nc == 0) {
      return base;
    }
    static const std::unordered_map<std::string, std::string> k1 = {
        {"x", "cx"},   {"y", "cy"},  {"z", "cz"},   {"h", "ch"},
        {"rz", "crz"}, {"ry", "cry"}, {"rx", "crx"}, {"p", "cp"},
        {"swap", "cswap"}};
    static const std::unordered_map<std::string, std::string> k2 = {
        {"x", "ccx"}, {"z", "ccz"}};
    if (nc == 1) {
      if (const auto it = k1.find(base); it != k1.end()) {
        return it->second;
      }
    } else if (nc == 2) {
      if (const auto it = k2.find(base); it != k2.end()) {
        return it->second;
      }
    }
    throw Error::unsupported("to_qasm: cannot express controlled-" + base +
                             " with " + std::to_string(nc) + " controls");
  };

  for (const auto& op : circuit.ops()) {
    if (op.is_barrier()) {
      out << "barrier q;\n";
      continue;
    }
    if (op.is_measurement()) {
      for (const auto q : op.targets()) {
        out << "measure q[" << q << "] -> c[" << q << "];\n";
      }
      continue;
    }
    if (op.is_reset()) {
      for (const auto q : op.targets()) {
        out << "reset q[" << q << "];\n";
      }
      continue;
    }
    out << emit_name(op);
    if (!op.params().empty()) {
      out << '(';
      for (std::size_t i = 0; i < op.params().size(); ++i) {
        if (i > 0) {
          out << ", ";
        }
        out << phase_to_qasm(op.params()[i]);
      }
      out << ')';
    }
    out << ' ';
    bool first = true;
    for (const auto q : op.controls()) {
      if (!first) {
        out << ", ";
      }
      first = false;
      out << "q[" << q << ']';
    }
    for (const auto q : op.targets()) {
      if (!first) {
        out << ", ";
      }
      first = false;
      out << "q[" << q << ']';
    }
    out << ";\n";
  }
  return out.str();
}

}  // namespace qdt::ir
