// Named circuit families used throughout the examples, tests, and benchmark
// harness. All generators are deterministic; the randomized families take an
// explicit seed.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/circuit.hpp"

namespace qdt::ir {

/// The paper's running example (Figs. 1-3): H(q1); CX(q1 -> q0) on 2 qubits,
/// preparing (|00> + |11>)/sqrt(2).
Circuit bell();

/// Greenberger-Horne-Zeilinger state on n qubits: H then a CX chain.
/// Its state vector has only 2 nonzero amplitudes -> the flagship example of
/// decision-diagram compactness (O(n) DD nodes vs 2^n array entries).
Circuit ghz(std::size_t n);

/// W state on n qubits ((|10...0> + |01...0> + ... + |0...01>)/sqrt(n)) via
/// the controlled-RY cascade construction.
Circuit w_state(std::size_t n);

/// Graph state: |+>^n followed by CZ for every edge.
Circuit graph_state(std::size_t n,
                    const std::vector<std::pair<Qubit, Qubit>>& edges);

/// Quantum Fourier transform on n qubits (with the final qubit-reversal
/// swaps, so the unitary equals the DFT matrix F[j][k] = w^{jk}/sqrt(N)).
Circuit qft(std::size_t n, bool with_swaps = true);

/// Approximate QFT: controlled phases smaller than pi/2^{degree} dropped.
Circuit aqft(std::size_t n, std::size_t degree);

/// Grover search over n qubits for the marked basis state, with the optimal
/// floor(pi/4 * sqrt(2^n)) iterations (or an explicit count).
Circuit grover(std::size_t n, std::uint64_t marked,
               std::size_t iterations = 0);

/// Bernstein-Vazirani for an n-bit secret (phase-oracle formulation, no
/// ancilla): measuring yields `secret` deterministically.
Circuit bernstein_vazirani(std::size_t n, std::uint64_t secret);

/// Deutsch-Jozsa with a balanced inner-product oracle (mask != 0) or the
/// constant oracle (mask == 0), phase formulation on n qubits.
Circuit deutsch_jozsa(std::size_t n, std::uint64_t mask);

/// Hidden-shift algorithm for the Maiorana-McFarland bent function
/// f(x, y) = x . y on n qubits (n even). Measuring returns `shift`.
Circuit hidden_shift(std::size_t n, std::uint64_t shift);

/// Cuccaro ripple-carry adder: computes b := a + b on registers
/// [cin | a(n) | b(n) | cout], total 2n + 2 qubits.
Circuit ripple_carry_adder(std::size_t n_bits);

/// Quantum phase estimation of the eigenphase of P(theta) on its |1>
/// eigenstate, with `precision` counting qubits (total precision + 1
/// qubits; the eigenstate register is qubit `precision`). Measuring the
/// counting register yields round(theta / 2pi * 2^precision) with high
/// probability.
Circuit phase_estimation(std::size_t precision, const Phase& theta);

/// Random circuit of `depth` layers; each layer applies a Haar-ish random U
/// gate to every qubit followed by CX gates on a random qubit pairing.
Circuit random_circuit(std::size_t n, std::size_t depth, std::uint64_t seed);

/// Random Clifford circuit: `num_gates` gates drawn from {H, S, CX}.
Circuit random_clifford(std::size_t n, std::size_t num_gates,
                        std::uint64_t seed);

/// Random Clifford+T circuit: {H, S, CX} plus T with probability
/// `t_fraction`.
Circuit random_clifford_t(std::size_t n, std::size_t num_gates,
                          double t_fraction, std::uint64_t seed);

/// Random diagonal-heavy circuit (H layer + random CP/T/RZ mix): a workload
/// where all four data structures behave very differently.
Circuit random_phase_circuit(std::size_t n, std::size_t num_gates,
                             std::uint64_t seed);

// ---------------------------------------------------------------------------
// Generator registry (the qdt::chaos fuzzer's seed families)
// ---------------------------------------------------------------------------

/// Names of every generator family reachable through make_family(), in a
/// fixed order (the fuzzer indexes into this list deterministically).
const std::vector<std::string>& library_families();

/// Instantiate a family by name at a width derived from `n` (each family
/// clamps `n` to its own requirements — e.g. bell is always 2 qubits,
/// hidden_shift rounds down to an even width, grover caps at 3 so the
/// multi-controlled oracle stays QASM-expressible). `seed` parameterizes
/// the randomized families and the secret/shift/marked inputs of the
/// deterministic ones. Throws qdt::Error(BadInput) on unknown names.
Circuit make_family(const std::string& family, std::size_t n,
                    std::uint64_t seed);

}  // namespace qdt::ir
