// qdt::lint — static circuit analysis (no simulation anywhere).
//
// The paper's four data structures each exploit a different *structural*
// property of a circuit: arrays win on small widths, decision diagrams on
// redundancy, tensor networks on contraction topology, the stabilizer
// tableau on Clifford-ness, and MPS on bounded entanglement across linear
// cuts. Every one of those properties is computable from the circuit
// description alone — this header computes them all in one pass-collection
// over an ir::Circuit, without ever materializing a state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/operation.hpp"

namespace qdt::lint {

/// Upper-bound bookkeeping for one linear cut (between qubit `cut - 1` and
/// qubit `cut`, cut in [1, n-1]).
struct CutBound {
  /// Unitary operations whose qubit span crosses this cut.
  std::size_t crossing_ops = 0;
  /// log2 of the peak Schmidt-rank upper bound across this cut, tracking
  /// the TEBD procedure the MPS backend actually executes (including its
  /// temporary routing swaps). Saturates at min(left, right) qubits.
  std::size_t bond_log2 = 0;
};

/// A pair of operation indices found to be redundant.
struct RedundantPair {
  std::size_t first = 0;   // op index of the earlier gate
  std::size_t second = 0;  // op index of the later gate
};

/// One maximal Clifford region (mirror of flow::CliffordRegion, kept as a
/// plain lint-side struct so facts.hpp stays flow-agnostic for consumers).
struct CliffordRegionFact {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t unitary_gates = 0;
};

/// Everything the lint pass knows about a circuit, statically.
struct CircuitFacts {
  // -- Shape ---------------------------------------------------------------
  std::size_t num_qubits = 0;
  std::size_t unitary_gates = 0;
  std::size_t measurements = 0;
  std::size_t depth = 0;

  // -- Clifford structure (Section "stabilizer") ---------------------------
  std::size_t t_count = 0;
  std::size_t clifford_gates = 0;  // unitary ops the tableau can execute
  bool is_clifford = false;        // every unitary op is Clifford
  double clifford_fraction = 1.0;  // clifford_gates / max(unitary_gates, 1)

  // -- Clifford regions (qdt::flow segmentation) ---------------------------
  /// Maximal contiguous tableau-expressible runs [begin, end) in op order;
  /// non-Clifford unitaries split regions, measure/reset/barrier do not.
  std::vector<CliffordRegionFact> clifford_regions;
  /// Unitary gates inside the largest single region.
  std::size_t max_clifford_region_gates = 0;

  // -- Constant-state dataflow (qdt::flow lattice) -------------------------
  /// Fraction of (op, qubit) incidences whose in-state the per-qubit
  /// constant-state lattice proves is one of the six stabilizer states.
  double constant_state_coverage = 0.0;
  /// Operations the lattice proves act as (phased) identities — what
  /// `qdt opt` would delete or fold into the global phase.
  std::size_t constant_identity_ops = 0;

  // -- Qubit liveness ------------------------------------------------------
  /// Qubits no non-barrier operation ever touches.
  std::vector<ir::Qubit> dead_qubits;
  /// Qubits that carry gates but lie outside the backward lightcone of
  /// every measurement (only populated when the circuit measures at all):
  /// their gates cannot influence any observed outcome.
  std::vector<ir::Qubit> unused_ancillas;

  // -- Lightcones ----------------------------------------------------------
  /// Per qubit q: size of the backward cone of influence — how many input
  /// qubits can affect q's final state. dead qubits report 1 (themselves).
  std::vector<std::size_t> lightcone;
  std::size_t max_lightcone = 0;
  double mean_lightcone = 0.0;

  // -- Peephole redundancy -------------------------------------------------
  /// Adjacent (modulo commuting diagonals) gate pairs where the second is
  /// the exact inverse of the first on the same wires: both can be deleted.
  std::vector<RedundantPair> cancelling_pairs;
  /// Adjacent same-axis rotation pairs on the same wires that fold into a
  /// single gate (rz(a) rz(b) -> rz(a+b), t t -> s, s s -> z, ...).
  std::vector<RedundantPair> mergeable_pairs;

  // -- MPS entanglement-cut bound (Section IV) -----------------------------
  std::vector<CutBound> cuts;     // size max(n, 1) - 1
  std::size_t mps_bond_log2 = 0;  // max over cuts of bond_log2
  /// 2^mps_bond_log2, saturated at 2^62 to stay in range.
  std::size_t mps_bond_bound = 1;

  // -- Tensor-network contraction estimate (Section IV) --------------------
  /// log2 of the multiply-add count a greedy contraction of the circuit's
  /// single-amplitude network would spend (static replay of the greedy
  /// planner over label sets — no tensor data is ever allocated).
  double tn_cost_log2 = 0.0;
  /// log2 elements of the largest intermediate tensor under that plan.
  double tn_peak_log2 = 0.0;

  // -- Decision-diagram growth heuristic (Section III) ---------------------
  /// Distinct gate signatures (kind + params + qubit offsets) / gates.
  double gate_diversity = 0.0;
  /// Distinct layer signatures / depth.
  double layer_diversity = 0.0;
  /// [0, 1]: low = redundancy-rich, DD-friendly; high = DD-hostile.
  double dd_growth_score = 0.0;
  /// Heuristic log2 estimate of the peak DD node count.
  double dd_nodes_log2 = 0.0;
};

/// Clifford classification of a single operation. Delegates to
/// flow::is_clifford_op, which mirrors stab::is_clifford_operation exactly
/// (same gate kinds, same phase classes) without depending on the
/// stabilizer backend — tests cross-validate the two against the fuzzer's
/// generator.
bool is_clifford_op(const ir::Operation& op);

/// Operator Schmidt-rank upper bound (log2) of a unitary operation across
/// any cut separating its qubits: 1 for controlled gates and ZZ/XX
/// rotations, 2 for swap-like and generic two-qubit gates.
std::size_t op_schmidt_rank_log2(const ir::Operation& op);

/// One static pass over the circuit; never simulates, never allocates
/// state. Cost: O(gates * qubits) worst case (lightcones dominate).
CircuitFacts analyze(const ir::Circuit& circuit);

}  // namespace qdt::lint
