#include "lint/facts.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "flow/clifford.hpp"
#include "flow/domain.hpp"
#include "ir/gate.hpp"

namespace qdt::lint {

namespace {

using ir::GateKind;
using ir::Operation;
using ir::Qubit;

bool touches_any(const std::vector<Qubit>& qs, const std::vector<char>& mask) {
  return std::any_of(qs.begin(), qs.end(),
                     [&](Qubit q) { return mask[q] != 0; });
}

/// log2-space accumulation: log2(2^a + 2^b) without leaving log space.
double log2_add(double a, double b) {
  if (a < b) {
    std::swap(a, b);
  }
  return a + std::log2(1.0 + std::exp2(b - a));
}

// -- Peephole redundancy -----------------------------------------------------

bool is_rotation_kind(GateKind k) {
  switch (k) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::RZZ:
    case GateKind::RXX:
      return true;
    default:
      return false;
  }
}

/// Parameter-free gates that fold with an identical neighbor into another
/// catalogue gate (t t -> s, s s -> z, sx sx -> x, ...). Self-inverse kinds
/// are excluded — an identical neighbor there is a cancelling pair instead.
bool is_foldable_kind(GateKind k) {
  switch (k) {
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::ISwap:
    case GateKind::ISwapDg:
      return true;
    default:
      return false;
  }
}

void scan_redundancy(const ir::Circuit& circuit, CircuitFacts& facts) {
  // Bounded forward window: peephole passes don't look further either, and
  // it keeps the scan O(gates * window).
  constexpr std::size_t kWindow = 64;
  const auto& ops = circuit.ops();
  std::vector<char> consumed(ops.size(), 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (consumed[i] != 0 || !ops[i].is_unitary()) {
      continue;
    }
    const Operation& a = ops[i];
    const Operation inverse = a.adjoint();
    const auto aq = a.qubits();
    for (std::size_t j = i + 1; j < ops.size() && j - i <= kWindow; ++j) {
      const Operation& b = ops[j];
      if (b.is_barrier()) {
        break;  // barriers exist to block exactly this kind of motion
      }
      const auto bq = b.qubits();
      const bool shares = std::any_of(aq.begin(), aq.end(), [&](Qubit q) {
        return std::find(bq.begin(), bq.end(), q) != bq.end();
      });
      if (!shares) {
        continue;  // disjoint supports always commute
      }
      if (consumed[j] == 0 && b.is_unitary()) {
        // Skip controlled half-turn rotations: their structural adjoint
        // is -1 x the true inverse on the controlled block (cry(pi) ;
        // cry(pi) is Z-on-control, not a cancellation).
        if (b == inverse &&
            !(ir::gate_adjoint_wraps(a.kind(), a.params()) &&
              !a.controls().empty())) {
          facts.cancelling_pairs.push_back({i, j});
          consumed[i] = consumed[j] = 1;
          break;
        }
        const bool same_wires =
            b.kind() == a.kind() && b.targets() == a.targets() &&
            b.controls() == a.controls();
        // Controlled half-angle rotations whose angle sum wraps past the
        // Phase range pick up a -1 on the controlled block; advising the
        // merge would advise a miscompile. Only meaningful (and only safe
        // to evaluate: b must carry a param too) when same_wires holds.
        const auto merge_wraps = [&] {
          const bool half_angle =
              a.kind() == GateKind::RX || a.kind() == GateKind::RY ||
              a.kind() == GateKind::RZ || a.kind() == GateKind::RZZ ||
              a.kind() == GateKind::RXX;
          if (!half_angle || a.controls().empty() || a.params().empty()) {
            return false;  // P-type gates are 2pi-periodic: wraps are exact
          }
          const double exact =
              a.params()[0].radians() + b.params()[0].radians();
          return std::abs(exact -
                          (a.params()[0] + b.params()[0]).radians()) > 1e-9;
        };
        if (same_wires && !merge_wraps() &&
            (is_rotation_kind(a.kind()) || is_foldable_kind(a.kind()))) {
          facts.mergeable_pairs.push_back({i, j});
          consumed[i] = consumed[j] = 1;
          break;
        }
      }
      if (a.is_diagonal() && b.is_diagonal()) {
        continue;  // both diagonal in the computational basis: they commute
      }
      break;  // blocked by a non-commuting gate on a shared wire
    }
  }
}

// -- Lightcones and liveness -------------------------------------------------

void scan_lightcones(const ir::Circuit& circuit, CircuitFacts& facts) {
  const std::size_t n = circuit.num_qubits();
  const auto& ops = circuit.ops();
  facts.lightcone.assign(n, 1);
  for (std::size_t q = 0; q < n; ++q) {
    std::vector<char> cone(n, 0);
    cone[q] = 1;
    std::size_t size = 1;
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
      if (it->is_barrier()) {
        continue;
      }
      const auto qs = it->qubits();
      if (!touches_any(qs, cone)) {
        continue;
      }
      for (const Qubit p : qs) {
        if (cone[p] == 0) {
          cone[p] = 1;
          ++size;
        }
      }
    }
    facts.lightcone[q] = size;
    facts.max_lightcone = std::max(facts.max_lightcone, size);
  }
  double sum = 0.0;
  for (const auto s : facts.lightcone) {
    sum += static_cast<double>(s);
  }
  facts.mean_lightcone = n == 0 ? 0.0 : sum / static_cast<double>(n);

  // Dead qubits: untouched by any non-barrier operation.
  std::vector<char> touched(n, 0);
  for (const auto& op : ops) {
    if (op.is_barrier()) {
      continue;
    }
    for (const Qubit q : op.qubits()) {
      touched[q] = 1;
    }
  }
  for (std::size_t q = 0; q < n; ++q) {
    if (touched[q] == 0) {
      facts.dead_qubits.push_back(static_cast<Qubit>(q));
    }
  }

  // Unused ancillas: qubits with gates outside every measurement's backward
  // cone. Only meaningful when something is measured; the cone is an
  // over-approximation (resets kept as influence carriers), so a reported
  // ancilla really is dead code.
  if (facts.measurements == 0) {
    return;
  }
  std::vector<char> cone(n, 0);
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    if (it->is_barrier()) {
      continue;
    }
    const auto qs = it->qubits();
    if (it->is_measurement()) {
      for (const Qubit q : qs) {
        cone[q] = 1;
      }
      continue;
    }
    if (touches_any(qs, cone)) {
      for (const Qubit q : qs) {
        cone[q] = 1;
      }
    }
  }
  for (std::size_t q = 0; q < n; ++q) {
    if (touched[q] != 0 && cone[q] == 0) {
      facts.unused_ancillas.push_back(static_cast<Qubit>(q));
    }
  }
}

// -- MPS entanglement-cut bound ----------------------------------------------

void scan_cut_bounds(const ir::Circuit& circuit, CircuitFacts& facts) {
  const std::size_t n = circuit.num_qubits();
  if (n < 2) {
    facts.mps_bond_log2 = 0;
    facts.mps_bond_bound = 1;
    return;
  }
  facts.cuts.assign(n - 1, {});
  // d[c]: running log2 upper bound on the bond at cut c (between sites
  // c - 1 and c), replaying the TEBD procedure the MPS backend runs: every
  // adjacent two-site update's SVD rank is at most min(2 * left bond,
  // 2 * right bond, old bond * operator Schmidt rank, 2^min(c, n-c)).
  std::vector<std::size_t> d(n + 1, 0);
  std::vector<std::size_t> peak(n + 1, 0);
  const auto dim_cap = [n](std::size_t c) { return std::min(c, n - c); };
  const auto apply_adjacent = [&](std::size_t left, std::size_t rank_log2) {
    const std::size_t c = left + 1;
    const std::size_t nd =
        std::min({d[c - 1] + 1, d[c + 1] + 1, d[c] + rank_log2, dim_cap(c)});
    d[c] = nd;
    peak[c] = std::max(peak[c], nd);
  };
  for (const auto& op : circuit.ops()) {
    if (!op.is_unitary()) {
      continue;  // measurement/reset can only shrink entanglement
    }
    auto qs = op.qubits();
    if (qs.size() < 2) {
      continue;
    }
    const auto [lo_it, hi_it] = std::minmax_element(qs.begin(), qs.end());
    const std::size_t lo = *lo_it;
    const std::size_t hi = *hi_it;
    for (std::size_t c = lo + 1; c <= hi; ++c) {
      ++facts.cuts[c - 1].crossing_ops;
    }
    if (qs.size() == 2) {
      const std::size_t r = op_schmidt_rank_log2(op);
      // Route the far site down with temporary swaps (rank-4 operators),
      // apply at (lo, lo+1), route back — exactly MPS::apply's walk.
      for (std::size_t k = hi; k > lo + 1; --k) {
        apply_adjacent(k - 1, 2);
      }
      apply_adjacent(lo, r);
      for (std::size_t k = lo + 1; k < hi; ++k) {
        apply_adjacent(k, 2);
      }
    } else {
      // 3+ qubits reach the MPS only after decomposition into an unknown
      // two-qubit sequence over these wires — saturate the crossed cuts.
      for (std::size_t c = lo + 1; c <= hi; ++c) {
        d[c] = dim_cap(c);
        peak[c] = std::max(peak[c], d[c]);
      }
    }
  }
  for (std::size_t c = 1; c < n; ++c) {
    facts.cuts[c - 1].bond_log2 = peak[c];
    facts.mps_bond_log2 = std::max(facts.mps_bond_log2, peak[c]);
  }
  const std::size_t capped = std::min<std::size_t>(facts.mps_bond_log2, 62);
  facts.mps_bond_bound = std::size_t{1} << capped;
}

// -- Static greedy contraction replay ----------------------------------------

using LabelSet = std::vector<std::int64_t>;  // sorted, unique

std::size_t shared_count(const LabelSet& a, const LabelSet& b) {
  std::size_t shared = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++shared;
      ++ia;
      ++ib;
    }
  }
  return shared;
}

LabelSet symmetric_difference(const LabelSet& a, const LabelSet& b) {
  LabelSet out;
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(out));
  return out;
}

void scan_tn_cost(const ir::Circuit& circuit, CircuitFacts& facts) {
  // Replay tn::circuit_network + the greedy planner over bare label sets
  // (every bond has dimension 2, so a tensor is just its label set): the
  // flop count and peak size of a plan depend on nothing else. Large
  // circuits are estimated from a prefix and scaled — this is a cost
  // *model*, not an execution.
  constexpr std::size_t kMaxGates = 384;
  const std::size_t n = circuit.num_qubits();
  std::int64_t next_label = 0;
  std::vector<std::int64_t> wire(n);
  std::vector<LabelSet> nodes;
  for (std::size_t q = 0; q < n; ++q) {
    wire[q] = next_label++;
    nodes.push_back({wire[q]});  // |0> ket
  }
  std::size_t modeled = 0;
  std::size_t total = 0;
  for (const auto& op : circuit.ops()) {
    if (!op.is_unitary()) {
      continue;
    }
    ++total;
    if (modeled >= kMaxGates) {
      continue;
    }
    ++modeled;
    LabelSet labels;
    for (const ir::Qubit q : op.qubits()) {
      labels.push_back(wire[q]);
      wire[q] = next_label++;
      labels.push_back(wire[q]);
    }
    std::sort(labels.begin(), labels.end());
    nodes.push_back(std::move(labels));
  }
  for (std::size_t q = 0; q < n; ++q) {
    nodes.push_back({wire[q]});  // <basis| cap: single-amplitude network
  }

  double flops_log2 = -1e300;  // log2(0)
  double peak_log2 = 0.0;
  while (nodes.size() > 1) {
    // Greedy: among pairs sharing at least one label, contract the pair
    // with the smallest result; break ties by flop cost.
    std::size_t best_a = 0;
    std::size_t best_b = 0;
    std::size_t best_size = static_cast<std::size_t>(-1);
    std::size_t best_flops = static_cast<std::size_t>(-1);
    for (std::size_t a = 0; a < nodes.size(); ++a) {
      for (std::size_t b = a + 1; b < nodes.size(); ++b) {
        const std::size_t shared = shared_count(nodes[a], nodes[b]);
        if (shared == 0) {
          continue;
        }
        const std::size_t union_size =
            nodes[a].size() + nodes[b].size() - shared;
        const std::size_t result_size = union_size - shared;
        if (result_size < best_size ||
            (result_size == best_size && union_size < best_flops)) {
          best_size = result_size;
          best_flops = union_size;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_size == static_cast<std::size_t>(-1)) {
      break;  // disconnected components: outer products are free-ish
    }
    flops_log2 = log2_add(flops_log2, static_cast<double>(best_flops));
    peak_log2 = std::max(peak_log2, static_cast<double>(best_size));
    LabelSet merged = symmetric_difference(nodes[best_a], nodes[best_b]);
    nodes.erase(nodes.begin() + static_cast<std::ptrdiff_t>(best_b));
    nodes[best_a] = std::move(merged);
  }
  if (flops_log2 < 0.0) {
    flops_log2 = 0.0;
  }
  if (total > modeled && modeled > 0) {
    // Extrapolate the unmodeled tail linearly in gate count.
    flops_log2 += std::log2(static_cast<double>(total) /
                            static_cast<double>(modeled));
  }
  facts.tn_cost_log2 = flops_log2;
  facts.tn_peak_log2 = peak_log2;
}

// -- Decision-diagram growth heuristic ----------------------------------------

void scan_dd_heuristic(const ir::Circuit& circuit, CircuitFacts& facts) {
  const std::size_t n = circuit.num_qubits();
  // Signature = kind + params + qubit *offsets*: a CX ladder is one
  // signature no matter where it sits, which is exactly the redundancy the
  // unique table exploits.
  const auto signature = [](const Operation& op) {
    std::ostringstream os;
    os << ir::gate_name(op.kind());
    for (const auto& p : op.params()) {
      os << ',' << p.str();
    }
    const auto qs = op.qubits();
    for (const auto q : qs) {
      os << ';' << (static_cast<std::int64_t>(q) -
                    static_cast<std::int64_t>(qs[0]));
    }
    return os.str();
  };
  std::set<std::string> gate_sigs;
  std::map<std::size_t, std::multiset<std::string>> layers;
  std::vector<std::size_t> qubit_layer(n, 0);
  std::size_t unitary = 0;
  for (const auto& op : circuit.ops()) {
    if (!op.is_unitary()) {
      continue;
    }
    ++unitary;
    const std::string sig = signature(op);
    gate_sigs.insert(sig);
    std::size_t layer = 0;
    for (const auto q : op.qubits()) {
      layer = std::max(layer, qubit_layer[q]);
    }
    layers[layer].insert(sig);
    for (const auto q : op.qubits()) {
      qubit_layer[q] = layer + 1;
    }
  }
  if (unitary == 0) {
    facts.gate_diversity = 0.0;
    facts.layer_diversity = 0.0;
    facts.dd_growth_score = 0.0;
    facts.dd_nodes_log2 = std::log2(static_cast<double>(n) + 1.0);
    return;
  }
  facts.gate_diversity = static_cast<double>(gate_sigs.size()) /
                         static_cast<double>(unitary);
  std::set<std::string> layer_sigs;
  for (const auto& [layer, sigs] : layers) {
    std::string joined;
    for (const auto& s : sigs) {
      joined += s;
      joined += '|';
    }
    layer_sigs.insert(std::move(joined));
  }
  facts.layer_diversity = static_cast<double>(layer_sigs.size()) /
                          static_cast<double>(layers.size());
  // Redundancy-poor, T-heavy circuits are where decision diagrams blow up
  // (Section III); weights are calibrated on the ir::library families —
  // see DESIGN.md "Static backend-cost prediction".
  const double t_pressure =
      std::min(1.0, static_cast<double>(facts.t_count) /
                        std::max(1.0, static_cast<double>(n)));
  facts.dd_growth_score =
      std::clamp(0.45 * facts.gate_diversity + 0.25 * facts.layer_diversity +
                     0.30 * t_pressure,
                 0.0, 1.0);
  facts.dd_nodes_log2 =
      std::min(static_cast<double>(n),
               1.0 + std::log2(static_cast<double>(n) + 1.0) +
                   facts.dd_growth_score * 0.75 * static_cast<double>(n));
}

}  // namespace

bool is_clifford_op(const Operation& op) { return flow::is_clifford_op(op); }

std::size_t op_schmidt_rank_log2(const Operation& op) {
  if (op.num_qubits() < 2) {
    return 0;
  }
  if (!op.controls().empty()) {
    return 1;  // P (x) U + (1-P) (x) I: two terms
  }
  switch (op.kind()) {
    case GateKind::RZZ:
    case GateKind::RXX:
      return 1;  // cos * II - i sin * PP: two terms
    case GateKind::Swap:
    case GateKind::ISwap:
    case GateKind::ISwapDg:
    default:
      return 2;
  }
}

CircuitFacts analyze(const ir::Circuit& circuit) {
  CircuitFacts facts;
  const auto stats = circuit.stats();
  facts.num_qubits = stats.num_qubits;
  facts.unitary_gates = stats.total_gates;
  facts.measurements = stats.measurements;
  facts.depth = stats.depth;
  facts.t_count = stats.t_count;

  facts.clifford_gates = 0;
  bool all_clifford = true;
  for (const auto& op : circuit.ops()) {
    if (!op.is_unitary()) {
      continue;
    }
    if (is_clifford_op(op)) {
      ++facts.clifford_gates;
    } else {
      all_clifford = false;
    }
  }
  facts.is_clifford = all_clifford;
  facts.clifford_fraction =
      static_cast<double>(facts.clifford_gates) /
      static_cast<double>(std::max<std::size_t>(facts.unitary_gates, 1));

  for (const auto& region : flow::clifford_regions(circuit)) {
    facts.clifford_regions.push_back(
        {region.begin, region.end, region.unitary_gates});
    facts.max_clifford_region_gates =
        std::max(facts.max_clifford_region_gates, region.unitary_gates);
  }
  const flow::StateAnalysis state_flow = flow::analyze_states(circuit);
  facts.constant_state_coverage = state_flow.coverage;
  facts.constant_identity_ops = state_flow.identity_ops;

  scan_lightcones(circuit, facts);
  scan_redundancy(circuit, facts);
  scan_cut_bounds(circuit, facts);
  scan_tn_cost(circuit, facts);
  scan_dd_heuristic(circuit, facts);
  return facts;
}

}  // namespace qdt::lint
