#include "lint/cost.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace qdt::lint {

namespace {

double log2_gates(const CircuitFacts& f) {
  return std::log2(static_cast<double>(f.unitary_gates) + 1.0);
}

double log2_qubits(const CircuitFacts& f) {
  return std::log2(static_cast<double>(f.num_qubits) + 1.0);
}

std::string fmt1(double v) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << v;
  return os.str();
}

CostEstimate estimate_stabilizer(const CircuitFacts& f,
                                 const PlanConstraints& c) {
  CostEstimate e;
  e.backend = Backend::Stabilizer;
  // 2n Pauli rows, O(n/64) words touched per gate: the packed tableau
  // processes 64 qubits per word, so the old +4 bit-fiddling constant
  // drops by log2(64) to -2; arrays still win only at trivial widths.
  e.cost_log2 = log2_gates(f) + 2.0 * log2_qubits(f) - 2.0;
  // A single unbroken Clifford region means one uninterrupted tableau run:
  // no mid-circuit re-dispatch, so the constant factor tightens.
  const bool one_region = f.is_clifford && f.clifford_regions.size() <= 1;
  if (one_region) {
    e.cost_log2 -= 1.0;
  }
  if (!f.is_clifford) {
    e.feasible = false;
    e.rationale = "circuit has non-Clifford gates";
  } else if (c.want_state) {
    e.feasible = false;
    e.rationale = "tableau cannot produce a dense state";
  } else if (c.has_noise) {
    e.feasible = false;
    e.rationale = "tableau is noise-free";
  } else if (one_region) {
    e.rationale = "single Clifford region: one uninterrupted tableau run";
  } else {
    e.rationale = "Clifford circuit: polynomial tableau";
  }
  return e;
}

CostEstimate estimate_array(const CircuitFacts& f) {
  CostEstimate e;
  e.backend = Backend::Array;
  // g gate sweeps over 2^n amplitudes.
  e.cost_log2 = static_cast<double>(f.num_qubits) + log2_gates(f);
  e.rationale = "dense sweep over 2^" + std::to_string(f.num_qubits) +
                " amplitudes";
  return e;
}

CostEstimate estimate_dd(const CircuitFacts& f) {
  CostEstimate e;
  e.backend = Backend::DecisionDiagram;
  // Work per gate scales with the node count the redundancy heuristic
  // predicts; +2: unique/compute-table constants per node.
  e.cost_log2 = log2_gates(f) + f.dd_nodes_log2 + 2.0;
  e.rationale = "growth score " + fmt1(f.dd_growth_score) +
                ", ~2^" + fmt1(f.dd_nodes_log2) + " nodes";
  return e;
}

CostEstimate estimate_mps(const CircuitFacts& f, const PlanConstraints& c) {
  CostEstimate e;
  e.backend = Backend::Mps;
  const double bond = static_cast<double>(f.mps_bond_log2);
  // Per-gate SVD at bond D costs O(D^3); +7: dense SVD constants.
  e.cost_log2 = log2_gates(f) + 3.0 * bond + 7.0;
  if (c.has_noise) {
    e.feasible = false;
    e.rationale = "MPS backend is noise-free";
  } else {
    e.rationale = "entanglement-cut bound 2^" +
                  std::to_string(f.mps_bond_log2);
  }
  return e;
}

CostEstimate estimate_tn(const CircuitFacts& f, const PlanConstraints& c) {
  CostEstimate e;
  e.backend = Backend::TensorNetwork;
  // Greedy single-amplitude contraction estimate; a dense-state request
  // re-opens every output wire, so it can never beat the 2^n sweep.
  double cost = f.tn_cost_log2 + 4.0;
  if (c.want_state) {
    cost = std::max(cost, static_cast<double>(f.num_qubits) + log2_gates(f) +
                              4.0);
  }
  e.cost_log2 = cost;
  if (c.has_noise) {
    e.feasible = false;
    e.rationale = "tensor-network backend is noise-free";
  } else {
    e.rationale = "greedy contraction ~2^" + fmt1(f.tn_cost_log2) +
                  " flops, peak 2^" + fmt1(f.tn_peak_log2);
  }
  return e;
}

}  // namespace

const char* backend_label(Backend b) {
  switch (b) {
    case Backend::Array:
      return "array";
    case Backend::DecisionDiagram:
      return "decision-diagram";
    case Backend::TensorNetwork:
      return "tensor-network";
    case Backend::Mps:
      return "mps";
    case Backend::Stabilizer:
      return "stabilizer";
  }
  return "?";
}

const char* verify_method_label(VerifyMethod m) {
  switch (m) {
    case VerifyMethod::Array:
      return "array";
    case VerifyMethod::DdAlternating:
      return "dd-alternating";
    case VerifyMethod::DdSequential:
      return "dd-sequential";
    case VerifyMethod::DdSimulative:
      return "dd-simulative";
    case VerifyMethod::Zx:
      return "zx";
  }
  return "?";
}

BackendPlan plan_backends(const CircuitFacts& facts,
                          const PlanConstraints& constraints) {
  BackendPlan plan;
  plan.estimates = {
      estimate_stabilizer(facts, constraints),
      estimate_array(facts),
      estimate_dd(facts),
      estimate_mps(facts, constraints),
      estimate_tn(facts, constraints),
  };
  std::stable_sort(plan.estimates.begin(), plan.estimates.end(),
                   [](const CostEstimate& a, const CostEstimate& b) {
                     if (a.feasible != b.feasible) {
                       return a.feasible;
                     }
                     return a.cost_log2 < b.cost_log2;
                   });
  for (const auto& e : plan.estimates) {
    if (e.feasible) {
      plan.preferred_order.push_back(e.backend);
    }
  }
  return plan;
}

std::vector<VerifyMethod> plan_verify(const CircuitFacts& a,
                                      const CircuitFacts& b) {
  if (a.is_clifford && b.is_clifford) {
    // Graph-like ZX reduction is complete on Clifford diagrams — the
    // rewriting cannot stall, so it leads the ladder.
    return {VerifyMethod::Zx, VerifyMethod::DdAlternating,
            VerifyMethod::DdSimulative};
  }
  return {VerifyMethod::DdAlternating, VerifyMethod::Zx,
          VerifyMethod::DdSimulative};
}

}  // namespace qdt::lint
