// qdt::lint — diagnostics and the lint report.
//
// run() bundles the static facts, the backend plan, and a list of
// compiler-style diagnostics (dead qubits, unused ancillas, trivially
// cancelling pairs, foldable rotations) into one Report; to_json() renders
// it for the `qdt lint` CLI subcommand.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "lint/cost.hpp"
#include "lint/facts.hpp"

namespace qdt::lint {

enum class Severity { Info, Warning };

const char* severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::Info;
  /// Stable machine-readable code: "dead-qubit", "unused-ancilla",
  /// "cancelling-pair", "mergeable-rotation", "clifford-circuit",
  /// "low-entanglement".
  std::string code;
  std::string message;
  std::optional<ir::Qubit> qubit;
  std::optional<std::size_t> op_index;
};

struct Report {
  CircuitFacts facts;
  BackendPlan plan;
  std::vector<Diagnostic> diagnostics;

  std::size_t warnings() const;
  /// True when no Warning-severity diagnostic was emitted.
  bool clean() const { return warnings() == 0; }
};

/// Analyze, plan, and diagnose — the whole pass. Never simulates.
Report run(const ir::Circuit& circuit, const PlanConstraints& constraints = {});

/// The full report as a JSON object (facts, plan, diagnostics).
std::string to_json(const Report& report);

}  // namespace qdt::lint
