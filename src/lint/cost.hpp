// qdt::lint — static backend-cost prediction.
//
// Given the CircuitFacts, predict how much work each of the five simulation
// backends would spend *without running any of them*, and rank them. The
// result is a BackendPlan that core::simulate_robust consumes to reorder
// the guard fallback ladder statically: stabilizer first when the circuit
// is Clifford, MPS first when the entanglement-cut bound is small, and so
// on — instead of discovering the right backend by paying for failures at
// runtime.
//
// The lint layer cannot name core::SimBackend (core sits above lint), so
// the plan speaks its own Backend enum; core::tasks maps it 1:1.
#pragma once

#include <string>
#include <vector>

#include "lint/facts.hpp"

namespace qdt::lint {

/// Mirror of core::SimBackend (kept in this order; core maps by switch).
enum class Backend {
  Array,
  DecisionDiagram,
  TensorNetwork,
  Mps,
  Stabilizer,
};

const char* backend_label(Backend b);

/// Mirror of core::EcMethod for the verification ladder.
enum class VerifyMethod {
  Array,
  DdAlternating,
  DdSequential,
  DdSimulative,
  Zx,
};

const char* verify_method_label(VerifyMethod m);

/// What the caller needs from the simulation — some backends cannot serve
/// some requests at all (the tableau has no dense state; only arrays and
/// decision diagrams carry noise), and the ranking must know.
struct PlanConstraints {
  bool want_state = false;
  bool has_noise = false;
};

struct CostEstimate {
  Backend backend = Backend::Array;
  bool feasible = true;
  /// Predicted work on a log2 scale (comparable across backends; the
  /// absolute value is a model, the *ordering* is the contract).
  double cost_log2 = 0.0;
  std::string rationale;
};

struct BackendPlan {
  /// All five backends with their estimates, feasible-and-cheapest first.
  std::vector<CostEstimate> estimates;
  /// Feasible backends only, cheapest first — the ladder order.
  std::vector<Backend> preferred_order;
};

/// Rank the backends for simulating a circuit with these facts.
BackendPlan plan_backends(const CircuitFacts& facts,
                          const PlanConstraints& constraints = {});

/// Rank the equivalence-checking methods for a pair of circuits: ZX
/// rewriting leads when both sides are Clifford (graph-like reduction is
/// complete there), the alternating DD miter otherwise; the simulative
/// check always anchors the ladder as evidence-only last resort.
std::vector<VerifyMethod> plan_verify(const CircuitFacts& a,
                                      const CircuitFacts& b);

}  // namespace qdt::lint
