#include "lint/lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "obs/obs.hpp"
#include "trace/trace.hpp"

namespace qdt::lint {

namespace {

obs::Counter& g_runs = obs::counter("qdt.lint.pass.runs");
obs::Counter& g_warnings = obs::counter("qdt.lint.pass.warnings");

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_json_double(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no Infinity/NaN
    return;
  }
  std::ostringstream tmp;
  tmp.precision(6);
  tmp << v;
  os << tmp.str();
}

void diagnose(const ir::Circuit& circuit, Report& report) {
  const CircuitFacts& f = report.facts;
  auto& out = report.diagnostics;
  for (const auto q : f.dead_qubits) {
    Diagnostic d;
    d.severity = Severity::Warning;
    d.code = "dead-qubit";
    d.message = "qubit " + std::to_string(q) +
                " is never touched by any operation";
    d.qubit = q;
    out.push_back(std::move(d));
  }
  for (const auto q : f.unused_ancillas) {
    Diagnostic d;
    d.severity = Severity::Warning;
    d.code = "unused-ancilla";
    d.message = "qubit " + std::to_string(q) +
                " carries gates but cannot influence any measurement";
    d.qubit = q;
    out.push_back(std::move(d));
  }
  for (const auto& pair : f.cancelling_pairs) {
    Diagnostic d;
    d.severity = Severity::Warning;
    d.code = "cancelling-pair";
    d.message = "ops " + std::to_string(pair.first) + " and " +
                std::to_string(pair.second) + " cancel (" +
                circuit[pair.first].str() + " ; " +
                circuit[pair.second].str() + ")";
    d.op_index = pair.first;
    out.push_back(std::move(d));
  }
  for (const auto& pair : f.mergeable_pairs) {
    Diagnostic d;
    d.severity = Severity::Warning;
    d.code = "mergeable-rotation";
    d.message = "ops " + std::to_string(pair.first) + " and " +
                std::to_string(pair.second) + " fold into one gate (" +
                circuit[pair.first].str() + " ; " +
                circuit[pair.second].str() + ")";
    d.op_index = pair.first;
    out.push_back(std::move(d));
  }
  if (f.is_clifford && f.unitary_gates > 0) {
    Diagnostic d;
    d.code = "clifford-circuit";
    d.message = "every gate is Clifford: the stabilizer tableau simulates "
                "this in polynomial time";
    out.push_back(std::move(d));
  }
  if (f.num_qubits >= 2 && f.mps_bond_log2 <= 4 && f.unitary_gates > 0) {
    Diagnostic d;
    d.code = "low-entanglement";
    d.message = "entanglement-cut bound is 2^" +
                std::to_string(f.mps_bond_log2) +
                ": MPS memory stays linear in qubits";
    out.push_back(std::move(d));
  }
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Info:
      return "info";
    case Severity::Warning:
      return "warning";
  }
  return "?";
}

std::size_t Report::warnings() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Warning;
                    }));
}

Report run(const ir::Circuit& circuit, const PlanConstraints& constraints) {
  trace::Span span("qdt.lint.pass.run");
  span.attr("qubits", static_cast<std::uint64_t>(circuit.num_qubits()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()));
  Report report;
  report.facts = analyze(circuit);
  report.plan = plan_backends(report.facts, constraints);
  diagnose(circuit, report);
  g_runs.add();
  g_warnings.add(report.warnings());
  return report;
}

std::string to_json(const Report& report) {
  const CircuitFacts& f = report.facts;
  std::ostringstream os;
  os << "{\"facts\":{";
  os << "\"qubits\":" << f.num_qubits;
  os << ",\"gates\":" << f.unitary_gates;
  os << ",\"measurements\":" << f.measurements;
  os << ",\"depth\":" << f.depth;
  os << ",\"t_count\":" << f.t_count;
  os << ",\"clifford\":" << (f.is_clifford ? "true" : "false");
  os << ",\"clifford_fraction\":";
  append_json_double(os, f.clifford_fraction);
  os << ",\"clifford_regions\":[";
  for (std::size_t i = 0; i < f.clifford_regions.size(); ++i) {
    const auto& region = f.clifford_regions[i];
    os << (i > 0 ? "," : "") << "{\"begin\":" << region.begin
       << ",\"end\":" << region.end
       << ",\"unitary_gates\":" << region.unitary_gates << '}';
  }
  os << "],\"max_clifford_region_gates\":" << f.max_clifford_region_gates;
  os << ",\"constant_state_coverage\":";
  append_json_double(os, f.constant_state_coverage);
  os << ",\"constant_identity_ops\":" << f.constant_identity_ops;
  os << ",\"dead_qubits\":[";
  for (std::size_t i = 0; i < f.dead_qubits.size(); ++i) {
    os << (i > 0 ? "," : "") << f.dead_qubits[i];
  }
  os << "],\"unused_ancillas\":[";
  for (std::size_t i = 0; i < f.unused_ancillas.size(); ++i) {
    os << (i > 0 ? "," : "") << f.unused_ancillas[i];
  }
  os << "],\"lightcone\":[";
  for (std::size_t i = 0; i < f.lightcone.size(); ++i) {
    os << (i > 0 ? "," : "") << f.lightcone[i];
  }
  os << "],\"max_lightcone\":" << f.max_lightcone;
  os << ",\"cancelling_pairs\":" << f.cancelling_pairs.size();
  os << ",\"mergeable_pairs\":" << f.mergeable_pairs.size();
  os << ",\"mps_bond_log2\":" << f.mps_bond_log2;
  os << ",\"mps_bond_bound\":" << f.mps_bond_bound;
  os << ",\"tn_cost_log2\":";
  append_json_double(os, f.tn_cost_log2);
  os << ",\"tn_peak_log2\":";
  append_json_double(os, f.tn_peak_log2);
  os << ",\"gate_diversity\":";
  append_json_double(os, f.gate_diversity);
  os << ",\"layer_diversity\":";
  append_json_double(os, f.layer_diversity);
  os << ",\"dd_growth_score\":";
  append_json_double(os, f.dd_growth_score);
  os << ",\"dd_nodes_log2\":";
  append_json_double(os, f.dd_nodes_log2);
  os << "},\"plan\":[";
  for (std::size_t i = 0; i < report.plan.estimates.size(); ++i) {
    const auto& e = report.plan.estimates[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"backend\":";
    append_json_string(os, backend_label(e.backend));
    os << ",\"feasible\":" << (e.feasible ? "true" : "false");
    os << ",\"cost_log2\":";
    append_json_double(os, e.cost_log2);
    os << ",\"rationale\":";
    append_json_string(os, e.rationale);
    os << '}';
  }
  os << "],\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const auto& d = report.diagnostics[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"severity\":";
    append_json_string(os, severity_name(d.severity));
    os << ",\"code\":";
    append_json_string(os, d.code);
    os << ",\"message\":";
    append_json_string(os, d.message);
    if (d.qubit.has_value()) {
      os << ",\"qubit\":" << *d.qubit;
    }
    if (d.op_index.has_value()) {
      os << ",\"op\":" << *d.op_index;
    }
    os << '}';
  }
  os << "],\"warnings\":" << report.warnings();
  os << ",\"clean\":" << (report.clean() ? "true" : "false") << '}';
  return os.str();
}

}  // namespace qdt::lint
