// qdt::obs — the process-wide metrics layer shared by all four backends.
// Counters, gauges, and histograms live in a named registry; writes go to
// lock-free per-thread shards and are merged on read, so the DD package
// can bump a counter per compute-table lookup without cross-core
// contention. Snapshots export as JSON or Prometheus text.
//
// Execution tracing lives one layer up in qdt::trace (attributed spans
// with parent/thread ids and Perfetto export); the Snapshot below keeps
// its flat `spans` view, filled from the trace ring by
// trace::fill_obs_spans(), so the metrics JSON shape is unchanged.
//
// Metric names follow `qdt.<layer>.<component>.<metric>` (enforced by
// tools/check_metrics_names.py); see the README's Observability section for
// the catalogue.
//
// The whole layer compiles down to no-ops when the QDT_OBS_ENABLED CMake
// option is OFF: the classes below keep their interfaces but every method
// becomes an empty inline, so instrumented call sites vanish at -O2. The
// monotonic clock helpers (Stopwatch) stay real in both builds — they feed
// the `seconds` fields of the task results.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#ifndef QDT_OBS_ENABLED
#define QDT_OBS_ENABLED 1
#endif

namespace qdt::obs {

// ---------------------------------------------------------------------------
// Monotonic clock (always real, even in no-op builds)
// ---------------------------------------------------------------------------

/// Seconds on a monotonic clock (arbitrary epoch, never goes backwards).
double monotonic_seconds();

/// The single timing helper used for every `seconds` result field — no
/// call site rolls its own std::chrono arithmetic.
class Stopwatch {
 public:
  Stopwatch() : start_(monotonic_seconds()) {}
  void restart() { start_ = monotonic_seconds(); }
  double seconds() const { return monotonic_seconds() - start_; }

 private:
  double start_;
};

// ---------------------------------------------------------------------------
// Snapshot (always defined; empty when the layer is compiled out)
// ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;          // inclusive upper bounds, ascending
  std::vector<std::uint64_t> counts;   // bounds.size() + 1 (last: overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Flat span view (filled from qdt::trace by trace::fill_obs_spans).
struct SpanSample {
  std::string name;
  std::size_t depth = 0;      // nesting level, recovered from parent ids
  double start_seconds = 0.0; // monotonic_seconds() at span entry
  double seconds = 0.0;       // duration
};

struct Snapshot {
  bool enabled = false;
  std::vector<CounterSample> counters;      // sorted by name
  std::vector<GaugeSample> gauges;          // sorted by name
  std::vector<HistogramSample> histograms;  // sorted by name
  std::vector<SpanSample> spans;            // completion order
  std::uint64_t spans_dropped = 0;

  /// nullptr when the name is not present.
  const CounterSample* find_counter(std::string_view name) const;
  const GaugeSample* find_gauge(std::string_view name) const;
  const HistogramSample* find_histogram(std::string_view name) const;
};

/// Snapshot as a JSON object (counters/gauges keyed by metric name).
std::string to_json(const Snapshot& snap);

/// Snapshot in the Prometheus text exposition format (dots become
/// underscores; histograms get cumulative `_bucket{le=...}` series).
std::string to_prometheus(const Snapshot& snap);

/// Default duration buckets for timing histograms: 100ns .. 10s, decades.
const std::vector<double>& default_time_bounds();

#if QDT_OBS_ENABLED

// ---------------------------------------------------------------------------
// Metric primitives (enabled build)
// ---------------------------------------------------------------------------

/// Monotone counter. Each thread writes its own cache-line-sized shard with
/// a relaxed fetch-add; value() merges the shards.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t v = 1) noexcept {
    shards_[shard_index()].v.fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }
  void reset() noexcept {
    for (auto& s : shards_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t shard_index() noexcept;
  std::array<Shard, kShards> shards_{};
};

/// Point-in-time value with set/add/max semantics (high-water marks).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    v_.fetch_add(v, std::memory_order_relaxed);
  }
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bound histogram: observation v lands in the first bucket with
/// v <= bound (Prometheus `le` semantics); larger values go to overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept;
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Look up (creating on first use) a metric. References stay valid for the
/// process lifetime — cache them in a static at the call site.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
/// `bounds` is only consulted on first creation; pass nothing for the
/// default duration buckets.
Histogram& histogram(std::string_view name);
Histogram& histogram(std::string_view name, std::vector<double> bounds);

/// Consistent point-in-time copy of every registered metric. The `spans`
/// field stays empty here — overlay it with trace::fill_obs_spans().
Snapshot snapshot();

/// Zero every metric (registrations survive).
void reset();

/// Sample the process peak RSS (getrusage) into the
/// `qdt.process.mem.rss_peak_mb` gauge. Cheap; call it right before any
/// snapshot that should carry memory data.
void sample_process_rss();

/// RAII timer: observes the scope's duration into a histogram on exit.
/// Compiles to nothing (no clock calls) in no-op builds.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(h), start_(monotonic_seconds()) {}
  ~ScopedTimer() { h_.observe(monotonic_seconds() - start_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& h_;
  double start_;
};

#else  // !QDT_OBS_ENABLED

// ---------------------------------------------------------------------------
// No-op build: identical interfaces, empty inline bodies. Instrumented
// call sites compile away entirely.
// ---------------------------------------------------------------------------

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void update_max(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  void observe(double) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  double sum() const noexcept { return 0.0; }
  const std::vector<double>& bounds() const noexcept {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  std::vector<std::uint64_t> bucket_counts() const { return {}; }
  void reset() noexcept {}
};

inline Counter& counter(std::string_view) {
  static Counter c;
  return c;
}
inline Gauge& gauge(std::string_view) {
  static Gauge g;
  return g;
}
inline Histogram& histogram(std::string_view) {
  static Histogram h;
  return h;
}
inline Histogram& histogram(std::string_view, std::vector<double>) {
  static Histogram h;
  return h;
}

inline Snapshot snapshot() { return Snapshot{}; }
inline void reset() {}
inline void sample_process_rss() {}

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif  // QDT_OBS_ENABLED

}  // namespace qdt::obs
