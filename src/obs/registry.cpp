#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace qdt::obs {

double monotonic_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

const std::vector<double>& default_time_bounds() {
  static const std::vector<double> kBounds = {1e-7, 1e-6, 1e-5, 1e-4, 1e-3,
                                              1e-2, 1e-1, 1.0,  10.0};
  return kBounds;
}

namespace {

template <typename T>
const T* find_sample(const std::vector<T>& v, std::string_view name) {
  for (const auto& s : v) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

}  // namespace

const CounterSample* Snapshot::find_counter(std::string_view name) const {
  return find_sample(counters, name);
}

const GaugeSample* Snapshot::find_gauge(std::string_view name) const {
  return find_sample(gauges, name);
}

const HistogramSample* Snapshot::find_histogram(
    std::string_view name) const {
  return find_sample(histograms, name);
}

#if QDT_OBS_ENABLED

// ---------------------------------------------------------------------------
// Counter sharding
// ---------------------------------------------------------------------------

std::size_t Counter::shard_index() noexcept {
  // Threads get distinct shards in arrival order; beyond kShards threads
  // the assignment wraps, which only costs contention, never correctness.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

class Registry {
 public:
  static Registry& instance() {
    static Registry reg;
    return reg;
  }

  Counter& counter(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_
               .emplace(std::string(name), std::make_unique<Counter>())
               .first;
    }
    return *it->second;
  }

  Gauge& gauge(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
               .first;
    }
    return *it->second;
  }

  Histogram& histogram(std::string_view name, std::vector<double> bounds) {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_
               .emplace(std::string(name),
                        std::make_unique<Histogram>(std::move(bounds)))
               .first;
    }
    return *it->second;
  }

  Snapshot snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    Snapshot snap;
    snap.enabled = true;
    for (const auto& [name, c] : counters_) {
      snap.counters.push_back({name, c->value()});
    }
    for (const auto& [name, g] : gauges_) {
      snap.gauges.push_back({name, g->value()});
    }
    for (const auto& [name, h] : histograms_) {
      snap.histograms.push_back(
          {name, h->bounds(), h->bucket_counts(), h->count(), h->sum()});
    }
    return snap;
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) {
      c->reset();
    }
    for (auto& [name, g] : gauges_) {
      g->reset();
    }
    for (auto& [name, h] : histograms_) {
      h->reset();
    }
  }

 private:
  mutable std::mutex mu_;
  // Node-based maps: metric addresses are stable for the process lifetime,
  // so call sites may cache the references.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name, default_time_bounds());
}

Histogram& histogram(std::string_view name, std::vector<double> bounds) {
  return Registry::instance().histogram(name, std::move(bounds));
}

Snapshot snapshot() { return Registry::instance().snapshot(); }

void reset() { Registry::instance().reset(); }

// ---------------------------------------------------------------------------
// Process memory
// ---------------------------------------------------------------------------

void sample_process_rss() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return;
  }
  // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
  const std::int64_t mb = usage.ru_maxrss / (1024 * 1024);
#else
  const std::int64_t mb = usage.ru_maxrss / 1024;
#endif
  static Gauge& g_rss = gauge("qdt.process.mem.rss_peak_mb");
  g_rss.update_max(mb);
#endif
}

#endif  // QDT_OBS_ENABLED

}  // namespace qdt::obs
