#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "obs/obs.hpp"

namespace qdt::obs {

namespace {

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_json_double(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; clamp to null.
    os << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(std::numeric_limits<double>::max_digits10);
  tmp << v;
  os << tmp.str();
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string to_json(const Snapshot& snap) {
  std::ostringstream os;
  os << "{\"enabled\":" << (snap.enabled ? "true" : "false");
  os << ",\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    append_json_string(os, snap.counters[i].name);
    os << ':' << snap.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    append_json_string(os, snap.gauges[i].name);
    os << ':' << snap.gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i > 0) {
      os << ',';
    }
    append_json_string(os, h.name);
    os << ":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) {
        os << ',';
      }
      append_json_double(os, h.bounds[b]);
    }
    os << "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) {
        os << ',';
      }
      os << h.counts[b];
    }
    os << "],\"count\":" << h.count << ",\"sum\":";
    append_json_double(os, h.sum);
    os << '}';
  }
  os << "},\"spans\":[";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const auto& s = snap.spans[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"name\":";
    append_json_string(os, s.name);
    os << ",\"depth\":" << s.depth << ",\"start\":";
    append_json_double(os, s.start_seconds);
    os << ",\"seconds\":";
    append_json_double(os, s.seconds);
    os << '}';
  }
  os << "],\"spans_dropped\":" << snap.spans_dropped << '}';
  return os.str();
}

std::string to_prometheus(const Snapshot& snap) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& c : snap.counters) {
    const std::string n = prometheus_name(c.name);
    os << "# TYPE " << n << " counter\n";
    os << n << ' ' << c.value << '\n';
  }
  for (const auto& g : snap.gauges) {
    const std::string n = prometheus_name(g.name);
    os << "# TYPE " << n << " gauge\n";
    os << n << ' ' << g.value << '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string n = prometheus_name(h.name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += b < h.counts.size() ? h.counts[b] : 0;
      os << n << "_bucket{le=\"" << h.bounds[b] << "\"} " << cumulative
         << '\n';
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << n << "_sum " << h.sum << '\n';
    os << n << "_count " << h.count << '\n';
  }
  // Span loss must be visible in scrape output even when the snapshot was
  // taken without the qdt.trace.span.* counters registered.
  os << "# TYPE qdt_obs_spans_dropped counter\n";
  os << "qdt_obs_spans_dropped " << snap.spans_dropped << '\n';
  return os.str();
}

}  // namespace qdt::obs
