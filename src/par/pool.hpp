// qdt::par — the parallel execution layer under the four backends.
//
// The paper's Section II sales pitch for the array representation is that a
// flat amplitude vector "exploits concurrency": every gate kernel is a loop
// over disjoint (i0, i1) index pairs, and every probability is a big
// reduction. This layer supplies the two primitives those loops need —
// parallel_for and parallel_reduce — on top of a dependency-free, lazily
// started std::thread pool, with three hard guarantees:
//
//  * Determinism. The chunk decomposition of a range depends only on the
//    range and the grain, never on the thread count. parallel_for bodies
//    write disjoint elements, so their output is bitwise identical at any
//    thread count; parallel_reduce folds per-chunk partials in chunk order
//    (a fixed reduction tree), so `--threads 8` produces the same double,
//    bit for bit, as `--threads 1`.
//  * Budget propagation. guard limits are thread-local; each worker adopts
//    the submitting thread's resolved limits for the duration of a task and
//    checkpoints the deadline once per chunk, so a `--timeout-ms` budget
//    still fires inside a parallelized kernel and cancels the remaining
//    chunks cooperatively.
//  * Zero cost when off. The default is 1 thread (QDT_THREADS or
//    `--threads N` raise it); at 1 thread parallel_for invokes the body
//    directly on the whole range — no pool, no std::function, no atomics —
//    so single-threaded behavior and wall-clock match the unparallelized
//    kernels.
//
// Nested parallelism runs inline: a parallel_for issued from inside a pool
// worker (or while another thread holds the pool) executes sequentially on
// the calling thread, so composed parallel code cannot deadlock the pool.
//
// Counters land under qdt.par.* (pool size, tasks, chunks, stolen chunks,
// worker idle time).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "guard/budget.hpp"

namespace qdt::par {

/// std::thread::hardware_concurrency with a floor of 1.
std::size_t hardware_threads();

/// Effective thread cap for parallel primitives. Defaults to QDT_THREADS
/// (parsed once, lazily; 0 or unset means 1) unless set_max_threads() has
/// been called. Always >= 1.
std::size_t max_threads();

/// Set the thread cap. 0 means "all hardware threads". Workers are started
/// lazily on the first parallel call that needs them; shrinking the cap
/// leaves already-started workers idle but unused.
void set_max_threads(std::size_t n);

namespace detail {

/// Executes [chunk_begin, chunk_end) of the submitted range.
using ChunkBody = std::function<void(std::size_t, std::size_t)>;

/// True while the calling thread is a pool worker executing a chunk —
/// nested parallel calls must run inline.
bool in_worker();

/// Dispatch chunks of [begin, end) with the given grain across the pool
/// (the calling thread participates). Rethrows the first chunk exception
/// after all chunks have completed or been cancelled. Falls back to inline
/// sequential execution when the pool is busy with another task.
void run_parallel(std::size_t begin, std::size_t end, std::size_t grain,
                  const ChunkBody& body);

/// Number of grain-sized chunks covering n elements.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  return (n + grain - 1) / grain;
}

/// Opaque per-thread context propagation for layers above par. The trace
/// layer sits above this one in the DAG, so the pool cannot name its
/// types; instead a higher layer installs three raw function pointers and
/// the pool threads an opaque token through task submission: `capture` on
/// the submitting thread at submit time, `adopt` (returning the worker's
/// previous token) before a worker runs chunks, `restore` after. This is
/// the same adoption pattern the pool already applies to guard::Limits.
struct ContextHooks {
  std::uint64_t (*capture)() = nullptr;
  std::uint64_t (*adopt)(std::uint64_t ctx) = nullptr;
  void (*restore)(std::uint64_t saved) = nullptr;
};

/// Install the hooks (all three or none). Must happen before the first
/// parallel call spawns workers; the trace layer does it during static
/// initialization.
void set_context_hooks(const ContextHooks& hooks);

}  // namespace detail

/// Default grain for gate-kernel loops (a few flops per element).
inline constexpr std::size_t kKernelGrain = 1u << 13;
/// Default grain for cheap elementwise reductions.
inline constexpr std::size_t kReduceGrain = 1u << 14;

/// Run body(chunk_begin, chunk_end) over [begin, end), split into
/// grain-sized chunks. The body must only write elements inside its chunk
/// (disjoint writes), which makes the result independent of the thread
/// count and the chunk schedule. At max_threads() == 1, or for ranges of
/// at most one chunk, the body runs inline on the whole range.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  if (end <= begin) {
    return;
  }
  const std::size_t g = grain == 0 ? 1 : grain;
  if (max_threads() <= 1 || detail::in_worker() ||
      detail::chunk_count(end - begin, g) <= 1) {
    body(begin, end);
    return;
  }
  const detail::ChunkBody chunk = std::cref(body);
  detail::run_parallel(begin, end, g, chunk);
}

/// Deterministic parallel reduction: partials[c] = map(chunk_begin,
/// chunk_end) for each grain-sized chunk, folded in chunk order as
/// combine(acc, partials[c]) starting from `identity`. The chunk
/// decomposition — and therefore the floating-point result — depends only
/// on (end - begin, grain): one thread and N threads produce bitwise
/// identical values.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, Map&& map, Combine&& combine) {
  if (end <= begin) {
    return identity;
  }
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = detail::chunk_count(end - begin, g);
  if (max_threads() <= 1 || detail::in_worker() || chunks <= 1) {
    // Same fixed reduction tree, executed sequentially.
    T acc = identity;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t b = begin + c * g;
      const std::size_t e = b + g < end ? b + g : end;
      acc = combine(std::move(acc), map(b, e));
    }
    return acc;
  }
  std::vector<T> partials(chunks, identity);
  const auto body = [&](std::size_t b, std::size_t e) {
    partials[(b - begin) / g] = map(b, e);
  };
  const detail::ChunkBody chunk = std::cref(body);
  detail::run_parallel(begin, end, g, chunk);
  T acc = identity;
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace qdt::par
