#include "par/pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/obs.hpp"

namespace qdt::par {

namespace {

obs::Gauge& g_pool_size = obs::gauge("qdt.par.pool.size");
obs::Counter& g_spawned = obs::counter("qdt.par.pool.spawned");
obs::Counter& g_tasks = obs::counter("qdt.par.task.total");
obs::Counter& g_chunks = obs::counter("qdt.par.task.chunks");
obs::Counter& g_stolen = obs::counter("qdt.par.task.stolen_chunks");
obs::Counter& g_inline = obs::counter("qdt.par.task.sequential");
obs::Counter& g_idle_ns = obs::counter("qdt.par.worker.idle_ns");

thread_local bool t_in_worker = false;

// Constant-initialized (all nullptr), so installing hooks from another
// TU's static initializer is order-safe. Written once before main, read
// by workers only after they are spawned at runtime.
detail::ContextHooks g_context_hooks;

/// One in-flight task: a shared chunk cursor plus the submitting thread's
/// resolved budget limits. Workers race on `next`; whichever thread claims
/// a chunk runs it under an adopted BudgetScope and a per-chunk deadline
/// checkpoint. The first exception cancels the remaining chunks.
struct Task {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  const detail::ChunkBody* body = nullptr;
  guard::Limits limits;
  bool has_limits = false;
  std::uint64_t context = 0;  // opaque token from ContextHooks::capture
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  void run_chunks(bool stolen) {
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) {
        return;
      }
      const std::size_t b = begin + c * grain;
      const std::size_t e = std::min(end, b + grain);
      try {
        guard::check_deadline();
        (*body)(b, e);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (error == nullptr) {
            error = std::current_exception();
          }
        }
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
      g_chunks.add();
      if (stolen) {
        g_stolen.add();
      }
    }
  }
};

/// Lazily started worker pool. One task runs at a time; a submission that
/// finds the pool occupied (`submit_mutex` held) runs inline instead, so
/// concurrent submitters and nested parallel calls can never deadlock.
class Pool {
 public:
  static Pool& instance() {
    static Pool* pool = new Pool();  // leaked: workers may outlive statics
    return *pool;
  }

  /// Serializes task execution; try-locked by submitters.
  std::mutex submit_mutex;

  void ensure_workers(std::size_t want) {
    const std::lock_guard<std::mutex> lock(mutex_);
    while (workers_.size() < want) {
      workers_.emplace_back([this] { worker_loop(); });
      g_spawned.add();
    }
    g_pool_size.set(static_cast<std::int64_t>(workers_.size() + 1));
  }

  void run(Task& task) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      task_ = &task;
      ++epoch_;
      running_ = 0;
    }
    cv_work_.notify_all();
    task.run_chunks(/*stolen=*/false);
    // All chunks are claimed; wait for workers still finishing theirs.
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return running_ == 0; });
    task_ = nullptr;
  }

 private:
  Pool() = default;

  void worker_loop() {
    t_in_worker = true;
    std::uint64_t seen_epoch = 0;
    for (;;) {
      Task* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        const double idle_start = obs::monotonic_seconds();
        cv_work_.wait(lock, [&] {
          return task_ != nullptr && epoch_ != seen_epoch;
        });
        g_idle_ns.add(static_cast<std::uint64_t>(
            (obs::monotonic_seconds() - idle_start) * 1e9));
        seen_epoch = epoch_;
        task = task_;
        ++running_;
      }
      {
        // Adopt the submitter's trace context so spans opened inside the
        // chunk body parent under the submitting task instead of becoming
        // depth-0 orphans. run_chunks never throws (chunk exceptions are
        // captured into the task), so plain restore is exception-safe.
        std::uint64_t saved_context = 0;
        if (g_context_hooks.adopt != nullptr) {
          saved_context = g_context_hooks.adopt(task->context);
        }
        // Adopt the submitter's budget: limits are thread-local, and a
        // kernel chunk must see the same deadline/memory ceilings it would
        // have seen on the submitting thread.
        if (task->has_limits) {
          const guard::BudgetScope adopt(task->limits);
          task->run_chunks(/*stolen=*/true);
        } else {
          task->run_chunks(/*stolen=*/true);
        }
        if (g_context_hooks.restore != nullptr) {
          g_context_hooks.restore(saved_context);
        }
      }
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        --running_;
      }
      cv_done_.notify_one();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  Task* task_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t running_ = 0;
};

/// QDT_THREADS, parsed once. Unset, empty, or unparsable means 1; 0 means
/// all hardware threads.
std::size_t threads_from_env() {
  const char* env = std::getenv("QDT_THREADS");
  if (env == nullptr || *env == '\0') {
    return 1;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) {
    return 1;
  }
  return v == 0 ? hardware_threads() : static_cast<std::size_t>(v);
}

std::atomic<std::size_t>& thread_cap() {
  static std::atomic<std::size_t> cap{threads_from_env()};
  return cap;
}

}  // namespace

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t max_threads() {
  return thread_cap().load(std::memory_order_relaxed);
}

void set_max_threads(std::size_t n) {
  thread_cap().store(n == 0 ? hardware_threads() : n,
                     std::memory_order_relaxed);
}

namespace detail {

bool in_worker() { return t_in_worker; }

void set_context_hooks(const ContextHooks& hooks) {
  g_context_hooks = hooks;
}

void run_parallel(std::size_t begin, std::size_t end, std::size_t grain,
                  const ChunkBody& body) {
  Pool& pool = Pool::instance();
  std::unique_lock<std::mutex> submit(pool.submit_mutex, std::try_to_lock);
  if (!submit.owns_lock()) {
    // Another thread is mid-task (or we raced one): run inline rather than
    // queueing. Chunk boundaries are preserved so reductions keep the same
    // fixed reduction tree they would have had on the pool.
    g_inline.add();
    for (std::size_t b = begin; b < end; b += grain) {
      guard::check_deadline();
      body(b, std::min(end, b + grain));
    }
    return;
  }

  Task task;
  task.begin = begin;
  task.end = end;
  task.grain = grain;
  task.chunks = chunk_count(end - begin, grain);
  task.body = &body;
  if (const guard::Limits* limits = guard::current_limits()) {
    task.limits = *limits;
    task.has_limits = true;
  }
  if (g_context_hooks.capture != nullptr) {
    task.context = g_context_hooks.capture();
  }

  const std::size_t helpers =
      std::min(max_threads(), task.chunks) - 1;  // submitter participates
  pool.ensure_workers(helpers);
  g_tasks.add();
  pool.run(task);
  if (task.error != nullptr) {
    std::rethrow_exception(task.error);
  }
}

}  // namespace detail

}  // namespace qdt::par
