// qdt::trace — attributed execution tracing for the four backends.
//
// The flat span ring that used to live inside qdt::obs answered "how long
// did the task take"; it could not answer the questions that decide which
// data structure wins in practice — *where inside one run* the time and
// memory went, on which thread, under which backend, at what DD node count
// or MPS bond. This layer upgrades spans into a proper trace:
//
//  * Every span has a process-unique id, a parent id (the innermost span
//    open on the recording thread at construction), a compact thread id,
//    and typed key/value attributes (int/float/string) attached at the
//    call site: backend name, qubit/gate counts, DD node and cache-table
//    statistics, MPS bond, peak bytes, budget headroom.
//  * Trace context propagates across thread hops: qdt::par pool workers
//    (and the chaos fuzzer's case workers) adopt the submitting thread's
//    innermost span, so spans opened inside parallel_for chunks or
//    fanned-out fuzz cases are parented under the submitting task instead
//    of appearing as depth-0 orphans on anonymous threads.
//  * Completed spans land in a bounded in-memory ring (capacity from the
//    QDT_OBS_SPAN_CAP environment variable, default 4096). Overflow drops
//    the new span, bumps qdt.trace.span.dropped (visible in both the JSON
//    and Prometheus metric exports), and warns once on stderr — span loss
//    is never silent.
//  * Two exporters: Chrome trace-event JSON (load the file in Perfetto or
//    chrome://tracing) and a line-delimited JSONL event log suitable for
//    streaming from a long-running daemon.
//
// Layering: trace sits directly above obs/guard/par and below ir, so every
// backend (and lint, core, chaos) can open attributed spans. The layer
// compiles to no-ops alongside qdt::obs when QDT_OBS_ENABLED is OFF;
// Span::seconds() stays real (it feeds result timing fields).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace qdt::trace {

// ---------------------------------------------------------------------------
// Records (always defined; empty snapshots when the layer is compiled out)
// ---------------------------------------------------------------------------

/// One typed span attribute. Exactly one of the value fields is meaningful,
/// selected by `kind`.
struct Attr {
  enum class Kind { Int, Float, Str };
  std::string key;
  Kind kind = Kind::Int;
  std::int64_t i = 0;
  double f = 0.0;
  std::string s;
};

struct SpanRecord {
  std::uint64_t id = 0;      // process-unique, 1-based, reset() restarts
  std::uint64_t parent = 0;  // 0 = root (no span open at construction)
  std::uint32_t thread = 0;  // compact per-thread id (arrival order)
  std::string name;          // qdt.<layer>.<component>.<metric> scheme
  double start_seconds = 0.0;  // obs::monotonic_seconds() at entry
  double seconds = 0.0;        // duration
  std::vector<Attr> attrs;
};

struct TraceSnapshot {
  bool enabled = false;
  std::vector<SpanRecord> spans;  // completion order
  std::uint64_t dropped = 0;      // spans lost to the ring cap since reset
  std::size_t capacity = 0;       // ring capacity in effect
};

/// Point-in-time copy of the span ring.
TraceSnapshot snapshot();

/// Clear recorded spans, the dropped counter, and restart span ids at 1.
/// (Does not touch the qdt.trace.* obs counters — obs::reset() owns those.)
void reset();

/// Ring capacity: QDT_OBS_SPAN_CAP (parsed once, lazily) or 4096. A value
/// of 0 in the environment disables span recording entirely.
std::size_t capacity();

/// Override the ring capacity (tests). Does not drop already-held spans.
void set_capacity(std::size_t cap);

/// Innermost open span id on the calling thread; 0 when none.
std::uint64_t current_span();

// ---------------------------------------------------------------------------
// Exporters (work on a snapshot; usable in both builds)
// ---------------------------------------------------------------------------

/// Chrome trace-event JSON: {"traceEvents": [...]} with one "X" (complete)
/// event per span — `ts`/`dur` in microseconds relative to the earliest
/// span — plus one "M" thread_name metadata event per thread. Span id,
/// parent id, and every attribute are carried in `args`. Loadable in
/// Perfetto (ui.perfetto.dev) and chrome://tracing.
std::string to_chrome_json(const TraceSnapshot& snap);

/// Streaming JSONL event log: one JSON object per line. First line is a
/// {"type":"header"} record (capacity, dropped count), then one
/// {"type":"span"} record per span in completion order, then a
/// {"type":"summary"} trailer. The framing is what a `qdt serve` daemon
/// can emit incrementally per request.
std::string to_jsonl(const TraceSnapshot& snap);

/// Back-compat flat view: fills `snap.spans` (name/depth/start/seconds,
/// depth recomputed from parent chains) and `snap.spans_dropped` so
/// core::obs_report() keeps its JSON shape from the pre-trace era.
void fill_obs_spans(obs::Snapshot& snap);

#if QDT_OBS_ENABLED

// ---------------------------------------------------------------------------
// Recording (enabled build)
// ---------------------------------------------------------------------------

/// RAII attributed span. Construction assigns the id and parents the span
/// under the thread's innermost open span; destruction records it into the
/// ring. Attach attributes any time before destruction:
///
///   trace::Span span("qdt.dd.sim.run");
///   span.attr("qubits", std::int64_t{n}).attr("backend", "dd");
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& attr(std::string_view key, std::int64_t v);
  Span& attr(std::string_view key, std::uint64_t v);
  Span& attr(std::string_view key, double v);
  Span& attr(std::string_view key, std::string_view v);
  /// Avoid const char* silently converting to bool.
  Span& attr(std::string_view key, const char* v) {
    return attr(key, std::string_view(v));
  }

  std::uint64_t id() const { return record_.id; }
  /// Elapsed time so far (real in both builds).
  double seconds() const {
    return obs::monotonic_seconds() - record_.start_seconds;
  }

 private:
  SpanRecord record_;
};

/// RAII context adoption for thread hops: installs `parent` as the calling
/// thread's innermost span id, so spans opened by pool-worker chunks or
/// fuzz-case workers attach under the submitting task. Restores the
/// previous context (usually none — workers are context-free between
/// tasks) on destruction.
class ContextScope {
 public:
  explicit ContextScope(std::uint64_t parent);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  std::uint64_t saved_;
};

#else  // !QDT_OBS_ENABLED

class Span {
 public:
  explicit Span(std::string_view) : start_(obs::monotonic_seconds()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& attr(std::string_view, std::int64_t) { return *this; }
  Span& attr(std::string_view, std::uint64_t) { return *this; }
  Span& attr(std::string_view, double) { return *this; }
  Span& attr(std::string_view, std::string_view) { return *this; }
  Span& attr(std::string_view, const char*) { return *this; }

  std::uint64_t id() const { return 0; }
  double seconds() const { return obs::monotonic_seconds() - start_; }

 private:
  double start_;
};

class ContextScope {
 public:
  explicit ContextScope(std::uint64_t) {}
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;
};

#endif  // QDT_OBS_ENABLED

}  // namespace qdt::trace
