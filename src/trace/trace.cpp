#include "trace/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "par/pool.hpp"

namespace qdt::trace {

#if QDT_OBS_ENABLED

namespace {

constexpr std::size_t kDefaultCapacity = 4096;

/// QDT_OBS_SPAN_CAP, parsed once. Unset/empty/unparsable means the default;
/// an explicit 0 disables span recording.
std::size_t capacity_from_env() {
  const char* env = std::getenv("QDT_OBS_SPAN_CAP");
  if (env == nullptr || *env == '\0') {
    return kDefaultCapacity;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) {
    return kDefaultCapacity;
  }
  return static_cast<std::size_t>(v);
}

/// Bounded span sink. One mutex-protected vector: spans are small, arrive
/// at task/phase granularity (not per gate application), and snapshots
/// need a consistent copy anyway, so sharding would buy nothing here.
class Collector {
 public:
  static Collector& instance() {
    static Collector* c = new Collector();  // leaked: workers may outlive statics
    return *c;
  }

  void record(SpanRecord&& rec) {
    static obs::Counter& recorded = obs::counter("qdt.trace.span.recorded");
    static obs::Counter& dropped = obs::counter("qdt.trace.span.dropped");
    recorded.add();
    const std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= cap_) {
      ++dropped_;
      dropped.add();
      warn_once_on_drop();
      return;
    }
    spans_.push_back(std::move(rec));
  }

  TraceSnapshot snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    TraceSnapshot snap;
    snap.enabled = true;
    snap.spans = spans_;
    snap.dropped = dropped_;
    snap.capacity = cap_;
    return snap;
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
    dropped_ = 0;
  }

  std::size_t capacity() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return cap_;
  }

  void set_capacity(std::size_t cap) {
    const std::lock_guard<std::mutex> lock(mu_);
    cap_ = cap;
  }

 private:
  Collector() = default;

  static void warn_once_on_drop() {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "qdt: span ring full, dropping trace spans (raise "
                   "QDT_OBS_SPAN_CAP to keep more)\n");
    }
  }

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::uint64_t dropped_ = 0;
  std::size_t cap_ = capacity_from_env();
};

/// Process-unique span ids, 1-based so 0 can mean "no parent". reset()
/// restarts the sequence to keep golden-file traces reproducible.
std::atomic<std::uint64_t> g_next_id{1};

/// Innermost open (or adopted) span id on this thread.
thread_local std::uint64_t t_current_span = 0;

/// Compact per-thread id in arrival order; stable for the thread lifetime
/// (deliberately not reset — ids must stay unique while workers live).
std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// -------------------------------------------------------------------------
// par context hooks
//
// par sits below trace in the layering DAG, so the pool cannot include
// this header. Instead par exposes three raw function-pointer hooks and
// this TU installs them during static initialization — before main, and
// therefore before any pool worker can exist. Workers adopt the
// submitting thread's innermost span for the duration of a task, exactly
// parallel to how they adopt its guard::Limits.
// -------------------------------------------------------------------------

std::uint64_t hook_capture() { return t_current_span; }

std::uint64_t hook_adopt(std::uint64_t ctx) {
  return std::exchange(t_current_span, ctx);
}

void hook_restore(std::uint64_t saved) { t_current_span = saved; }

const bool g_hooks_installed = [] {
  par::detail::set_context_hooks(
      {&hook_capture, &hook_adopt, &hook_restore});
  return true;
}();

}  // namespace

TraceSnapshot snapshot() { return Collector::instance().snapshot(); }

void reset() {
  Collector::instance().reset();
  g_next_id.store(1, std::memory_order_relaxed);
}

std::size_t capacity() { return Collector::instance().capacity(); }

void set_capacity(std::size_t cap) { Collector::instance().set_capacity(cap); }

std::uint64_t current_span() { return t_current_span; }

Span::Span(std::string_view name) {
  record_.id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  record_.parent = t_current_span;
  record_.thread = this_thread_id();
  record_.name = name;
  record_.start_seconds = obs::monotonic_seconds();
  t_current_span = record_.id;
}

Span::~Span() {
  t_current_span = record_.parent;
  record_.seconds = obs::monotonic_seconds() - record_.start_seconds;
  Collector::instance().record(std::move(record_));
}

Span& Span::attr(std::string_view key, std::int64_t v) {
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::Int;
  a.i = v;
  record_.attrs.push_back(std::move(a));
  return *this;
}

Span& Span::attr(std::string_view key, std::uint64_t v) {
  return attr(key, static_cast<std::int64_t>(v));
}

Span& Span::attr(std::string_view key, double v) {
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::Float;
  a.f = v;
  record_.attrs.push_back(std::move(a));
  return *this;
}

Span& Span::attr(std::string_view key, std::string_view v) {
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::Str;
  a.s = v;
  record_.attrs.push_back(std::move(a));
  return *this;
}

ContextScope::ContextScope(std::uint64_t parent)
    : saved_(std::exchange(t_current_span, parent)) {}

ContextScope::~ContextScope() { t_current_span = saved_; }

#else  // !QDT_OBS_ENABLED

TraceSnapshot snapshot() { return TraceSnapshot{}; }
void reset() {}
std::size_t capacity() { return 0; }
void set_capacity(std::size_t) {}
std::uint64_t current_span() { return 0; }

#endif  // QDT_OBS_ENABLED

void fill_obs_spans(obs::Snapshot& snap) {
  const TraceSnapshot tr = snapshot();
  snap.spans_dropped = tr.dropped;
  snap.spans.clear();
  snap.spans.reserve(tr.spans.size());
  // Depth is recovered by walking parent chains; a parent that was itself
  // dropped (or adopted from a span recorded before a reset) terminates
  // the walk where the chain breaks. A reset() while spans were still
  // open can reissue an id already recorded as someone's parent, forming
  // a cycle in the links — so the walk is hard-bounded by the number of
  // recorded spans (any longer chain must be revisiting an id).
  std::unordered_map<std::uint64_t, std::uint64_t> parent_of;
  parent_of.reserve(tr.spans.size());
  for (const SpanRecord& r : tr.spans) {
    parent_of.emplace(r.id, r.parent);
  }
  for (const SpanRecord& r : tr.spans) {
    std::size_t depth = 0;
    std::uint64_t p = r.parent;
    while (p != 0 && depth < tr.spans.size()) {
      const auto it = parent_of.find(p);
      if (it == parent_of.end()) {
        break;
      }
      ++depth;
      p = it->second;
    }
    snap.spans.push_back({r.name, depth, r.start_seconds, r.seconds});
  }
}

}  // namespace qdt::trace
