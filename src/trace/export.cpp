#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <string>

#include "trace/trace.hpp"

namespace qdt::trace {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

/// Microseconds with nanosecond resolution — enough for trace viewers,
/// and fixed-width so exported files are diff-friendly.
void append_us(std::string& out, double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_attrs(std::string& out, const std::vector<Attr>& attrs) {
  for (const Attr& a : attrs) {
    out += ",\"";
    append_escaped(out, a.key);
    out += "\":";
    switch (a.kind) {
      case Attr::Kind::Int: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRId64, a.i);
        out += buf;
        break;
      }
      case Attr::Kind::Float:
        append_double(out, a.f);
        break;
      case Attr::Kind::Str:
        out += '"';
        append_escaped(out, a.s);
        out += '"';
        break;
    }
  }
}

double earliest_start(const TraceSnapshot& snap) {
  double t0 = 0.0;
  bool first = true;
  for (const SpanRecord& r : snap.spans) {
    if (first || r.start_seconds < t0) {
      t0 = r.start_seconds;
      first = false;
    }
  }
  return t0;
}

}  // namespace

std::string to_chrome_json(const TraceSnapshot& snap) {
  const double t0 = earliest_start(snap);
  std::string out;
  out.reserve(256 + snap.spans.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"qdt\"}}";

  std::set<std::uint32_t> threads;
  for (const SpanRecord& r : snap.spans) {
    threads.insert(r.thread);
  }
  for (const std::uint32_t tid : threads) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    append_u64(out, tid);
    out += ",\"args\":{\"name\":\"qdt-thread-";
    append_u64(out, tid);
    out += "\"}}";
  }

  // Emit in start order: viewers do not require it, but it makes the raw
  // file readable top-to-bottom and the golden test deterministic once
  // timestamps are normalized.
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(snap.spans.size());
  for (const SpanRecord& r : snap.spans) {
    ordered.push_back(&r);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     if (a->start_seconds != b->start_seconds) {
                       return a->start_seconds < b->start_seconds;
                     }
                     return a->id < b->id;
                   });

  for (const SpanRecord* r : ordered) {
    out += ",\n{\"name\":\"";
    append_escaped(out, r->name);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_u64(out, r->thread);
    out += ",\"ts\":";
    append_us(out, (r->start_seconds - t0) * 1e6);
    out += ",\"dur\":";
    append_us(out, r->seconds * 1e6);
    out += ",\"args\":{\"span_id\":";
    append_u64(out, r->id);
    out += ",\"parent\":";
    append_u64(out, r->parent);
    append_attrs(out, r->attrs);
    out += "}}";
  }
  out += "\n],\"otherData\":{\"spans_dropped\":";
  append_u64(out, snap.dropped);
  out += "}}\n";
  return out;
}

std::string to_jsonl(const TraceSnapshot& snap) {
  std::string out;
  out.reserve(128 + snap.spans.size() * 160);
  out += "{\"type\":\"header\",\"version\":1,\"capacity\":";
  append_u64(out, snap.capacity);
  out += ",\"enabled\":";
  out += snap.enabled ? "true" : "false";
  out += "}\n";
  for (const SpanRecord& r : snap.spans) {
    out += "{\"type\":\"span\",\"id\":";
    append_u64(out, r.id);
    out += ",\"parent\":";
    append_u64(out, r.parent);
    out += ",\"thread\":";
    append_u64(out, r.thread);
    out += ",\"name\":\"";
    append_escaped(out, r.name);
    out += "\",\"start_us\":";
    append_us(out, r.start_seconds * 1e6);
    out += ",\"dur_us\":";
    append_us(out, r.seconds * 1e6);
    out += ",\"attrs\":{";
    std::string attrs;
    append_attrs(attrs, r.attrs);
    if (!attrs.empty()) {
      out += attrs.substr(1);  // drop the leading comma
    }
    out += "}}\n";
  }
  out += "{\"type\":\"summary\",\"spans\":";
  append_u64(out, static_cast<std::uint64_t>(snap.spans.size()));
  out += ",\"dropped\":";
  append_u64(out, snap.dropped);
  out += "}\n";
  return out;
}

}  // namespace qdt::trace
