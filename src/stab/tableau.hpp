// Stabilizer-tableau simulation (Aaronson-Gottesman / CHP), the classical
// technique behind the paper's pointer to "improved classical simulation of
// circuits dominated by Clifford gates" [11]: an n-qubit stabilizer state
// is stored as 2n Pauli generators (n destabilizers + n stabilizers) over
// GF(2), so Clifford gates and measurements cost O(n^2) — no exponential
// object anywhere.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qdt::stab {

/// One Pauli row of the tableau: X/Z bit vectors plus a sign bit
/// (r == true means an overall factor -1).
struct PauliRow {
  std::vector<bool> x;
  std::vector<bool> z;
  bool r = false;

  bool is_identity() const;
  /// "+XIZ" style rendering.
  std::string str() const;
};

class Tableau {
 public:
  /// |0...0>: destabilizers X_i, stabilizers Z_i.
  explicit Tableau(std::size_t num_qubits);

  std::size_t num_qubits() const { return n_; }

  // -- Generators -----------------------------------------------------------
  void h(std::size_t q);
  void s(std::size_t q);
  void cx(std::size_t control, std::size_t target);

  // -- Derived Clifford gates ------------------------------------------------
  void x(std::size_t q);
  void y(std::size_t q);
  void z(std::size_t q);
  void sdg(std::size_t q);
  void sx(std::size_t q);
  void sxdg(std::size_t q);
  void cz(std::size_t control, std::size_t target);
  void swap(std::size_t a, std::size_t b);

  /// Measure qubit q in the computational basis; collapses the state.
  bool measure(std::size_t q, Rng& rng);

  /// Probability that measuring q yields 1 — 0, 1/2, or 1 for stabilizer
  /// states (without collapsing).
  double prob_one(std::size_t q) const;

  /// Expectation of a Pauli-string observable (chars I/X/Y/Z, MSB-first
  /// like zx/tn::expectation): +1, -1, or 0.
  int pauli_expectation(const std::string& paulis) const;

  /// True if the two tableaus stabilize the same state (their stabilizer
  /// groups coincide, signs included).
  static bool same_state(const Tableau& a, const Tableau& b);

  const PauliRow& stabilizer(std::size_t i) const { return rows_[n_ + i]; }
  const PauliRow& destabilizer(std::size_t i) const { return rows_[i]; }

  std::string str() const;

  /// h *= i with exact sign tracking (the CHP "rowsum"); exposed for the
  /// group-membership reductions.
  static void rowsum_into(PauliRow& h, const PauliRow& i);

 private:
  void rowsum(std::size_t h, std::size_t i);

  std::size_t n_;
  std::vector<PauliRow> rows_;  // 0..n-1 destabilizers, n..2n-1 stabilizers
};

/// True if the operation can be executed on the tableau (Clifford gates,
/// measurements, resets, barriers).
bool is_clifford_operation(const ir::Operation& op);

/// True if every operation of the circuit is Clifford.
bool is_clifford_circuit(const ir::Circuit& circuit);

/// Circuit-level driver: runs Clifford circuits (throws on non-Clifford
/// gates), measures, samples.
class StabilizerSimulator {
 public:
  explicit StabilizerSimulator(std::size_t num_qubits,
                               std::uint64_t seed = 1)
      : tableau_(num_qubits), rng_(seed) {}

  Tableau& tableau() { return tableau_; }
  const Tableau& tableau() const { return tableau_; }

  /// Apply one operation (unitary Clifford / measure / reset).
  /// Measurement outcomes are appended to `record` when non-null.
  void apply(const ir::Operation& op,
             std::vector<std::pair<ir::Qubit, bool>>* record = nullptr);

  std::vector<std::pair<ir::Qubit, bool>> run(const ir::Circuit& circuit);

  /// Sampled readouts of all qubits; each shot re-runs the (cheap) circuit.
  std::map<std::uint64_t, std::size_t> sample_counts(
      const ir::Circuit& circuit, std::size_t shots);

 private:
  Tableau tableau_;
  Rng rng_;
};

}  // namespace qdt::stab
