// Stabilizer-tableau simulation (Aaronson-Gottesman / CHP), the classical
// technique behind the paper's pointer to "improved classical simulation of
// circuits dominated by Clifford gates" [11]: an n-qubit stabilizer state
// is stored as 2n Pauli generators (n destabilizers + n stabilizers) over
// GF(2), so Clifford gates and measurements cost O(n^2) — no exponential
// object anywhere.
//
// Since PR 10 the tableau is bit-packed: X/Z bits live in uint64_t words
// (64 qubits per word, qubit q = bit q%64 of word q/64), rows are one
// contiguous flat array (x block then z block per row, signs one byte per
// row so parallel chunks never share a write target), and the CHP rowsum
// runs word-parallel with a popcount phase accumulator. Consecutive
// unitary gates are batched into one sweep over the 2n rows — each row's
// update is independent, so the sweep is a par::parallel_for with
// bitwise-identical results at any --threads N. Circuits of 1000+ qubits
// are the design point; the element-wise reference implementation this
// replaced survives in reference.hpp as the differential oracle.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qdt::stab {

/// One Pauli row in packed form: X/Z bits in uint64_t words plus a sign
/// bit (r == true means an overall factor -1). A value type — the tableau
/// stores its rows in one flat word array and materializes PauliRow views
/// on demand.
struct PauliRow {
  std::size_t n = 0;                // qubit count
  std::vector<std::uint64_t> x, z;  // packed, bit q of word q/64
  bool r = false;

  PauliRow() = default;
  explicit PauliRow(std::size_t num_qubits);

  bool x_bit(std::size_t q) const {
    return (x[q >> 6] >> (q & 63)) & 1ULL;
  }
  bool z_bit(std::size_t q) const {
    return (z[q >> 6] >> (q & 63)) & 1ULL;
  }
  void set_x(std::size_t q, bool v);
  void set_z(std::size_t q, bool v);

  bool is_identity() const;
  /// "+XIZ" style rendering.
  std::string str() const;

  friend bool operator==(const PauliRow&, const PauliRow&) = default;
};

/// One lowered tableau primitive — the per-row conjugation unit of the
/// batched gate sweep. Derived Cliffords (sx, cz, swap, iswap, Clifford
/// rotations) lower onto these seven at recording time, so a whole run of
/// unitary gates becomes a single pass over the 2n rows.
struct GateOp {
  enum class Kind : std::uint8_t { H, S, Sdg, X, Y, Z, CX };
  Kind kind;
  std::uint32_t a = 0;  // the qubit (control for CX)
  std::uint32_t b = 0;  // CX target
};

/// Records the Clifford gate surface as lowered GateOps; plugs into
/// apply_unitary_clifford (clifford_ops.hpp) so the packed simulator, the
/// element-wise reference, and the tests all share one ir::Operation
/// mapping.
class GateRecorder {
 public:
  explicit GateRecorder(std::vector<GateOp>* out) : out_(out) {}

  void h(std::size_t q) { push(GateOp::Kind::H, q); }
  void s(std::size_t q) { push(GateOp::Kind::S, q); }
  void sdg(std::size_t q) { push(GateOp::Kind::Sdg, q); }
  void x(std::size_t q) { push(GateOp::Kind::X, q); }
  void y(std::size_t q) { push(GateOp::Kind::Y, q); }
  void z(std::size_t q) { push(GateOp::Kind::Z, q); }
  void sx(std::size_t q) { h(q); s(q); h(q); }
  void sxdg(std::size_t q) { h(q); sdg(q); h(q); }
  void cx(std::size_t c, std::size_t t) { push(GateOp::Kind::CX, c, t); }
  void cz(std::size_t c, std::size_t t) { h(t); cx(c, t); h(t); }
  void swap(std::size_t a, std::size_t b) { cx(a, b); cx(b, a); cx(a, b); }

 private:
  void push(GateOp::Kind k, std::size_t a, std::size_t b = 0) {
    out_->push_back(GateOp{k, static_cast<std::uint32_t>(a),
                           static_cast<std::uint32_t>(b)});
  }
  std::vector<GateOp>* out_;
};

class Tableau {
 public:
  /// |0...0>: destabilizers X_i, stabilizers Z_i. Throws
  /// Error(BadInput) on zero qubits.
  explicit Tableau(std::size_t num_qubits);

  std::size_t num_qubits() const { return n_; }
  /// uint64_t words per X (or Z) block of a row: ceil(n / 64).
  std::size_t words_per_row() const { return words_; }

  /// Apply a batch of lowered gate primitives in one sweep over the 2n
  /// rows (par::parallel_for over rows; every row's update is
  /// independent, so results are bitwise identical at any thread count).
  void apply(const GateOp* ops, std::size_t count);

  // -- Generators -----------------------------------------------------------
  void h(std::size_t q);
  void s(std::size_t q);
  void cx(std::size_t control, std::size_t target);

  // -- Derived Clifford gates ------------------------------------------------
  void x(std::size_t q);
  void y(std::size_t q);
  void z(std::size_t q);
  void sdg(std::size_t q);
  void sx(std::size_t q);
  void sxdg(std::size_t q);
  void cz(std::size_t control, std::size_t target);
  void swap(std::size_t a, std::size_t b);

  /// Measure qubit q in the computational basis; collapses the state.
  bool measure(std::size_t q, Rng& rng);

  /// Probability that measuring q yields 1 — 0, 1/2, or 1 for stabilizer
  /// states (without collapsing).
  double prob_one(std::size_t q) const;

  /// Expectation of a Pauli-string observable (chars I/X/Y/Z, MSB-first
  /// like zx/tn::expectation): +1, -1, or 0. Throws Error(BadInput) on a
  /// length mismatch or an unknown character.
  int pauli_expectation(const std::string& paulis) const;

  /// True if the two tableaus stabilize the same state (their stabilizer
  /// groups coincide, signs included).
  static bool same_state(const Tableau& a, const Tableau& b);

  PauliRow stabilizer(std::size_t i) const { return row_view(n_ + i); }
  PauliRow destabilizer(std::size_t i) const { return row_view(i); }

  std::string str() const;

  /// h *= i with exact sign tracking (the word-parallel CHP "rowsum");
  /// exposed for the group-membership reductions.
  static void rowsum_into(PauliRow& h, const PauliRow& i);

  /// Actual heap footprint of the tableau (flat word array + sign bytes +
  /// the reusable measurement scratch row) — what the
  /// qdt.stab.tableau.bytes_peak gauge reports.
  std::size_t memory_bytes() const;

  /// Raw packed storage (2n rows * 2*words_per_row() words, x block then
  /// z block per row) — exposed for the memcmp differential against the
  /// element-wise reference.
  const std::vector<std::uint64_t>& words() const { return bits_; }
  /// One sign byte (0/1) per row.
  const std::vector<std::uint8_t>& signs() const { return sign_; }

 private:
  PauliRow row_view(std::size_t row) const;

  std::uint64_t* row_x(std::size_t row) {
    return bits_.data() + row * stride_;
  }
  std::uint64_t* row_z(std::size_t row) {
    return bits_.data() + row * stride_ + words_;
  }
  const std::uint64_t* row_x(std::size_t row) const {
    return bits_.data() + row * stride_;
  }
  const std::uint64_t* row_z(std::size_t row) const {
    return bits_.data() + row * stride_ + words_;
  }

  /// rows_[h] *= rows_[i] (CHP rowsum, word-parallel).
  void rowsum(std::size_t h, std::size_t i);

  void apply_small(const GateOp* ops, std::size_t count, std::size_t begin,
                   std::size_t end);
  void apply_wide(const GateOp* ops, std::size_t count, std::size_t begin,
                  std::size_t end);

  std::size_t n_ = 0;
  std::size_t words_ = 0;   // ceil(n / 64)
  std::size_t stride_ = 0;  // 2 * words_: x block, then z block
  /// 2n rows * stride_ words; row-major, destabilizers 0..n-1 then
  /// stabilizers n..2n-1. Bits >= n of the last word stay zero.
  std::vector<std::uint64_t> bits_;
  /// One sign byte (0/1) per row — bytes, not packed bits, so chunked
  /// parallel row sweeps write disjoint memory at any grain.
  std::vector<std::uint8_t> sign_;
  /// Reusable scratch row for the deterministic-measurement reduction
  /// (x block then z block) — no per-measurement heap traffic.
  std::vector<std::uint64_t> scratch_;
};

/// True if the operation can be executed on the tableau (Clifford gates,
/// measurements, resets, barriers).
bool is_clifford_operation(const ir::Operation& op);

/// True if every operation of the circuit is Clifford.
bool is_clifford_circuit(const ir::Circuit& circuit);

/// Circuit-level driver: runs Clifford circuits (throws on non-Clifford
/// gates), measures, samples. Consecutive unitary gates are batched into
/// single row sweeps.
class StabilizerSimulator {
 public:
  explicit StabilizerSimulator(std::size_t num_qubits,
                               std::uint64_t seed = 1)
      : tableau_(num_qubits), rng_(seed) {}

  Tableau& tableau() { return tableau_; }
  const Tableau& tableau() const { return tableau_; }

  /// Apply one operation (unitary Clifford / measure / reset).
  /// Measurement outcomes are appended to `record` when non-null.
  void apply(const ir::Operation& op,
             std::vector<std::pair<ir::Qubit, bool>>* record = nullptr);

  /// Throws Error(BadInput) when the circuit width does not match the
  /// tableau width.
  std::vector<std::pair<ir::Qubit, bool>> run(const ir::Circuit& circuit);

  /// Sampled readouts of all qubits; each shot re-runs the (cheap)
  /// circuit. Histogram keys are 64-bit basis states, so readouts wider
  /// than 64 qubits throw Error(Unsupported) — measure() per qubit covers
  /// the wide regime.
  std::map<std::uint64_t, std::size_t> sample_counts(
      const ir::Circuit& circuit, std::size_t shots);

 private:
  Tableau tableau_;
  Rng rng_;
};

}  // namespace qdt::stab
