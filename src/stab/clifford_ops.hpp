// Shared lowering of ir::Operation onto the Clifford gate surface.
//
// Three consumers need the exact same mapping from IR operations to
// tableau gate calls: the packed simulator (which records lowered GateOps
// for the batched sweep), the element-wise reference implementation (the
// differential oracle), and the per-gate differential tests. Templating
// the dispatch over the target keeps the mapping single-sourced — a
// divergence between packed and reference semantics can then only come
// from the tableau kernels themselves, which is exactly what the
// differential is supposed to test.
//
// Tab needs: h, s, sdg, x, y, z, sx, sxdg (qubit), cx, cz, swap (pairs).
#pragma once

#include "common/phase.hpp"
#include "guard/error.hpp"
#include "ir/circuit.hpp"

namespace qdt::stab {

/// Clifford classification of a Z-rotation-like phase: 0 = identity,
/// 1 = S, 2 = Z, 3 = Sdg; -1 = non-Clifford.
inline int z_phase_class(const Phase& p) {
  if (p.is_zero()) {
    return 0;
  }
  if (p == Phase::pi_2()) {
    return 1;
  }
  if (p == Phase::pi()) {
    return 2;
  }
  if (p == Phase::minus_pi_2()) {
    return 3;
  }
  return -1;
}

/// Apply one unitary Clifford operation to `t`. Throws
/// Error(Unsupported) on non-Clifford gates; barriers, measurements, and
/// resets are the caller's business.
template <class Tab>
void apply_unitary_clifford(Tab& t, const ir::Operation& op) {
  using ir::GateKind;
  const auto zclass = [&t](int cls, std::size_t q) {
    switch (cls) {
      case 1:
        t.s(q);
        break;
      case 2:
        t.z(q);
        break;
      case 3:
        t.sdg(q);
        break;
      default:
        break;
    }
  };
  if (op.controls().size() == 1) {
    const std::size_t c = op.controls()[0];
    const std::size_t tq = op.targets()[0];
    switch (op.kind()) {
      case GateKind::X:
        t.cx(c, tq);
        return;
      case GateKind::Z:
        t.cz(c, tq);
        return;
      case GateKind::Y:
        t.sdg(tq);
        t.cx(c, tq);
        t.s(tq);
        return;
      case GateKind::I:
        return;
      default:
        throw Error::unsupported(
            "StabilizerSimulator: unsupported controlled gate " + op.str());
    }
  }
  const std::size_t q = op.targets()[0];
  switch (op.kind()) {
    case GateKind::I:
      return;
    case GateKind::X:
      t.x(q);
      return;
    case GateKind::Y:
      t.y(q);
      return;
    case GateKind::Z:
      t.z(q);
      return;
    case GateKind::H:
      t.h(q);
      return;
    case GateKind::S:
      t.s(q);
      return;
    case GateKind::Sdg:
      t.sdg(q);
      return;
    case GateKind::SX:
      t.sx(q);
      return;
    case GateKind::SXdg:
      t.sxdg(q);
      return;
    case GateKind::RZ:
    case GateKind::P:
      zclass(z_phase_class(op.params()[0]), q);
      return;
    case GateKind::RX: {
      t.h(q);
      zclass(z_phase_class(op.params()[0]), q);
      t.h(q);
      return;
    }
    case GateKind::RY: {
      // RY(t) = S RX(t) Sdg.
      t.sdg(q);
      t.h(q);
      zclass(z_phase_class(op.params()[0]), q);
      t.h(q);
      t.s(q);
      return;
    }
    case GateKind::Swap:
      t.swap(op.targets()[0], op.targets()[1]);
      return;
    case GateKind::ISwap:
      // iSWAP = (S x S) CZ SWAP.
      t.swap(op.targets()[0], op.targets()[1]);
      t.cz(op.targets()[0], op.targets()[1]);
      t.s(op.targets()[0]);
      t.s(op.targets()[1]);
      return;
    case GateKind::ISwapDg:
      t.sdg(op.targets()[0]);
      t.sdg(op.targets()[1]);
      t.cz(op.targets()[0], op.targets()[1]);
      t.swap(op.targets()[0], op.targets()[1]);
      return;
    default:
      throw Error::unsupported("StabilizerSimulator: unsupported gate " +
                               op.str());
  }
}

}  // namespace qdt::stab
