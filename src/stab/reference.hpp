// The element-wise stabilizer tableau the packed implementation replaced
// (PR 10), kept alive as the differential oracle: one bool per X/Z bit,
// per-bit phase_g rowsum, no batching, no parallelism. Slow and simple —
// exactly what you want on the other side of a memcmp differential. Used
// by the packed-vs-reference tests, the bench baseline, and the chaos
// oracle's wide-Clifford lane.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "ir/circuit.hpp"
#include "stab/tableau.hpp"

namespace qdt::stab {

/// Element-wise Aaronson-Gottesman tableau (the pre-PR-10 layout): 2n rows
/// of vector<bool> X/Z bits plus a sign flag each.
class ReferenceTableau {
 public:
  struct Row {
    std::vector<bool> x, z;
    bool r = false;
  };

  /// |0...0>; throws Error(BadInput) on zero qubits, matching Tableau.
  explicit ReferenceTableau(std::size_t num_qubits);

  std::size_t num_qubits() const { return n_; }

  void h(std::size_t q);
  void s(std::size_t q);
  void sdg(std::size_t q);
  void x(std::size_t q);
  void y(std::size_t q);
  void z(std::size_t q);
  void sx(std::size_t q);
  void sxdg(std::size_t q);
  void cx(std::size_t control, std::size_t target);
  void cz(std::size_t control, std::size_t target);
  void swap(std::size_t a, std::size_t b);

  bool measure(std::size_t q, Rng& rng);
  double prob_one(std::size_t q) const;
  int pauli_expectation(const std::string& paulis) const;
  static bool same_state(const ReferenceTableau& a, const ReferenceTableau& b);

  const Row& row(std::size_t i) const { return rows_[i]; }

  /// Snapshot in the packed Tableau word layout — row-major, x block then
  /// z block per row, bit q of word q/64 — so a packed tableau can be
  /// compared against the reference with a straight memcmp.
  std::vector<std::uint64_t> packed_bits() const;
  /// Sign bytes (0/1) per row, in the packed layout.
  std::vector<std::uint8_t> packed_signs() const;

 private:
  void rowsum(std::size_t h, std::size_t i);
  static void rowsum_into(Row& h, const Row& i);

  std::size_t n_ = 0;
  std::vector<Row> rows_;  // destabilizers 0..n-1, stabilizers n..2n-1
};

/// Reference circuit driver: per-op dispatch through the same
/// apply_unitary_clifford mapping as the packed simulator, with the same
/// RNG consumption order, so seeded runs are comparable outcome for
/// outcome.
class ReferenceSimulator {
 public:
  explicit ReferenceSimulator(std::size_t num_qubits, std::uint64_t seed = 1)
      : tableau_(num_qubits), rng_(seed) {}

  ReferenceTableau& tableau() { return tableau_; }
  const ReferenceTableau& tableau() const { return tableau_; }

  std::vector<std::pair<ir::Qubit, bool>> run(const ir::Circuit& circuit);

 private:
  ReferenceTableau tableau_;
  Rng rng_;
};

/// Bitwise equality of a packed tableau against the reference: word arrays
/// and sign bytes must match exactly (memcmp over the packed snapshot).
bool tableaus_equal(const Tableau& packed, const ReferenceTableau& ref);

}  // namespace qdt::stab
