#include "stab/tableau.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/bitops.hpp"
#include "guard/budget.hpp"
#include "guard/error.hpp"
#include "obs/obs.hpp"
#include "par/pool.hpp"
#include "stab/clifford_ops.hpp"
#include "trace/trace.hpp"

namespace qdt::stab {

namespace {

obs::Counter& g_gates = obs::counter("qdt.stab.tableau.gates_applied");
obs::Gauge& g_bytes_peak = obs::gauge("qdt.stab.tableau.bytes_peak");
obs::Histogram& g_gate_seconds =
    obs::histogram("qdt.stab.tableau.gate_seconds");

/// Row grain for the parallel sweeps. Rows are cheap (a few word ops
/// each), so chunks stay coarse; the decomposition depends only on the
/// row count and this constant, never the thread count — the qdt::par
/// determinism contract.
constexpr std::size_t kRowGrain = 256;

/// Gate batch size the circuit driver flushes at: large enough that one
/// sweep amortizes the row traffic over many gates, small enough that the
/// op list stays L1-resident and deadlines fire promptly.
constexpr std::size_t kBatchOps = 256;

/// Word-parallel CHP rowsum kernel: h *= i over one X/Z word pair.
/// Returns the summed i-exponent of the per-column Pauli products — the
/// popcount identity replacing the per-bit phase_g table: with x1z2 etc.
/// the per-column contribution is +1 on Y*(x=0,z=1) / X*(x=1,z=1) /
/// Z*(x=1,z=0) overlaps and -1 on the mirrored ones, so two popcounts per
/// word fold 64 columns at a time. Branch-free.
inline std::int64_t rowsum_phase_word(std::uint64_t& hx, std::uint64_t& hz,
                                      std::uint64_t x1, std::uint64_t z1) {
  const std::uint64_t x2 = hx;
  const std::uint64_t z2 = hz;
  const std::uint64_t y1 = x1 & z1;        // i-columns carrying Y
  const std::uint64_t xonly1 = x1 & ~z1;   // i-columns carrying X
  const std::uint64_t zonly1 = ~x1 & z1;   // i-columns carrying Z
  const std::uint64_t plus = (y1 & ~x2 & z2) | (xonly1 & x2 & z2) |
                             (zonly1 & x2 & ~z2);
  const std::uint64_t minus = (y1 & x2 & ~z2) | (xonly1 & ~x2 & z2) |
                              (zonly1 & x2 & z2);
  hx = x2 ^ x1;
  hz = z2 ^ z1;
  return popcount64(plus) - popcount64(minus);
}

/// h(x/z words) *= i(x/z words); returns the i-exponent sum over all
/// columns.
inline std::int64_t rowsum_phase_words(std::uint64_t* hx, std::uint64_t* hz,
                                       const std::uint64_t* ix,
                                       const std::uint64_t* iz,
                                       std::size_t words) {
  std::int64_t phase = 0;
  for (std::size_t w = 0; w < words; ++w) {
    phase += rowsum_phase_word(hx[w], hz[w], ix[w], iz[w]);
  }
  return phase;
}

/// Fold sign bits and the column phase sum into the product's sign bit.
/// The product of commuting-track rows is always +/-, never +/-i.
inline std::uint8_t fold_sign(std::uint8_t rh, std::uint8_t ri,
                              std::int64_t column_phase) {
  const std::int64_t phase = 2 * (rh + ri) + column_phase;
  return ((phase % 4) + 4) % 4 == 2 ? 1 : 0;
}

/// A standalone packed row matrix for the echelonized group-membership
/// reductions (pauli_expectation, same_state) — same layout as the
/// tableau rows (x block then z block, sign bytes).
struct PackedRows {
  std::size_t rows = 0;
  std::size_t words = 0;
  std::size_t stride = 0;
  std::vector<std::uint64_t> bits;
  std::vector<std::uint8_t> sign;

  PackedRows(std::size_t r, std::size_t w)
      : rows(r), words(w), stride(2 * w), bits(r * stride, 0), sign(r, 0) {}

  std::uint64_t* x(std::size_t r) { return bits.data() + r * stride; }
  std::uint64_t* z(std::size_t r) { return x(r) + words; }
  const std::uint64_t* x(std::size_t r) const {
    return bits.data() + r * stride;
  }
  const std::uint64_t* z(std::size_t r) const { return x(r) + words; }

  /// GF(2) bit of column `col` (x-part cols [0, n), z-part cols [n, 2n)).
  bool bit(std::size_t r, std::size_t col, std::size_t n) const {
    const std::size_t q = col < n ? col : col - n;
    const std::uint64_t* block = col < n ? x(r) : z(r);
    return (block[q >> 6] >> (q & 63)) & 1ULL;
  }

  void rowsum(std::size_t h, std::size_t i) {
    const std::int64_t phase =
        rowsum_phase_words(x(h), z(h), x(i), z(i), words);
    sign[h] = fold_sign(sign[h], sign[i], phase);
  }

  void swap_rows(std::size_t a, std::size_t b) {
    if (a == b) {
      return;
    }
    std::swap_ranges(x(a), x(a) + stride, x(b));
    std::swap(sign[a], sign[b]);
  }
};

/// Echelonize `m` (over the 2n GF(2) columns, x-part then z-part) with
/// exact sign tracking; returns the pivot (row, column) list. The
/// elimination inner sweep touches every row independently (all rowsum
/// against the fixed pivot row), so it runs under par::parallel_for.
std::vector<std::pair<std::size_t, std::size_t>> echelonize(PackedRows& m,
                                                            std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> pivots;
  std::size_t next_row = 0;
  for (std::size_t col = 0; col < 2 * n && next_row < m.rows; ++col) {
    std::size_t pivot = m.rows;
    for (std::size_t r = next_row; r < m.rows; ++r) {
      if (m.bit(r, col, n)) {
        pivot = r;
        break;
      }
    }
    if (pivot == m.rows) {
      continue;
    }
    m.swap_rows(next_row, pivot);
    par::parallel_for(0, m.rows, kRowGrain,
                      [&m, n, col, next_row](std::size_t b, std::size_t e) {
                        for (std::size_t r = b; r < e; ++r) {
                          if (r != next_row && m.bit(r, col, n)) {
                            m.rowsum(r, next_row);
                          }
                        }
                      });
    pivots.emplace_back(next_row, col);
    ++next_row;
  }
  return pivots;
}

/// Reduce the query row (qx/qz/qr) against echelonized rows; afterwards
/// the query is identity iff +/-query was in the group (sign in qr).
void reduce_query(
    std::uint64_t* qx, std::uint64_t* qz, std::uint8_t& qr,
    const PackedRows& m,
    const std::vector<std::pair<std::size_t, std::size_t>>& pivots,
    std::size_t n) {
  for (const auto& [row, col] : pivots) {
    const std::size_t q = col < n ? col : col - n;
    const std::uint64_t* block = col < n ? qx : qz;
    if ((block[q >> 6] >> (q & 63)) & 1ULL) {
      const std::int64_t phase =
          rowsum_phase_words(qx, qz, m.x(row), m.z(row), m.words);
      qr = fold_sign(qr, m.sign[row], phase);
    }
  }
}

bool words_all_zero(const std::uint64_t* w, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (w[i] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// PauliRow
// ---------------------------------------------------------------------------

PauliRow::PauliRow(std::size_t num_qubits)
    : n(num_qubits),
      x((num_qubits + 63) / 64, 0),
      z((num_qubits + 63) / 64, 0) {}

void PauliRow::set_x(std::size_t q, bool v) {
  const std::uint64_t m = 1ULL << (q & 63);
  x[q >> 6] = v ? (x[q >> 6] | m) : (x[q >> 6] & ~m);
}

void PauliRow::set_z(std::size_t q, bool v) {
  const std::uint64_t m = 1ULL << (q & 63);
  z[q >> 6] = v ? (z[q >> 6] | m) : (z[q >> 6] & ~m);
}

bool PauliRow::is_identity() const {
  return words_all_zero(x.data(), x.size()) &&
         words_all_zero(z.data(), z.size());
}

std::string PauliRow::str() const {
  std::string s = r ? "-" : "+";
  for (std::size_t q = n; q-- > 0;) {
    const bool xb = x_bit(q);
    const bool zb = z_bit(q);
    if (xb && zb) {
      s += 'Y';
    } else if (xb) {
      s += 'X';
    } else if (zb) {
      s += 'Z';
    } else {
      s += 'I';
    }
  }
  return s;
}

void Tableau::rowsum_into(PauliRow& h, const PauliRow& i) {
  const std::int64_t phase = rowsum_phase_words(
      h.x.data(), h.z.data(), i.x.data(), i.z.data(), h.x.size());
  h.r = fold_sign(h.r ? 1 : 0, i.r ? 1 : 0, phase) != 0;
}

// ---------------------------------------------------------------------------
// Tableau
// ---------------------------------------------------------------------------

Tableau::Tableau(std::size_t num_qubits)
    : n_(num_qubits), words_((num_qubits + 63) / 64), stride_(2 * words_) {
  if (n_ == 0) {
    throw Error::bad_input("Tableau: need at least one qubit");
  }
  guard::check_memory(
      (2 * n_ + 1) * stride_ * sizeof(std::uint64_t) + 2 * n_,
      "stabilizer tableau");
  bits_.assign(2 * n_ * stride_, 0);
  sign_.assign(2 * n_, 0);
  scratch_.assign(stride_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    row_x(i)[i >> 6] |= 1ULL << (i & 63);       // destabilizer X_i
    row_z(n_ + i)[i >> 6] |= 1ULL << (i & 63);  // stabilizer Z_i
  }
}

PauliRow Tableau::row_view(std::size_t row) const {
  PauliRow out(n_);
  std::copy(row_x(row), row_x(row) + words_, out.x.begin());
  std::copy(row_z(row), row_z(row) + words_, out.z.begin());
  out.r = sign_[row] != 0;
  return out;
}

std::size_t Tableau::memory_bytes() const {
  return bits_.capacity() * sizeof(std::uint64_t) + sign_.capacity() +
         scratch_.capacity() * sizeof(std::uint64_t);
}

/// Single-word fast path (n <= 64): the whole row lives in two registers,
/// so a batch of k gates is k branch-predicted ALU updates between one
/// load pair and one store pair — no heap traffic inside the sweep.
void Tableau::apply_small(const GateOp* ops, std::size_t count,
                          std::size_t begin, std::size_t end) {
  for (std::size_t row = begin; row < end; ++row) {
    std::uint64_t x = bits_[2 * row];
    std::uint64_t z = bits_[2 * row + 1];
    std::uint64_t s = sign_[row];
    for (std::size_t k = 0; k < count; ++k) {
      const GateOp op = ops[k];
      const unsigned a = op.a;
      switch (op.kind) {
        case GateOp::Kind::H: {
          s ^= ((x & z) >> a) & 1ULL;
          const std::uint64_t d = (((x ^ z) >> a) & 1ULL) << a;
          x ^= d;
          z ^= d;
          break;
        }
        case GateOp::Kind::S:
          s ^= ((x & z) >> a) & 1ULL;
          z ^= x & (1ULL << a);
          break;
        case GateOp::Kind::Sdg:
          s ^= ((x & ~z) >> a) & 1ULL;
          z ^= x & (1ULL << a);
          break;
        case GateOp::Kind::X:
          s ^= (z >> a) & 1ULL;
          break;
        case GateOp::Kind::Y:
          s ^= ((x ^ z) >> a) & 1ULL;
          break;
        case GateOp::Kind::Z:
          s ^= (x >> a) & 1ULL;
          break;
        case GateOp::Kind::CX: {
          const unsigned b = op.b;
          const std::uint64_t xc = (x >> a) & 1ULL;
          const std::uint64_t zc = (z >> a) & 1ULL;
          const std::uint64_t xt = (x >> b) & 1ULL;
          const std::uint64_t zt = (z >> b) & 1ULL;
          s ^= xc & zt & (1ULL ^ xt ^ zc);
          x ^= xc << b;
          z ^= zt << a;
          break;
        }
      }
    }
    bits_[2 * row] = x;
    bits_[2 * row + 1] = z;
    sign_[row] = static_cast<std::uint8_t>(s & 1ULL);
  }
}

/// Generic path (n > 64): same micro-ops, word-indexed into the row's
/// contiguous X/Z blocks. One pass over the rows applies the whole batch,
/// so each row's cache lines are touched once per k gates, not once per
/// gate.
void Tableau::apply_wide(const GateOp* ops, std::size_t count,
                         std::size_t begin, std::size_t end) {
  for (std::size_t row = begin; row < end; ++row) {
    std::uint64_t* px = row_x(row);
    std::uint64_t* pz = row_z(row);
    std::uint64_t s = sign_[row];
    for (std::size_t k = 0; k < count; ++k) {
      const GateOp op = ops[k];
      const std::size_t wa = op.a >> 6;
      const unsigned ba = op.a & 63;
      switch (op.kind) {
        case GateOp::Kind::H: {
          const std::uint64_t xv = px[wa];
          const std::uint64_t zv = pz[wa];
          s ^= ((xv & zv) >> ba) & 1ULL;
          const std::uint64_t d = (((xv ^ zv) >> ba) & 1ULL) << ba;
          px[wa] = xv ^ d;
          pz[wa] = zv ^ d;
          break;
        }
        case GateOp::Kind::S:
          s ^= ((px[wa] & pz[wa]) >> ba) & 1ULL;
          pz[wa] ^= px[wa] & (1ULL << ba);
          break;
        case GateOp::Kind::Sdg:
          s ^= ((px[wa] & ~pz[wa]) >> ba) & 1ULL;
          pz[wa] ^= px[wa] & (1ULL << ba);
          break;
        case GateOp::Kind::X:
          s ^= (pz[wa] >> ba) & 1ULL;
          break;
        case GateOp::Kind::Y:
          s ^= ((px[wa] ^ pz[wa]) >> ba) & 1ULL;
          break;
        case GateOp::Kind::Z:
          s ^= (px[wa] >> ba) & 1ULL;
          break;
        case GateOp::Kind::CX: {
          const std::size_t wb = op.b >> 6;
          const unsigned bb = op.b & 63;
          const std::uint64_t xc = (px[wa] >> ba) & 1ULL;
          const std::uint64_t zc = (pz[wa] >> ba) & 1ULL;
          const std::uint64_t xt = (px[wb] >> bb) & 1ULL;
          const std::uint64_t zt = (pz[wb] >> bb) & 1ULL;
          s ^= xc & zt & (1ULL ^ xt ^ zc);
          px[wb] ^= xc << bb;
          pz[wa] ^= zt << ba;
          break;
        }
      }
    }
    sign_[row] = static_cast<std::uint8_t>(s & 1ULL);
  }
}

void Tableau::apply(const GateOp* ops, std::size_t count) {
  if (count == 0) {
    return;
  }
  const std::size_t rows = 2 * n_;
  if (words_ == 1) {
    par::parallel_for(0, rows, kRowGrain,
                      [this, ops, count](std::size_t b, std::size_t e) {
                        apply_small(ops, count, b, e);
                      });
  } else {
    par::parallel_for(0, rows, kRowGrain,
                      [this, ops, count](std::size_t b, std::size_t e) {
                        apply_wide(ops, count, b, e);
                      });
  }
}

void Tableau::h(std::size_t q) {
  const GateOp op{GateOp::Kind::H, static_cast<std::uint32_t>(q)};
  apply(&op, 1);
}

void Tableau::s(std::size_t q) {
  const GateOp op{GateOp::Kind::S, static_cast<std::uint32_t>(q)};
  apply(&op, 1);
}

void Tableau::sdg(std::size_t q) {
  const GateOp op{GateOp::Kind::Sdg, static_cast<std::uint32_t>(q)};
  apply(&op, 1);
}

void Tableau::x(std::size_t q) {
  const GateOp op{GateOp::Kind::X, static_cast<std::uint32_t>(q)};
  apply(&op, 1);
}

void Tableau::y(std::size_t q) {
  const GateOp op{GateOp::Kind::Y, static_cast<std::uint32_t>(q)};
  apply(&op, 1);
}

void Tableau::z(std::size_t q) {
  const GateOp op{GateOp::Kind::Z, static_cast<std::uint32_t>(q)};
  apply(&op, 1);
}

void Tableau::cx(std::size_t control, std::size_t target) {
  const GateOp op{GateOp::Kind::CX, static_cast<std::uint32_t>(control),
                  static_cast<std::uint32_t>(target)};
  apply(&op, 1);
}

void Tableau::sx(std::size_t q) {
  std::vector<GateOp> ops;
  GateRecorder(&ops).sx(q);
  apply(ops.data(), ops.size());
}

void Tableau::sxdg(std::size_t q) {
  std::vector<GateOp> ops;
  GateRecorder(&ops).sxdg(q);
  apply(ops.data(), ops.size());
}

void Tableau::cz(std::size_t control, std::size_t target) {
  std::vector<GateOp> ops;
  GateRecorder(&ops).cz(control, target);
  apply(ops.data(), ops.size());
}

void Tableau::swap(std::size_t a, std::size_t b) {
  std::vector<GateOp> ops;
  GateRecorder(&ops).swap(a, b);
  apply(ops.data(), ops.size());
}

void Tableau::rowsum(std::size_t h, std::size_t i) {
  const std::int64_t phase =
      rowsum_phase_words(row_x(h), row_z(h), row_x(i), row_z(i), words_);
  sign_[h] = fold_sign(sign_[h], sign_[i], phase);
}

bool Tableau::measure(std::size_t a, Rng& rng) {
  const std::size_t wa = a >> 6;
  const std::uint64_t ma = 1ULL << (a & 63);
  // Random outcome iff some stabilizer anticommutes with Z_a.
  std::size_t p = 2 * n_;
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (row_x(i)[wa] & ma) {
      p = i;
      break;
    }
  }
  if (p < 2 * n_) {
    const bool outcome = rng.coin();
    // Every anticommuting row absorbs row p — disjoint row writes against
    // a fixed source row, so the sweep parallelizes deterministically.
    par::parallel_for(0, 2 * n_, kRowGrain,
                      [this, p, wa, ma](std::size_t b, std::size_t e) {
                        for (std::size_t i = b; i < e; ++i) {
                          if (i != p && (row_x(i)[wa] & ma)) {
                            rowsum(i, p);
                          }
                        }
                      });
    std::copy(row_x(p), row_x(p) + stride_, row_x(p - n_));
    sign_[p - n_] = sign_[p];
    std::fill(row_x(p), row_x(p) + stride_, 0ULL);
    sign_[p] = outcome ? 1 : 0;
    row_z(p)[wa] |= ma;
    return outcome;
  }
  // Deterministic outcome: accumulate the matching destabilizer pattern
  // into the reusable scratch row (no heap traffic).
  std::fill(scratch_.begin(), scratch_.end(), 0ULL);
  std::uint64_t* sx = scratch_.data();
  std::uint64_t* sz = sx + words_;
  std::uint8_t sr = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (row_x(i)[wa] & ma) {
      const std::int64_t phase =
          rowsum_phase_words(sx, sz, row_x(n_ + i), row_z(n_ + i), words_);
      sr = fold_sign(sr, sign_[n_ + i], phase);
    }
  }
  return sr != 0;
}

double Tableau::prob_one(std::size_t a) const {
  const std::size_t wa = a >> 6;
  const std::uint64_t ma = 1ULL << (a & 63);
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (row_x(i)[wa] & ma) {
      return 0.5;
    }
  }
  // Deterministic: same reduction as measure(), on a local scratch row —
  // stack words up to 1024 qubits so the const query stays allocation-free
  // in the regime the packed tableau targets.
  constexpr std::size_t kStackWords = 16;
  std::uint64_t stack_buf[2 * kStackWords];
  std::vector<std::uint64_t> heap_buf;
  std::uint64_t* sx = nullptr;
  if (words_ <= kStackWords) {
    std::fill(stack_buf, stack_buf + 2 * words_, 0ULL);
    sx = stack_buf;
  } else {
    heap_buf.assign(stride_, 0);
    sx = heap_buf.data();
  }
  std::uint64_t* sz = sx + words_;
  std::uint8_t sr = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (row_x(i)[wa] & ma) {
      const std::int64_t phase =
          rowsum_phase_words(sx, sz, row_x(n_ + i), row_z(n_ + i), words_);
      sr = fold_sign(sr, sign_[n_ + i], phase);
    }
  }
  return sr != 0 ? 1.0 : 0.0;
}

int Tableau::pauli_expectation(const std::string& paulis) const {
  if (paulis.size() != n_) {
    throw Error::bad_input("pauli_expectation: observable length " +
                           std::to_string(paulis.size()) +
                           " does not match qubit count " +
                           std::to_string(n_));
  }
  std::vector<std::uint64_t> query(stride_, 0);
  std::uint64_t* qx = query.data();
  std::uint64_t* qz = qx + words_;
  for (std::size_t q = 0; q < n_; ++q) {
    const std::uint64_t m = 1ULL << (q & 63);
    switch (paulis[n_ - 1 - q]) {  // string is MSB-first
      case 'I':
        break;
      case 'X':
        qx[q >> 6] |= m;
        break;
      case 'Y':
        qx[q >> 6] |= m;
        qz[q >> 6] |= m;
        break;
      case 'Z':
        qz[q >> 6] |= m;
        break;
      default:
        throw Error::bad_input(
            std::string("pauli_expectation: bad character '") +
            paulis[n_ - 1 - q] + "' (want I/X/Y/Z)");
    }
  }
  if (words_all_zero(query.data(), stride_)) {
    return 1;
  }
  PackedRows stab(n_, words_);
  std::memcpy(stab.bits.data(), bits_.data() + n_ * stride_,
              n_ * stride_ * sizeof(std::uint64_t));
  std::copy(sign_.begin() + static_cast<std::ptrdiff_t>(n_), sign_.end(),
            stab.sign.begin());
  const auto pivots = echelonize(stab, n_);
  std::uint8_t qr = 0;
  reduce_query(qx, qz, qr, stab, pivots, n_);
  if (!words_all_zero(query.data(), stride_)) {
    return 0;  // anticommutes with the group: expectation 0
  }
  return qr != 0 ? -1 : 1;
}

bool Tableau::same_state(const Tableau& a, const Tableau& b) {
  if (a.n_ != b.n_) {
    return false;
  }
  PackedRows stab(a.n_, a.words_);
  std::memcpy(stab.bits.data(), a.bits_.data() + a.n_ * a.stride_,
              a.n_ * a.stride_ * sizeof(std::uint64_t));
  std::copy(a.sign_.begin() + static_cast<std::ptrdiff_t>(a.n_),
            a.sign_.end(), stab.sign.begin());
  const auto pivots = echelonize(stab, a.n_);
  std::vector<std::uint64_t> query(a.stride_, 0);
  for (std::size_t i = 0; i < b.n_; ++i) {
    std::copy(b.row_x(b.n_ + i), b.row_x(b.n_ + i) + b.stride_,
              query.begin());
    std::uint8_t qr = b.sign_[b.n_ + i];
    reduce_query(query.data(), query.data() + a.words_, qr, stab, pivots,
                 a.n_);
    if (!words_all_zero(query.data(), a.stride_) || qr != 0) {
      return false;
    }
  }
  return true;
}

std::string Tableau::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < n_; ++i) {
    os << "destab " << i << ": " << row_view(i).str() << "\n";
  }
  for (std::size_t i = 0; i < n_; ++i) {
    os << "stab   " << i << ": " << row_view(n_ + i).str() << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Circuit-level driver
// ---------------------------------------------------------------------------

namespace {

using ir::GateKind;
using ir::Operation;

}  // namespace

bool is_clifford_operation(const Operation& op) {
  if (!op.is_unitary()) {
    return true;  // measure / reset / barrier are fine
  }
  const std::size_t nc = op.controls().size();
  switch (op.kind()) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
      return nc <= 1;
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::SX:
    case GateKind::SXdg:
      return nc == 0;
    case GateKind::Swap:
    case GateKind::ISwap:
    case GateKind::ISwapDg:
      return nc == 0;
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::RX:
    case GateKind::RY:
      return nc == 0 && z_phase_class(op.params()[0]) >= 0;
    default:
      return false;
  }
}

bool is_clifford_circuit(const ir::Circuit& circuit) {
  return std::all_of(circuit.ops().begin(), circuit.ops().end(),
                     is_clifford_operation);
}

void StabilizerSimulator::apply(
    const Operation& op, std::vector<std::pair<ir::Qubit, bool>>* record) {
  if (op.is_barrier()) {
    return;
  }
  if (op.is_measurement()) {
    for (const auto q : op.targets()) {
      const bool outcome = tableau_.measure(q, rng_);
      if (record != nullptr) {
        record->emplace_back(q, outcome);
      }
    }
    return;
  }
  if (op.is_reset()) {
    for (const auto q : op.targets()) {
      if (tableau_.measure(q, rng_)) {
        tableau_.x(q);
      }
    }
    return;
  }
  if (!is_clifford_operation(op)) {
    throw Error::unsupported("StabilizerSimulator: non-Clifford operation " +
                             op.str());
  }
  apply_unitary_clifford(tableau_, op);
}

std::vector<std::pair<ir::Qubit, bool>> StabilizerSimulator::run(
    const ir::Circuit& circuit) {
  if (circuit.num_qubits() != tableau_.num_qubits()) {
    throw Error::bad_input(
        "StabilizerSimulator: circuit width " +
        std::to_string(circuit.num_qubits()) +
        " does not match tableau width " +
        std::to_string(tableau_.num_qubits()));
  }
  trace::Span span("qdt.stab.tableau.run");
  span.attr("backend", "stabilizer")
      .attr("qubits", static_cast<std::uint64_t>(tableau_.num_qubits()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()));
  g_bytes_peak.update_max(
      static_cast<std::int64_t>(tableau_.memory_bytes()));
  std::vector<std::pair<ir::Qubit, bool>> record;
  // Consecutive unitary gates accumulate as lowered GateOps and flush as
  // one batched row sweep; measurements, resets, and non-Clifford
  // rejections flush first so ordering is preserved exactly.
  std::vector<GateOp> pending;
  pending.reserve(kBatchOps + 8);
  const auto flush = [this, &pending] {
    if (!pending.empty()) {
      const obs::ScopedTimer timer(g_gate_seconds);
      tableau_.apply(pending.data(), pending.size());
      pending.clear();
    }
  };
  GateRecorder recorder(&pending);
  for (const auto& op : circuit.ops()) {
    guard::check_deadline();
    if (op.is_barrier()) {
      continue;
    }
    if (op.is_measurement() || op.is_reset()) {
      flush();
      apply(op, &record);
      g_gates.add();
      continue;
    }
    if (!is_clifford_operation(op)) {
      throw Error::unsupported(
          "StabilizerSimulator: non-Clifford operation " + op.str());
    }
    apply_unitary_clifford(recorder, op);
    g_gates.add();
    if (pending.size() >= kBatchOps) {
      flush();
    }
  }
  flush();
  return record;
}

std::map<std::uint64_t, std::size_t> StabilizerSimulator::sample_counts(
    const ir::Circuit& circuit, std::size_t shots) {
  if (tableau_.num_qubits() > 64) {
    throw Error::unsupported(
        "sample_counts: " + std::to_string(tableau_.num_qubits()) +
        "-qubit readouts do not fit the 64-bit histogram key; measure() "
        "per qubit instead");
  }
  std::map<std::uint64_t, std::size_t> counts;
  for (std::size_t s = 0; s < shots; ++s) {
    tableau_ = Tableau(tableau_.num_qubits());
    run(circuit);
    std::uint64_t word = 0;
    for (std::size_t q = 0; q < tableau_.num_qubits(); ++q) {
      if (tableau_.measure(q, rng_)) {
        word |= std::uint64_t{1} << q;
      }
    }
    ++counts[word];
  }
  return counts;
}

}  // namespace qdt::stab
