#include "stab/tableau.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "guard/budget.hpp"
#include "guard/error.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

namespace qdt::stab {

namespace {

obs::Counter& g_gates = obs::counter("qdt.stab.tableau.gates_applied");
obs::Gauge& g_bytes_peak = obs::gauge("qdt.stab.tableau.bytes_peak");
obs::Histogram& g_gate_seconds =
    obs::histogram("qdt.stab.tableau.gate_seconds");

}  // namespace

bool PauliRow::is_identity() const {
  return std::none_of(x.begin(), x.end(), [](bool b) { return b; }) &&
         std::none_of(z.begin(), z.end(), [](bool b) { return b; });
}

std::string PauliRow::str() const {
  std::string s = r ? "-" : "+";
  for (std::size_t q = x.size(); q-- > 0;) {
    if (x[q] && z[q]) {
      s += 'Y';
    } else if (x[q]) {
      s += 'X';
    } else if (z[q]) {
      s += 'Z';
    } else {
      s += 'I';
    }
  }
  return s;
}

Tableau::Tableau(std::size_t num_qubits) : n_(num_qubits) {
  if (n_ == 0) {
    throw std::invalid_argument("Tableau: need at least one qubit");
  }
  rows_.assign(2 * n_, PauliRow{std::vector<bool>(n_, false),
                                std::vector<bool>(n_, false), false});
  for (std::size_t i = 0; i < n_; ++i) {
    rows_[i].x[i] = true;       // destabilizer X_i
    rows_[n_ + i].z[i] = true;  // stabilizer Z_i
  }
}

void Tableau::h(std::size_t q) {
  for (auto& row : rows_) {
    row.r = row.r != (row.x[q] && row.z[q]);
    const bool t = row.x[q];
    row.x[q] = row.z[q];
    row.z[q] = t;
  }
}

void Tableau::s(std::size_t q) {
  for (auto& row : rows_) {
    row.r = row.r != (row.x[q] && row.z[q]);
    row.z[q] = row.z[q] != row.x[q];
  }
}

void Tableau::cx(std::size_t control, std::size_t target) {
  for (auto& row : rows_) {
    row.r = row.r != (row.x[control] && row.z[target] &&
                      (row.x[target] == row.z[control]));
    row.x[target] = row.x[target] != row.x[control];
    row.z[control] = row.z[control] != row.z[target];
  }
}

void Tableau::z(std::size_t q) {
  s(q);
  s(q);
}

void Tableau::x(std::size_t q) {
  h(q);
  z(q);
  h(q);
}

void Tableau::y(std::size_t q) {
  z(q);
  x(q);
}

void Tableau::sdg(std::size_t q) {
  s(q);
  s(q);
  s(q);
}

void Tableau::sx(std::size_t q) {
  // SX = H S H, exactly.
  h(q);
  s(q);
  h(q);
}

void Tableau::sxdg(std::size_t q) {
  h(q);
  sdg(q);
  h(q);
}

void Tableau::cz(std::size_t control, std::size_t target) {
  h(target);
  cx(control, target);
  h(target);
}

void Tableau::swap(std::size_t a, std::size_t b) {
  cx(a, b);
  cx(b, a);
  cx(a, b);
}

namespace {

/// The Aaronson-Gottesman phase exponent of multiplying Pauli (x1, z1) onto
/// (x2, z2): the power of i contributed, in {-1, 0, 1}.
int phase_g(bool x1, bool z1, bool x2, bool z2) {
  if (!x1 && !z1) {
    return 0;
  }
  if (x1 && z1) {  // Y
    return (z2 ? 1 : 0) - (x2 ? 1 : 0);
  }
  if (x1) {  // X
    return z2 ? (x2 ? 1 : -1) : 0;
  }
  // Z
  return x2 ? (z2 ? -1 : 1) : 0;
}

}  // namespace

void Tableau::rowsum_into(PauliRow& h, const PauliRow& i) {
  int phase = (h.r ? 2 : 0) + (i.r ? 2 : 0);
  for (std::size_t j = 0; j < h.x.size(); ++j) {
    phase += phase_g(i.x[j], i.z[j], h.x[j], h.z[j]);
  }
  phase = ((phase % 4) + 4) % 4;
  // The product of commuting-track rows is always +/-, never +/-i.
  h.r = phase == 2;
  for (std::size_t j = 0; j < h.x.size(); ++j) {
    h.x[j] = h.x[j] != i.x[j];
    h.z[j] = h.z[j] != i.z[j];
  }
}

void Tableau::rowsum(std::size_t h, std::size_t i) {
  rowsum_into(rows_[h], rows_[i]);
}

bool Tableau::measure(std::size_t a, Rng& rng) {
  // Random outcome iff some stabilizer anticommutes with Z_a.
  std::size_t p = 2 * n_;
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (rows_[i].x[a]) {
      p = i;
      break;
    }
  }
  if (p < 2 * n_) {
    const bool outcome = rng.coin();
    for (std::size_t i = 0; i < 2 * n_; ++i) {
      if (i != p && rows_[i].x[a]) {
        rowsum(i, p);
      }
    }
    rows_[p - n_] = rows_[p];
    rows_[p] = PauliRow{std::vector<bool>(n_, false),
                        std::vector<bool>(n_, false), outcome};
    rows_[p].z[a] = true;
    return outcome;
  }
  // Deterministic outcome: accumulate the matching destabilizer pattern.
  PauliRow scratch{std::vector<bool>(n_, false),
                   std::vector<bool>(n_, false), false};
  for (std::size_t i = 0; i < n_; ++i) {
    if (rows_[i].x[a]) {
      rowsum_into(scratch, rows_[n_ + i]);
    }
  }
  return scratch.r;
}

double Tableau::prob_one(std::size_t a) const {
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (rows_[i].x[a]) {
      return 0.5;
    }
  }
  PauliRow scratch{std::vector<bool>(n_, false),
                   std::vector<bool>(n_, false), false};
  for (std::size_t i = 0; i < n_; ++i) {
    if (rows_[i].x[a]) {
      rowsum_into(scratch, rows_[n_ + i]);
    }
  }
  return scratch.r ? 1.0 : 0.0;
}

namespace {

/// Echelonize `rows` (over the 2n GF(2) columns, x-part then z-part) with
/// exact sign tracking; returns the pivot (row, column) list.
std::vector<std::pair<std::size_t, std::size_t>> echelonize(
    std::vector<PauliRow>& rows, std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> pivots;
  std::size_t next_row = 0;
  const auto bit = [n](const PauliRow& row, std::size_t col) -> bool {
    return col < n ? row.x[col] : row.z[col - n];
  };
  for (std::size_t col = 0; col < 2 * n && next_row < rows.size(); ++col) {
    std::size_t pivot = rows.size();
    for (std::size_t r = next_row; r < rows.size(); ++r) {
      if (bit(rows[r], col)) {
        pivot = r;
        break;
      }
    }
    if (pivot == rows.size()) {
      continue;
    }
    std::swap(rows[next_row], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != next_row && bit(rows[r], col)) {
        Tableau::rowsum_into(rows[r], rows[next_row]);
      }
    }
    pivots.emplace_back(next_row, col);
    ++next_row;
  }
  return pivots;
}

/// Reduce `query` against echelonized stabilizers; afterwards query is
/// identity iff +/-query was in the group (sign in query.r).
void reduce_query(
    PauliRow& query, const std::vector<PauliRow>& rows,
    const std::vector<std::pair<std::size_t, std::size_t>>& pivots,
    std::size_t n) {
  const auto bit = [n](const PauliRow& row, std::size_t col) -> bool {
    return col < n ? row.x[col] : row.z[col - n];
  };
  for (const auto& [row, col] : pivots) {
    if (bit(query, col)) {
      Tableau::rowsum_into(query, rows[row]);
    }
  }
}

}  // namespace

int Tableau::pauli_expectation(const std::string& paulis) const {
  if (paulis.size() != n_) {
    throw std::invalid_argument("pauli_expectation: length mismatch");
  }
  PauliRow query{std::vector<bool>(n_, false), std::vector<bool>(n_, false),
                 false};
  for (std::size_t q = 0; q < n_; ++q) {
    switch (paulis[n_ - 1 - q]) {  // string is MSB-first
      case 'I':
        break;
      case 'X':
        query.x[q] = true;
        break;
      case 'Y':
        query.x[q] = true;
        query.z[q] = true;
        break;
      case 'Z':
        query.z[q] = true;
        break;
      default:
        throw std::invalid_argument("pauli_expectation: bad character");
    }
  }
  if (query.is_identity()) {
    return 1;
  }
  std::vector<PauliRow> stab(rows_.begin() + static_cast<std::ptrdiff_t>(n_),
                             rows_.end());
  const auto pivots = echelonize(stab, n_);
  reduce_query(query, stab, pivots, n_);
  if (!query.is_identity()) {
    return 0;  // anticommutes with the group: expectation 0
  }
  return query.r ? -1 : 1;
}

bool Tableau::same_state(const Tableau& a, const Tableau& b) {
  if (a.n_ != b.n_) {
    return false;
  }
  std::vector<PauliRow> stab(a.rows_.begin() +
                                 static_cast<std::ptrdiff_t>(a.n_),
                             a.rows_.end());
  const auto pivots = echelonize(stab, a.n_);
  for (std::size_t i = 0; i < b.n_; ++i) {
    PauliRow query = b.stabilizer(i);
    reduce_query(query, stab, pivots, a.n_);
    if (!query.is_identity() || query.r) {
      return false;
    }
  }
  return true;
}

std::string Tableau::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < n_; ++i) {
    os << "destab " << i << ": " << rows_[i].str() << "\n";
  }
  for (std::size_t i = 0; i < n_; ++i) {
    os << "stab   " << i << ": " << rows_[n_ + i].str() << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Circuit-level driver
// ---------------------------------------------------------------------------

namespace {

using ir::GateKind;
using ir::Operation;

/// Clifford classification of a Z-rotation-like phase: 0 = identity,
/// 1 = S, 2 = Z, 3 = Sdg; -1 = non-Clifford.
int z_phase_class(const Phase& p) {
  if (p.is_zero()) {
    return 0;
  }
  if (p == Phase::pi_2()) {
    return 1;
  }
  if (p == Phase::pi()) {
    return 2;
  }
  if (p == Phase::minus_pi_2()) {
    return 3;
  }
  return -1;
}

}  // namespace

bool is_clifford_operation(const Operation& op) {
  if (!op.is_unitary()) {
    return true;  // measure / reset / barrier are fine
  }
  const std::size_t nc = op.controls().size();
  switch (op.kind()) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
      return nc <= 1;
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::SX:
    case GateKind::SXdg:
      return nc == 0;
    case GateKind::Swap:
    case GateKind::ISwap:
    case GateKind::ISwapDg:
      return nc == 0;
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::RX:
    case GateKind::RY:
      return nc == 0 && z_phase_class(op.params()[0]) >= 0;
    default:
      return false;
  }
}

bool is_clifford_circuit(const ir::Circuit& circuit) {
  return std::all_of(circuit.ops().begin(), circuit.ops().end(),
                     is_clifford_operation);
}

void StabilizerSimulator::apply(
    const Operation& op, std::vector<std::pair<ir::Qubit, bool>>* record) {
  if (op.is_barrier()) {
    return;
  }
  if (op.is_measurement()) {
    for (const auto q : op.targets()) {
      const bool outcome = tableau_.measure(q, rng_);
      if (record != nullptr) {
        record->emplace_back(q, outcome);
      }
    }
    return;
  }
  if (op.is_reset()) {
    for (const auto q : op.targets()) {
      if (tableau_.measure(q, rng_)) {
        tableau_.x(q);
      }
    }
    return;
  }
  if (!is_clifford_operation(op)) {
    throw Error::unsupported("StabilizerSimulator: non-Clifford operation " +
                             op.str());
  }
  const auto zclass = [&](int cls, std::size_t q) {
    switch (cls) {
      case 1:
        tableau_.s(q);
        break;
      case 2:
        tableau_.z(q);
        break;
      case 3:
        tableau_.sdg(q);
        break;
      default:
        break;
    }
  };
  if (op.controls().size() == 1) {
    const std::size_t c = op.controls()[0];
    const std::size_t t = op.targets()[0];
    switch (op.kind()) {
      case GateKind::X:
        tableau_.cx(c, t);
        return;
      case GateKind::Z:
        tableau_.cz(c, t);
        return;
      case GateKind::Y:
        tableau_.sdg(t);
        tableau_.cx(c, t);
        tableau_.s(t);
        return;
      case GateKind::I:
        return;
      default:
        throw Error::unsupported(
            "StabilizerSimulator: unsupported controlled gate " + op.str());
    }
  }
  const std::size_t q = op.targets()[0];
  switch (op.kind()) {
    case GateKind::I:
      return;
    case GateKind::X:
      tableau_.x(q);
      return;
    case GateKind::Y:
      tableau_.y(q);
      return;
    case GateKind::Z:
      tableau_.z(q);
      return;
    case GateKind::H:
      tableau_.h(q);
      return;
    case GateKind::S:
      tableau_.s(q);
      return;
    case GateKind::Sdg:
      tableau_.sdg(q);
      return;
    case GateKind::SX:
      tableau_.sx(q);
      return;
    case GateKind::SXdg:
      tableau_.sxdg(q);
      return;
    case GateKind::RZ:
    case GateKind::P:
      zclass(z_phase_class(op.params()[0]), q);
      return;
    case GateKind::RX: {
      tableau_.h(q);
      zclass(z_phase_class(op.params()[0]), q);
      tableau_.h(q);
      return;
    }
    case GateKind::RY: {
      // RY(t) = S RX(t) Sdg.
      tableau_.sdg(q);
      tableau_.h(q);
      zclass(z_phase_class(op.params()[0]), q);
      tableau_.h(q);
      tableau_.s(q);
      return;
    }
    case GateKind::Swap:
      tableau_.swap(op.targets()[0], op.targets()[1]);
      return;
    case GateKind::ISwap:
      // iSWAP = (S x S) CZ SWAP.
      tableau_.swap(op.targets()[0], op.targets()[1]);
      tableau_.cz(op.targets()[0], op.targets()[1]);
      tableau_.s(op.targets()[0]);
      tableau_.s(op.targets()[1]);
      return;
    case GateKind::ISwapDg:
      tableau_.sdg(op.targets()[0]);
      tableau_.sdg(op.targets()[1]);
      tableau_.cz(op.targets()[0], op.targets()[1]);
      tableau_.swap(op.targets()[0], op.targets()[1]);
      return;
    default:
      throw Error::unsupported("StabilizerSimulator: unsupported gate " +
                               op.str());
  }
}

std::vector<std::pair<ir::Qubit, bool>> StabilizerSimulator::run(
    const ir::Circuit& circuit) {
  if (circuit.num_qubits() != tableau_.num_qubits()) {
    throw std::invalid_argument("StabilizerSimulator: width mismatch");
  }
  trace::Span span("qdt.stab.tableau.run");
  span.attr("backend", "stabilizer")
      .attr("qubits", static_cast<std::uint64_t>(tableau_.num_qubits()))
      .attr("gates", static_cast<std::uint64_t>(circuit.ops().size()));
  std::vector<std::pair<ir::Qubit, bool>> record;
  // 2n Pauli rows of 2n + 1 bits each, packed.
  const std::size_t n = tableau_.num_qubits();
  g_bytes_peak.update_max(
      static_cast<std::int64_t>(2 * n * (2 * n + 1) / 8 + 2 * n));
  for (const auto& op : circuit.ops()) {
    guard::check_deadline();
    const obs::ScopedTimer timer(g_gate_seconds);
    apply(op, &record);
    g_gates.add();
  }
  return record;
}

std::map<std::uint64_t, std::size_t> StabilizerSimulator::sample_counts(
    const ir::Circuit& circuit, std::size_t shots) {
  std::map<std::uint64_t, std::size_t> counts;
  for (std::size_t s = 0; s < shots; ++s) {
    tableau_ = Tableau(tableau_.num_qubits());
    run(circuit);
    std::uint64_t word = 0;
    for (std::size_t q = 0; q < tableau_.num_qubits(); ++q) {
      if (tableau_.measure(q, rng_)) {
        word |= std::uint64_t{1} << q;
      }
    }
    ++counts[word];
  }
  return counts;
}

}  // namespace qdt::stab
