#include "stab/reference.hpp"

#include <cstring>

#include "guard/budget.hpp"
#include "guard/error.hpp"
#include "stab/clifford_ops.hpp"

namespace qdt::stab {

namespace {

/// The Aaronson-Gottesman phase exponent of multiplying Pauli (x1, z1) onto
/// (x2, z2): the power of i contributed, in {-1, 0, 1}. The per-bit truth
/// table the packed kernel's popcount masks were derived from.
int phase_g(bool x1, bool z1, bool x2, bool z2) {
  if (!x1 && !z1) {
    return 0;
  }
  if (x1 && z1) {  // Y
    return (z2 ? 1 : 0) - (x2 ? 1 : 0);
  }
  if (x1) {  // X
    return z2 ? (x2 ? 1 : -1) : 0;
  }
  // Z
  return x2 ? (z2 ? -1 : 1) : 0;
}

}  // namespace

ReferenceTableau::ReferenceTableau(std::size_t num_qubits) : n_(num_qubits) {
  if (n_ == 0) {
    throw Error::bad_input("ReferenceTableau: need at least one qubit");
  }
  rows_.assign(2 * n_, Row{std::vector<bool>(n_, false),
                           std::vector<bool>(n_, false), false});
  for (std::size_t i = 0; i < n_; ++i) {
    rows_[i].x[i] = true;       // destabilizer X_i
    rows_[n_ + i].z[i] = true;  // stabilizer Z_i
  }
}

void ReferenceTableau::h(std::size_t q) {
  for (auto& row : rows_) {
    row.r = row.r != (row.x[q] && row.z[q]);
    const bool t = row.x[q];
    row.x[q] = row.z[q];
    row.z[q] = t;
  }
}

void ReferenceTableau::s(std::size_t q) {
  for (auto& row : rows_) {
    row.r = row.r != (row.x[q] && row.z[q]);
    row.z[q] = row.z[q] != row.x[q];
  }
}

void ReferenceTableau::cx(std::size_t control, std::size_t target) {
  for (auto& row : rows_) {
    row.r = row.r != (row.x[control] && row.z[target] &&
                      (row.x[target] == row.z[control]));
    row.x[target] = row.x[target] != row.x[control];
    row.z[control] = row.z[control] != row.z[target];
  }
}

void ReferenceTableau::z(std::size_t q) {
  s(q);
  s(q);
}

void ReferenceTableau::x(std::size_t q) {
  h(q);
  z(q);
  h(q);
}

void ReferenceTableau::y(std::size_t q) {
  z(q);
  x(q);
}

void ReferenceTableau::sdg(std::size_t q) {
  s(q);
  s(q);
  s(q);
}

void ReferenceTableau::sx(std::size_t q) {
  // SX = H S H, exactly.
  h(q);
  s(q);
  h(q);
}

void ReferenceTableau::sxdg(std::size_t q) {
  h(q);
  sdg(q);
  h(q);
}

void ReferenceTableau::cz(std::size_t control, std::size_t target) {
  h(target);
  cx(control, target);
  h(target);
}

void ReferenceTableau::swap(std::size_t a, std::size_t b) {
  cx(a, b);
  cx(b, a);
  cx(a, b);
}

void ReferenceTableau::rowsum_into(Row& h, const Row& i) {
  int phase = (h.r ? 2 : 0) + (i.r ? 2 : 0);
  for (std::size_t j = 0; j < h.x.size(); ++j) {
    phase += phase_g(i.x[j], i.z[j], h.x[j], h.z[j]);
  }
  phase = ((phase % 4) + 4) % 4;
  // The product of commuting-track rows is always +/-, never +/-i.
  h.r = phase == 2;
  for (std::size_t j = 0; j < h.x.size(); ++j) {
    h.x[j] = h.x[j] != i.x[j];
    h.z[j] = h.z[j] != i.z[j];
  }
}

void ReferenceTableau::rowsum(std::size_t h, std::size_t i) {
  rowsum_into(rows_[h], rows_[i]);
}

bool ReferenceTableau::measure(std::size_t a, Rng& rng) {
  // Random outcome iff some stabilizer anticommutes with Z_a.
  std::size_t p = 2 * n_;
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (rows_[i].x[a]) {
      p = i;
      break;
    }
  }
  if (p < 2 * n_) {
    const bool outcome = rng.coin();
    for (std::size_t i = 0; i < 2 * n_; ++i) {
      if (i != p && rows_[i].x[a]) {
        rowsum(i, p);
      }
    }
    rows_[p - n_] = rows_[p];
    rows_[p] = Row{std::vector<bool>(n_, false), std::vector<bool>(n_, false),
                   outcome};
    rows_[p].z[a] = true;
    return outcome;
  }
  // Deterministic outcome: accumulate the matching destabilizer pattern.
  Row scratch{std::vector<bool>(n_, false), std::vector<bool>(n_, false),
              false};
  for (std::size_t i = 0; i < n_; ++i) {
    if (rows_[i].x[a]) {
      rowsum_into(scratch, rows_[n_ + i]);
    }
  }
  return scratch.r;
}

double ReferenceTableau::prob_one(std::size_t a) const {
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (rows_[i].x[a]) {
      return 0.5;
    }
  }
  Row scratch{std::vector<bool>(n_, false), std::vector<bool>(n_, false),
              false};
  for (std::size_t i = 0; i < n_; ++i) {
    if (rows_[i].x[a]) {
      rowsum_into(scratch, rows_[n_ + i]);
    }
  }
  return scratch.r ? 1.0 : 0.0;
}

namespace {

using Row = ReferenceTableau::Row;

bool row_is_identity(const Row& row) {
  for (std::size_t j = 0; j < row.x.size(); ++j) {
    if (row.x[j] || row.z[j]) {
      return false;
    }
  }
  return true;
}

bool row_bit(const Row& row, std::size_t col, std::size_t n) {
  return col < n ? row.x[col] : row.z[col - n];
}

/// phase_g-tracked rowsum for the free-standing Row copies below.
void free_rowsum_into(Row& h, const Row& i) {
  int phase = (h.r ? 2 : 0) + (i.r ? 2 : 0);
  for (std::size_t j = 0; j < h.x.size(); ++j) {
    phase += phase_g(i.x[j], i.z[j], h.x[j], h.z[j]);
  }
  phase = ((phase % 4) + 4) % 4;
  h.r = phase == 2;
  for (std::size_t j = 0; j < h.x.size(); ++j) {
    h.x[j] = h.x[j] != i.x[j];
    h.z[j] = h.z[j] != i.z[j];
  }
}

/// Echelonize `rows` (over the 2n GF(2) columns, x-part then z-part) with
/// exact sign tracking; returns the pivot (row, column) list.
std::vector<std::pair<std::size_t, std::size_t>> echelonize(
    std::vector<Row>& rows, std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> pivots;
  std::size_t next_row = 0;
  for (std::size_t col = 0; col < 2 * n && next_row < rows.size(); ++col) {
    std::size_t pivot = rows.size();
    for (std::size_t r = next_row; r < rows.size(); ++r) {
      if (row_bit(rows[r], col, n)) {
        pivot = r;
        break;
      }
    }
    if (pivot == rows.size()) {
      continue;
    }
    std::swap(rows[next_row], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != next_row && row_bit(rows[r], col, n)) {
        free_rowsum_into(rows[r], rows[next_row]);
      }
    }
    pivots.emplace_back(next_row, col);
    ++next_row;
  }
  return pivots;
}

void reduce_query(
    Row& query, const std::vector<Row>& rows,
    const std::vector<std::pair<std::size_t, std::size_t>>& pivots,
    std::size_t n) {
  for (const auto& [row, col] : pivots) {
    if (row_bit(query, col, n)) {
      free_rowsum_into(query, rows[row]);
    }
  }
}

}  // namespace

int ReferenceTableau::pauli_expectation(const std::string& paulis) const {
  if (paulis.size() != n_) {
    throw Error::bad_input("pauli_expectation: observable length " +
                           std::to_string(paulis.size()) +
                           " does not match qubit count " +
                           std::to_string(n_));
  }
  Row query{std::vector<bool>(n_, false), std::vector<bool>(n_, false),
            false};
  for (std::size_t q = 0; q < n_; ++q) {
    switch (paulis[n_ - 1 - q]) {  // string is MSB-first
      case 'I':
        break;
      case 'X':
        query.x[q] = true;
        break;
      case 'Y':
        query.x[q] = true;
        query.z[q] = true;
        break;
      case 'Z':
        query.z[q] = true;
        break;
      default:
        throw Error::bad_input(
            std::string("pauli_expectation: bad character '") +
            paulis[n_ - 1 - q] + "' (want I/X/Y/Z)");
    }
  }
  if (row_is_identity(query)) {
    return 1;
  }
  std::vector<Row> stab(rows_.begin() + static_cast<std::ptrdiff_t>(n_),
                        rows_.end());
  const auto pivots = echelonize(stab, n_);
  reduce_query(query, stab, pivots, n_);
  if (!row_is_identity(query)) {
    return 0;  // anticommutes with the group: expectation 0
  }
  return query.r ? -1 : 1;
}

bool ReferenceTableau::same_state(const ReferenceTableau& a,
                                  const ReferenceTableau& b) {
  if (a.n_ != b.n_) {
    return false;
  }
  std::vector<Row> stab(a.rows_.begin() + static_cast<std::ptrdiff_t>(a.n_),
                        a.rows_.end());
  const auto pivots = echelonize(stab, a.n_);
  for (std::size_t i = 0; i < b.n_; ++i) {
    Row query = b.rows_[b.n_ + i];
    reduce_query(query, stab, pivots, a.n_);
    if (!row_is_identity(query) || query.r) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint64_t> ReferenceTableau::packed_bits() const {
  const std::size_t words = (n_ + 63) / 64;
  const std::size_t stride = 2 * words;
  std::vector<std::uint64_t> out(2 * n_ * stride, 0);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    std::uint64_t* px = out.data() + row * stride;
    std::uint64_t* pz = px + words;
    for (std::size_t q = 0; q < n_; ++q) {
      if (rows_[row].x[q]) {
        px[q >> 6] |= 1ULL << (q & 63);
      }
      if (rows_[row].z[q]) {
        pz[q >> 6] |= 1ULL << (q & 63);
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> ReferenceTableau::packed_signs() const {
  std::vector<std::uint8_t> out(2 * n_, 0);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    out[row] = rows_[row].r ? 1 : 0;
  }
  return out;
}

std::vector<std::pair<ir::Qubit, bool>> ReferenceSimulator::run(
    const ir::Circuit& circuit) {
  if (circuit.num_qubits() != tableau_.num_qubits()) {
    throw Error::bad_input(
        "ReferenceSimulator: circuit width " +
        std::to_string(circuit.num_qubits()) +
        " does not match tableau width " +
        std::to_string(tableau_.num_qubits()));
  }
  std::vector<std::pair<ir::Qubit, bool>> record;
  for (const auto& op : circuit.ops()) {
    guard::check_deadline();
    if (op.is_barrier()) {
      continue;
    }
    if (op.is_measurement()) {
      for (const auto q : op.targets()) {
        record.emplace_back(q, tableau_.measure(q, rng_));
      }
      continue;
    }
    if (op.is_reset()) {
      for (const auto q : op.targets()) {
        if (tableau_.measure(q, rng_)) {
          tableau_.x(q);
        }
      }
      continue;
    }
    apply_unitary_clifford(tableau_, op);
  }
  return record;
}

bool tableaus_equal(const Tableau& packed, const ReferenceTableau& ref) {
  if (packed.num_qubits() != ref.num_qubits()) {
    return false;
  }
  const auto ref_bits = ref.packed_bits();
  const auto ref_signs = ref.packed_signs();
  const auto& bits = packed.words();
  const auto& signs = packed.signs();
  return bits.size() == ref_bits.size() && signs.size() == ref_signs.size() &&
         std::memcmp(bits.data(), ref_bits.data(),
                     bits.size() * sizeof(std::uint64_t)) == 0 &&
         std::memcmp(signs.data(), ref_signs.data(), signs.size()) == 0;
}

}  // namespace qdt::stab
