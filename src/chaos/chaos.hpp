// qdt::chaos — fault-schedule chaos mode.
//
// PR 2's guard layer promises: under resource exhaustion a robust task may
// *degrade* (truncated MPS, single-amplitude TN rung) or *fail* with a
// typed ResourceExhausted — but it must never crash and never return a
// wrong answer while claiming success. Chaos mode turns that promise into
// an executable invariant: each case is re-run under a randomized
// guard::inject_fault schedule and the result is checked against a
// fault-free reference computed beforehand.
//
// Classification of a chaos run:
//   Agree       completed on an exact rung and matched the reference, or
//               failed cleanly with a qdt::Error
//   Mismatch    completed on an exact rung with a WRONG state, or a
//               degraded rung's answer is inconsistent with the reference
//   Escape      a non-qdt::Error exception crossed the boundary
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/oracle.hpp"
#include "common/rng.hpp"
#include "guard/error.hpp"
#include "ir/circuit.hpp"

namespace qdt::chaos {

struct FaultSpec {
  Resource resource = Resource::None;
  std::uint64_t nth = 0;  // 1 = the very next checkpoint of that resource

  std::string str() const;
};

struct ChaosOptions {
  /// Faults armed per run, in [1, max_faults].
  std::size_t max_faults = 3;
  /// Checkpoint index range for each armed fault.
  std::uint64_t max_nth = 64;
  double tolerance = 1e-6;
  /// When nonzero, run the case under a thread-local dd::PackageConfig
  /// with this gc_threshold — forcing DD garbage collections at
  /// randomized points mid-circuit — and additionally check that a
  /// fault-free DD run with GC forced on is *bitwise* identical to one
  /// with GC disabled. 0 leaves the package defaults untouched.
  std::size_t dd_gc_threshold = 0;
};

struct ChaosResult {
  Outcome outcome = Outcome::Agree;
  std::string detail;
  std::vector<FaultSpec> schedule;
  /// Stages attempted by the robust ladder, "stage" or "stage!error".
  std::vector<std::string> attempts;
  bool degraded = false;
  std::uint64_t faults_fired = 0;
};

/// Draw a random fault schedule from `rng`.
std::vector<FaultSpec> random_fault_schedule(Rng& rng,
                                             const ChaosOptions& options);

/// Run `circuit` through core::simulate_robust under `schedule`, then
/// check the robustness invariant against a fault-free array/DD reference.
/// clear_faults() is called on entry and exit — a stale armed fault from a
/// previous case must never leak into this run, nor this run's into the
/// next.
ChaosResult run_chaos_case(const ir::Circuit& circuit,
                           const std::vector<FaultSpec>& schedule,
                           const ChaosOptions& options = {});

}  // namespace qdt::chaos
