// qdt::chaos — the findings corpus.
//
// Every finding (mismatch or escape) is persisted as a standalone,
// one-command repro: `case_<seed>_<index>.qasm` holds the full failing
// circuit, `case_<seed>_<index>.min.qasm` the shrunken version, and
// `case_<seed>_<index>.json` the metadata: classification, detail, family,
// mutation trail, fault schedule, qdt.chaos.* counter snapshot, and the
// exact `qdt fuzz` replay command line. A fuzz run over an existing corpus
// directory appends; nothing is ever overwritten silently (the seed/index
// pair is the identity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace qdt::chaos {

struct CorpusEntry {
  std::uint64_t master_seed = 0;
  std::uint64_t case_seed = 0;
  std::size_t case_index = 0;
  std::string classification;  // outcome_name(...)
  std::string detail;
  std::string family;
  std::vector<std::string> mutations;
  std::vector<std::string> checks;       // per-check "name: outcome"
  std::vector<std::string> fault_schedule;  // chaos mode only
  bool chaos = false;
  // The full option set reproduction depends on: the planted adapter must
  // be re-armed, parser fuzzing consumes RNG draws before the chaos
  // schedule is drawn, and the generator caps shape the circuit.
  std::string plant;        // planted adapter name, empty when none
  bool parser_fuzz = true;
  std::size_t max_qubits = 0;  // generator caps (0: leave unset on replay)
  std::size_t max_ops = 0;
  bool clifford = false;  // Clifford-only generation lane
  /// Parser findings: the raw mutated QASM text that triggered the failure
  /// (persisted verbatim as the .qasm artifact instead of the circuit).
  std::string raw_text;
};

/// Write one finding into `dir` (created if missing). `shrunk` may be
/// nullptr when shrinking was disabled or did not reduce anything. Returns
/// the path of the JSON metadata file.
std::string write_finding(const std::string& dir, const CorpusEntry& entry,
                          const ir::Circuit& circuit,
                          const ir::Circuit* shrunk);

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string json_escape(const std::string& s);

}  // namespace qdt::chaos
