// qdt::chaos — the fuzz driver.
//
// run_fuzz() generates `cases` circuits (each a pure function of
// splitmix64(seed, index), so any case replays in isolation), pushes each
// through the differential oracle, the parser oracle, and — in chaos mode
// — a randomized fault schedule, then classifies, shrinks, and persists
// every finding into the corpus. Counters land under qdt.chaos.* in the
// obs registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "chaos/generator.hpp"
#include "chaos/oracle.hpp"

namespace qdt::chaos {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t cases = 100;
  /// When true, `seed` is used directly as the per-case Rng seed instead
  /// of being routed through case_seed(seed, index) — the corpus replay
  /// path (`qdt fuzz --case-seed <stored case_seed>`). Run with cases = 1:
  /// every case would be identical otherwise.
  bool seed_is_case_seed = false;
  /// Planted-bug adapter name ("tflip", "cxdrop", "phasedrift"; empty:
  /// none). When set, the oracle runs default_state_adapters() plus
  /// planted_adapter(plant), overriding oracle.adapters — and the name is
  /// recorded in the corpus so replay commands re-arm the same plant.
  std::string plant;
  /// Re-run each case under a randomized guard fault schedule.
  bool chaos = false;
  /// Mutate the QASM text of each case and fuzz the parser with it.
  bool parser_fuzz = true;
  /// Shrink findings to a minimal repro before persisting.
  bool shrink_findings = true;
  /// Directory findings are written to; empty: keep them in memory only.
  std::string corpus_dir;
  GeneratorConfig generator;
  OracleOptions oracle;
  ChaosOptions chaos_options;
  /// Progress / finding log (nullptr: silent).
  std::ostream* log = nullptr;
  /// Log every case (family, width, size) before running it.
  bool trace = false;
  /// Worker threads pulling cases (`qdt fuzz --jobs N`). Each case is a
  /// pure function of its case_seed, so the set of findings is identical at
  /// any job count (findings are reported sorted by case index); only log
  /// interleaving differs. 0 or 1 runs on the calling thread. Fault
  /// injection and budgets are thread-local: workers adopt the caller's
  /// budget, and chaos fault schedules arm only the worker's own thread.
  std::size_t jobs = 1;
  /// Cooperative interrupt (the CLI points this at its SIGINT/SIGTERM
  /// flag). Checked between cases on every worker: in-flight cases run to
  /// completion (their findings are shrunk and persisted like any other),
  /// no new case starts, and the report comes back with interrupted = true
  /// and `cases` = how many actually ran. nullptr: never interrupted.
  const std::atomic<bool>* stop = nullptr;
};

struct Finding {
  std::size_t case_index = 0;
  std::uint64_t case_seed = 0;
  std::string classification;
  std::string detail;
  bool chaos = false;
  ir::Circuit circuit;
  ir::Circuit shrunk;   // == circuit when shrinking is off / no progress
  std::string corpus_json;  // metadata path, empty when not persisted
};

struct FuzzReport {
  std::size_t cases = 0;
  std::size_t agree = 0;
  std::size_t mismatch = 0;
  std::size_t typed_errors = 0;
  std::size_t escapes = 0;
  std::size_t parser_cases = 0;
  std::size_t parser_rejected = 0;  // typed BadInput on mutated text (fine)
  std::size_t chaos_cases = 0;
  std::size_t chaos_degraded = 0;
  std::size_t chaos_faults_fired = 0;
  /// True when options.stop flipped before every case had run. The
  /// findings gathered so far are complete (shrunk + persisted).
  bool interrupted = false;
  std::vector<Finding> findings;

  /// The acceptance gate: no cross-backend mismatch, no untyped escape.
  bool clean() const { return mismatch == 0 && escapes == 0; }
};

/// Per-case seed derivation (splitmix64 over master ^ index) — exposed so
/// the corpus replay command and the tests agree on it.
std::uint64_t case_seed(std::uint64_t master_seed, std::size_t index);

FuzzReport run_fuzz(const FuzzOptions& options);

}  // namespace qdt::chaos
