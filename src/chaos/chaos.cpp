#include "chaos/chaos.hpp"

#include <cmath>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

#include "core/tasks.hpp"
#include "dd/package.hpp"
#include "guard/budget.hpp"

namespace qdt::chaos {

namespace {

const Resource kFaultable[] = {
    Resource::Memory,     Resource::DdNodes, Resource::TnElements,
    Resource::MpsBond,    Resource::Deadline,
};

void arm(const std::vector<FaultSpec>& schedule) {
  guard::clear_faults();
  for (const auto& f : schedule) {
    guard::inject_fault(f.resource, f.nth);
  }
}

bool stage_is_exact(const std::string& stage) {
  // Truncated MPS is the one rung allowed to return an approximate state;
  // the single-amplitude TN rung is exact but partial.
  return stage.find("truncated") == std::string::npos;
}

}  // namespace

std::string FaultSpec::str() const {
  return std::string(resource_name(resource)) + ":" + std::to_string(nth);
}

std::vector<FaultSpec> random_fault_schedule(Rng& rng,
                                             const ChaosOptions& options) {
  std::vector<FaultSpec> schedule;
  const std::size_t count = 1 + rng.index(options.max_faults);
  for (std::size_t i = 0; i < count; ++i) {
    FaultSpec f;
    f.resource = kFaultable[rng.index(std::size(kFaultable))];
    f.nth = 1 + rng.index(options.max_nth);
    schedule.push_back(f);
  }
  return schedule;
}

ChaosResult run_chaos_case(const ir::Circuit& circuit,
                           const std::vector<FaultSpec>& schedule,
                           const ChaosOptions& options) {
  ChaosResult out;
  out.schedule = schedule;
  const ir::Circuit unitary = circuit.unitary_part();

  // GC-stress lane: shrink the collection threshold so the DD rungs hit
  // garbage-collection safe points mid-circuit, on top of the injected
  // faults. The scope covers the whole case including the reference run —
  // GC must be semantically invisible everywhere.
  std::optional<dd::ScopedPackageConfig> gc_stress;
  if (options.dd_gc_threshold != 0) {
    dd::PackageConfig cfg = dd::current_package_config();
    cfg.gc_threshold = options.dd_gc_threshold;
    gc_stress.emplace(cfg);
  }

  // Fault-free reference, computed before anything is armed.
  guard::clear_faults();
  std::vector<Complex> reference;
  try {
    core::SimulateOptions opts;
    opts.want_state = true;
    auto res = core::simulate(unitary, core::SimBackend::Array, opts);
    if (!res.state.has_value()) {
      throw Error::internal("chaos: array backend produced no state");
    }
    reference = std::move(*res.state);
  } catch (const Error&) {
    // No reference (width/budget) — the invariant degenerates to "no
    // crash, no untyped escape", which is still worth asserting.
  }

  // -- simulate_robust under fire -------------------------------------------
  arm(schedule);
  try {
    core::SimulateOptions opts;
    opts.want_state = true;
    const auto robust = core::simulate_robust(unitary, opts);
    out.degraded = robust.degraded();
    std::string final_stage;
    for (const auto& step : robust.attempts) {
      out.attempts.push_back(step.error.empty() ? step.stage
                                                : step.stage + "!" +
                                                      step.error);
      if (step.error.empty()) {
        final_stage = step.stage;
      }
    }
    if (!reference.empty() && robust.result.state.has_value()) {
      const auto& state = *robust.result.state;
      if (state.size() == reference.size() && stage_is_exact(final_stage)) {
        const double dist = state_distance_up_to_phase(reference, state);
        if (!(dist <= options.tolerance)) {
          out.outcome = Outcome::Mismatch;
          out.detail = "chaos run on " + final_stage +
                       " returned a wrong state (deviation " +
                       std::to_string(dist) + ")";
        }
      } else if (state.size() == 1 && reference.size() > 1) {
        // Single-amplitude TN rung: <0...0|C|0...0> is exact up to the
        // global phase the reference fixes — compare magnitudes.
        const double dist =
            std::abs(std::abs(state[0]) - std::abs(reference[0]));
        if (!(dist <= options.tolerance)) {
          out.outcome = Outcome::Mismatch;
          out.detail = "degraded single-amplitude answer off by " +
                       std::to_string(dist);
        }
      }
    }
  } catch (const Error& e) {
    // Typed failure is within contract (the whole ladder may exhaust).
    out.attempts.push_back(std::string("failed!") + e.code_name() + ": " +
                           e.what());
  } catch (const std::exception& e) {
    out.outcome = Outcome::Escape;
    out.detail = std::string("simulate_robust escape: ") + e.what();
  } catch (...) {
    out.outcome = Outcome::Escape;
    out.detail = "simulate_robust escape: non-standard exception";
  }
  out.faults_fired = guard::faults_fired();

  // -- verify_robust under fire ---------------------------------------------
  // c ~ c is trivially equivalent; under faults the verify ladder may
  // degrade or die typed, but a conclusive "not equivalent" is a wrong
  // answer.
  if (out.outcome == Outcome::Agree && !unitary.empty()) {
    arm(schedule);
    try {
      const auto robust = core::verify_robust(unitary, unitary);
      if (robust.result.conclusive && !robust.result.equivalent) {
        out.outcome = Outcome::Mismatch;
        out.detail = "chaos verify refuted c ~ c: " + robust.result.detail;
      }
      out.degraded = out.degraded || robust.degraded();
    } catch (const Error&) {
      // typed — fine
    } catch (const std::exception& e) {
      out.outcome = Outcome::Escape;
      out.detail = std::string("verify_robust escape: ") + e.what();
    } catch (...) {
      out.outcome = Outcome::Escape;
      out.detail = "verify_robust escape: non-standard exception";
    }
    out.faults_fired += guard::faults_fired();
  }

  // -- GC bitwise differential (fault-free) ---------------------------------
  // Garbage collection may only reclaim memory, never perturb amplitudes:
  // a DD run with GC forced at the stress threshold must produce output
  // bitwise identical to one where collection never triggers. Weights are
  // interned, so even a one-ulp drift from a rebuilt node would show here.
  if (options.dd_gc_threshold != 0 && out.outcome == Outcome::Agree &&
      !unitary.empty()) {
    guard::clear_faults();
    const auto run_dd = [&](std::size_t gc_threshold) {
      dd::PackageConfig cfg = dd::current_package_config();
      cfg.gc_threshold = gc_threshold;
      const dd::ScopedPackageConfig scope(cfg);
      core::SimulateOptions opts;
      opts.want_state = true;
      return core::simulate(unitary, core::SimBackend::DecisionDiagram,
                            opts);
    };
    try {
      const auto gc_on = run_dd(options.dd_gc_threshold);
      const auto gc_off = run_dd(0);  // 0 = the count trigger never arms
      if (gc_on.state.has_value() && gc_off.state.has_value()) {
        const auto& a = *gc_on.state;
        const auto& b = *gc_off.state;
        const bool identical =
            a.size() == b.size() &&
            (a.empty() ||
             std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)) ==
                 0);
        if (!identical) {
          double max_dev = 0.0;
          for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
            max_dev = std::max(max_dev, std::abs(a[i] - b[i]));
          }
          std::ostringstream dev;
          dev.precision(3);
          dev << std::scientific << max_dev;
          out.outcome = Outcome::Mismatch;
          out.detail = "dd state with gc_threshold=" +
                       std::to_string(options.dd_gc_threshold) +
                       " differs bitwise from the gc-disabled run " +
                       "(max deviation " + dev.str() + ")";
        }
      }
    } catch (const Error&) {
      // Typed failure (width/budget) is within contract for both runs.
    } catch (const std::exception& e) {
      out.outcome = Outcome::Escape;
      out.detail = std::string("gc differential escape: ") + e.what();
    } catch (...) {
      out.outcome = Outcome::Escape;
      out.detail = "gc differential escape: non-standard exception";
    }
  }

  // Never leak an armed fault into the next case.
  guard::clear_faults();
  return out;
}

}  // namespace qdt::chaos
