#include "chaos/chaos.hpp"

#include <cmath>
#include <utility>

#include "core/tasks.hpp"
#include "guard/budget.hpp"

namespace qdt::chaos {

namespace {

const Resource kFaultable[] = {
    Resource::Memory,     Resource::DdNodes, Resource::TnElements,
    Resource::MpsBond,    Resource::Deadline,
};

void arm(const std::vector<FaultSpec>& schedule) {
  guard::clear_faults();
  for (const auto& f : schedule) {
    guard::inject_fault(f.resource, f.nth);
  }
}

bool stage_is_exact(const std::string& stage) {
  // Truncated MPS is the one rung allowed to return an approximate state;
  // the single-amplitude TN rung is exact but partial.
  return stage.find("truncated") == std::string::npos;
}

}  // namespace

std::string FaultSpec::str() const {
  return std::string(resource_name(resource)) + ":" + std::to_string(nth);
}

std::vector<FaultSpec> random_fault_schedule(Rng& rng,
                                             const ChaosOptions& options) {
  std::vector<FaultSpec> schedule;
  const std::size_t count = 1 + rng.index(options.max_faults);
  for (std::size_t i = 0; i < count; ++i) {
    FaultSpec f;
    f.resource = kFaultable[rng.index(std::size(kFaultable))];
    f.nth = 1 + rng.index(options.max_nth);
    schedule.push_back(f);
  }
  return schedule;
}

ChaosResult run_chaos_case(const ir::Circuit& circuit,
                           const std::vector<FaultSpec>& schedule,
                           const ChaosOptions& options) {
  ChaosResult out;
  out.schedule = schedule;
  const ir::Circuit unitary = circuit.unitary_part();

  // Fault-free reference, computed before anything is armed.
  guard::clear_faults();
  std::vector<Complex> reference;
  try {
    core::SimulateOptions opts;
    opts.want_state = true;
    auto res = core::simulate(unitary, core::SimBackend::Array, opts);
    if (!res.state.has_value()) {
      throw Error::internal("chaos: array backend produced no state");
    }
    reference = std::move(*res.state);
  } catch (const Error&) {
    // No reference (width/budget) — the invariant degenerates to "no
    // crash, no untyped escape", which is still worth asserting.
  }

  // -- simulate_robust under fire -------------------------------------------
  arm(schedule);
  try {
    core::SimulateOptions opts;
    opts.want_state = true;
    const auto robust = core::simulate_robust(unitary, opts);
    out.degraded = robust.degraded();
    std::string final_stage;
    for (const auto& step : robust.attempts) {
      out.attempts.push_back(step.error.empty() ? step.stage
                                                : step.stage + "!" +
                                                      step.error);
      if (step.error.empty()) {
        final_stage = step.stage;
      }
    }
    if (!reference.empty() && robust.result.state.has_value()) {
      const auto& state = *robust.result.state;
      if (state.size() == reference.size() && stage_is_exact(final_stage)) {
        const double dist = state_distance_up_to_phase(reference, state);
        if (!(dist <= options.tolerance)) {
          out.outcome = Outcome::Mismatch;
          out.detail = "chaos run on " + final_stage +
                       " returned a wrong state (deviation " +
                       std::to_string(dist) + ")";
        }
      } else if (state.size() == 1 && reference.size() > 1) {
        // Single-amplitude TN rung: <0...0|C|0...0> is exact up to the
        // global phase the reference fixes — compare magnitudes.
        const double dist =
            std::abs(std::abs(state[0]) - std::abs(reference[0]));
        if (!(dist <= options.tolerance)) {
          out.outcome = Outcome::Mismatch;
          out.detail = "degraded single-amplitude answer off by " +
                       std::to_string(dist);
        }
      }
    }
  } catch (const Error& e) {
    // Typed failure is within contract (the whole ladder may exhaust).
    out.attempts.push_back(std::string("failed!") + e.code_name() + ": " +
                           e.what());
  } catch (const std::exception& e) {
    out.outcome = Outcome::Escape;
    out.detail = std::string("simulate_robust escape: ") + e.what();
  } catch (...) {
    out.outcome = Outcome::Escape;
    out.detail = "simulate_robust escape: non-standard exception";
  }
  out.faults_fired = guard::faults_fired();

  // -- verify_robust under fire ---------------------------------------------
  // c ~ c is trivially equivalent; under faults the verify ladder may
  // degrade or die typed, but a conclusive "not equivalent" is a wrong
  // answer.
  if (out.outcome == Outcome::Agree && !unitary.empty()) {
    arm(schedule);
    try {
      const auto robust = core::verify_robust(unitary, unitary);
      if (robust.result.conclusive && !robust.result.equivalent) {
        out.outcome = Outcome::Mismatch;
        out.detail = "chaos verify refuted c ~ c: " + robust.result.detail;
      }
      out.degraded = out.degraded || robust.degraded();
    } catch (const Error&) {
      // typed — fine
    } catch (const std::exception& e) {
      out.outcome = Outcome::Escape;
      out.detail = std::string("verify_robust escape: ") + e.what();
    } catch (...) {
      out.outcome = Outcome::Escape;
      out.detail = "verify_robust escape: non-standard exception";
    }
    out.faults_fired += guard::faults_fired();
  }

  // Never leak an armed fault into the next case.
  guard::clear_faults();
  return out;
}

}  // namespace qdt::chaos
