#include "chaos/shrink.hpp"

#include <algorithm>
#include <vector>

#include "guard/error.hpp"

namespace qdt::chaos {

namespace {

using ir::Circuit;
using ir::Operation;
using ir::Qubit;

Circuit from_ops(std::size_t num_qubits, const std::vector<Operation>& ops) {
  Circuit c(num_qubits, "shrunk");
  for (const auto& op : ops) {
    c.append(op);
  }
  return c;
}

}  // namespace

Circuit compact_qubits(const Circuit& c, std::size_t* removed) {
  std::vector<bool> used(c.num_qubits(), false);
  for (const auto& op : c.ops()) {
    if (op.is_barrier()) {
      continue;  // barriers name qubit 0 but touch nothing
    }
    for (const auto q : op.qubits()) {
      used[q] = true;
    }
  }
  std::vector<Qubit> remap(c.num_qubits(), 0);
  std::size_t next = 0;
  for (std::size_t q = 0; q < c.num_qubits(); ++q) {
    if (used[q]) {
      remap[q] = static_cast<Qubit>(next++);
    }
  }
  const std::size_t new_width = std::max<std::size_t>(next, 1);
  if (removed != nullptr) {
    *removed = c.num_qubits() - new_width;
  }
  if (new_width == c.num_qubits()) {
    return c;
  }
  Circuit out(new_width, c.name());
  for (const auto& op : c.ops()) {
    if (op.is_barrier()) {
      out.barrier();
      continue;
    }
    out.append(op.remapped(remap));
  }
  return out;
}

ShrinkResult shrink(const Circuit& failing, const FailPredicate& still_fails,
                    std::size_t max_predicate_calls) {
  ShrinkResult result;
  result.minimal = failing;
  std::vector<Operation> ops(failing.ops().begin(), failing.ops().end());
  const std::size_t initial_ops = ops.size();
  const std::size_t initial_width = failing.num_qubits();

  const auto budget_left = [&]() {
    return result.predicate_calls < max_predicate_calls;
  };
  const auto check = [&](const Circuit& candidate) {
    ++result.predicate_calls;
    try {
      return still_fails(candidate);
    } catch (...) {
      // A predicate that *throws* on the candidate is treated as "still
      // failing" — the escape is the failure being chased.
      return true;
    }
  };

  // -- ddmin over operations -------------------------------------------------
  // Try deleting chunks of size |ops|/2, /4, ... 1; restart from the big
  // chunks after any successful deletion until a fixpoint.
  bool progress = true;
  while (progress && budget_left()) {
    progress = false;
    for (std::size_t chunk = std::max<std::size_t>(ops.size() / 2, 1);
         chunk >= 1 && budget_left(); chunk /= 2) {
      for (std::size_t start = 0; start < ops.size() && budget_left();) {
        std::vector<Operation> candidate;
        candidate.reserve(ops.size());
        const std::size_t end = std::min(start + chunk, ops.size());
        candidate.insert(candidate.end(), ops.begin(),
                         ops.begin() + static_cast<std::ptrdiff_t>(start));
        candidate.insert(candidate.end(),
                         ops.begin() + static_cast<std::ptrdiff_t>(end),
                         ops.end());
        const Circuit cand = from_ops(initial_width, candidate);
        if (check(cand)) {
          ops = std::move(candidate);
          result.minimal = cand;
          progress = true;
          // keep `start` — the next chunk slid into this position
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) {
        break;
      }
    }
  }

  // -- drop idle qubits ------------------------------------------------------
  std::size_t removed = 0;
  const Circuit compacted = compact_qubits(result.minimal, &removed);
  if (removed > 0 && budget_left() && check(compacted)) {
    result.minimal = compacted;
    result.qubits_removed = removed;
  }

  result.ops_removed = initial_ops - result.minimal.size();
  return result;
}

}  // namespace qdt::chaos
