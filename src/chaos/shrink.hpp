// qdt::chaos — greedy repro minimization.
//
// Given a failing circuit and a predicate that re-runs the failure check,
// the shrinker deletes as much as it can while the failure still
// reproduces: first whole chunks of operations (ddmin-style, halving chunk
// sizes down to single ops), then idle qubits (compacting the width). The
// result is the minimal repro that lands in the corpus as a standalone
// .qasm file.
//
// The predicate must be deterministic — it is called hundreds of times and
// a flaky predicate shrinks to garbage. Fuzz findings are deterministic by
// construction (seeded generator, seeded oracle).
#pragma once

#include <cstddef>
#include <functional>

#include "ir/circuit.hpp"

namespace qdt::chaos {

/// Returns true when the candidate still exhibits the original failure.
using FailPredicate = std::function<bool(const ir::Circuit&)>;

struct ShrinkResult {
  ir::Circuit minimal;
  std::size_t predicate_calls = 0;
  std::size_t ops_removed = 0;
  std::size_t qubits_removed = 0;
};

/// Shrink `failing` (which must satisfy `still_fails`) to a local minimum.
/// `max_predicate_calls` bounds the work; the best candidate so far is
/// returned when the budget runs out.
ShrinkResult shrink(const ir::Circuit& failing,
                    const FailPredicate& still_fails,
                    std::size_t max_predicate_calls = 2000);

/// Drop every qubit no operation touches and renumber the rest downwards.
/// Width never drops below 1. Exposed for tests.
ir::Circuit compact_qubits(const ir::Circuit& c, std::size_t* removed);

}  // namespace qdt::chaos
