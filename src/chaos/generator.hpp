// qdt::chaos — structured circuit generation for differential fuzzing.
//
// A generated case starts from one of the ir::library families (the same
// generators the tests and benches use) and then layers adversarial
// mutations on top: adjacent duplicate gates, near-identity rotations,
// barrier/measure placement, deleted and reordered operations, promoted
// controls, and degenerate widths (1-qubit circuits). Semantics-changing
// mutations are fine — the differential oracle compares backends against
// each other on the *same* mutated circuit, so any divergence is a bug in
// a backend, not in the generator.
//
// Everything is driven by an explicit qdt::Rng, so a case is a pure
// function of its seed: same seed, bit-identical circuit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qdt::chaos {

struct GeneratorConfig {
  std::size_t min_qubits = 1;
  std::size_t max_qubits = 6;   // dense oracles must stay cheap
  std::size_t max_ops = 64;     // hard cap after mutation
  std::size_t max_mutations = 4;
  /// Probability that a case collapses to a 1-qubit edge circuit.
  double edge_width_probability = 0.05;
  /// Probability of appending measurements to the tail.
  double measure_probability = 0.15;
  /// Restrict generation to Clifford circuits: seed families are drawn
  /// from the Clifford library generators and any mutation that would
  /// introduce a non-Clifford gate is rolled back. This is the lane that
  /// feeds the wide packed-vs-reference stabilizer differential, where
  /// widths go far beyond the dense-state cap.
  bool clifford_only = false;
};

struct GeneratedCase {
  ir::Circuit circuit;
  std::string family;                  // seed family name
  std::vector<std::string> mutations;  // applied mutation names, in order
};

/// One deterministic fuzz case drawn from `rng`.
GeneratedCase generate_case(Rng& rng, const GeneratorConfig& config = {});

/// Apply one random structural mutation to `c`; returns its name ("" when
/// the mutation was not applicable, e.g. deleting from an empty circuit).
std::string mutate_circuit(ir::Circuit& c, Rng& rng);

/// QASM-text-level mutation for parser fuzzing: truncation, line
/// duplication/deletion, token splices, and byte-level edits. The result
/// may or may not be valid QASM — the parser oracle only requires that
/// parse_qasm() either succeeds or throws a typed qdt::Error.
std::string mutate_qasm_text(const std::string& qasm, Rng& rng);

}  // namespace qdt::chaos
